// Benchmarks regenerating the paper's tables and figures (one per artifact;
// see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results).
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=BenchmarkFig10 -benchmem
//
// Fixtures (datasets + built indexes) are cached across benchmarks, so the
// first benchmark in a run pays construction cost once; construction itself
// is measured by BenchmarkIndexConstruction.
package bigindex_test

import (
	"testing"

	"bigindex"
	"bigindex/internal/bench"
	"bigindex/internal/core"
	"bigindex/internal/cost"
	"bigindex/internal/datagen"
	"bigindex/internal/graph"
	"bigindex/internal/partition"
	"bigindex/internal/search"
)

// runReport wraps a bench experiment as a Go benchmark: the report is
// regenerated b.N times (experiments already average query repeats
// internally) and printed once under -v via b.Log.
func runReport(b *testing.B, id string) {
	b.Helper()
	runner, ok := bench.Experiments[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var last string
	for i := 0; i < b.N; i++ {
		rep, err := runner()
		if err != nil {
			b.Fatal(err)
		}
		sb := &stringWriter{}
		if err := rep.Write(sb); err != nil {
			b.Fatal(err)
		}
		last = sb.String()
	}
	b.Log("\n" + last)
}

type stringWriter struct{ buf []byte }

func (s *stringWriter) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}
func (s *stringWriter) String() string { return string(s.buf) }

func BenchmarkTable2Stats(b *testing.B)        { runReport(b, "table2") }
func BenchmarkTable3IndexSize(b *testing.B)    { runReport(b, "table3") }
func BenchmarkFig9LayerSizes(b *testing.B)     { runReport(b, "fig9") }
func BenchmarkFig10BlinksYago(b *testing.B)    { runReport(b, "fig10") }
func BenchmarkFig11BlinksDbpedia(b *testing.B) { runReport(b, "fig11") }
func BenchmarkFig12BlinksIMDB(b *testing.B)    { runReport(b, "fig12") }
func BenchmarkFig13RcliqueYago(b *testing.B)   { runReport(b, "fig13") }
func BenchmarkFig14RcliqueDbpedia(b *testing.B) {
	runReport(b, "fig14")
}
func BenchmarkFig15Synthetic(b *testing.B) { runReport(b, "fig15") }
func BenchmarkFig16Sampling(b *testing.B)  { runReport(b, "fig16") }
func BenchmarkFig17SpecOrder(b *testing.B) { runReport(b, "fig17") }
func BenchmarkFig18PathGen(b *testing.B)   { runReport(b, "fig18") }
func BenchmarkFig19LayerSweep(b *testing.B) {
	runReport(b, "fig19")
}

// BenchmarkIndexConstruction measures Exp-3's construction time directly
// (per iteration: full multi-layer build on the YAGO3 stand-in).
func BenchmarkIndexConstruction(b *testing.B) {
	ds := datagen.YagoSmall()
	opt := core.DefaultBuildOptions()
	opt.Search.SampleCount = bench.SampleCount
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(ds.Graph, ds.Ont, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryDirectVsBoosted is a microbenchmark pair for the headline
// comparison on one representative query (the |Q|=3 Q3 analog on yago-s).
func BenchmarkQueryDirectVsBoosted(b *testing.B) {
	f, err := bench.GetFixture("yago-s")
	if err != nil {
		b.Fatal(err)
	}
	var q []datagen.Query = f.Queries
	if len(q) < 3 {
		b.Skip("workload too small")
	}
	kw := q[2].Keywords

	ev := core.NewEvaluator(f.Index, bench.NewBlinks(), core.DefaultEvalOptions())
	if _, err := ev.Direct(kw, 0); err != nil {
		b.Fatal(err)
	}
	if _, _, err := ev.Eval(kw); err != nil {
		b.Fatal(err)
	}

	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.Direct(kw, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("boosted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ev.Eval(kw); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBisimulation isolates the summarization substrate.
func BenchmarkBisimulation(b *testing.B) {
	f, err := bench.GetFixture("yago-s")
	if err != nil {
		b.Fatal(err)
	}
	g := f.Index.Layer(1).Config.Apply(f.DS.Graph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bigindex.Bisim(g)
	}
}

// BenchmarkAlgorithmPrepare isolates per-layer search-index construction.
func BenchmarkAlgorithmPrepare(b *testing.B) {
	f, err := bench.GetFixture("yago-s")
	if err != nil {
		b.Fatal(err)
	}
	var algo search.Algorithm = bench.NewBlinks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algo.Prepare(f.DS.Graph); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyConfig isolates Algorithm 1 (per-layer configuration
// search with sampling) on the YAGO3 stand-in.
func BenchmarkGreedyConfig(b *testing.B) {
	ds := datagen.YagoSmall()
	opt := cost.DefaultSearchOptions()
	opt.SampleCount = bench.SampleCount
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, _ := cost.GreedyConfig(ds.Graph, ds.Ont, opt)
		if cfg.Len() == 0 {
			b.Fatal("empty configuration")
		}
	}
}

// BenchmarkPartition isolates the METIS-substitute partitioner.
func BenchmarkPartition(b *testing.B) {
	ds := datagen.YagoSmall()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := partition.BFSGrow(ds.Graph, bench.BlockSize)
		if p.NumBlocks() == 0 {
			b.Fatal("no blocks")
		}
	}
}

// BenchmarkRCliquePrepare isolates the neighbor-index build (the O(n·m)
// structure of Exp-1's infeasibility discussion).
func BenchmarkRCliquePrepare(b *testing.B) {
	ds := datagen.YagoSmall()
	algo := bench.NewRClique()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algo.Prepare(ds.Graph); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalBatch measures concurrent multi-query throughput.
func BenchmarkEvalBatch(b *testing.B) {
	f, err := bench.GetFixture("yago-s")
	if err != nil {
		b.Fatal(err)
	}
	ev := core.NewEvaluator(f.Index, bench.NewBlinks(), core.DefaultEvalOptions())
	var queries [][]graph.Label
	for _, q := range f.Queries {
		queries = append(queries, q.Keywords)
	}
	// Warm the prepared caches.
	for _, r := range ev.EvalBatch(queries) {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range ev.EvalBatch(queries) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkAblationSummarizers compares summarization formalisms (beyond
// the paper: its future-work direction, wired as an ablation).
func BenchmarkAblationSummarizers(b *testing.B) { runReport(b, "summarizers") }

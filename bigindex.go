// Package bigindex is the public API of this repository: a from-scratch Go
// implementation of BiG-index — "A Generic Ontology Framework for Indexing
// Keyword Search on Massive Graphs" (Jiang, Choi, Xu, Bhowmick; TKDE 2019 /
// ICDE 2021 extended abstract).
//
// BiG-index turns a labeled directed graph G and its ontology graph G_Ont
// into a hierarchy of summary graphs: each layer generalizes labels to
// supertypes (Gen) and collapses bisimilar vertices (Bisim). Keyword
// queries are generalized to a cost-model-chosen layer, evaluated there by
// a pluggable keyword search algorithm (Blinks, r-clique, and BANKS-style
// backward search ship in this module), and the generalized answers are
// specialized back to exact data-graph answers.
//
// Quick start:
//
//	dict := bigindex.NewDict()
//	ont := bigindex.NewOntology(dict)
//	ont.AddSupertypeNames("UC Berkeley", "Univ.")
//	// … add more taxonomy …
//
//	b := bigindex.NewGraphBuilder(dict)
//	berkeley := b.AddVertex("UC Berkeley")
//	russell := b.AddVertex("S. Russell")
//	b.AddEdge(russell, berkeley)
//	g := b.Build()
//
//	idx, err := bigindex.Build(g, ont, bigindex.DefaultBuildOptions())
//	ev := bigindex.NewEvaluator(idx, bigindex.NewBlinks(bigindex.BlinksOptions{DMax: 3}),
//		bigindex.DefaultEvalOptions())
//	matches, breakdown, err := ev.Eval([]bigindex.Label{dict.Lookup("UC Berkeley")})
//
// The facade re-exports the stable types from the internal packages; the
// internal layout follows the paper's architecture (see DESIGN.md).
package bigindex

import (
	"io"

	"bigindex/internal/bisim"
	"bigindex/internal/core"
	"bigindex/internal/cost"
	"bigindex/internal/datagen"
	"bigindex/internal/generalize"
	"bigindex/internal/graph"
	"bigindex/internal/ontology"
	"bigindex/internal/search"
	"bigindex/internal/search/bidir"
	"bigindex/internal/search/bkws"
	"bigindex/internal/search/blinks"
	"bigindex/internal/search/rclique"
	"bigindex/internal/text"
)

// Graph substrate.
type (
	// Graph is an immutable labeled directed graph (the data graph G).
	Graph = graph.Graph
	// GraphBuilder accumulates vertices and edges.
	GraphBuilder = graph.Builder
	// Dict interns label strings.
	Dict = graph.Dict
	// Label is an interned label.
	Label = graph.Label
	// V is a vertex ID.
	V = graph.V
	// Edge is a directed edge.
	Edge = graph.Edge
	// Subgraph is an answer subgraph view.
	Subgraph = graph.Subgraph
)

// NewDict returns an empty label dictionary.
func NewDict() *Dict { return graph.NewDict() }

// NewGraphBuilder returns a graph builder over dict (nil for a fresh one).
func NewGraphBuilder(dict *Dict) *GraphBuilder { return graph.NewBuilder(dict) }

// Ontology graph.
type Ontology = ontology.Ontology

// NewOntology returns an empty ontology over dict (nil for a fresh one).
func NewOntology(dict *Dict) *Ontology { return ontology.New(dict) }

// Bisimulation summarization.
type BisimResult = bisim.Result

// Bisim computes the maximal bisimulation summary of g (the paper's
// Bisim(G)).
func Bisim(g *Graph) *BisimResult { return bisim.Compute(g) }

// BisimK computes the depth-bounded k-bisimulation summary: coarser and
// cheaper than Bisim, sound for any query (plug into
// BuildOptions.Summarizer).
func BisimK(g *Graph, k int) *BisimResult { return bisim.ComputeK(g, k) }

// BisimForward computes the forward-bisimulation summary (equivalence on
// predecessor structure).
func BisimForward(g *Graph) *BisimResult { return bisim.ComputeForward(g) }

// Generalization.
type (
	// Config is a generalization configuration C = {ℓ→ℓ′}.
	Config = generalize.Config
	// Mapping is one configuration entry.
	Mapping = generalize.Mapping
)

// NewConfig builds a configuration from mappings.
func NewConfig(ms []Mapping) (*Config, error) { return generalize.NewConfig(ms) }

// The index and evaluation.
type (
	// Index is a built BiG-index (𝔾, 𝒞).
	Index = core.Index
	// BuildOptions controls index construction.
	BuildOptions = core.BuildOptions
	// Evaluator runs eval_Ont for one algorithm over one index.
	Evaluator = core.Evaluator
	// EvalOptions controls hierarchical evaluation.
	EvalOptions = core.EvalOptions
	// Breakdown reports evaluation phase timings.
	Breakdown = core.Breakdown
	// AnswerPattern is a generalized answer subgraph whose concrete answer
	// graphs can be enumerated with the literal Algo 3 / Algo 4 machinery
	// (Index.AnswerGraphs / Index.AnswerGraphsPathBased).
	AnswerPattern = core.AnswerPattern
	// Embedding maps pattern supernodes to data vertices.
	Embedding = core.Embedding
	// ConfigSearchOptions controls the Algorithm-1 greedy configuration
	// search used during Build.
	ConfigSearchOptions = cost.SearchOptions
)

// Build constructs a BiG-index for g against ont.
func Build(g *Graph, ont *Ontology, opt BuildOptions) (*Index, error) {
	return core.Build(g, ont, opt)
}

// DefaultBuildOptions mirrors the paper's default index construction.
func DefaultBuildOptions() BuildOptions { return core.DefaultBuildOptions() }

// NewEvaluator creates an evaluator for algo over idx.
func NewEvaluator(idx *Index, algo Algorithm, opt EvalOptions) *Evaluator {
	return core.NewEvaluator(idx, algo, opt)
}

// DefaultEvalOptions enables all optimizations with β = 0.5 and automatic
// layer selection.
func DefaultEvalOptions() EvalOptions { return core.DefaultEvalOptions() }

// Search plug-ins.
type (
	// Algorithm is a pluggable keyword search semantics (the paper's f).
	Algorithm = search.Algorithm
	// Match is one query answer.
	Match = search.Match
	// BlinksOptions configures the Blinks instance.
	BlinksOptions = blinks.Options
	// RCliqueOptions configures the r-clique instance.
	RCliqueOptions = rclique.Options
)

// NewBKWS returns a BANKS-style backward keyword search with bound dmax.
func NewBKWS(dmax int) Algorithm { return bkws.New(dmax) }

// NewBidir returns a bidirectional-expansion search (Kacholia et al.) with
// bound dmax; same distinct-root semantics as bkws/Blinks, selective-first
// exploration.
func NewBidir(dmax int) Algorithm { return bidir.New(dmax) }

// NewBlinks returns a Blinks instance (bi-level partition index).
func NewBlinks(opt BlinksOptions) Algorithm { return blinks.New(opt) }

// NewRClique returns an r-clique instance.
func NewRClique(opt RCliqueOptions) Algorithm { return rclique.NewWithOptions(opt) }

// Synthetic data generation (the experiment substrate).
type (
	// DatasetOptions parameterizes a synthetic knowledge graph.
	DatasetOptions = datagen.Options
	// Dataset is a generated knowledge graph with ontology and metadata.
	Dataset = datagen.Dataset
	// Query is one benchmark keyword query.
	Query = datagen.Query
	// WorkloadOptions controls query workload generation.
	WorkloadOptions = datagen.WorkloadOptions
)

// GenerateDataset builds a synthetic knowledge graph.
func GenerateDataset(opt DatasetOptions) *Dataset { return datagen.Generate(opt) }

// GenerateQueries builds a benchmark workload over ds.
func GenerateQueries(ds *Dataset, opt WorkloadOptions) []Query {
	return datagen.Queries(ds, opt)
}

// DefaultWorkload mirrors the paper's Q1-Q8 query-set shape.
func DefaultWorkload() WorkloadOptions { return datagen.DefaultWorkload() }

// TextIndex resolves free-text keywords to labels (tokenized inverted
// index with exact, AND-token, and prefix matching).
type TextIndex = text.Index

// NewTextIndex indexes the label names of dict that occur in g (nil g
// indexes the whole dictionary, ontology types included).
func NewTextIndex(dict *Dict, g *Graph) *TextIndex { return text.NewIndex(dict, g) }

// SaveIndex serializes idx to w in the binary index format.
func SaveIndex(idx *Index, w io.Writer) error { return idx.Save(w) }

// LoadIndex deserializes an index written by SaveIndex, re-binding it to
// ont (pass the ontology the index was built against; its configurations
// are re-validated). The loaded index carries its own dictionary —
// LoadIndex callers intern query keywords through idx.Data().Dict().
func LoadIndex(r io.Reader, ont *Ontology) (*Index, error) { return core.Load(r, ont) }

package bigindex_test

import (
	"bytes"
	"testing"

	"bigindex"
)

// TestPublicAPIEndToEnd drives the library the way a downstream user would:
// taxonomy + graph -> index -> query -> save/load -> query again.
func TestPublicAPIEndToEnd(t *testing.T) {
	dict := bigindex.NewDict()
	ont := bigindex.NewOntology(dict)
	for _, r := range [][2]string{
		{"alice", "Person"}, {"bob", "Person"}, {"carol", "Person"},
		{"acme", "Company"}, {"globex", "Company"},
		{"Person", "Agent"}, {"Company", "Agent"},
	} {
		if err := ont.AddSupertypeNames(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}

	b := bigindex.NewGraphBuilder(dict)
	alice := b.AddVertex("alice")
	bob := b.AddVertex("bob")
	carol := b.AddVertex("carol")
	acme := b.AddVertex("acme")
	globex := b.AddVertex("globex")
	b.AddEdge(alice, acme)
	b.AddEdge(bob, acme)
	b.AddEdge(carol, globex)
	b.AddEdge(acme, globex)
	g := b.Build()

	opt := bigindex.DefaultBuildOptions()
	opt.Search.SampleCount = 20
	idx, err := bigindex.Build(g, ont, opt)
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumLayers() < 2 {
		t.Fatalf("expected summary layers, got %d", idx.NumLayers())
	}

	q := []bigindex.Label{dict.Lookup("alice"), dict.Lookup("globex")}
	for _, algo := range []bigindex.Algorithm{
		bigindex.NewBKWS(3),
		bigindex.NewBlinks(bigindex.BlinksOptions{DMax: 3, BlockSize: 2}),
	} {
		ev := bigindex.NewEvaluator(idx, algo, bigindex.DefaultEvalOptions())
		direct, err := ev.Direct(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		boosted, bd, err := ev.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(direct) != len(boosted) {
			t.Fatalf("%s: %d direct vs %d boosted", algo.Name(), len(direct), len(boosted))
		}
		if len(boosted) == 0 {
			t.Fatalf("%s: expected at least one answer (alice -> acme -> globex)", algo.Name())
		}
		if bd.Layer < 0 || bd.Layer >= idx.NumLayers() {
			t.Fatalf("%s: bad layer %d", algo.Name(), bd.Layer)
		}
	}

	// r-clique over the same graph.
	rc := bigindex.NewRClique(bigindex.RCliqueOptions{R: 2})
	ev := bigindex.NewEvaluator(idx, rc, bigindex.DefaultEvalOptions())
	direct, err := ev.Direct(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	boosted, _, err := ev.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(boosted) {
		t.Fatalf("rclique: %d direct vs %d boosted", len(direct), len(boosted))
	}

	// Persistence round trip through the facade.
	var buf bytes.Buffer
	if err := bigindex.SaveIndex(idx, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := bigindex.LoadIndex(&buf, ont)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumLayers() != idx.NumLayers() {
		t.Fatal("layers lost in round trip")
	}

	// Bisimulation through the facade: the two Person-sharing-acme vertices
	// are not yet bisimilar (labels differ) until generalized.
	res := bigindex.Bisim(g)
	if res.NumBlocks() != g.NumVertices() {
		t.Fatalf("unique labels should not collapse: %d blocks", res.NumBlocks())
	}
	cfg, err := bigindex.NewConfig([]bigindex.Mapping{
		{From: dict.Lookup("alice"), To: dict.Lookup("Person")},
		{From: dict.Lookup("bob"), To: dict.Lookup("Person")},
	})
	if err != nil {
		t.Fatal(err)
	}
	res2 := bigindex.Bisim(cfg.Apply(g))
	if res2.NumBlocks() != g.NumVertices()-1 {
		t.Fatalf("alice/bob should collapse after generalization: %d blocks", res2.NumBlocks())
	}
}

// TestGeneratedDatasetAPI exercises the data-generation surface.
func TestGeneratedDatasetAPI(t *testing.T) {
	ds := bigindex.GenerateDataset(bigindex.DatasetOptions{
		Name: "api", Entities: 800, Terms: 80, LeafTypes: 6, Seed: 77,
	})
	if ds.Graph.NumVertices() != 800 {
		t.Fatalf("|V| = %d", ds.Graph.NumVertices())
	}
	qs := bigindex.GenerateQueries(ds, bigindex.DefaultWorkload())
	if len(qs) == 0 {
		t.Fatal("no queries")
	}
	opt := bigindex.DefaultBuildOptions()
	opt.Search.SampleCount = 30
	idx, err := bigindex.Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		t.Fatal(err)
	}
	ev := bigindex.NewEvaluator(idx, bigindex.NewBKWS(3), bigindex.DefaultEvalOptions())
	for _, q := range qs[:2] {
		direct, err := ev.Direct(q.Keywords, 0)
		if err != nil {
			t.Fatal(err)
		}
		boosted, _, err := ev.Eval(q.Keywords)
		if err != nil {
			t.Fatal(err)
		}
		if len(direct) != len(boosted) {
			t.Fatalf("%s diverged", q.ID)
		}
	}
}

// Command benchrunner regenerates the paper's tables and figures.
//
// Usage:
//
//	benchrunner -exp table2        # one experiment
//	benchrunner -exp fig10,fig13   # several
//	benchrunner -exp all           # everything, in paper order
//	benchrunner -list              # show available experiment IDs
//	benchrunner -json out.json     # machine-readable export (default
//	                               # BENCH_eval.json; -json "" disables)
//	benchrunner -exp cache         # query-cache cold/warm latencies;
//	                               # also written to -cache-json
//	                               # (default BENCH_cache.json)
//	benchrunner -exp obs           # flight-recorder + ledger overhead
//	                               # off vs sample=0.01 vs sample=1.0;
//	                               # also written to -obs-json
//	                               # (default BENCH_obs.json)
//	benchrunner -exp replay -workload qlog.jsonl
//	                               # replay a bigindexd -query-log capture
//	                               # and audit the Formula 4 cost model;
//	                               # also written to -replay-json
//	                               # (default BENCH_replay.json)
//
// The JSON export carries the same rows as the text tables plus per-
// experiment wall time, so the perf trajectory across PRs is diffable.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"bigindex/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	jsonOut := flag.String("json", "BENCH_eval.json", "write a machine-readable report here (empty = off)")
	cacheOut := flag.String("cache-json", "BENCH_cache.json",
		"when the cache experiment runs, also write its report here (empty = off)")
	snapOut := flag.String("snapshot-json", "BENCH_snapshot.json",
		"when the snapshot experiment runs, also write its report here (empty = off)")
	obsOut := flag.String("obs-json", "BENCH_obs.json",
		"when the obs experiment runs, also write its report here (empty = off)")
	workload := flag.String("workload", "",
		"query log captured by bigindexd -query-log; required by -exp replay")
	workloadDataset := flag.String("workload-dataset", "demo",
		"dataset the workload was captured against (bigindexd -preset value)")
	replayOut := flag.String("replay-json", "BENCH_replay.json",
		"when the replay experiment runs, also write its report here (empty = off)")
	shardOut := flag.String("shard-json", "BENCH_shard.json",
		"when the shard experiment runs, also write its report here (empty = off)")
	shardDataset := flag.String("shard-dataset", "",
		"dataset for the shard experiment (empty = yago-s; the CI smoke uses demo)")
	shardWorkers := flag.String("shard-workers", "",
		"comma-separated worker counts for the shard experiment (empty = 1,2,4,8)")
	shardnetOut := flag.String("shardnet-json", "BENCH_shardnet.json",
		"when the shardnet experiment runs, also write its report here (empty = off)")
	shardnetDataset := flag.String("shardnet-dataset", "",
		"dataset for the shardnet experiment (empty = yago-s; the CI smoke uses demo)")
	fleetObsOut := flag.String("fleetobs-json", "BENCH_fleetobs.json",
		"when the fleetobs experiment runs, also write its report here (empty = off)")
	fleetObsDataset := flag.String("fleetobs-dataset", "",
		"dataset for the fleetobs experiment (empty = yago-s; the CI smoke uses demo)")
	flag.Parse()

	bench.SetReplayConfig(*workload, *workloadDataset)
	workers, err := parseWorkers(*shardWorkers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -shard-workers: %v\n", err)
		os.Exit(2)
	}
	bench.SetShardConfig(*shardDataset, workers)
	bench.SetShardNetConfig(*shardnetDataset)
	bench.SetFleetObsConfig(*fleetObsDataset)

	if *list {
		ids := make([]string, 0, len(bench.Experiments))
		for id := range bench.Experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		ids = bench.ExperimentOrder
	} else {
		ids = strings.Split(*exp, ",")
	}

	var reports []*bench.Report
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := bench.Experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep, err := runner()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
		rep.Elapsed = time.Since(start)
		reports = append(reports, rep)
		if err := rep.Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "writing report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %v)\n\n", id, rep.Elapsed.Round(time.Millisecond))
	}

	if *jsonOut != "" {
		writeJSON(*jsonOut, reports)
	}
	if *cacheOut != "" {
		var cacheReports []*bench.Report
		for _, r := range reports {
			if r.ID == "cache" {
				cacheReports = append(cacheReports, r)
			}
		}
		if len(cacheReports) > 0 {
			writeJSON(*cacheOut, cacheReports)
		}
	}
	if *snapOut != "" {
		var snapReports []*bench.Report
		for _, r := range reports {
			if r.ID == "snapshot" {
				snapReports = append(snapReports, r)
			}
		}
		if len(snapReports) > 0 {
			writeJSON(*snapOut, snapReports)
		}
	}
	if *obsOut != "" {
		var obsReports []*bench.Report
		for _, r := range reports {
			if r.ID == "obs" {
				obsReports = append(obsReports, r)
			}
		}
		if len(obsReports) > 0 {
			writeJSON(*obsOut, obsReports)
		}
	}
	if *replayOut != "" {
		var replayReports []*bench.Report
		for _, r := range reports {
			if r.ID == "replay" {
				replayReports = append(replayReports, r)
			}
		}
		if len(replayReports) > 0 {
			writeJSON(*replayOut, replayReports)
		}
	}
	if *shardOut != "" {
		var shardReports []*bench.Report
		for _, r := range reports {
			if r.ID == "shard" {
				shardReports = append(shardReports, r)
			}
		}
		if len(shardReports) > 0 {
			writeJSON(*shardOut, shardReports)
		}
	}
	if *shardnetOut != "" {
		var snReports []*bench.Report
		for _, r := range reports {
			if r.ID == "shardnet" {
				snReports = append(snReports, r)
			}
		}
		if len(snReports) > 0 {
			writeJSON(*shardnetOut, snReports)
		}
	}
	if *fleetObsOut != "" {
		var foReports []*bench.Report
		for _, r := range reports {
			if r.ID == "fleetobs" {
				foReports = append(foReports, r)
			}
		}
		if len(foReports) > 0 {
			writeJSON(*fleetObsOut, foReports)
		}
	}
}

// parseWorkers parses the -shard-workers list ("1,2,4"); empty means
// keep the experiment's defaults.
func parseWorkers(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("%q is not a positive worker count", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func writeJSON(path string, reports []*bench.Report) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "creating %s: %v\n", path, err)
		os.Exit(1)
	}
	err = bench.WriteJSON(f, reports)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("machine-readable report written to %s\n", path)
}

// Command bigindex is the command-line front end of the library:
//
//	bigindex gen   -preset yago-s -out graph.big          # generate a dataset
//	bigindex stats -in graph.big                          # graph statistics
//	bigindex build -preset yago-s                         # build + report index
//	bigindex query -preset yago-s -algo blinks -q t1,t2   # run a keyword query
//	bigindex bench -preset yago-s -algo blinks            # workload timing
//
// Presets are the synthetic stand-ins of the paper's datasets (yago-s,
// dbpedia-s, imdb-s, synt-10k … synt-80k); -in/-out use the binary graph
// format of internal/graph.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/datagen"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/search"
	"bigindex/internal/search/bkws"
	"bigindex/internal/search/blinks"
	"bigindex/internal/search/rclique"
	"bigindex/internal/text"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bigindex:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bigindex <gen|stats|build|query|bench> [flags]
  gen    -preset <name> -out <file>            generate a synthetic dataset
  stats  -in <file> | -preset <name>           print graph statistics
  build  -preset <name> [-layers N]            build a BiG-index and report layers
  query  -preset <name> -algo <a> -q k1,k2,... evaluate a keyword query
  bench  -preset <name> -algo <a>              time the Q1-Q8 workload
presets: demo yago-s dbpedia-s imdb-s synt-10k synt-20k synt-40k synt-80k
algos:   blinks (default), bkws, rclique`)
}

func loadPreset(name string) (*datagen.Dataset, error) {
	switch name {
	case "yago-s":
		return datagen.YagoSmall(), nil
	case "dbpedia-s":
		return datagen.DbpediaSmall(), nil
	case "imdb-s":
		return datagen.ImdbSmall(), nil
	case "synt-10k":
		return datagen.Synthetic(10000, 8101), nil
	case "synt-20k":
		return datagen.Synthetic(20000, 8102), nil
	case "synt-40k":
		return datagen.Synthetic(40000, 8103), nil
	case "synt-80k":
		return datagen.Synthetic(80000, 8104), nil
	case "demo":
		// A small preset for smoke tests and quick exploration.
		return datagen.Generate(datagen.Options{
			Name: "demo", Entities: 1500, Terms: 120, LeafTypes: 8, Seed: 4242,
		}), nil
	case "":
		return nil, fmt.Errorf("missing -preset")
	default:
		return nil, fmt.Errorf("unknown preset %q", name)
	}
}

func newAlgo(name string, dmax int) (search.Algorithm, error) {
	switch name {
	case "blinks", "":
		return blinks.New(blinks.Options{DMax: dmax, BlockSize: 200}), nil
	case "bkws":
		return bkws.New(dmax), nil
	case "rclique":
		return rclique.New(dmax - 1), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	preset := fs.String("preset", "", "dataset preset")
	out := fs.String("out", "", "output file (binary graph format)")
	fs.Parse(args)
	ds, err := loadPreset(*preset)
	if err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("missing -out")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := ds.Graph.WriteTo(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s: |V|=%d |E|=%d\n", *out, ds.Graph.NumVertices(), ds.Graph.NumEdges())
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	preset := fs.String("preset", "", "dataset preset")
	in := fs.String("in", "", "input file (binary graph format)")
	fs.Parse(args)

	var g *graph.Graph
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = graph.Read(f)
		if err != nil {
			return err
		}
	default:
		ds, err := loadPreset(*preset)
		if err != nil {
			return err
		}
		g = ds.Graph
	}
	st := graph.ComputeStats(g)
	fmt.Printf("|V| = %d\n|E| = %d\n|Σ| = %d\n", st.Vertices, st.Edges, st.DistinctLabels)
	fmt.Printf("avg out-degree %.2f, max out %d, max in %d\n", st.AvgDegree, st.MaxOutDegree, st.MaxInDegree)
	fmt.Printf("degree percentiles p50/p90/p99 = %d/%d/%d\n", st.DegreeP50, st.DegreeP90, st.DegreeP99)
	fmt.Printf("%d sinks, %d sources, %d weakly connected components\n", st.Sinks, st.Sources, st.WeaklyConnected)
	fmt.Printf("most frequent label covers %d vertices\n", st.TopLabelCount)
	return nil
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	preset := fs.String("preset", "", "dataset preset")
	layers := fs.Int("layers", 7, "max summary layers")
	save := fs.String("save", "", "write the built index to this file")
	fs.Parse(args)
	ds, err := loadPreset(*preset)
	if err != nil {
		return err
	}
	opt := core.DefaultBuildOptions()
	opt.MaxLayers = *layers
	start := time.Now()
	idx, err := core.Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		return err
	}
	if *save != "" {
		out, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := idx.Save(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("index saved to %s\n", *save)
	}
	fmt.Printf("built BiG-index for %s in %v\n", ds.Name, time.Since(start).Round(time.Millisecond))
	for _, l := range idx.Stats().Layers {
		fmt.Printf("  layer %d: |V|=%-8d |E|=%-8d ratio=%.4f |C|=%d\n",
			l.Layer, l.Vertices, l.Edges, l.Ratio, l.ConfigSize)
	}
	fmt.Printf("index size (sum of summary layers): %d\n", idx.TotalSize())
	return nil
}

func resolveQuery(ds *datagen.Dataset, spec string) ([]graph.Label, error) {
	if spec == "" {
		return nil, fmt.Errorf("missing -q")
	}
	keywords := strings.Split(spec, ",")
	for i := range keywords {
		keywords[i] = strings.TrimSpace(keywords[i])
	}
	idx := text.NewIndex(ds.Graph.Dict(), ds.Graph)
	q, notes, err := idx.Resolve(keywords, ds.Graph)
	if err != nil {
		return nil, err
	}
	for _, n := range notes {
		fmt.Println("resolved", n)
	}
	return q, nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	preset := fs.String("preset", "", "dataset preset")
	algoName := fs.String("algo", "blinks", "search algorithm")
	qspec := fs.String("q", "", "comma-separated keywords")
	dmax := fs.Int("dmax", 4, "distance bound")
	k := fs.Int("k", 10, "top-k (0 = all)")
	direct := fs.Bool("direct", false, "bypass the index (baseline eval)")
	load := fs.String("load", "", "load a previously saved index instead of building")
	expand := fs.Bool("expand", false, "expand concept keywords to their occurring subterms (concept-level search)")
	explain := fs.Bool("explain", false, "print the evaluation plan (per-layer costs) before answering")
	trace := fs.Bool("trace", false, "print the query's span tree (phase timings) as JSON after answering")
	fs.Parse(args)

	ds, err := loadPreset(*preset)
	if err != nil {
		return err
	}
	algo, err := newAlgo(*algoName, *dmax)
	if err != nil {
		return err
	}
	q, err := resolveQuery(ds, *qspec)
	if err != nil {
		return err
	}
	if *expand {
		// Concept-level search (the paper's future-work "similarity
		// search"): a keyword naming an ontology type stands for any of
		// its occurring subterms; evaluate the cross product of choices
		// and merge the rankings.
		for i, l := range q {
			terms := ds.Ont.SubtreeTerms(l, ds.Graph)
			if len(terms) == 1 {
				q[i] = terms[0]
			} else if len(terms) > 1 {
				fmt.Printf("keyword %q expands to %d occurring subterms; using the most frequent\n",
					ds.Graph.Dict().Name(l), len(terms))
				best := terms[0]
				for _, t := range terms {
					if ds.Graph.LabelCount(t) > ds.Graph.LabelCount(best) {
						best = t
					}
				}
				q[i] = best
			}
		}
	}

	var idx *core.Index
	if *load != "" {
		in, err := os.Open(*load)
		if err != nil {
			return err
		}
		idx, err = core.Load(in, ds.Ont)
		in.Close()
		if err != nil {
			return err
		}
	} else if idx, err = core.Build(ds.Graph, ds.Ont, core.DefaultBuildOptions()); err != nil {
		return err
	}
	opt := core.DefaultEvalOptions()
	opt.K = *k
	ev := core.NewEvaluator(idx, algo, opt)

	if *explain {
		fmt.Print(ev.Explain(q).Render(ds.Graph.Dict()))
	}

	tr := obs.NewTrace("query")
	ctx := obs.ContextWithSpan(context.Background(), tr.Root())
	var ms []search.Match
	start := time.Now()
	if *direct {
		ms, err = ev.DirectCtx(ctx, q, *k)
	} else {
		var bd *core.Breakdown
		ms, bd, err = ev.EvalCtx(ctx, q)
		if bd != nil {
			defer fmt.Printf("evaluated at layer %d (search %v, specialize %v, generate %v)\n",
				bd.Layer, bd.Search, bd.Specialize, bd.Generate)
		}
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	tr.Root().End()
	if *trace {
		js, err := json.MarshalIndent(tr, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("trace: %s\n", js)
	}

	fmt.Printf("%d answers in %v\n", len(ms), elapsed.Round(time.Microsecond))
	for i, m := range ms {
		if i >= 10 {
			fmt.Printf("  … %d more\n", len(ms)-10)
			break
		}
		names := make([]string, len(m.Nodes))
		for j, n := range m.Nodes {
			names[j] = fmt.Sprintf("%s(#%d)", ds.Graph.Dict().Name(ds.Graph.Label(n)), n)
		}
		fmt.Printf("  #%d root=%s(#%d) score=%.0f nodes=%s\n",
			i+1, ds.Graph.Dict().Name(ds.Graph.Label(m.Root)), m.Root, m.Score, strings.Join(names, " "))
	}
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	preset := fs.String("preset", "", "dataset preset")
	algoName := fs.String("algo", "blinks", "search algorithm")
	dmax := fs.Int("dmax", 4, "distance bound")
	fs.Parse(args)

	ds, err := loadPreset(*preset)
	if err != nil {
		return err
	}
	algo, err := newAlgo(*algoName, *dmax)
	if err != nil {
		return err
	}
	idx, err := core.Build(ds.Graph, ds.Ont, core.DefaultBuildOptions())
	if err != nil {
		return err
	}
	opt := core.DefaultEvalOptions()
	if *algoName == "rclique" {
		opt.K = 10
		opt.GenLimit = 40
	}
	ev := core.NewEvaluator(idx, algo, opt)

	for _, q := range datagen.Queries(ds, datagen.DefaultWorkload()) {
		if _, err := ev.Direct(q.Keywords, opt.K); err != nil {
			return err
		}
		if _, _, err := ev.Eval(q.Keywords); err != nil {
			return err
		}
		t0 := time.Now()
		if _, err := ev.Direct(q.Keywords, opt.K); err != nil {
			return err
		}
		d := time.Since(t0)
		t0 = time.Now()
		_, bd, err := ev.Eval(q.Keywords)
		if err != nil {
			return err
		}
		b := time.Since(t0)
		fmt.Printf("%-3s direct=%-10v boosted=%-10v layer=%d reduction=%.1f%%\n",
			q.ID, d.Round(time.Microsecond), b.Round(time.Microsecond), bd.Layer,
			100*(1-float64(b)/float64(d)))
	}
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The subcommands are exercised directly (they print to stdout, which the
// test harness captures); success means no error and sane side effects.

func TestCmdGenStatsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "demo.big")
	if err := cmdGen([]string{"-preset", "demo", "-out", out}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("gen wrote nothing: %v", err)
	}
	if err := cmdStats([]string{"-in", out}); err != nil {
		t.Fatalf("stats -in: %v", err)
	}
	if err := cmdStats([]string{"-preset", "demo"}); err != nil {
		t.Fatalf("stats -preset: %v", err)
	}
}

func TestCmdBuildQuerySaveLoad(t *testing.T) {
	dir := t.TempDir()
	idxFile := filepath.Join(dir, "demo.bigx")
	if err := cmdBuild([]string{"-preset", "demo", "-save", idxFile}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if fi, err := os.Stat(idxFile); err != nil || fi.Size() == 0 {
		t.Fatalf("index not saved: %v", err)
	}

	// Pick a keyword that exists: use the demo dataset's most frequent term.
	ds, err := loadPreset("demo")
	if err != nil {
		t.Fatal(err)
	}
	var kw string
	best := 0
	for _, l := range ds.Graph.DistinctLabels() {
		if c := ds.Graph.LabelCount(l); c > best {
			best = c
			kw = ds.Graph.Dict().Name(l)
		}
	}
	if err := cmdQuery([]string{"-preset", "demo", "-q", kw, "-k", "3", "-dmax", "3"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if err := cmdQuery([]string{"-preset", "demo", "-q", kw, "-k", "3", "-dmax", "3", "-load", idxFile}); err != nil {
		t.Fatalf("query -load: %v", err)
	}
	if err := cmdQuery([]string{"-preset", "demo", "-q", kw, "-k", "3", "-direct"}); err != nil {
		t.Fatalf("query -direct: %v", err)
	}
	if err := cmdQuery([]string{"-preset", "demo", "-q", kw, "-algo", "bkws", "-k", "2", "-expand"}); err != nil {
		t.Fatalf("query bkws -expand: %v", err)
	}
}

func TestCmdErrors(t *testing.T) {
	if err := cmdGen([]string{"-preset", "nope", "-out", "/tmp/x"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if err := cmdGen([]string{"-preset", "demo"}); err == nil {
		t.Fatal("missing -out accepted")
	}
	if err := cmdQuery([]string{"-preset", "demo"}); err == nil {
		t.Fatal("missing -q accepted")
	}
	if err := cmdQuery([]string{"-preset", "demo", "-q", "zzzz-not-a-term"}); err == nil {
		t.Fatal("unresolvable keyword accepted")
	}
	if _, err := newAlgo("nope", 3); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

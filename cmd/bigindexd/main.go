// Command bigindexd serves a BiG-index over HTTP (see internal/server for
// the API):
//
//	bigindexd -preset yago-s -addr :8080
//	bigindexd -preset demo -index saved.bigx      # load instead of build
//	bigindexd -preset demo -pprof localhost:6060  # profiling sidecar
//
//	curl 'localhost:8080/query?q=term 17,term 27&algo=blinks&k=5'
//	curl 'localhost:8080/query?q=term 17&trace=1'
//	curl 'localhost:8080/explain?q=term 17,term 27'
//	curl 'localhost:8080/complete?prefix=term'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics'
//
// Logging is structured (log/slog; -log json for JSON lines), metrics are
// Prometheus text format at /metrics, and -pprof serves net/http/pprof on
// its own mux so profiling is never exposed on the public listener.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/datagen"
	"bigindex/internal/obs"
	"bigindex/internal/server"
)

func main() {
	preset := flag.String("preset", "demo", "dataset preset (demo, yago-s, dbpedia-s, imdb-s, synt-*)")
	addr := flag.String("addr", ":8080", "listen address")
	indexFile := flag.String("index", "", "load a saved index instead of building")
	dmax := flag.Int("dmax", 4, "distance bound")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (separate mux; empty = off)")
	logFormat := flag.String("log", "text", "log format: text or json")
	logLevel := flag.String("level", "info", "log level: debug, info, warn, error")
	slowQuery := flag.Duration("slow", 500*time.Millisecond, "slow-query log threshold (0 = disabled)")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, parseLevel(*logLevel), *logFormat == "json")
	reg := obs.NewRegistry()

	ds, err := presetByName(*preset)
	if err != nil {
		fatal(logger, "bad preset", err)
	}
	var idx *core.Index
	if *indexFile != "" {
		f, err := os.Open(*indexFile)
		if err != nil {
			fatal(logger, "opening index", err)
		}
		idx, err = core.Load(f, ds.Ont)
		f.Close()
		if err != nil {
			fatal(logger, "loading index", err)
		}
		logger.Info("index loaded", "file", *indexFile, "layers", idx.NumLayers())
	} else {
		start := time.Now()
		opt := core.DefaultBuildOptions()
		opt.Obs = reg // build gauges surface on /metrics
		opt.Logger = logger
		idx, err = core.Build(ds.Graph, ds.Ont, opt)
		if err != nil {
			fatal(logger, "building index", err)
		}
		logger.Info("index built", "dataset", ds.Name,
			"elapsed", time.Since(start).Round(time.Millisecond), "layers", idx.NumLayers())
	}

	if *pprofAddr != "" {
		go servePprof(logger, *pprofAddr)
	}

	sq := *slowQuery
	if sq == 0 {
		sq = -1 // Options: 0 means default, negative disables
	}
	srv := server.New(idx, ds.Ont, server.Options{
		DMax:      *dmax,
		Metrics:   reg,
		Logger:    logger,
		SlowQuery: sq,
	})
	logger.Info("serving", "dataset", ds.Name, "addr", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fatal(logger, "listen", err)
	}
}

// servePprof exposes the profiling handlers on a dedicated mux: the public
// listener never sees /debug/pprof even though importing net/http/pprof
// registers it on http.DefaultServeMux.
func servePprof(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("pprof listener failed", "err", err)
	}
}

func parseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}

func presetByName(name string) (*datagen.Dataset, error) {
	switch name {
	case "demo":
		return datagen.Generate(datagen.Options{
			Name: "demo", Entities: 1500, Terms: 120, LeafTypes: 8, Seed: 4242,
		}), nil
	case "yago-s":
		return datagen.YagoSmall(), nil
	case "dbpedia-s":
		return datagen.DbpediaSmall(), nil
	case "imdb-s":
		return datagen.ImdbSmall(), nil
	case "synt-10k":
		return datagen.Synthetic(10000, 8101), nil
	case "synt-20k":
		return datagen.Synthetic(20000, 8102), nil
	case "synt-40k":
		return datagen.Synthetic(40000, 8103), nil
	case "synt-80k":
		return datagen.Synthetic(80000, 8104), nil
	default:
		return nil, fmt.Errorf("unknown preset %q", name)
	}
}

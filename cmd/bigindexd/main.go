// Command bigindexd serves a BiG-index over HTTP (see internal/server for
// the API):
//
//	bigindexd -preset yago-s -addr :8080
//	bigindexd -preset demo -index saved.bigx      # load instead of build
//	bigindexd -preset demo -pprof localhost:6060  # profiling sidecar
//
//	curl 'localhost:8080/query?q=term 17,term 27&algo=blinks&k=5'
//	curl 'localhost:8080/query?q=term 17&trace=1'
//	curl 'localhost:8080/query?q=term 17&timeout=250ms'
//	curl 'localhost:8080/explain?q=term 17,term 27'
//	curl 'localhost:8080/complete?prefix=term'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics'
//	curl 'localhost:8080/readyz'
//
// Logging is structured (log/slog; -log json for JSON lines), metrics are
// Prometheus text format at /metrics, and -pprof serves net/http/pprof on
// its own mux so profiling is never exposed on the public listener.
//
// The daemon is built for rough traffic: per-query deadlines degrade
// long-running evaluations to partial results (-query-timeout), a
// load-shedding gate bounds concurrent evaluations (-max-inflight,
// -shed-wait), the http.Server carries read/write/idle timeouts so slow
// clients cannot pin connections, and SIGINT/SIGTERM trigger a graceful
// drain: /readyz flips to 503 (-drain-grace gives load balancers time to
// notice), in-flight queries get -drain-timeout to finish, and the process
// exits 0.
//
// Query results are cached (-cache-size, -cache-ttl, -cache-bytes;
// internal/qcache) and -warm-file pre-populates the cache from a
// workload file before the listener opens, so the first burst of
// production traffic hits warm entries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/datagen"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/server"
	"bigindex/internal/shard"
	"bigindex/internal/shardrpc"
	"bigindex/internal/snapshot"
	"bigindex/internal/wal"
)

func main() {
	preset := flag.String("preset", "demo", "dataset preset (demo, yago-s, dbpedia-s, imdb-s, synt-*)")
	addr := flag.String("addr", ":8080", "listen address")
	indexFile := flag.String("index", "", "load a saved index instead of building")
	dmax := flag.Int("dmax", 4, "distance bound")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (separate mux; empty = off)")
	logFormat := flag.String("log", "text", "log format: text or json")
	logLevel := flag.String("level", "info", "log level: debug, info, warn, error")
	slowQuery := flag.Duration("slow", 500*time.Millisecond, "slow-query log threshold (0 = disabled)")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second,
		"per-query evaluation deadline; expired queries return partial results (0 = none)")
	maxInFlight := flag.Int("max-inflight", 4*runtime.GOMAXPROCS(0),
		"max concurrently evaluating queries before shedding with 429 (0 = unbounded)")
	shedWait := flag.Duration("shed-wait", 100*time.Millisecond,
		"how long a query may wait for an evaluation slot before being shed")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server read timeout")
	writeTimeout := flag.Duration("write-timeout", 0,
		"http.Server write timeout (0 = query-timeout + 30s, so degraded responses can still be written)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server keep-alive idle timeout")
	drainGrace := flag.Duration("drain-grace", 500*time.Millisecond,
		"after a shutdown signal, how long /readyz advertises 503 before connections close")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second,
		"how long in-flight requests get to finish during graceful shutdown")
	cacheSize := flag.Int("cache-size", 4096, "query result cache entries (0 = disabled)")
	cacheTTL := flag.Duration("cache-ttl", time.Minute, "query result cache entry lifetime (0 = no expiry)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "query result cache byte budget (0 = unbounded)")
	warmFile := flag.String("warm-file", "",
		"pre-populate the query cache from this workload file before serving (one query per line: kw1,kw2 [| algo [| k]])")
	snapshotFile := flag.String("snapshot", "",
		"crash-safe index snapshot path: boot from it when valid (falling back to a rebuild on corruption or source mismatch), re-save after every build and reload")
	walFile := flag.String("wal", "",
		"write-ahead log path; enables the live mutation API (POST /admin/edges): batches are fsynced here before applying, and boot replays the tail not yet covered by the snapshot")
	walMaxBytes := flag.Int64("wal-max-bytes", 64<<20,
		"auto-compact (persist snapshot, truncate WAL) once the log exceeds this size (0 = only manual POST /admin/compact)")
	adminToken := flag.String("admin-token", "",
		"shared secret required on the admin endpoints via X-Admin-Token or Authorization: Bearer (empty = no auth)")
	damageBudget := flag.Float64("damage-budget", 0,
		"max fraction of data-graph vertices a mutation batch may affect before delta maintenance falls back to a full rebuild (0 = default 0.25, negative = unbounded)")
	reloadMinBackoff := flag.Duration("reload-min-backoff", time.Second,
		"first retry delay after a failed reload (doubles per consecutive failure)")
	reloadMaxBackoff := flag.Duration("reload-max-backoff", 5*time.Minute,
		"retry delay cap for failed reloads")
	reloadFails := flag.Int64("reload-fails", 5,
		"consecutive reload failures before the circuit opens (stale index keeps serving; /stats and metrics report it)")
	debugEndpoints := flag.Bool("debug-endpoints", false,
		"expose the flight-recorder endpoints /debug/traces, /debug/active, /debug/index (off by default: they reveal query text)")
	traceSample := flag.Float64("trace-sample", 0.01,
		"uniform keep probability for unremarkable query traces; slow/errored/degraded/shed queries are always kept (negative = recorder off)")
	traceStoreSize := flag.Int("trace-store-size", 512, "flight-recorder trace ring capacity")
	traceKeepSlowest := flag.Int("trace-keep-slowest", 8, "K slowest queries retained per window by the flight recorder")
	queryLogPath := flag.String("query-log", "",
		"append one JSON line per /query to this file (workload capture for benchrunner -exp replay; empty = off)")
	queryLogMaxBytes := flag.Int64("query-log-max-bytes", 64<<20,
		"rotate the query log once it reaches this size (one .1 predecessor is kept)")
	shadowSample := flag.Float64("costmodel-shadow", 0,
		"probability of re-evaluating a routed query at the runner-up layer to measure cost-model misroutes (0 = off)")
	shards := flag.Int("shards", 0,
		"default worker count for partition-sharded bkws/bidir execution; &shards= overrides per query (0 = sequential, clamped to GOMAXPROCS)")
	shardServe := flag.String("shard-serve", "",
		"run as a shard server instead of the HTTP daemon: boot the index, then answer shardrpc expansion/verification on this address until SIGTERM")
	shardBlocks := flag.String("shard-blocks", "all",
		"with -shard-serve, which plan blocks this process answers: 'all', a list like '0,2-5', or a residue class like '0%2'")
	shardPeers := flag.String("shard-peers", "",
		"serve sharded data-graph execution through these shardrpc peers: 'addr[=blocks];...' or '@file' (one entry per line, # comments); every block needs at least one replica or queries degrade")
	shardBlockSize := flag.Int("shard-block-size", 0,
		"partition block size for sharded execution; must match across coordinator and shard servers (0 = default)")
	shardTelemetrySample := flag.Float64("shard-telemetry-sample", 0.01,
		"fraction of traced queries that carry distributed-tracing headers over shard RPCs and stitch peer spans/ledgers into /debug/traces (0 disables; answers are byte-identical either way)")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, parseLevel(*logLevel), *logFormat == "json")
	if *shards < 0 {
		fatal(logger, "bad flag", fmt.Errorf("-shards must be >= 0, got %d", *shards))
	}
	if *shardServe != "" && *shardPeers != "" {
		fatal(logger, "bad flag", fmt.Errorf("-shard-serve and -shard-peers are mutually exclusive (a process is a shard server or a coordinator, not both)"))
	}
	// One line with the full effective configuration — every flag after
	// defaulting — so any incident log pins down exactly how the daemon ran.
	logger.Info("effective config", configAttrs(flag.CommandLine)...)
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)

	ds, err := presetByName(*preset)
	if err != nil {
		fatal(logger, "bad preset", err)
	}
	snapLoadSec := reg.Gauge("bigindex_snapshot_load_seconds",
		"Wall time of the last successful snapshot load.")
	snapSaveSec := reg.Gauge("bigindex_snapshot_save_seconds",
		"Wall time of the last successful snapshot save.")

	var idx *core.Index
	var wlog *wal.Log
	var walSeq uint64
	switch {
	case *indexFile != "":
		f, err := os.Open(*indexFile)
		if err != nil {
			fatal(logger, "opening index", err)
		}
		idx, err = core.Load(f, ds.Ont)
		f.Close()
		if err != nil {
			fatal(logger, "loading index", err)
		}
		logger.Info("index loaded", "file", *indexFile, "layers", idx.NumLayers())
	case *walFile != "":
		idx, wlog, walSeq = bootIndexWAL(ds, *snapshotFile, *walFile, reg, logger, snapLoadSec, snapSaveSec)
		defer wlog.Close()
	default:
		idx = bootIndex(ds, *snapshotFile, reg, logger, snapLoadSec, snapSaveSec)
	}

	// Shard-server mode: same boot (preset/snapshot/WAL replay give every
	// process the identical graph, which the digest handshake then proves),
	// but instead of the HTTP stack the process answers shardrpc until a
	// shutdown signal.
	if *shardServe != "" {
		runShardServer(logger, idx, *shardServe, *shardBlocks, *shardBlockSize)
		return
	}

	if *pprofAddr != "" {
		go servePprof(logger, *pprofAddr)
	}

	var shardClient *shardrpc.Client
	if *shardPeers != "" {
		peers, err := shardrpc.ParsePeers(*shardPeers)
		if err != nil {
			fatal(logger, "bad -shard-peers", err)
		}
		shardClient = shardrpc.NewClient(shardrpc.ClientOptions{
			Peers:           peers,
			BlockSize:       *shardBlockSize,
			TelemetrySample: *shardTelemetrySample,
			Metrics:         shardrpc.NewMetrics(reg),
			Logger:          logger,
		})
		defer shardClient.Close()
		if *shards == 0 {
			// A fleet without an explicit -shards default: the sharded
			// execution path must engage for the peers to matter at all.
			*shards = 1
			logger.Info("-shard-peers set; defaulting -shards to 1")
		}
		logger.Info("shard fleet configured", "peers", shardClient.Peers())
	}

	sq := *slowQuery
	if sq == 0 {
		sq = -1 // Options: 0 means default, negative disables
	}
	sw := *shedWait
	if sw == 0 {
		sw = -1 // Options: 0 means default, negative sheds immediately
	}
	var qlog *obs.QueryLog
	if *queryLogPath != "" {
		qlog, err = obs.OpenQueryLog(obs.QueryLogOptions{
			Path:     *queryLogPath,
			MaxBytes: *queryLogMaxBytes,
		})
		if err != nil {
			fatal(logger, "opening query log", err)
		}
		defer qlog.Close()
		logger.Info("query log enabled", "file", *queryLogPath, "max_bytes", *queryLogMaxBytes)
	}
	srv := server.New(idx, ds.Ont, server.Options{
		DMax:         *dmax,
		Metrics:      reg,
		Logger:       logger,
		SlowQuery:    sq,
		QueryTimeout: *queryTimeout,
		MaxInFlight:  *maxInFlight,
		ShedWait:     sw,
		Cache:        cacheOptions(*cacheSize, *cacheTTL, *cacheBytes),
		Debug: server.DebugOptions{
			Endpoints:   *debugEndpoints,
			Sample:      *traceSample,
			StoreSize:   *traceStoreSize,
			KeepSlowest: *traceKeepSlowest,
		},
		QueryLog:     qlog,
		ShadowSample: *shadowSample,
		AdminToken:   *adminToken,
		Shards:       *shards,
		BlockSize:    *shardBlockSize,
		ShardClient:  shardClient,
	})

	if *warmFile != "" {
		if err := warmCache(srv, logger, *warmFile); err != nil {
			fatal(logger, "warming cache", err)
		}
	}

	// Live mutation: with -wal set, POST /admin/edges mutates the served
	// graph through delta maintenance, every accepted batch fsynced to the
	// WAL before it is applied, and POST /admin/compact (or -wal-max-bytes)
	// folds the log into the snapshot. Wired before the reloader so a
	// mutation can never observe a half-wired admin surface.
	var mut *server.Mutator
	if wlog != nil {
		mopt := server.MutatorOptions{
			WAL:          wlog,
			DamageBudget: *damageBudget,
			MaxWALBytes:  *walMaxBytes,
			Logger:       logger,
		}
		if *snapshotFile != "" {
			mopt.Persist = func(_ context.Context, idx *core.Index, seq uint64) error {
				return persistSnapshot(*snapshotFile, idx, walMeta(ds, seq), logger, snapSaveSec)
			}
		}
		mut = server.NewMutator(srv, walSeq, mopt)
	}

	// Hot reload: POST /admin/reload or SIGHUP re-reads the data graph,
	// rebuilds the hierarchy with the stored configurations, swaps it in
	// without interrupting in-flight queries, then re-persists the
	// snapshot and re-warms the cache. Failures keep the last good index
	// serving and retry on a jittered exponential backoff. With a WAL the
	// source is the *live* graph — mutation batches are part of the data
	// now, so a reload recomputes the hierarchy in place instead of
	// resurrecting the boot preset and silently discarding them.
	rl := server.NewReloader(srv, server.ReloaderOptions{
		Source: func(context.Context) (*graph.Graph, error) {
			if wlog != nil {
				return srv.Index().Data(), nil
			}
			fresh, err := presetByName(*preset)
			if err != nil {
				return nil, err
			}
			return fresh.Graph, nil
		},
		AfterSwap: func(ctx context.Context, idx *core.Index) error {
			var errs []error
			if *snapshotFile != "" {
				meta := snapshot.Meta{CreatedUnix: time.Now().Unix(), BuildNote: ds.Name}
				if mut != nil {
					meta = walMeta(ds, mut.Seq())
				}
				errs = append(errs, persistSnapshot(*snapshotFile, idx, meta, logger, snapSaveSec))
			}
			if *warmFile != "" {
				errs = append(errs, warmCache(srv, logger, *warmFile))
			}
			return errors.Join(errs...)
		},
		MinBackoff:    *reloadMinBackoff,
		MaxBackoff:    *reloadMaxBackoff,
		FailThreshold: *reloadFails,
		Logger:        logger,
	})
	rlCtx, rlCancel := context.WithCancel(context.Background())
	defer rlCancel()
	go rl.Run(rlCtx)

	wt := *writeTimeout
	if wt == 0 {
		// The write timeout must outlast the query deadline or degraded
		// partial responses would be cut off mid-write.
		wt = *queryTimeout + 30*time.Second
	}
	httpSrv := &http.Server{
		Handler:           srv,
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      wt,
		IdleTimeout:       *idleTimeout,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, "listen", err)
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	hups := make(chan os.Signal, 1)
	signal.Notify(hups, syscall.SIGHUP)

	logger.Info("serving", "dataset", ds.Name, "addr", ln.Addr().String(),
		"query_timeout", *queryTimeout, "max_inflight", *maxInFlight)
	if err := serve(ln, httpSrv, srv, logger, *drainGrace, *drainTimeout, sigs, hups, rl); err != nil {
		fatal(logger, "listen", err)
	}
}

// runShardServer is -shard-serve's main loop: plan the booted data graph
// (the same deterministic partition every coordinator derives), listen for
// shardrpc connections, and drain gracefully on SIGINT/SIGTERM. The block
// spec only restricts which blocks this process answers — misrouted
// requests are refused — while routing itself lives in the coordinator's
// -shard-peers membership.
func runShardServer(logger *slog.Logger, idx *core.Index, addr, blockSpec string, blockSize int) {
	plan := shard.NewPlanner(shard.Options{BlockSize: blockSize}).PlanGraph(idx.Data())
	blocks, err := shardrpc.ParseBlocks(blockSpec, plan.NumBlocks())
	if err != nil {
		fatal(logger, "bad -shard-blocks", err)
	}
	srv := shardrpc.NewServer(plan, shardrpc.ServerOptions{
		Blocks:    blocks,
		BlockSize: blockSize,
		Logger:    logger,
	})
	lnAddr, err := srv.Listen(addr)
	if err != nil {
		fatal(logger, "shard listen", err)
	}
	serving := blockSpec
	if blocks == nil {
		serving = "all"
	}
	logger.Info("shard server ready",
		"addr", lnAddr.String(),
		"blocks", plan.NumBlocks(),
		"serving", serving,
		"digest", fmt.Sprintf("%016x", idx.Data().Digest()))
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	logger.Info("shutdown signal received; closing shard server", "signal", fmt.Sprint(sig))
	srv.Close()
}

// bootIndex restores the index from the snapshot when one is configured
// and valid; any other outcome — no file yet, corruption, a snapshot of a
// different source graph — logs its precise reason and falls back to a
// full build, after which the (re)built index is snapshotted for the next
// boot. Corruption can therefore cost time but never availability.
func bootIndex(ds *datagen.Dataset, snapPath string, reg *obs.Registry,
	logger *slog.Logger, loadSec, saveSec *obs.Gauge) *core.Index {
	if snapPath != "" {
		start := time.Now()
		idx, meta, err := snapshot.LoadFileFor(snapPath, ds.Ont, ds.Graph.Digest())
		if err == nil {
			elapsed := time.Since(start)
			loadSec.Set(elapsed.Seconds())
			logger.Info("index restored from snapshot",
				"file", snapPath,
				"layers", idx.NumLayers(),
				"epoch", meta.Epoch,
				"created", time.Unix(meta.CreatedUnix, 0).UTC().Format(time.RFC3339),
				"note", meta.BuildNote,
				"elapsed", elapsed.Round(time.Millisecond))
			return idx
		}
		switch {
		case snapshot.IsNotExist(err):
			logger.Info("no snapshot yet; building index", "file", snapPath)
		case errors.Is(err, snapshot.ErrSourceMismatch):
			logger.Warn("snapshot is from a different source graph; rebuilding", "file", snapPath, "err", err)
		case errors.Is(err, snapshot.ErrBadSnapshot):
			logger.Warn("snapshot is corrupt; rebuilding", "file", snapPath, "err", err)
		default:
			logger.Warn("snapshot unreadable; rebuilding", "file", snapPath, "err", err)
		}
	}
	start := time.Now()
	opt := core.DefaultBuildOptions()
	opt.Obs = reg // build gauges surface on /metrics
	opt.Logger = logger
	idx, err := core.Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		fatal(logger, "building index", err)
	}
	logger.Info("index built", "dataset", ds.Name,
		"elapsed", time.Since(start).Round(time.Millisecond), "layers", idx.NumLayers())
	if snapPath != "" {
		// Best effort: a failed save leaves the daemon serving; the next
		// successful reload retries the persist.
		meta := snapshot.Meta{CreatedUnix: time.Now().Unix(), BuildNote: ds.Name}
		_ = persistSnapshot(snapPath, idx, meta, logger, saveSec)
	}
	return idx
}

// walMeta is the snapshot metadata for a WAL-maintained index: it records
// the boot base the log is anchored to and the last batch the snapshot
// covers, so the next boot replays only the tail.
func walMeta(ds *datagen.Dataset, seq uint64) snapshot.Meta {
	return snapshot.Meta{
		CreatedUnix: time.Now().Unix(),
		BuildNote:   ds.Name,
		BaseDigest:  ds.Graph.Digest(),
		WALSeq:      seq,
	}
}

// bootIndexWAL is bootIndex for live-mutation deployments: open the WAL
// (its base digest must match the preset — replaying someone else's
// mutation history would be silently wrong), restore the snapshot when it
// descends from that base, rebuild otherwise, then replay every WAL batch
// the snapshot does not already cover. The one unrecoverable shape is a
// snapshot older than the log's first record when the log does not start
// at batch 1 — compaction discarded records only a lost newer snapshot
// covered — which is fatal rather than quietly served wrong.
func bootIndexWAL(ds *datagen.Dataset, snapPath, walPath string, reg *obs.Registry,
	logger *slog.Logger, loadSec, saveSec *obs.Gauge) (*core.Index, *wal.Log, uint64) {
	base := ds.Graph.Digest()
	wlog, info, err := wal.Open(walPath, wal.Options{BaseDigest: base})
	if err != nil {
		fatal(logger, "opening WAL (a mismatched or structurally damaged log needs operator attention; deleting it discards acknowledged mutations)", err)
	}
	if info.Truncated {
		logger.Warn("WAL had a torn tail (crash mid-append); truncated",
			"file", walPath, "dropped_bytes", info.DroppedBytes)
	}

	var idx *core.Index
	var covered uint64
	rebuilt := false
	if snapPath != "" {
		start := time.Now()
		loaded, meta, err := snapshot.LoadFileWithBase(snapPath, ds.Ont, base)
		if err == nil {
			elapsed := time.Since(start)
			loadSec.Set(elapsed.Seconds())
			idx, covered = loaded, meta.WALSeq
			logger.Info("index restored from snapshot",
				"file", snapPath, "layers", idx.NumLayers(), "epoch", meta.Epoch,
				"wal_seq", covered, "elapsed", elapsed.Round(time.Millisecond))
		} else {
			switch {
			case snapshot.IsNotExist(err):
				logger.Info("no snapshot yet; building index", "file", snapPath)
			case errors.Is(err, snapshot.ErrSourceMismatch):
				logger.Warn("snapshot is unrelated to the WAL's base graph; rebuilding", "file", snapPath, "err", err)
			default:
				logger.Warn("snapshot unusable; rebuilding", "file", snapPath, "err", err)
			}
		}
	}
	if idx == nil {
		idx = buildIndex(ds, reg, logger)
		rebuilt = true
	}

	if n := len(info.Batches); n > 0 {
		lo := info.Batches[0].Seq
		if covered+1 < lo {
			// The log was compacted past this snapshot. Only a pristine
			// log (starting at batch 1) can be replayed from a rebuilt
			// base; anything else has lost history.
			fatal(logger, "boot", fmt.Errorf(
				"WAL %s starts at batch %d but snapshot %s covers only %d: the missing batches were compacted into a snapshot that no longer exists",
				walPath, lo, snapPath, covered))
		}
		replayed := 0
		start := time.Now()
		for _, b := range info.Batches {
			if b.Seq <= covered {
				continue // compaction crashed between persist and truncate; the snapshot already has it
			}
			idx, err = replayBatch(idx, b)
			if err != nil {
				fatal(logger, "replaying WAL", fmt.Errorf("batch %d: %w", b.Seq, err))
			}
			covered = b.Seq
			replayed++
		}
		logger.Info("WAL replayed", "file", walPath, "batches", replayed,
			"skipped", n-replayed, "seq", covered, "wal_bytes", wlog.Size(),
			"elapsed", time.Since(start).Round(time.Millisecond))
	}
	// The in-memory sequence floor must cover the snapshot even when the
	// log is empty (freshly compacted), or the next accepted batch would
	// reuse a sequence number the snapshot already claims.
	wlog.SetLastSeq(covered)

	if snapPath != "" && (rebuilt || covered > 0) {
		// Best effort, exactly like bootIndex: folding the replayed tail
		// into the snapshot now makes the next boot a pure load.
		_ = persistSnapshot(snapPath, idx, walMeta(ds, covered), logger, saveSec)
	}
	return idx, wlog, covered
}

// replayBatch folds one durable WAL batch into the index: the delta path
// with no damage budget (boot is offline — there is no serving index to
// protect from a long maintenance pass), falling back to a full Refreshed
// rebuild if maintenance refuses. Records were strictly validated before
// they entered the log, so Patch itself cannot fail on an intact log.
func replayBatch(idx *core.Index, b wal.Batch) (*core.Index, error) {
	d := core.Delta{AddVertices: b.AddVertices, AddEdges: b.AddEdges, RemoveEdges: b.RemoveEdges}
	next, _, err := idx.Applied(d, core.DeltaOptions{})
	if err == nil {
		return next, nil
	}
	patched, perr := graph.Patch(idx.Data(), b.AddVertices, b.AddEdges, b.RemoveEdges)
	if perr != nil {
		return nil, perr
	}
	return idx.Refreshed(patched)
}

// buildIndex is the cold-start build shared by both boot paths.
func buildIndex(ds *datagen.Dataset, reg *obs.Registry, logger *slog.Logger) *core.Index {
	start := time.Now()
	opt := core.DefaultBuildOptions()
	opt.Obs = reg
	opt.Logger = logger
	idx, err := core.Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		fatal(logger, "building index", err)
	}
	logger.Info("index built", "dataset", ds.Name,
		"elapsed", time.Since(start).Round(time.Millisecond), "layers", idx.NumLayers())
	return idx
}

// persistSnapshot writes the crash-safe snapshot and records its wall
// time; failures are logged and returned, never fatal.
func persistSnapshot(path string, idx *core.Index, meta snapshot.Meta,
	logger *slog.Logger, saveSec *obs.Gauge) error {
	start := time.Now()
	if err := snapshot.SaveFile(path, idx, meta); err != nil {
		logger.Warn("snapshot save failed", "file", path, "err", err)
		return err
	}
	elapsed := time.Since(start)
	saveSec.Set(elapsed.Seconds())
	logger.Info("snapshot saved", "file", path, "epoch", idx.Epoch(),
		"elapsed", elapsed.Round(time.Millisecond))
	return nil
}

// serve runs httpSrv on ln until a shutdown signal arrives, then drains
// gracefully: readiness flips to 503 so load balancers stop routing, grace
// passes so they have a chance to notice, in-flight requests get up to
// drainTimeout to finish via http.Server.Shutdown, and serve returns nil
// for a clean exit 0. A listener error before any signal is returned as-is.
// SIGHUP (hups) schedules an asynchronous index reload through rl and
// keeps serving; both hups and rl may be nil (tests).
func serve(ln net.Listener, httpSrv *http.Server, srv *server.Server, logger *slog.Logger,
	grace, drainTimeout time.Duration, sigs, hups <-chan os.Signal, rl *server.Reloader) error {
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	for {
		select {
		case err := <-errCh:
			if err == http.ErrServerClosed {
				return nil
			}
			return err
		case <-hups:
			logger.Info("SIGHUP received; scheduling index reload")
			if rl != nil {
				rl.Trigger()
			}
		case sig := <-sigs:
			logger.Info("shutdown signal received; draining",
				"signal", fmt.Sprint(sig), "grace", grace, "timeout", drainTimeout)
			srv.SetDraining(true)
			time.Sleep(grace)
			ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			defer cancel()
			if err := httpSrv.Shutdown(ctx); err != nil {
				logger.Warn("drain timed out; forcing close", "err", err)
				httpSrv.Close()
			}
			logger.Info("drained; exiting")
			return nil
		}
	}
}

// servePprof exposes the profiling handlers on a dedicated mux: the public
// listener never sees /debug/pprof even though importing net/http/pprof
// registers it on http.DefaultServeMux.
func servePprof(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("pprof listener failed", "err", err)
	}
}

// cacheOptions maps the daemon's flag conventions (0 = off/unbounded)
// onto server.CacheOptions' (0 = default, negative = off/unbounded).
func cacheOptions(size int, ttl time.Duration, bytes int64) server.CacheOptions {
	co := server.CacheOptions{Size: size, TTL: ttl, Bytes: bytes}
	if size <= 0 {
		co.Size = -1
	}
	if ttl <= 0 {
		co.TTL = -1
	}
	if bytes <= 0 {
		co.Bytes = -1
	}
	return co
}

// warmCache pre-populates the query cache from a workload file (one
// query per line: "kw1,kw2 [| algo [| k]]"; #-comments and blanks are
// skipped). Individual bad lines are logged, not fatal — a stale
// workload file should not keep the daemon from serving.
func warmCache(srv *server.Server, logger *slog.Logger, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	start := time.Now()
	n, err := srv.Warm(context.Background(), strings.Split(string(data), "\n"))
	if err != nil {
		logger.Warn("some warm queries failed", "file", path, "err", err)
	}
	logger.Info("cache warmed", "file", path, "queries", n,
		"elapsed", time.Since(start).Round(time.Millisecond))
	return nil
}

// configAttrs renders a FlagSet's full effective configuration — every
// defined flag with the value it ended up with after parsing and
// defaulting — as slog attrs, sorted by flag name (flag.VisitAll order).
func configAttrs(fs *flag.FlagSet) []any {
	var attrs []any
	fs.VisitAll(func(f *flag.Flag) {
		attrs = append(attrs, slog.String(f.Name, f.Value.String()))
	})
	return attrs
}

func parseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "err", err)
	os.Exit(1)
}

func presetByName(name string) (*datagen.Dataset, error) {
	switch name {
	case "demo":
		return datagen.Generate(datagen.Options{
			Name: "demo", Entities: 1500, Terms: 120, LeafTypes: 8, Seed: 4242,
		}), nil
	case "yago-s":
		return datagen.YagoSmall(), nil
	case "dbpedia-s":
		return datagen.DbpediaSmall(), nil
	case "imdb-s":
		return datagen.ImdbSmall(), nil
	case "synt-10k":
		return datagen.Synthetic(10000, 8101), nil
	case "synt-20k":
		return datagen.Synthetic(20000, 8102), nil
	case "synt-40k":
		return datagen.Synthetic(40000, 8103), nil
	case "synt-80k":
		return datagen.Synthetic(80000, 8104), nil
	default:
		return nil, fmt.Errorf("unknown preset %q", name)
	}
}

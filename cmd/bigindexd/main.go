// Command bigindexd serves a BiG-index over HTTP (see internal/server for
// the API):
//
//	bigindexd -preset yago-s -addr :8080
//	bigindexd -preset demo -index saved.bigx      # load instead of build
//
//	curl 'localhost:8080/query?q=term 17,term 27&algo=blinks&k=5'
//	curl 'localhost:8080/explain?q=term 17,term 27'
//	curl 'localhost:8080/complete?prefix=term'
//	curl 'localhost:8080/stats'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/datagen"
	"bigindex/internal/server"
)

func main() {
	preset := flag.String("preset", "demo", "dataset preset (demo, yago-s, dbpedia-s, imdb-s, synt-*)")
	addr := flag.String("addr", ":8080", "listen address")
	indexFile := flag.String("index", "", "load a saved index instead of building")
	dmax := flag.Int("dmax", 4, "distance bound")
	flag.Parse()

	ds, err := presetByName(*preset)
	if err != nil {
		log.Fatal(err)
	}
	var idx *core.Index
	if *indexFile != "" {
		f, err := os.Open(*indexFile)
		if err != nil {
			log.Fatal(err)
		}
		idx, err = core.Load(f, ds.Ont)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded index from %s (%d layers)", *indexFile, idx.NumLayers())
	} else {
		start := time.Now()
		idx, err = core.Build(ds.Graph, ds.Ont, core.DefaultBuildOptions())
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("built index for %s in %v (%d layers)", ds.Name, time.Since(start).Round(time.Millisecond), idx.NumLayers())
	}

	srv := server.New(idx, ds.Ont, server.Options{DMax: *dmax})
	log.Printf("serving %s on %s", ds.Name, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

func presetByName(name string) (*datagen.Dataset, error) {
	switch name {
	case "demo":
		return datagen.Generate(datagen.Options{
			Name: "demo", Entities: 1500, Terms: 120, LeafTypes: 8, Seed: 4242,
		}), nil
	case "yago-s":
		return datagen.YagoSmall(), nil
	case "dbpedia-s":
		return datagen.DbpediaSmall(), nil
	case "imdb-s":
		return datagen.ImdbSmall(), nil
	case "synt-10k":
		return datagen.Synthetic(10000, 8101), nil
	case "synt-20k":
		return datagen.Synthetic(20000, 8102), nil
	case "synt-40k":
		return datagen.Synthetic(40000, 8103), nil
	case "synt-80k":
		return datagen.Synthetic(80000, 8104), nil
	default:
		return nil, fmt.Errorf("unknown preset %q", name)
	}
}

package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/datagen"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/search"
	"bigindex/internal/server"
)

// slowAlgo holds one query open until released, so the drain test can pin an
// in-flight request across the shutdown signal.
type slowAlgo struct {
	started chan struct{}
	release chan struct{}
}

func (a *slowAlgo) Name() string                                    { return "slow" }
func (a *slowAlgo) Prepare(g *graph.Graph) (search.Prepared, error) { return &slowPrepared{a}, nil }
func (a *slowAlgo) NewGeneration(data *graph.Graph, q []graph.Label, opt search.GenOptions) search.Generation {
	return slowGen{}
}

type slowPrepared struct{ a *slowAlgo }

func (p *slowPrepared) Search(q []graph.Label, k int) ([]search.Match, error) {
	return p.SearchCtx(context.Background(), q, k)
}
func (p *slowPrepared) SearchCtx(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
	select {
	case p.a.started <- struct{}{}:
	default:
	}
	select {
	case <-p.a.release:
		return []search.Match{{Root: 0, Score: 1}}, nil
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

type slowGen struct{}

func (slowGen) Generate(rootCands []graph.V, cands [][]graph.V) []search.Match { return nil }
func (slowGen) GenerateCtx(ctx context.Context, rootCands []graph.V, cands [][]graph.V) []search.Match {
	return nil
}

// The daemon's cache flags say 0 = off/unbounded; server.Options says
// 0 = default and negative = off/unbounded. cacheOptions translates.
func TestCacheOptionsMapping(t *testing.T) {
	co := cacheOptions(0, 0, 0)
	if co.Size != -1 || co.TTL != -1 || co.Bytes != -1 {
		t.Fatalf("zero flags should disable: %+v", co)
	}
	co = cacheOptions(128, time.Second, 1<<20)
	if co.Size != 128 || co.TTL != time.Second || co.Bytes != 1<<20 {
		t.Fatalf("positive flags should pass through: %+v", co)
	}
}

// -warm-file pre-populates the cache before the listener opens; bad
// lines are logged but never fatal.
func TestWarmCacheFile(t *testing.T) {
	ds := datagen.Generate(datagen.Options{
		Name: "warm", Entities: 200, Terms: 40, LeafTypes: 6, Seed: 11,
	})
	bopt := core.DefaultBuildOptions()
	bopt.Search.SampleCount = 20
	idx, err := core.Build(ds.Graph, ds.Ont, bopt)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(idx, ds.Ont, server.Options{DMax: 3})

	kw := ""
	bestC := 0
	for _, l := range ds.Graph.DistinctLabels() {
		if c := ds.Graph.LabelCount(l); c > bestC {
			bestC = c
			kw = ds.Graph.Dict().Name(l)
		}
	}
	path := t.TempDir() + "/warm.txt"
	content := "# workload\n" + kw + "\n" + kw + " | bkws | 5\nzzzznotaterm\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := warmCache(srv, obs.DiscardLogger(), path); err != nil {
		t.Fatalf("warmCache: %v", err)
	}
	if got := srv.Cache().Len(); got != 2 {
		t.Fatalf("cache entries after warm = %d, want 2", got)
	}
	if err := warmCache(srv, obs.DiscardLogger(), path+".missing"); err == nil {
		t.Fatal("missing warm file not reported")
	}
}

// TestGracefulDrain drives the serve loop end to end over a real listener:
// a shutdown signal flips /readyz to 503 during the grace window, the
// in-flight query is allowed to finish with a 200, and serve returns nil
// (the daemon's clean exit 0).
func TestGracefulDrain(t *testing.T) {
	ds := datagen.Generate(datagen.Options{
		Name: "drain", Entities: 200, Terms: 40, LeafTypes: 6, Seed: 3,
	})
	bopt := core.DefaultBuildOptions()
	bopt.Search.SampleCount = 20
	idx, err := core.Build(ds.Graph, ds.Ont, bopt)
	if err != nil {
		t.Fatal(err)
	}
	slow := &slowAlgo{started: make(chan struct{}, 1), release: make(chan struct{})}
	srv := server.New(idx, ds.Ont, server.Options{
		DMax:            3,
		ExtraAlgorithms: map[string]search.Algorithm{"slow": slow},
	})
	httpSrv := &http.Server{Handler: srv}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(ln, httpSrv, srv, obs.DiscardLogger(), 600*time.Millisecond, 10*time.Second, sigs, nil, nil)
	}()
	base := "http://" + ln.Addr().String()

	// A keyword guaranteed to resolve: the most frequent label name.
	kw := ""
	bestC := 0
	for _, l := range ds.Graph.DistinctLabels() {
		if c := ds.Graph.LabelCount(l); c > bestC {
			bestC = c
			kw = ds.Graph.Dict().Name(l)
		}
	}

	type result struct {
		code int
		body string
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/query?q=" + url.QueryEscape(kw) + "&algo=slow&direct=1")
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inflight <- result{code: resp.StatusCode, body: string(b)}
	}()
	<-slow.started

	// Before the signal the server is ready.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before signal: %d", resp.StatusCode)
	}

	sigs <- syscall.SIGTERM

	// During the grace window the listener still accepts and /readyz says
	// 503, which is how load balancers learn to stop routing here.
	saw503 := false
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			break // grace elapsed and the listener closed; acceptable
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			saw503 = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !saw503 {
		t.Fatal("readyz never reported 503 during the drain grace window")
	}

	// The in-flight query outlives the signal and completes normally.
	close(slow.release)
	res := <-inflight
	if res.err != nil {
		t.Fatalf("in-flight query failed during drain: %v", res.err)
	}
	if res.code != http.StatusOK || !strings.Contains(res.body, `"count"`) {
		t.Fatalf("in-flight query: status %d body %s", res.code, res.body)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want nil for a clean exit", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not return after drain")
	}
}

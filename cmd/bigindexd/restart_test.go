package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"testing"

	"bigindex/internal/datagen"
	"bigindex/internal/obs"
	"bigindex/internal/server"
	"bigindex/internal/snapshot"
)

// topTerms returns the n most frequent label names — keywords guaranteed
// to resolve, deterministically picked.
func topTerms(ds *datagen.Dataset, n int) []string {
	type tc struct {
		name  string
		count int
	}
	var all []tc
	for _, l := range ds.Graph.DistinctLabels() {
		all = append(all, tc{ds.Graph.Dict().Name(l), ds.Graph.LabelCount(l)})
	}
	for i := 0; i < n && i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].count > all[i].count ||
				(all[j].count == all[i].count && all[j].name < all[i].name) {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	out := make([]string, 0, n)
	for i := 0; i < n && i < len(all); i++ {
		out = append(out, all[i].name)
	}
	return out
}

// normalizeQueryJSON strips the only legitimately nondeterministic field
// (wall-clock elapsed) and re-marshals; everything else must match.
func normalizeQueryJSON(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]interface{}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad query JSON: %v\n%s", err, body)
	}
	delete(m, "elapsed")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestRestartEquivalence is the end-to-end restart proof: a daemon booted
// from a snapshot answers every query byte-identically to the daemon that
// built the index — across all four algorithms. This is what licenses
// `-snapshot` boot as a drop-in replacement for a cold rebuild.
func TestRestartEquivalence(t *testing.T) {
	ds := datagen.Generate(datagen.Options{
		Name: "restart", Entities: 600, Terms: 60, LeafTypes: 6, Seed: 17,
	})
	snapPath := t.TempDir() + "/index.snap"
	logger := obs.DiscardLogger()

	// First boot: no snapshot exists, so bootIndex builds and persists.
	regA := obs.NewRegistry()
	loadA := regA.Gauge("l", "")
	saveA := regA.Gauge("s", "")
	idxA := bootIndex(ds, snapPath, regA, logger, loadA, saveA)
	if saveA.Value() == 0 {
		t.Fatal("first boot did not persist a snapshot")
	}
	if loadA.Value() != 0 {
		t.Fatal("first boot claims to have loaded a snapshot that did not exist")
	}

	// Second boot: must restore from the snapshot, not rebuild.
	regB := obs.NewRegistry()
	loadB := regB.Gauge("l", "")
	saveB := regB.Gauge("s", "")
	idxB := bootIndex(ds, snapPath, regB, logger, loadB, saveB)
	if loadB.Value() == 0 {
		t.Fatal("second boot did not load the snapshot")
	}
	if saveB.Value() != 0 {
		t.Fatal("second boot re-persisted after a successful load")
	}
	if idxB.NumLayers() != idxA.NumLayers() {
		t.Fatalf("restored layers %d, want %d", idxB.NumLayers(), idxA.NumLayers())
	}

	// Cache off so every response is a fresh evaluation (no "cached" flag
	// drift between the two servers).
	sopt := server.Options{DMax: 3, BlockSize: 64, Cache: server.CacheOptions{Size: -1}}
	srvA := server.New(idxA, ds.Ont, sopt)
	srvB := server.New(idxB, ds.Ont, sopt)

	terms := topTerms(ds, 2)
	if len(terms) < 2 {
		t.Fatal("fixture too small for a two-keyword query")
	}
	queries := []string{
		"q=" + url.QueryEscape(terms[0]) + "&k=5",
		"q=" + url.QueryEscape(terms[0]+","+terms[1]) + "&k=7",
		"q=" + url.QueryEscape(terms[1]) + "&k=3&direct=1",
	}
	for _, algo := range []string{"bkws", "bidir", "blinks", "rclique"} {
		for _, q := range queries {
			path := "/query?" + q + "&algo=" + algo
			get := func(s *server.Server) (int, string) {
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				return rec.Code, rec.Body.String()
			}
			codeA, bodyA := get(srvA)
			codeB, bodyB := get(srvB)
			if codeA != http.StatusOK || codeB != http.StatusOK {
				t.Fatalf("%s: status %d vs %d: %s", path, codeA, codeB, bodyA)
			}
			na, nb := normalizeQueryJSON(t, []byte(bodyA)), normalizeQueryJSON(t, []byte(bodyB))
			if na != nb {
				t.Errorf("%s: built and restored servers disagree\nbuilt:    %s\nrestored: %s", path, na, nb)
			}
		}
	}

	// A corrupted snapshot must fall back to a rebuild, not crash or serve
	// garbage — and the rebuilt index must be re-persisted and loadable.
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	regC := obs.NewRegistry()
	loadC := regC.Gauge("l", "")
	saveC := regC.Gauge("s", "")
	idxC := bootIndex(ds, snapPath, regC, logger, loadC, saveC)
	if loadC.Value() != 0 {
		t.Fatal("corrupt snapshot was loaded")
	}
	if saveC.Value() == 0 {
		t.Fatal("fallback rebuild did not re-persist")
	}
	if _, _, err := snapshot.LoadFileFor(snapPath, ds.Ont, ds.Graph.Digest()); err != nil {
		t.Fatalf("re-persisted snapshot unreadable: %v", err)
	}
	if idxC.NumLayers() != idxA.NumLayers() {
		t.Fatalf("fallback rebuild layers %d, want %d", idxC.NumLayers(), idxA.NumLayers())
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// freePort reserves an ephemeral localhost port and releases it for the
// process under test to bind. The tiny race window (another process
// grabbing it between Close and bind) is acceptable in tests.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// buildDaemon compiles the bigindexd binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bigindexd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building bigindexd: %v\n%s", err, out)
	}
	return bin
}

// startProc launches bigindexd with args, teeing its output to a log file
// the test dumps on failure.
func startProc(t *testing.T, bin, name string, args ...string) *exec.Cmd {
	t.Helper()
	logf, err := os.Create(filepath.Join(t.TempDir(), name+".log"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		if t.Failed() {
			if data, err := os.ReadFile(logf.Name()); err == nil {
				t.Logf("--- %s log ---\n%s", name, data)
			}
		}
		logf.Close()
	})
	return cmd
}

func waitDial(t *testing.T, addr string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s did not start accepting within %s", addr, timeout)
}

func waitReady(t *testing.T, base string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s/readyz did not turn 200 within %s", base, timeout)
}

func queryJSON(t *testing.T, rawURL string) (int, map[string]interface{}, time.Duration) {
	t.Helper()
	start := time.Now()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	defer resp.Body.Close()
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding %s: %v", rawURL, err)
	}
	return resp.StatusCode, body, time.Since(start)
}

// TestShardProcessKillE2E is the whole-system fault story with real
// processes and real sockets: a coordinator over two replica shard
// servers keeps answering identically when one replica is SIGKILLed
// (failover), degrades honestly — 200, in-deadline, coverage-annotated —
// when the second goes too, and returns to full healthy answers once a
// shard process is restarted on the same address.
func TestShardProcessKillE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := buildDaemon(t)
	shardA, shardB := freePort(t), freePort(t)
	httpAddr := freePort(t)

	procA := startProc(t, bin, "shard-a", "-preset", "demo", "-shard-serve", shardA)
	procB := startProc(t, bin, "shard-b", "-preset", "demo", "-shard-serve", shardB)
	waitDial(t, shardA, 60*time.Second)
	waitDial(t, shardB, 60*time.Second)

	startProc(t, bin, "coord", "-preset", "demo", "-addr", httpAddr,
		"-shard-peers", shardA+";"+shardB)
	base := "http://" + httpAddr
	waitReady(t, base, 60*time.Second)

	ds, err := presetByName("demo")
	if err != nil {
		t.Fatal(err)
	}
	kw := url.QueryEscape(topTerms(ds, 1)[0])
	q := fmt.Sprintf("%s/query?q=%s&algo=bkws&layer=0&k=5&nocache=1&timeout=10s", base, kw)

	code, healthy, _ := queryJSON(t, q)
	if code != http.StatusOK || healthy["degraded"] != nil {
		t.Fatalf("healthy fleet: code %d, degraded %v", code, healthy["degraded"])
	}
	want, _ := json.Marshal(healthy["matches"])

	// Kill one of two replicas mid-serving: every block still has a live
	// replica, so answers stay byte-identical with no degradation.
	procA.Process.Signal(syscall.SIGKILL)
	procA.Wait()
	code, body, _ := queryJSON(t, q)
	if code != http.StatusOK || body["degraded"] != nil {
		t.Fatalf("after killing one replica: code %d, degraded %v (reason %v)",
			code, body["degraded"], body["degraded_reason"])
	}
	if got, _ := json.Marshal(body["matches"]); string(got) != string(want) {
		t.Fatalf("failover changed the answer:\n%s\nvs healthy\n%s", got, want)
	}

	// Kill the last replica: the query must still return 200 inside its
	// deadline, marked degraded with an honest coverage block.
	procB.Process.Signal(syscall.SIGKILL)
	procB.Wait()
	code, body, elapsed := queryJSON(t, q)
	if code != http.StatusOK {
		t.Fatalf("after killing all replicas: code %d", code)
	}
	if elapsed > 12*time.Second {
		t.Fatalf("degraded query took %s, past its 10s deadline", elapsed)
	}
	if body["degraded"] != true || body["degraded_reason"] != "shards" {
		t.Fatalf("expected shard degradation, got degraded=%v reason=%v",
			body["degraded"], body["degraded_reason"])
	}
	cov, _ := body["coverage"].(map[string]interface{})
	if cov == nil {
		t.Fatalf("degraded response missing coverage block: %v", body)
	}
	frac, _ := cov["fraction"].(float64)
	unver, _ := cov["roots_unverified"].(float64)
	if !(frac < 1 || unver > 0) {
		t.Fatalf("coverage block claims nothing lost: %v", cov)
	}

	// Restart a shard on A's old address: after the breaker cooldown the
	// coordinator recovers to full healthy answers on its own.
	startProc(t, bin, "shard-a2", "-preset", "demo", "-shard-serve", shardA)
	waitDial(t, shardA, 60*time.Second)
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body, _ = queryJSON(t, q)
		if code == http.StatusOK && body["degraded"] == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no recovery after shard restart: code %d degraded %v", code, body["degraded"])
		}
		time.Sleep(500 * time.Millisecond)
	}
	if got, _ := json.Marshal(body["matches"]); string(got) != string(want) {
		t.Fatalf("post-recovery answer differs:\n%s\nvs healthy\n%s", got, want)
	}
}

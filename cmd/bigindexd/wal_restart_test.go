package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"bigindex/internal/core"
	"bigindex/internal/datagen"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/server"
	"bigindex/internal/snapshot"
	"bigindex/internal/wal"
)

// walServer assembles the daemon's serving stack around an index that came
// out of bootIndexWAL, mirroring main(): mutator wired with the WAL and a
// snapshot persist hook, cache off so every answer is a fresh evaluation.
func walServer(t *testing.T, ds *datagen.Dataset, idx *core.Index,
	wlog *wal.Log, seq uint64, snapPath string, saveSec *obs.Gauge) (*server.Server, *server.Mutator) {
	t.Helper()
	srv := server.New(idx, ds.Ont, server.Options{
		DMax: 3, BlockSize: 64, Cache: server.CacheOptions{Size: -1},
	})
	mut := server.NewMutator(srv, seq, server.MutatorOptions{
		WAL: wlog,
		Persist: func(_ context.Context, i *core.Index, s uint64) error {
			return persistSnapshot(snapPath, i, walMeta(ds, s), obs.DiscardLogger(), saveSec)
		},
	})
	return srv, mut
}

// mutate POSTs one mutation batch through the admin API and fails the test
// on anything but success.
func mutate(t *testing.T, srv *server.Server, body map[string]interface{}) map[string]interface{} {
	t.Helper()
	js, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/admin/edges", bytes.NewReader(js))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("mutation batch: %d: %s", rec.Code, rec.Body.String())
	}
	out := map[string]interface{}{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// edgeBody builds an /admin/edges body from typed edges.
func edgeBody(add, remove []graph.Edge, verts ...string) map[string]interface{} {
	toJSON := func(es []graph.Edge) []map[string]uint32 {
		out := make([]map[string]uint32, len(es))
		for i, e := range es {
			out[i] = map[string]uint32{"from": uint32(e.From), "to": uint32(e.To)}
		}
		return out
	}
	body := map[string]interface{}{}
	if len(add) > 0 {
		body["add_edges"] = toJSON(add)
	}
	if len(remove) > 0 {
		body["remove_edges"] = toJSON(remove)
	}
	if len(verts) > 0 {
		body["add_vertices"] = verts
	}
	return body
}

// absentEdges returns n edges not present in g, deterministically.
func absentEdges(t *testing.T, g *graph.Graph, n int, skip map[graph.Edge]bool) []graph.Edge {
	t.Helper()
	var out []graph.Edge
	nv := g.NumVertices()
	for u := 0; u < nv && len(out) < n; u++ {
		for v := nv - 1; v >= 0 && len(out) < n; v-- {
			e := graph.Edge{From: graph.V(u), To: graph.V(v)}
			if u != v && !g.HasEdge(e.From, e.To) && !skip[e] {
				out = append(out, e)
			}
		}
	}
	if len(out) < n {
		t.Fatal("graph too dense for fixture")
	}
	return out
}

// TestWALRestartEquivalence is the tentpole's end-to-end proof: a daemon
// that accepts mutation batches, is killed without warning (no clean
// shutdown, no final compaction), and reboots from snapshot + WAL replay
// answers every query byte-identically — across all four algorithms — to a
// server whose hierarchy was fully rebuilt over the mutated graph. A
// mid-run compaction and a crash *between* compaction's snapshot persist
// and its WAL truncate are part of the scenario, because those are the
// windows the recovery design argues about.
func TestWALRestartEquivalence(t *testing.T) {
	ds := datagen.Generate(datagen.Options{
		Name: "walrestart", Entities: 600, Terms: 60, LeafTypes: 6, Seed: 17,
	})
	dir := t.TempDir()
	snapPath := dir + "/index.snap"
	walPath := dir + "/mutations.wal"
	logger := obs.DiscardLogger()

	// ---- First life: cold boot, three mutation batches, one compaction.
	regA := obs.NewRegistry()
	loadA, saveA := regA.Gauge("l", ""), regA.Gauge("s", "")
	idxA, wlogA, seqA := bootIndexWAL(ds, snapPath, walPath, regA, logger, loadA, saveA)
	if seqA != 0 {
		t.Fatalf("cold boot covered seq %d, want 0", seqA)
	}
	if saveA.Value() == 0 {
		t.Fatal("cold boot did not persist a base snapshot")
	}
	srvA, mutA := walServer(t, ds, idxA, wlogA, seqA, snapPath, saveA)

	g0 := ds.Graph
	// Batch 1: add two edges. Batch 2: remove one existing edge, add a
	// vertex. Compact. Batch 3: add one more edge (lives only in the WAL).
	adds := absentEdges(t, g0, 3, nil)
	rm := g0.Edges()[len(g0.Edges())/3]
	label := topTerms(ds, 1)[0]

	mutate(t, srvA, edgeBody(adds[:2], nil))
	mutate(t, srvA, edgeBody(nil, []graph.Edge{rm}, label))
	if _, err := mutA.Compact(context.Background()); err != nil {
		t.Fatalf("compaction: %v", err)
	}
	res := mutate(t, srvA, edgeBody(adds[2:3], nil))
	if res["seq"] != float64(3) {
		t.Fatalf("post-compaction batch seq %v, want 3", res["seq"])
	}

	// Ground truth: the mutated graph assembled independently through
	// graph.Patch, and a hierarchy *fully rebuilt* over it.
	gFinal, err := graph.Patch(g0, nil, adds[:2], nil)
	if err == nil {
		gFinal, err = graph.Patch(gFinal, []graph.Label{g0.Dict().Lookup(label)}, nil, []graph.Edge{rm})
	}
	if err == nil {
		gFinal, err = graph.Patch(gFinal, nil, adds[2:3], nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	if got := srvA.Index().Data().Digest(); got != gFinal.Digest() {
		t.Fatal("maintained graph diverged from the independently patched one")
	}

	// ---- kill -9: no compaction, no clean close. Everything the next
	// boot may use is already on disk (snapshot covering seq 2 + WAL).
	wlogA.Close()

	// ---- Second life: snapshot restore + WAL tail replay.
	regB := obs.NewRegistry()
	loadB, saveB := regB.Gauge("l", ""), regB.Gauge("s", "")
	idxB, wlogB, seqB := bootIndexWAL(ds, snapPath, walPath, regB, logger, loadB, saveB)
	defer wlogB.Close()
	if loadB.Value() == 0 {
		t.Fatal("reboot did not restore from the snapshot")
	}
	if seqB != 3 {
		t.Fatalf("reboot covered seq %d, want 3", seqB)
	}
	if idxB.Data().Digest() != gFinal.Digest() {
		t.Fatal("replayed graph != independently patched graph")
	}
	srvB, _ := walServer(t, ds, idxB, wlogB, seqB, snapPath, saveB)

	// ---- Fresh full rebuild of the mutated graph (the reference).
	bopt := core.DefaultBuildOptions()
	base, err := core.Build(ds.Graph, ds.Ont, bopt)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := base.Refreshed(gFinal)
	if err != nil {
		t.Fatal(err)
	}
	srvRef := server.New(ref, ds.Ont, server.Options{
		DMax: 3, BlockSize: 64, Cache: server.CacheOptions{Size: -1},
	})

	terms := topTerms(ds, 2)
	queries := []string{
		"q=" + url.QueryEscape(terms[0]) + "&k=5",
		"q=" + url.QueryEscape(terms[0]+","+terms[1]) + "&k=7",
		"q=" + url.QueryEscape(terms[1]) + "&k=3&direct=1",
	}
	for _, algo := range []string{"bkws", "bidir", "blinks", "rclique"} {
		for _, q := range queries {
			path := "/query?" + q + "&algo=" + algo
			get := func(s *server.Server) (int, string) {
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				return rec.Code, rec.Body.String()
			}
			codeB, bodyB := get(srvB)
			codeR, bodyR := get(srvRef)
			if codeB != http.StatusOK || codeR != http.StatusOK {
				t.Fatalf("%s: status %d vs %d: %s", path, codeB, codeR, bodyB)
			}
			nb, nr := normalizeQueryJSON(t, []byte(bodyB)), normalizeQueryJSON(t, []byte(bodyR))
			if nb != nr {
				t.Errorf("%s: replayed and rebuilt servers disagree\nreplayed: %s\nrebuilt:  %s", path, nb, nr)
			}
		}
	}

	// ---- Crash window between compaction's persist and its truncate: the
	// snapshot now covers seq 3 (the reboot re-persisted the replayed
	// state) while the WAL still holds batch 3. A third boot must skip the
	// already-covered record, not double-apply it.
	wlogB.Close()
	regC := obs.NewRegistry()
	loadC, saveC := regC.Gauge("l", ""), regC.Gauge("s", "")
	idxC, wlogC, seqC := bootIndexWAL(ds, snapPath, walPath, regC, logger, loadC, saveC)
	defer wlogC.Close()
	if loadC.Value() == 0 {
		t.Fatal("third boot did not restore from the snapshot")
	}
	if seqC != 3 {
		t.Fatalf("third boot covered seq %d, want 3", seqC)
	}
	if idxC.Data().Digest() != gFinal.Digest() {
		t.Fatal("skip-covered-records replay corrupted the graph")
	}

	// The snapshot on disk is a valid WAL-anchored snapshot of the base.
	if _, meta, err := snapshot.LoadFileWithBase(snapPath, ds.Ont, ds.Graph.Digest()); err != nil {
		t.Fatalf("final snapshot unreadable: %v", err)
	} else if meta.BaseDigest != ds.Graph.Digest() || meta.WALSeq != 3 {
		t.Fatalf("final snapshot meta: base %016x, wal_seq %d", meta.BaseDigest, meta.WALSeq)
	}
}

package bigindex_test

import (
	"fmt"
	"log"

	"bigindex"
)

// ExampleBuild constructs a tiny index over the paper's university fragment
// and shows the layer hierarchy.
func ExampleBuild() {
	dict := bigindex.NewDict()
	ont := bigindex.NewOntology(dict)
	for _, r := range [][2]string{
		{"Harvard", "Univ."}, {"Cornell", "Univ."}, {"Univ.", "Organization"},
	} {
		if err := ont.AddSupertypeNames(r[0], r[1]); err != nil {
			log.Fatal(err)
		}
	}

	b := bigindex.NewGraphBuilder(dict)
	h := b.AddVertex("Harvard")
	c := b.AddVertex("Cornell")
	ivy := b.AddVertex("Ivy League")
	b.AddEdge(h, ivy)
	b.AddEdge(c, ivy)
	g := b.Build()

	opt := bigindex.DefaultBuildOptions()
	opt.Search.SampleCount = 10
	idx, err := bigindex.Build(g, ont, opt)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range idx.Stats().Layers {
		fmt.Printf("layer %d: %d vertices\n", l.Layer, l.Vertices)
	}
	// The two universities collapse into one supernode at layer 1.

	// Output:
	// layer 0: 3 vertices
	// layer 1: 2 vertices
}

// ExampleEvaluator_Eval answers a keyword query through the index and
// verifies it against direct evaluation (Theorem 4.2).
func ExampleEvaluator_Eval() {
	dict := bigindex.NewDict()
	ont := bigindex.NewOntology(dict)
	if err := ont.AddSupertypeNames("Harvard", "Univ."); err != nil {
		log.Fatal(err)
	}
	if err := ont.AddSupertypeNames("Cornell", "Univ."); err != nil {
		log.Fatal(err)
	}

	b := bigindex.NewGraphBuilder(dict)
	pg := b.AddVertex("P. Graham")
	h := b.AddVertex("Harvard")
	ivy := b.AddVertex("Ivy League")
	b.AddEdge(pg, h)
	b.AddEdge(h, ivy)
	g := b.Build()

	opt := bigindex.DefaultBuildOptions()
	opt.Search.SampleCount = 10
	idx, err := bigindex.Build(g, ont, opt)
	if err != nil {
		log.Fatal(err)
	}
	ev := bigindex.NewEvaluator(idx, bigindex.NewBKWS(2), bigindex.DefaultEvalOptions())
	q := []bigindex.Label{dict.Lookup("Harvard"), dict.Lookup("Ivy League")}

	boosted, _, err := ev.Eval(q)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := ev.Direct(q, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answers: %d (direct agrees: %v)\n", len(boosted), len(boosted) == len(direct))
	fmt.Printf("best root: %s\n", dict.Name(g.Label(boosted[0].Root)))
	// Output:
	// answers: 2 (direct agrees: true)
	// best root: Harvard
}

// ExampleBisim shows the summarization substrate on its own: same-label
// vertices with matching successor structure collapse.
func ExampleBisim() {
	b := bigindex.NewGraphBuilder(nil)
	u := b.AddVertex("Univ.")
	for i := 0; i < 100; i++ {
		p := b.AddVertexLabel(b.Dict().Intern("Person"))
		b.AddEdge(p, u)
	}
	res := bigindex.Bisim(b.Build())
	fmt.Printf("%d vertices -> %d supernodes\n", 101, res.NumBlocks())
	// Output:
	// 101 vertices -> 2 supernodes
}

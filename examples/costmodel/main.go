// Cost model walkthrough: how BiG-index decides what to build and where to
// search (Secs. 3.2 and 4.1 of the paper).
//
// The program generates a small knowledge graph and shows:
//
//  1. the index cost model (Formula 3): compression estimated by sampling
//     radius-r subgraphs vs the exact ratio, and the semantic distortion of
//     configurations of growing size;
//  2. Algorithm 1's greedy configuration search under different budgets
//     (θ, Π);
//  3. the query cost model (Formula 4): per-layer cost_q for a workload,
//     the predicted optimal layer, and Condition 1 of Def. 4.1 ruling out
//     layers that merge query keywords.
//
// Run: go run ./examples/costmodel
package main

import (
	"fmt"
	"log"

	"bigindex"
	"bigindex/internal/cost"

	"bigindex/internal/sampling"
)

func main() {
	ds := bigindex.GenerateDataset(bigindex.DatasetOptions{
		Name: "demo", Entities: 4000, Terms: 300, LeafTypes: 12, Seed: 31,
	})
	g, ont := ds.Graph, ds.Ont
	fmt.Printf("graph: |V|=%d |E|=%d, %d distinct labels\n",
		g.NumVertices(), g.NumEdges(), len(g.DistinctLabels()))

	// (1) Sampling estimator vs exact compression.
	fmt.Println("\n-- compression estimation (Sec. 3.2) --")
	fmt.Printf("sample size for z=1.96, E=5%%: n = %d (the paper rounds to 400)\n",
		sampling.SampleSize(1.96, 0.05))
	full, est := cost.GreedyConfig(g, ont, cost.SearchOptions{
		Theta: 1, Alpha: 0.5, SampleRadius: 2, SampleCount: 400, Seed: 1,
	})
	fmt.Printf("greedy configuration: %d mappings\n", full.Len())
	for _, n := range []int{25, 100, 400} {
		fmt.Printf("  estimate with n=%-4d: %.4f\n", n, est.EstimateCompressPrefix(full, n))
	}
	fmt.Printf("  exact ratio:          %.4f\n", sampling.ExactCompress(g, full))
	fmt.Printf("  distortion:           %.4f\n", full.Distortion(g))

	// (2) Budgets: Π caps the configuration, θ rejects expensive ones.
	fmt.Println("\n-- Algorithm 1 under budgets --")
	for _, pi := range []int{5, 50, 0} {
		cfg, _ := cost.GreedyConfig(g, ont, cost.SearchOptions{
			Theta: 1, Pi: pi, Alpha: 0.5, SampleRadius: 2, SampleCount: 100, Seed: 1,
		})
		fmt.Printf("  Π=%-3v -> |C|=%d, distort=%.4f\n", piLabel(pi), cfg.Len(), cfg.Distortion(g))
	}

	// (3) Query cost model over a real index.
	fmt.Println("\n-- query layer selection (Formula 4, Def. 4.1) --")
	opt := bigindex.DefaultBuildOptions()
	opt.Search.SampleCount = 100
	idx, err := bigindex.Build(g, ont, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index has %d layers\n", idx.NumLayers())
	for _, q := range bigindex.GenerateQueries(ds, bigindex.DefaultWorkload()) {
		best, costs := cost.OptimalLayer(idx, q.Keywords, 0.5)
		fmt.Printf("  %-3s cost_q by layer:", q.ID)
		for m, c := range costs {
			marker := " "
			if m == best {
				marker = "*"
			}
			fmt.Printf(" %s%.3f", marker, c)
		}
		fmt.Println()
	}
	fmt.Println("(* = predicted optimal layer; β = 0.5)")

	// Condition 1: a query whose keywords merge at some layer cannot use it.
	terms := ds.TermsOfType[ds.LeafTypeOf[ds.Graph.DistinctLabels()[0]]]
	if len(terms) >= 2 {
		q := []bigindex.Label{terms[0], terms[1]}
		seq := idx.Configs()
		for m := 0; m < idx.NumLayers(); m++ {
			d := seq.DistinctAtLayer(q, m)
			if d < 2 {
				fmt.Printf("\nsibling-term query merges at layer %d -> that layer is ruled out (Def. 4.1 Cond. 1)\n", m)
				break
			}
		}
	}
}

func piLabel(pi int) interface{} {
	if pi == 0 {
		return "∞"
	}
	return pi
}

// Knowledge-graph search: the paper's YAGO3 scenario at laptop scale.
//
// Generates a YAGO-shaped synthetic knowledge graph (Zipf vocabulary, deep
// taxonomy, relation templates), builds a BiG-index, and runs the Q1-Q8
// benchmark workload with Blinks — first directly on the data graph, then
// through the index — printing per-query times, the chosen layer, and the
// phase breakdown of Figs. 10-12.
//
// Run: go run ./examples/knowledgegraph
package main

import (
	"fmt"
	"log"
	"time"

	"bigindex"
)

func main() {
	fmt.Println("generating a YAGO-shaped knowledge graph …")
	ds := bigindex.GenerateDataset(bigindex.DatasetOptions{
		Name:          "kg",
		Entities:      20000,
		AvgOut:        2.0,
		Terms:         1500,
		LeafTypes:     40,
		TypeBranching: 4,
		TypeHeight:    6,
		Relations:     60,
		TermSkew:      1.5,
		TargetSkew:    2,
		SinkFraction:  0.35,
		Seed:          7001,
	})
	fmt.Printf("  |V|=%d |E|=%d, ontology: %d types, height %d\n",
		ds.Graph.NumVertices(), ds.Graph.NumEdges(), ds.Ont.NumTypes(), ds.Ont.Height())

	start := time.Now()
	opt := bigindex.DefaultBuildOptions()
	opt.Search.SampleCount = 120
	idx, err := bigindex.Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built BiG-index in %v:\n", time.Since(start).Round(time.Millisecond))
	for _, l := range idx.Stats().Layers {
		fmt.Printf("  layer %d: size %-6d (ratio %.3f)\n", l.Layer, l.Size, l.Ratio)
	}

	algo := bigindex.NewBlinks(bigindex.BlinksOptions{DMax: 4, BlockSize: 200})
	ev := bigindex.NewEvaluator(idx, algo, bigindex.DefaultEvalOptions())

	fmt.Println("\nQ1-Q8 workload, Blinks with and without BiG-index:")
	fmt.Printf("%-4s %-28s %10s %10s %8s %s\n", "ID", "keywords", "direct", "boosted", "layer", "breakdown (search/spec/gen)")
	for _, q := range bigindex.GenerateQueries(ds, bigindex.DefaultWorkload()) {
		// Warmup builds the per-layer search indexes.
		if _, err := ev.Direct(q.Keywords, 0); err != nil {
			log.Fatal(err)
		}
		if _, _, err := ev.Eval(q.Keywords); err != nil {
			log.Fatal(err)
		}

		t0 := time.Now()
		direct, err := ev.Direct(q.Keywords, 0)
		if err != nil {
			log.Fatal(err)
		}
		dT := time.Since(t0)

		t0 = time.Now()
		boosted, bd, err := ev.Eval(q.Keywords)
		if err != nil {
			log.Fatal(err)
		}
		bT := time.Since(t0)

		if len(direct) != len(boosted) {
			log.Fatalf("%s: answer sets diverge (%d vs %d)", q.ID, len(direct), len(boosted))
		}
		fmt.Printf("%-4s %-28s %10v %10v %8d %v/%v/%v  (%d answers)\n",
			q.ID, trim(fmt.Sprint(q.Counts), 28),
			dT.Round(time.Microsecond), bT.Round(time.Microsecond), bd.Layer,
			bd.Search.Round(time.Microsecond), bd.Specialize.Round(time.Microsecond),
			bd.Generate.Round(time.Microsecond), len(boosted))
	}
	fmt.Println("\nboth strategies returned identical answer sets for every query (Theorem 4.2)")
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Maintenance: keeping a BiG-index alive under change (Sec. 3.2).
//
// The paper sketches three maintenance cases; this example runs all of
// them on a live index:
//
//  1. data-graph updates — new vertices/edges arrive; the index is
//     refreshed by re-running Gen+Bisim with the *stored* configurations
//     (no configuration search), and answers stay exact;
//  2. incremental bisimulation — the bisim.Maintainer absorbs updates that
//     provably keep every signature intact and batches the rest;
//  3. ontology updates — adding supertype edges never invalidates the
//     index; removing one drops the affected layers (and everything above
//     them).
//
// Run: go run ./examples/maintenance
package main

import (
	"fmt"
	"log"

	"bigindex"
	"bigindex/internal/bisim"
	"bigindex/internal/graph"
)

func main() {
	ds := bigindex.GenerateDataset(bigindex.DatasetOptions{
		Name: "maint", Entities: 3000, Terms: 250, LeafTypes: 10, Seed: 55,
	})
	opt := bigindex.DefaultBuildOptions()
	opt.Search.SampleCount = 60
	idx, err := bigindex.Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built index: %d layers over |V|=%d |E|=%d\n",
		idx.NumLayers(), ds.Graph.NumVertices(), ds.Graph.NumEdges())

	algo := bigindex.NewBKWS(3)
	ev := bigindex.NewEvaluator(idx, algo, bigindex.DefaultEvalOptions())
	q := []bigindex.Label{}
	for _, l := range ds.Graph.DistinctLabels() {
		if ds.Graph.LabelCount(l) >= 20 && len(q) < 2 {
			q = append(q, l)
		}
	}
	if len(q) < 2 {
		log.Fatal("workload too sparse")
	}
	before, _, err := ev.Eval(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query answers before update: %d\n", len(before))

	// ---- (1) data update + Refresh ----
	b := bigindex.NewGraphBuilder(ds.Graph.Dict())
	for v := 0; v < ds.Graph.NumVertices(); v++ {
		b.AddVertexLabel(ds.Graph.Label(bigindex.V(v)))
	}
	for _, e := range ds.Graph.Edges() {
		b.AddEdge(e.From, e.To)
	}
	// 50 new entities of an existing popular term, wired to vertex 0's
	// neighborhood.
	for i := 0; i < 50; i++ {
		nv := b.AddVertexLabel(q[0])
		b.AddEdge(nv, bigindex.V(i%100))
	}
	g2 := b.Build()
	if err := idx.Refresh(g2); err != nil {
		log.Fatal(err)
	}
	ev2 := bigindex.NewEvaluator(idx, algo, bigindex.DefaultEvalOptions())
	after, _, err := ev2.Eval(q)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := ev2.Direct(q, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after +50 vertices and Refresh: %d answers (direct agrees: %v)\n",
		len(after), len(after) == len(direct))

	// ---- (2) incremental bisimulation ----
	m := bisim.NewMaintainer(g2)
	blocksBefore := m.Result().NumBlocks()
	// A duplicate of an existing edge is absorbed for free (every
	// signature provably unchanged).
	var src, dst graph.V
	for v := graph.V(0); int(v) < g2.NumVertices(); v++ {
		if out := g2.Out(v); len(out) > 0 {
			src, dst = v, out[0]
			break
		}
	}
	m.AddEdge(src, dst) // duplicate: absorbed without recomputation
	fmt.Printf("incremental bisim: %d blocks before, %d after an absorbed update\n",
		blocksBefore, m.Result().NumBlocks())
	m.RemoveEdge(src, dst)
	fmt.Printf("after a real removal, recomputed to %d blocks\n", m.Result().NumBlocks())

	// ---- (3) ontology update ----
	layersBefore := idx.NumLayers()
	ms := idx.Layer(1).Config.Mappings()
	dropped := idx.RemoveOntologyMapping(ms[0].From, ms[0].To)
	fmt.Printf("removed ontology edge used by layer 1: dropped %d of %d layers\n",
		dropped, layersBefore)
	// The remaining index is just the data graph; rebuilding restores it.
	idx2, err := bigindex.Build(g2, ds.Ont, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("periodic rebuild restores %d layers\n", idx2.NumLayers())
}

// Movie search: the paper's IMDB scenario — including the failure mode.
//
// Generates an IMDB-shaped graph (dense, hub-heavy: popular movies and
// actors attract thousands of edges) and demonstrates:
//
//  1. r-clique's O(n·m) neighbor index blowing past a memory budget on the
//     hub-heavy data graph (the paper estimated 16 TB on real IMDB and
//     could not run r-clique there, Exp-1);
//  2. the same r-clique running fine *on the BiG-index summary layers*,
//     because the summaries are orders of magnitude smaller;
//  3. backward keyword search (bkws) answering topic queries on the data
//     graph with and without the index.
//
// Run: go run ./examples/movies
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"bigindex"
	"bigindex/internal/search/rclique"
)

func main() {
	fmt.Println("generating an IMDB-shaped graph …")
	ds := bigindex.GenerateDataset(bigindex.DatasetOptions{
		Name:          "imdb",
		Entities:      13000,
		AvgOut:        3.6,
		Terms:         900,
		LeafTypes:     24,
		TypeBranching: 4,
		TypeHeight:    6,
		Relations:     48,
		TermSkew:      1.4,
		TargetSkew:    6,
		SinkFraction:  0.55,
		Seed:          7003,
	})
	fmt.Printf("  |V|=%d |E|=%d\n", ds.Graph.NumVertices(), ds.Graph.NumEdges())

	// (1) r-clique's neighbor index on the raw data graph: estimate first,
	// then watch Prepare refuse under a budget.
	rc := rclique.NewWithOptions(rclique.Options{R: 3, MaxEntries: 2_000_000})
	est := rc.EstimateEntries(ds.Graph, 200)
	fmt.Printf("\nr-clique neighbor index estimate on the data graph: ~%d entries (~%d MB)\n",
		est, est*8/1_000_000)
	_, err := rc.Prepare(ds.Graph)
	if errors.Is(err, rclique.ErrIndexTooLarge) {
		fmt.Printf("Prepare refused under a 2M-entry budget: %v\n", err)
		fmt.Println("(the paper hit the same wall on real IMDB: a 16 TB neighbor list)")
	} else if err != nil {
		log.Fatal(err)
	} else {
		fmt.Println("neighbor index fit the budget on this machine")
	}

	// (2) Build the BiG-index; its summary layers are small enough for
	// r-clique even when the data graph is not.
	opt := bigindex.DefaultBuildOptions()
	opt.Search.SampleCount = 120
	idx, err := bigindex.Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBiG-index layers:")
	for _, l := range idx.Stats().Layers {
		fmt.Printf("  layer %d: size %-6d (ratio %.3f)\n", l.Layer, l.Size, l.Ratio)
	}
	top := idx.LayerGraph(idx.NumLayers() - 1)
	est2 := rc.EstimateEntries(top, 200)
	fmt.Printf("r-clique neighbor index estimate on the top summary layer: ~%d entries\n", est2)

	// (3) Topic queries with bkws, the Coffman-benchmark style of Fig. 12.
	algo := bigindex.NewBKWS(4)
	ev := bigindex.NewEvaluator(idx, algo, bigindex.DefaultEvalOptions())
	fmt.Println("\ntopic queries (bkws, direct vs BiG-index):")
	for i, q := range bigindex.GenerateQueries(ds, bigindex.DefaultWorkload()) {
		if len(q.Keywords) > 3 {
			continue // topics are short (the T-x queries pair 2-3 entities)
		}
		if _, err := ev.Direct(q.Keywords, 0); err != nil {
			log.Fatal(err)
		}
		if _, _, err := ev.Eval(q.Keywords); err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		direct, _ := ev.Direct(q.Keywords, 0)
		dT := time.Since(t0)
		t0 = time.Now()
		boosted, bd, err := ev.Eval(q.Keywords)
		if err != nil {
			log.Fatal(err)
		}
		bT := time.Since(t0)
		if len(direct) != len(boosted) {
			log.Fatalf("T%d: answer sets diverge", i+1)
		}
		fmt.Printf("  T%-2d direct=%-10v boosted=%-10v layer=%d answers=%d\n",
			i+1, dT.Round(time.Microsecond), bT.Round(time.Microsecond), bd.Layer, len(boosted))
	}
}

// Quickstart: the paper's running example (Figs. 1-4) end to end.
//
// We build the academic knowledge graph of Fig. 1 — people, universities,
// organizations, states — and its ontology fragment of Fig. 2, construct a
// BiG-index, and run the keyword query Q1 = {Massachusetts, Ivy League,
// California} whose answer tree is highlighted in the paper. The program
// prints the index layers (watch the 100 Person vertices collapse into one
// supernode, the Fig. 4 effect) and the answers found with and without the
// index — which must be identical (Theorem 4.2).
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bigindex"
)

func main() {
	dict := bigindex.NewDict()
	ont := bigindex.NewOntology(dict)

	// Ontology fragment of Fig. 2: instance labels -> types -> supertypes.
	taxonomy := [][2]string{
		{"P. Graham", "Investor"}, {"W. Buffett", "Investor"},
		{"Investor", "Person"},
		{"S. Russell", "Academics"}, {"S. Idreos", "Academics"},
		{"Academics", "Person"},
		{"UC Berkeley", "Univ."}, {"Harvard Univ.", "Univ."},
		{"Cornell Univ.", "Univ."}, {"Columbia Univ.", "Univ."},
		{"Univ.", "Organization"},
		{"Y Combinator", "Startup"}, {"Startup", "Organization"},
		{"Ivy League", "Assoc."}, {"Assoc.", "Organization"},
		{"California", "Western"}, {"Massachusetts", "Eastern"},
		{"New York", "Eastern"},
		{"Western", "State"}, {"Eastern", "State"},
	}
	for _, t := range taxonomy {
		if err := ont.AddSupertypeNames(t[0], t[1]); err != nil {
			log.Fatal(err)
		}
	}

	// Data graph of Fig. 1.
	b := bigindex.NewGraphBuilder(dict)
	pg := b.AddVertex("P. Graham")
	yc := b.AddVertex("Y Combinator")
	harvard := b.AddVertex("Harvard Univ.")
	cornell := b.AddVertex("Cornell Univ.")
	columbia := b.AddVertex("Columbia Univ.")
	berkeley := b.AddVertex("UC Berkeley")
	ivy := b.AddVertex("Ivy League")
	ma := b.AddVertex("Massachusetts")
	ny := b.AddVertex("New York")
	ca := b.AddVertex("California")

	b.AddEdge(pg, yc)
	b.AddEdge(pg, harvard)
	b.AddEdge(pg, cornell)
	b.AddEdge(harvard, ivy)
	b.AddEdge(cornell, ivy)
	b.AddEdge(columbia, ivy)
	b.AddEdge(harvard, ma)
	b.AddEdge(cornell, ny)
	b.AddEdge(columbia, ny)
	b.AddEdge(berkeley, ca)
	b.AddEdge(pg, ca) // P. Graham lives in California

	// The dashed rectangle of Fig. 1: 100 persons, all studying at UC
	// Berkeley. After generalization they are bisimilar and collapse into
	// a single Person supernode.
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("Person #%d", i)
		p := b.AddVertex(name)
		if err := ont.AddSupertypeNames(name, "Academics"); err != nil {
			log.Fatal(err)
		}
		b.AddEdge(p, berkeley)
	}
	g := b.Build()
	fmt.Printf("data graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Build the BiG-index. Small graph, so sample cheaply.
	opt := bigindex.DefaultBuildOptions()
	opt.Search.SampleCount = 60
	idx, err := bigindex.Build(g, ont, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBiG-index layers (Gen + Bisim per layer):")
	for _, l := range idx.Stats().Layers {
		fmt.Printf("  layer %d: |V|=%-4d |E|=%-4d ratio=%.3f\n", l.Layer, l.Vertices, l.Edges, l.Ratio)
	}

	// Q1 = {Massachusetts, Ivy League, California}, d_max = 3 (Example I.1).
	q := []bigindex.Label{
		dict.Lookup("Massachusetts"),
		dict.Lookup("Ivy League"),
		dict.Lookup("California"),
	}
	algo := bigindex.NewBKWS(3)
	ev := bigindex.NewEvaluator(idx, algo, bigindex.DefaultEvalOptions())

	direct, err := ev.Direct(q, 0)
	if err != nil {
		log.Fatal(err)
	}
	boosted, bd, err := ev.Eval(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nquery {Massachusetts, Ivy League, California}, d_max = 3\n")
	fmt.Printf("direct eval:    %d answers\n", len(direct))
	fmt.Printf("eval_Ont:       %d answers (layer %d)\n", len(boosted), bd.Layer)
	for _, m := range boosted {
		fmt.Printf("  root %-14s score %.0f  leaves:", dict.Name(g.Label(m.Root)), m.Score)
		for _, n := range m.Nodes {
			fmt.Printf(" %s", dict.Name(g.Label(n)))
		}
		fmt.Println()
	}
	if len(direct) != len(boosted) {
		log.Fatal("eval_Ont != eval — Theorem 4.2 violated!")
	}
	fmt.Println("\neval_Ont(G,Q,f) = eval(G,Q,f) ✓  (Theorem 4.2)")

	// The paper's Q3 = {Person, Univ., Startup}: generalized keywords.
	// Under plain keyword search this returns nothing (no vertex carries
	// the literal label "Person"), but the summary layers do.
	q3 := []bigindex.Label{dict.Lookup("Person"), dict.Lookup("Univ."), dict.Lookup("Startup")}
	d3, _ := ev.Direct(q3, 0)
	fmt.Printf("\ngeneralized query {Person, Univ., Startup}: direct answers = %d (expected 0 on the data graph)\n", len(d3))
}

module bigindex

go 1.22

package bench

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/graph"
	"bigindex/internal/qcache"
	"bigindex/internal/search"
)

// Cache experiment parameters: a pool of two-keyword queries sampled
// under a zipf law, the access pattern the result cache is built for
// (popular queries repeat; the long tail misses).
const (
	cachePoolSize = 64
	cacheSamples  = 400
	cacheZipfS    = 1.2
	cacheK        = 10
)

// RunCache measures the query result cache on yago-s: the same
// zipf-skewed workload evaluated three ways — without a cache, through
// a cache starting cold, and replayed against the warm cache — with
// p50/p99 latency and the per-pass hit rate.
func RunCache() (*Report, error) {
	return runCache(cachePoolSize, cacheSamples)
}

func runCache(poolSize, samples int) (*Report, error) {
	f, err := GetFixture("yago-s")
	if err != nil {
		return nil, err
	}
	ev := core.NewEvaluator(f.Index, NewBlinks(), BlinksEvalOptions("yago-s"))
	pool := cacheQueryPool(f, poolSize)
	if len(pool) < 2 {
		return nil, fmt.Errorf("bench: query pool too small (%d)", len(pool))
	}

	// Zipf-skewed access sequence over the pool, fixed seed: every pass
	// replays the identical sequence, so cold vs cached differences are
	// the cache's doing alone.
	rng := rand.New(rand.NewSource(7001))
	zipf := rand.NewZipf(rng, cacheZipfS, 1, uint64(len(pool)-1))
	seq := make([]int, samples)
	for i := range seq {
		seq[i] = int(zipf.Uint64())
	}

	// Warm the evaluator's per-layer prepared indexes on every pool
	// query first (index-construction time, excluded as in the paper).
	for _, q := range pool {
		if _, _, err := ev.Eval(q); err != nil {
			return nil, err
		}
	}

	evalOnce := func(q []graph.Label) (qcache.Result, error) {
		ms, _, err := ev.Eval(q)
		if err != nil {
			return qcache.Result{}, err
		}
		ms = search.Truncate(ms, cacheK)
		bytes := int64(64)
		for i := range ms {
			bytes += 48 + 8*int64(len(ms[i].Nodes)) + 8*int64(len(ms[i].Dists))
		}
		return qcache.Result{V: ms, Bytes: bytes, Store: true, Negative: len(ms) == 0}, nil
	}

	r := &Report{ID: "cache", Title: "Query result cache on yago-s (zipf-skewed workload)",
		Header: []string{"phase", "queries", "p50", "p99", "hit rate"}}

	// Pass 1: no cache — every sample pays a full evaluation.
	cold := make([]time.Duration, 0, samples)
	for _, i := range seq {
		start := time.Now()
		if _, err := evalOnce(pool[i]); err != nil {
			return nil, err
		}
		cold = append(cold, time.Since(start))
	}
	coldP50, coldP99 := percentile(cold, 0.50), percentile(cold, 0.99)
	r.AddRow("no cache", samples, coldP50.String(), coldP99.String(), "-")

	// Pass 2: through the cache, starting cold — repeats of popular
	// queries hit; the first occurrence of each query misses.
	cache := qcache.New(qcache.Options{})
	ctx := context.Background()
	runPass := func() ([]time.Duration, int, error) {
		ts := make([]time.Duration, 0, samples)
		hits := 0
		for _, i := range seq {
			q := pool[i]
			key := qcache.Key("blinks", false, q, cacheK, -1, 0)
			start := time.Now()
			_, outcome, err := cache.Do(ctx, 0, key, func() (qcache.Result, error) {
				return evalOnce(q)
			})
			if err != nil {
				return nil, 0, err
			}
			ts = append(ts, time.Since(start))
			if outcome == qcache.Hit {
				hits++
			}
		}
		return ts, hits, nil
	}
	first, hits1, err := runPass()
	if err != nil {
		return nil, err
	}
	r.AddRow("cache, cold start", samples, percentile(first, 0.50).String(),
		percentile(first, 0.99).String(), hitRate(hits1, samples))

	// Pass 3: the warm replay — every query is already cached.
	warm, hits2, err := runPass()
	if err != nil {
		return nil, err
	}
	warmP50 := percentile(warm, 0.50)
	r.AddRow("cache, warm", samples, warmP50.String(),
		percentile(warm, 0.99).String(), hitRate(hits2, samples))

	if warmP50 > 0 {
		r.Notef("warm p50 speedup vs no cache: %.0fx (cold %v -> warm %v)",
			float64(coldP50)/float64(warmP50), coldP50, warmP50)
	}
	r.Notef("pool %d two-keyword queries, %d samples, zipf s=%.1f; serial replay (singleflight not exercised)",
		len(pool), samples, cacheZipfS)
	return r, nil
}

// cacheQueryPool builds a deterministic pool of distinct canonical
// two-keyword queries over the dataset's frequent labels.
func cacheQueryPool(f *Fixture, size int) [][]graph.Label {
	var freq []graph.Label
	for _, l := range f.DS.Graph.DistinctLabels() {
		if f.DS.Graph.LabelCount(l) >= 4 {
			freq = append(freq, l)
		}
	}
	if len(freq) < 2 {
		return nil
	}
	rng := rand.New(rand.NewSource(7002))
	seen := map[string]bool{}
	var pool [][]graph.Label
	for tries := 0; len(pool) < size && tries < 50*size; tries++ {
		a, b := freq[rng.Intn(len(freq))], freq[rng.Intn(len(freq))]
		if a == b {
			continue
		}
		q := qcache.CanonicalLabels([]graph.Label{a, b})
		key := qcache.Key("blinks", false, q, cacheK, -1, 0)
		if seen[key] {
			continue
		}
		seen[key] = true
		pool = append(pool, q)
	}
	return pool
}

// percentile returns the p-th latency (0 ≤ p ≤ 1) of a sample set.
func percentile(ts []time.Duration, p float64) time.Duration {
	if len(ts) == 0 {
		return 0
	}
	sorted := slices.Clone(ts)
	slices.Sort(sorted)
	return sorted[int(p*float64(len(sorted)-1))]
}

func hitRate(hits, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(total))
}

package bench

import (
	"fmt"
	"slices"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/graph"
)

// Runner is an experiment entry point.
type Runner func() (*Report, error)

// Experiments maps experiment IDs (table2, fig10, …) to runners.
var Experiments = map[string]Runner{
	"table2":      RunTable2,
	"table3":      RunTable3,
	"table4":      RunTable4,
	"fig9":        RunFig9,
	"fig10":       func() (*Report, error) { return runBlinksFig("fig10", "yago-s") },
	"fig11":       func() (*Report, error) { return runBlinksFig("fig11", "dbpedia-s") },
	"fig12":       func() (*Report, error) { return runBlinksFig("fig12", "imdb-s") },
	"fig13":       func() (*Report, error) { return runRcliqueFig("fig13", "yago-s") },
	"fig14":       func() (*Report, error) { return runRcliqueFig("fig14", "dbpedia-s") },
	"fig15":       RunFig15,
	"fig16":       RunFig16,
	"fig17":       RunFig17,
	"fig18":       RunFig18,
	"fig19":       RunFig19,
	"exp3":        RunExp3,
	"exp4":        RunExp4,
	"headline":    RunHeadline,
	"summarizers": RunSummarizers,
	"cache":       RunCache,
	"snapshot":    RunSnapshot,
	"obs":         RunObs,
	"shard":       RunShard,
	"shardnet":    RunShardNet,
	"fleetobs":    RunFleetObs,
	// replay needs a captured workload file (benchrunner -workload) and is
	// therefore not part of ExperimentOrder / "-exp all".
	"replay": RunReplay,
}

// ExperimentOrder is the canonical run order for `benchrunner -exp all`.
var ExperimentOrder = []string{
	"table2", "table3", "table4", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
	"fig16", "fig17", "fig18", "fig19",
	"exp3", "exp4", "headline", "summarizers", "cache", "snapshot", "obs",
	"shard", "shardnet", "fleetobs",
}

// RunTable2 reproduces Table 2: dataset statistics.
func RunTable2() (*Report, error) {
	r := &Report{ID: "Table 2", Title: "Statistics of real-world and synthetic datasets (scaled stand-ins)",
		Header: []string{"Dataset", "|V|", "|E|", "|V_ont|", "|E_ont|"}}
	for _, name := range append(append([]string{}, RealNames...), SynthNames...) {
		f, err := GetFixture(name)
		if err != nil {
			return nil, err
		}
		r.AddRow(name, f.DS.Graph.NumVertices(), f.DS.Graph.NumEdges(),
			f.DS.Ont.NumTypes(), f.DS.Ont.NumEdges())
	}
	r.Notef("paper scale ≈ 100-130x larger; shapes (density order, ontology depth) preserved")
	return r, nil
}

// RunTable3 reproduces Table 3: layer-1 index size and size ratio.
func RunTable3() (*Report, error) {
	r := &Report{ID: "Table 3", Title: "Index size of layer 1 of BiG-index",
		Header: []string{"Dataset", "Layer1 |V|", "Layer1 |E|", "Size ratio"}}
	for _, name := range append(append([]string{}, RealNames...), SynthNames...) {
		f, err := GetFixture(name)
		if err != nil {
			return nil, err
		}
		st := f.Index.Stats()
		if len(st.Layers) < 2 {
			r.AddRow(name, "-", "-", "no layer built")
			continue
		}
		l1 := st.Layers[1]
		r.AddRow(name, l1.Vertices, l1.Edges, fmt.Sprintf("%.4f", l1.Ratio))
	}
	r.Notef("paper: YAGO3 0.2785, DBpedia 0.6052, IMDB 0.3666, synt ≤ 0.8775")
	return r, nil
}

// RunTable4 reproduces Table 4: the benchmarked queries with per-keyword
// occurrence counts on the YAGO3 stand-in.
func RunTable4() (*Report, error) {
	f, err := GetFixture("yago-s")
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "Table 4", Title: "Benchmarked queries (yago-s)",
		Header: []string{"ID", "Keywords", "Counts in the data graph"}}
	for _, q := range f.Queries {
		r.AddRow(q.ID, fmt.Sprintf("%v", q.Names(f.DS.Graph.Dict())), fmt.Sprintf("%v", q.Counts))
	}
	return r, nil
}

// RunFig9 reproduces Fig. 9: summary graph sizes (|V|+|E|) per layer.
func RunFig9() (*Report, error) {
	r := &Report{ID: "Fig 9", Title: "Summary graph sizes (|V|+|E|) at different layers",
		Header: []string{"Dataset", "L0", "L1", "L2", "L3", "L4", "L5", "L6", "L7"}}
	for _, name := range append(append([]string{}, RealNames...), SynthNames...) {
		f, err := GetFixture(name)
		if err != nil {
			return nil, err
		}
		row := []interface{}{name}
		for m := 0; m <= 7; m++ {
			if m < f.Index.NumLayers() {
				row = append(row, f.Index.LayerGraph(m).Size())
			} else {
				row = append(row, "-")
			}
		}
		r.AddRow(row...)
	}
	r.Notef("higher layers are strictly smaller; compression gain diminishes with layer number (Exp-3)")
	return r, nil
}

// timeIt runs fn repeats times and returns the median duration (robust to
// GC pauses, which dwarf sub-millisecond queries).
func timeIt(repeats int, fn func() error) (time.Duration, error) {
	if repeats < 1 {
		repeats = 1
	}
	times := make([]time.Duration, repeats)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		times[i] = time.Since(start)
	}
	slices.Sort(times)
	return times[repeats/2], nil
}

// evalPair times a query directly and through BiG-index, returning the mean
// durations and the last boosted breakdown.
func evalPair(ev *core.Evaluator, q []graph.Label, k int) (direct, boosted time.Duration, bd *core.Breakdown, err error) {
	// Warmup builds the per-layer prepared indexes (index-construction
	// time, excluded from query time as in the paper).
	if _, err = ev.Direct(q, k); err != nil {
		return
	}
	if _, bd, err = ev.Eval(q); err != nil {
		return
	}
	direct, err = timeIt(QueryRepeats, func() error {
		_, e := ev.Direct(q, k)
		return e
	})
	if err != nil {
		return
	}
	boosted, err = timeIt(QueryRepeats, func() error {
		var e error
		_, bd, e = ev.Eval(q)
		return e
	})
	return
}

// runBlinksFig reproduces Figs. 10-12: per-query Blinks times with and
// without BiG-index plus the query-time breakdown.
func runBlinksFig(id, dataset string) (*Report, error) {
	f, err := GetFixture(dataset)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: id, Title: "Query times of Blinks on " + dataset,
		Header: []string{"Query", "Blinks", "BiG+Blinks", "reduction", "layer", "search", "spec+prune", "ans-gen"}}

	opt := BlinksEvalOptions(dataset)
	ev := core.NewEvaluator(f.Index, NewBlinks(), opt)
	var sumD, sumB time.Duration
	for _, q := range f.Queries {
		direct, boosted, bd, err := evalPair(ev, q.Keywords, 0)
		if err != nil {
			return nil, err
		}
		sumD += direct
		sumB += boosted
		r.AddRow(q.ID, direct, boosted, pct(direct, boosted), bd.Layer, bd.Search, bd.Select+bd.Specialize, bd.Generate)
	}
	r.Notef("average reduction: %s (paper: 61.8%% YAGO3, 57.3%% DBpedia, 32.5%% IMDB)", pct(sumD, sumB))
	return r, nil
}

// runRcliqueFig reproduces Figs. 13-14: per-query r-clique times with and
// without BiG-index. r-clique is evaluated in its top-k approximate mode
// (k = 10), as in the original system.
func runRcliqueFig(id, dataset string) (*Report, error) {
	f, err := GetFixture(dataset)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: id, Title: "Query times of r-clique on " + dataset,
		Header: []string{"Query", "r-clique", "BiG+r-clique", "reduction", "layer", "search", "spec+prune", "ans-gen"}}

	opt := RCliqueEvalOptions()
	ev := core.NewEvaluator(f.Index, NewRClique(), opt)
	var sumD, sumB time.Duration
	for _, q := range f.Queries {
		direct, boosted, bd, err := evalPair(ev, q.Keywords, 10)
		if err != nil {
			return nil, err
		}
		sumD += direct
		sumB += boosted
		r.AddRow(q.ID, direct, boosted, pct(direct, boosted), bd.Layer, bd.Search, bd.Select+bd.Specialize, bd.Generate)
	}
	r.Notef("average reduction: %s (paper: 39.4%% YAGO3, 19.6%% DBpedia)", pct(sumD, sumB))
	return r, nil
}

// RunFig15 reproduces Fig. 15: query times on the synthetic scaling series
// with |Q| = 4, for Blinks (RHS) and r-clique (LHS), with and without
// BiG-index.
func RunFig15() (*Report, error) {
	r := &Report{ID: "Fig 15", Title: "Query times on synthetic datasets (|Q| = 4)",
		Header: []string{"Dataset", "r-clique", "BiG+r-clique", "Blinks", "BiG+Blinks"}}
	for _, name := range SynthNames {
		f, err := GetFixture(name)
		if err != nil {
			return nil, err
		}
		var q4 []graph.Label
		for _, q := range f.Queries {
			if len(q.Keywords) == 4 {
				q4 = q.Keywords
				break
			}
		}
		if q4 == nil {
			r.AddRow(name, "-", "-", "-", "-")
			continue
		}

		rcOpt := core.DefaultEvalOptions()
		rcOpt.K = 10
		rcOpt.GenLimit = 40
		evRC := core.NewEvaluator(f.Index, NewRClique(), rcOpt)
		dRC, bRC, _, err := evalPair(evRC, q4, 10)
		if err != nil {
			return nil, err
		}

		evBL := core.NewEvaluator(f.Index, NewBlinks(), BlinksEvalOptions(name))
		dBL, bBL, _, err := evalPair(evBL, q4, 0)
		if err != nil {
			return nil, err
		}
		r.AddRow(name, dRC, bRC, dBL, bBL)
	}
	r.Notef("paper: BiG-index reduces query times by at least 20%% on the synthetic series")
	return r, nil
}

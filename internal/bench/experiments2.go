package bench

import (
	"fmt"
	"math/rand"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/generalize"
	"bigindex/internal/sampling"
	"bigindex/internal/search"
)

// RunFig16 reproduces Fig. 16: the estimated compression ratio as a
// function of the sample count n, against the exact ratio. The paper finds
// the estimate stabilizes past n ≈ 400.
func RunFig16() (*Report, error) {
	f, err := GetFixture("yago-s")
	if err != nil {
		return nil, err
	}
	if f.Index.NumLayers() < 2 {
		return nil, fmt.Errorf("fig16: no layer-1 configuration")
	}
	cfg := f.Index.Layer(1).Config
	est := sampling.NewEstimator(f.DS.Graph, 2, 1600, 1234)
	exact := sampling.ExactCompress(f.DS.Graph, cfg)

	r := &Report{ID: "Fig 16", Title: "Estimated compress vs sample size (yago-s, layer-1 config)",
		Header: []string{"n", "estimate", "exact", "abs err"}}
	for _, n := range []int{25, 50, 100, 200, 400, 800, 1600} {
		e := est.EstimateCompressPrefix(cfg, n)
		r.AddRow(n, fmt.Sprintf("%.4f", e), fmt.Sprintf("%.4f", exact), fmt.Sprintf("%.4f", abs(e-exact)))
	}
	r.Notef("estimates rank configurations; absolute offset is fine as long as the ordering is stable (Exp-4)")
	return r, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ablation times the yago-s workload for one algorithm under two option
// sets.
func ablation(id, title, labelOff, labelOn string, algo search.Algorithm, off, on core.EvalOptions) (*Report, error) {
	f, err := GetFixture("yago-s")
	if err != nil {
		return nil, err
	}
	r := &Report{ID: id, Title: title,
		Header: []string{"Query", labelOff, labelOn, "improvement"}}
	evOff := core.NewEvaluator(f.Index, algo, off)
	evOn := core.NewEvaluator(f.Index, algo, on)
	var sumOff, sumOn time.Duration
	for _, q := range f.Queries {
		if _, _, err := evOff.Eval(q.Keywords); err != nil { // warmup
			return nil, err
		}
		if _, _, err := evOn.Eval(q.Keywords); err != nil {
			return nil, err
		}
		tOff, err := timeIt(QueryRepeats, func() error { _, _, e := evOff.Eval(q.Keywords); return e })
		if err != nil {
			return nil, err
		}
		tOn, err := timeIt(QueryRepeats, func() error { _, _, e := evOn.Eval(q.Keywords); return e })
		if err != nil {
			return nil, err
		}
		sumOff += tOff
		sumOn += tOn
		r.AddRow(q.ID, tOff, tOn, pct(tOff, tOn))
	}
	r.Notef("average improvement: %s", pct(sumOff, sumOn))
	return r, nil
}

// RunFig17 reproduces Fig. 17: the specialization-order optimization on/off
// (paper: 14.8% average improvement). The ordering binds during answer
// generation's partial-answer enlargement, so the ablation runs r-clique
// (whose generation enumerates tuples; Sec. 4.3.2's Example 4.2 is exactly
// this case) at a fixed summary layer so generation always executes.
func RunFig17() (*Report, error) {
	off := RCliqueEvalOptions()
	off.SpecOrder = false
	on := off
	on.SpecOrder = true
	return ablation("Fig 17", "Specialization order optimization (yago-s, r-clique)",
		"order off", "order on", NewRClique(), off, on)
}

// RunFig18 reproduces Fig. 18: path-based answer generation on/off (paper:
// 21.7% average improvement). Path-based generation shares one traversal
// per keyword across all partial answers instead of re-traversing per
// vertex check (Algo 4 vs Algo 3).
func RunFig18() (*Report, error) {
	off := RCliqueEvalOptions()
	off.PathBased = false
	on := off
	on.PathBased = true
	return ablation("Fig 18", "Path-based answer generation (yago-s, r-clique)",
		"ans_graph_gen", "p_ans_graph_gen", NewRClique(), off, on)
}

// RunFig19 reproduces Fig. 19 and Exp-6: query time at every layer m, the
// cost model's predicted layer, and the observed best layer. Evaluating at
// layer 2 corresponds to the single-summarization baseline of Fan et al.
// [10], which the paper shows is always suboptimal for some queries.
func RunFig19() (*Report, error) {
	f, err := GetFixture("yago-s")
	if err != nil {
		return nil, err
	}
	h := f.Index.NumLayers()
	header := []string{"Query"}
	for m := 0; m < h; m++ {
		header = append(header, fmt.Sprintf("L%d", m))
	}
	header = append(header, "predicted", "best")
	r := &Report{ID: "Fig 19", Title: "Query performance by layer m (yago-s, Blinks, β = 0.5)", Header: header}

	correct := 0
	for _, q := range f.Queries {
		times := make([]time.Duration, h)
		best := 0
		for m := 0; m < h; m++ {
			opt := core.DefaultEvalOptions()
			opt.DegreeExponent = 1
			opt.ForcedLayer = m
			ev := core.NewEvaluator(f.Index, NewBlinks(), opt)
			if _, _, err := ev.Eval(q.Keywords); err != nil { // warmup
				return nil, err
			}
			t, err := timeIt(QueryRepeats, func() error { _, _, e := ev.Eval(q.Keywords); return e })
			if err != nil {
				return nil, err
			}
			times[m] = t
			if t < times[best] {
				best = m
			}
		}
		// The model's pick.
		opt := core.DefaultEvalOptions()
		opt.DegreeExponent = 1
		ev := core.NewEvaluator(f.Index, NewBlinks(), opt)
		_, bd, err := ev.Eval(q.Keywords)
		if err != nil {
			return nil, err
		}
		if bd.Layer == best {
			correct++
		}
		row := []interface{}{q.ID}
		for _, t := range times {
			row = append(row, t)
		}
		row = append(row, bd.Layer, best)
		r.AddRow(row...)
	}
	r.Notef("optimal-layer prediction accuracy: %d/%d (paper: 75%%)", correct, len(f.Queries))
	r.Notef("Exp-6: layer 2 is the Fan et al. [10] single-bisimulation baseline; compare its column against the best layer")
	return r, nil
}

// RunExp3 reproduces Exp-3: index characteristics — construction time and
// total index size per dataset.
func RunExp3() (*Report, error) {
	r := &Report{ID: "Exp 3", Title: "BiG-index construction time and size",
		Header: []string{"Dataset", "layers", "construction", "index size (|V|+|E|)", "data size"}}
	for _, name := range append(append([]string{}, RealNames...), SynthNames...) {
		f, err := GetFixture(name)
		if err != nil {
			return nil, err
		}
		r.AddRow(name, f.Index.NumLayers()-1, f.BuildTime, f.Index.TotalSize(), f.DS.Graph.Size())
	}
	r.Notef("paper: 20min (YAGO3), 6.4h (DBpedia), 6.6h (IMDB) in Java at ~100x scale")
	return r, nil
}

// RunExp4 reproduces Exp-4: cost-model effectiveness. (a) Spearman rank
// correlation between sampled and exact compress over 100 random
// configurations (paper: r_s = 0.541 > 0.326 critical at α = 0.001);
// (b) the optimal-layer prediction accuracy is reported by Fig 19.
func RunExp4() (*Report, error) {
	f, err := GetFixture("synt-10k")
	if err != nil {
		return nil, err
	}
	g, ont := f.DS.Graph, f.DS.Ont
	est := sampling.NewEstimator(g, 2, 400, 555)
	rng := rand.New(rand.NewSource(556))

	// 100 random configurations: random subsets of term->type mappings.
	var pool []generalize.Mapping
	for _, l := range g.DistinctLabels() {
		for _, sup := range ont.DirectSupertypes(l) {
			pool = append(pool, generalize.Mapping{From: l, To: sup})
		}
	}
	var estimates, exacts []float64
	for c := 0; c < 100; c++ {
		keep := 1 + rng.Intn(len(pool))
		perm := rng.Perm(len(pool))
		var ms []generalize.Mapping
		for _, i := range perm[:keep] {
			ms = append(ms, pool[i])
		}
		cfg, err := generalize.NewConfig(ms)
		if err != nil {
			continue
		}
		estimates = append(estimates, est.EstimateCompress(cfg))
		exacts = append(exacts, sampling.ExactCompress(g, cfg))
	}
	rs := sampling.Spearman(estimates, exacts)

	r := &Report{ID: "Exp 4", Title: "Cost model effectiveness (synt-10k)",
		Header: []string{"Metric", "Value"}}
	r.AddRow("configurations scored", len(estimates))
	r.AddRow("Spearman r_s (estimate vs exact compress)", fmt.Sprintf("%.3f", rs))
	r.AddRow("critical value (α=0.001, n=100)", "0.326")
	verdict := "estimate is a significant indicator"
	if rs <= 0.326 {
		verdict = "below critical value"
	}
	r.AddRow("verdict", verdict)
	r.Notef("paper: r_s = 0.541; optimal-layer accuracy is reported by fig19")
	return r, nil
}

// RunHeadline verifies the abstract's claims: BiG-index reduces Blinks
// runtimes by ~50.5%% and r-clique by ~29.5%% on average, and r-clique's
// neighbor index is infeasible on the IMDB-shaped dataset.
func RunHeadline() (*Report, error) {
	r := &Report{ID: "Headline", Title: "Average runtime reduction by BiG-index",
		Header: []string{"Algorithm", "Dataset", "direct (total)", "boosted (total)", "reduction"}}

	type cfg struct {
		algo    string
		dataset string
	}
	var blTotalD, blTotalB, rcTotalD, rcTotalB time.Duration
	for _, c := range []cfg{
		{"blinks", "yago-s"}, {"blinks", "dbpedia-s"}, {"blinks", "imdb-s"},
		{"rclique", "yago-s"}, {"rclique", "dbpedia-s"},
	} {
		f, err := GetFixture(c.dataset)
		if err != nil {
			return nil, err
		}
		var sumD, sumB time.Duration
		if c.algo == "blinks" {
			ev := core.NewEvaluator(f.Index, NewBlinks(), BlinksEvalOptions(c.dataset))
			for _, q := range f.Queries {
				d, b, _, err := evalPair(ev, q.Keywords, 0)
				if err != nil {
					return nil, err
				}
				sumD += d
				sumB += b
			}
			blTotalD += sumD
			blTotalB += sumB
		} else {
			ev := core.NewEvaluator(f.Index, NewRClique(), RCliqueEvalOptions())
			for _, q := range f.Queries {
				d, b, _, err := evalPair(ev, q.Keywords, 10)
				if err != nil {
					return nil, err
				}
				sumD += d
				sumB += b
			}
			rcTotalD += sumD
			rcTotalB += sumB
		}
		r.AddRow(c.algo, c.dataset, sumD, sumB, pct(sumD, sumB))
	}
	r.AddRow("blinks", "average", blTotalD, blTotalB, pct(blTotalD, blTotalB))
	r.AddRow("rclique", "average", rcTotalD, rcTotalB, pct(rcTotalD, rcTotalB))

	// The IMDB infeasibility claim: project the neighbor index to the real
	// IMDB's 1.67M vertices.
	imdb, err := GetFixture("imdb-s")
	if err != nil {
		return nil, err
	}
	avgRow, total := ProjectFullScaleEntries(NewRClique(), imdb, 1_673_076)
	r.Notef("paper: Blinks 50.5%% average, r-clique 29.5%% average")
	r.Notef("r-clique on IMDB at full scale: projected avg neighborhood m ≈ %.0fK nodes, neighbor list ≈ %.1f TB (paper: m ≈ 105K, 16 TB) — r-clique cannot handle the dataset", avgRow/1000, total*8/1e12)
	return r, nil
}

// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (Sec. 6), each printing the same rows/series the
// paper reports. cmd/benchrunner exposes them on the command line and the
// top-level bench_test.go wraps them as Go benchmarks.
//
// The datasets are the scaled stand-ins of internal/datagen (see DESIGN.md
// for the substitution table); parameters follow the paper where they apply
// (d_max = 5 scaled to 4, r-clique R = 4 scaled to 3, β = 0.5, α = 0.5,
// one generalization round per layer, up to 7 layers).
package bench

import (
	"fmt"
	"sync"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/datagen"
	"bigindex/internal/search"
	"bigindex/internal/search/blinks"
	"bigindex/internal/search/rclique"
)

// Experiment parameters (paper values scaled to the dataset sizes).
const (
	// DMax is the Blinks/bkws pruning threshold (paper: 5 on 2.6M-vertex
	// YAGO3; 4 at our ~1:100 scale keeps neighborhood sizes proportional).
	DMax = 4
	// RClique is the r-clique pairwise bound (paper: 4).
	RClique = 3
	// BlockSize is the Blinks partition block size (paper: METIS, avg 1000).
	BlockSize = 200
	// Beta is the query-generalization weight (paper settles on 0.5).
	Beta = 0.5
	// SampleCount is the per-layer estimator sample count used when
	// building fixture indexes (the paper's n = 400; 120 keeps full-suite
	// runtime reasonable and is past the stability knee of Fig. 16).
	SampleCount = 120
	// QueryRepeats is how many times each query is timed (paper: 10).
	QueryRepeats = 7
)

// Fixture bundles a dataset with its built index and workload.
type Fixture struct {
	DS        *datagen.Dataset
	Index     *core.Index
	Queries   []datagen.Query
	BuildTime time.Duration
}

var (
	fixtureMu    sync.Mutex
	fixtureCache = map[string]*Fixture{}
)

// GetFixture returns (building and caching on first use) the fixture for a
// dataset name: yago-s, dbpedia-s, imdb-s, or synt-<n>k.
func GetFixture(name string) (*Fixture, error) {
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if f, ok := fixtureCache[name]; ok {
		return f, nil
	}
	ds, err := datasetByName(name)
	if err != nil {
		return nil, err
	}
	opt := core.DefaultBuildOptions()
	opt.Search.SampleCount = SampleCount
	start := time.Now()
	idx, err := core.Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		return nil, fmt.Errorf("bench: building index for %s: %w", name, err)
	}
	wl := datagen.DefaultWorkload()
	if name == "imdb-s" {
		// The paper's IMDB queries come from the Coffman-Weaver topic
		// benchmark: short, selective queries naming specific entities
		// ("relationships between Harrison Ford and George Lucas"), not
		// high-frequency terms.
		wl = datagen.WorkloadOptions{
			Sizes:    []int{2, 2, 2, 3, 3, 2, 3, 3},
			MinCount: 3,
			Seed:     99,
		}
	}
	f := &Fixture{
		DS:        ds,
		Index:     idx,
		Queries:   datagen.Queries(ds, wl),
		BuildTime: time.Since(start),
	}
	fixtureCache[f.DS.Name] = f
	return f, nil
}

func datasetByName(name string) (*datagen.Dataset, error) {
	switch name {
	case "demo":
		// bigindexd's default preset, mirrored here so a workload captured
		// from a stock daemon replays against the same graph.
		return datagen.Generate(datagen.Options{
			Name: "demo", Entities: 1500, Terms: 120, LeafTypes: 8, Seed: 4242,
		}), nil
	case "yago-s":
		return datagen.YagoSmall(), nil
	case "dbpedia-s":
		return datagen.DbpediaSmall(), nil
	case "imdb-s":
		return datagen.ImdbSmall(), nil
	case "synt-10k":
		return datagen.Synthetic(10000, 8101), nil
	case "synt-20k":
		return datagen.Synthetic(20000, 8102), nil
	case "synt-40k":
		return datagen.Synthetic(40000, 8103), nil
	case "synt-80k":
		return datagen.Synthetic(80000, 8104), nil
	default:
		return nil, fmt.Errorf("bench: unknown dataset %q", name)
	}
}

// RealNames lists the real-dataset stand-ins; SynthNames the scaling series.
var (
	RealNames  = []string{"yago-s", "dbpedia-s", "imdb-s"}
	SynthNames = []string{"synt-10k", "synt-20k", "synt-40k", "synt-80k"}
)

// NewBlinks returns the Blinks instance used across experiments.
func NewBlinks() search.Algorithm {
	return blinks.New(blinks.Options{DMax: DMax, BlockSize: BlockSize})
}

// BlinksEvalOptions returns the evaluator options used for Blinks on a
// dataset. β = 0.5 follows the paper; the density-correction exponent of
// cost.QueryCostEx is calibrated per dataset the way the paper calibrates
// its own knobs "by experiments": the dense DBpedia stand-in needs the
// correction (its summaries densify sharply, making high layers a trap),
// while the IMDB stand-in's selective topic queries profit from high
// layers despite densification.
func BlinksEvalOptions(dataset string) core.EvalOptions {
	opt := core.DefaultEvalOptions()
	switch dataset {
	case "imdb-s":
		opt.DegreeExponent = 0
	default:
		opt.DegreeExponent = 1
	}
	return opt
}

// RCliqueEvalOptions returns the evaluator options for r-clique
// experiments: the original's top-k mode (k = 10), early termination
// (Sec. 4.3.4), and the full R-hop density correction — r-clique's
// traversal cost grows like degree^R, so densified summaries must be
// costed accordingly.
func RCliqueEvalOptions() core.EvalOptions {
	opt := core.DefaultEvalOptions()
	opt.K = 10
	opt.GenLimit = 24
	opt.EarlyK = true
	opt.DegreeExponent = RClique
	opt.GenBudget = 2_000_000
	return opt
}

// NewRClique returns the r-clique instance used across experiments. The
// neighbor index is uncapped here (the scaled graphs fit in memory); the
// paper's IMDB infeasibility — a projected 16 TB neighbor list — is
// reproduced by ProjectFullScaleEntries in the headline experiment.
func NewRClique() *rclique.Algorithm {
	return rclique.NewWithOptions(rclique.Options{R: RClique})
}

// ProjectFullScaleEntries extrapolates a neighbor-index size to the paper's
// dataset scale: the average R-hop neighborhood is measured as a fraction
// of the scaled graph and applied to the full vertex count — the "m is
// close to 105K, the neighbor list could take 16TB" estimate of Exp-1.
func ProjectFullScaleEntries(scaled *rclique.Algorithm, f *Fixture, fullVertices int) (avgRowFull, totalFull float64) {
	est := scaled.EstimateEntries(f.DS.Graph, 300)
	frac := float64(est) / float64(f.DS.Graph.NumVertices()) / float64(f.DS.Graph.NumVertices())
	avgRowFull = frac * float64(fullVertices)
	totalFull = avgRowFull * float64(fullVertices)
	return
}

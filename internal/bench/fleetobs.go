package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"slices"
	"time"

	"bigindex/internal/datagen"
	"bigindex/internal/obs"
	"bigindex/internal/shard"
	"bigindex/internal/shardrpc"
)

// fleetObsDataset configures the fleetobs experiment (SetFleetObsConfig;
// the CI smoke uses demo).
var fleetObsDataset = "yago-s"

// SetFleetObsConfig overrides the fleetobs experiment's dataset; empty
// keeps the default.
func SetFleetObsConfig(dataset string) {
	if dataset != "" {
		fleetObsDataset = dataset
	}
}

// fleetObsOverheadBudget is the enforced telemetry tax at the production
// sampling rate (1%): p50 may not exceed the telemetry-off baseline by
// more than 5%, with an absolute floor so sub-millisecond baselines
// don't fail on scheduler noise alone.
const (
	fleetObsOverheadPct   = 0.05
	fleetObsOverheadFloor = 500 * time.Microsecond
)

// startFleetObs is startFleet with per-server protocol vintage and a
// client-side telemetry sampling rate: legacy(i) servers emulate a
// pre-capability build, so a mixed fleet exercises both negotiation
// directions inside one deployment.
func startFleetObs(plan *shard.Plan, n int, spec func(i int) string, legacy func(i int) bool, sample float64) (*shardNetFleet, error) {
	f := &shardNetFleet{}
	peerSpec := ""
	for i := 0; i < n; i++ {
		blocks, err := shardrpc.ParseBlocks(spec(i), plan.NumBlocks())
		if err != nil {
			f.close()
			return nil, err
		}
		srv := shardrpc.NewServer(plan, shardrpc.ServerOptions{
			Blocks: blocks, BlockSize: BlockSize, LegacyProto: legacy != nil && legacy(i),
		})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			f.close()
			return nil, err
		}
		f.servers = append(f.servers, srv)
		if peerSpec != "" {
			peerSpec += ";"
		}
		peerSpec += addr.String() + "=" + spec(i)
	}
	peers, err := shardrpc.ParsePeers(peerSpec)
	if err != nil {
		f.close()
		return nil, err
	}
	f.client = shardrpc.NewClient(shardrpc.ClientOptions{
		Peers: peers, BlockSize: BlockSize, TelemetrySample: sample,
	})
	return f, nil
}

// tracedQueryCtx arms a context the way the HTTP server arms a real
// query: trace root span, cost ledger, coverage collector. Telemetry
// heads only ride the wire when a span is present, so the bench must
// install one to measure the sampled path at all.
func tracedQueryCtx() (context.Context, *obs.Ledger, *shard.Coverage) {
	cov := shard.NewCoverage()
	led := obs.NewLedger()
	ctx := shard.ContextWithCoverage(context.Background(), cov)
	ctx = obs.ContextWithSpan(ctx, obs.NewTrace("bench").Root())
	ctx = obs.ContextWithLedger(ctx, led)
	return ctx, led, cov
}

// fleetObsDigestPass is digestPass under a traced context, additionally
// counting queries whose ledger shows stitched remote telemetry.
func fleetObsDigestPass(prep ctxSearcher, queries []datagen.Query) (digest uint64, lossy, stitched int, err error) {
	h := fnv.New64a()
	for _, q := range queries {
		ctx, led, cov := tracedQueryCtx()
		ms, err := prep.SearchCtx(ctx, q.Keywords, shardK)
		if err != nil {
			return 0, 0, 0, err
		}
		if cov.Report() != nil {
			lossy++
		}
		if led.Snapshot().RemoteCalls > 0 {
			stitched++
		}
		matchDigest(h, ms)
	}
	return h.Sum64(), lossy, stitched, nil
}

// fleetObsTimedPass is timedPass under a traced context: the measured
// cost includes building the span tree, grafting remote summaries, and
// merging remote ledgers — the full price a sampled production query pays.
func fleetObsTimedPass(prep ctxSearcher, queries []datagen.Query) (p50, p90 time.Duration, lossy int, err error) {
	times := make([]time.Duration, 0, len(queries))
	for _, q := range queries {
		med, err := timeIt(QueryRepeats, func() error {
			ctx, _, cov := tracedQueryCtx()
			_, e := prep.SearchCtx(ctx, q.Keywords, shardK)
			if e == nil && cov.Report() != nil {
				lossy++
			}
			return e
		})
		if err != nil {
			return 0, 0, lossy, err
		}
		times = append(times, med)
	}
	slices.Sort(times)
	return times[len(times)/2], times[len(times)*9/10], lossy, nil
}

// RunFleetObs measures distributed telemetry overhead and enforces the
// standing invariant that telemetry never changes answers. One fixed
// 2-server fleet layout is run at sampling rates 0, 0.01 (production
// default), and 1.0, plus a mixed-vintage fleet (one legacy server) at
// rate 1.0. Every mode's answer digest must equal the sequential
// baseline, and the 1% mode's p50 may not exceed the telemetry-off p50
// by more than 5% (with an absolute noise floor) — both enforced as
// errors, not just reported.
func RunFleetObs() (*Report, error) {
	f, err := GetFixture(fleetObsDataset)
	if err != nil {
		return nil, err
	}
	g := f.DS.Graph
	queries := datagen.Queries(f.DS, datagen.WorkloadOptions{
		Sizes:    []int{3, 3, 4, 4, 5, 5},
		MinCount: 20,
		Seed:     11,
	})
	if len(queries) == 0 {
		return nil, fmt.Errorf("bench: fleetobs workload is empty on %s", fleetObsDataset)
	}

	seqPrep, err := prepBKWS(g, nil)
	if err != nil {
		return nil, err
	}
	seqDigest, lossy, err := digestPass(seqPrep, queries)
	if err != nil {
		return nil, err
	}
	if lossy != 0 {
		return nil, fmt.Errorf("bench: sequential pass reported %d lossy queries", lossy)
	}

	r := &Report{ID: "fleetobs",
		Title: fmt.Sprintf("Distributed telemetry overhead on %s (bkws over 2 shardrpc servers, %d coordinator workers, k = %d)",
			fleetObsDataset, shardNetWorkers, shardK),
		Header: []string{"mode", "sample", "p50", "p90", "p50 overhead vs off", "stitched", "digest"}}

	type mode struct {
		name   string
		sample float64
		legacy func(int) bool // nil = all current-protocol servers
	}
	modes := []mode{
		{"tel-off", 0, nil},
		{"tel-1pct", 0.01, nil},
		{"tel-100pct", 1, nil},
		{"tel-100pct-mixed-legacy", 1, func(i int) bool { return i == 0 }},
	}

	var offP50, pctP50 time.Duration
	for _, m := range modes {
		plan := shard.NewPlanner(shard.Options{BlockSize: BlockSize}).PlanGraph(g)
		fleet, err := startFleetObs(plan, 2, func(i int) string { return fmt.Sprintf("%d%%2", i) }, m.legacy, m.sample)
		if err != nil {
			return nil, fmt.Errorf("bench: %s fleet: %w", m.name, err)
		}
		prep, err := prepBKWS(g, func(p *shard.Plan) shard.ShardServer { return fleet.client.For(p) })
		var digest uint64
		var stitched int
		if err == nil {
			digest, lossy, stitched, err = fleetObsDigestPass(prep, queries)
		}
		var p50, p90 time.Duration
		var timedLossy int
		if err == nil {
			p50, p90, timedLossy, err = fleetObsTimedPass(prep, queries)
			lossy += timedLossy
		}
		fleet.close()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", m.name, err)
		}
		if digest != seqDigest {
			return nil, fmt.Errorf("bench: %s answers diverged under telemetry: digest %016x, sequential %016x",
				m.name, digest, seqDigest)
		}
		if lossy != 0 {
			return nil, fmt.Errorf("bench: %s lost coverage on %d queries", m.name, lossy)
		}
		// Sanity on the measurement itself: at rate 1.0 on a current fleet
		// every query must stitch (otherwise the overhead gate below is
		// vacuous); at rate 0 none may.
		if m.sample >= 1 && m.legacy == nil && stitched != len(queries) {
			return nil, fmt.Errorf("bench: %s stitched %d/%d queries; telemetry did not engage",
				m.name, stitched, len(queries))
		}
		if m.sample == 0 && stitched != 0 {
			return nil, fmt.Errorf("bench: %s stitched %d queries with sampling off", m.name, stitched)
		}
		overhead := "baseline"
		switch m.name {
		case "tel-off":
			offP50 = p50
		default:
			if offP50 > 0 {
				overhead = fmt.Sprintf("%+.1f%%", 100*(float64(p50)/float64(offP50)-1))
			}
			if m.name == "tel-1pct" {
				pctP50 = p50
			}
		}
		r.AddRow(m.name, fmt.Sprintf("%g", m.sample), p50, p90, overhead,
			fmt.Sprintf("%d/%d", stitched, len(queries)), fmt.Sprintf("%016x", digest))
	}

	budget := offP50 + time.Duration(float64(offP50)*fleetObsOverheadPct)
	if floor := offP50 + fleetObsOverheadFloor; budget < floor {
		budget = floor
	}
	if pctP50 > budget {
		return nil, fmt.Errorf("bench: telemetry overhead gate failed: p50 %v at 1%% sampling exceeds budget %v (off baseline %v + max(5%%, %v))",
			pctP50, budget, offP50, fleetObsOverheadFloor)
	}
	r.Notef("all modes digest byte-identical to sequential bkws — telemetry on, off, or mixed-vintage never changes answers (enforced)")
	r.Notef("overhead gate: p50 at 1%% sampling %v vs off %v, budget %v (5%% + %v noise floor) — enforced", pctP50, offP50, budget, fleetObsOverheadFloor)
	r.Notef("mixed-legacy fleet: one server speaks the pre-capability protocol; telemetry degrades to partial stitching, answers stay identical")
	return r, nil
}

package bench

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
)

// Observability-overhead experiment parameters: the same deterministic
// two-keyword workload evaluated with the flight recorder disabled, at
// the production sampling rate, and with every trace retained.
const (
	obsPoolSize = 48
	obsSamples  = 300
)

// RunObs measures the cost of the query tracing + flight-recorder path
// on yago-s: per-query span trees are built, paper-phase attrs recorded,
// and the trace handed to the recorder's tail-sampling decision, exactly
// as the server does per request. The recorder-off pass is the baseline;
// the acceptance bar is <5% p50 overhead at the default sample=0.01.
func RunObs() (*Report, error) {
	return runObs(obsPoolSize, obsSamples)
}

func runObs(poolSize, samples int) (*Report, error) {
	f, err := GetFixture("yago-s")
	if err != nil {
		return nil, err
	}
	ev := core.NewEvaluator(f.Index, NewBlinks(), BlinksEvalOptions("yago-s"))
	pool := cacheQueryPool(f, poolSize)
	if len(pool) < 2 {
		return nil, fmt.Errorf("bench: query pool too small (%d)", len(pool))
	}
	seq := make([]int, samples)
	for i := range seq {
		seq[i] = i % len(pool)
	}

	// Warm the per-layer prepared indexes (construction time, excluded).
	for _, q := range pool {
		if _, _, err := ev.Eval(q); err != nil {
			return nil, err
		}
	}

	ctx := context.Background()
	// runPass replays the workload. rec == nil is the baseline: no trace or
	// ledger in the context, so every span and ledger call in eval and the
	// algorithms takes the nil fast path; with a recorder each query gets
	// the full server treatment — root span, child spans, attrs, a resource
	// ledger, and the tail-sampling Finish with its cost snapshot attached.
	runPass := func(rec *obs.Recorder) ([]time.Duration, error) {
		ts := make([]time.Duration, 0, samples)
		for _, i := range seq {
			q := pool[i]
			start := time.Now()
			if rec == nil {
				if _, _, err := ev.EvalCtx(ctx, q); err != nil {
					return nil, err
				}
			} else {
				tr := obs.NewTrace("query")
				led := obs.NewLedger()
				qctx := obs.ContextWithLedger(obs.ContextWithSpan(ctx, tr.Root()), led)
				_, _, err := ev.EvalCtx(qctx, q)
				if err != nil {
					return nil, err
				}
				elapsed := time.Since(start)
				tr.Root().End()
				rec.FinishCost(tr, "blinks", labelsString(q), "ok", elapsed, led.Snapshot())
			}
			ts = append(ts, time.Since(start))
		}
		return ts, nil
	}

	r := &Report{ID: "obs", Title: "Flight recorder overhead on yago-s (blinks, two-keyword workload)",
		Header: []string{"mode", "queries", "p50", "p99", "traces kept"}}

	off, err := runPass(nil)
	if err != nil {
		return nil, err
	}
	offP50 := percentile(off, 0.50)
	r.AddRow("recorder off", samples, offP50.String(), percentile(off, 0.99).String(), "-")

	// KeepSlowest/Window are production defaults; only the uniform sample
	// rate varies between the two instrumented passes.
	recSampled := obs.NewRecorder(obs.RecorderOptions{Sample: 0.01})
	sampled, err := runPass(recSampled)
	if err != nil {
		return nil, err
	}
	sampledP50 := percentile(sampled, 0.50)
	r.AddRow("sample=0.01", samples, sampledP50.String(),
		percentile(sampled, 0.99).String(), recSampled.Len())

	recAll := obs.NewRecorder(obs.RecorderOptions{Sample: 1.0})
	all, err := runPass(recAll)
	if err != nil {
		return nil, err
	}
	r.AddRow("sample=1.0", samples, percentile(all, 0.50).String(),
		percentile(all, 0.99).String(), recAll.Len())

	if offP50 > 0 {
		overhead := 100 * (float64(sampledP50)/float64(offP50) - 1)
		r.Notef("p50 overhead at sample=0.01: %.1f%% (off %v -> sampled %v); acceptance bar <5%%",
			overhead, offP50, sampledP50)
	}
	r.Notef("pool %d two-keyword queries, %d samples, round-robin replay; spans + attrs + tail-sampling Finish per query",
		len(pool), samples)
	return r, nil
}

func labelsString(q []graph.Label) string {
	s := ""
	for i, l := range q {
		if i > 0 {
			s += ","
		}
		s += strconv.Itoa(int(l))
	}
	return s
}

package bench

// Workload replay: re-evaluate a query log captured by bigindexd's
// -query-log flag (internal/obs.QueryLog) against a locally built fixture
// and audit Formula 4 the same way the server's /debug/costmodel does —
// per-(algo, layer) predicted-vs-observed calibration plus the
// least-squares β̂ the replayed workload suggests. The replay is offline
// and deterministic: same log + same dataset ⇒ same routing, same ledger
// work, same calibration rows.

import (
	"context"
	"fmt"
	"sync"

	"bigindex/internal/core"
	"bigindex/internal/cost"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/search/bidir"
	"bigindex/internal/search/bkws"
)

var (
	replayMu      sync.Mutex
	replayPath    string
	replayDataset = "demo"
)

// SetReplayConfig points the replay experiment at a captured workload file
// and the dataset it was captured against. Runner is zero-argument, so
// benchrunner passes its -workload/-workload-dataset flags through here
// before dispatching.
func SetReplayConfig(path, dataset string) {
	replayMu.Lock()
	defer replayMu.Unlock()
	replayPath = path
	if dataset != "" {
		replayDataset = dataset
	}
}

// replayEvaluator builds the per-algorithm evaluator replay uses,
// mirroring the server's evaluator pool (internal/server.evaluator): the
// replayed routing decisions must match what the capturing daemon did.
func replayEvaluator(f *Fixture, algo string) (*core.Evaluator, error) {
	switch algo {
	case "", "blinks":
		return core.NewEvaluator(f.Index, NewBlinks(), BlinksEvalOptions(f.DS.Name)), nil
	case "bkws":
		return core.NewEvaluator(f.Index, bkws.New(DMax), BlinksEvalOptions(f.DS.Name)), nil
	case "bidir":
		return core.NewEvaluator(f.Index, bidir.New(DMax), BlinksEvalOptions(f.DS.Name)), nil
	case "rclique":
		return core.NewEvaluator(f.Index, NewRClique(), RCliqueEvalOptions()), nil
	default:
		return nil, fmt.Errorf("bench: replay: unknown algorithm %q", algo)
	}
}

// RunReplay replays the configured workload capture. Entries that cannot
// contribute to calibration are skipped, not fatal: direct (baseline)
// evaluations bypass the router, non-ok outcomes measured partial work,
// and keywords absent from the replay dataset have no labels to resolve.
func RunReplay() (*Report, error) {
	replayMu.Lock()
	path, dataset := replayPath, replayDataset
	replayMu.Unlock()
	if path == "" {
		return nil, fmt.Errorf("bench: replay needs a workload file (benchrunner -workload)")
	}
	entries, malformed, err := obs.ReadQueryLogFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading workload %s: %w", path, err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("bench: workload %s holds no replayable entries", path)
	}
	f, err := GetFixture(dataset)
	if err != nil {
		return nil, err
	}
	dict := f.DS.Graph.Dict()
	size := f.DS.Graph.Size()
	if size <= 0 {
		return nil, fmt.Errorf("bench: replay dataset %s is empty", dataset)
	}

	cal := cost.NewCalibration(len(entries))
	evs := map[string]*core.Evaluator{}
	var capturedWork = map[string]int64{} // algo -> summed captured work units
	var capturedN = map[string]int{}
	replayed, skipDirect, skipOutcome, skipResolve, skipEval := 0, 0, 0, 0, 0

	for _, e := range entries {
		if e.Direct {
			skipDirect++
			continue
		}
		if e.Outcome != "ok" {
			skipOutcome++
			continue
		}
		q := make([]graph.Label, 0, len(e.Keywords))
		ok := true
		for _, name := range e.Keywords {
			l := dict.Lookup(name)
			if l == graph.NoLabel {
				ok = false
				break
			}
			q = append(q, l)
		}
		if !ok || len(q) == 0 {
			skipResolve++
			continue
		}
		ev := evs[e.Algo]
		if ev == nil {
			ev, err = replayEvaluator(f, e.Algo)
			if err != nil {
				skipResolve++
				continue
			}
			evs[e.Algo] = ev
			// First use: warm the per-layer prepared indexes so index
			// construction never pollutes the first entry's ledger.
			if _, _, err := ev.Eval(q); err != nil {
				skipEval++
				continue
			}
		}
		led := obs.NewLedger()
		_, bd, err := ev.EvalCtx(obs.ContextWithLedger(context.Background(), led), q)
		if err != nil || bd == nil {
			skipEval++
			continue
		}
		work := led.WorkUnits()
		if work <= 0 {
			skipEval++
			continue
		}
		opt := ev.Options()
		compress, sup, legal := cost.LayerTerms(f.Index, q, opt.DegreeExponent)
		cal.Add(cost.Sample{
			Algo: e.Algo, Layer: bd.Layer,
			Compress: compress, Sup: sup, Legal: legal,
			Observed: float64(work) / float64(size),
		})
		replayed++
		if e.Cost != nil {
			capturedWork[e.Algo] += e.Cost.WorkUnits
			capturedN[e.Algo]++
		}
	}
	if replayed == 0 {
		return nil, fmt.Errorf("bench: no entry of %s could be replayed against %s (%d direct, %d non-ok, %d unresolvable, %d failed)",
			path, dataset, skipDirect, skipOutcome, skipResolve, skipEval)
	}

	r := &Report{ID: "replay", Title: fmt.Sprintf("Workload replay of %s on %s: Formula 4 calibration", path, dataset),
		Header: []string{"algo", "layer", "queries", "mean predicted", "mean observed", "predicted/observed"}}
	for _, row := range cal.Summary(Beta) {
		r.AddRow(row.Algo, row.Layer, row.Count,
			fmt.Sprintf("%.5f", row.MeanPredicted),
			fmt.Sprintf("%.5f", row.MeanObserved),
			fmt.Sprintf("%.3f", row.MeanRatio))
	}
	if betaHat, a, b, ok := cal.Fit(); ok {
		r.Notef("least-squares fit over %d replayed queries: a=%.4g b=%.4g, suggested β̂=%.3f (configured β=%.2f)",
			replayed, a, b, betaHat, Beta)
	} else {
		r.Notef("window too small or degenerate for a β fit (%d replayed queries)", replayed)
	}
	for algo, n := range capturedN {
		r.Notef("captured ledger (%s): mean %d work units over %d logged queries", algo, capturedWork[algo]/int64(n), n)
	}
	r.Notef("skipped: %d direct, %d non-ok, %d unresolvable, %d failed evals, %d malformed lines",
		skipDirect, skipOutcome, skipResolve, skipEval, malformed)
	return r, nil
}

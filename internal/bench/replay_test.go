package bench

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"bigindex/internal/obs"
)

// writeWorkload captures a synthetic query log the way bigindexd would:
// one JSONL entry per query, keywords by name.
func writeWorkload(t *testing.T, entries []obs.QueryLogEntry) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "qlog.jsonl")
	ql, err := obs.OpenQueryLog(obs.QueryLogOptions{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		ql.Append(e)
	}
	if err := ql.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func demoEntry(kws []string, algo, outcome string, direct bool) obs.QueryLogEntry {
	return obs.QueryLogEntry{
		TS: time.Unix(1700000000, 0).UTC(), Keywords: kws, Algo: algo, K: 10,
		Direct: direct, Outcome: outcome,
		Cost: &obs.LedgerSnapshot{Expanded: 7, WorkUnits: 7},
	}
}

func TestRunReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the demo fixture")
	}
	// demo/term/0 and /1 are the two most frequent Zipf terms of the demo
	// preset, so every algorithm finds answers for them.
	path := writeWorkload(t, []obs.QueryLogEntry{
		demoEntry([]string{"demo/term/0", "demo/term/1"}, "blinks", "ok", false),
		demoEntry([]string{"demo/term/1", "demo/term/2"}, "blinks", "ok", false),
		demoEntry([]string{"demo/term/0", "demo/term/2"}, "bkws", "ok", false),
		demoEntry([]string{"demo/term/0"}, "blinks", "ok", true),        // direct: skipped
		demoEntry([]string{"demo/term/0"}, "blinks", "degraded", false), // non-ok: skipped
		demoEntry([]string{"no/such/term"}, "blinks", "ok", false),      // unresolvable: skipped
	})
	SetReplayConfig(path, "demo")
	defer SetReplayConfig("", "demo")

	rep, err := RunReplay()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "replay" || len(rep.Rows) == 0 {
		t.Fatalf("report: %+v", rep)
	}
	// 3 replayable entries across two algorithms; every row carries a
	// positive predicted/observed ratio.
	algos := map[string]bool{}
	queries := 0
	for _, row := range rep.Rows {
		algos[row[0]] = true
		n, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("row query count %q: %v", row[2], err)
		}
		queries += n
		if ratio := row[5]; strings.HasPrefix(ratio, "-") || ratio == "0.000" {
			t.Fatalf("bad ratio in row %v", row)
		}
	}
	if queries != 3 || !algos["blinks"] || !algos["bkws"] {
		t.Fatalf("rows: %+v", rep.Rows)
	}
	joined := strings.Join(rep.Notes, "\n")
	if !strings.Contains(joined, "skipped: 1 direct, 1 non-ok, 1 unresolvable") {
		t.Fatalf("skip accounting missing: %q", joined)
	}
	if !strings.Contains(joined, "captured ledger (blinks): mean 7 work units") {
		t.Fatalf("captured-ledger note missing: %q", joined)
	}
}

func TestRunReplayErrors(t *testing.T) {
	SetReplayConfig("", "demo")
	if _, err := RunReplay(); err == nil || !strings.Contains(err.Error(), "-workload") {
		t.Fatalf("want a usage error without a workload, got %v", err)
	}

	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	SetReplayConfig(empty, "demo")
	defer SetReplayConfig("", "demo")
	if _, err := RunReplay(); err == nil || !strings.Contains(err.Error(), "no replayable entries") {
		t.Fatalf("want an empty-workload error, got %v", err)
	}
}

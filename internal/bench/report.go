package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"text/tabwriter"
	"time"
)

// Report is a rendered experiment: a title, a table, and free-form notes.
// Runners fill one and Write renders it; benchmarks can also consume the
// structured rows.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Elapsed is the experiment's wall time, set by the runner harness for
	// the machine-readable export.
	Elapsed time.Duration
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = fmtDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	r.Rows = append(r.Rows, row)
}

// Notef appends a formatted note line.
func (r *Report) Notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Write renders the report as an aligned text table.
func (r *Report) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(r.Header) > 0 {
		fmt.Fprintln(tw, strings.Join(r.Header, "\t"))
	}
	for _, row := range r.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintln(w, "  note:", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// pct renders a reduction percentage ("t_base -> t_new").
func pct(base, with time.Duration) string {
	if base <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*(1-float64(with)/float64(base)))
}

// reportJSON is the machine-readable form of one Report; rows stay as
// rendered strings so the export mirrors the text tables exactly and
// diffing across PRs needs no knowledge of each experiment's cell types.
type reportJSON struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Header    []string   `json:"header,omitempty"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
}

// reportMeta pins down the machine the numbers came from: comparing
// BENCH_*.json across PRs is only meaningful when the parallelism
// headroom (GOMAXPROCS) and the shard worker counts are part of the
// record — a "2x speedup at 4 workers" claim reads very differently on a
// 1-CPU runner.
type reportMeta struct {
	GOMAXPROCS   int   `json:"gomaxprocs"`
	NumCPU       int   `json:"num_cpu"`
	ShardWorkers []int `json:"shard_workers"`
}

// WriteJSON renders the reports as one JSON document (the BENCH_eval.json
// export of cmd/benchrunner), keyed by experiment in run order, under a
// metadata header recording the run's parallelism envelope.
func WriteJSON(w io.Writer, reports []*Report) error {
	out := struct {
		Meta        reportMeta   `json:"meta"`
		Experiments []reportJSON `json:"experiments"`
	}{
		Meta: reportMeta{
			GOMAXPROCS:   runtime.GOMAXPROCS(0),
			NumCPU:       runtime.NumCPU(),
			ShardWorkers: ShardWorkers(),
		},
		Experiments: make([]reportJSON, 0, len(reports)),
	}
	for _, r := range reports {
		rows := r.Rows
		if rows == nil {
			rows = [][]string{} // "rows": [] rather than null for consumers
		}
		out.Experiments = append(out.Experiments, reportJSON{
			ID:        r.ID,
			Title:     r.Title,
			Header:    r.Header,
			Rows:      rows,
			Notes:     r.Notes,
			ElapsedMS: float64(r.Elapsed.Microseconds()) / 1000,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

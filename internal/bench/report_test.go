package bench

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestReportRendering(t *testing.T) {
	r := &Report{
		ID:     "T1",
		Title:  "demo",
		Header: []string{"a", "b", "c"},
	}
	r.AddRow("x", 1500*time.Microsecond, 0.12345)
	r.AddRow(42, 2*time.Second, "literal")
	r.Notef("note %d", 7)

	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== T1: demo ==", "1.50ms", "2.00s", "0.1235", "note 7", "literal"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteJSON covers the BENCH_eval.json export: same rows as the text
// table, plus per-experiment wall time.
func TestWriteJSON(t *testing.T) {
	r1 := &Report{ID: "T1", Title: "demo", Header: []string{"a", "b"}, Elapsed: 1500 * time.Microsecond}
	r1.AddRow("x", 2*time.Millisecond)
	r1.Notef("a note")
	r2 := &Report{ID: "T2", Title: "empty"}

	var sb strings.Builder
	if err := WriteJSON(&sb, []*Report{r1, r2}); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Experiments []struct {
			ID        string     `json:"id"`
			Title     string     `json:"title"`
			Header    []string   `json:"header"`
			Rows      [][]string `json:"rows"`
			Notes     []string   `json:"notes"`
			ElapsedMS float64    `json:"elapsed_ms"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(got.Experiments) != 2 {
		t.Fatalf("experiments = %d", len(got.Experiments))
	}
	e := got.Experiments[0]
	if e.ID != "T1" || e.Title != "demo" || e.ElapsedMS != 1.5 {
		t.Fatalf("bad experiment header: %+v", e)
	}
	if len(e.Rows) != 1 || e.Rows[0][0] != "x" || e.Rows[0][1] != "2.00ms" {
		t.Fatalf("rows not exported as rendered: %+v", e.Rows)
	}
	if len(e.Notes) != 1 || e.Notes[0] != "a note" {
		t.Fatalf("notes: %+v", e.Notes)
	}
	if got.Experiments[1].Rows == nil {
		t.Fatal("empty report must still export a rows array")
	}
}

func TestFmtDuration(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:   "0µs",
		42 * time.Microsecond:   "42µs",
		1500 * time.Microsecond: "1.50ms",
		3 * time.Second:         "3.00s",
	}
	for d, want := range cases {
		if got := fmtDuration(d); got != want {
			t.Errorf("fmtDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := pct(100, 50); got != "50.0%" {
		t.Errorf("pct = %q", got)
	}
	if got := pct(100, 150); got != "-50.0%" {
		t.Errorf("negative pct = %q", got)
	}
	if got := pct(0, 50); got != "n/a" {
		t.Errorf("zero base = %q", got)
	}
}

func TestTimeItMedian(t *testing.T) {
	calls := 0
	d, err := timeIt(5, func() error { calls++; return nil })
	if err != nil || calls != 5 {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
	if d < 0 {
		t.Fatal("negative duration")
	}
	// Errors propagate.
	if _, err := timeIt(3, func() error { return errSentinel }); err != errSentinel {
		t.Fatalf("error not propagated: %v", err)
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }

func TestDatasetByName(t *testing.T) {
	for _, name := range append(append([]string{}, RealNames...), SynthNames...) {
		if _, err := datasetByName(name); err != nil {
			t.Errorf("datasetByName(%q): %v", name, err)
		}
	}
	if _, err := datasetByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
	// replay needs an externally captured workload, so it is registered but
	// deliberately excluded from "-exp all".
	onDemand := map[string]bool{"replay": true}
	if len(Experiments) != len(ExperimentOrder)+len(onDemand) {
		t.Errorf("Experiments has %d entries, order lists %d (+%d on-demand)",
			len(Experiments), len(ExperimentOrder), len(onDemand))
	}
	ordered := map[string]bool{}
	for _, id := range ExperimentOrder {
		ordered[id] = true
		if Experiments[id] == nil {
			t.Errorf("experiment %q missing from map", id)
		}
	}
	for id := range Experiments {
		if !ordered[id] && !onDemand[id] {
			t.Errorf("experiment %q neither ordered nor on-demand", id)
		}
		if ordered[id] && onDemand[id] {
			t.Errorf("experiment %q both ordered and on-demand", id)
		}
	}
}

func TestEvalOptionPresets(t *testing.T) {
	if BlinksEvalOptions("imdb-s").DegreeExponent != 0 {
		t.Error("imdb-s should use the paper formula")
	}
	if BlinksEvalOptions("dbpedia-s").DegreeExponent != 1 {
		t.Error("dbpedia-s should use the density correction")
	}
	rc := RCliqueEvalOptions()
	if rc.K != 10 || !rc.EarlyK || rc.DegreeExponent != RClique {
		t.Errorf("rclique options: %+v", rc)
	}
}

package bench

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"slices"
	"time"

	"bigindex/internal/datagen"
	"bigindex/internal/search"
	"bigindex/internal/search/bidir"
	"bigindex/internal/search/bkws"
	"bigindex/internal/shard"
)

// Shard experiment configuration, overridable via SetShardConfig for the
// CI smoke run (tiny preset, two worker counts). The default workload is
// multi-keyword and zipf-flavored (datagen biases keyword choice toward
// popular terms): many keywords × large posting lists is where the
// per-(keyword × block) decomposition has tasks to spread.
var (
	shardDataset = "yago-s"
	shardWorkers = []int{1, 2, 4, 8}
)

// ShardWorkers returns the configured worker counts (exported so the JSON
// report metadata can record them alongside GOMAXPROCS).
func ShardWorkers() []int { return slices.Clone(shardWorkers) }

// SetShardConfig overrides the shard experiment's dataset and worker
// counts; empty/nil keep the defaults. cmd/benchrunner wires it to
// -shard-dataset / -shard-workers.
func SetShardConfig(dataset string, workers []int) {
	if dataset != "" {
		shardDataset = dataset
	}
	if len(workers) > 0 {
		shardWorkers = slices.Clone(workers)
	}
}

const shardK = 10

// matchDigest folds a result list into one order-sensitive hash over
// every field a client can observe (root, score, per-keyword distances,
// witness nodes). Two result lists digest equal iff they are
// byte-identical — the experiment's correctness gate.
func matchDigest(h interface{ Write([]byte) (int, error) }, ms []search.Match) {
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	put(uint64(len(ms)))
	for _, m := range ms {
		put(uint64(m.Root))
		put(math.Float64bits(m.Score))
		put(uint64(len(m.Dists)))
		for _, d := range m.Dists {
			put(uint64(d))
		}
		put(uint64(len(m.Nodes)))
		for _, n := range m.Nodes {
			put(uint64(n))
		}
	}
}

// RunShard measures partition-sharded query execution against the
// sequential baseline: for bkws and bidir, a multi-keyword workload is
// evaluated sequentially and then through the scatter-gather coordinator
// at each configured worker count, reporting p50/p90 latency, the speedup
// over the sequential baseline, and the digest of all answers. Any digest
// mismatch fails the experiment — identical answers are the contract, not
// an aspiration.
func RunShard() (*Report, error) {
	f, err := GetFixture(shardDataset)
	if err != nil {
		return nil, err
	}
	g := f.DS.Graph
	queries := datagen.Queries(f.DS, datagen.WorkloadOptions{
		Sizes:    []int{3, 3, 4, 4, 5, 5, 6, 6},
		MinCount: 20,
		Seed:     7,
	})
	if len(queries) == 0 {
		return nil, fmt.Errorf("bench: shard workload is empty on %s", shardDataset)
	}

	r := &Report{ID: "shard",
		Title:  fmt.Sprintf("Partition-sharded execution on %s (k = %d, block size %d)", shardDataset, shardK, BlockSize),
		Header: []string{"algo", "mode", "p50", "p90", "speedup vs seq", "digest"}}

	type variant struct {
		name string
		mk   func(workers int) (search.Algorithm, error)
	}
	for _, v := range []variant{
		{"bkws", func(w int) (search.Algorithm, error) {
			if w == 0 {
				return bkws.New(DMax), nil
			}
			return bkws.NewSharded(DMax, shard.Options{Workers: w, BlockSize: BlockSize}), nil
		}},
		{"bidir", func(w int) (search.Algorithm, error) {
			if w == 0 {
				return bidir.New(DMax), nil
			}
			return bidir.NewSharded(DMax, shard.Options{Workers: w, BlockSize: BlockSize}), nil
		}},
	} {
		var seqP50 time.Duration
		var seqDigest uint64
		for _, workers := range append([]int{0}, shardWorkers...) {
			algo, err := v.mk(workers)
			if err != nil {
				return nil, err
			}
			prep, err := algo.Prepare(g)
			if err != nil {
				return nil, err
			}
			// Warmup pass builds the shard plan (one-off, shared with
			// serving via the plan cache in production) and computes the
			// run's answer digest, excluded from the timings like index
			// construction is in the paper.
			h := fnv.New64a()
			for _, q := range queries {
				ms, err := prep.Search(q.Keywords, shardK)
				if err != nil {
					return nil, err
				}
				matchDigest(h, ms)
			}
			digest := h.Sum64()

			times := make([]time.Duration, 0, len(queries))
			for _, q := range queries {
				med, err := timeIt(QueryRepeats, func() error {
					_, e := prep.Search(q.Keywords, shardK)
					return e
				})
				if err != nil {
					return nil, err
				}
				times = append(times, med)
			}
			slices.Sort(times)
			p50 := times[len(times)/2]
			p90 := times[len(times)*9/10]

			mode := fmt.Sprintf("shard-%d", workers)
			speedup := "baseline"
			if workers == 0 {
				mode = "seq"
				seqP50, seqDigest = p50, digest
			} else {
				if digest != seqDigest {
					return nil, fmt.Errorf(
						"bench: %s answers diverged at %d workers: digest %016x, sequential %016x",
						v.name, workers, digest, seqDigest)
				}
				if seqP50 > 0 {
					speedup = fmt.Sprintf("%.2fx", float64(seqP50)/float64(p50))
				}
			}
			r.AddRow(v.name, mode, p50, p90, speedup, fmt.Sprintf("%016x", digest))
		}
	}
	r.Notef("top-k digests asserted byte-identical to sequential at every worker count")
	r.Notef("GOMAXPROCS=%d; wall-clock scaling needs as many schedulable CPUs as workers",
		runtime.GOMAXPROCS(0))
	return r, nil
}

package bench

import (
	"context"
	"fmt"
	"hash/fnv"
	"slices"
	"time"

	"bigindex/internal/datagen"
	"bigindex/internal/graph"
	"bigindex/internal/search"
	"bigindex/internal/shard"
	"bigindex/internal/shardrpc"
)

// shardNetDataset configures the shardnet experiment (SetShardNetConfig;
// the CI smoke uses demo).
var shardNetDataset = "yago-s"

// SetShardNetConfig overrides the shardnet experiment's dataset; empty
// keeps the default.
func SetShardNetConfig(dataset string) {
	if dataset != "" {
		shardNetDataset = dataset
	}
}

// shardNetWorkers is the coordinator's worker count, fixed across modes so
// the only variable is where Expand runs (in-process vs over TCP) and how
// the fleet is laid out.
const shardNetWorkers = 4

// ctxSearcher is the context-aware face of a prepared sharded algorithm
// (the coverage collector rides the context).
type ctxSearcher interface {
	SearchCtx(ctx context.Context, q []graph.Label, k int) ([]search.Match, error)
}

// shardNetFleet is one localhost shardrpc deployment: servers bound to
// real TCP listeners plus the client a coordinator dispatches through.
// In-process servers keep the experiment self-contained while still
// exercising the full wire path — framing, CRC, per-call digest checks,
// connection pooling, retries.
type shardNetFleet struct {
	servers []*shardrpc.Server
	client  *shardrpc.Client
}

func (f *shardNetFleet) close() {
	if f.client != nil {
		f.client.Close()
	}
	for _, s := range f.servers {
		s.Close()
	}
}

// startFleet launches n servers, server i serving the spec(i) block slice,
// and a client over all of them.
func startFleet(plan *shard.Plan, n int, spec func(i int) string) (*shardNetFleet, error) {
	f := &shardNetFleet{}
	peerSpec := ""
	for i := 0; i < n; i++ {
		blocks, err := shardrpc.ParseBlocks(spec(i), plan.NumBlocks())
		if err != nil {
			f.close()
			return nil, err
		}
		srv := shardrpc.NewServer(plan, shardrpc.ServerOptions{Blocks: blocks, BlockSize: BlockSize})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			f.close()
			return nil, err
		}
		f.servers = append(f.servers, srv)
		if peerSpec != "" {
			peerSpec += ";"
		}
		peerSpec += addr.String() + "=" + spec(i)
	}
	peers, err := shardrpc.ParsePeers(peerSpec)
	if err != nil {
		f.close()
		return nil, err
	}
	f.client = shardrpc.NewClient(shardrpc.ClientOptions{Peers: peers, BlockSize: BlockSize})
	return f, nil
}

// RunShardNet measures the distributed serving path against in-process
// sharded execution on one machine: the same coordinator (4 workers)
// dispatching expansion to fleets of 1/2/4 localhost shardrpc servers,
// plus a failover mode that SIGKILL-equivalently drops one of two full
// replicas mid-experiment. Three properties are enforced, not just
// reported: every mode's answers digest byte-identical to the sequential
// baseline, healthy modes lose zero coverage, and the kill mode sustains
// coverage 1.0 through replica failover.
func RunShardNet() (*Report, error) {
	f, err := GetFixture(shardNetDataset)
	if err != nil {
		return nil, err
	}
	g := f.DS.Graph
	queries := datagen.Queries(f.DS, datagen.WorkloadOptions{
		Sizes:    []int{3, 3, 4, 4, 5, 5},
		MinCount: 20,
		Seed:     11,
	})
	if len(queries) == 0 {
		return nil, fmt.Errorf("bench: shardnet workload is empty on %s", shardNetDataset)
	}

	// Sequential truth: the digest every mode must reproduce.
	seqPrep, err := prepBKWS(g, nil)
	if err != nil {
		return nil, err
	}
	seqDigest, lossy, err := digestPass(seqPrep, queries)
	if err != nil {
		return nil, err
	}
	if lossy != 0 {
		return nil, fmt.Errorf("bench: sequential pass reported %d lossy queries", lossy)
	}

	r := &Report{ID: "shardnet",
		Title: fmt.Sprintf("Distributed shard serving on %s (bkws, %d coordinator workers, k = %d, block size %d)",
			shardNetDataset, shardNetWorkers, shardK, BlockSize),
		Header: []string{"mode", "fleet", "p50", "p90", "p50 overhead vs inproc", "coverage", "digest"}}

	type mode struct {
		name  string
		fleet int              // servers; 0 = in-process shard.Local
		spec  func(int) string // block spec per server
		kill  bool             // drop servers[0] before the timed pass
	}
	modes := []mode{
		{"inproc", 0, nil, false},
		{"net-1", 1, func(int) string { return "all" }, false},
		{"net-2", 2, func(i int) string { return fmt.Sprintf("%d%%2", i) }, false},
		{"net-4", 4, func(i int) string { return fmt.Sprintf("%d%%4", i) }, false},
		{"net-2-kill1", 2, func(int) string { return "all" }, true},
	}

	var inprocP50, net2P50, killP50 time.Duration
	for _, m := range modes {
		var fleet *shardNetFleet
		var factory func(*shard.Plan) shard.ShardServer
		if m.fleet > 0 {
			plan := shard.NewPlanner(shard.Options{BlockSize: BlockSize}).PlanGraph(g)
			fleet, err = startFleet(plan, m.fleet, m.spec)
			if err != nil {
				return nil, fmt.Errorf("bench: %s fleet: %w", m.name, err)
			}
			factory = func(p *shard.Plan) shard.ShardServer { return fleet.client.For(p) }
		}
		prep, err := prepBKWS(g, factory)
		if err == nil && m.kill {
			// Warm the healthy fleet (plan + connections), then drop one
			// of the two full replicas abruptly — SetLinger(0), the
			// in-process kill -9 — so the digest and timed passes below
			// run entirely through failover.
			if _, _, err = digestPass(prep, queries); err == nil {
				fleet.servers[0].Kill()
			}
		}
		var digest uint64
		if err == nil {
			digest, lossy, err = digestPass(prep, queries)
		}
		var p50, p90 time.Duration
		var timedLossy int
		if err == nil {
			p50, p90, timedLossy, err = timedPass(prep, queries)
			lossy += timedLossy
		}
		if fleet != nil {
			fleet.close()
		}
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", m.name, err)
		}
		if digest != seqDigest {
			return nil, fmt.Errorf("bench: %s answers diverged: digest %016x, sequential %016x",
				m.name, digest, seqDigest)
		}
		if lossy != 0 {
			return nil, fmt.Errorf("bench: %s lost coverage on %d queries (replica failover must sustain 1.0)",
				m.name, lossy)
		}
		overhead := "baseline"
		switch m.name {
		case "inproc":
			inprocP50 = p50
		default:
			if inprocP50 > 0 {
				overhead = fmt.Sprintf("%+.1f%%", 100*(float64(p50)/float64(inprocP50)-1))
			}
			if m.name == "net-2" {
				net2P50 = p50
			}
			if m.kill {
				killP50 = p50
			}
		}
		fleetCol := "-"
		if m.fleet > 0 {
			fleetCol = fmt.Sprintf("%d", m.fleet)
		}
		r.AddRow(m.name, fleetCol, p50, p90, overhead, "1.000", fmt.Sprintf("%016x", digest))
	}

	r.Notef("all modes digest byte-identical to sequential bkws; coverage 1.0 enforced (zero lossy queries)")
	if net2P50 > 0 && killP50 > 0 {
		r.Notef("kill-one-of-two replicas: steady-state p50 %+.1f%% vs healthy net-2 (open breaker routes around the corpse)",
			100*(float64(killP50)/float64(net2P50)-1))
	}
	r.Notef("fleets are in-process servers over real localhost TCP: full framing/CRC/digest-check/pool path, no scheduler noise from extra processes")
	return r, nil
}

// prepBKWS prepares the sharded bkws coordinator (factory nil = local
// execution) with the experiment's fixed worker count.
func prepBKWS(g *graph.Graph, factory func(*shard.Plan) shard.ShardServer) (ctxSearcher, error) {
	algo := shard.New(shard.ModeBKWS, DMax, shard.Options{
		Workers:   shardNetWorkers,
		BlockSize: BlockSize,
		Server:    factory,
	})
	prep, err := algo.Prepare(g)
	if err != nil {
		return nil, err
	}
	cs, ok := prep.(ctxSearcher)
	if !ok {
		return nil, fmt.Errorf("bench: prepared sharded algorithm lacks SearchCtx")
	}
	return cs, nil
}

// digestPass runs every query once, folding the full observable answer
// into one digest and counting queries that reported coverage loss.
func digestPass(prep ctxSearcher, queries []datagen.Query) (digest uint64, lossy int, err error) {
	h := fnv.New64a()
	for _, q := range queries {
		cov := shard.NewCoverage()
		ctx := shard.ContextWithCoverage(context.Background(), cov)
		ms, err := prep.SearchCtx(ctx, q.Keywords, shardK)
		if err != nil {
			return 0, 0, err
		}
		if cov.Report() != nil {
			lossy++
		}
		matchDigest(h, ms)
	}
	return h.Sum64(), lossy, nil
}

// timedPass measures per-query median-of-repeats latency and reports the
// workload's p50/p90, still watching for coverage loss — a silently
// degraded timed run would report flattering latencies for wrong answers.
func timedPass(prep ctxSearcher, queries []datagen.Query) (p50, p90 time.Duration, lossy int, err error) {
	times := make([]time.Duration, 0, len(queries))
	for _, q := range queries {
		med, err := timeIt(QueryRepeats, func() error {
			cov := shard.NewCoverage()
			ctx := shard.ContextWithCoverage(context.Background(), cov)
			_, e := prep.SearchCtx(ctx, q.Keywords, shardK)
			if e == nil && cov.Report() != nil {
				lossy++
			}
			return e
		})
		if err != nil {
			return 0, 0, lossy, err
		}
		times = append(times, med)
	}
	slices.Sort(times)
	return times[len(times)/2], times[len(times)*9/10], lossy, nil
}

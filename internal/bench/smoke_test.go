package bench

import "testing"

// TestRunnersSmoke executes the cheap experiment runners end to end (the
// heavy ones build every fixture and run minutes of timed queries; they are
// exercised by `go test -bench` and cmd/benchrunner).
func TestRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture construction in -short mode")
	}
	for _, id := range []string{"table4", "fig16"} {
		rep, err := Experiments[id]()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		var sb sw
		if err := rep.Write(&sb); err != nil {
			t.Fatalf("%s render: %v", id, err)
		}
	}
}

// A scaled-down cache experiment: the warm replay must hit on every
// sample and be far faster than the uncached pass.
func TestRunCacheSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture construction in -short mode")
	}
	rep, err := runCache(8, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows: %v", rep.Rows)
	}
	if hr := rep.Rows[2][4]; hr != "100.0%" {
		t.Fatalf("warm replay hit rate = %s, want 100.0%%", hr)
	}
}

type sw struct{ b []byte }

func (s *sw) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }

func TestFixtureCachedAndWorkloadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fixture construction in -short mode")
	}
	f1, err := GetFixture("yago-s")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := GetFixture("yago-s")
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("fixture not cached")
	}
	if len(f1.Queries) == 0 || f1.Index.NumLayers() < 2 {
		t.Fatalf("fixture shape: %d queries, %d layers", len(f1.Queries), f1.Index.NumLayers())
	}
	if _, err := GetFixture("bogus"); err == nil {
		t.Fatal("bogus fixture accepted")
	}
}

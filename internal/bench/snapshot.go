package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/snapshot"
)

// RunSnapshot measures the crash-safe snapshot path against a cold
// rebuild: for each real dataset it times core.Build from scratch, a
// snapshot save to disk, and a snapshot load (including full checksum
// verification and hierarchy re-validation). The load/build ratio is the
// daemon's restart speedup — the reason `-snapshot` exists.
func RunSnapshot() (*Report, error) {
	r := &Report{ID: "snapshot", Title: "Snapshot save/load vs cold index rebuild",
		Header: []string{"Dataset", "build", "save", "load", "size", "speedup"}}

	dir, err := os.MkdirTemp("", "bigindex-bench-snap")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var worst float64
	for _, name := range RealNames {
		f, err := GetFixture(name)
		if err != nil {
			return nil, err
		}

		// Cold rebuild, timed fresh (the fixture's cached BuildTime may
		// predate a warm page cache; rebuild under the same conditions the
		// load runs under).
		opt := core.DefaultBuildOptions()
		opt.Search.SampleCount = SampleCount
		start := time.Now()
		if _, err := core.Build(f.DS.Graph, f.DS.Ont, opt); err != nil {
			return nil, err
		}
		build := time.Since(start)

		path := filepath.Join(dir, name+".snap")
		start = time.Now()
		if err := snapshot.SaveFile(path, f.Index, snapshot.Meta{BuildNote: name}); err != nil {
			return nil, err
		}
		save := time.Since(start)

		load, err := timeIt(QueryRepeats, func() error {
			_, _, e := snapshot.LoadFileFor(path, f.DS.Ont, f.DS.Graph.Digest())
			return e
		})
		if err != nil {
			return nil, err
		}

		fi, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		speedup := float64(build) / float64(load)
		if worst == 0 || speedup < worst {
			worst = speedup
		}
		r.AddRow(name, build.Round(time.Millisecond), save.Round(time.Millisecond),
			load.Round(time.Millisecond), fmt.Sprintf("%.1f MiB", float64(fi.Size())/(1<<20)),
			fmt.Sprintf("%.0fx", speedup))
	}
	r.Notef("load includes CRC verification of every section and full Up/Down re-validation; worst-case restart speedup %.0fx", worst)
	return r, nil
}

package bench

import (
	"fmt"
	"time"

	"bigindex/internal/bisim"
	"bigindex/internal/core"
	"bigindex/internal/graph"
)

// RunSummarizers is an ablation beyond the paper's figures (its conclusion
// lists "other summarization formalisms" as future work): build the YAGO3
// stand-in's index with maximal backward bisimulation (the paper's choice),
// depth-bounded k-bisimulation, and forward bisimulation, and compare
// construction time, layer-1 compression, and workload latency. Answers
// stay identical under every variant (the equivalence theorem holds for any
// label-preserving quotient); what changes is the cost/benefit balance.
func RunSummarizers() (*Report, error) {
	ds, err := datasetByName("yago-s")
	if err != nil {
		return nil, err
	}
	base, err := GetFixture("yago-s")
	if err != nil {
		return nil, err
	}

	r := &Report{ID: "Ablation", Title: "Summarization formalisms (yago-s, Blinks workload)",
		Header: []string{"Summarizer", "build", "layers", "L1 ratio", "workload (boosted)"}}

	variants := []struct {
		name string
		fn   func(*graph.Graph) *bisim.Result
	}{
		{"bisim (paper)", nil},
		{"k-bisim k=2", func(g *graph.Graph) *bisim.Result { return bisim.ComputeK(g, 2) }},
		{"k-bisim k=4", func(g *graph.Graph) *bisim.Result { return bisim.ComputeK(g, 4) }},
		{"forward", bisim.ComputeForward},
	}

	for _, v := range variants {
		opt := core.DefaultBuildOptions()
		opt.Search.SampleCount = SampleCount
		opt.Summarizer = v.fn
		start := time.Now()
		idx, err := core.Build(ds.Graph, ds.Ont, opt)
		if err != nil {
			return nil, err
		}
		build := time.Since(start)

		l1 := "-"
		if idx.NumLayers() > 1 {
			l1 = fmt.Sprintf("%.4f", idx.Stats().Layers[1].Ratio)
		}

		ev := core.NewEvaluator(idx, NewBlinks(), BlinksEvalOptions("yago-s"))
		var total time.Duration
		for _, q := range base.Queries {
			if _, _, err := ev.Eval(q.Keywords); err != nil { // warm
				return nil, err
			}
			d, err := timeIt(QueryRepeats, func() error { _, _, e := ev.Eval(q.Keywords); return e })
			if err != nil {
				return nil, err
			}
			total += d
		}
		r.AddRow(v.name, build, idx.NumLayers()-1, l1, total)
	}
	r.Notef("answers are identical under every summarizer (Thm 4.2 holds for any label-preserving quotient)")
	return r, nil
}

// Package bisim computes the maximal (backward) bisimulation of a labeled
// directed graph and materializes it as a summary graph, implementing the
// Bisim summarization operator of the paper (Sec. 2).
//
// Two vertices are bisimilar iff they carry the same label and their
// out-neighborhoods match block-for-block (the paper's Def. in Sec. 2; its
// running example groups the 100 Person vertices because they share a label
// and a bisimilar child). The unique maximal bisimulation is the coarsest
// partition stable under that condition; we compute it by signature-based
// partition refinement (Kanellakis-Smolka style): start from the partition
// induced by labels and repeatedly split blocks whose members see different
// sets of successor blocks, until a fixpoint.
//
// The summary graph Bisim(G) has one supernode per block, labeled with the
// members' common label, and an edge between two supernodes iff some member
// edge connects their blocks — exactly the quotient construction of Sec. 2,
// which is path-preserving (Def. 2.1). Bisim⁻¹ is materialized as the
// Members table (supernode -> member vertices), the hash-table reverse
// mapping the paper prescribes.
package bisim

import (
	"hash/maphash"
	"slices"

	"bigindex/internal/graph"
)

// Result is the outcome of Compute: the summary graph, the vertex->supernode
// map χ (Block), and the supernode->vertices reverse map χ⁻¹ (Members).
type Result struct {
	// Summary is Bisim(G), the quotient graph.
	Summary *graph.Graph
	// Block maps each vertex of the input graph to its supernode in Summary;
	// Block[v] is the paper's Bisim(v) = [v]_equiv.
	Block []graph.V
	// Members maps each supernode to the member vertices of the input graph,
	// ascending; Members[s] is Bisim⁻¹(s).
	Members [][]graph.V
}

// NumBlocks reports the number of equivalence classes.
func (r *Result) NumBlocks() int { return len(r.Members) }

// CompressionRatio reports |Bisim(G)| / |G| given the original graph size;
// the compress component of the index cost model (Formula 3).
func (r *Result) CompressionRatio(original *graph.Graph) float64 {
	if original.Size() == 0 {
		return 1
	}
	return float64(r.Summary.Size()) / float64(original.Size())
}

// Compute returns the maximal bisimulation of g.
func Compute(g *graph.Graph) *Result {
	n := g.NumVertices()
	block := make([]uint32, n)

	// Initial partition: one block per distinct label, numbered in order of
	// first appearance so results are deterministic.
	next := uint32(0)
	byLabel := make(map[graph.Label]uint32)
	for v := 0; v < n; v++ {
		l := g.Label(graph.V(v))
		id, ok := byLabel[l]
		if !ok {
			id = next
			next++
			byLabel[l] = id
		}
		block[v] = id
	}

	numBlocks := int(next)
	sigBuf := make([]uint32, 0, 16)
	seed := maphash.MakeSeed()

	for {
		// Map (old block, successor-block set) -> new block id.
		assign := make(map[uint64][]int) // hash -> candidate vertex lists (chaining below)
		newBlock := make([]uint32, n)
		sigOf := make([][]uint32, 0, numBlocks*2)
		sigOwner := make([]uint32, 0, numBlocks*2) // old block of each new block
		nextID := uint32(0)

		for v := 0; v < n; v++ {
			sigBuf = sigBuf[:0]
			for _, w := range g.Out(graph.V(v)) {
				sigBuf = append(sigBuf, block[w])
			}
			slices.Sort(sigBuf)
			sigBuf = slices.Compact(sigBuf)

			h := hashSig(seed, block[v], sigBuf)
			id := uint32(0)
			found := false
			for _, cand := range assign[h] {
				if sigOwner[cand] == block[v] && slices.Equal(sigOf[cand], sigBuf) {
					id = uint32(cand)
					found = true
					break
				}
			}
			if !found {
				id = nextID
				nextID++
				sigOf = append(sigOf, append([]uint32(nil), sigBuf...))
				sigOwner = append(sigOwner, block[v])
				assign[h] = append(assign[h], int(id))
			}
			newBlock[v] = id
		}

		if int(nextID) == numBlocks {
			// Fixpoint: the partition is stable.
			break
		}
		numBlocks = int(nextID)
		block = newBlock
	}

	return buildResult(g, block, numBlocks)
}

func hashSig(seed maphash.Seed, owner uint32, sig []uint32) uint64 {
	var h maphash.Hash
	h.SetSeed(seed)
	var buf [4]byte
	putU32(&buf, owner)
	h.Write(buf[:])
	for _, s := range sig {
		putU32(&buf, s)
		h.Write(buf[:])
	}
	return h.Sum64()
}

func putU32(buf *[4]byte, x uint32) {
	buf[0] = byte(x)
	buf[1] = byte(x >> 8)
	buf[2] = byte(x >> 16)
	buf[3] = byte(x >> 24)
}

// buildResult materializes the quotient graph from a stable partition.
func buildResult(g *graph.Graph, block []uint32, numBlocks int) *Result {
	n := g.NumVertices()
	members := make([][]graph.V, numBlocks)
	for v := 0; v < n; v++ {
		members[block[v]] = append(members[block[v]], graph.V(v))
	}

	b := graph.NewBuilder(g.Dict())
	for s := 0; s < numBlocks; s++ {
		// All members share a label by construction; use the first.
		b.AddVertexLabel(g.Label(members[s][0]))
	}
	seen := make(map[uint64]bool)
	for v := 0; v < n; v++ {
		bu := block[v]
		for _, w := range g.Out(graph.V(v)) {
			bv := block[w]
			key := uint64(bu)<<32 | uint64(bv)
			if !seen[key] {
				seen[key] = true
				b.AddEdge(graph.V(bu), graph.V(bv))
			}
		}
	}

	blk := make([]graph.V, n)
	for v := 0; v < n; v++ {
		blk[v] = graph.V(block[v])
	}
	return &Result{Summary: b.Build(), Block: blk, Members: members}
}

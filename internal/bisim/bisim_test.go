package bisim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bigindex/internal/graph"
)

// naiveBisim computes the maximal bisimulation by the O(n²·m) textbook
// fixpoint over vertex pairs: start with all same-label pairs related, and
// remove a pair (u, v) when some out-edge of u has no matching out-edge of
// v into a still-related pair (or vice versa). Reference for Compute.
func naiveBisim(g *graph.Graph) [][]bool {
	n := g.NumVertices()
	rel := make([][]bool, n)
	for i := range rel {
		rel[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			rel[i][j] = g.Label(graph.V(i)) == g.Label(graph.V(j))
		}
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if !rel[u][v] {
					continue
				}
				if !simulates(g, graph.V(u), graph.V(v), rel) || !simulates(g, graph.V(v), graph.V(u), rel) {
					rel[u][v] = false
					changed = true
				}
			}
		}
	}
	return rel
}

// simulates reports whether every out-edge of u can be matched by an
// out-edge of v into a related target.
func simulates(g *graph.Graph, u, v graph.V, rel [][]bool) bool {
	for _, uw := range g.Out(u) {
		ok := false
		for _, vw := range g.Out(v) {
			if rel[uw][vw] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func randomGraph(rng *rand.Rand, n, e, labels int) *graph.Graph {
	b := graph.NewBuilder(nil)
	ls := make([]graph.Label, labels)
	for i := range ls {
		ls[i] = b.Dict().Intern(string(rune('A' + i)))
	}
	for i := 0; i < n; i++ {
		b.AddVertexLabel(ls[rng.Intn(labels)])
	}
	for i := 0; i < e; i++ {
		b.AddEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	return b.Build()
}

func TestComputeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(14)
		g := randomGraph(rng, n, rng.Intn(3*n), 1+rng.Intn(3))
		res := Compute(g)
		rel := naiveBisim(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				got := res.Block[u] == res.Block[v]
				want := rel[u][v]
				if got != want {
					t.Fatalf("trial %d: bisimilar(%d,%d) = %v, naive = %v\n%v", trial, u, v, got, want, g.Edges())
				}
			}
		}
	}
}

func TestHundredPersonsExample(t *testing.T) {
	// The running example of the paper (Fig. 3/4): 100 Person vertices all
	// pointing at the same Univ vertex collapse into one supernode.
	b := graph.NewBuilder(nil)
	person := b.Dict().Intern("Person")
	univ := b.Dict().Intern("Univ")
	u := b.AddVertexLabel(univ)
	for i := 0; i < 100; i++ {
		p := b.AddVertexLabel(person)
		b.AddEdge(p, u)
	}
	g := b.Build()
	res := Compute(g)
	if res.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d, want 2 (Person*, Univ)", res.NumBlocks())
	}
	if res.Summary.NumVertices() != 2 || res.Summary.NumEdges() != 1 {
		t.Fatalf("summary = %v", res.Summary)
	}
	if got := res.CompressionRatio(g); got >= 0.05 {
		t.Fatalf("compression ratio %v, want tiny", got)
	}
}

func TestMembersPartitionVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 50, 120, 4)
	res := Compute(g)
	seen := make(map[graph.V]int)
	for s, members := range res.Members {
		for _, v := range members {
			seen[v]++
			if res.Block[v] != graph.V(s) {
				t.Fatalf("Members/Block disagree for %d", v)
			}
		}
	}
	if len(seen) != g.NumVertices() {
		t.Fatalf("Members cover %d vertices, want %d", len(seen), g.NumVertices())
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("vertex %d in %d blocks", v, c)
		}
	}
}

func TestSummaryLabelsMatchMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 40, 100, 3)
	res := Compute(g)
	for s, members := range res.Members {
		for _, v := range members {
			if g.Label(v) != res.Summary.Label(graph.V(s)) {
				t.Fatalf("block %d mixes labels", s)
			}
		}
	}
}

// TestPathPreserving is the Def. 2.1 property: every edge (hence path) of G
// maps to an edge of Bisim(G).
func TestPathPreserving(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(4*n), 1+rng.Intn(4))
		res := Compute(g)
		for _, e := range g.Edges() {
			if !res.Summary.HasEdge(res.Block[e.From], res.Block[e.To]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSummaryEdgesAreWitnessed is the converse soundness property: every
// summary edge comes from at least one member edge.
func TestSummaryEdgesAreWitnessed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(4*n), 1+rng.Intn(4))
		res := Compute(g)
		for _, e := range res.Summary.Edges() {
			witnessed := false
			for _, u := range res.Members[e.From] {
				for _, w := range g.Out(u) {
					if res.Block[w] == e.To {
						witnessed = true
						break
					}
				}
				if witnessed {
					break
				}
			}
			if !witnessed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFixpointStable: summarizing a summary with fresh labels per block is
// idempotent in size terms — Compute(G) applied to its own summary cannot
// shrink further (maximality of the partition it returns).
func TestFixpointStable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(3*n), 1+rng.Intn(3))
		res := Compute(g)
		// Supernodes with equal labels can still be bisimilar *to each
		// other* in the summary graph only if they were not maximal blocks.
		res2 := Compute(res.Summary)
		if res2.NumBlocks() != res.Summary.NumVertices() {
			t.Fatalf("summary of a maximal summary collapsed further: %d -> %d",
				res.Summary.NumVertices(), res2.NumBlocks())
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(nil).Build()
	res := Compute(g)
	if res.NumBlocks() != 0 || res.Summary.NumVertices() != 0 {
		t.Fatalf("empty graph mishandled: %+v", res)
	}
	if r := res.CompressionRatio(g); r != 1 {
		t.Fatalf("empty compression ratio = %v, want 1", r)
	}
}

func TestSelfLoopAndCycle(t *testing.T) {
	b := graph.NewBuilder(nil)
	l := b.Dict().Intern("X")
	// Two vertices in a 2-cycle and one with a self loop: all same label.
	// Self-loop vertex is bisimilar to cycle vertices (all see block X).
	v0 := b.AddVertexLabel(l)
	v1 := b.AddVertexLabel(l)
	v2 := b.AddVertexLabel(l)
	b.AddEdge(v0, v1)
	b.AddEdge(v1, v0)
	b.AddEdge(v2, v2)
	g := b.Build()
	res := Compute(g)
	if res.NumBlocks() != 1 {
		t.Fatalf("NumBlocks = %d, want 1 (cycle ≡ self-loop)", res.NumBlocks())
	}
	if !res.Summary.HasEdge(0, 0) {
		t.Fatal("summary should have a self loop")
	}
}

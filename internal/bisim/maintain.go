package bisim

import (
	"slices"

	"bigindex/internal/graph"
)

// Maintainer keeps a bisimulation result up to date while the underlying
// graph receives vertex and edge updates (the data-graph maintenance case of
// Sec. 3.2). It applies the classic observation behind incremental
// minimum-bisimulation maintenance (the paper cites Deng et al. [7]): an
// update can only change the partition if it changes some vertex's
// successor-block signature, so updates that leave every signature intact
// are absorbed for free, and the rest are batched and resolved with one
// recomputation over the patched graph.
//
// This gives exact results with an amortized cost of one refinement per
// flush, which is the practical trade-off for the workload sizes in the
// experiments (ontologies and graphs change rarely relative to queries).
type Maintainer struct {
	base    *graph.Graph
	result  *Result
	dirty   bool
	addedV  []graph.Label
	addedE  []graph.Edge
	removed []graph.Edge
}

// NewMaintainer wraps g and its (possibly nil) precomputed bisimulation.
func NewMaintainer(g *graph.Graph) *Maintainer {
	return &Maintainer{base: g, result: Compute(g)}
}

// MaintainerFrom wraps g together with a bisimulation result that is
// already known to be g's partition (e.g. rehydrated from an index layer's
// Up/Down tables), skipping the fresh Compute that NewMaintainer performs.
// The caller vouches that r is exactly Compute(g)'s partition; handing in
// anything else silently corrupts maintenance.
func MaintainerFrom(g *graph.Graph, r *Result) *Maintainer {
	return &Maintainer{base: g, result: r}
}

// Result returns the current bisimulation, flushing pending updates first.
func (m *Maintainer) Result() *Result {
	m.flush()
	return m.result
}

// Graph returns the current graph, flushing pending updates first.
func (m *Maintainer) Graph() *graph.Graph {
	m.flush()
	return m.base
}

// AddVertex queues a new vertex with the given label and returns the ID it
// will have after the next flush.
func (m *Maintainer) AddVertex(l graph.Label) graph.V {
	v := graph.V(m.base.NumVertices() + len(m.addedV))
	m.addedV = append(m.addedV, l)
	m.dirty = true
	return v
}

// AddEdge queues the directed edge (from, to). If both endpoints already
// exist and the edge provably leaves every signature unchanged (to's block
// already appears among from's successor blocks), the update is absorbed
// without invalidating the partition.
func (m *Maintainer) AddEdge(from, to graph.V) {
	if !m.dirty && int(from) < m.base.NumVertices() && int(to) < m.base.NumVertices() {
		if m.base.HasEdge(from, to) {
			return // duplicate; simple graph
		}
		if m.signatureUnchanged(from, to) {
			// Patch the graph only; partition provably intact. We still have
			// to rebuild adjacency, so batch it but keep the result valid.
			m.addedE = append(m.addedE, graph.Edge{From: from, To: to})
			m.rebuildGraphOnly()
			return
		}
	}
	m.addedE = append(m.addedE, graph.Edge{From: from, To: to})
	m.dirty = true
}

// AddEdges queues a whole batch of edges at once. When every edge in the
// batch individually leaves every signature unchanged relative to the
// CURRENT partition, the batch is absorbed with a single adjacency rebuild
// — the per-edge AddEdge fast path would pay one rebuild per edge. The
// per-edge check against the pre-batch state is sufficient for the whole
// batch: each absorbable edge only adds a successor block its source's
// block-mates already see in the old graph, so no vertex's successor-block
// set changes no matter how many such edges land together.
func (m *Maintainer) AddEdges(edges []graph.Edge) {
	if !m.dirty && len(m.addedV) == 0 && len(m.removed) == 0 && len(m.addedE) == 0 && m.batchAbsorbable(edges) {
		for _, e := range edges {
			if !m.base.HasEdge(e.From, e.To) {
				m.addedE = append(m.addedE, e)
			}
		}
		if len(m.addedE) > 0 {
			m.rebuildGraphOnly()
		}
		return
	}
	for _, e := range edges {
		m.addedE = append(m.addedE, e)
		m.dirty = true
	}
}

// batchAbsorbable reports whether every edge in the batch either already
// exists or passes the signatureUnchanged test against the current base.
func (m *Maintainer) batchAbsorbable(edges []graph.Edge) bool {
	n := graph.V(m.base.NumVertices())
	for _, e := range edges {
		if e.From >= n || e.To >= n {
			return false
		}
		if m.base.HasEdge(e.From, e.To) {
			continue
		}
		if !m.signatureUnchanged(e.From, e.To) {
			return false
		}
	}
	return true
}

// RemoveEdge queues removal of the directed edge (from, to).
func (m *Maintainer) RemoveEdge(from, to graph.V) {
	m.removed = append(m.removed, graph.Edge{From: from, To: to})
	m.dirty = true
}

// signatureUnchanged reports whether adding (from, to) keeps sig(from)
// identical: some existing out-neighbor of from is already in to's block,
// and symmetrically every member of from's block already sees to's block
// (otherwise from would split away from its block-mates).
func (m *Maintainer) signatureUnchanged(from, to graph.V) bool {
	toBlock := m.result.Block[to]
	for _, member := range m.result.Members[m.result.Block[from]] {
		sees := false
		for _, w := range m.base.Out(member) {
			if m.result.Block[w] == toBlock {
				sees = true
				break
			}
		}
		if !sees {
			return false
		}
	}
	return true
}

func (m *Maintainer) rebuildGraphOnly() {
	m.base = m.patchedGraph()
	m.addedV = nil
	m.addedE = nil
	m.removed = nil
}

func (m *Maintainer) patchedGraph() *graph.Graph {
	b := graph.NewBuilder(m.base.Dict())
	for v := 0; v < m.base.NumVertices(); v++ {
		b.AddVertexLabel(m.base.Label(graph.V(v)))
	}
	for _, l := range m.addedV {
		b.AddVertexLabel(l)
	}
	rm := make(map[graph.Edge]bool, len(m.removed))
	for _, e := range m.removed {
		rm[e] = true
	}
	for _, e := range m.base.Edges() {
		if !rm[e] {
			b.AddEdge(e.From, e.To)
		}
	}
	for _, e := range m.addedE {
		if !rm[e] {
			b.AddEdge(e.From, e.To)
		}
	}
	return b.Build()
}

func (m *Maintainer) flush() {
	if !m.dirty && len(m.addedE) == 0 && len(m.addedV) == 0 && len(m.removed) == 0 {
		return
	}
	m.base = m.patchedGraph()
	m.addedV = nil
	m.addedE = nil
	m.removed = nil
	if m.dirty {
		m.result = Compute(m.base)
		m.dirty = false
	}
}

// AffectedVertices returns, for a hypothetical edge update (from, to), the
// vertices whose bisimilarity could change: the backward closure of the two
// endpoints. Exposed for diagnostics and tests; the closure bounds how far
// an update can propagate (signatures depend only on successor blocks, so a
// vertex that cannot reach the update site keeps its class relative to its
// peers).
func (m *Maintainer) AffectedVertices(from, to graph.V) []graph.V {
	seen := map[graph.V]bool{}
	var out []graph.V
	for _, src := range []graph.V{from, to} {
		m.base.BFSWithin(src, -1, graph.Backward, func(v graph.V, _ int) bool {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
			return true
		})
	}
	slices.Sort(out)
	return out
}

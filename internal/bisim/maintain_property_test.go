package bisim

import (
	"math/rand"
	"testing"

	"bigindex/internal/graph"
)

// TestMaintainerPropertyEquivalence is the delta-soundness backstop for the
// live mutation service: for many random graphs and random batched edit
// scripts — the exact operation mix the mutation API produces (vertex adds,
// edge-add batches, edge removals) — the maintained partition must equal a
// fresh Compute on the mutated graph, and the maintained graph must equal
// graph.Patch applied to the original. Any counterexample here means the
// absorb fast path (signatureUnchanged / batchAbsorbable) is unsound and
// must be tightened before the server can trust delta maintenance.
func TestMaintainerPropertyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1207))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(24)
		labels := 1 + rng.Intn(4)
		g := randomGraph(rng, n, rng.Intn(3*n), labels)
		m := MaintainerFrom(g, Compute(g))

		// Accumulate the same script for graph.Patch to cross-check the
		// structural mutation path the WAL replay uses.
		var addV []graph.Label
		var addE, rmE []graph.Edge

		steps := 1 + rng.Intn(6)
		for step := 0; step < steps; step++ {
			switch rng.Intn(4) {
			case 0:
				l := graph.Label(1 + rng.Intn(g.Dict().Len()))
				m.AddVertex(l)
				addV = append(addV, l)
			case 1, 2:
				// A batch of edges over the current vertex range, including
				// the occasional duplicate and self-loop.
				nv := m.Graph().NumVertices()
				batch := make([]graph.Edge, 1+rng.Intn(5))
				for i := range batch {
					batch[i] = graph.Edge{From: graph.V(rng.Intn(nv)), To: graph.V(rng.Intn(nv))}
				}
				m.AddEdges(batch)
				addE = append(addE, batch...)
			case 3:
				es := m.Graph().Edges()
				if len(es) > 0 {
					e := es[rng.Intn(len(es))]
					m.RemoveEdge(e.From, e.To)
					rmE = append(rmE, e)
				}
			}
		}

		mutated := m.Graph()
		got := m.Result()
		want := Compute(mutated)
		if !samePartition(got, want, mutated.NumVertices()) {
			t.Fatalf("trial %d: maintained partition diverged from fresh Compute (n=%d steps=%d)", trial, n, steps)
		}

		// The maintainer's Graph() must match graph.Patch for scripts where
		// the two are comparable: Patch applies removals last (an edge both
		// added and removed ends removed), the maintainer applies them in
		// script order, so only compare when no removed edge was ever added.
		added := map[graph.Edge]bool{}
		for _, e := range addE {
			added[e] = true
		}
		comparable := true
		for _, e := range rmE {
			if added[e] {
				comparable = false
				break
			}
		}
		if comparable {
			patched, err := graph.Patch(g, addV, addE, rmE)
			if err != nil {
				t.Fatalf("trial %d: Patch: %v", trial, err)
			}
			if !sameGraph(patched, mutated) {
				t.Fatalf("trial %d: Maintainer graph != graph.Patch result", trial)
			}
		}
	}
}

func sameGraph(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(graph.V(v)) != b.Label(graph.V(v)) {
			return false
		}
		ao, bo := a.Out(graph.V(v)), b.Out(graph.V(v))
		if len(ao) != len(bo) {
			return false
		}
		for i := range ao {
			if ao[i] != bo[i] {
				return false
			}
		}
	}
	return true
}

// TestAddEdgesBatchAbsorb checks that a batch of signature-preserving edges
// is absorbed without recomputation (the result pointer survives) and that
// the absorbed partition still matches a fresh Compute.
func TestAddEdgesBatchAbsorb(t *testing.T) {
	// p1, p2 both point at o1; o1 and o2 share a block only if they agree
	// structurally, so make them both sinks.
	b := graph.NewBuilder(nil)
	person := b.Dict().Intern("P")
	org := b.Dict().Intern("O")
	p1 := b.AddVertexLabel(person)
	p2 := b.AddVertexLabel(person)
	o1 := b.AddVertexLabel(org)
	o2 := b.AddVertexLabel(org)
	b.AddEdge(p1, o1)
	b.AddEdge(p2, o2)
	g := b.Build()

	m := MaintainerFrom(g, Compute(g))
	before := m.Result()
	// o1 and o2 are bisimilar sinks, p1 and p2 bisimilar sources. Adding
	// p1->o2 and p2->o1 keeps every signature {block(o)} intact.
	m.AddEdges([]graph.Edge{{From: p1, To: o2}, {From: p2, To: o1}})
	after := m.Result()
	if after != before {
		t.Fatal("absorbable batch triggered recomputation")
	}
	if !m.Graph().HasEdge(p1, o2) || !m.Graph().HasEdge(p2, o1) {
		t.Fatal("absorbed edges missing from graph")
	}
	want := Compute(m.Graph())
	if !samePartition(after, want, m.Graph().NumVertices()) {
		t.Fatal("absorbed partition diverged from fresh Compute")
	}
}

// TestAddEdgesBatchDirty checks the non-absorbable path: a batch containing
// one signature-changing edge must mark the partition dirty and resolve to
// the recomputed answer.
func TestAddEdgesBatchDirty(t *testing.T) {
	b := graph.NewBuilder(nil)
	person := b.Dict().Intern("P")
	org := b.Dict().Intern("O")
	p1 := b.AddVertexLabel(person)
	p2 := b.AddVertexLabel(person)
	o1 := b.AddVertexLabel(org)
	b.AddEdge(p1, o1)
	g := b.Build()

	m := MaintainerFrom(g, Compute(g))
	before := m.Result()
	if before.Block[p1] == before.Block[p2] {
		t.Fatal("setup: p1 and p2 should differ (only p1 has an out-edge)")
	}
	// p2->o1 changes p2's signature from {} to {block(o1)}: p1 and p2 merge.
	m.AddEdges([]graph.Edge{{From: p2, To: o1}})
	after := m.Result()
	if after.Block[p1] != after.Block[p2] {
		t.Fatal("p1 and p2 should be bisimilar after the add")
	}
	if !samePartition(after, Compute(m.Graph()), m.Graph().NumVertices()) {
		t.Fatal("dirty batch diverged from fresh Compute")
	}
}

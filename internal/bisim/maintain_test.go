package bisim

import (
	"math/rand"
	"testing"

	"bigindex/internal/graph"
)

func samePartition(a, b *Result, n int) bool {
	// Partitions are equal iff the block-of relation agrees pairwise; block
	// numbering may differ.
	remap := map[graph.V]graph.V{}
	for v := 0; v < n; v++ {
		av, bv := a.Block[v], b.Block[v]
		if got, ok := remap[av]; ok {
			if got != bv {
				return false
			}
		} else {
			remap[av] = bv
		}
	}
	return len(remap) == b.NumBlocks()
}

func TestMaintainerAgreesWithRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(2*n), 2)
		m := NewMaintainer(g)

		// Random update script: adds, removals, vertex adds.
		for step := 0; step < 10; step++ {
			switch rng.Intn(4) {
			case 0:
				l := graph.Label(1 + rng.Intn(g.Dict().Len()))
				m.AddVertex(l)
			case 1, 2:
				nv := m.Graph().NumVertices()
				m.AddEdge(graph.V(rng.Intn(nv)), graph.V(rng.Intn(nv)))
			case 3:
				es := m.Graph().Edges()
				if len(es) > 0 {
					e := es[rng.Intn(len(es))]
					m.RemoveEdge(e.From, e.To)
				}
			}
		}
		got := m.Result()
		want := Compute(m.Graph())
		if !samePartition(got, want, m.Graph().NumVertices()) {
			t.Fatalf("trial %d: maintainer diverged from recompute", trial)
		}
	}
}

func TestMaintainerFastPath(t *testing.T) {
	// Two persons pointing at the same org; adding a second parallel-ish
	// edge from person A to another vertex of org's block keeps signatures
	// intact and must not trigger recomputation divergence.
	b := graph.NewBuilder(nil)
	person := b.Dict().Intern("P")
	org := b.Dict().Intern("O")
	p1 := b.AddVertexLabel(person)
	p2 := b.AddVertexLabel(person)
	o1 := b.AddVertexLabel(org)
	o2 := b.AddVertexLabel(org)
	b.AddEdge(p1, o1)
	b.AddEdge(p2, o1)
	b.AddEdge(o1, o2) // hmm: o1 and o2 differ structurally
	g := b.Build()

	m := NewMaintainer(g)
	before := m.Result().NumBlocks()
	// p1 already sees block(o1); adding p1->o1 again is a duplicate no-op.
	m.AddEdge(p1, o1)
	if m.Result().NumBlocks() != before {
		t.Fatal("duplicate edge changed the partition")
	}
	want := Compute(m.Graph())
	if !samePartition(m.Result(), want, m.Graph().NumVertices()) {
		t.Fatal("fast path diverged")
	}
}

func TestMaintainerAddVertexIDs(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(42)), 5, 8, 2)
	m := NewMaintainer(g)
	v1 := m.AddVertex(1)
	v2 := m.AddVertex(2)
	if v1 != 5 || v2 != 6 {
		t.Fatalf("queued vertex IDs: %d %d", v1, v2)
	}
	m.AddEdge(v1, v2)
	got := m.Graph()
	if got.NumVertices() != 7 {
		t.Fatalf("|V| = %d", got.NumVertices())
	}
	if !got.HasEdge(v1, v2) {
		t.Fatal("edge between queued vertices missing")
	}
}

func TestAffectedVertices(t *testing.T) {
	// Chain a -> b -> c: the backward closure of (b, c) is {a, b, c}.
	b := graph.NewBuilder(nil)
	l := b.Dict().Intern("x")
	va := b.AddVertexLabel(l)
	vb := b.AddVertexLabel(l)
	vc := b.AddVertexLabel(l)
	b.AddEdge(va, vb)
	b.AddEdge(vb, vc)
	m := NewMaintainer(b.Build())
	got := m.AffectedVertices(vb, vc)
	if len(got) != 3 {
		t.Fatalf("affected = %v, want all 3", got)
	}
}

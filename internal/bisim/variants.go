package bisim

import (
	"slices"

	"bigindex/internal/graph"
)

// Summarization variants — the paper's future-work direction ("we plan to
// implement other summarization formalisms for BiG-index"). Any quotient by
// a label-preserving vertex partition maps edges to edges, so the
// framework's correctness machinery (Prop 5.1 reachability, Prop 5.2
// distance lower bounds, and the final data-graph verification) holds for
// every variant here; they trade compression strength against construction
// cost and summary fidelity.

// ComputeK returns the k-bisimulation summary: the partition after at most
// k refinement rounds starting from labels. k-bisimilar vertices agree on
// all outgoing path patterns of length <= k, which is exactly what bounded
// keyword search (d_max <= k) observes. Smaller k means coarser summaries
// (stronger compression, more false candidates to verify) and faster
// construction. ComputeK with large k converges to Compute.
func ComputeK(g *graph.Graph, k int) *Result {
	n := g.NumVertices()
	block := make([]uint32, n)
	next := uint32(0)
	byLabel := make(map[graph.Label]uint32)
	for v := 0; v < n; v++ {
		l := g.Label(graph.V(v))
		id, ok := byLabel[l]
		if !ok {
			id = next
			next++
			byLabel[l] = id
		}
		block[v] = id
	}
	numBlocks := int(next)

	for round := 0; round < k; round++ {
		newBlock, nextID := refineOnce(g, block, numBlocks, graph.Forward)
		if int(nextID) == numBlocks {
			break
		}
		numBlocks = int(nextID)
		block = newBlock
	}
	return buildResult(g, block, numBlocks)
}

// ComputeForward returns the forward-bisimulation summary: vertices are
// equivalent when they agree on labels and *predecessor* block sets. It is
// the natural variant for semantics driven by forward reachability from
// keyword nodes.
func ComputeForward(g *graph.Graph) *Result {
	n := g.NumVertices()
	block := make([]uint32, n)
	next := uint32(0)
	byLabel := make(map[graph.Label]uint32)
	for v := 0; v < n; v++ {
		l := g.Label(graph.V(v))
		id, ok := byLabel[l]
		if !ok {
			id = next
			next++
			byLabel[l] = id
		}
		block[v] = id
	}
	numBlocks := int(next)
	for {
		newBlock, nextID := refineOnce(g, block, numBlocks, graph.Backward)
		if int(nextID) == numBlocks {
			break
		}
		numBlocks = int(nextID)
		block = newBlock
	}
	return buildResult(g, block, numBlocks)
}

// refineOnce splits every block by its members' neighbor-block signatures
// in the given direction, returning the refined assignment and block count.
func refineOnce(g *graph.Graph, block []uint32, numBlocks int, dir graph.Dir) ([]uint32, uint32) {
	n := g.NumVertices()
	type sigKey struct {
		owner uint32
		hash  uint64
	}
	assign := make(map[sigKey][]int)
	newBlock := make([]uint32, n)
	sigOf := make([][]uint32, 0, numBlocks*2)
	nextID := uint32(0)
	var sigBuf []uint32

	for v := 0; v < n; v++ {
		sigBuf = sigBuf[:0]
		var nbrs []graph.V
		if dir == graph.Forward {
			nbrs = g.Out(graph.V(v))
		} else {
			nbrs = g.In(graph.V(v))
		}
		for _, w := range nbrs {
			sigBuf = append(sigBuf, block[w])
		}
		slices.Sort(sigBuf)
		sigBuf = slices.Compact(sigBuf)

		h := uint64(1469598103934665603)
		for _, s := range sigBuf {
			h = (h ^ uint64(s)) * 1099511628211
		}
		key := sigKey{block[v], h}
		id := uint32(0)
		found := false
		for _, cand := range assign[key] {
			if slices.Equal(sigOf[cand], sigBuf) {
				id = uint32(cand)
				found = true
				break
			}
		}
		if !found {
			id = nextID
			nextID++
			sigOf = append(sigOf, append([]uint32(nil), sigBuf...))
			assign[key] = append(assign[key], int(id))
		}
		newBlock[v] = id
	}
	return newBlock, nextID
}

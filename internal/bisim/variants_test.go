package bisim

import (
	"math/rand"
	"testing"

	"bigindex/internal/graph"
)

func TestComputeKConvergesToMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(3*n), 2+rng.Intn(2))
		full := Compute(g)
		deep := ComputeK(g, n+1) // more rounds than can ever refine
		if !samePartition(full, deep, n) {
			t.Fatalf("trial %d: ComputeK(n+1) != Compute", trial)
		}
		// Block counts must be monotone in k and coarser than maximal.
		prev := 0
		for k := 0; k <= 4; k++ {
			rk := ComputeK(g, k)
			if rk.NumBlocks() < prev {
				t.Fatalf("trial %d: block count decreased with k", trial)
			}
			if rk.NumBlocks() > full.NumBlocks() {
				t.Fatalf("trial %d: k-bisim finer than maximal", trial)
			}
			prev = rk.NumBlocks()
		}
		// k = 0 is the label partition.
		r0 := ComputeK(g, 0)
		labels := map[graph.Label]bool{}
		for _, l := range g.DistinctLabels() {
			labels[l] = true
		}
		if r0.NumBlocks() != len(labels) {
			t.Fatalf("trial %d: k=0 blocks %d, labels %d", trial, r0.NumBlocks(), len(labels))
		}
	}
}

// TestVariantsAreSoundQuotients: every variant's summary maps member edges
// to summary edges and its blocks are label-pure — the two properties the
// framework needs.
func TestVariantsAreSoundQuotients(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(3*n), 2+rng.Intn(2))
		for name, res := range map[string]*Result{
			"k2":      ComputeK(g, 2),
			"forward": ComputeForward(g),
		} {
			for _, e := range g.Edges() {
				if !res.Summary.HasEdge(res.Block[e.From], res.Block[e.To]) {
					t.Fatalf("%s: edge %v not preserved", name, e)
				}
			}
			for s, members := range res.Members {
				for _, v := range members {
					if g.Label(v) != res.Summary.Label(graph.V(s)) {
						t.Fatalf("%s: block %d mixes labels", name, s)
					}
				}
			}
		}
	}
}

// reverseGraph flips every edge.
func reverseGraph(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.Dict())
	for v := 0; v < g.NumVertices(); v++ {
		b.AddVertexLabel(g.Label(graph.V(v)))
	}
	for _, e := range g.Edges() {
		b.AddEdge(e.To, e.From)
	}
	return b.Build()
}

// TestForwardEqualsBackwardOnReverse: forward bisimulation of g is exactly
// backward bisimulation of the reversed graph.
func TestForwardEqualsBackwardOnReverse(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(3*n), 2+rng.Intn(2))
		fwd := ComputeForward(g)
		rev := Compute(reverseGraph(g))
		if !samePartition(fwd, rev, n) {
			t.Fatalf("trial %d: forward(g) != backward(reverse(g))", trial)
		}
	}
}

package core

import (
	"slices"

	"bigindex/internal/graph"
)

// This file implements the answer-graph generation algorithms of Sec. 4
// *literally*, at the subgraph level: given a generalized answer graph
// aᵐ = (V_a, E_a) found on layer m, enumerate the concrete answer subgraphs
// A⁰ of the data graph that realize its topology.
//
//   - ans_graph_gen (Algo 3) enlarges partial answers one specialized
//     vertex at a time, checking the vertex qualification of Def. 4.2:
//     a data vertex v can join a partial answer iff its supernode is the
//     pattern vertex being instantiated and every pattern edge incident to
//     already-placed vertices is realized by a data edge.
//
//   - p_ans_graph_gen (Algo 4) first decomposes aᵐ into paths at its joint
//     vertices (degree > 2; answer_decomposition), specializes one path at
//     a time, and joins paths on their shared joint vertices (the path
//     qualification of Def. 4.3) — avoiding the per-vertex re-checking of
//     Algo 3 across partial answers.
//
// Both return exactly the set of pattern embeddings; the property is
// tested against a brute-force embedding enumerator.

// AnswerPattern is a generalized answer graph aᵐ: a connected subgraph of
// layer m whose vertices will be specialized to data vertices.
type AnswerPattern struct {
	// Layer is m, the layer the pattern lives on.
	Layer int
	// Vertices are the pattern's supernodes (distinct).
	Vertices []graph.V
	// Edges are the pattern's edges (between Vertices), in layer-m IDs.
	Edges []graph.Edge
	// KeywordOf optionally maps a pattern vertex to the query keyword it
	// matched; those vertices specialize under Prop 4.1 label filtering.
	KeywordOf map[graph.V]graph.Label
}

// degree returns the pattern degree of s (in + out).
func (p *AnswerPattern) degree(s graph.V) int {
	d := 0
	for _, e := range p.Edges {
		if e.From == s {
			d++
		}
		if e.To == s {
			d++
		}
	}
	return d
}

// Embedding is one concrete realization: pattern vertex -> data vertex.
type Embedding map[graph.V]graph.V

// Subgraph materializes the embedding as a data subgraph.
func (p *AnswerPattern) Subgraph(emb Embedding) *graph.Subgraph {
	sub := &graph.Subgraph{}
	for _, s := range p.Vertices {
		sub.Vertices = append(sub.Vertices, emb[s])
	}
	for _, e := range p.Edges {
		sub.Edges = append(sub.Edges, graph.Edge{From: emb[e.From], To: emb[e.To]})
	}
	if len(sub.Vertices) > 0 {
		sub.Root = sub.Vertices[0]
	}
	sub.Normalize()
	return sub
}

// candidatesOf specializes every pattern vertex to its layer-0 candidate
// set (keyword vertices filtered per Prop 4.1, connector vertices kept).
func (x *Index) candidatesOf(p *AnswerPattern, isKey bool) map[graph.V][]graph.V {
	cands := make(map[graph.V][]graph.V, len(p.Vertices))
	for _, s := range p.Vertices {
		if kw, ok := p.KeywordOf[s]; ok {
			cands[s] = x.SpecializeKeyword(s, p.Layer, kw, isKey)
		} else {
			cands[s] = x.SpecializeRoot(s, p.Layer)
		}
	}
	return cands
}

// qualifiedVertex is Def. 4.2: v may instantiate pattern vertex s given the
// partial embedding: every pattern edge between s and an instantiated
// pattern vertex must be realized in the data graph.
func qualifiedVertex(data *graph.Graph, p *AnswerPattern, emb Embedding, s, v graph.V) bool {
	for _, e := range p.Edges {
		if e.From == s {
			if u, ok := emb[e.To]; ok && !data.HasEdge(v, u) {
				return false
			}
		}
		if e.To == s {
			if u, ok := emb[e.From]; ok && !data.HasEdge(u, v) {
				return false
			}
		}
	}
	return true
}

// AnswerGraphs enumerates the concrete answer subgraphs of pattern p with
// ans_graph_gen (Algo 3). Pattern vertices are instantiated in
// specialization order — fewest candidates first (Sec. 4.3.2) — when
// specOrder is set; limit > 0 caps the number of embeddings (Sec. 4.3.4).
func (x *Index) AnswerGraphs(p *AnswerPattern, specOrder, isKey bool, limit int) []*graph.Subgraph {
	data := x.Data()
	cands := x.candidatesOf(p, isKey)

	order := append([]graph.V(nil), p.Vertices...)
	if specOrder {
		slices.SortStableFunc(order, func(a, b graph.V) int {
			return len(cands[a]) - len(cands[b])
		})
	}

	var out []*graph.Subgraph
	emb := make(Embedding, len(order))
	var enlarge func(step int)
	enlarge = func(step int) {
		if limit > 0 && len(out) >= limit {
			return
		}
		if step == len(order) {
			out = append(out, p.Subgraph(emb))
			return
		}
		s := order[step]
		for _, v := range cands[s] {
			if qualifiedVertex(data, p, emb, s, v) {
				emb[s] = v
				enlarge(step + 1)
				delete(emb, s)
			}
		}
	}
	enlarge(0)
	return dedupeSubgraphs(out)
}

// patternPath is one path of the answer decomposition: a sequence of
// pattern vertices whose interior has degree <= 2.
type patternPath struct {
	verts []graph.V
}

// decompose implements answer_decomposition (Algo 4, Step 1): split the
// pattern into a canonical path set at its joint vertices (degree > 2).
// Each pattern edge belongs to exactly one path; paths start and end at
// joint vertices or dead ends.
func (p *AnswerPattern) decompose() []patternPath {
	joint := make(map[graph.V]bool)
	for _, s := range p.Vertices {
		if p.degree(s) > 2 {
			joint[s] = true
		}
	}
	// Undirected adjacency over pattern edges, each edge used once.
	type half struct {
		to   graph.V
		edge int
	}
	adj := make(map[graph.V][]half)
	for i, e := range p.Edges {
		adj[e.From] = append(adj[e.From], half{e.To, i})
		adj[e.To] = append(adj[e.To], half{e.From, i})
	}
	used := make([]bool, len(p.Edges))

	var paths []patternPath
	walk := func(start graph.V, h half) {
		verts := []graph.V{start}
		cur := h
		for {
			used[cur.edge] = true
			verts = append(verts, cur.to)
			if joint[cur.to] || p.degree(cur.to) != 2 {
				break
			}
			nxt := half{}
			found := false
			for _, hh := range adj[cur.to] {
				if !used[hh.edge] {
					nxt = hh
					found = true
					break
				}
			}
			if !found {
				break
			}
			cur = nxt
		}
		paths = append(paths, patternPath{verts: verts})
	}

	// Start paths at joint vertices first (canonical), then mop up cycles.
	starts := append([]graph.V(nil), p.Vertices...)
	slices.SortFunc(starts, func(a, b graph.V) int {
		ja, jb := 0, 0
		if joint[a] {
			ja = 1
		}
		if joint[b] {
			jb = 1
		}
		if ja != jb {
			return jb - ja // joints first
		}
		return int(a) - int(b)
	})
	for _, s := range starts {
		for _, h := range adj[s] {
			if !used[h.edge] {
				walk(s, h)
			}
		}
	}
	return paths
}

// AnswerGraphsPathBased enumerates the same embeddings with
// p_ans_graph_gen (Algo 4): specialize one path at a time, then join path
// instantiations on shared joint vertices (Def. 4.3 — instantiations of the
// same pattern joint vertex must agree).
func (x *Index) AnswerGraphsPathBased(p *AnswerPattern, isKey bool, limit int) []*graph.Subgraph {
	data := x.Data()
	cands := x.candidatesOf(p, isKey)
	paths := p.decompose()
	if len(paths) == 0 {
		// Degenerate single-vertex pattern.
		var out []*graph.Subgraph
		for _, s := range p.Vertices {
			for _, v := range cands[s] {
				out = append(out, p.Subgraph(Embedding{s: v}))
				if limit > 0 && len(out) >= limit {
					return dedupeSubgraphs(out)
				}
			}
		}
		return dedupeSubgraphs(out)
	}

	// Step 2: specialize each path independently into concrete path
	// instantiations (partial embeddings over the path's vertices).
	pathEmbs := make([][]Embedding, len(paths))
	for i, pp := range paths {
		pathEmbs[i] = x.specializePath(data, p, pp, cands)
		if len(pathEmbs[i]) == 0 {
			return nil // some path has no realization: no answers at all
		}
	}
	// Paths with fewer instantiations first keep partial joins small
	// (the specialization-order idea applied to paths).
	order := make([]int, len(paths))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		return len(pathEmbs[a]) - len(pathEmbs[b])
	})

	// Step 3: join paths on shared vertices (Def. 4.3 generalized to all
	// shared pattern vertices; joints are exactly where paths meet).
	var out []*graph.Subgraph
	var join func(step int, emb Embedding)
	join = func(step int, emb Embedding) {
		if limit > 0 && len(out) >= limit {
			return
		}
		if step == len(order) {
			// Defensive completeness: patterns can have cross edges between
			// paths; verify the full embedding once.
			for _, e := range p.Edges {
				if !data.HasEdge(emb[e.From], emb[e.To]) {
					return
				}
			}
			out = append(out, p.Subgraph(emb))
			return
		}
		for _, pe := range pathEmbs[order[step]] {
			if compatible(emb, pe) {
				merged := make(Embedding, len(emb)+len(pe))
				for k, v := range emb {
					merged[k] = v
				}
				for k, v := range pe {
					merged[k] = v
				}
				join(step+1, merged)
			}
		}
	}
	join(0, Embedding{})
	return dedupeSubgraphs(out)
}

// specializePath instantiates one pattern path left to right with Def. 4.2
// checks restricted to the path's own edges.
func (x *Index) specializePath(data *graph.Graph, p *AnswerPattern, pp patternPath, cands map[graph.V][]graph.V) []Embedding {
	var out []Embedding
	var rec func(i int, emb Embedding)
	rec = func(i int, emb Embedding) {
		if i == len(pp.verts) {
			cp := make(Embedding, len(emb))
			for k, v := range emb {
				cp[k] = v
			}
			out = append(out, cp)
			return
		}
		s := pp.verts[i]
		if v, ok := emb[s]; ok {
			// Repeated vertex within the path (cycle); just check edges.
			if pathEdgeOK(data, p, pp, emb, i, v) {
				rec(i+1, emb)
			}
			return
		}
		for _, v := range cands[s] {
			if pathEdgeOK(data, p, pp, emb, i, v) {
				emb[s] = v
				rec(i+1, emb)
				delete(emb, s)
			}
		}
	}
	rec(0, Embedding{})
	return out
}

// pathEdgeOK checks the pattern edge between path positions i-1 and i.
func pathEdgeOK(data *graph.Graph, p *AnswerPattern, pp patternPath, emb Embedding, i int, v graph.V) bool {
	if i == 0 {
		return true
	}
	prevS := pp.verts[i-1]
	prevV := emb[prevS]
	s := pp.verts[i]
	// The pattern edge between prevS and s may point either way.
	for _, e := range p.Edges {
		if e.From == prevS && e.To == s && !data.HasEdge(prevV, v) {
			return false
		}
		if e.From == s && e.To == prevS && !data.HasEdge(v, prevV) {
			return false
		}
	}
	return true
}

// compatible reports whether two partial embeddings agree on their shared
// pattern vertices — the joint-vertex agreement of Def. 4.3.
func compatible(a, b Embedding) bool {
	for k, v := range b {
		if av, ok := a[k]; ok && av != v {
			return false
		}
	}
	return true
}

func dedupeSubgraphs(subs []*graph.Subgraph) []*graph.Subgraph {
	seen := make(map[string]bool, len(subs))
	out := subs[:0]
	for _, s := range subs {
		k := s.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

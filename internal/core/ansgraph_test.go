package core

import (
	"math/rand"
	"testing"

	"bigindex/internal/graph"
)

// bruteForceEmbeddings enumerates all embeddings of the pattern by raw
// backtracking over the candidate sets with full edge checks — the ground
// truth for Algo 3 and Algo 4.
func bruteForceEmbeddings(t *testing.T, x *Index, p *AnswerPattern) map[string]bool {
	t.Helper()
	data := x.Data()
	cands := x.candidatesOf(p, true)
	out := map[string]bool{}
	emb := Embedding{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(p.Vertices) {
			ok := true
			for _, e := range p.Edges {
				if !data.HasEdge(emb[e.From], emb[e.To]) {
					ok = false
					break
				}
			}
			if ok {
				out[p.Subgraph(emb).Key()] = true
			}
			return
		}
		s := p.Vertices[i]
		for _, v := range cands[s] {
			emb[s] = v
			rec(i + 1)
			delete(emb, s)
		}
	}
	rec(0)
	return out
}

// randomPattern picks a connected generalized answer pattern from a layer:
// a random BFS tree fragment of the summary graph plus its induced edges.
func randomPattern(rng *rand.Rand, x *Index, m, size int) *AnswerPattern {
	lg := x.LayerGraph(m)
	if lg.NumVertices() == 0 {
		return nil
	}
	start := graph.V(rng.Intn(lg.NumVertices()))
	verts := []graph.V{start}
	seen := map[graph.V]bool{start: true}
	frontier := []graph.V{start}
	for len(verts) < size && len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		for _, w := range lg.Out(v) {
			if !seen[w] && len(verts) < size {
				seen[w] = true
				verts = append(verts, w)
				frontier = append(frontier, w)
			}
		}
		for _, w := range lg.In(v) {
			if !seen[w] && len(verts) < size {
				seen[w] = true
				verts = append(verts, w)
				frontier = append(frontier, w)
			}
		}
	}
	var edges []graph.Edge
	for _, v := range verts {
		for _, w := range lg.Out(v) {
			if seen[w] {
				edges = append(edges, graph.Edge{From: v, To: w})
			}
		}
	}
	if len(edges) == 0 {
		return nil
	}
	return &AnswerPattern{Layer: m, Vertices: verts, Edges: edges, KeywordOf: map[graph.V]graph.Label{}}
}

func TestAnswerGraphsMatchBruteForce(t *testing.T) {
	ds := smallDataset(400)
	idx := buildIndex(t, ds)
	if idx.NumLayers() < 2 {
		t.Skip("need summary layers")
	}
	rng := rand.New(rand.NewSource(8))
	tried := 0
	for trial := 0; trial < 60 && tried < 25; trial++ {
		m := 1 + rng.Intn(idx.NumLayers()-1)
		p := randomPattern(rng, idx, m, 2+rng.Intn(3))
		if p == nil {
			continue
		}
		// Skip explosive patterns (popular supernodes at low layers).
		cands := idx.candidatesOf(p, true)
		product := 1
		for _, c := range cands {
			product *= len(c)
			if product > 20000 {
				break
			}
		}
		if product > 20000 {
			continue
		}
		tried++

		want := bruteForceEmbeddings(t, idx, p)

		for _, specOrder := range []bool{false, true} {
			got := idx.AnswerGraphs(p, specOrder, true, 0)
			if len(got) != len(want) {
				t.Fatalf("trial %d specOrder=%v: Algo3 found %d, brute force %d", trial, specOrder, len(got), len(want))
			}
			for _, s := range got {
				if !want[s.Key()] {
					t.Fatalf("trial %d: Algo3 invented %s", trial, s.Key())
				}
			}
		}

		gotP := idx.AnswerGraphsPathBased(p, true, 0)
		if len(gotP) != len(want) {
			t.Fatalf("trial %d: Algo4 found %d, brute force %d (pattern V=%v E=%v)",
				trial, len(gotP), len(want), p.Vertices, p.Edges)
		}
		for _, s := range gotP {
			if !want[s.Key()] {
				t.Fatalf("trial %d: Algo4 invented %s", trial, s.Key())
			}
		}
	}
	if tried < 5 {
		t.Fatalf("only %d usable patterns; fixture too degenerate", tried)
	}
}

func TestAnswerGraphsLimit(t *testing.T) {
	ds := smallDataset(401)
	idx := buildIndex(t, ds)
	if idx.NumLayers() < 2 {
		t.Skip("need summary layers")
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		p := randomPattern(rng, idx, 1, 2)
		if p == nil {
			continue
		}
		all := idx.AnswerGraphs(p, true, true, 0)
		if len(all) <= 1 {
			continue
		}
		lim := idx.AnswerGraphs(p, true, true, 1)
		if len(lim) != 1 {
			t.Fatalf("limit 1 returned %d", len(lim))
		}
		limP := idx.AnswerGraphsPathBased(p, true, 1)
		if len(limP) != 1 {
			t.Fatalf("path-based limit 1 returned %d", len(limP))
		}
		return
	}
	t.Skip("no multi-embedding pattern found")
}

func TestPatternDecompose(t *testing.T) {
	// Star pattern: joint center c with 3 leaves -> 3 paths.
	p := &AnswerPattern{
		Vertices: []graph.V{0, 1, 2, 3},
		Edges:    []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 0}},
	}
	paths := p.decompose()
	if len(paths) != 3 {
		t.Fatalf("star decomposed into %d paths, want 3", len(paths))
	}
	// A simple chain has one path.
	chain := &AnswerPattern{
		Vertices: []graph.V{0, 1, 2},
		Edges:    []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}},
	}
	if got := chain.decompose(); len(got) != 1 || len(got[0].verts) != 3 {
		t.Fatalf("chain decomposition: %+v", got)
	}
	// Every edge is covered exactly once.
	covered := 0
	for _, pp := range paths {
		covered += len(pp.verts) - 1
	}
	if covered != len(p.Edges) {
		t.Fatalf("star paths cover %d edges, want %d", covered, len(p.Edges))
	}
}

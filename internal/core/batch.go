package core

import (
	"runtime"
	"sync"

	"bigindex/internal/graph"
	"bigindex/internal/search"
)

// BatchResult is one query's outcome within EvalBatch.
type BatchResult struct {
	Matches   []search.Match
	Breakdown *Breakdown
	Err       error
}

// EvalBatch evaluates several queries concurrently, sharing the evaluator's
// per-layer prepared indexes (preparation is serialized behind the
// evaluator's lock; everything consulted at query time — graphs, index
// layers, prepared search structures — is immutable).
//
// Results are positionally aligned with queries.
func (e *Evaluator) EvalBatch(queries [][]graph.Label) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	workers := min(runtime.GOMAXPROCS(0), len(queries))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				ms, bd, err := e.Eval(queries[i])
				out[i] = BatchResult{Matches: ms, Breakdown: bd, Err: err}
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

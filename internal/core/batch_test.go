package core

import (
	"math/rand"
	"testing"

	"bigindex/internal/graph"
	"bigindex/internal/search/bkws"
)

func TestEvalBatchMatchesSequential(t *testing.T) {
	ds := smallDataset(700)
	idx := buildIndex(t, ds)
	rng := rand.New(rand.NewSource(7))
	var queries [][]graph.Label
	for i := 0; i < 12; i++ {
		if q := pickQuery(rng, ds, 2, 3); q != nil {
			queries = append(queries, q)
		}
	}
	if len(queries) == 0 {
		t.Skip("no frequent labels")
	}

	ev := NewEvaluator(idx, bkws.New(3), DefaultEvalOptions())
	results := ev.EvalBatch(queries)
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	for i, q := range queries {
		if results[i].Err != nil {
			t.Fatalf("query %d: %v", i, results[i].Err)
		}
		want, _, err := ev.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(results[i].Matches) {
			t.Fatalf("query %d: batch %d vs sequential %d", i, len(results[i].Matches), len(want))
		}
		for j := range want {
			if want[j].Key() != results[i].Matches[j].Key() {
				t.Fatalf("query %d answer %d diverged", i, j)
			}
		}
		if results[i].Breakdown == nil {
			t.Fatalf("query %d missing breakdown", i)
		}
	}

	// Empty batch is a no-op.
	if got := ev.EvalBatch(nil); len(got) != 0 {
		t.Fatal("empty batch should return empty results")
	}
}

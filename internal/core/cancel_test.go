package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"bigindex/internal/search/bkws"
)

// A pre-cancelled context makes EvalCtx return promptly with the context's
// error; any matches that do come back must belong to the uncancelled
// answer set (sound but possibly incomplete).
func TestEvalCtxCancelled(t *testing.T) {
	ds := smallDataset(5)
	idx := buildIndex(t, ds)
	ev := NewEvaluator(idx, bkws.New(3), DefaultEvalOptions())
	rng := rand.New(rand.NewSource(5))
	q := pickQuery(rng, ds, 2, 3)

	full, _, err := ev.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	fullKeys := matchKeys(full)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ms, _, err := ev.EvalCtx(ctx, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, m := range ms {
		if _, ok := fullKeys[m.Key()]; !ok {
			t.Fatalf("partial result %s not in the uncancelled answer set", m.Key())
		}
	}
}

// An expired deadline surfaces as context.DeadlineExceeded (the signal the
// server maps to a degraded 200), again with only sound partial results.
func TestEvalCtxDeadline(t *testing.T) {
	ds := smallDataset(6)
	idx := buildIndex(t, ds)
	ev := NewEvaluator(idx, bkws.New(3), DefaultEvalOptions())
	rng := rand.New(rand.NewSource(6))
	q := pickQuery(rng, ds, 2, 3)

	full, _, err := ev.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	fullKeys := matchKeys(full)

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	ms, _, err := ev.EvalCtx(ctx, q)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	for _, m := range ms {
		if _, ok := fullKeys[m.Key()]; !ok {
			t.Fatalf("partial result %s not in the uncancelled answer set", m.Key())
		}
	}
}

func TestDirectCtxCancelled(t *testing.T) {
	ds := smallDataset(7)
	idx := buildIndex(t, ds)
	ev := NewEvaluator(idx, bkws.New(3), DefaultEvalOptions())
	rng := rand.New(rand.NewSource(7))
	q := pickQuery(rng, ds, 2, 3)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ev.DirectCtx(ctx, q, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// EvalLayerCtx pins the layer per call; the shared evaluator's options must
// stay untouched (they are read by concurrent queries).
func TestEvalLayerCtxDoesNotMutateOptions(t *testing.T) {
	ds := smallDataset(8)
	idx := buildIndex(t, ds)
	ev := NewEvaluator(idx, bkws.New(3), DefaultEvalOptions())
	rng := rand.New(rand.NewSource(8))
	q := pickQuery(rng, ds, 2, 3)

	want, _, err := ev.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	got, bd, err := ev.EvalLayerCtx(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Layer != 0 {
		t.Fatalf("forced layer ignored: evaluated at layer %d", bd.Layer)
	}
	if ev.Options().ForcedLayer != -1 {
		t.Fatalf("EvalLayerCtx mutated shared options: ForcedLayer = %d", ev.Options().ForcedLayer)
	}
	// Thm 4.2: every layer yields the same answer set.
	wantKeys, gotKeys := matchKeys(want), matchKeys(got)
	if len(wantKeys) != len(gotKeys) {
		t.Fatalf("layer-0 evaluation found %d answers, optimal layer found %d", len(gotKeys), len(wantKeys))
	}
	for k := range wantKeys {
		if _, ok := gotKeys[k]; !ok {
			t.Fatalf("answer %s missing from layer-0 evaluation", k)
		}
	}
	// An out-of-range layer is a client error, not a panic.
	if _, _, err := ev.EvalLayerCtx(context.Background(), q, idx.NumLayers()); err == nil {
		t.Fatal("out-of-range layer accepted")
	}
}

package core

import (
	"math/rand"
	"testing"

	"bigindex/internal/bisim"
	"bigindex/internal/cost"
	"bigindex/internal/datagen"
	"bigindex/internal/graph"
	"bigindex/internal/search"
	"bigindex/internal/search/bidir"
	"bigindex/internal/search/bkws"
	"bigindex/internal/search/blinks"
	"bigindex/internal/search/rclique"
)

// smallDataset builds a deterministic small knowledge graph with a real
// taxonomy, the shared fixture of the core tests.
func smallDataset(seed int64) *datagen.Dataset {
	return datagen.Generate(datagen.Options{
		Name:          "test",
		Entities:      300,
		AvgOut:        2,
		Terms:         60,
		LeafTypes:     8,
		TypeBranching: 3,
		TypeHeight:    3,
		Relations:     16,
		Seed:          seed,
	})
}

func buildIndex(t *testing.T, ds *datagen.Dataset) *Index {
	t.Helper()
	opt := DefaultBuildOptions()
	opt.Search.SampleCount = 40
	opt.Search.SampleRadius = 2
	idx, err := Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func matchKeys(ms []search.Match) map[string]float64 {
	out := map[string]float64{}
	for _, m := range ms {
		out[m.Key()] = m.Score
	}
	return out
}

func pickQuery(rng *rand.Rand, ds *datagen.Dataset, size, minCount int) []graph.Label {
	var pool []graph.Label
	for _, l := range ds.Graph.DistinctLabels() {
		if ds.Graph.LabelCount(l) >= minCount {
			pool = append(pool, l)
		}
	}
	if len(pool) < size {
		return nil
	}
	q := make([]graph.Label, size)
	for i := range q {
		q[i] = pool[rng.Intn(len(pool))]
	}
	return q
}

func TestBuildProducesLayers(t *testing.T) {
	ds := smallDataset(100)
	idx := buildIndex(t, ds)
	if idx.NumLayers() < 2 {
		t.Fatalf("expected at least one summary layer, got %d", idx.NumLayers())
	}
	st := idx.Stats()
	if st.Layers[0].Ratio != 1 {
		t.Fatal("layer 0 ratio must be 1")
	}
	for i := 1; i < len(st.Layers); i++ {
		if st.Layers[i].Size >= st.Layers[i-1].Size {
			t.Fatalf("layer %d did not shrink: %d -> %d", i, st.Layers[i-1].Size, st.Layers[i].Size)
		}
	}
	if idx.TotalSize() <= 0 {
		t.Fatal("TotalSize should be positive")
	}
	t.Logf("layers: %+v", st.Layers)
}

func TestChiUpAndSpecializeInverse(t *testing.T) {
	ds := smallDataset(101)
	idx := buildIndex(t, ds)
	for m := 1; m < idx.NumLayers(); m++ {
		// Every data vertex must be a member of its own chi-image.
		for v := 0; v < min(ds.Graph.NumVertices(), 100); v++ {
			s := idx.ChiUp(graph.V(v), 0, m)
			members := idx.SpecializeRoot(s, m)
			found := false
			for _, u := range members {
				if u == graph.V(v) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("layer %d: vertex %d not in Spec(χ(%d))", m, v, v)
			}
		}
	}
}

func TestSpecializeKeywordEarlyVsLate(t *testing.T) {
	// isKey early filtering must not change the final candidate set
	// (Sec. 4.3.1 is a performance optimization).
	ds := smallDataset(102)
	idx := buildIndex(t, ds)
	rng := rand.New(rand.NewSource(1))
	for m := 1; m < idx.NumLayers(); m++ {
		lg := idx.LayerGraph(m)
		for trial := 0; trial < 20; trial++ {
			kw := pickQuery(rng, ds, 1, 2)
			if kw == nil {
				t.Skip("no frequent labels")
			}
			want := idx.Configs().GenLabel(kw[0], m)
			posting := lg.VerticesWithLabel(want)
			if len(posting) == 0 {
				continue
			}
			s := posting[rng.Intn(len(posting))]
			early := idx.SpecializeKeyword(s, m, kw[0], true)
			late := idx.SpecializeKeyword(s, m, kw[0], false)
			em, lm := toSet(early), toSet(late)
			if len(em) != len(lm) {
				t.Fatalf("layer %d: early %d vs late %d candidates", m, len(em), len(lm))
			}
			for v := range em {
				if !lm[v] {
					t.Fatalf("layer %d: early-only candidate %d", m, v)
				}
			}
		}
	}
}

func toSet(vs []graph.V) map[graph.V]bool {
	m := make(map[graph.V]bool, len(vs))
	for _, v := range vs {
		m[v] = true
	}
	return m
}

// TestEquivalenceTheorem is Thm 4.2: eval_Ont(G,Q,f) = eval(G,Q,f) for all
// three plugged algorithms, every layer of the hierarchy, and all
// optimization combinations.
func TestEquivalenceTheorem(t *testing.T) {
	ds := smallDataset(103)
	idx := buildIndex(t, ds)
	rng := rand.New(rand.NewSource(7))

	algos := []search.Algorithm{
		bkws.New(3),
		bidir.New(3),
		blinks.New(blinks.Options{DMax: 3, BlockSize: 16}),
		rclique.New(2),
	}
	for _, algo := range algos {
		ev := NewEvaluator(idx, algo, DefaultEvalOptions())
		for trial := 0; trial < 6; trial++ {
			size := 2
			if trial%2 == 1 {
				size = 3
			}
			q := pickQuery(rng, ds, size, 3)
			if q == nil {
				t.Skip("dataset lacks frequent labels")
			}
			want, err := ev.Direct(q, 0)
			if err != nil {
				t.Fatal(err)
			}
			wm := matchKeys(want)

			for layer := 0; layer < idx.NumLayers(); layer++ {
				for _, flags := range []EvalOptions{
					{Beta: 0.5, ForcedLayer: layer},
					{Beta: 0.5, ForcedLayer: layer, SpecOrder: true, PathBased: true, IsKey: true},
					{Beta: 0.5, ForcedLayer: layer, PathBased: true},
					{Beta: 0.5, ForcedLayer: layer, IsKey: true},
				} {
					ev.SetOptions(flags)
					got, _, err := ev.Eval(q)
					if err != nil {
						t.Fatal(err)
					}
					gm := matchKeys(got)
					if len(gm) != len(wm) {
						t.Fatalf("%s layer %d flags %+v: %d answers, direct %d (q=%v)",
							algo.Name(), layer, flags, len(gm), len(wm), q)
					}
					for k, s := range wm {
						if gs, ok := gm[k]; !ok || gs != s {
							t.Fatalf("%s layer %d: key %s got %v want %v", algo.Name(), layer, k, gs, s)
						}
					}
				}
			}
		}
	}
}

// TestOptimalLayerEquivalence uses the cost model's automatic layer choice.
func TestOptimalLayerEquivalence(t *testing.T) {
	ds := smallDataset(104)
	idx := buildIndex(t, ds)
	rng := rand.New(rand.NewSource(9))
	algo := bkws.New(3)
	ev := NewEvaluator(idx, algo, DefaultEvalOptions())
	for trial := 0; trial < 10; trial++ {
		q := pickQuery(rng, ds, 2, 3)
		if q == nil {
			t.Skip("no frequent labels")
		}
		want, err := ev.Direct(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, bd, err := ev.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("auto layer %d: %d answers, want %d", bd.Layer, len(got), len(want))
		}
		if bd.Layer < 0 || bd.Layer >= idx.NumLayers() {
			t.Fatalf("layer out of range: %d", bd.Layer)
		}
		if len(bd.LayerCosts) != idx.NumLayers() {
			t.Fatalf("LayerCosts has %d entries", len(bd.LayerCosts))
		}
	}
}

// TestTopKEquivalence: top-k scores from eval_Ont match direct top-k
// scores (rank preservation, Prop 5.3).
func TestTopKEquivalence(t *testing.T) {
	ds := smallDataset(105)
	idx := buildIndex(t, ds)
	rng := rand.New(rand.NewSource(11))
	algo := blinks.New(blinks.Options{DMax: 3, BlockSize: 16})
	for trial := 0; trial < 8; trial++ {
		q := pickQuery(rng, ds, 2, 3)
		if q == nil {
			t.Skip("no frequent labels")
		}
		for _, k := range []int{1, 3, 10} {
			opt := DefaultEvalOptions()
			opt.K = k
			ev := NewEvaluator(idx, algo, opt)
			direct, err := ev.Direct(q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := ev.Eval(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(direct) {
				t.Fatalf("k=%d: %d answers, direct %d", k, len(got), len(direct))
			}
			for i := range got {
				if got[i].Score != direct[i].Score {
					t.Fatalf("k=%d rank %d: score %v, direct %v", k, i, got[i].Score, direct[i].Score)
				}
			}
		}
	}
}

// TestCostModelImplementsInterface pins the cost.LayerGraphs contract.
func TestCostModelImplementsInterface(t *testing.T) {
	var _ cost.LayerGraphs = (*Index)(nil)
}

func TestRemoveOntologyMapping(t *testing.T) {
	ds := smallDataset(106)
	idx := buildIndex(t, ds)
	if idx.NumLayers() < 2 {
		t.Skip("need a summary layer")
	}
	// Pick a mapping used by layer 1.
	ms := idx.Layer(1).Config.Mappings()
	if len(ms) == 0 {
		t.Skip("empty config")
	}
	before := idx.NumLayers()
	dropped := idx.RemoveOntologyMapping(ms[0].From, ms[0].To)
	if dropped != before-1 {
		t.Fatalf("dropped %d layers, want %d", dropped, before-1)
	}
	if idx.NumLayers() != 1 {
		t.Fatalf("layers remaining: %d", idx.NumLayers())
	}
	// Removing an unused mapping is a no-op.
	if d := idx.RemoveOntologyMapping(ms[0].From, ms[0].To); d != 0 {
		t.Fatalf("second removal dropped %d", d)
	}
}

func TestEvalErrorsOnBadLayer(t *testing.T) {
	ds := smallDataset(107)
	idx := buildIndex(t, ds)
	ev := NewEvaluator(idx, bkws.New(3), EvalOptions{ForcedLayer: 99})
	if _, _, err := ev.Eval([]graph.Label{1}); err == nil {
		t.Fatal("expected layer-out-of-range error")
	}
}

// TestBuildDeterministic: identical inputs must produce identical indexes
// (layer sizes, configurations, χ maps) — the reproducibility contract the
// experiment harness relies on.
func TestBuildDeterministic(t *testing.T) {
	ds1 := smallDataset(900)
	ds2 := smallDataset(900)
	a := buildIndex(t, ds1)
	b := buildIndex(t, ds2)
	if a.NumLayers() != b.NumLayers() {
		t.Fatalf("layer counts differ: %d vs %d", a.NumLayers(), b.NumLayers())
	}
	for m := 1; m < a.NumLayers(); m++ {
		la, lb := a.Layer(m), b.Layer(m)
		if la.Graph.NumVertices() != lb.Graph.NumVertices() || la.Graph.NumEdges() != lb.Graph.NumEdges() {
			t.Fatalf("layer %d sizes differ", m)
		}
		ma, mb := la.Config.Mappings(), lb.Config.Mappings()
		if len(ma) != len(mb) {
			t.Fatalf("layer %d config sizes differ: %d vs %d", m, len(ma), len(mb))
		}
		for i := range ma {
			if ma[i] != mb[i] {
				t.Fatalf("layer %d mapping %d differs: %v vs %v", m, i, ma[i], mb[i])
			}
		}
		for v := range la.Up {
			if la.Up[v] != lb.Up[v] {
				t.Fatalf("layer %d Up[%d] differs", m, v)
			}
		}
	}
}

// TestEquivalenceWithAlternateSummarizers: the equivalence theorem must
// hold when the index is built with k-bisimulation or forward bisimulation
// (any label-preserving quotient is sound; the paper's future-work
// formalisms plug in through BuildOptions.Summarizer).
func TestEquivalenceWithAlternateSummarizers(t *testing.T) {
	ds := smallDataset(950)
	rng := rand.New(rand.NewSource(12))
	for name, summarize := range map[string]func(*graph.Graph) *bisim.Result{
		"k1":      func(g *graph.Graph) *bisim.Result { return bisim.ComputeK(g, 1) },
		"k3":      func(g *graph.Graph) *bisim.Result { return bisim.ComputeK(g, 3) },
		"forward": bisim.ComputeForward,
	} {
		opt := DefaultBuildOptions()
		opt.Search.SampleCount = 40
		opt.Summarizer = summarize
		idx, err := Build(ds.Graph, ds.Ont, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if idx.NumLayers() < 2 {
			t.Fatalf("%s: no summary layers", name)
		}
		ev := NewEvaluator(idx, bkws.New(3), DefaultEvalOptions())
		for trial := 0; trial < 4; trial++ {
			q := pickQuery(rng, ds, 2, 3)
			if q == nil {
				t.Skip("no frequent labels")
			}
			want, err := ev.Direct(q, 0)
			if err != nil {
				t.Fatal(err)
			}
			for layer := 0; layer < idx.NumLayers(); layer++ {
				opts := DefaultEvalOptions()
				opts.ForcedLayer = layer
				ev.SetOptions(opts)
				got, _, err := ev.Eval(q)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s layer %d: %d answers, direct %d", name, layer, len(got), len(want))
				}
			}
			ev.SetOptions(DefaultEvalOptions())
		}
	}
}

// TestLayerMapsAreInverse: every layer's Up and Down must be exact inverses
// and Down must partition the lower layer's vertex set.
func TestLayerMapsAreInverse(t *testing.T) {
	ds := smallDataset(960)
	idx := buildIndex(t, ds)
	for m := 1; m < idx.NumLayers(); m++ {
		l := idx.Layer(m)
		lower := idx.LayerGraph(m - 1)
		if len(l.Up) != lower.NumVertices() {
			t.Fatalf("layer %d: Up covers %d of %d vertices", m, len(l.Up), lower.NumVertices())
		}
		seen := make(map[graph.V]bool)
		for s, members := range l.Down {
			if len(members) == 0 {
				t.Fatalf("layer %d: empty supernode %d", m, s)
			}
			for _, v := range members {
				if seen[v] {
					t.Fatalf("layer %d: vertex %d in two supernodes", m, v)
				}
				seen[v] = true
				if l.Up[v] != graph.V(s) {
					t.Fatalf("layer %d: Up/Down disagree at %d", m, v)
				}
			}
		}
		if len(seen) != lower.NumVertices() {
			t.Fatalf("layer %d: Down covers %d of %d", m, len(seen), lower.NumVertices())
		}
	}
}

package core

import (
	"errors"
	"fmt"

	"bigindex/internal/bisim"
	"bigindex/internal/graph"
)

// Delta is one batch of data-graph mutations: vertices to append (by
// dictionary label — new vocabulary requires a rebuild, matching the
// Rebase policy), edges to add and edges to remove.
type Delta struct {
	AddVertices []graph.Label
	AddEdges    []graph.Edge
	RemoveEdges []graph.Edge
}

// Empty reports whether the delta mutates nothing.
func (d Delta) Empty() bool {
	return len(d.AddVertices) == 0 && len(d.AddEdges) == 0 && len(d.RemoveEdges) == 0
}

// DeltaOptions controls Applied.
type DeltaOptions struct {
	// MaxAffectedFrac is the damage budget: the fraction of data-graph
	// vertices whose bisimilarity class the delta may plausibly touch (the
	// backward closure of the update sites) before Applied refuses with
	// ErrDeltaTooLarge and the caller falls back to a full refresh — past
	// that point one recomputation over the whole graph is cheaper than
	// maintenance and the bound no longer certifies locality. <= 0 means
	// no budget (boot-time WAL replay must always go through).
	MaxAffectedFrac float64
}

// DeltaReport describes how a delta was absorbed into the hierarchy.
type DeltaReport struct {
	// AffectedVertices / AffectedFrac measure the damage bound: the
	// backward closure of the update sites in the patched data graph.
	AffectedVertices int
	AffectedFrac     float64
	// Absorbed is true when layer 1's partition provably survived the
	// delta unchanged, so every summary layer was reused verbatim.
	Absorbed bool
	// ReusedLayers counts summary layers carried over pointer-identical
	// from the old index; RecomputedLayers counts layers rebuilt.
	ReusedLayers     int
	RecomputedLayers int
}

// ErrDeltaTooLarge is returned by Applied when the damage bound exceeds
// DeltaOptions.MaxAffectedFrac.
var ErrDeltaTooLarge = errors.New("core: delta exceeds the damage budget")

// Applied returns a new index equal to rebuilding the hierarchy over the
// mutated data graph with the stored configurations — the maintenance
// strategy of Sec. 3.2 — but paying only for the layers the delta actually
// disturbs. The invariant, enforced by the equivalence tests, is
//
//	x.Applied(d) ≡ x.Refreshed(graph.Patch(x.Data(), d))
//
// layer for layer, so callers may mix the two paths freely (the server
// falls back to Refreshed when the damage budget trips).
//
// Layer 1 goes through bisim.Maintainer seeded with the stored partition:
// a pure edge-add delta whose every edge keeps all successor-block
// signatures intact is absorbed without recomputation, in which case the
// quotient graph — and therefore every layer above — is reused verbatim.
// Otherwise layers recompute bottom-up, stopping early as soon as a
// recomputed quotient equals the old one. The assembled index re-runs the
// NewFromLayers structural validation, so a maintenance bug surfaces as an
// error here instead of a silently wrong index, and the result's epoch is
// x's epoch + 1 (atomic-swap + cache-invalidation contract).
//
// The receiver is never modified; like Refreshed, Applied is safe to run
// while x serves queries.
func (x *Index) Applied(d Delta, opt DeltaOptions) (*Index, *DeltaReport, error) {
	g0old := x.layers[0].Graph
	g0new, err := graph.Patch(g0old, d.AddVertices, d.AddEdges, d.RemoveEdges)
	if err != nil {
		return nil, nil, err
	}

	rep := &DeltaReport{}
	rep.AffectedVertices = affectedClosure(g0new, g0old.NumVertices(), d)
	if n := g0new.NumVertices(); n > 0 {
		rep.AffectedFrac = float64(rep.AffectedVertices) / float64(n)
	}
	if opt.MaxAffectedFrac > 0 && rep.AffectedFrac > opt.MaxAffectedFrac {
		return nil, rep, fmt.Errorf("%w: %.3f of vertices affected (budget %.3f)",
			ErrDeltaTooLarge, rep.AffectedFrac, opt.MaxAffectedFrac)
	}

	newLayers := []*Layer{{Graph: g0new}}
	top := g0new
	for li := 1; li < len(x.layers); li++ {
		old := x.layers[li]
		cfg := old.Config

		// Once a recomputed layer equals the old one, the rest of the old
		// hierarchy was built from an identical input and applies verbatim.
		if li > 1 && graphsEqual(top, x.layers[li-1].Graph) {
			for _, o := range x.layers[li:] {
				newLayers = append(newLayers, o)
				rep.ReusedLayers++
			}
			break
		}

		// Mirror Refreshed exactly: stop at the first layer whose config
		// generalizes nothing present in the evolved graph.
		touches := false
		for _, l := range top.DistinctLabels() {
			if cfg.InDomain(l) {
				touches = true
				break
			}
		}
		if !touches {
			break
		}

		if li == 1 {
			oldRes := &bisim.Result{Summary: old.Graph, Block: old.Up, Members: old.Down}
			m := bisim.MaintainerFrom(cfg.Apply(g0old), oldRes)
			for _, l := range d.AddVertices {
				m.AddVertex(cfg.Map(l))
			}
			m.AddEdges(d.AddEdges)
			for _, e := range d.RemoveEdges {
				m.RemoveEdge(e.From, e.To)
			}
			res := m.Result()
			if res == oldRes {
				// Absorbed: partition, quotient graph and everything above
				// are untouched by construction.
				rep.Absorbed = true
				for _, o := range x.layers[1:] {
					newLayers = append(newLayers, o)
					rep.ReusedLayers++
				}
				break
			}
			newLayers = append(newLayers, &Layer{Graph: res.Summary, Config: cfg, Up: res.Block, Down: res.Members})
			rep.RecomputedLayers++
			top = res.Summary
			continue
		}

		res := bisim.Compute(cfg.Apply(top))
		newLayers = append(newLayers, &Layer{Graph: res.Summary, Config: cfg, Up: res.Block, Down: res.Members})
		rep.RecomputedLayers++
		top = res.Summary
	}

	// Assemble through the snapshot-restore constructor: the full
	// structural validation (Up/Down inversion, dict sharing, config vs
	// ontology) is the gate that turns a maintenance bug into an error.
	n, err := NewFromLayers(x.ont, newLayers)
	if err != nil {
		return nil, rep, fmt.Errorf("core: delta produced an invalid hierarchy: %w", err)
	}
	n.RestoreEpoch(x.epoch.Load() + 1)
	return n, rep, nil
}

// affectedClosure bounds how far the delta can perturb bisimilarity: a
// vertex's class depends only on its successors' classes, so only vertices
// that can reach an update site (backward closure in the patched graph)
// can change class. Update sites are the endpoints of every added and
// removed edge plus every appended vertex.
func affectedClosure(g *graph.Graph, oldN int, d Delta) int {
	n := g.NumVertices()
	seeds := make(map[graph.V]bool)
	add := func(v graph.V) {
		if int(v) < n {
			seeds[v] = true
		}
	}
	for _, e := range d.AddEdges {
		add(e.From)
		add(e.To)
	}
	for _, e := range d.RemoveEdges {
		add(e.From)
		add(e.To)
	}
	for i := range d.AddVertices {
		add(graph.V(oldN + i))
	}
	seen := make(map[graph.V]bool, len(seeds))
	for s := range seeds {
		g.BFSWithin(s, -1, graph.Backward, func(v graph.V, _ int) bool {
			if seen[v] {
				return false
			}
			seen[v] = true
			return true
		})
	}
	return len(seen)
}

// graphsEqual is an exact labeled-graph comparison (same vertex IDs, same
// labels, same adjacency). Digests are NOT used here: a hash collision
// would silently reuse a stale hierarchy, and the exact check is O(V+E) —
// no more than the Compute it short-circuits.
func graphsEqual(a, b *graph.Graph) bool {
	if a == b {
		return true
	}
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(graph.V(v)) != b.Label(graph.V(v)) {
			return false
		}
		ao, bo := a.Out(graph.V(v)), b.Out(graph.V(v))
		if len(ao) != len(bo) {
			return false
		}
		for i := range ao {
			if ao[i] != bo[i] {
				return false
			}
		}
	}
	return true
}

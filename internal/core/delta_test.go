package core

import (
	"errors"
	"math/rand"
	"slices"
	"testing"

	"bigindex/internal/graph"
)

// randomDelta builds a delta over idx's data graph: vertex appends with
// existing labels, random edge adds (including between new vertices), and
// removals of existing edges.
func randomDelta(rng *rand.Rand, g *graph.Graph, nAddV, nAddE, nRmE int) Delta {
	var d Delta
	labels := g.DistinctLabels()
	for i := 0; i < nAddV; i++ {
		d.AddVertices = append(d.AddVertices, labels[rng.Intn(len(labels))])
	}
	total := g.NumVertices() + nAddV
	for i := 0; i < nAddE; i++ {
		d.AddEdges = append(d.AddEdges, graph.Edge{
			From: graph.V(rng.Intn(total)),
			To:   graph.V(rng.Intn(total)),
		})
	}
	es := g.Edges()
	for i := 0; i < nRmE && len(es) > 0; i++ {
		d.RemoveEdges = append(d.RemoveEdges, es[rng.Intn(len(es))])
	}
	return d
}

func sameLayers(t *testing.T, tag string, a, b *Index) {
	t.Helper()
	if a.NumLayers() != b.NumLayers() {
		t.Fatalf("%s: %d layers vs %d", tag, a.NumLayers(), b.NumLayers())
	}
	for li := 0; li < a.NumLayers(); li++ {
		la, lb := a.Layer(li), b.Layer(li)
		if !graphsEqual(la.Graph, lb.Graph) {
			t.Fatalf("%s: layer %d graphs differ", tag, li)
		}
		if !slices.Equal(la.Up, lb.Up) {
			t.Fatalf("%s: layer %d Up maps differ", tag, li)
		}
		if len(la.Down) != len(lb.Down) {
			t.Fatalf("%s: layer %d Down sizes differ", tag, li)
		}
		for s := range la.Down {
			if !slices.Equal(la.Down[s], lb.Down[s]) {
				t.Fatalf("%s: layer %d Down[%d] differs", tag, li, s)
			}
		}
	}
}

// TestAppliedMatchesRefreshed is the delta-pipeline equivalence contract:
// for random mutation batches, Applied must produce layer-for-layer the
// same hierarchy as the full Refreshed pass over the patched graph — the
// invariant the live mutation service (and its rebuild fallback) rests on.
func TestAppliedMatchesRefreshed(t *testing.T) {
	ds := smallDataset(777)
	idx := buildIndex(t, ds)
	rng := rand.New(rand.NewSource(778))

	cur := idx
	for round := 0; round < 6; round++ {
		d := randomDelta(rng, cur.Data(), rng.Intn(3), 1+rng.Intn(5), rng.Intn(3))

		gotIdx, rep, err := cur.Applied(d, DeltaOptions{})
		if err != nil {
			t.Fatalf("round %d: Applied: %v", round, err)
		}
		patched, err := graph.Patch(cur.Data(), d.AddVertices, d.AddEdges, d.RemoveEdges)
		if err != nil {
			t.Fatalf("round %d: Patch: %v", round, err)
		}
		wantIdx, err := cur.Refreshed(patched)
		if err != nil {
			t.Fatalf("round %d: Refreshed: %v", round, err)
		}
		sameLayers(t, "round", gotIdx, wantIdx)
		if gotIdx.Epoch() != cur.Epoch()+1 {
			t.Fatalf("round %d: epoch %d, want %d", round, gotIdx.Epoch(), cur.Epoch()+1)
		}
		if rep.ReusedLayers+rep.RecomputedLayers > cur.NumLayers()-1 {
			t.Fatalf("round %d: report counts %d layers, index has %d summaries",
				round, rep.ReusedLayers+rep.RecomputedLayers, cur.NumLayers()-1)
		}
		// Receiver untouched: same data graph, same epoch.
		if cur.Data() == gotIdx.Data() && !d.Empty() {
			t.Fatalf("round %d: Applied mutated the receiver's data graph", round)
		}
		cur = gotIdx // chain: next round mutates the mutated index
	}
}

func TestAppliedEmptyDeltaAbsorbs(t *testing.T) {
	ds := smallDataset(780)
	idx := buildIndex(t, ds)
	got, rep, err := idx.Applied(Delta{}, DeltaOptions{})
	if err != nil {
		t.Fatalf("Applied(empty): %v", err)
	}
	if !rep.Absorbed || rep.RecomputedLayers != 0 {
		t.Fatalf("empty delta not absorbed: %+v", rep)
	}
	if got.Epoch() != idx.Epoch()+1 {
		t.Fatalf("epoch %d, want %d", got.Epoch(), idx.Epoch()+1)
	}
	sameLayers(t, "empty", got, idx)
}

func TestAppliedDuplicateEdgeAbsorbs(t *testing.T) {
	ds := smallDataset(781)
	idx := buildIndex(t, ds)
	es := idx.Data().Edges()
	if len(es) == 0 {
		t.Skip("no edges")
	}
	// Re-adding an existing edge is signature-preserving by definition.
	got, rep, err := idx.Applied(Delta{AddEdges: []graph.Edge{es[0]}}, DeltaOptions{})
	if err != nil {
		t.Fatalf("Applied: %v", err)
	}
	if !rep.Absorbed {
		t.Fatalf("duplicate-edge delta recomputed: %+v", rep)
	}
	sameLayers(t, "dup", got, idx)
}

func TestAppliedDamageBudget(t *testing.T) {
	ds := smallDataset(782)
	idx := buildIndex(t, ds)
	rng := rand.New(rand.NewSource(783))
	d := randomDelta(rng, idx.Data(), 0, 20, 10)

	_, rep, err := idx.Applied(d, DeltaOptions{MaxAffectedFrac: 1e-9})
	if !errors.Is(err, ErrDeltaTooLarge) {
		t.Fatalf("tiny budget: err = %v, want ErrDeltaTooLarge", err)
	}
	if rep == nil || rep.AffectedVertices == 0 {
		t.Fatalf("budget refusal must still report the bound: %+v", rep)
	}
	// No budget (boot replay) always goes through.
	if _, _, err := idx.Applied(d, DeltaOptions{}); err != nil {
		t.Fatalf("unbudgeted Applied: %v", err)
	}
	// A generous budget also passes.
	if _, _, err := idx.Applied(d, DeltaOptions{MaxAffectedFrac: 1.0}); err != nil {
		t.Fatalf("full budget Applied: %v", err)
	}
}

func TestAppliedRejectsInvalidDelta(t *testing.T) {
	ds := smallDataset(784)
	idx := buildIndex(t, ds)
	n := graph.V(idx.Data().NumVertices())
	if _, _, err := idx.Applied(Delta{AddEdges: []graph.Edge{{From: n, To: 0}}}, DeltaOptions{}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	bad := graph.Label(uint32(idx.Data().Dict().Len()) + 7)
	if _, _, err := idx.Applied(Delta{AddVertices: []graph.Label{bad}}, DeltaOptions{}); err == nil {
		t.Fatal("unknown label accepted")
	}
}

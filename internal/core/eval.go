package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bigindex/internal/cost"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/search"
)

// EvalOptions controls hierarchical query evaluation (eval_Ont).
type EvalOptions struct {
	// Beta is the β weight of the query-layer cost model (Formula 4);
	// the experiments settle on 0.5.
	Beta float64
	// K returns only the top-k final answers (0 = all). Generation stops
	// early once no remaining generalized answer can beat the k-th final
	// score (Sec. 4.3.4, made sound by Prop 5.2: specializing never
	// decreases distances).
	K int
	// ForcedLayer pins the evaluation layer (Fig. 19's layer sweep and the
	// Fan et al. comparison of Exp-6 use it); -1 selects the optimal layer
	// with the cost model (Def. 4.1).
	ForcedLayer int
	// SpecOrder enables the specialization-order optimization (Sec. 4.3.2).
	SpecOrder bool
	// PathBased enables path-based answer generation (Sec. 4.3.3).
	PathBased bool
	// IsKey enables early specialization of keyword nodes (Sec. 4.3.1):
	// keyword candidates are label-filtered at every layer on the way down
	// instead of only at layer 0.
	IsKey bool
	// EarlyK enables the early-termination of Sec. 4.3.4: answer
	// generation stops as soon as K final answers exist, without waiting
	// for the score bound that guarantees exact top-k. The paper's
	// behaviour for "first k answers" retrieval; results are then
	// rank-guided approximations (exact when the semantics itself is
	// exhaustive per answer).
	EarlyK bool
	// DegreeExponent enables the density correction of cost.QueryCostEx
	// during layer selection (0 = the paper's Formula 4). Distance-based
	// semantics whose traversal cost grows like degree^R should pass their
	// R; rooted semantics typically use 1.
	DegreeExponent int
	// GenBudget caps the qualification checks spent by answer generation
	// (search.GenOptions.MaxChecks); 0 = unlimited. Only meaningful with
	// EarlyK, which already trades completeness for latency.
	GenBudget int
	// GenLimit bounds how many generalized answers are requested from the
	// summary layer (0 = all). Exhaustive summary search guarantees
	// completeness (Lemma 4.1); for combinatorial semantics like r-clique
	// top-k, a bound keeps the summary search itself top-k-shaped, trading
	// the completeness guarantee for the original algorithm's
	// approximation behaviour (boost-dkws, Sec. 5.2).
	GenLimit int
}

// DefaultEvalOptions enables every optimization, β = 0.5, automatic layer.
func DefaultEvalOptions() EvalOptions {
	return EvalOptions{Beta: 0.5, ForcedLayer: -1, SpecOrder: true, PathBased: true, IsKey: true}
}

// Breakdown reports where evaluation time went, matching the query
// performance breakdown of Figs. 10–14 (summary search / specialization +
// pruning / answer generation).
type Breakdown struct {
	Layer       int           // layer the query was evaluated at
	LayerCosts  []float64     // cost_q(m) for every layer (Formula 4)
	Select      time.Duration // layer selection
	Search      time.Duration // eval on the summary graph
	Specialize  time.Duration // Spec + Prop 4.1 pruning, layers m..1
	Generate    time.Duration // answer generation + verification at layer 0
	GenAnswers  int           // generalized answers found at layer m
	Candidates  int           // specialized root candidates examined
	FinalCount  int           // final answers returned
	SearchCalls int

	// Paper-phase counters (the flight recorder's vocabulary): how the
	// query exercised the machinery of Secs. 4.2–4.3.
	LayersAvail    int             // layers the cost model chose from (Formula 4 domain)
	Prop41Checked  int             // candidates examined by the Prop 4.1 label filter
	Prop41Filtered int             // … dropped by it
	IsKeySteps     int             // early-filtered Spec steps above layer 1 (Sec. 4.3.1)
	SpecFanout     []int           // candidates emerging from each layer-descent step
	EarlyStops     int             // Sec. 4.3.4 first-k stops in the eval loop
	BoundStops     int             // Prop 5.2 score-bound top-k stops
	Gen            search.GenStats // Def 4.2/4.3 qualification work during generation
}

// Evaluator runs eval_Ont(G, Q, f) for one algorithm over one index,
// caching the algorithm's per-layer prepared indexes across queries.
// Concurrent Eval calls are safe (EvalBatch relies on this): preparation is
// serialized behind mu, and everything else consulted during evaluation is
// immutable. SetOptions must not race with in-flight queries.
type Evaluator struct {
	idx      *Index
	algo     search.Algorithm
	opt      EvalOptions
	mu       sync.Mutex
	prepared map[int]search.Prepared
}

// NewEvaluator creates an evaluator for algo over idx.
func NewEvaluator(idx *Index, algo search.Algorithm, opt EvalOptions) *Evaluator {
	return &Evaluator{idx: idx, algo: algo, opt: opt, prepared: make(map[int]search.Prepared)}
}

// Options returns the evaluator's options (copy).
func (e *Evaluator) Options() EvalOptions { return e.opt }

// Index returns the index the evaluator runs over (the server's
// calibration audit needs it to recompute per-layer cost terms).
func (e *Evaluator) Index() *Index { return e.idx }

// SetOptions replaces the options; prepared layer indexes are retained.
func (e *Evaluator) SetOptions(opt EvalOptions) { e.opt = opt }

func (e *Evaluator) preparedFor(m int) (search.Prepared, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.prepared[m]; ok {
		return p, nil
	}
	p, err := e.algo.Prepare(e.idx.LayerGraph(m))
	if err != nil {
		return nil, fmt.Errorf("core: preparing %s at layer %d: %w", e.algo.Name(), m, err)
	}
	e.prepared[m] = p
	return p, nil
}

// Eval implements Algo 2 (hierarchical query processing):
//
//  1. generalize Q to the optimal layer m (Def. 4.1) and evaluate f there;
//  2. specialize each generalized answer's root and keyword supernodes
//     layer by layer (Spec), pruning keyword candidates whose label is not
//     the appropriately generalized keyword (Prop 4.1), optionally at every
//     layer (isKey, Sec. 4.3.1);
//  3. generate and verify concrete answers on the data graph through the
//     algorithm's Generation session (Step 5 / Algos 3 and 4);
//  4. rank, deduplicate, and apply top-k early termination.
func (e *Evaluator) Eval(q []graph.Label) ([]search.Match, *Breakdown, error) {
	return e.EvalCtx(context.Background(), q)
}

// EvalCtx is Eval with span-based tracing and cooperative cancellation.
//
// Tracing: when ctx carries an obs span (obs.ContextWithSpan), the
// evaluation phases attach to it as a nested tree — Select, Search,
// Specialize (with per-layer Spec/Prop-4.1 children), Generate — mirroring
// the query-cost breakdown of the paper's Figs. 10–14. Without a span in
// ctx a detached trace is used, so Breakdown timings are always
// span-derived and always populated.
//
// Cancellation: ctx is threaded into the algorithm's SearchCtx/GenerateCtx
// loops and checked between specialize/generate steps. When ctx expires
// mid-evaluation, EvalCtx returns the final answers accumulated so far
// together with the context's error. The partial result is sound — every
// returned match was generated and verified against the data graph, and
// specialization only refines already-found generalized answers (Prop 5.2)
// — it is merely possibly incomplete, which callers surface as a degraded
// answer set rather than a failure.
func (e *Evaluator) EvalCtx(ctx context.Context, q []graph.Label) ([]search.Match, *Breakdown, error) {
	return e.evalCtx(ctx, q, e.opt.ForcedLayer)
}

// EvalLayer is EvalLayerCtx without cancellation or an ambient span.
func (e *Evaluator) EvalLayer(q []graph.Label, layer int) ([]search.Match, *Breakdown, error) {
	return e.EvalLayerCtx(context.Background(), q, layer)
}

// EvalLayerCtx evaluates with the layer pinned for this query only (the
// server's &layer= parameter and the layer-sweep experiments), overriding
// Options.ForcedLayer without mutating the shared evaluator's options —
// evaluators are shared across concurrent queries, so per-request knobs
// must never be written into them. layer < 0 selects the optimal layer
// with the cost model, as EvalCtx does.
func (e *Evaluator) EvalLayerCtx(ctx context.Context, q []graph.Label, layer int) ([]search.Match, *Breakdown, error) {
	return e.evalCtx(ctx, q, layer)
}

func (e *Evaluator) evalCtx(ctx context.Context, q []graph.Label, forced int) ([]search.Match, *Breakdown, error) {
	parent := obs.SpanFromContext(ctx)
	if parent == nil {
		parent = obs.NewTrace("eval").Root()
	}
	// The per-query resource ledger, when the caller threaded one: the
	// search algorithms flush their expansion counts into it, eval
	// attributes them to the searched layer, and the specialize/generate
	// phases add their own per-layer work units.
	led := obs.LedgerFromContext(ctx)
	bd := &Breakdown{LayersAvail: e.idx.NumLayers()}
	tally := &specTally{}

	// (1) Layer selection.
	sel := parent.StartChild("Select")
	m := forced
	if m < 0 {
		m, bd.LayerCosts = cost.OptimalLayerEx(e.idx, q, e.opt.Beta, e.opt.DegreeExponent)
	} else if m >= e.idx.NumLayers() {
		sel.End()
		return nil, nil, fmt.Errorf("core: layer %d out of range (index has %d)", m, e.idx.NumLayers())
	}
	bd.Layer = m
	qGen := e.idx.Configs().GenQuery(q, m)
	sel.SetAttr("layer", m).SetAttr("keywords", len(q))
	bd.Select = sel.End().Duration()

	// (2) Evaluate f on the summary graph at layer m. Exhaustive mode: one
	// generalized answer can specialize to zero or many final answers, so
	// completeness requires every generalized answer; top-k early
	// termination happens during generation below.
	srch := parent.StartChild("Search").SetAttr("layer", m)
	prep, err := e.preparedFor(m)
	if err != nil {
		srch.End()
		return nil, nil, err
	}
	limit := e.opt.GenLimit
	if m == 0 {
		limit = e.opt.K
	}
	// The Search child becomes the ambient span so the algorithm's own
	// counters (expansions/finalized/early_topk, …) attach to it rather
	// than to the query root. The ledger's expansion counter is bracketed
	// around the call so the search's work lands on the searched layer.
	expBefore := led.Expanded()
	gens, err := prep.SearchCtx(obs.ContextWithSpan(ctx, srch), qGen, limit)
	led.AddLayerWork(m, led.Expanded()-expBefore)
	if err != nil && ctx.Err() == nil {
		// A real search failure, not a cancellation.
		srch.End()
		return nil, nil, err
	}
	bd.SearchCalls++
	bd.GenAnswers = len(gens)
	srch.SetAttr("generalized_answers", len(gens))
	bd.Search = srch.End().Duration()

	if m == 0 {
		// Evaluating at the data layer is direct evaluation; on
		// cancellation the prefix found so far is the degraded answer set.
		search.SortMatches(gens)
		bd.FinalCount = len(search.Truncate(gens, e.opt.K))
		return search.Truncate(gens, e.opt.K), bd, err
	}
	if err != nil {
		// Interrupted during summary search: nothing has been specialized
		// to the data graph yet, so there are no finals to salvage.
		return nil, bd, err
	}

	// (3) Specialize + generate, in generalized-rank order.
	genOpt := search.GenOptions{SpecOrder: e.opt.SpecOrder, PathBased: e.opt.PathBased, MaxChecks: e.opt.GenBudget}
	session := e.algo.NewGeneration(e.idx.Data(), q, genOpt)

	var finals []search.Match
	seen := make(map[string]bool)

	if e.opt.K <= 0 {
		// Exhaustive mode: generalized answers share supernodes heavily, so
		// specialize the union once per role instead of per answer —
		// identical result, far fewer Down-map expansions.
		spec := parent.StartChild("Specialize").SetAttr("layer", m)
		rootSupers := make([]graph.V, 0, len(gens))
		kwSupers := make([][]graph.V, len(q))
		for _, ga := range gens {
			rootSupers = append(rootSupers, ga.Root)
			for i, node := range ga.Nodes {
				kwSupers[i] = append(kwSupers[i], node)
			}
		}
		var rootCands []graph.V
		if !isRootless(e.algo) {
			rootCands = e.idx.specializeRootSet(rootSupers, m, spec, tally, led)
		}
		cands := make([][]graph.V, len(q))
		for i := range q {
			cands[i] = e.idx.specializeKeywordSet(kwSupers[i], m, q[i], e.opt.IsKey, spec, tally, led)
		}
		bd.Candidates = len(rootCands)
		spec.SetAttr("root_candidates", len(rootCands))
		tally.fill(bd, spec)
		bd.Specialize = spec.End().Duration()

		gen := parent.StartChild("Generate")
		for _, fm := range session.GenerateCtx(ctx, rootCands, cands) {
			key := fm.Key()
			if !seen[key] {
				seen[key] = true
				finals = append(finals, fm)
			}
		}
		bd.Gen = genStatsOf(session)
		led.AddLayerWork(0, bd.Gen.VertexChecks+bd.Gen.PathChecks)
		gen.SetAttr("finals", len(finals))
		setGenAttrs(gen, bd.Gen)
		bd.Generate = gen.End().Duration()
		search.SortMatches(finals)
		bd.FinalCount = len(finals)
		return finals, bd, context.Cause(ctx)
	}

	if e.opt.EarlyK {
		genOpt.K = e.opt.K
		session = e.algo.NewGeneration(e.idx.Data(), q, genOpt)
	}
	rootless := isRootless(e.algo)
	for _, ga := range gens {
		// Cancellation checkpoint between generalized answers: the finals
		// accumulated so far are complete, verified answers (Prop 5.2), so
		// stopping here degrades the answer set without unsoundness.
		if ctx.Err() != nil {
			break
		}
		if e.opt.K > 0 && len(finals) >= e.opt.K {
			if e.opt.EarlyK {
				bd.EarlyStops++
				break // Sec. 4.3.4: stop at the first k answers
			}
			// Prop 5.2: any answer specialized from ga scores >= ga.Score,
			// so once the k-th best final beats the next generalized score
			// nothing better can appear.
			search.SortMatches(finals)
			if float64(finals[e.opt.K-1].Score) <= ga.Score {
				bd.BoundStops++
				break
			}
		}
		// Per-answer spans share the phase names of the exhaustive path;
		// past obs' child cap they are timed but not attached, so the
		// Breakdown sums stay exact on answer-heavy queries.
		spec := parent.StartChild("Specialize").SetAttr("layer", m)
		var rootCands []graph.V
		if !rootless {
			rootCands = e.idx.specializeRootSet([]graph.V{ga.Root}, m, spec, tally, led)
		}
		cands := make([][]graph.V, len(q))
		for i, node := range ga.Nodes {
			cands[i] = e.idx.specializeKeywordSet([]graph.V{node}, m, q[i], e.opt.IsKey, spec, tally, led)
		}
		bd.Candidates += len(rootCands)
		spec.SetAttr("root_candidates", len(rootCands))
		bd.Specialize += spec.End().Duration()

		gen := parent.StartChild("Generate")
		before := len(finals)
		prevStats := genStatsOf(session)
		for _, fm := range session.GenerateCtx(ctx, rootCands, cands) {
			key := fm.Key()
			if !seen[key] {
				seen[key] = true
				finals = append(finals, fm)
			}
		}
		delta := genStatsOf(session)
		delta.VertexChecks -= prevStats.VertexChecks
		delta.VertexQualified -= prevStats.VertexQualified
		delta.PathChecks -= prevStats.PathChecks
		delta.PathQualified -= prevStats.PathQualified
		delta.EarlyKStops -= prevStats.EarlyKStops
		gen.SetAttr("finals", len(finals)-before)
		setGenAttrs(gen, delta)
		bd.Generate += gen.End().Duration()
	}
	bd.Gen = genStatsOf(session)
	led.AddLayerWork(0, bd.Gen.VertexChecks+bd.Gen.PathChecks)
	tally.fill(bd, parent)

	search.SortMatches(finals)
	finals = search.Truncate(finals, e.opt.K)
	bd.FinalCount = len(finals)
	return finals, bd, context.Cause(ctx)
}

// genStatsOf reads the session's qualification counters when the
// Generation implements search.StatsReporter (all built-ins do).
func genStatsOf(s search.Generation) search.GenStats {
	if sr, ok := s.(search.StatsReporter); ok {
		return sr.Stats()
	}
	return search.GenStats{}
}

// setGenAttrs mirrors the Def 4.2/4.3 qualification counters onto a
// Generate span so stored traces carry them.
func setGenAttrs(sp *obs.Span, st search.GenStats) {
	if sp == nil {
		return
	}
	sp.SetAttr("vertex_checks", st.VertexChecks).
		SetAttr("vertex_qualified", st.VertexQualified).
		SetAttr("path_checks", st.PathChecks).
		SetAttr("path_qualified", st.PathQualified)
}

// fill copies the tally into the breakdown and mirrors the Prop 4.1 /
// isKey totals onto sp (the Specialize span in exhaustive mode, the query
// span in per-answer mode where Specialize spans are per generalized
// answer).
func (t *specTally) fill(bd *Breakdown, sp *obs.Span) {
	bd.Prop41Checked = t.prop41Checked
	bd.Prop41Filtered = t.prop41Filtered
	bd.IsKeySteps = t.isKeySteps
	bd.SpecFanout = t.fanout
	if sp != nil && t.prop41Checked > 0 {
		sp.SetAttr("prop41_checked", t.prop41Checked).
			SetAttr("prop41_filtered", t.prop41Filtered)
	}
}

// isRootless reports whether the algorithm's matches have no meaningful
// root (node-set semantics like r-clique); the evaluator then skips root
// specialization entirely.
func isRootless(a search.Algorithm) bool {
	r, ok := a.(search.Rootless)
	return ok && r.Rootless()
}

// Direct evaluates f on the data graph without the index (the baseline
// eval(G, Q, f)); the prepared data-graph index is cached like layers.
func (e *Evaluator) Direct(q []graph.Label, k int) ([]search.Match, error) {
	return e.DirectCtx(context.Background(), q, k)
}

// DirectCtx is Direct with tracing and cooperative cancellation: the whole
// baseline evaluation is one "Direct" span under the context's span, if
// any, and when ctx expires mid-search the matches found so far come back
// with the context's error (sound but possibly incomplete, like EvalCtx).
func (e *Evaluator) DirectCtx(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
	sp := obs.SpanFromContext(ctx).StartChild("Direct").SetAttr("k", k)
	defer sp.End()
	prep, err := e.preparedFor(0)
	if err != nil {
		return nil, err
	}
	ms, err := prep.SearchCtx(obs.ContextWithSpan(ctx, sp), q, k)
	sp.SetAttr("matches", len(ms))
	return ms, err
}

package core

import (
	"math/rand"
	"testing"

	"bigindex/internal/search/rclique"
)

// TestEarlyKReturnsAtMostK: EarlyK mode caps the result size and every
// returned match is a true answer (soundness is never traded, only
// completeness of the exact-top-k guarantee).
func TestEarlyKReturnsAtMostK(t *testing.T) {
	ds := smallDataset(600)
	idx := buildIndex(t, ds)
	rng := rand.New(rand.NewSource(4))
	algo := rclique.New(2)
	for trial := 0; trial < 6; trial++ {
		q := pickQuery(rng, ds, 2, 3)
		if q == nil {
			t.Skip("no frequent labels")
		}
		exact := NewEvaluator(idx, algo, DefaultEvalOptions())
		all, err := exact.Direct(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		truth := matchKeys(all)

		opt := DefaultEvalOptions()
		opt.K = 3
		opt.EarlyK = true
		opt.GenLimit = 10
		ev := NewEvaluator(idx, algo, opt)
		got, _, err := ev.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) > 3 {
			t.Fatalf("EarlyK returned %d > K", len(got))
		}
		for _, m := range got {
			if s, ok := truth[m.Key()]; !ok || s != m.Score {
				t.Fatalf("EarlyK emitted a non-answer: %s", m.Key())
			}
		}
	}
}

// TestGenBudgetBoundsWork: a tiny budget must not produce wrong answers —
// only fewer of them.
func TestGenBudgetBoundsWork(t *testing.T) {
	ds := smallDataset(601)
	idx := buildIndex(t, ds)
	rng := rand.New(rand.NewSource(5))
	algo := rclique.New(2)
	for trial := 0; trial < 6; trial++ {
		q := pickQuery(rng, ds, 2, 3)
		if q == nil {
			t.Skip("no frequent labels")
		}
		exact := NewEvaluator(idx, algo, DefaultEvalOptions())
		all, err := exact.Direct(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		truth := matchKeys(all)

		opt := DefaultEvalOptions()
		opt.K = 5
		opt.EarlyK = true
		opt.GenBudget = 10 // absurdly small
		ev := NewEvaluator(idx, algo, opt)
		got, _, err := ev.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range got {
			if s, ok := truth[m.Key()]; !ok || s != m.Score {
				t.Fatalf("budgeted run emitted a non-answer: %s", m.Key())
			}
		}
	}
}

// TestDegreeExponentStillExact: layer choice changes, answers must not.
func TestDegreeExponentStillExact(t *testing.T) {
	ds := smallDataset(602)
	idx := buildIndex(t, ds)
	rng := rand.New(rand.NewSource(6))
	algo := rclique.New(2)
	for trial := 0; trial < 4; trial++ {
		q := pickQuery(rng, ds, 2, 3)
		if q == nil {
			t.Skip("no frequent labels")
		}
		base := NewEvaluator(idx, algo, DefaultEvalOptions())
		want, err := base.Direct(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, exp := range []int{0, 1, 3} {
			opt := DefaultEvalOptions()
			opt.DegreeExponent = exp
			ev := NewEvaluator(idx, algo, opt)
			got, _, err := ev.Eval(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("exponent %d changed the answers: %d vs %d", exp, len(got), len(want))
			}
		}
	}
}

package core

import (
	"context"
	"fmt"
	"strings"

	"bigindex/internal/cost"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
)

// Plan describes how a query would be evaluated: the per-layer costs, the
// chosen layer, the generalized keywords, and their per-layer legality
// (Def. 4.1 Condition 1). It is purely informational — Explain runs the
// cost model but no search.
type Plan struct {
	Query      []graph.Label
	Layer      int
	LayerCosts []float64
	// Legal[m] is false when two query keywords merge at layer m.
	Legal []bool
	// Generalized[m] is Gen^m(Q).
	Generalized [][]graph.Label
}

// Explain computes the evaluation plan for q under the evaluator's options.
func (e *Evaluator) Explain(q []graph.Label) *Plan {
	return e.ExplainCtx(context.Background(), q)
}

// ExplainCtx is Explain under the context's span (one "Explain" span with
// the chosen layer as an attribute).
func (e *Evaluator) ExplainCtx(ctx context.Context, q []graph.Label) *Plan {
	sp := obs.SpanFromContext(ctx).StartChild("Explain")
	defer sp.End()
	p := e.explain(q)
	sp.SetAttr("layer", p.Layer)
	return p
}

func (e *Evaluator) explain(q []graph.Label) *Plan {
	p := &Plan{Query: append([]graph.Label(nil), q...)}
	if e.opt.ForcedLayer >= 0 {
		p.Layer = e.opt.ForcedLayer
	} else {
		p.Layer, p.LayerCosts = cost.OptimalLayerEx(e.idx, q, e.opt.Beta, e.opt.DegreeExponent)
	}
	seq := e.idx.Configs()
	distinct := make(map[graph.Label]bool, len(q))
	for _, l := range q {
		distinct[l] = true
	}
	for m := 0; m < e.idx.NumLayers(); m++ {
		p.Generalized = append(p.Generalized, seq.GenQuery(q, m))
		p.Legal = append(p.Legal, seq.DistinctAtLayer(q, m) == len(distinct))
	}
	return p
}

// Render formats the plan for humans, resolving labels through dict.
func (p *Plan) Render(dict *graph.Dict) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: evaluate at layer %d\n", p.Layer)
	for m := range p.Generalized {
		marker := " "
		if m == p.Layer {
			marker = "*"
		}
		legal := ""
		if !p.Legal[m] {
			legal = "  (illegal: keywords merge)"
		}
		costStr := ""
		if m < len(p.LayerCosts) && p.LayerCosts != nil {
			costStr = fmt.Sprintf(" cost=%.3f", p.LayerCosts[m])
		}
		names := make([]string, len(p.Generalized[m]))
		for i, l := range p.Generalized[m] {
			if n, ok := dict.NameOK(l); ok {
				names[i] = n
			} else {
				names[i] = fmt.Sprintf("#%d", l)
			}
		}
		fmt.Fprintf(&b, "%s L%d%s  Q=%s%s\n", marker, m, costStr, strings.Join(names, ", "), legal)
	}
	return b.String()
}

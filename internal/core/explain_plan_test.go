package core

import (
	"math"
	"math/rand"
	"testing"

	"bigindex/internal/cost"
	"bigindex/internal/datagen"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/search/bkws"
)

// TestExplainLayerCosts pins Plan.LayerCosts against the cost model it is
// supposed to expose: the plan's per-layer vector must equal a direct
// OptimalLayerEx call under the same β / degree exponent, layer 0 must cost
// exactly 1 (Formula 4 is a ratio against the data graph), and a forced
// layer must bypass the model entirely.
func TestExplainLayerCosts(t *testing.T) {
	ds := smallDataset(900)
	idx := buildIndex(t, ds)
	rng := rand.New(rand.NewSource(17))
	q := pickQuery(rng, ds, 2, 3)
	if q == nil {
		t.Skip("no frequent labels")
	}

	cases := []struct {
		name   string
		mut    func(*EvalOptions)
		forced bool
	}{
		{name: "default (degreeExp unset)", mut: func(o *EvalOptions) {}},
		{name: "degreeExp=3", mut: func(o *EvalOptions) { o.DegreeExponent = 3 }},
		{name: "beta=0.9", mut: func(o *EvalOptions) { o.Beta = 0.9 }},
		{name: "forced layer", mut: func(o *EvalOptions) { o.ForcedLayer = 1 }, forced: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := DefaultEvalOptions()
			tc.mut(&opt)
			ev := NewEvaluator(idx, bkws.New(3), opt)
			p := ev.Explain(q)

			if tc.forced {
				if p.Layer != opt.ForcedLayer || p.LayerCosts != nil {
					t.Fatalf("forced plan must skip the cost model: %+v", p)
				}
				return
			}
			wantLayer, wantCosts := cost.OptimalLayerEx(idx, q, opt.Beta, opt.DegreeExponent)
			if p.Layer != wantLayer {
				t.Fatalf("plan layer %d, cost model says %d", p.Layer, wantLayer)
			}
			if len(p.LayerCosts) != idx.NumLayers() {
				t.Fatalf("LayerCosts length %d, want %d", len(p.LayerCosts), idx.NumLayers())
			}
			for m, c := range p.LayerCosts {
				if math.Abs(c-wantCosts[m]) > 1e-12 {
					t.Fatalf("LayerCosts[%d] = %v, cost model says %v", m, c, wantCosts[m])
				}
			}
			// Layer 0 compares the data graph against itself: both Formula 4
			// terms are 1 regardless of β or the density correction.
			if math.Abs(p.LayerCosts[0]-1) > 1e-12 {
				t.Fatalf("layer-0 cost = %v, want 1", p.LayerCosts[0])
			}
		})
	}

	// The degree exponent must actually change the vector somewhere above
	// layer 0 — otherwise the option is dead and the table above proves
	// nothing.
	plain := NewEvaluator(idx, bkws.New(3), DefaultEvalOptions()).Explain(q)
	dense := DefaultEvalOptions()
	dense.DegreeExponent = 3
	corrected := NewEvaluator(idx, bkws.New(3), dense).Explain(q)
	changed := false
	for m := 1; m < len(plain.LayerCosts); m++ {
		if math.Abs(plain.LayerCosts[m]-corrected.LayerCosts[m]) > 1e-12 {
			changed = true
		}
	}
	if !changed && idx.NumLayers() > 1 {
		t.Fatal("degree exponent had no effect on any summary layer")
	}
}

// TestExplainSingleLayerIndex covers the degenerate index with no summary
// layers: the plan must still be well formed and pinned to layer 0.
func TestExplainSingleLayerIndex(t *testing.T) {
	ds := smallDataset(901)
	opt := DefaultBuildOptions()
	opt.MaxLayers = -1 // below the first summary layer: data graph only
	opt.Search.SampleCount = 40
	opt.Search.SampleRadius = 2
	idx, err := Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumLayers() != 1 {
		t.Fatalf("expected a single-layer index, got %d layers", idx.NumLayers())
	}
	rng := rand.New(rand.NewSource(23))
	q := pickQuery(rng, ds, 2, 3)
	if q == nil {
		t.Skip("no frequent labels")
	}
	p := NewEvaluator(idx, bkws.New(3), DefaultEvalOptions()).Explain(q)
	if p.Layer != 0 {
		t.Fatalf("single-layer plan picked layer %d", p.Layer)
	}
	if len(p.LayerCosts) != 1 || math.Abs(p.LayerCosts[0]-1) > 1e-12 {
		t.Fatalf("single-layer costs: %v", p.LayerCosts)
	}
	if len(p.Legal) != 1 || !p.Legal[0] || len(p.Generalized) != 1 {
		t.Fatalf("single-layer plan shape: %+v", p)
	}
}

// TestLedgerMonotoneInGraphSize evaluates the same (by name) frequent-term
// query against two generations of the same synthetic dataset, 4× apart in
// entity count, and checks the ledger's work units grow with the graph.
// Layer 0 is forced so the router cannot hide the larger graph behind a
// summary layer.
func TestLedgerMonotoneInGraphSize(t *testing.T) {
	gen := func(entities int) *datagen.Dataset {
		return datagen.Generate(datagen.Options{
			Name:          "mono",
			Entities:      entities,
			AvgOut:        2,
			Terms:         60,
			LeafTypes:     8,
			TypeBranching: 3,
			TypeHeight:    3,
			Relations:     16,
			Seed:          4242,
		})
	}
	small := gen(400)
	large := gen(1600)

	opt := DefaultEvalOptions()
	opt.ForcedLayer = 0
	work := func(ds *datagen.Dataset, q []graph.Label) int64 {
		t.Helper()
		idx := buildIndex(t, ds)
		ev := NewEvaluator(idx, bkws.New(3), opt)
		led := obs.NewLedger()
		ctx := obs.ContextWithLedger(t.Context(), led)
		if _, _, err := ev.EvalCtx(ctx, q); err != nil {
			t.Fatal(err)
		}
		return led.WorkUnits()
	}

	// Zipf term 0 is the most frequent label in every generation; the name
	// survives regeneration even though the label values may not.
	resolve := func(ds *datagen.Dataset) []graph.Label {
		t.Helper()
		q := make([]graph.Label, 2)
		for i, name := range []string{"mono/term/0", "mono/term/1"} {
			l := ds.Graph.Dict().Lookup(name)
			if l == graph.NoLabel {
				t.Fatalf("%s missing from dataset", name)
			}
			q[i] = l
		}
		return q
	}

	ws := work(small, resolve(small))
	wl := work(large, resolve(large))
	if ws <= 0 || wl <= 0 {
		t.Fatalf("ledger recorded no work: small=%d large=%d", ws, wl)
	}
	if ws >= wl {
		t.Fatalf("work units not monotone in graph size: small=%d large=%d", ws, wl)
	}
}

package core

import (
	"math/rand"
	"strings"
	"testing"

	"bigindex/internal/search/bkws"
)

func TestExplainMatchesEval(t *testing.T) {
	ds := smallDataset(800)
	idx := buildIndex(t, ds)
	rng := rand.New(rand.NewSource(8))
	ev := NewEvaluator(idx, bkws.New(3), DefaultEvalOptions())
	for trial := 0; trial < 6; trial++ {
		q := pickQuery(rng, ds, 2, 3)
		if q == nil {
			t.Skip("no frequent labels")
		}
		plan := ev.Explain(q)
		_, bd, err := ev.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Layer != bd.Layer {
			t.Fatalf("Explain picked layer %d, Eval used %d", plan.Layer, bd.Layer)
		}
		if len(plan.Generalized) != idx.NumLayers() || len(plan.Legal) != idx.NumLayers() {
			t.Fatalf("plan shape: %+v", plan)
		}
		if !plan.Legal[0] {
			t.Fatal("layer 0 must always be legal")
		}
		out := plan.Render(ds.Graph.Dict())
		if !strings.Contains(out, "plan: evaluate at layer") {
			t.Fatalf("render: %s", out)
		}
		if !strings.Contains(out, "*") {
			t.Fatal("render should mark the chosen layer")
		}
	}

	// Forced layer bypasses the cost model.
	forced := DefaultEvalOptions()
	forced.ForcedLayer = 1
	ev2 := NewEvaluator(idx, bkws.New(3), forced)
	q := pickQuery(rng, ds, 2, 3)
	if q == nil {
		t.Skip("no frequent labels")
	}
	if p := ev2.Explain(q); p.Layer != 1 || p.LayerCosts != nil {
		t.Fatalf("forced plan: %+v", p)
	}
}

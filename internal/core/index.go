// Package core implements the BiG-index itself (Def. 3.1): the hierarchy of
// generalized-and-summarized graphs G⁰…Gʰ produced by alternating Gen (label
// generalization against the ontology) and Bisim (bisimulation
// summarization), together with hierarchical query evaluation (Algo 2),
// answer specialization with candidate filtering (Prop 4.1), and answer
// generation (Algos 3/4 via the search plug-ins).
package core

import (
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"sync/atomic"
	"time"

	"bigindex/internal/bisim"
	"bigindex/internal/cost"
	"bigindex/internal/generalize"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/ontology"
)

// Layer is one level of the hierarchy. Layer 0 is the data graph and has no
// configuration or vertex maps; layer i (i >= 1) stores
// Gⁱ = Bisim(Gen(Gⁱ⁻¹, Cⁱ)) plus the up/down vertex maps between layer i−1
// and layer i.
type Layer struct {
	// Graph is Gⁱ.
	Graph *graph.Graph
	// Config is Cⁱ, the label-preserving configuration generalizing layer
	// i−1's labels (nil at layer 0).
	Config *generalize.Config
	// Up maps each vertex of layer i−1 to its supernode here: the χ step.
	Up []graph.V
	// Down maps each supernode to its members in layer i−1: Bisim⁻¹,
	// the hash-table reverse mapping of Sec. 2.
	Down [][]graph.V
}

// Index is a built BiG-index (𝔾, 𝒞).
type Index struct {
	ont    *ontology.Ontology
	layers []*Layer
	seq    generalize.Sequence
	// epoch counts structural updates (Refresh, ontology-mapping
	// removal). Result caches embed it in their keys, so invalidation
	// after a data-graph update is implicit: entries computed against a
	// previous version can never match a post-update lookup.
	epoch atomic.Uint64
}

// BuildOptions controls index construction.
type BuildOptions struct {
	// MaxLayers caps the number of summary layers h (the experiments build
	// up to 7). 0 means no cap: build until generalization is exhausted or
	// compression stalls.
	MaxLayers int
	// Search configures the per-layer greedy configuration search (Algo 1).
	Search cost.SearchOptions
	// MinGain stops construction when a new layer shrinks the previous one
	// by less than this fraction (the "compression potential diminishes"
	// termination of Sec. 3.1). Default 0.02.
	MinGain float64
	// Summarizer selects the summarization formalism (nil = maximal
	// backward bisimulation, the paper's choice). Any label-preserving
	// quotient is sound — the framework re-verifies answers on the data
	// graph — so alternatives like bisim.ComputeK (depth-bounded, faster
	// construction and coarser summaries) or bisim.ComputeForward plug in
	// directly; the paper lists such formalisms as future work.
	Summarizer func(*graph.Graph) *bisim.Result
	// Obs, when set, receives build gauges under bigindex_build_*:
	// per-layer config-search / Gen / Bisim wall times, layer sizes,
	// config rule counts, and sampling effort. Nil records nothing.
	Obs *obs.Registry
	// Logger, when set, receives one structured line per built layer and
	// a build summary. Nil logs nothing.
	Logger *slog.Logger
}

// DefaultBuildOptions mirrors the paper's default indexes (Sec. 6.1.2):
// permissive θ and Π so each layer applies one full generalization round,
// seven layers.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{
		MaxLayers: 7,
		Search:    cost.DefaultSearchOptions(),
		MinGain:   0.02,
	}
}

// ErrNoOntology is returned by Build when ont is nil.
var ErrNoOntology = errors.New("core: ontology is required to build a BiG-index")

// Build constructs the BiG-index of g against ont: repeatedly pick a
// configuration with Algo 1, generalize, summarize with bisimulation, and
// stack the result, stopping at MaxLayers, when no label can be generalized
// further, or when compression stalls (MinGain).
func Build(g *graph.Graph, ont *ontology.Ontology, opt BuildOptions) (*Index, error) {
	if ont == nil {
		return nil, ErrNoOntology
	}
	if opt.MinGain <= 0 {
		opt.MinGain = 0.02
	}
	idx := &Index{
		ont:    ont,
		layers: []*Layer{{Graph: g}},
	}

	// Build gauges (all no-ops when opt.Obs is nil): the per-layer Gen /
	// Bisim / config-search wall times are the construction-cost axes the
	// bisimulation-efficiency literature measures per iteration.
	phaseSec := opt.Obs.GaugeVec("bigindex_build_phase_seconds",
		"Per-layer build phase wall time in seconds.", "layer", "phase")
	layerVerts := opt.Obs.GaugeVec("bigindex_build_layer_vertices",
		"Vertices per built summary layer.", "layer")
	layerEdges := opt.Obs.GaugeVec("bigindex_build_layer_edges",
		"Edges per built summary layer.", "layer")
	cfgRules := opt.Obs.GaugeVec("bigindex_build_config_rules",
		"Generalization rules chosen by the layer's config search (Algo 1).", "layer")
	cfgSamples := opt.Obs.GaugeVec("bigindex_build_config_samples",
		"Sample subgraphs drawn by the layer's config search.", "layer")
	layersG := opt.Obs.Gauge("bigindex_build_layers",
		"Summary layers in the built index (h).")
	buildSec := opt.Obs.Gauge("bigindex_build_seconds",
		"Total index construction wall time in seconds.")

	buildStart := time.Now()
	top := g
	for layer := 1; opt.MaxLayers == 0 || layer <= opt.MaxLayers; layer++ {
		ls := strconv.Itoa(layer)
		searchOpt := opt.Search
		searchOpt.Seed += int64(layer) // fresh samples per layer, still deterministic
		t0 := time.Now()
		cfg, est := cost.GreedyConfig(top, ont, searchOpt)
		configDur := time.Since(t0)
		phaseSec.With(ls, "config").Set(configDur.Seconds())
		cfgRules.With(ls).Set(float64(cfg.Len()))
		if est != nil {
			cfgSamples.With(ls).Set(float64(est.NumSamples()))
		}
		if cfg.Len() == 0 {
			break // nothing left to generalize
		}
		if err := cfg.Validate(ont); err != nil {
			return nil, fmt.Errorf("core: layer %d configuration invalid: %w", layer, err)
		}
		t0 = time.Now()
		gen := cfg.Apply(top)
		genDur := time.Since(t0)
		phaseSec.With(ls, "gen").Set(genDur.Seconds())
		summarize := opt.Summarizer
		if summarize == nil {
			summarize = bisim.Compute
		}
		t0 = time.Now()
		res := summarize(gen)
		bisimDur := time.Since(t0)
		phaseSec.With(ls, "bisim").Set(bisimDur.Seconds())
		ratio := float64(res.Summary.Size()) / float64(max(1, top.Size()))
		if ratio > 1-opt.MinGain && layer > 1 {
			break // compression potential exhausted (Sec. 3.1 termination)
		}
		idx.layers = append(idx.layers, &Layer{
			Graph:  res.Summary,
			Config: cfg,
			Up:     res.Block,
			Down:   res.Members,
		})
		idx.seq = append(idx.seq, cfg)
		layerVerts.With(ls).Set(float64(res.Summary.NumVertices()))
		layerEdges.With(ls).Set(float64(res.Summary.NumEdges()))
		if opt.Logger != nil {
			opt.Logger.Info("layer built",
				"layer", layer,
				"vertices", res.Summary.NumVertices(),
				"edges", res.Summary.NumEdges(),
				"ratio", ratio,
				"config_rules", cfg.Len(),
				"config_ms", configDur.Milliseconds(),
				"gen_ms", genDur.Milliseconds(),
				"bisim_ms", bisimDur.Milliseconds())
		}
		top = res.Summary
	}
	layersG.Set(float64(len(idx.layers) - 1))
	buildSec.Set(time.Since(buildStart).Seconds())
	if opt.Logger != nil {
		opt.Logger.Info("index built",
			"layers", len(idx.layers)-1,
			"index_size", idx.TotalSize(),
			"elapsed_ms", time.Since(buildStart).Milliseconds())
	}
	return idx, nil
}

// NewFromLayers assembles an Index from explicitly provided layers — the
// constructor behind snapshot restore (internal/snapshot), where the
// layers were decoded from disk rather than built. Structural invariants
// are enforced so a decoder bug or a tampered file can never produce a
// silently wrong index:
//
//   - layer 0 is the data graph: no config, no vertex maps;
//   - every layer i >= 1 carries a config, an Up map covering exactly the
//     vertices of layer i-1, and a Down table that is Up's exact inverse
//     (every supernode has at least one member and every membership
//     round-trips);
//   - every layer shares layer 0's dictionary.
//
// When ont is non-nil each configuration is validated against it, as
// Build would have. The index starts at epoch 0; use RestoreEpoch to
// carry a persisted epoch forward.
func NewFromLayers(ont *ontology.Ontology, layers []*Layer) (*Index, error) {
	if len(layers) == 0 || layers[0] == nil || layers[0].Graph == nil {
		return nil, fmt.Errorf("core: NewFromLayers requires a data-graph layer")
	}
	if layers[0].Config != nil || layers[0].Up != nil || layers[0].Down != nil {
		return nil, fmt.Errorf("core: layer 0 must not carry a config or vertex maps")
	}
	idx := &Index{ont: ont, layers: layers}
	dict := layers[0].Graph.Dict()
	for i, l := range layers[1:] {
		li := i + 1
		if l == nil || l.Graph == nil || l.Config == nil {
			return nil, fmt.Errorf("core: layer %d is incomplete", li)
		}
		if l.Graph.Dict() != dict {
			return nil, fmt.Errorf("core: layer %d does not share the data graph dictionary", li)
		}
		if ont != nil {
			if err := l.Config.Validate(ont); err != nil {
				return nil, fmt.Errorf("core: layer %d config incompatible with ontology: %w", li, err)
			}
		}
		below, here := layers[li-1].Graph.NumVertices(), l.Graph.NumVertices()
		if len(l.Up) != below {
			return nil, fmt.Errorf("core: layer %d Up covers %d vertices, layer %d has %d", li, len(l.Up), li-1, below)
		}
		if len(l.Down) != here {
			return nil, fmt.Errorf("core: layer %d Down covers %d supernodes, layer has %d", li, len(l.Down), here)
		}
		members := 0
		seen := make([]bool, below)
		for s, row := range l.Down {
			if len(row) == 0 {
				return nil, fmt.Errorf("core: layer %d supernode %d has no members", li, s)
			}
			for _, v := range row {
				if int(v) >= below || int(l.Up[v]) != s || seen[v] {
					return nil, fmt.Errorf("core: layer %d Up/Down maps are not mutually inverse at supernode %d", li, s)
				}
				seen[v] = true
			}
			members += len(row)
		}
		if members != below {
			// Every Down entry round-tripped through Up exactly once, so a
			// count match means the rows partition layer i-1 exactly.
			return nil, fmt.Errorf("core: layer %d Down covers %d members, want %d", li, members, below)
		}
		idx.seq = append(idx.seq, l.Config)
	}
	return idx, nil
}

// NumLayers reports h+1 (data graph + summary layers). Implements
// cost.LayerGraphs.
func (x *Index) NumLayers() int { return len(x.layers) }

// LayerGraph returns Gᵐ. Implements cost.LayerGraphs.
func (x *Index) LayerGraph(m int) *graph.Graph { return x.layers[m].Graph }

// Configs returns [C¹, …, Cʰ]. Implements cost.LayerGraphs.
func (x *Index) Configs() generalize.Sequence { return x.seq }

// Ontology returns the ontology the index was built against.
func (x *Index) Ontology() *ontology.Ontology { return x.ont }

// Epoch identifies the version of the data the index currently serves:
// 0 at build/load time, incremented by every Refresh and by
// RemoveOntologyMapping when it drops layers. Query result caches key
// on it (internal/qcache), which makes their invalidation after an
// update implicit and sound — a stale entry's key can never equal a
// fresh query's key.
func (x *Index) Epoch() uint64 { return x.epoch.Load() }

// RestoreEpoch overwrites the epoch counter. It exists solely so snapshot
// restore can carry the persisted epoch across a process restart (keeping
// /stats monotonic and staleness accounting honest); never call it on an
// index that is serving traffic — epoch-keyed caches rely on the counter
// only ever increasing.
func (x *Index) RestoreEpoch(e uint64) { x.epoch.Store(e) }

// Layer returns layer m (read-only by convention).
func (x *Index) Layer(m int) *Layer { return x.layers[m] }

// Data returns G⁰.
func (x *Index) Data() *graph.Graph { return x.layers[0].Graph }

// ChiUp lifts a vertex of layer `from` to its supernode at layer `to`
// (from <= to): the composed map χᵗᵒ∘…∘χᶠʳᵒᵐ⁺¹ — the paper's χᵐ(u).
func (x *Index) ChiUp(v graph.V, from, to int) graph.V {
	for m := from + 1; m <= to; m++ {
		v = x.layers[m].Up[v]
	}
	return v
}

// SpecializeStep expands supernodes of layer m to their members at layer
// m−1 (Spec of Sec. 4.2, one step). keep filters the members (pass nil to
// keep all); it implements the candidate filtering of Prop 4.1 when given a
// label test.
func (x *Index) SpecializeStep(supernodes []graph.V, m int, keep func(graph.V) bool) []graph.V {
	out, _ := x.specializeStepCounted(supernodes, m, keep)
	return out
}

// specializeStepCounted is SpecializeStep reporting how many distinct
// members were examined before the keep filter — examined−len(out) is the
// Prop 4.1 pruning at this step.
func (x *Index) specializeStepCounted(supernodes []graph.V, m int, keep func(graph.V) bool) ([]graph.V, int) {
	down := x.layers[m].Down
	var out []graph.V
	examined := 0
	seen := make(map[graph.V]bool)
	for _, s := range supernodes {
		for _, v := range down[s] {
			if seen[v] {
				continue
			}
			seen[v] = true
			examined++
			if keep == nil || keep(v) {
				out = append(out, v)
			}
		}
	}
	return out, examined
}

// specTally accumulates the paper-phase specialization counters of one
// query: Prop 4.1 filter work, isKey early-filter steps (Sec. 4.3.1), and
// the candidate fan-out of each layer-descent step. Nil disables counting.
type specTally struct {
	prop41Checked  int   // candidates examined by the Prop 4.1 label filter
	prop41Filtered int   // … dropped by it
	isKeySteps     int   // label-filtered Spec steps above layer 1
	fanout         []int // candidates emerging from each descent step
}

// SpecializeRoot expands a layer-m supernode all the way to data vertices
// without label filtering (answer roots can carry any label).
func (x *Index) SpecializeRoot(s graph.V, m int) []graph.V {
	set := []graph.V{s}
	for j := m; j >= 1; j-- {
		set = x.SpecializeStep(set, j, nil)
	}
	return set
}

// SpecializeKeyword expands a layer-m supernode matched to query keyword kw
// down to data vertices. With early filtering (the isKey optimization of
// Sec. 4.3.1) members are pruned at every layer j unless their label equals
// Gen^j(kw) (Prop 4.1); without it, pruning happens only at layer 0. Both
// modes return the same set — early filtering only shrinks intermediates.
func (x *Index) SpecializeKeyword(s graph.V, m int, kw graph.Label, early bool) []graph.V {
	set := []graph.V{s}
	for j := m; j >= 1; j-- {
		want := x.seq.GenLabel(kw, j-1)
		lg := x.layers[j-1].Graph
		var keep func(graph.V) bool
		if early || j == 1 {
			keep = func(v graph.V) bool { return lg.Label(v) == want }
		}
		set = x.SpecializeStep(set, j, keep)
	}
	return set
}

// specializeRootSet expands a set of layer-m supernodes to data vertices
// without label filtering, deduplicating at every level (batch form of
// SpecializeRoot used by exhaustive evaluation). Each Spec step from layer
// j to j−1 is one child span of sp (nil sp disables tracing).
func (x *Index) specializeRootSet(supers []graph.V, m int, sp *obs.Span, tally *specTally, led *obs.Ledger) []graph.V {
	set := dedupVs(supers)
	for j := m; j >= 1; j-- {
		c := sp.StartChild("Spec/L"+strconv.Itoa(j-1)).SetAttr("role", "root").SetAttr("in", len(set))
		var examined int
		set, examined = x.specializeStepCounted(set, j, nil)
		led.AddLayerWork(j-1, int64(examined))
		c.SetAttr("out", len(set)).End()
		if tally != nil {
			tally.fanout = append(tally.fanout, len(set))
		}
	}
	return set
}

// specializeKeywordSet is the batch form of SpecializeKeyword; the
// per-layer spans record how much the Prop 4.1 label filter prunes (the
// in→out contraction at each step).
func (x *Index) specializeKeywordSet(supers []graph.V, m int, kw graph.Label, early bool, sp *obs.Span, tally *specTally, led *obs.Ledger) []graph.V {
	set := dedupVs(supers)
	for j := m; j >= 1; j-- {
		want := x.seq.GenLabel(kw, j-1)
		lg := x.layers[j-1].Graph
		var keep func(graph.V) bool
		if early || j == 1 {
			keep = func(v graph.V) bool { return lg.Label(v) == want }
		}
		c := sp.StartChild("Spec/L"+strconv.Itoa(j-1)).
			SetAttr("role", "keyword").SetAttr("keyword", int(kw)).
			SetAttr("filtered", keep != nil).SetAttr("in", len(set))
		var examined int
		set, examined = x.specializeStepCounted(set, j, keep)
		led.AddLayerWork(j-1, int64(examined))
		c.SetAttr("out", len(set)).End()
		if tally != nil {
			tally.fanout = append(tally.fanout, len(set))
			if keep != nil {
				tally.prop41Checked += examined
				tally.prop41Filtered += examined - len(set)
				if j > 1 {
					tally.isKeySteps++
				}
			}
		}
	}
	return set
}

func dedupVs(vs []graph.V) []graph.V {
	seen := make(map[graph.V]bool, len(vs))
	out := make([]graph.V, 0, len(vs))
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Stats summarizes the index for reports: per-layer |V|, |E|, and size
// ratio to the data graph (Table 3 / Fig. 9).
type Stats struct {
	Layers []LayerStats
}

// LayerStats is one row of Stats.
type LayerStats struct {
	Layer      int
	Vertices   int
	Edges      int
	Size       int
	Ratio      float64 // size / data graph size
	ConfigSize int
}

// Stats computes index statistics.
func (x *Index) Stats() Stats {
	base := float64(x.layers[0].Graph.Size())
	var st Stats
	for i, l := range x.layers {
		ls := LayerStats{
			Layer:    i,
			Vertices: l.Graph.NumVertices(),
			Edges:    l.Graph.NumEdges(),
			Size:     l.Graph.Size(),
			Ratio:    float64(l.Graph.Size()) / base,
		}
		if l.Config != nil {
			ls.ConfigSize = l.Config.Len()
		}
		st.Layers = append(st.Layers, ls)
	}
	return st
}

// TotalSize reports the BiG-index size: the sum of the summary graph sizes
// (Sec. 6, Exp-3: "The BiG-index size is simply the sum of the summary
// graphs in the index").
func (x *Index) TotalSize() int {
	total := 0
	for _, l := range x.layers[1:] {
		total += l.Graph.Size()
	}
	return total
}

// RemoveOntologyMapping handles the ontology-update case of Sec. 3.2: when
// the supertype relationship (sub → super) is removed from the ontology,
// every layer whose configuration used it — and every layer above it — is
// dropped, so no configuration in the remaining index involves the removed
// relationship. Returns the number of layers dropped. (New ontology edges
// never invalidate an index; the paper rebuilds periodically for
// efficiency, which callers do via Build.)
func (x *Index) RemoveOntologyMapping(sub, super graph.Label) int {
	for i, l := range x.layers[1:] {
		if l.Config.Map(sub) == super && sub != super {
			dropped := len(x.layers) - (i + 1)
			x.layers = x.layers[:i+1]
			x.seq = x.seq[:i]
			x.epoch.Add(1)
			return dropped
		}
	}
	return 0
}

package core

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"bigindex/internal/generalize"
	"bigindex/internal/graph"
	"bigindex/internal/ontology"
)

// Binary index format (little endian):
//
//	magic "BIGX" | version u32
//	dictionary (graph.WriteDict)
//	numLayers u32
//	layer 0: graph body
//	layer i >= 1: config (count u32, (from,to) u32 pairs)
//	              Up map (len u32, u32 per vertex of layer i-1)
//	              graph body
//
// Down tables are rebuilt from Up on load. The ontology is not embedded —
// it is an independent artifact the caller already has; Load takes it to
// re-bind the index (and validates the configurations against it).

const (
	ioMagic   = "BIGX"
	ioVersion = 1
)

// ErrBadIndexFormat is returned when decoding input that is not a
// serialized BiG-index.
var ErrBadIndexFormat = errors.New("core: bad serialized index format")

// Save serializes the index to w.
func (x *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ioMagic); err != nil {
		return err
	}
	if err := writeU32(bw, ioVersion); err != nil {
		return err
	}
	if err := graph.WriteDict(bw, x.layers[0].Graph.Dict()); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(x.layers))); err != nil {
		return err
	}
	if err := x.layers[0].Graph.WriteBody(bw); err != nil {
		return err
	}
	for _, l := range x.layers[1:] {
		ms := l.Config.Mappings()
		if err := writeU32(bw, uint32(len(ms))); err != nil {
			return err
		}
		for _, m := range ms {
			if err := writeU32(bw, uint32(m.From)); err != nil {
				return err
			}
			if err := writeU32(bw, uint32(m.To)); err != nil {
				return err
			}
		}
		if err := writeU32(bw, uint32(len(l.Up))); err != nil {
			return err
		}
		for _, s := range l.Up {
			if err := writeU32(bw, uint32(s)); err != nil {
				return err
			}
		}
		if err := l.Graph.WriteBody(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load deserializes an index written by Save and binds it to ont (which
// must be the ontology the index was built against, or a compatible
// superset; every stored configuration is re-validated).
//
// Note: the loaded index carries its own dictionary; queries must intern
// keywords through LoadedDict (Index.Data().Dict()).
func Load(r io.Reader, ont *ontology.Ontology) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if string(magic) != ioMagic {
		return nil, ErrBadIndexFormat
	}
	ver, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if ver != ioVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadIndexFormat, ver)
	}
	dict, err := graph.ReadDict(br)
	if err != nil {
		return nil, err
	}
	nLayers, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if nLayers == 0 || nLayers > 64 {
		return nil, fmt.Errorf("%w: %d layers", ErrBadIndexFormat, nLayers)
	}

	g0, err := graph.ReadBody(br, dict)
	if err != nil {
		return nil, err
	}
	idx := &Index{ont: ont, layers: []*Layer{{Graph: g0}}}
	prev := g0
	for li := uint32(1); li < nLayers; li++ {
		nMap, err := readU32(br)
		if err != nil {
			return nil, err
		}
		ms := make([]generalize.Mapping, nMap)
		for i := range ms {
			from, err := readU32(br)
			if err != nil {
				return nil, err
			}
			to, err := readU32(br)
			if err != nil {
				return nil, err
			}
			ms[i] = generalize.Mapping{From: graph.Label(from), To: graph.Label(to)}
		}
		cfg, err := generalize.NewConfig(ms)
		if err != nil {
			return nil, fmt.Errorf("%w: layer %d: %v", ErrBadIndexFormat, li, err)
		}
		if ont != nil {
			if err := cfg.Validate(ont); err != nil {
				return nil, fmt.Errorf("core: layer %d config incompatible with ontology: %w", li, err)
			}
		}

		nUp, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if int(nUp) != prev.NumVertices() {
			return nil, fmt.Errorf("%w: layer %d Up size %d != %d", ErrBadIndexFormat, li, nUp, prev.NumVertices())
		}
		up := make([]graph.V, nUp)
		for i := range up {
			s, err := readU32(br)
			if err != nil {
				return nil, err
			}
			up[i] = graph.V(s)
		}
		lg, err := graph.ReadBody(br, dict)
		if err != nil {
			return nil, err
		}
		down := make([][]graph.V, lg.NumVertices())
		for v, s := range up {
			if int(s) >= lg.NumVertices() {
				return nil, fmt.Errorf("%w: layer %d Up[%d]=%d out of range", ErrBadIndexFormat, li, v, s)
			}
			down[s] = append(down[s], graph.V(v))
		}
		idx.layers = append(idx.layers, &Layer{Graph: lg, Config: cfg, Up: up, Down: down})
		idx.seq = append(idx.seq, cfg)
		prev = lg
	}
	return idx, nil
}

func writeU32(w io.Writer, x uint32) error {
	var buf [4]byte
	buf[0] = byte(x)
	buf[1] = byte(x >> 8)
	buf[2] = byte(x >> 16)
	buf[3] = byte(x >> 24)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("core: reading u32: %w", err)
	}
	return uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24, nil
}

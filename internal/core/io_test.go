package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"bigindex/internal/graph"
	"bigindex/internal/ontology"
	"bigindex/internal/search/bkws"
)

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	ds := smallDataset(200)
	idx := buildIndex(t, ds)

	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf, ds.Ont)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	if loaded.NumLayers() != idx.NumLayers() {
		t.Fatalf("layers: %d vs %d", loaded.NumLayers(), idx.NumLayers())
	}
	for m := 0; m < idx.NumLayers(); m++ {
		a, b := idx.LayerGraph(m), loaded.LayerGraph(m)
		if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("layer %d size mismatch", m)
		}
		for v := 0; v < a.NumVertices(); v++ {
			if a.Dict().Name(a.Label(graph.V(v))) != b.Dict().Name(b.Label(graph.V(v))) {
				t.Fatalf("layer %d label mismatch at %d", m, v)
			}
		}
	}
	// Configurations and Up/Down survive.
	for m := 1; m < idx.NumLayers(); m++ {
		if idx.Layer(m).Config.Len() != loaded.Layer(m).Config.Len() {
			t.Fatalf("layer %d config size mismatch", m)
		}
		for v, s := range idx.Layer(m).Up {
			if loaded.Layer(m).Up[v] != s {
				t.Fatalf("layer %d Up[%d] mismatch", m, v)
			}
		}
	}

	// The loaded index answers queries identically.
	q := pickQuery(rand.New(rand.NewSource(1)), ds, 2, 3)
	if q == nil {
		t.Skip("no frequent labels")
	}
	evA := NewEvaluator(idx, bkws.New(3), DefaultEvalOptions())
	evB := NewEvaluator(loaded, bkws.New(3), DefaultEvalOptions())
	a, _, err := evA.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := evB.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("answers diverge after load: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("answer %d diverges", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("definitely not an index"), nil); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader(""), nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLoadValidatesConfigs(t *testing.T) {
	ds := smallDataset(201)
	idx := buildIndex(t, ds)
	if idx.NumLayers() < 2 {
		t.Skip("need a summary layer")
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// An ontology without the index's supertype edges must be rejected.
	if _, err := Load(bytes.NewReader(buf.Bytes()), ontology.New(nil)); err == nil {
		t.Fatal("incompatible ontology accepted")
	}
	// nil ontology skips validation.
	if _, err := Load(bytes.NewReader(buf.Bytes()), nil); err != nil {
		t.Fatalf("nil-ontology load failed: %v", err)
	}
}

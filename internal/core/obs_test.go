package core

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"math/rand"
	"strings"
	"testing"

	"bigindex/internal/obs"
	"bigindex/internal/search/blinks"
)

// TestEvalCtxSpanTree checks that hierarchical evaluation renders the
// Breakdown phases as a nested span tree: Select, Search, Specialize (with
// per-layer Spec children showing the Prop 4.1 pruning), Generate.
func TestEvalCtxSpanTree(t *testing.T) {
	ds := smallDataset(301)
	idx := buildIndex(t, ds)
	ev := NewEvaluator(idx, blinks.New(blinks.Options{DMax: 3, BlockSize: 64}), DefaultEvalOptions())

	rng := rand.New(rand.NewSource(7))
	q := pickQuery(rng, ds, 2, 3)
	if q == nil {
		t.Skip("no query available")
	}

	tr := obs.NewTrace("eval-test")
	ctx := obs.ContextWithSpan(context.Background(), tr.Root())
	_, bd, err := ev.EvalCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	tr.Root().End()

	js, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var root obs.SpanJSON
	if err := json.Unmarshal(js, &root); err != nil {
		t.Fatal(err)
	}
	phases := map[string]obs.SpanJSON{}
	for _, c := range root.Children {
		phases[c.Name] = c
	}
	for _, want := range []string{"Select", "Search"} {
		if _, ok := phases[want]; !ok {
			t.Fatalf("span %q missing; got %v", want, names(root.Children))
		}
	}
	if bd.Layer > 0 {
		for _, want := range []string{"Specialize", "Generate"} {
			if _, ok := phases[want]; !ok {
				t.Fatalf("span %q missing at layer %d; got %v", want, bd.Layer, names(root.Children))
			}
		}
		spec := phases["Specialize"]
		if len(spec.Children) == 0 {
			t.Fatal("Specialize has no per-layer Spec children")
		}
		for _, c := range spec.Children {
			if !strings.HasPrefix(c.Name, "Spec/L") {
				t.Fatalf("unexpected Specialize child %q", c.Name)
			}
			if _, ok := c.Attrs["in"]; !ok {
				t.Fatalf("Spec child missing in/out pruning attrs: %+v", c)
			}
		}
	}
	if phases["Select"].Attrs["layer"] != float64(bd.Layer) {
		t.Fatalf("Select layer attr %v != breakdown layer %d", phases["Select"].Attrs["layer"], bd.Layer)
	}
	// Breakdown timings are span-derived and must be populated.
	if bd.Select <= 0 || bd.Search <= 0 {
		t.Fatalf("span-derived breakdown timings empty: %+v", bd)
	}
}

// TestEvalWithoutContextStillTimes guards the detached-trace path: plain
// Eval (bench, CLI) must keep producing a populated Breakdown.
func TestEvalWithoutContextStillTimes(t *testing.T) {
	ds := smallDataset(302)
	idx := buildIndex(t, ds)
	ev := NewEvaluator(idx, blinks.New(blinks.Options{DMax: 3, BlockSize: 64}), DefaultEvalOptions())
	rng := rand.New(rand.NewSource(9))
	q := pickQuery(rng, ds, 2, 3)
	if q == nil {
		t.Skip("no query available")
	}
	_, bd, err := ev.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Select <= 0 || bd.Search <= 0 {
		t.Fatalf("breakdown not timed without a context span: %+v", bd)
	}
}

// TestBuildObservability checks the build-path gauges and the structured
// build log.
func TestBuildObservability(t *testing.T) {
	ds := smallDataset(303)
	var logBuf bytes.Buffer
	opt := DefaultBuildOptions()
	opt.Search.SampleCount = 40
	opt.Search.SampleRadius = 2
	opt.Obs = obs.NewRegistry()
	opt.Logger = slog.New(slog.NewJSONHandler(&logBuf, nil))
	idx, err := Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		t.Fatal(err)
	}

	var expo strings.Builder
	opt.Obs.WritePrometheus(&expo)
	out := expo.String()
	for _, want := range []string{
		`bigindex_build_phase_seconds{layer="1",phase="bisim"}`,
		`bigindex_build_phase_seconds{layer="1",phase="gen"}`,
		`bigindex_build_phase_seconds{layer="1",phase="config"}`,
		`bigindex_build_layer_vertices{layer="1"}`,
		`bigindex_build_config_rules{layer="1"}`,
		`bigindex_build_config_samples{layer="1"}`,
		"bigindex_build_layers",
		"bigindex_build_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("build metrics missing %q:\n%s", want, out)
		}
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected per-layer + summary log lines, got %d", len(lines))
	}
	var summary map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &summary); err != nil {
		t.Fatal(err)
	}
	if summary["msg"] != "index built" || summary["layers"] != float64(idx.NumLayers()-1) {
		t.Fatalf("bad build summary log: %v", summary)
	}
}

// TestBreakdownPaperPhaseCounters pins the layer above G⁰ and checks the
// Breakdown's paper-phase counters: Prop 4.1 candidate accounting, the
// per-step specialization fan-out, and the Def 4.2/4.3 qualification
// counts from the generation session.
func TestBreakdownPaperPhaseCounters(t *testing.T) {
	ds := smallDataset(304)
	idx := buildIndex(t, ds)
	if idx.NumLayers() < 2 {
		t.Skip("single-layer index")
	}
	ev := NewEvaluator(idx, blinks.New(blinks.Options{DMax: 3, BlockSize: 64}), DefaultEvalOptions())
	rng := rand.New(rand.NewSource(11))

	var bd *Breakdown
	for try := 0; try < 20; try++ {
		q := pickQuery(rng, ds, 2, 3)
		if q == nil {
			t.Skip("no query available")
		}
		_, b, err := ev.EvalLayer(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if b.GenAnswers > 0 {
			bd = b
			break
		}
	}
	if bd == nil {
		t.Skip("no query produced generalized answers")
	}

	if bd.LayersAvail != idx.NumLayers() {
		t.Fatalf("LayersAvail = %d, want %d", bd.LayersAvail, idx.NumLayers())
	}
	if bd.Prop41Checked <= 0 {
		t.Fatalf("Prop41Checked = %d, want > 0 (keyword specialization ran)", bd.Prop41Checked)
	}
	if bd.Prop41Filtered < 0 || bd.Prop41Filtered > bd.Prop41Checked {
		t.Fatalf("Prop41Filtered = %d out of range [0, %d]", bd.Prop41Filtered, bd.Prop41Checked)
	}
	if len(bd.SpecFanout) == 0 {
		t.Fatal("SpecFanout empty: no specialization steps recorded")
	}
	for _, f := range bd.SpecFanout {
		if f < 0 {
			t.Fatalf("negative fan-out %d", f)
		}
	}
	g := bd.Gen
	if g.VertexChecks < g.VertexQualified || g.PathChecks < g.PathQualified {
		t.Fatalf("qualified exceeds checked: %+v", g)
	}
	if g.VertexChecks == 0 && g.PathChecks == 0 && bd.FinalCount > 0 {
		t.Fatalf("finals produced with zero Def 4.2/4.3 checks: %+v", bd)
	}
}

func names(spans []obs.SpanJSON) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

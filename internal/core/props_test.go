package core

import (
	"math/rand"
	"testing"

	"bigindex/internal/graph"
	"bigindex/internal/search/blinks"
)

// TestProp51ReachabilityPreserved: reach(u, v, G) implies
// reach(χᵐ(u), χᵐ(v), Gᵐ) for every layer (Prop 5.1).
func TestProp51ReachabilityPreserved(t *testing.T) {
	ds := smallDataset(500)
	idx := buildIndex(t, ds)
	g := idx.Data()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		u := graph.V(rng.Intn(g.NumVertices()))
		v := graph.V(rng.Intn(g.NumVertices()))
		if !g.Reach(u, v, 6, graph.Forward) {
			continue
		}
		for m := 1; m < idx.NumLayers(); m++ {
			su := idx.ChiUp(u, 0, m)
			sv := idx.ChiUp(v, 0, m)
			if !idx.LayerGraph(m).Reach(su, sv, 6, graph.Forward) {
				t.Fatalf("layer %d: reach(%d,%d) in G but not reach(χ%d, χ%d)", m, u, v, su, sv)
			}
		}
	}
}

// TestProp52DistanceNonIncreasing: dist(χᵐu, χᵐv, Gᵐ) <= dist(u, v, G)
// (Prop 5.2).
func TestProp52DistanceNonIncreasing(t *testing.T) {
	ds := smallDataset(501)
	idx := buildIndex(t, ds)
	g := idx.Data()
	rng := rand.New(rand.NewSource(2))
	checked := 0
	for trial := 0; trial < 400 && checked < 120; trial++ {
		u := graph.V(rng.Intn(g.NumVertices()))
		v := graph.V(rng.Intn(g.NumVertices()))
		d := g.Dist(u, v, 5, graph.Forward)
		if d < 0 {
			continue
		}
		checked++
		for m := 1; m < idx.NumLayers(); m++ {
			dm := idx.LayerGraph(m).Dist(idx.ChiUp(u, 0, m), idx.ChiUp(v, 0, m), 5, graph.Forward)
			if dm < 0 || dm > d {
				t.Fatalf("layer %d: dist %d > data dist %d (u=%d v=%d)", m, dm, d, u, v)
			}
		}
	}
	if checked < 20 {
		t.Fatalf("too few reachable pairs: %d", checked)
	}
}

// TestProp53RankPreservation: for the distance-based score, the ranking of
// generalized answers by their summary scores is consistent with the final
// data-graph scores — summary scores lower-bound final scores, so the
// boosted top-1 final score equals the direct top-1 (Prop 5.3's use).
func TestProp53RankPreservation(t *testing.T) {
	ds := smallDataset(502)
	idx := buildIndex(t, ds)
	rng := rand.New(rand.NewSource(3))
	algo := blinks.New(blinks.Options{DMax: 3, BlockSize: 16})
	ev := NewEvaluator(idx, algo, DefaultEvalOptions())
	for trial := 0; trial < 10; trial++ {
		q := pickQuery(rng, ds, 2, 3)
		if q == nil {
			t.Skip("no frequent labels")
		}
		direct, err := ev.Direct(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(direct) == 0 {
			continue
		}
		for m := 1; m < idx.NumLayers(); m++ {
			prep, err := algo.Prepare(idx.LayerGraph(m))
			if err != nil {
				t.Fatal(err)
			}
			qm := idx.Configs().GenQuery(q, m)
			gens, err := prep.Search(qm, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(gens) == 0 {
				t.Fatalf("layer %d: no generalized answers but %d direct ones (Lemma 4.1)", m, len(direct))
			}
			// Every direct answer's root must appear generalized, with a
			// summary score that lower-bounds the final score.
			byRoot := map[graph.V]float64{}
			for _, ga := range gens {
				byRoot[ga.Root] = ga.Score
			}
			for _, d := range direct {
				s := idx.ChiUp(d.Root, 0, m)
				gs, ok := byRoot[s]
				if !ok {
					t.Fatalf("layer %d: direct root %d has no generalized answer", m, d.Root)
				}
				if gs > d.Score {
					t.Fatalf("layer %d: generalized score %v exceeds final %v", m, gs, d.Score)
				}
			}
		}
	}
}

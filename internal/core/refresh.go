package core

import (
	"fmt"

	"bigindex/internal/bisim"
	"bigindex/internal/graph"
)

// Refresh rebuilds the index hierarchy over a new version of the data graph
// while keeping the stored configurations — the data-update maintenance
// strategy of Sec. 3.2: label-to-supertype decisions rarely change when
// edges and vertices do, so only the (cheap) Gen + Bisim pipeline reruns,
// skipping Algorithm 1's configuration search entirely.
//
// The new graph must use the same dictionary as the old one (labels keep
// their meaning). Layers whose configuration no longer generalizes anything
// present in the evolved graph are dropped from the top.
func (x *Index) Refresh(g *graph.Graph) error {
	if g.Dict() != x.layers[0].Graph.Dict() {
		return fmt.Errorf("core: Refresh requires the original dictionary")
	}
	newLayers := []*Layer{{Graph: g}}
	top := g
	for _, old := range x.layers[1:] {
		cfg := old.Config
		// Skip (and stop at) layers whose configuration touches nothing in
		// the evolved graph: further layers were built on top of them.
		touches := false
		for _, l := range top.DistinctLabels() {
			if cfg.InDomain(l) {
				touches = true
				break
			}
		}
		if !touches {
			break
		}
		res := bisim.Compute(cfg.Apply(top))
		newLayers = append(newLayers, &Layer{
			Graph:  res.Summary,
			Config: cfg,
			Up:     res.Block,
			Down:   res.Members,
		})
		top = res.Summary
	}
	x.layers = newLayers
	x.seq = x.seq[:len(newLayers)-1]
	// Bump the version last: a cache keying on the new epoch must only
	// ever observe the refreshed hierarchy.
	x.epoch.Add(1)
	return nil
}

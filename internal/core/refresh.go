package core

import (
	"fmt"

	"bigindex/internal/bisim"
	"bigindex/internal/generalize"
	"bigindex/internal/graph"
)

// Refreshed rebuilds the index hierarchy over a new version of the data
// graph while keeping the stored configurations — the data-update
// maintenance strategy of Sec. 3.2: label-to-supertype decisions rarely
// change when edges and vertices do, so only the (cheap) Gen + Bisim
// pipeline reruns, skipping Algorithm 1's configuration search entirely.
//
// The receiver is left untouched, so Refreshed is safe to call while x
// concurrently serves queries: the caller swaps the returned index in
// atomically once it is complete (the server's hot reload). The new
// index's epoch is x's epoch + 1, so epoch-keyed result caches can never
// answer post-swap traffic from pre-swap entries.
//
// The new graph must use the same dictionary as the old one (labels keep
// their meaning; see graph.Rebase for bringing a freshly read graph onto
// it). Layers whose configuration no longer generalizes anything present
// in the evolved graph are dropped from the top.
func (x *Index) Refreshed(g *graph.Graph) (*Index, error) {
	if g.Dict() != x.layers[0].Graph.Dict() {
		return nil, fmt.Errorf("core: Refresh requires the original dictionary")
	}
	newLayers := []*Layer{{Graph: g}}
	top := g
	for _, old := range x.layers[1:] {
		cfg := old.Config
		// Skip (and stop at) layers whose configuration touches nothing in
		// the evolved graph: further layers were built on top of them.
		touches := false
		for _, l := range top.DistinctLabels() {
			if cfg.InDomain(l) {
				touches = true
				break
			}
		}
		if !touches {
			break
		}
		res := bisim.Compute(cfg.Apply(top))
		newLayers = append(newLayers, &Layer{
			Graph:  res.Summary,
			Config: cfg,
			Up:     res.Block,
			Down:   res.Members,
		})
		top = res.Summary
	}
	n := &Index{
		ont:    x.ont,
		layers: newLayers,
		seq:    append(generalize.Sequence(nil), x.seq[:len(newLayers)-1]...),
	}
	n.epoch.Store(x.epoch.Load() + 1)
	return n, nil
}

// Refresh is the in-place form of Refreshed: it replaces the receiver's
// hierarchy and bumps its epoch. It must not race with in-flight queries
// on x — concurrent serving uses Refreshed plus an atomic swap instead.
func (x *Index) Refresh(g *graph.Graph) error {
	n, err := x.Refreshed(g)
	if err != nil {
		return err
	}
	x.layers = n.layers
	x.seq = n.seq
	// Bump the version last: a cache keying on the new epoch must only
	// ever observe the refreshed hierarchy.
	x.epoch.Add(1)
	return nil
}

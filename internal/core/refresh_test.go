package core

import (
	"math/rand"
	"testing"

	"bigindex/internal/graph"
	"bigindex/internal/search/bkws"
)

func TestRefreshMatchesRebuild(t *testing.T) {
	ds := smallDataset(300)
	idx := buildIndex(t, ds)
	layersBefore := idx.NumLayers()
	if layersBefore < 2 {
		t.Skip("need summary layers")
	}

	// Evolve the graph: add vertices and edges using the same dictionary.
	b := graph.NewBuilder(ds.Graph.Dict())
	for v := 0; v < ds.Graph.NumVertices(); v++ {
		b.AddVertexLabel(ds.Graph.Label(graph.V(v)))
	}
	for _, e := range ds.Graph.Edges() {
		b.AddEdge(e.From, e.To)
	}
	rng := rand.New(rand.NewSource(5))
	labels := ds.Graph.DistinctLabels()
	for i := 0; i < 30; i++ {
		nv := b.AddVertexLabel(labels[rng.Intn(len(labels))])
		b.AddEdge(nv, graph.V(rng.Intn(ds.Graph.NumVertices())))
	}
	g2 := b.Build()

	if err := idx.Refresh(g2); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if idx.Data() != g2 {
		t.Fatal("Refresh did not swap the data graph")
	}

	// The refreshed index must answer queries identically to direct eval on
	// the new graph.
	q := pickQuery(rand.New(rand.NewSource(6)), ds, 2, 3)
	if q == nil {
		t.Skip("no frequent labels")
	}
	ev := NewEvaluator(idx, bkws.New(3), DefaultEvalOptions())
	direct, err := ev.Direct(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	boosted, _, err := ev.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(boosted) {
		t.Fatalf("after Refresh: %d direct vs %d boosted", len(direct), len(boosted))
	}
	dm, bm := matchKeys(direct), matchKeys(boosted)
	for k, s := range dm {
		if bs, ok := bm[k]; !ok || bs != s {
			t.Fatalf("after Refresh: key %s got %v want %v", k, bs, s)
		}
	}
}

// Every successful Refresh bumps the index epoch exactly once, and a
// rejected Refresh leaves it alone — result caches key on the epoch, so
// this is the invalidation contract they depend on.
func TestRefreshBumpsEpoch(t *testing.T) {
	ds := smallDataset(302)
	idx := buildIndex(t, ds)
	if got := idx.Epoch(); got != 0 {
		t.Fatalf("fresh index epoch = %d, want 0", got)
	}
	if err := idx.Refresh(ds.Graph); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if got := idx.Epoch(); got != 1 {
		t.Fatalf("epoch after Refresh = %d, want 1", got)
	}
	foreign := graph.NewBuilder(nil)
	foreign.AddVertex("x")
	if err := idx.Refresh(foreign.Build()); err == nil {
		t.Fatal("foreign dictionary accepted")
	}
	if got := idx.Epoch(); got != 1 {
		t.Fatalf("epoch after rejected Refresh = %d, want 1", got)
	}
	if err := idx.Refresh(ds.Graph); err != nil {
		t.Fatalf("second Refresh: %v", err)
	}
	if got := idx.Epoch(); got != 2 {
		t.Fatalf("epoch after second Refresh = %d, want 2", got)
	}
}

func TestRefreshRejectsForeignDict(t *testing.T) {
	ds := smallDataset(301)
	idx := buildIndex(t, ds)
	foreign := graph.NewBuilder(nil)
	foreign.AddVertex("x")
	if err := idx.Refresh(foreign.Build()); err == nil {
		t.Fatal("foreign dictionary accepted")
	}
}

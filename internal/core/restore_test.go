package core

import (
	"testing"

	"bigindex/internal/graph"
)

// cloneLayers copies the layer slice and structs (not the graphs) so a
// test can corrupt one field without breaking the shared fixture.
func cloneLayers(x *Index) []*Layer {
	out := make([]*Layer, len(x.layers))
	for i, l := range x.layers {
		c := *l
		if l.Up != nil {
			c.Up = append([]graph.V(nil), l.Up...)
		}
		if l.Down != nil {
			c.Down = make([][]graph.V, len(l.Down))
			for s, row := range l.Down {
				c.Down[s] = append([]graph.V(nil), row...)
			}
		}
		out[i] = &c
	}
	return out
}

func TestNewFromLayersRoundTrip(t *testing.T) {
	ds := smallDataset(401)
	idx := buildIndex(t, ds)
	got, err := NewFromLayers(ds.Ont, cloneLayers(idx))
	if err != nil {
		t.Fatalf("NewFromLayers on a built index: %v", err)
	}
	if got.NumLayers() != idx.NumLayers() {
		t.Fatalf("layers %d, want %d", got.NumLayers(), idx.NumLayers())
	}
	if len(got.Configs()) != len(idx.Configs()) {
		t.Fatalf("seq %d, want %d", len(got.Configs()), len(idx.Configs()))
	}
	if got.Epoch() != 0 {
		t.Fatalf("restored epoch = %d, want 0 before RestoreEpoch", got.Epoch())
	}
	got.RestoreEpoch(42)
	if got.Epoch() != 42 {
		t.Fatalf("RestoreEpoch: %d", got.Epoch())
	}
}

// Every structural invariant is enforced: a decoder bug or tampered file
// must be rejected, never assembled into a silently wrong index.
func TestNewFromLayersRejectsCorruptStructures(t *testing.T) {
	ds := smallDataset(402)
	idx := buildIndex(t, ds)
	if idx.NumLayers() < 2 {
		t.Skip("need summary layers")
	}

	cases := map[string]func([]*Layer) []*Layer{
		"no layers":        func(ls []*Layer) []*Layer { return nil },
		"nil layer 0":      func(ls []*Layer) []*Layer { ls[0] = nil; return ls },
		"layer 0 with map": func(ls []*Layer) []*Layer { ls[0].Up = ls[1].Up; return ls },
		"layer without config": func(ls []*Layer) []*Layer {
			ls[1].Config = nil
			return ls
		},
		"foreign dict": func(ls []*Layer) []*Layer {
			b := graph.NewBuilder(nil)
			b.AddVertex("x")
			ls[0].Graph = b.Build()
			return ls
		},
		"short Up": func(ls []*Layer) []*Layer {
			ls[1].Up = ls[1].Up[:len(ls[1].Up)-1]
			return ls
		},
		"Up out of range": func(ls []*Layer) []*Layer {
			ls[1].Up[0] = graph.V(ls[1].Graph.NumVertices())
			return ls
		},
		"empty Down row": func(ls []*Layer) []*Layer {
			ls[1].Down[0] = nil
			return ls
		},
		"non-inverse Down": func(ls []*Layer) []*Layer {
			// Point a member at a row its Up entry disagrees with.
			if len(ls[1].Down) < 2 {
				return nil // fixture too small; treated as "no layers" reject
			}
			ls[1].Down[0][0], ls[1].Down[1][0] = ls[1].Down[1][0], ls[1].Down[0][0]
			return ls
		},
		"duplicate member": func(ls []*Layer) []*Layer {
			ls[1].Down[0] = append(ls[1].Down[0], ls[1].Down[0][0])
			return ls
		},
	}
	for name, corrupt := range cases {
		if _, err := NewFromLayers(ds.Ont, corrupt(cloneLayers(idx))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Refreshed leaves the receiver fully intact (the hot-swap contract: the
// old index keeps serving while the new one is built) and hands back a
// new index one epoch ahead.
func TestRefreshedNonMutating(t *testing.T) {
	ds := smallDataset(403)
	idx := buildIndex(t, ds)
	oldLayers := append([]*Layer(nil), idx.layers...)

	next, err := idx.Refreshed(ds.Graph)
	if err != nil {
		t.Fatalf("Refreshed: %v", err)
	}
	if idx.Epoch() != 0 {
		t.Fatalf("receiver epoch mutated to %d", idx.Epoch())
	}
	for i := range oldLayers {
		if idx.layers[i] != oldLayers[i] {
			t.Fatalf("receiver layer %d replaced", i)
		}
	}
	if next.Epoch() != 1 {
		t.Fatalf("new epoch = %d, want 1", next.Epoch())
	}
	if next == idx {
		t.Fatal("Refreshed returned the receiver")
	}
	if next.Data() != ds.Graph {
		t.Fatal("new index does not serve the supplied graph")
	}

	// Chained refreshes keep counting from the *source* epoch.
	third, err := next.Refreshed(ds.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if third.Epoch() != 2 {
		t.Fatalf("chained epoch = %d, want 2", third.Epoch())
	}
}

package cost

import (
	"sort"
	"sync"

	"bigindex/internal/graph"
)

// Calibration audits Formula 4 against observed query cost. Each evaluated
// query contributes a Sample: the per-layer model terms (compression ratio
// and relative support, from QueryCostTerms) plus the work the query
// actually performed, normalized by data-graph size so it lives on the
// same relative scale as the model's cost. A bounded ring keeps the most
// recent window; Fit solves the least-squares problem
//
//	observed ≈ a·compress(chosen) + b·sup(chosen)
//
// over the window. The model's cost is linear in β — Formula 4 is
// β·compress + (1−β)·sup — so the fitted coefficient pair yields a scale-
// free suggested β̂ = a/(a+b): the β under which the model's layer ranking
// best matches what queries actually cost. CheaperLayer re-ranks a
// sample's layers under the fitted coefficients, which is how misroutes
// (a different layer would have been cheaper) are detected.
type Calibration struct {
	mu   sync.Mutex
	ring []Sample
	next int
	n    int64 // total samples ever added
}

// Sample is one evaluated query in the calibration window.
type Sample struct {
	Algo  string
	Layer int // the layer the query was evaluated at
	// Per-layer Formula 4 terms and Def 4.1 Condition 1 legality, indexed
	// by layer (same shape as core.Breakdown.LayerCosts).
	Compress []float64
	Sup      []float64
	Legal    []bool
	// Observed is the query's ledger work units divided by the data-graph
	// size |G| — the measured analogue of cost_q(m), which predicts work
	// relative to evaluating on the full data graph.
	Observed float64
}

// fitMinSamples is the window floor below which Fit declines: with fewer
// points the normal equations are dominated by noise.
const fitMinSamples = 16

// NewCalibration creates a calibration window holding up to size samples
// (0 = 512).
func NewCalibration(size int) *Calibration {
	if size <= 0 {
		size = 512
	}
	return &Calibration{ring: make([]Sample, 0, size)}
}

// Add records a sample, evicting the oldest once the window is full.
// Samples with non-positive observed work are ignored (nothing to fit).
func (c *Calibration) Add(s Sample) {
	if c == nil || s.Observed <= 0 || s.Layer < 0 || s.Layer >= len(s.Compress) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, s)
		return
	}
	c.ring[c.next] = s
	c.next = (c.next + 1) % len(c.ring)
}

// Len returns the current window size; Total the samples ever added.
func (c *Calibration) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ring)
}

// Total returns the number of samples ever added.
func (c *Calibration) Total() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Fit solves the window's least squares for (a, b) ≥ 0 and derives the
// suggested β̂ = a/(a+b). ok is false below fitMinSamples or when the
// system is degenerate (e.g. all samples at one layer with collinear
// terms), in which case callers keep the configured β.
func (c *Calibration) Fit() (beta, a, b float64, ok bool) {
	if c == nil {
		return 0, 0, 0, false
	}
	c.mu.Lock()
	samples := make([]Sample, len(c.ring))
	copy(samples, c.ring)
	c.mu.Unlock()
	if len(samples) < fitMinSamples {
		return 0, 0, 0, false
	}
	var scc, scs, sss, scw, ssw float64
	for _, s := range samples {
		cm, sm := s.Compress[s.Layer], s.Sup[s.Layer]
		scc += cm * cm
		scs += cm * sm
		sss += sm * sm
		scw += cm * s.Observed
		ssw += sm * s.Observed
	}
	det := scc*sss - scs*scs
	if det > 1e-12*scc*sss && scc > 0 && sss > 0 {
		a = (scw*sss - ssw*scs) / det
		b = (scc*ssw - scs*scw) / det
	} else {
		// Degenerate (collinear terms): fall back to a single shared scale,
		// which fits the magnitude but cannot separate the two terms.
		if scc+2*scs+sss <= 0 {
			return 0, 0, 0, false
		}
		scale := (scw + ssw) / (scc + 2*scs + sss)
		a, b = scale, scale
	}
	if a < 0 {
		a = 0
	}
	if b < 0 {
		b = 0
	}
	if a+b <= 0 {
		return 0, 0, 0, false
	}
	return a / (a + b), a, b, true
}

// CheaperLayer returns the legal layer minimizing a·compress + b·sup for
// the sample — the layer the *fitted* model would route to. Falls back to
// the sample's own layer when no layer is legal (cannot happen for layer
// 0, which Def 4.1 always admits).
func CheaperLayer(s Sample, a, b float64) int {
	best, bestCost, have := s.Layer, 0.0, false
	for m := range s.Compress {
		if m < len(s.Legal) && !s.Legal[m] {
			continue
		}
		cost := a*s.Compress[m] + b*s.Sup[m]
		if !have || cost < bestCost {
			best, bestCost, have = m, cost, true
		}
	}
	return best
}

// LayerCalibration is one (algo, chosen layer) group of the calibration
// summary: how far the model's predicted cost sits from observed work.
type LayerCalibration struct {
	Algo          string  `json:"algo"`
	Layer         int     `json:"layer"`
	Count         int     `json:"count"`
	MeanPredicted float64 `json:"mean_predicted"`
	MeanObserved  float64 `json:"mean_observed"`
	MeanRatio     float64 `json:"mean_ratio"` // mean of per-query predicted/observed
}

// Summary groups the window by (algo, chosen layer) and reports the
// predicted-vs-observed statistics under the given β — the configured β,
// so drift between the summary and Fit's β̂ is the calibration error.
func (c *Calibration) Summary(beta float64) []LayerCalibration {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	samples := make([]Sample, len(c.ring))
	copy(samples, c.ring)
	c.mu.Unlock()

	type groupKey struct {
		algo  string
		layer int
	}
	type agg struct {
		n                int
		pred, obs, ratio float64
	}
	groups := map[groupKey]*agg{}
	for _, s := range samples {
		pred := beta*s.Compress[s.Layer] + (1-beta)*s.Sup[s.Layer]
		k := groupKey{s.Algo, s.Layer}
		g := groups[k]
		if g == nil {
			g = &agg{}
			groups[k] = g
		}
		g.n++
		g.pred += pred
		g.obs += s.Observed
		if s.Observed > 0 {
			g.ratio += pred / s.Observed
		}
	}
	out := make([]LayerCalibration, 0, len(groups))
	for k, g := range groups {
		out = append(out, LayerCalibration{
			Algo:          k.algo,
			Layer:         k.layer,
			Count:         g.n,
			MeanPredicted: g.pred / float64(g.n),
			MeanObserved:  g.obs / float64(g.n),
			MeanRatio:     g.ratio / float64(g.n),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Algo != out[j].Algo {
			return out[i].Algo < out[j].Algo
		}
		return out[i].Layer < out[j].Layer
	})
	return out
}

// LayerTerms computes the per-layer Formula 4 terms and Def 4.1
// Condition 1 legality for a query — the model-side half of a Sample.
// One support lookup per keyword per layer; cheap enough per query.
func LayerTerms(idx LayerGraphs, q []graph.Label, degreeExp int) (compress, sup []float64, legal []bool) {
	data := idx.LayerGraph(0)
	seq := idx.Configs()
	n := idx.NumLayers()
	compress = make([]float64, n)
	sup = make([]float64, n)
	legal = make([]bool, n)
	nDistinct := len(distinct(q))
	for m := 0; m < n; m++ {
		qGen := seq.GenQuery(q, m)
		compress[m], sup[m] = QueryCostTerms(degreeExp, data, idx.LayerGraph(m), q, qGen)
		legal[m] = seq.DistinctAtLayer(q, m) == nDistinct
	}
	return compress, sup, legal
}

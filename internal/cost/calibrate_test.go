package cost

import (
	"math"
	"testing"
)

// synthSample builds a two-layer sample whose observed cost follows the
// true model scale·(β·compress + (1−β)·sup) at the chosen layer.
func synthSample(algo string, layer int, compress, sup []float64, beta, scale float64) Sample {
	legal := make([]bool, len(compress))
	for i := range legal {
		legal[i] = true
	}
	return Sample{
		Algo: algo, Layer: layer,
		Compress: compress, Sup: sup, Legal: legal,
		Observed: scale * (beta*compress[layer] + (1-beta)*sup[layer]),
	}
}

func TestCalibrationFitRecoversBeta(t *testing.T) {
	const trueBeta, scale = 0.7, 3.5
	cal := NewCalibration(128)
	// Vary the term mix across samples so the 2×2 system is well posed.
	for i := 0; i < 64; i++ {
		c := 0.1 + 0.013*float64(i%61)
		s := 0.9 - 0.011*float64(i%71)
		cal.Add(synthSample("blinks", 1, []float64{1, c}, []float64{1, s}, trueBeta, scale))
	}
	beta, a, b, ok := cal.Fit()
	if !ok {
		t.Fatal("fit declined on a well-posed window")
	}
	if math.Abs(beta-trueBeta) > 0.02 {
		t.Fatalf("fitted β = %.4f, want ≈ %.2f (a=%.3f b=%.3f)", beta, trueBeta, a, b)
	}
	// The coefficients absorb the scale: a ≈ scale·β, b ≈ scale·(1−β).
	if math.Abs(a-scale*trueBeta) > 0.1 || math.Abs(b-scale*(1-trueBeta)) > 0.1 {
		t.Fatalf("coefficients a=%.3f b=%.3f, want ≈ %.3f / %.3f", a, b, scale*trueBeta, scale*(1-trueBeta))
	}
}

func TestCalibrationFitDeclinesSmallWindow(t *testing.T) {
	cal := NewCalibration(64)
	for i := 0; i < fitMinSamples-1; i++ {
		cal.Add(synthSample("x", 0, []float64{1}, []float64{1}, 0.5, 1))
	}
	if _, _, _, ok := cal.Fit(); ok {
		t.Fatal("fit must decline below the sample floor")
	}
}

func TestCalibrationDegenerateFallsBackToSharedScale(t *testing.T) {
	cal := NewCalibration(64)
	// compress == sup on every sample: the terms are collinear and no β is
	// identifiable, but the magnitude still is.
	for i := 0; i < 32; i++ {
		v := 0.2 + 0.01*float64(i)
		cal.Add(Sample{
			Algo: "x", Layer: 0,
			Compress: []float64{v}, Sup: []float64{v}, Legal: []bool{true},
			Observed: 2 * v,
		})
	}
	beta, a, b, ok := cal.Fit()
	if !ok {
		t.Fatal("degenerate fit must fall back, not decline")
	}
	if beta != 0.5 || math.Abs(a-b) > 1e-9 {
		t.Fatalf("shared-scale fallback: β=%.3f a=%.4f b=%.4f", beta, a, b)
	}
}

func TestCalibrationAddIgnoresJunk(t *testing.T) {
	cal := NewCalibration(8)
	cal.Add(Sample{Algo: "x", Layer: 0, Compress: []float64{1}, Sup: []float64{1}, Observed: 0})
	cal.Add(Sample{Algo: "x", Layer: 5, Compress: []float64{1}, Sup: []float64{1}, Observed: 1})
	cal.Add(Sample{Algo: "x", Layer: -1, Compress: []float64{1}, Sup: []float64{1}, Observed: 1})
	if cal.Len() != 0 || cal.Total() != 0 {
		t.Fatalf("junk samples stored: len=%d total=%d", cal.Len(), cal.Total())
	}
}

func TestCalibrationRingEvicts(t *testing.T) {
	cal := NewCalibration(4)
	for i := 0; i < 10; i++ {
		cal.Add(synthSample("x", 0, []float64{1}, []float64{1}, 0.5, float64(i+1)))
	}
	if cal.Len() != 4 {
		t.Fatalf("window len = %d, want 4", cal.Len())
	}
	if cal.Total() != 10 {
		t.Fatalf("total = %d, want 10", cal.Total())
	}
}

func TestCheaperLayer(t *testing.T) {
	s := Sample{
		Layer:    2,
		Compress: []float64{1.0, 0.5, 0.3},
		Sup:      []float64{1.0, 0.8, 2.0},
		Legal:    []bool{true, true, true},
	}
	// Under a=1, b=0 (all weight on compression) layer 2 wins; under a=0,
	// b=1 (all weight on support) layer 1 wins.
	if got := CheaperLayer(s, 1, 0); got != 2 {
		t.Fatalf("compress-only cheapest = %d, want 2", got)
	}
	if got := CheaperLayer(s, 0, 1); got != 1 {
		t.Fatalf("support-only cheapest = %d, want 1", got)
	}
	// Illegal layers are never chosen.
	s.Legal[1] = false
	if got := CheaperLayer(s, 0, 1); got != 0 {
		t.Fatalf("with layer 1 illegal, cheapest = %d, want 0", got)
	}
}

func TestCalibrationSummaryGroups(t *testing.T) {
	cal := NewCalibration(64)
	for i := 0; i < 10; i++ {
		cal.Add(synthSample("blinks", 1, []float64{1, 0.4}, []float64{1, 0.6}, 0.5, 1))
		cal.Add(synthSample("rclique", 0, []float64{1, 0.4}, []float64{1, 0.6}, 0.5, 2))
	}
	rows := cal.Summary(0.5)
	if len(rows) != 2 {
		t.Fatalf("summary rows: %+v", rows)
	}
	// Sorted by algo: blinks before rclique.
	if rows[0].Algo != "blinks" || rows[0].Layer != 1 || rows[0].Count != 10 {
		t.Fatalf("row 0: %+v", rows[0])
	}
	// blinks observed == predicted at scale 1 → ratio 1.
	if math.Abs(rows[0].MeanRatio-1) > 1e-9 {
		t.Fatalf("blinks ratio = %f", rows[0].MeanRatio)
	}
	// rclique observed is 2× predicted → ratio 0.5.
	if math.Abs(rows[1].MeanRatio-0.5) > 1e-9 {
		t.Fatalf("rclique ratio = %f", rows[1].MeanRatio)
	}
}

func TestCalibrationNilSafe(t *testing.T) {
	var cal *Calibration
	cal.Add(Sample{})
	if cal.Len() != 0 || cal.Total() != 0 {
		t.Fatal("nil calibration must read zero")
	}
	if _, _, _, ok := cal.Fit(); ok {
		t.Fatal("nil calibration must not fit")
	}
	if cal.Summary(0.5) != nil {
		t.Fatal("nil calibration summary must be nil")
	}
}

// Package cost implements the two cost models of the paper: Formula 3,
// which scores a generalization configuration during index construction
// (Sec. 3.2), and Formula 4, which scores evaluating a query at a given
// index layer (Sec. 4.1). It also implements Algorithm 1, the one-step
// greedy heuristic for choosing a per-layer configuration — the exact
// optimization is NP-hard (Theorem 3.1).
package cost

import (
	"container/heap"

	"bigindex/internal/generalize"
	"bigindex/internal/graph"
	"bigindex/internal/ontology"
	"bigindex/internal/sampling"
)

// Model scores configurations with Formula 3:
//
//	cost(G, C) = α·compress(G, C) + (1−α)·distort(G, C)
//
// compress is estimated by the sampling Estimator (building the real
// summary for every candidate would defeat the purpose of the heuristic);
// distort is exact (it only needs label supports).
type Model struct {
	Alpha     float64
	Estimator *sampling.Estimator
}

// Cost returns cost(G, C) per Formula 3.
func (m *Model) Cost(g *graph.Graph, cfg *generalize.Config) float64 {
	return m.Alpha*m.Estimator.EstimateCompress(cfg) + (1-m.Alpha)*cfg.Distortion(g)
}

// SearchOptions parameterizes GreedyConfig (Algorithm 1).
type SearchOptions struct {
	// Theta is the cost threshold θ: a candidate is accepted only while
	// cost(G, C ∪ {c_i}) ≤ θ.
	Theta float64
	// Pi is the budget Π on |C|; 0 means unlimited.
	Pi int
	// Alpha is the compress/distort weight of Formula 3.
	Alpha float64
	// SampleRadius is the r of the node-induced sample subgraphs.
	SampleRadius int
	// SampleCount is the number of samples n (e.g. SampleSize(1.96, 0.05)).
	SampleCount int
	// Seed makes the sampling deterministic.
	Seed int64
}

// DefaultSearchOptions mirrors the paper's defaults: 400 samples of radius
// 2, α = 0.5, and a permissive θ so one full generalization round happens
// per layer (the paper's "default indexes", Sec. 6.1.2).
func DefaultSearchOptions() SearchOptions {
	return SearchOptions{
		Theta:        1.0,
		Pi:           0,
		Alpha:        0.5,
		SampleRadius: 2,
		SampleCount:  400,
		Seed:         1,
	}
}

type candidate struct {
	mapping generalize.Mapping
	cost    float64
}

type candidateHeap []candidate

func (h candidateHeap) Len() int            { return len(h) }
func (h candidateHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h candidateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *candidateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// GreedyConfig implements Algorithm 1. Candidate generalizations are the
// ontology edges (ℓ → ℓ′) whose source ℓ actually labels some vertex of g;
// each is scored alone with Formula 3 and pushed on a min-heap; candidates
// are then accepted greedily while the cumulative configuration stays under
// θ, stopping at the budget Π or at the first rejection.
//
// Scoring the cumulative configuration for every candidate is made
// practical by incremental bookkeeping: the sampling session re-summarizes
// only samples containing the candidate's source label, and the
// ConfigBuilder maintains distortion in O(1) per mapping.
//
// The returned Estimator is the sample set used for scoring, so callers
// (and Exp-4) can reuse it.
func GreedyConfig(g *graph.Graph, ont *ontology.Ontology, opt SearchOptions) (*generalize.Config, *sampling.Estimator) {
	est := sampling.NewEstimator(g, opt.SampleRadius, opt.SampleCount, opt.Seed)

	builder := generalize.NewConfigBuilder(g)
	inc := est.StartIncremental(builder)

	// Score each candidate alone: cost(G, {c_i}). A singleton's distortion
	// is zero by definition (|X_ℓ| = 1), so the ranking is by compression.
	scorer := generalize.NewConfigBuilder(g)
	scoreInc := est.StartIncremental(scorer)
	h := &candidateHeap{}
	for _, l := range g.DistinctLabels() {
		for _, super := range ont.DirectSupertypes(l) {
			m := generalize.Mapping{From: l, To: super}
			compress, _ := scoreInc.CompressWith(m)
			heap.Push(h, candidate{mapping: m, cost: opt.Alpha * compress})
		}
	}

	for h.Len() > 0 {
		if opt.Pi > 0 && builder.Len() >= opt.Pi {
			break
		}
		c := heap.Pop(h).(candidate)
		if builder.InDomain(c.mapping.From) {
			// A different supertype already claimed this label; a
			// configuration is a function on Σ.
			continue
		}
		compress, touched := inc.CompressWith(c.mapping)
		cum := opt.Alpha*compress + (1-opt.Alpha)*builder.DistortionWith(c.mapping)
		if cum <= opt.Theta {
			if err := builder.Add(c.mapping); err != nil {
				continue
			}
			inc.Accept(c.mapping, touched)
		} else {
			// Algorithm 1 returns as soon as a candidate is rejected: the
			// queue is cost-ordered, so later candidates only cost more.
			break
		}
	}
	return builder.Snapshot(), est
}

package cost

import (
	"math"
	"testing"

	"bigindex/internal/generalize"
	"bigindex/internal/graph"
	"bigindex/internal/ontology"
	"bigindex/internal/sampling"
)

// fixture: groups of entities under two types, plus a supertype chain.
func fixture(t *testing.T) (*graph.Graph, *ontology.Ontology) {
	t.Helper()
	dict := graph.NewDict()
	ont := ontology.New(dict)
	person := ont.AddType("Person")
	org := ont.AddType("Org")
	thing := ont.AddType("Thing")
	if err := ont.AddSupertype(person, thing); err != nil {
		t.Fatal(err)
	}
	if err := ont.AddSupertype(org, thing); err != nil {
		t.Fatal(err)
	}

	b := graph.NewBuilder(dict)
	// 3 orgs with unique labels, each pointed at by 10 persons.
	for o := 0; o < 3; o++ {
		ov := b.AddVertex("org_" + string(rune('a'+o)))
		if err := ont.AddSupertypeNames("org_"+string(rune('a'+o)), "Org"); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 10; p++ {
			name := "person_" + string(rune('a'+o)) + string(rune('0'+p))
			pv := b.AddVertex(name)
			if err := ont.AddSupertypeNames(name, "Person"); err != nil {
				t.Fatal(err)
			}
			b.AddEdge(pv, ov)
		}
	}
	return b.Build(), ont
}

func TestGreedyConfigGeneralizesEverything(t *testing.T) {
	g, ont := fixture(t)
	opt := SearchOptions{Theta: 1, Alpha: 0.5, SampleRadius: 2, SampleCount: 60, Seed: 1}
	cfg, est := GreedyConfig(g, ont, opt)
	if est == nil {
		t.Fatal("estimator missing")
	}
	// With a permissive θ every entity label should generalize to its type
	// (the paper's default index setting).
	if cfg.Len() != 33 {
		t.Fatalf("config size = %d, want 33 (30 persons + 3 orgs)", cfg.Len())
	}
	if err := cfg.Validate(ont); err != nil {
		t.Fatalf("greedy produced invalid config: %v", err)
	}
}

func TestGreedyConfigRespectsPi(t *testing.T) {
	g, ont := fixture(t)
	opt := SearchOptions{Theta: 1, Pi: 5, Alpha: 0.5, SampleRadius: 2, SampleCount: 40, Seed: 1}
	cfg, _ := GreedyConfig(g, ont, opt)
	if cfg.Len() != 5 {
		t.Fatalf("config size = %d, want Π = 5", cfg.Len())
	}
}

func TestGreedyConfigRespectsTheta(t *testing.T) {
	g, ont := fixture(t)
	// θ = 0 rejects everything with positive cost; compress of any single
	// mapping stays positive, so the config must be empty.
	opt := SearchOptions{Theta: 0, Alpha: 0.5, SampleRadius: 2, SampleCount: 40, Seed: 1}
	cfg, _ := GreedyConfig(g, ont, opt)
	if cfg.Len() != 0 {
		t.Fatalf("config size = %d, want 0 under θ=0", cfg.Len())
	}
}

func TestModelCost(t *testing.T) {
	g, _ := fixture(t)
	est := sampling.NewEstimator(g, 2, 50, 1)
	m := &Model{Alpha: 0.5, Estimator: est}
	empty := generalize.EmptyConfig()
	c := m.Cost(g, empty)
	// Identity config: compress = 1 (nothing collapses; labels unique),
	// distortion 0 -> cost = α.
	if math.Abs(c-0.5) > 0.05 {
		t.Fatalf("identity cost = %v, want ≈ α = 0.5", c)
	}
	// α extremes.
	m0 := &Model{Alpha: 0, Estimator: est}
	if m0.Cost(g, empty) != 0 {
		t.Fatal("α=0 identity cost should be 0")
	}
}

// layered fakes a two-layer index for query-cost tests.
type layered struct {
	graphs []*graph.Graph
	seq    generalize.Sequence
}

func (l *layered) NumLayers() int                { return len(l.graphs) }
func (l *layered) LayerGraph(m int) *graph.Graph { return l.graphs[m] }
func (l *layered) Configs() generalize.Sequence  { return l.seq }

func TestQueryCostAndOptimalLayer(t *testing.T) {
	dict := graph.NewDict()
	b0 := graph.NewBuilder(dict)
	pa := b0.AddVertex("pa")
	pb := b0.AddVertex("pb")
	o := b0.AddVertex("org")
	b0.AddEdge(pa, o)
	b0.AddEdge(pb, o)
	g0 := b0.Build()

	person := dict.Intern("Person")
	cfg := generalize.MustConfig([]generalize.Mapping{
		{From: g0.Label(pa), To: person},
		{From: g0.Label(pb), To: person},
	})
	// Summary at layer 1: Person -> org (2 vertices, 1 edge).
	b1 := graph.NewBuilder(dict)
	p1 := b1.AddVertexLabel(person)
	o1 := b1.AddVertexLabel(g0.Label(o))
	b1.AddEdge(p1, o1)
	g1 := b1.Build()

	idx := &layered{graphs: []*graph.Graph{g0, g1}, seq: generalize.Sequence{cfg}}

	// Query {pa, org}: legal at both layers (pa->Person, org->org distinct).
	q := []graph.Label{g0.Label(pa), g0.Label(o)}
	best, costs := OptimalLayer(idx, q, 0.5)
	if len(costs) != 2 {
		t.Fatalf("costs = %v", costs)
	}
	// Layer 0 cost = β·1 + (1-β)·1 = 1.
	if math.Abs(costs[0]-1) > 1e-9 {
		t.Fatalf("cost_q(0) = %v, want 1", costs[0])
	}
	// Layer 1: compress = 3/5; support ratio = (1/2 + 1/2)/(1/3 + 1/3).
	wantC1 := 0.5*(3.0/5.0) + 0.5*((0.5+0.5)/(1.0/3.0+1.0/3.0))
	if math.Abs(costs[1]-wantC1) > 1e-9 {
		t.Fatalf("cost_q(1) = %v, want %v", costs[1], wantC1)
	}
	wantBest := 0
	if wantC1 < 1 {
		wantBest = 1
	}
	if best != wantBest {
		t.Fatalf("best layer = %d, want %d", best, wantBest)
	}

	// Query {pa, pb} merges into {Person} at layer 1: Condition 1 of
	// Def 4.1 forces layer 0.
	qMerge := []graph.Label{g0.Label(pa), g0.Label(pb)}
	best2, _ := OptimalLayer(idx, qMerge, 0.1)
	if best2 != 0 {
		t.Fatalf("merged query must evaluate at layer 0, got %d", best2)
	}
}

func TestQueryCostBetaExtremes(t *testing.T) {
	dict := graph.NewDict()
	b := graph.NewBuilder(dict)
	v := b.AddVertex("x")
	g := b.Build()
	q := []graph.Label{g.Label(v)}
	// β = 1: pure compression ratio; same graph -> 1.
	if c := QueryCost(1, g, g, q, q); c != 1 {
		t.Fatalf("β=1 same-layer cost = %v", c)
	}
	// β = 0: pure support ratio; same query -> 1.
	if c := QueryCost(0, g, g, q, q); c != 1 {
		t.Fatalf("β=0 same-layer cost = %v", c)
	}
}

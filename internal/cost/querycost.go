package cost

import (
	"math"
	"sync"

	"bigindex/internal/generalize"
	"bigindex/internal/graph"
)

// QueryCost evaluates the query-layer cost model (Formula 4, Sec. 4.1) for
// evaluating query q at a layer whose summary graph is layerG:
//
//	cost_q(m) = β·(|χ^m(G)| / |G|)
//	          + (1−β)·(Σ sup(Gen^m(q_i), G^m) / Σ sup(q_i, G))
//
// The first term is the compression ratio of the summary graph at layer m —
// the smaller the summary, the cheaper the search. The second term is the
// relative support of the generalized keywords — the higher their support
// at layer m, the more candidates must be specialized and filtered back to
// layer 0.
//
// Note on fidelity: the TKDE text prints the first term as
// β(1 − |χ^m|/|G|), but its own prose ("the first term is the compression
// ratio of the summary graph") and the reported behaviour (higher layers
// are frequently optimal, Fig. 19) require the ratio itself — with the
// printed sign, m = 0 would trivially minimize the formula for every query.
// We implement the prose semantics.
func QueryCost(beta float64, data, layerG *graph.Graph, q, qGen []graph.Label) float64 {
	return QueryCostEx(beta, 0, data, layerG, q, qGen)
}

// QueryCostEx extends Formula 4 with an optional density correction for
// distance-based semantics: summarization *densifies* graphs (supernodes
// inherit the union of their members' edges), and the work of a bounded
// traversal grows like avgDegree^depth, so a summary 0.7x the size but 1.6x
// the density is a net loss for an R-hop search. With degreeExp = R the
// first term becomes sizeRatio × (d_layer/d_data)^R; degreeExp = 0 is the
// paper's formula. (Extension documented in DESIGN.md.)
func QueryCostEx(beta float64, degreeExp int, data, layerG *graph.Graph, q, qGen []graph.Label) float64 {
	compress, supRatio := QueryCostTerms(degreeExp, data, layerG, q, qGen)
	return beta*compress + (1-beta)*supRatio
}

// QueryCostTerms returns Formula 4's two components separately — the
// (density-corrected) compression ratio and the relative keyword support —
// so the calibration audit can refit β against observed work without
// recomputing supports per candidate β.
func QueryCostTerms(degreeExp int, data, layerG *graph.Graph, q, qGen []graph.Label) (compress, supRatio float64) {
	compress = 1.0
	if data.Size() > 0 {
		compress = float64(layerG.Size()) / float64(data.Size())
	}
	if degreeExp > 0 && data.NumVertices() > 0 && layerG.NumVertices() > 0 {
		b0 := effectiveBranching(data)
		bm := effectiveBranching(layerG)
		if b0 > 0 {
			growth := bm / b0
			for i := 0; i < degreeExp; i++ {
				compress *= growth
			}
		}
	}

	var supGen, supBase float64
	for i := range q {
		supBase += data.Support(q[i])
		supGen += layerG.Support(qGen[i])
	}
	supRatio = 1.0
	if supBase > 0 {
		supRatio = supGen / supBase
	}
	return compress, supRatio
}

// effectiveBranching estimates the per-hop fan-out of a bounded traversal
// as √E[deg²] over undirected degrees. The second moment matters:
// summarization concentrates edges on hub supernodes (a supernode holding
// 500 collapsed attribute vertices inherits every member's in-edge), and a
// traversal that touches one hub immediately reaches its whole
// neighborhood — an effect invisible to the average degree. Values are
// memoized per graph; summary layers are immutable.
func effectiveBranching(g *graph.Graph) float64 {
	branchingMu.Lock()
	if v, ok := branchingCache[g]; ok {
		branchingMu.Unlock()
		return v
	}
	branchingMu.Unlock()

	n := g.NumVertices()
	sum := 0.0
	for v := graph.V(0); int(v) < n; v++ {
		d := float64(g.Degree(v))
		sum += d * d
	}
	b := 0.0
	if n > 0 {
		b = math.Sqrt(sum / float64(n))
	}
	branchingMu.Lock()
	if len(branchingCache) > 1024 {
		branchingCache = make(map[*graph.Graph]float64) // bound the memo
	}
	branchingCache[g] = b
	branchingMu.Unlock()
	return b
}

var (
	branchingMu    sync.Mutex
	branchingCache = map[*graph.Graph]float64{}
)

// LayerGraphs abstracts the per-layer summary graphs of a BiG-index for
// layer selection without importing the core package (which depends on
// cost).
type LayerGraphs interface {
	// NumLayers reports h+1: the data graph plus h summary layers.
	NumLayers() int
	// LayerGraph returns the graph at layer m (0 = data graph).
	LayerGraph(m int) *graph.Graph
	// Configs returns the configuration sequence [C¹, …, Cʰ].
	Configs() generalize.Sequence
}

// OptimalLayer implements Def. 4.1: among the layers m where generalization
// keeps the |Q| keywords distinct (Condition 1), return the one minimizing
// cost_q (Condition 2). Layer 0 is always legal, so a valid layer always
// exists. The per-layer costs are returned for diagnostics (Fig. 19 uses
// them).
func OptimalLayer(idx LayerGraphs, q []graph.Label, beta float64) (best int, costs []float64) {
	return OptimalLayerEx(idx, q, beta, 0)
}

// OptimalLayerEx is OptimalLayer with the density correction of QueryCostEx.
func OptimalLayerEx(idx LayerGraphs, q []graph.Label, beta float64, degreeExp int) (best int, costs []float64) {
	data := idx.LayerGraph(0)
	seq := idx.Configs()
	costs = make([]float64, idx.NumLayers())
	best = 0
	bestCost := 0.0
	haveBest := false
	nDistinct := len(distinct(q))
	for m := 0; m < idx.NumLayers(); m++ {
		qGen := seq.GenQuery(q, m)
		costs[m] = QueryCostEx(beta, degreeExp, data, idx.LayerGraph(m), q, qGen)
		if seq.DistinctAtLayer(q, m) != nDistinct {
			// Condition 1 violated: two keywords merged at this layer.
			continue
		}
		if !haveBest || costs[m] < bestCost {
			best, bestCost, haveBest = m, costs[m], true
		}
	}
	return best, costs
}

func distinct(q []graph.Label) []graph.Label {
	seen := make(map[graph.Label]bool, len(q))
	var out []graph.Label
	for _, l := range q {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

package cost

import (
	"math"
	"testing"

	"bigindex/internal/graph"
)

// twoGraphs builds a data graph (4 vertices, 2 edges, degree 0.5) and a
// "summary" half its size but denser (2 vertices, 2 edges, degree 1).
func twoGraphs(t *testing.T) (*graph.Graph, *graph.Graph, []graph.Label) {
	t.Helper()
	dict := graph.NewDict()
	b0 := graph.NewBuilder(dict)
	a := b0.AddVertex("a")
	bb := b0.AddVertex("b")
	c := b0.AddVertex("c")
	d := b0.AddVertex("d")
	b0.AddEdge(a, bb)
	b0.AddEdge(c, d)
	g0 := b0.Build()

	b1 := graph.NewBuilder(dict)
	x := b1.AddVertexLabel(g0.Label(a))
	y := b1.AddVertexLabel(g0.Label(bb))
	b1.AddEdge(x, y)
	b1.AddEdge(y, x)
	g1 := b1.Build()
	return g0, g1, []graph.Label{g0.Label(a)}
}

func TestQueryCostExDegreeCorrection(t *testing.T) {
	g0, g1, q := twoGraphs(t)
	base := QueryCostEx(1, 0, g0, g1, q, q) // pure size ratio: 4/6
	if math.Abs(base-4.0/6.0) > 1e-12 {
		t.Fatalf("exponent 0: %v, want %v", base, 4.0/6.0)
	}
	// Degree growth: d1/d0 = 1 / 0.5 = 2. Exponent 1 doubles the term;
	// exponent 3 multiplies by 8.
	e1 := QueryCostEx(1, 1, g0, g1, q, q)
	if math.Abs(e1-2*base) > 1e-12 {
		t.Fatalf("exponent 1: %v, want %v", e1, 2*base)
	}
	e3 := QueryCostEx(1, 3, g0, g1, q, q)
	if math.Abs(e3-8*base) > 1e-12 {
		t.Fatalf("exponent 3: %v, want %v", e3, 8*base)
	}
	// Exponent 0 must equal the original QueryCost.
	if QueryCost(0.5, g0, g1, q, q) != QueryCostEx(0.5, 0, g0, g1, q, q) {
		t.Fatal("QueryCost and exponent-0 QueryCostEx diverge")
	}
}

func TestOptimalLayerExRespectsCorrection(t *testing.T) {
	g0, g1, q := twoGraphs(t)
	idx := &layered{graphs: []*graph.Graph{g0, g1}, seq: nil}
	// With β=1 the decision is purely the first term. Support ratio for
	// layer 1: label a appears once in both graphs (1/2 vs 1/4) but β=1
	// zeroes that out.
	best0, _ := OptimalLayerEx(idx, q, 1, 0)
	if best0 != 1 {
		t.Fatalf("exponent 0 should prefer the smaller layer, got %d", best0)
	}
	best3, _ := OptimalLayerEx(idx, q, 1, 3)
	if best3 != 0 {
		t.Fatalf("exponent 3 should veto the dense layer, got %d", best3)
	}
}

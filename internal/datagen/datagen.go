// Package datagen generates synthetic knowledge graphs, ontologies, and
// query workloads shaped like the paper's datasets (YAGO3, DBpedia, IMDB,
// and the synt-* series of Table 2), scaled to run on one machine.
//
// The real datasets are not redistributable here, so the generator
// reproduces the *properties BiG-index exploits*:
//
//   - a term vocabulary with Zipf-distributed populations: a few labels
//     occur on thousands of vertices (the Table 4 query keywords), a long
//     tail is near-unique (entity names);
//   - a type taxonomy of configurable height over the terms, so labels can
//     be generalized several layers (the ontology graphs of the paper have
//     height ≈ 7, average degree ≈ 5);
//   - relation templates between types, so vertices of one type link to
//     vertices of another with skewed target popularity — after one round
//     of generalization many vertices become structurally indistinguishable
//     and bisimulation collapses them (the 100-Persons effect of Fig. 1).
//
// All generation is deterministic given the seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"bigindex/internal/graph"
	"bigindex/internal/ontology"
)

// Options parameterizes one synthetic knowledge graph.
type Options struct {
	// Name tags the dataset in reports.
	Name string
	// Entities is the number of vertices.
	Entities int
	// AvgOut is the average out-degree (|E| ≈ Entities × AvgOut).
	AvgOut float64
	// Terms is the size of the label vocabulary Σ.
	Terms int
	// LeafTypes is the number of leaf types terms are grouped under.
	LeafTypes int
	// TypeBranching is the taxonomy fan-in: roughly how many types share a
	// parent (the paper's ontologies average degree 5).
	TypeBranching int
	// TypeHeight is the number of taxonomy levels above the leaf types
	// (the paper's ontologies have height ≈ 7 including the term level).
	TypeHeight int
	// Relations is the number of (source type → target type) edge templates.
	Relations int
	// SubtypeLevels inserts this many subtype levels between terms and leaf
	// types (real taxonomies specialize types well below the "class" level;
	// these levels are what make generalization pay off *gradually* layer
	// after layer, the Fig. 9 shape, instead of all at once).
	SubtypeLevels int
	// TermSkew is the Zipf exponent of term populations (≈1 is realistic;
	// higher concentrates vertices on fewer labels).
	TermSkew float64
	// TargetSkew is the Zipf exponent for edge-target popularity inside a
	// type (higher creates hub entities and denser bisimilarity).
	TargetSkew float64
	// SinkFraction is the fraction of entities that emit no out-edges —
	// attribute-like vertices (years, places, ratings) that real knowledge
	// graphs are full of. Sinks collapse aggressively under bisimulation
	// and seed the upward cascade of supernode merging.
	SinkFraction float64
	// Seed drives all randomness.
	Seed int64
}

// Dataset is a generated knowledge graph with its ontology and metadata.
type Dataset struct {
	Name  string
	Graph *graph.Graph
	Ont   *ontology.Ontology
	// LeafTypeOf maps each term label to its leaf type.
	LeafTypeOf map[graph.Label]graph.Label
	// TermsOfType maps each leaf type to its term labels.
	TermsOfType map[graph.Label][]graph.Label
	// RelationPairs are the (source type, target type) templates used.
	RelationPairs [][2]graph.Label
	opt           Options
}

// Options returns the generation options.
func (d *Dataset) Options() Options { return d.opt }

// Generate builds a dataset from opt.
func Generate(opt Options) *Dataset {
	applyDefaults(&opt)
	rng := rand.New(rand.NewSource(opt.Seed))
	dict := graph.NewDict()
	ont := ontology.New(dict)

	// --- Taxonomy: leaf types, then levels of parents up to TypeHeight. ---
	leafTypes := make([]graph.Label, opt.LeafTypes)
	for i := range leafTypes {
		leafTypes[i] = ont.AddType(fmt.Sprintf("%s/type/L0_%d", opt.Name, i))
	}
	// Parent levels continue to TypeHeight even when a level narrows to one
	// type (real taxonomies end in long thin chains toward owl:Thing).
	level := leafTypes
	for h := 1; h <= opt.TypeHeight && len(level) > 0; h++ {
		nParents := (len(level) + opt.TypeBranching - 1) / opt.TypeBranching
		parents := make([]graph.Label, nParents)
		for i := range parents {
			parents[i] = ont.AddType(fmt.Sprintf("%s/type/L%d_%d", opt.Name, h, i))
		}
		for i, t := range level {
			if err := ont.AddSupertype(t, parents[i/opt.TypeBranching]); err != nil {
				panic(err) // construction is acyclic by design
			}
		}
		level = parents
	}

	// --- Subtype chains: each leaf type fans out into SubtypeLevels levels
	// of finer subtypes; terms attach at the bottom. Each generalization
	// hop (term -> subtype -> … -> leaf type -> parents) then merges label
	// groups gradually, which is what gives the index its multi-layer
	// compression profile (Fig. 9).
	bottomOf := make(map[graph.Label]graph.Label) // bottom subtype -> leaf type
	var bottoms []graph.Label
	for li, lt := range leafTypes {
		level := []graph.Label{lt}
		for s := 1; s <= opt.SubtypeLevels; s++ {
			var next []graph.Label
			for pi, parent := range level {
				for c := 0; c < opt.TypeBranching; c++ {
					sub := ont.AddType(fmt.Sprintf("%s/type/L0_%d/s%d_%d_%d", opt.Name, li, s, pi, c))
					if err := ont.AddSupertype(sub, parent); err != nil {
						panic(err)
					}
					next = append(next, sub)
				}
			}
			level = next
		}
		for _, b := range level {
			bottomOf[b] = lt
			bottoms = append(bottoms, b)
		}
	}
	// Interleave bottoms across leaf types so the round-robin term
	// assignment below populates every leaf type even when terms are few.
	perLeaf := len(bottoms) / len(leafTypes)
	if perLeaf > 0 {
		inter := make([]graph.Label, 0, len(bottoms))
		for r := 0; r < perLeaf; r++ {
			for li := range leafTypes {
				inter = append(inter, bottoms[li*perLeaf+r])
			}
		}
		bottoms = inter
	}

	// --- Vocabulary: terms with Zipf populations, grouped under the bottom
	// subtypes (round-robin keeps every subtype populated). ---
	termZipf := rand.NewZipf(rng, opt.TermSkew, 1, uint64(opt.Terms-1))
	terms := make([]graph.Label, opt.Terms)
	leafTypeOf := make(map[graph.Label]graph.Label, opt.Terms)
	termsOfType := make(map[graph.Label][]graph.Label)
	for i := range terms {
		bottom := bottoms[i%len(bottoms)]
		t := bottomOf[bottom]
		term := ont.AddType(fmt.Sprintf("%s/term/%d", opt.Name, i))
		if err := ont.AddSupertype(term, bottom); err != nil {
			panic(err)
		}
		terms[i] = term
		leafTypeOf[term] = t
		termsOfType[t] = append(termsOfType[t], term)
	}

	// --- Entities: labels drawn from the Zipf vocabulary. ---
	b := graph.NewBuilder(dict)
	entityTerm := make([]graph.Label, opt.Entities)
	entitiesOfType := make(map[graph.Label][]graph.V)
	sinksOfType := make(map[graph.Label][]graph.V)
	sinkMod := int(opt.SinkFraction * 1000)
	isSink := func(i int) bool { return (i*2654435761)%1000 < sinkMod }
	for i := 0; i < opt.Entities; i++ {
		term := terms[int(termZipf.Uint64())]
		v := b.AddVertexLabel(term)
		entityTerm[i] = term
		lt := leafTypeOf[term]
		entitiesOfType[lt] = append(entitiesOfType[lt], v)
		if isSink(i) {
			sinksOfType[lt] = append(sinksOfType[lt], v)
		}
	}

	// --- Relations: edge templates between populated leaf types. ---
	var populated []graph.Label
	for _, lt := range leafTypes {
		if len(entitiesOfType[lt]) > 0 {
			populated = append(populated, lt)
		}
	}
	var pairs [][2]graph.Label
	for len(pairs) < opt.Relations && len(populated) > 0 {
		src := populated[rng.Intn(len(populated))]
		dst := populated[rng.Intn(len(populated))]
		if src == dst && len(populated) > 1 {
			continue
		}
		pairs = append(pairs, [2]graph.Label{src, dst})
	}
	// Per-source-type out-degree budget proportional to how many templates
	// it participates in.
	templatesOf := make(map[graph.Label][]graph.Label)
	for _, p := range pairs {
		templatesOf[p[0]] = append(templatesOf[p[0]], p[1])
	}

	edgesWanted := int(float64(opt.Entities) * opt.AvgOut)
	edgesMade := 0
	// Assign edges entity by entity, cycling until the budget is spent, so
	// the degree distribution stays even across source types. All entities
	// of a type follow the same template on a given pass — entities of one
	// type share a relation *pattern* in real knowledge graphs, and that
	// regularity is what generalization exposes to bisimulation.
	for pass := 0; edgesMade < edgesWanted && pass < 64; pass++ {
		for i := 0; i < opt.Entities && edgesMade < edgesWanted; i++ {
			if isSink(i) {
				continue // attribute-like sink: never a source
			}
			src := graph.V(i)
			dsts := templatesOf[leafTypeOf[entityTerm[i]]]
			if len(dsts) == 0 {
				continue
			}
			dstType := dsts[pass%len(dsts)]
			cands := entitiesOfType[dstType]
			// Two thirds of edges point at attribute-like sinks when the
			// target type has any — movie->year, player->country: the
			// high-in-degree values real keyword queries name.
			if sinks := sinksOfType[dstType]; len(sinks) > 0 && rng.Intn(3) != 0 {
				cands = sinks
			}
			if len(cands) == 0 {
				continue
			}
			// Skewed target choice: popular entities attract many edges,
			// creating the shared-structure groups bisimulation collapses.
			tz := float64(len(cands))
			idx := int(math.Pow(rng.Float64(), opt.TargetSkew) * tz)
			if idx >= len(cands) {
				idx = len(cands) - 1
			}
			dst := cands[idx]
			if dst == src {
				continue
			}
			b.AddEdge(src, dst)
			edgesMade++
		}
	}

	return &Dataset{
		Name:          opt.Name,
		Graph:         b.Build(),
		Ont:           ont,
		LeafTypeOf:    leafTypeOf,
		TermsOfType:   termsOfType,
		RelationPairs: pairs,
		opt:           opt,
	}
}

func applyDefaults(opt *Options) {
	if opt.Name == "" {
		opt.Name = "synt"
	}
	if opt.Entities <= 0 {
		opt.Entities = 1000
	}
	if opt.AvgOut <= 0 {
		opt.AvgOut = 2
	}
	if opt.Terms <= 0 {
		opt.Terms = max(16, opt.Entities/10)
	}
	if opt.LeafTypes <= 0 {
		opt.LeafTypes = max(4, opt.Terms/50)
	}
	if opt.TypeBranching <= 1 {
		opt.TypeBranching = 5
	}
	if opt.TypeHeight <= 0 {
		opt.TypeHeight = 6
	}
	if opt.Relations <= 0 {
		opt.Relations = max(4, opt.LeafTypes)
	}
	if opt.SubtypeLevels <= 0 {
		opt.SubtypeLevels = 2
	}
	if opt.TermSkew <= 1 {
		opt.TermSkew = 1.4
	}
	if opt.TargetSkew <= 0 {
		opt.TargetSkew = 2
	}
	if opt.Seed == 0 {
		opt.Seed = 42
	}
}

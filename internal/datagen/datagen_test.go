package datagen

import (
	"bytes"
	"testing"

	"bigindex/internal/graph"
)

func TestGenerateDeterministic(t *testing.T) {
	opt := Options{Name: "d", Entities: 500, Seed: 5}
	a := Generate(opt)
	b := Generate(opt)
	if a.Graph.NumVertices() != b.Graph.NumVertices() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
	c := Generate(Options{Name: "d", Entities: 500, Seed: 6})
	if c.Graph.NumEdges() == a.Graph.NumEdges() {
		// Edge counts may coincide; check actual edges.
		same := true
		ec := c.Graph.Edges()
		for i := range ea {
			if ea[i] != ec[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGenerateShape(t *testing.T) {
	ds := Generate(Options{Name: "s", Entities: 2000, AvgOut: 2.5, Seed: 9})
	g := ds.Graph
	if g.NumVertices() != 2000 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	ratio := float64(g.NumEdges()) / float64(g.NumVertices())
	if ratio < 1.5 || ratio > 2.6 {
		t.Fatalf("edge ratio = %v, want ≈ 2.5", ratio)
	}
	if err := ds.Ont.Validate(); err != nil {
		t.Fatalf("generated ontology invalid: %v", err)
	}
	// Every vertex label must have a leaf type in the ontology.
	for _, l := range g.DistinctLabels() {
		lt, ok := ds.LeafTypeOf[l]
		if !ok {
			t.Fatalf("label %v has no leaf type", l)
		}
		if !ds.Ont.IsSupertype(lt, l) {
			t.Fatalf("leaf type of %v not a supertype", l)
		}
	}
	// The taxonomy must be several levels deep so multi-layer indexes make
	// sense.
	if h := ds.Ont.Height(); h < 3 {
		t.Fatalf("ontology height = %d, want >= 3", h)
	}
}

func TestZipfSkew(t *testing.T) {
	ds := Generate(Options{Name: "z", Entities: 5000, Terms: 500, TermSkew: 1.5, Seed: 3})
	counts := make([]int, 0, 500)
	maxC := 0
	for _, l := range ds.Graph.DistinctLabels() {
		c := ds.Graph.LabelCount(l)
		counts = append(counts, c)
		if c > maxC {
			maxC = c
		}
	}
	// Zipf: the most popular term should dominate (far above the mean).
	mean := 5000 / len(counts)
	if maxC < 5*mean {
		t.Fatalf("max count %d vs mean %d: no skew", maxC, mean)
	}
}

func TestPresetsDistinct(t *testing.T) {
	y, d, i := YagoSmall(), DbpediaSmall(), ImdbSmall()
	if y.Name != "yago-s" || d.Name != "dbpedia-s" || i.Name != "imdb-s" {
		t.Fatal("preset names wrong")
	}
	ry := float64(y.Graph.NumEdges()) / float64(y.Graph.NumVertices())
	rd := float64(d.Graph.NumEdges()) / float64(d.Graph.NumVertices())
	ri := float64(i.Graph.NumEdges()) / float64(i.Graph.NumVertices())
	if !(ry < rd && rd < ri) {
		t.Fatalf("density order wrong: yago %v dbpedia %v imdb %v", ry, rd, ri)
	}
}

func TestSyntheticSeries(t *testing.T) {
	series := SyntheticSeries()
	if len(series) != 4 {
		t.Fatalf("series length %d", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].Graph.NumVertices() != 2*series[i-1].Graph.NumVertices() {
			t.Fatal("series should double vertices")
		}
	}
	if series[0].Name != "synt-10k" {
		t.Fatalf("name = %s", series[0].Name)
	}
}

func TestQueriesWorkload(t *testing.T) {
	ds := Generate(Options{Name: "q", Entities: 3000, Terms: 200, Seed: 11})
	qs := Queries(ds, DefaultWorkload())
	if len(qs) == 0 {
		t.Fatal("no queries generated")
	}
	sizes := DefaultWorkload().Sizes
	for i, q := range qs {
		if len(q.Keywords) != sizes[i] {
			t.Fatalf("%s has %d keywords, want %d", q.ID, len(q.Keywords), sizes[i])
		}
		for j, l := range q.Keywords {
			if got := ds.Graph.LabelCount(l); got != q.Counts[j] {
				t.Fatalf("%s count[%d] = %d, graph says %d", q.ID, j, q.Counts[j], got)
			}
			if q.Counts[j] < DefaultWorkload().MinCount {
				t.Fatalf("%s keyword %d below MinCount: %d", q.ID, j, q.Counts[j])
			}
		}
		// No duplicate keywords within a query.
		seen := map[graph.Label]bool{}
		for _, l := range q.Keywords {
			if seen[l] {
				t.Fatalf("%s repeats keyword %v", q.ID, l)
			}
			seen[l] = true
		}
		if len(q.Names(ds.Graph.Dict())) != len(q.Keywords) {
			t.Fatal("Names length mismatch")
		}
	}
	// Deterministic.
	qs2 := Queries(ds, DefaultWorkload())
	for i := range qs {
		for j := range qs[i].Keywords {
			if qs[i].Keywords[j] != qs2[i].Keywords[j] {
				t.Fatal("workload not deterministic")
			}
		}
	}
}

func TestWorkloadSaveLoad(t *testing.T) {
	ds := Generate(Options{Name: "wio", Entities: 2000, Terms: 150, Seed: 21})
	qs := Queries(ds, DefaultWorkload())
	if len(qs) == 0 {
		t.Skip("no workload")
	}
	var buf bytes.Buffer
	if err := SaveWorkload(&buf, ds.Name, ds.Graph.Dict(), qs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWorkload(bytes.NewReader(buf.Bytes()), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("loaded %d queries, want %d", len(got), len(qs))
	}
	for i := range qs {
		if got[i].ID != qs[i].ID {
			t.Fatalf("query %d ID mismatch", i)
		}
		for j := range qs[i].Keywords {
			if got[i].Keywords[j] != qs[i].Keywords[j] || got[i].Counts[j] != qs[i].Counts[j] {
				t.Fatalf("query %d keyword %d mismatch", i, j)
			}
		}
	}
	// Foreign dataset rejects unknown keywords.
	other := Generate(Options{Name: "other", Entities: 500, Seed: 22})
	if _, err := LoadWorkload(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("foreign dataset accepted the workload")
	}
	// Garbage input errors.
	if _, err := LoadWorkload(bytes.NewReader([]byte("not json")), ds); err == nil {
		t.Fatal("garbage accepted")
	}
}

package datagen

// Presets mirror Table 2 of the paper at laptop scale (roughly 1:130 for
// the real datasets). What matters for the experiments is the *shape*:
// DBpedia-like graphs are denser and compress worse (the paper's layer-1
// ratio is 0.61 vs YAGO3's 0.28); the IMDB-like graph is the densest and
// breaks r-clique's neighbor index; the synt-* series scales |V| with a
// fixed 2-3x edge ratio and a much smaller ontology (5K types in the
// paper).

// YagoSmall is the YAGO3 stand-in: sparse (|E|/|V| ≈ 2), deep taxonomy,
// strongly skewed vocabulary, so one generalization round compresses hard.
func YagoSmall() *Dataset {
	return Generate(Options{
		Name:          "yago-s",
		Entities:      20000,
		AvgOut:        2.0,
		Terms:         1500,
		LeafTypes:     40,
		TypeBranching: 4,
		TypeHeight:    6,
		Relations:     60,
		TermSkew:      1.5,
		TargetSkew:    2,
		SinkFraction:  0.35,
		Seed:          7001,
	})
}

// DbpediaSmall is the DBpedia stand-in: denser (|E|/|V| ≈ 2.7) with a
// flatter vocabulary, so summaries compress less (paper ratio 0.61).
func DbpediaSmall() *Dataset {
	return Generate(Options{
		Name:          "dbpedia-s",
		Entities:      44000,
		AvgOut:        2.7,
		Terms:         5000,
		LeafTypes:     120,
		TypeBranching: 4,
		TypeHeight:    6,
		Relations:     260,
		SubtypeLevels: 1,
		TermSkew:      1.15,
		TargetSkew:    1.8,
		SinkFraction:  0.5,
		Seed:          7002,
	})
}

// ImdbSmall is the IMDB stand-in: densest (|E|/|V| ≈ 3.6) with hub
// entities (popular movies/actors); its R-hop neighborhoods are huge, which
// is exactly what defeats r-clique's O(n·m) neighbor index in Exp-1.
func ImdbSmall() *Dataset {
	return Generate(Options{
		Name:          "imdb-s",
		Entities:      13000,
		AvgOut:        3.6,
		Terms:         900,
		LeafTypes:     24,
		TypeBranching: 4,
		TypeHeight:    6,
		Relations:     48,
		TermSkew:      1.4,
		TargetSkew:    6,
		SinkFraction:  0.65,
		Seed:          7003,
	})
}

// Synthetic returns a synt-N dataset (the synt-1M…synt-8M series scaled
// 100x down): n vertices, ~3n edges for the smaller sizes and ~2n for the
// larger, over a small ontology (the paper's synthetic ontologies have 5K
// types, height 7, average degree 5).
func Synthetic(n int, seed int64) *Dataset {
	avg := 3.0
	if n >= 40000 {
		avg = 2.0
	}
	return Generate(Options{
		Name:          syntheticName(n),
		Entities:      n,
		AvgOut:        avg,
		Terms:         500,
		LeafTypes:     40,
		TypeBranching: 3,
		TypeHeight:    7,
		SubtypeLevels: 1,
		Relations:     100,
		TermSkew:      1.3,
		TargetSkew:    2,
		SinkFraction:  0.35,
		Seed:          seed,
	})
}

func syntheticName(n int) string {
	switch {
	case n >= 1000 && n%1000 == 0:
		return "synt-" + itoa(n/1000) + "k"
	default:
		return "synt-" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// AllRealPresets returns the three real-dataset stand-ins.
func AllRealPresets() []*Dataset {
	return []*Dataset{YagoSmall(), DbpediaSmall(), ImdbSmall()}
}

// SyntheticSeries returns the synt-10k…synt-80k scaling series of Exp-2.
func SyntheticSeries() []*Dataset {
	return []*Dataset{
		Synthetic(10000, 8101),
		Synthetic(20000, 8102),
		Synthetic(40000, 8103),
		Synthetic(80000, 8104),
	}
}

package datagen

import (
	"fmt"
	"math/rand"
	"slices"

	"bigindex/internal/graph"
)

// Query is one benchmark keyword query (a Table 4 row analog).
type Query struct {
	ID       string
	Keywords []graph.Label
	// Counts[i] is |V_{q_i}|, the keyword's occurrence count in the data
	// graph — Table 4's "Counts in the data graph" column.
	Counts []int
}

// Names renders the keywords through the dataset dictionary.
func (q Query) Names(d *graph.Dict) []string {
	out := make([]string, len(q.Keywords))
	for i, l := range q.Keywords {
		out[i] = d.Name(l)
	}
	return out
}

// WorkloadOptions controls benchmark query generation.
type WorkloadOptions struct {
	// Sizes lists the keyword count of each query; the paper's Q1–Q8 use
	// {2, 2, 3, 3, 3, 4, 5, 6}.
	Sizes []int
	// MinCount requires each keyword to occur at least this often in the
	// data graph (the paper used > 3000 at full scale; scale accordingly).
	MinCount int
	// Seed drives keyword selection.
	Seed int64
}

// DefaultWorkload mirrors the paper's query set shape (Table 4).
func DefaultWorkload() WorkloadOptions {
	return WorkloadOptions{
		Sizes:    []int{2, 2, 3, 3, 3, 4, 5, 6},
		MinCount: 30,
		Seed:     99,
	}
}

// Queries generates a workload over ds: each query's keywords are terms
// with sufficient support whose types are *semantically related* — joined
// by the dataset's relation templates — mirroring how the paper picked
// keywords "from the ontology graph which had semantic relationships"
// (e.g. Q3 = {Club, Player, England}).
func Queries(ds *Dataset, opt WorkloadOptions) []Query {
	if len(opt.Sizes) == 0 {
		opt = DefaultWorkload()
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Popular terms per leaf type.
	popular := make(map[graph.Label][]graph.Label)
	for t, terms := range ds.TermsOfType {
		for _, term := range terms {
			if ds.Graph.LabelCount(term) >= opt.MinCount {
				popular[t] = append(popular[t], term)
			}
		}
		slices.Sort(popular[t])
	}

	// Type adjacency from relation templates (undirected for relatedness).
	related := make(map[graph.Label][]graph.Label)
	addRel := func(a, b graph.Label) {
		if !slices.Contains(related[a], b) {
			related[a] = append(related[a], b)
		}
	}
	for _, p := range ds.RelationPairs {
		addRel(p[0], p[1])
		addRel(p[1], p[0])
	}

	var out []Query
	for qi, size := range opt.Sizes {
		q := buildQuery(ds, rng, popular, related, size)
		if q == nil {
			continue
		}
		q.ID = fmt.Sprintf("Q%d", qi+1)
		out = append(out, *q)
	}
	return out
}

// buildQuery walks the type-relatedness graph collecting one popular term
// per visited type until the query reaches the requested size.
func buildQuery(ds *Dataset, rng *rand.Rand, popular map[graph.Label][]graph.Label, related map[graph.Label][]graph.Label, size int) *Query {
	// Start types with popular terms, deterministic order.
	var starts []graph.Label
	for t, terms := range popular {
		if len(terms) > 0 {
			starts = append(starts, t)
		}
	}
	slices.Sort(starts)
	if len(starts) == 0 {
		return nil
	}

	for attempt := 0; attempt < 50; attempt++ {
		start := starts[rng.Intn(len(starts))]
		usedTypes := map[graph.Label]bool{start: true}
		usedTerms := map[graph.Label]bool{}
		var kws []graph.Label
		frontier := []graph.Label{start}
		for len(kws) < size && len(frontier) > 0 {
			t := frontier[0]
			frontier = frontier[1:]
			terms := popular[t]
			if len(terms) > 0 {
				term := terms[rng.Intn(len(terms))]
				if !usedTerms[term] {
					usedTerms[term] = true
					kws = append(kws, term)
				}
			}
			for _, nt := range related[t] {
				if !usedTypes[nt] && len(popular[nt]) > 0 {
					usedTypes[nt] = true
					frontier = append(frontier, nt)
				}
			}
		}
		// Allow several terms of the same type when relatedness runs dry.
		for _, t := range starts {
			for _, term := range popular[t] {
				if len(kws) >= size {
					break
				}
				if !usedTerms[term] {
					usedTerms[term] = true
					kws = append(kws, term)
				}
			}
		}
		if len(kws) == size {
			counts := make([]int, size)
			for i, l := range kws {
				counts[i] = ds.Graph.LabelCount(l)
			}
			return &Query{Keywords: kws, Counts: counts}
		}
	}
	return nil
}

package datagen

import (
	"encoding/json"
	"fmt"
	"io"

	"bigindex/internal/graph"
)

// Workload persistence: queries are stored by keyword *names* (not interned
// Labels), so a saved workload survives dataset regeneration and can be
// shared between machines as long as the vocabulary matches.

type workloadFile struct {
	Dataset string          `json:"dataset,omitempty"`
	Queries []workloadQuery `json:"queries"`
}

type workloadQuery struct {
	ID       string   `json:"id"`
	Keywords []string `json:"keywords"`
}

// SaveWorkload writes queries as JSON, resolving labels through dict.
func SaveWorkload(w io.Writer, dataset string, dict *graph.Dict, queries []Query) error {
	wf := workloadFile{Dataset: dataset}
	for _, q := range queries {
		wf.Queries = append(wf.Queries, workloadQuery{ID: q.ID, Keywords: q.Names(dict)})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(wf)
}

// LoadWorkload reads a workload saved by SaveWorkload and re-resolves the
// keywords against ds, recomputing the per-keyword counts. Keywords missing
// from the dataset's dictionary are an error (the workload does not match
// the dataset).
func LoadWorkload(r io.Reader, ds *Dataset) ([]Query, error) {
	var wf workloadFile
	if err := json.NewDecoder(r).Decode(&wf); err != nil {
		return nil, fmt.Errorf("datagen: decoding workload: %w", err)
	}
	var out []Query
	for _, wq := range wf.Queries {
		q := Query{ID: wq.ID}
		for _, name := range wq.Keywords {
			l := ds.Graph.Dict().Lookup(name)
			if l == graph.NoLabel {
				return nil, fmt.Errorf("datagen: workload keyword %q not in dataset %s", name, ds.Name)
			}
			q.Keywords = append(q.Keywords, l)
			q.Counts = append(q.Counts, ds.Graph.LabelCount(l))
		}
		out = append(out, q)
	}
	return out, nil
}

// Package faultio provides fault-injecting io.Reader/io.Writer wrappers
// and filesystem hooks for crash-safety tests. The snapshot suite uses
// them to kill writes at every byte offset, simulate disks that silently
// drop tail bytes, make fsync or rename fail, and slow streams down so
// reload/query interleavings become reproducible.
//
// All injected failures return (or wrap) ErrInjected so tests can assert
// the failure they caused is the failure they observed.
package faultio

import (
	"errors"
	"io"
	"os"
	"time"
)

// ErrInjected is the sentinel error every injected fault carries.
var ErrInjected = errors.New("faultio: injected fault")

// FailWriter forwards to w until budget bytes have been written, then
// fails every write with ErrInjected. A write straddling the boundary
// writes the in-budget prefix and reports a short-write error, which is
// exactly how a full disk or a killed process truncates a stream.
func FailWriter(w io.Writer, budget int64) io.Writer {
	return &failWriter{w: w, left: budget}
}

type failWriter struct {
	w    io.Writer
	left int64
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, ErrInjected
	}
	if int64(len(p)) <= f.left {
		n, err := f.w.Write(p)
		f.left -= int64(n)
		return n, err
	}
	n, err := f.w.Write(p[:f.left])
	f.left -= int64(n)
	if err == nil {
		err = ErrInjected
	}
	return n, err
}

// ShortWriter forwards the first budget bytes to w and silently discards
// the rest while reporting success — a lying disk or kernel that loses
// tail bytes after acknowledging the write. Unlike FailWriter the caller
// never sees an error, so only load-time validation can catch the damage.
func ShortWriter(w io.Writer, budget int64) io.Writer {
	return &shortWriter{w: w, left: budget}
}

type shortWriter struct {
	w    io.Writer
	left int64
}

func (s *shortWriter) Write(p []byte) (int, error) {
	if s.left <= 0 {
		return len(p), nil
	}
	keep := int64(len(p))
	if keep > s.left {
		keep = s.left
	}
	n, err := s.w.Write(p[:keep])
	s.left -= int64(n)
	if err != nil {
		return n, err
	}
	return len(p), nil
}

// SlowWriter sleeps d before every Write, stretching the window in which
// concurrent activity (queries, reloads, shutdown) can interleave with a
// snapshot write.
func SlowWriter(w io.Writer, d time.Duration) io.Writer {
	return writerFunc(func(p []byte) (int, error) {
		time.Sleep(d)
		return w.Write(p)
	})
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// FailReader forwards from r until budget bytes have been read, then
// fails every read with ErrInjected (an I/O error mid-load).
func FailReader(r io.Reader, budget int64) io.Reader {
	return &failReader{r: r, left: budget}
}

type failReader struct {
	r    io.Reader
	left int64
}

func (f *failReader) Read(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, ErrInjected
	}
	if int64(len(p)) > f.left {
		p = p[:f.left]
	}
	n, err := f.r.Read(p)
	f.left -= int64(n)
	return n, err
}

// ShortReader yields at most budget bytes of r and then clean EOF — a
// truncated file whose tail never reached the disk.
func ShortReader(r io.Reader, budget int64) io.Reader {
	return io.LimitReader(r, budget)
}

// SlowReader sleeps d before every Read.
func SlowReader(r io.Reader, d time.Duration) io.Reader {
	return readerFunc(func(p []byte) (int, error) {
		time.Sleep(d)
		return r.Read(p)
	})
}

type readerFunc func(p []byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }

// FsyncError is a snapshot fsync hook that fails with ErrInjected without
// syncing: a crash between write and fsync, when the page cache still has
// the data but the platters never got it.
func FsyncError(*os.File) error { return ErrInjected }

// RenameError is a snapshot rename hook that fails with ErrInjected
// without renaming: a crash after the temp file is durable but before it
// is published under its final name.
func RenameError(_, _ string) error { return ErrInjected }

// Flip returns a copy of data with the byte at off XOR-flipped — the
// single-bit-rot primitive of the corruption sweeps.
func Flip(data []byte, off int) []byte {
	out := append([]byte(nil), data...)
	out[off] ^= 0xff
	return out
}

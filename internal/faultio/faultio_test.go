package faultio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestFailWriter(t *testing.T) {
	var buf bytes.Buffer
	w := FailWriter(&buf, 5)
	n, err := w.Write([]byte("abc"))
	if n != 3 || err != nil {
		t.Fatalf("in-budget write: n=%d err=%v", n, err)
	}
	// Straddling write: the in-budget prefix lands, the rest errors.
	n, err = w.Write([]byte("defg"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("straddling write: n=%d err=%v", n, err)
	}
	if buf.String() != "abcde" {
		t.Fatalf("written %q, want %q", buf.String(), "abcde")
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-budget write: %v", err)
	}
}

func TestShortWriterLies(t *testing.T) {
	var buf bytes.Buffer
	w := ShortWriter(&buf, 4)
	for _, chunk := range []string{"ab", "cd", "ef"} {
		n, err := w.Write([]byte(chunk))
		if n != len(chunk) || err != nil {
			t.Fatalf("lying disk reported n=%d err=%v for %q", n, err, chunk)
		}
	}
	if buf.String() != "abcd" {
		t.Fatalf("kept %q, want %q", buf.String(), "abcd")
	}
}

func TestFailReader(t *testing.T) {
	r := FailReader(strings.NewReader("abcdef"), 4)
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err=%v, want ErrInjected", err)
	}
	if string(got) != "abcd" {
		t.Fatalf("read %q before failing, want %q", got, "abcd")
	}
}

func TestShortReaderCleanEOF(t *testing.T) {
	got, err := io.ReadAll(ShortReader(strings.NewReader("abcdef"), 4))
	if err != nil || string(got) != "abcd" {
		t.Fatalf("got %q err=%v", got, err)
	}
}

func TestSlowWrappersForward(t *testing.T) {
	var buf bytes.Buffer
	if _, err := SlowWriter(&buf, time.Microsecond).Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(SlowReader(strings.NewReader("y"), time.Microsecond))
	if err != nil || string(got) != "y" || buf.String() != "x" {
		t.Fatalf("slow wrappers mangled data: %q %q %v", buf.String(), got, err)
	}
}

func TestHooksAndFlip(t *testing.T) {
	if !errors.Is(FsyncError(nil), ErrInjected) {
		t.Fatal("FsyncError sentinel")
	}
	if !errors.Is(RenameError("a", "b"), ErrInjected) {
		t.Fatal("RenameError sentinel")
	}
	orig := []byte{1, 2, 3}
	flipped := Flip(orig, 1)
	if flipped[1] != 2^0xff || orig[1] != 2 {
		t.Fatalf("Flip must copy: orig=%v flipped=%v", orig, flipped)
	}
}

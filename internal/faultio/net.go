package faultio

import (
	"net"
	"sync"
	"time"
)

// ConnPlan is a deterministic per-connection network fault: it shapes the
// bytes written through one side of a net.Conn. The zero value injects
// nothing. Budgets count cumulative bytes written through the wrapper, so
// a fault lands at an exact protocol offset — mid-length-prefix,
// mid-frame-body, between frames — reproducibly.
type ConnPlan struct {
	// DelayWrites sleeps before every forwarded write (slow network).
	DelayWrites time.Duration
	// DuplicateWrites forwards every chunk twice (a retransmitting
	// middlebox; for framed protocols, duplicated response frames).
	DuplicateWrites bool
	// CorruptWriteAt flips one bit of the byte at this cumulative write
	// offset (-1 and 0-default: never). Exactly one bit, exactly once:
	// the CRC layer must catch it.
	CorruptWriteAt int64
	// WriteBudget stops forwarding after this many bytes (0: unlimited).
	// What happens next is CloseAfterBudget's call.
	WriteBudget int64
	// CloseAfterBudget closes the whole connection once the budget is
	// spent (truncated frame + FIN — a crashing peer). When false the
	// connection stays open and writes vanish silently, acknowledged but
	// never delivered — the half-open black hole of a partitioned network,
	// detectable only by deadline.
	CloseAfterBudget bool
}

// WrapConn applies plan to conn's writes. Reads pass through untouched:
// every fault a peer could inject into the read side is some write-side
// fault of the other endpoint, so tests wrap whichever side authors the
// bytes under attack.
func WrapConn(conn net.Conn, plan ConnPlan) net.Conn {
	if plan.CorruptWriteAt == 0 {
		plan.CorruptWriteAt = -1
	}
	return &faultConn{Conn: conn, plan: plan}
}

type faultConn struct {
	net.Conn
	plan    ConnPlan
	mu      sync.Mutex
	written int64
	dead    bool // budget spent, blackhole mode: swallow everything
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.plan.DelayWrites > 0 {
		time.Sleep(c.plan.DelayWrites)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return len(p), nil // acknowledged, never delivered
	}

	buf := p
	if at := c.plan.CorruptWriteAt; at >= c.written && at < c.written+int64(len(p)) {
		buf = append([]byte(nil), p...)
		buf[at-c.written] ^= 0x10
	}

	if c.plan.WriteBudget > 0 && c.written+int64(len(buf)) > c.plan.WriteBudget {
		keep := c.plan.WriteBudget - c.written
		if keep > 0 {
			c.Conn.Write(buf[:keep])
			c.written += keep
		}
		if c.plan.CloseAfterBudget {
			c.Conn.Close()
			return 0, ErrInjected
		}
		c.dead = true
		return len(p), nil
	}

	n, err := c.forward(buf)
	if err == nil && c.plan.DuplicateWrites {
		c.forward(buf)
	}
	if n > len(p) {
		n = len(p)
	}
	return n, err
}

func (c *faultConn) forward(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written += int64(n)
	return n, err
}

// FaultListener wraps accepted connections with the plan Plan returns for
// the i-th accepted connection (0-based). A nil plan (or nil Plan func)
// passes the connection through untouched, so a test can fault only the
// first connection, every second one, or none.
type FaultListener struct {
	net.Listener
	// Plan picks the fault plan for accepted connection i; nil return
	// means no fault.
	Plan func(i int) *ConnPlan

	mu sync.Mutex
	n  int
}

// Accept implements net.Listener.
func (l *FaultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.n
	l.n++
	l.mu.Unlock()
	if l.Plan == nil {
		return conn, nil
	}
	if plan := l.Plan(i); plan != nil {
		return WrapConn(conn, *plan), nil
	}
	return conn, nil
}

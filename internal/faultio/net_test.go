package faultio

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns the two ends of an in-memory connection.
func pipePair() (net.Conn, net.Conn) {
	return net.Pipe()
}

func readAll(t *testing.T, c net.Conn, n int, timeout time.Duration) []byte {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, n)
	got, _ := io.ReadFull(c, buf)
	return buf[:got]
}

func TestWrapConnCorruptsExactlyOneBit(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	w := WrapConn(a, ConnPlan{CorruptWriteAt: 5})
	payload := []byte("0123456789")
	go w.Write(payload)
	got := readAll(t, b, len(payload), time.Second)
	if bytes.Equal(got, payload) {
		t.Fatal("corruption did not land")
	}
	diff := 0
	for i := range payload {
		if got[i] != payload[i] {
			diff++
			if i != 5 {
				t.Fatalf("corruption at offset %d, want 5", i)
			}
			if got[i]^payload[i] != 0x10 {
				t.Fatalf("corruption flipped %#x, want one bit", got[i]^payload[i])
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes corrupted, want exactly 1", diff)
	}
}

func TestWrapConnCorruptionSpansWrites(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	w := WrapConn(a, ConnPlan{CorruptWriteAt: 7})
	go func() {
		w.Write([]byte("01234")) // offsets 0-4
		w.Write([]byte("56789")) // offsets 5-9: corrupt lands at index 2 here
	}()
	got := readAll(t, b, 10, time.Second)
	for i := range got {
		if (got[i] != "0123456789"[i]) != (i == 7) {
			t.Fatalf("byte %d: got %q", i, got[i])
		}
	}
}

func TestWrapConnTruncateAndClose(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	w := WrapConn(a, ConnPlan{WriteBudget: 4, CloseAfterBudget: true})
	done := make(chan struct{})
	var got []byte
	go func() {
		got = readAll(t, b, 10, time.Second)
		close(done)
	}()
	if _, err := w.Write([]byte("0123456789")); err != ErrInjected {
		t.Fatalf("over-budget write error = %v, want ErrInjected", err)
	}
	<-done
	if string(got) != "0123" {
		t.Fatalf("peer saw %q, want the 4-byte prefix", got)
	}
	// The connection is closed: further writes fail at the net layer.
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("write after injected close should fail")
	}
}

func TestWrapConnBlackhole(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	w := WrapConn(a, ConnPlan{WriteBudget: 4})
	go func() {
		if n, err := w.Write([]byte("0123456789")); err != nil || n != 10 {
			t.Errorf("blackhole write = (%d, %v), want acknowledged (10, nil)", n, err)
		}
		// Everything after the budget vanishes without error.
		if n, err := w.Write([]byte("more")); err != nil || n != 4 {
			t.Errorf("post-budget write = (%d, %v), want silently swallowed", n, err)
		}
	}()
	got := readAll(t, b, 10, 300*time.Millisecond)
	if string(got) != "0123" {
		t.Fatalf("peer saw %q, want only the in-budget prefix", got)
	}
}

func TestWrapConnDuplicateAndDelay(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	start := time.Now()
	w := WrapConn(a, ConnPlan{DuplicateWrites: true, DelayWrites: 20 * time.Millisecond})
	go w.Write([]byte("abc"))
	got := readAll(t, b, 6, time.Second)
	if string(got) != "abcabc" {
		t.Fatalf("peer saw %q, want the chunk twice", got)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("delay did not apply")
	}
}

func TestFaultListenerPerConnectionPlans(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := &FaultListener{Listener: inner, Plan: func(i int) *ConnPlan {
		if i == 0 {
			return &ConnPlan{CorruptWriteAt: 1}
		}
		return nil
	}}
	defer ln.Close()

	srvErr := make(chan error, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := ln.Accept()
			if err != nil {
				srvErr <- err
				return
			}
			c.Write([]byte("hello"))
			c.Close()
		}
		srvErr <- nil
	}()

	read := func() string {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		b, _ := io.ReadAll(c)
		return string(b)
	}
	if got := read(); got == "hello" {
		t.Fatalf("first connection should be corrupted, got %q", got)
	}
	if got := read(); got != "hello" {
		t.Fatalf("second connection should be clean, got %q", got)
	}
	if err := <-srvErr; err != nil {
		t.Fatal(err)
	}
}

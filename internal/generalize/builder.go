package generalize

import (
	"fmt"

	"bigindex/internal/graph"
)

// ConfigBuilder grows a configuration mapping-by-mapping in O(1) per
// addition, maintaining the support-weighted distortion of Sec. 3.2
// incrementally. Algorithm 1 accepts thousands of mappings on knowledge
// graphs (most entity labels generalize to their type), so rebuilding an
// immutable Config per acceptance would make the greedy search quadratic.
type ConfigBuilder struct {
	g   *graph.Graph
	fwd map[graph.Label]graph.Label
	inv map[graph.Label][]graph.Label

	// Incremental distortion state: distortNum = Σ_t (1 − 1/|S_t|)·supSum_t
	// over targets t with member sets S_t; supTotal = Σ_{ℓ∈X} sup(ℓ).
	supSum     map[graph.Label]float64
	distortNum float64
	supTotal   float64
}

// NewConfigBuilder returns an empty builder; g supplies label supports for
// the distortion bookkeeping.
func NewConfigBuilder(g *graph.Graph) *ConfigBuilder {
	return &ConfigBuilder{
		g:      g,
		fwd:    make(map[graph.Label]graph.Label),
		inv:    make(map[graph.Label][]graph.Label),
		supSum: make(map[graph.Label]float64),
	}
}

// Len reports |C|.
func (b *ConfigBuilder) Len() int { return len(b.fwd) }

// InDomain reports whether the builder already maps l.
func (b *ConfigBuilder) InDomain(l graph.Label) bool {
	_, ok := b.fwd[l]
	return ok
}

// Map applies the current mappings (identity outside the domain).
func (b *ConfigBuilder) Map(l graph.Label) graph.Label {
	if to, ok := b.fwd[l]; ok {
		return to
	}
	return l
}

// Add accepts the mapping m; it errors if m.From is already mapped
// elsewhere.
func (b *ConfigBuilder) Add(m Mapping) error {
	if m.From == m.To {
		return nil
	}
	if prev, ok := b.fwd[m.From]; ok {
		if prev == m.To {
			return nil
		}
		return fmt.Errorf("generalize: label %d already mapped to %d", m.From, prev)
	}
	b.removeTargetContribution(m.To)
	b.fwd[m.From] = m.To
	b.inv[m.To] = append(b.inv[m.To], m.From)
	sup := b.g.Support(m.From)
	b.supSum[m.To] += sup
	b.supTotal += sup
	b.addTargetContribution(m.To)
	return nil
}

func (b *ConfigBuilder) removeTargetContribution(t graph.Label) {
	if n := len(b.inv[t]); n > 0 {
		b.distortNum -= (1 - 1/float64(n)) * b.supSum[t]
	}
}

func (b *ConfigBuilder) addTargetContribution(t graph.Label) {
	if n := len(b.inv[t]); n > 0 {
		b.distortNum += (1 - 1/float64(n)) * b.supSum[t]
	}
}

// Distortion returns distort(G, C) for the current mappings (Sec. 3.2),
// maintained incrementally.
func (b *ConfigBuilder) Distortion() float64 {
	if len(b.fwd) == 0 || b.supTotal == 0 {
		return 0
	}
	return b.distortNum / (float64(len(b.fwd)) * b.supTotal)
}

// DistortionWith returns what Distortion would be after Add(m), without
// mutating the builder. Adding ℓ→t changes only target t's group term.
func (b *ConfigBuilder) DistortionWith(m Mapping) float64 {
	if m.From == m.To || b.InDomain(m.From) {
		return b.Distortion()
	}
	n := len(b.inv[m.To])
	sup := b.g.Support(m.From)
	num := b.distortNum
	if n > 0 {
		num -= (1 - 1/float64(n)) * b.supSum[m.To]
	}
	num += (1 - 1/float64(n+1)) * (b.supSum[m.To] + sup)
	total := b.supTotal + sup
	if total == 0 {
		return 0
	}
	return num / (float64(len(b.fwd)+1) * total)
}

// Snapshot freezes the builder into an immutable Config.
func (b *ConfigBuilder) Snapshot() *Config {
	ms := make([]Mapping, 0, len(b.fwd))
	for from, to := range b.fwd {
		ms = append(ms, Mapping{From: from, To: to})
	}
	return MustConfig(ms)
}

// Mapper is the minimal label-rewriting view shared by Config and
// ConfigBuilder; the sampling estimator scores either.
type Mapper interface {
	Map(graph.Label) graph.Label
	InDomain(graph.Label) bool
}

var (
	_ Mapper = (*Config)(nil)
	_ Mapper = (*ConfigBuilder)(nil)
)

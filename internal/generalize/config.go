// Package generalize implements label generalization and specialization
// (Gen / Spec, Sec. 2 and Sec. 3.1): a generalization configuration C maps
// labels to direct supertypes from the ontology graph, Gen(G, C) rewrites
// vertex labels simultaneously, and Spec reverses the rewrite during answer
// generation. The package also provides the semantic-distortion measure of
// the index cost model (Sec. 3.2).
package generalize

import (
	"errors"
	"fmt"
	"slices"

	"bigindex/internal/graph"
	"bigindex/internal/ontology"
)

// ErrNotSupertype is returned by Validate for a mapping ℓ→ℓ′ where ℓ′ is not
// a direct supertype of ℓ in the ontology.
var ErrNotSupertype = errors.New("generalize: mapping target is not a direct supertype")

// Config is a generalization configuration C = {(ℓ1→ℓ1′), …, (ℓm→ℓm′)}.
// Labels outside the domain map to themselves (the ℓ = ℓ′ case of the
// paper's definition). A Config is immutable after construction.
type Config struct {
	fwd map[graph.Label]graph.Label   // ℓ -> ℓ′
	inv map[graph.Label][]graph.Label // ℓ′ -> {ℓ | (ℓ→ℓ′) ∈ C}, sorted
}

// Mapping is one (From → To) entry of a configuration.
type Mapping struct {
	From, To graph.Label
}

// NewConfig builds a configuration from mappings. Identity mappings are
// dropped. It returns an error if two mappings disagree on the same source
// label (a configuration is a function on Σ).
func NewConfig(mappings []Mapping) (*Config, error) {
	c := &Config{
		fwd: make(map[graph.Label]graph.Label, len(mappings)),
		inv: make(map[graph.Label][]graph.Label),
	}
	for _, m := range mappings {
		if m.From == m.To {
			continue
		}
		if prev, ok := c.fwd[m.From]; ok {
			if prev != m.To {
				return nil, fmt.Errorf("generalize: conflicting mappings for label %d (%d vs %d)", m.From, prev, m.To)
			}
			continue
		}
		c.fwd[m.From] = m.To
		c.inv[m.To] = insertSorted(c.inv[m.To], m.From)
	}
	return c, nil
}

// MustConfig is NewConfig that panics on error; for literals in tests.
func MustConfig(mappings []Mapping) *Config {
	c, err := NewConfig(mappings)
	if err != nil {
		panic(err)
	}
	return c
}

// EmptyConfig returns the identity configuration.
func EmptyConfig() *Config { return MustConfig(nil) }

func insertSorted(s []graph.Label, l graph.Label) []graph.Label {
	i, _ := slices.BinarySearch(s, l)
	if i < len(s) && s[i] == l {
		return s
	}
	return slices.Insert(s, i, l)
}

// Len reports the number of non-identity mappings, |C|.
func (c *Config) Len() int { return len(c.fwd) }

// Map returns Gen(ℓ): ℓ′ if (ℓ→ℓ′) ∈ C, otherwise ℓ itself.
func (c *Config) Map(l graph.Label) graph.Label {
	if to, ok := c.fwd[l]; ok {
		return to
	}
	return l
}

// InDomain reports whether C generalizes l.
func (c *Config) InDomain(l graph.Label) bool {
	_, ok := c.fwd[l]
	return ok
}

// Domain returns X = {ℓ | (ℓ→ℓ′) ∈ C}, ascending.
func (c *Config) Domain() []graph.Label {
	d := make([]graph.Label, 0, len(c.fwd))
	for l := range c.fwd {
		d = append(d, l)
	}
	slices.Sort(d)
	return d
}

// Image returns Y = {ℓ′ | (ℓ→ℓ′) ∈ C}, ascending.
func (c *Config) Image() []graph.Label {
	im := make([]graph.Label, 0, len(c.inv))
	for l := range c.inv {
		im = append(im, l)
	}
	slices.Sort(im)
	return im
}

// Preimage returns {ℓ | (ℓ→ℓ′) ∈ C} for ℓ′ = to (sorted, shared slice).
// During specialization a generalized label ℓ′ specializes to Preimage(ℓ′),
// plus ℓ′ itself when some vertex carried ℓ′ natively.
func (c *Config) Preimage(to graph.Label) []graph.Label { return c.inv[to] }

// Mappings returns the non-identity mappings sorted by source label.
func (c *Config) Mappings() []Mapping {
	ms := make([]Mapping, 0, len(c.fwd))
	for from, to := range c.fwd {
		ms = append(ms, Mapping{from, to})
	}
	slices.SortFunc(ms, func(a, b Mapping) int { return int(a.From) - int(b.From) })
	return ms
}

// Extend returns a new configuration with one extra mapping. It errors on a
// conflicting source.
func (c *Config) Extend(m Mapping) (*Config, error) {
	return NewConfig(append(c.Mappings(), m))
}

// Validate checks the paper's configuration constraint (Sec. 2): every
// mapping target must be a *direct* supertype of its source in ont.
func (c *Config) Validate(ont *ontology.Ontology) error {
	for from, to := range c.fwd {
		if !ont.IsDirectSupertype(to, from) {
			fn, _ := ont.Dict().NameOK(from)
			tn, _ := ont.Dict().NameOK(to)
			return fmt.Errorf("%w: %q (%d) -> %q (%d)", ErrNotSupertype, fn, from, tn, to)
		}
	}
	return nil
}

// Apply computes Gen(G, C): the generalized graph with identical topology
// and simultaneously rewritten labels. The result shares adjacency storage
// with g (labels are the only copy).
func (c *Config) Apply(g *graph.Graph) *graph.Graph {
	if len(c.fwd) == 0 {
		return g
	}
	return g.Relabel(c.Map)
}

// GenQuery generalizes query keywords: Gen(Q, C) of Sec. 4.1.
func (c *Config) GenQuery(q []graph.Label) []graph.Label {
	out := make([]graph.Label, len(q))
	for i, l := range q {
		out[i] = c.Map(l)
	}
	return out
}

// IsLabelPreserving verifies Def. 2.2 against a concrete pair (G, Gen(G,C)):
// for every vertex the generalized label is either mapped by C from the
// original or equal to it. Gen by construction satisfies this; the check
// exists for property tests and for validating externally supplied layers.
func (c *Config) IsLabelPreserving(orig, gen *graph.Graph) bool {
	if orig.NumVertices() != gen.NumVertices() {
		return false
	}
	for v := 0; v < orig.NumVertices(); v++ {
		lo, lg := orig.Label(graph.V(v)), gen.Label(graph.V(v))
		if lg != c.Map(lo) {
			return false
		}
	}
	return true
}

// Sequence is the configuration list C = [C¹, …, Cʰ] of a BiG-index
// (Def. 3.1). Gen^m composes the first m configurations.
type Sequence []*Config

// GenLabel generalizes l through the first m configurations:
// Gen^m(l) = C^m(…C²(C¹(l))…).
func (s Sequence) GenLabel(l graph.Label, m int) graph.Label {
	for i := 0; i < m && i < len(s); i++ {
		l = s[i].Map(l)
	}
	return l
}

// GenQuery generalizes all keywords to layer m (Gen^m(Q, C^m), Sec. 4.1).
func (s Sequence) GenQuery(q []graph.Label, m int) []graph.Label {
	out := make([]graph.Label, len(q))
	for i, l := range q {
		out[i] = s.GenLabel(l, m)
	}
	return out
}

// DistinctAtLayer reports |Gen^m(Q, C^m)| treating the result as a set: the
// quantity of Condition 1 in Def. 4.1 (a legal query layer must not merge
// two query keywords into one).
func (s Sequence) DistinctAtLayer(q []graph.Label, m int) int {
	seen := make(map[graph.Label]bool, len(q))
	for _, l := range q {
		seen[s.GenLabel(l, m)] = true
	}
	return len(seen)
}

package generalize

import "bigindex/internal/graph"

// LabelDistortion returns distort(ℓ) = 1 − 1/|X_ℓ| for a label in C's
// domain, where X_ℓ is the set of labels generalized to the same supertype
// as ℓ (Sec. 3.2). It quantifies how hard it becomes to tell ℓ apart from
// its siblings after generalization. Labels outside the domain have zero
// distortion.
func (c *Config) LabelDistortion(l graph.Label) float64 {
	to, ok := c.fwd[l]
	if !ok {
		return 0
	}
	siblings := len(c.inv[to])
	return 1 - 1/float64(siblings)
}

// BasicDistortion returns the unweighted distortion of C:
// (Σ_{ℓ∈X} distort(ℓ)) / |X|.
func (c *Config) BasicDistortion() float64 {
	if len(c.fwd) == 0 {
		return 0
	}
	sum := 0.0
	for l := range c.fwd {
		sum += c.LabelDistortion(l)
	}
	return sum / float64(len(c.fwd))
}

// Distortion returns the support-weighted distortion distort(G, C) of
// Sec. 3.2:
//
//	distort(G,C) = (Σ distort(ℓ)·sup(ℓ)) / (|X| · Σ sup(ℓ)),
//
// where sup(ℓ) = |V_ℓ|/|V| is the label's support in the data graph. The
// weighting captures that distorting frequent labels hurts much more than
// distorting rare ones.
func (c *Config) Distortion(g *graph.Graph) float64 {
	if len(c.fwd) == 0 {
		return 0
	}
	var num, supSum float64
	for l := range c.fwd {
		sup := g.Support(l)
		num += c.LabelDistortion(l) * sup
		supSum += sup
	}
	if supSum == 0 {
		// None of the domain labels occur in G; generalizing them costs
		// nothing semantically.
		return 0
	}
	return num / (float64(len(c.fwd)) * supSum)
}

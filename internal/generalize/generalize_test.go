package generalize

import (
	"errors"
	"math"
	"testing"

	"bigindex/internal/graph"
	"bigindex/internal/ontology"
)

func fixture(t *testing.T) (*graph.Graph, *ontology.Ontology, map[string]graph.Label) {
	t.Helper()
	dict := graph.NewDict()
	ont := ontology.New(dict)
	for _, r := range [][2]string{
		{"pg", "Investor"}, {"wb", "Investor"}, {"Investor", "Person"},
		{"ucb", "Univ"}, {"harvard", "Univ"}, {"Univ", "Org"},
		{"ca", "Western"}, {"Western", "State"},
	} {
		if err := ont.AddSupertypeNames(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	b := graph.NewBuilder(dict)
	pg := b.AddVertex("pg")
	wb := b.AddVertex("wb")
	ucb := b.AddVertex("ucb")
	ha := b.AddVertex("harvard")
	ca := b.AddVertex("ca")
	b.AddEdge(pg, ucb)
	b.AddEdge(wb, ha)
	b.AddEdge(ucb, ca)
	g := b.Build()
	ls := map[string]graph.Label{}
	for _, n := range []string{"pg", "wb", "Investor", "Person", "ucb", "harvard", "Univ", "Org", "ca", "Western", "State"} {
		ls[n] = dict.Lookup(n)
	}
	return g, ont, ls
}

func TestConfigBasics(t *testing.T) {
	_, _, ls := fixture(t)
	cfg := MustConfig([]Mapping{
		{ls["pg"], ls["Investor"]},
		{ls["wb"], ls["Investor"]},
		{ls["ucb"], ls["Univ"]},
	})
	if cfg.Len() != 3 {
		t.Fatalf("Len = %d", cfg.Len())
	}
	if cfg.Map(ls["pg"]) != ls["Investor"] {
		t.Fatal("Map(pg) wrong")
	}
	if cfg.Map(ls["ca"]) != ls["ca"] {
		t.Fatal("identity outside domain broken")
	}
	if got := cfg.Preimage(ls["Investor"]); len(got) != 2 {
		t.Fatalf("Preimage(Investor) = %v", got)
	}
	if d := cfg.Domain(); len(d) != 3 {
		t.Fatalf("Domain = %v", d)
	}
	if im := cfg.Image(); len(im) != 2 {
		t.Fatalf("Image = %v", im)
	}
}

func TestConfigConflict(t *testing.T) {
	_, _, ls := fixture(t)
	_, err := NewConfig([]Mapping{
		{ls["pg"], ls["Investor"]},
		{ls["pg"], ls["Univ"]},
	})
	if err == nil {
		t.Fatal("conflicting mappings should be rejected")
	}
	// Duplicate identical mapping is fine.
	c, err := NewConfig([]Mapping{
		{ls["pg"], ls["Investor"]},
		{ls["pg"], ls["Investor"]},
	})
	if err != nil || c.Len() != 1 {
		t.Fatalf("duplicate mapping mishandled: %v %d", err, c.Len())
	}
}

func TestValidate(t *testing.T) {
	_, ont, ls := fixture(t)
	good := MustConfig([]Mapping{{ls["pg"], ls["Investor"]}})
	if err := good.Validate(ont); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// Person is a transitive but not direct supertype of pg.
	bad := MustConfig([]Mapping{{ls["pg"], ls["Person"]}})
	if err := bad.Validate(ont); !errors.Is(err, ErrNotSupertype) {
		t.Fatalf("skip-level mapping should fail: %v", err)
	}
}

func TestApplyIsLabelPreserving(t *testing.T) {
	g, _, ls := fixture(t)
	cfg := MustConfig([]Mapping{
		{ls["pg"], ls["Investor"]},
		{ls["wb"], ls["Investor"]},
	})
	gen := cfg.Apply(g)
	if !cfg.IsLabelPreserving(g, gen) {
		t.Fatal("Gen must be label-preserving (Def 2.2)")
	}
	if gen.LabelCount(ls["Investor"]) != 2 {
		t.Fatal("both investors should be relabeled")
	}
	if gen.NumEdges() != g.NumEdges() {
		t.Fatal("Gen must not change topology")
	}
	// Empty config returns the same graph.
	if EmptyConfig().Apply(g) != g {
		t.Fatal("identity Apply should be a no-op")
	}
}

func TestGenQueryAndSequence(t *testing.T) {
	_, _, ls := fixture(t)
	c1 := MustConfig([]Mapping{{ls["pg"], ls["Investor"]}, {ls["ucb"], ls["Univ"]}})
	c2 := MustConfig([]Mapping{{ls["Investor"], ls["Person"]}, {ls["Univ"], ls["Org"]}})
	seq := Sequence{c1, c2}

	q := []graph.Label{ls["pg"], ls["ucb"]}
	if got := seq.GenQuery(q, 0); got[0] != ls["pg"] {
		t.Fatal("Gen^0 must be identity")
	}
	if got := seq.GenQuery(q, 1); got[0] != ls["Investor"] || got[1] != ls["Univ"] {
		t.Fatalf("Gen^1 = %v", got)
	}
	if got := seq.GenQuery(q, 2); got[0] != ls["Person"] || got[1] != ls["Org"] {
		t.Fatalf("Gen^2 = %v", got)
	}
	// Beyond the sequence length the last layer persists.
	if got := seq.GenLabel(ls["pg"], 99); got != ls["Person"] {
		t.Fatalf("GenLabel beyond h = %v", got)
	}
}

func TestDistinctAtLayer(t *testing.T) {
	_, _, ls := fixture(t)
	c1 := MustConfig([]Mapping{{ls["pg"], ls["Investor"]}, {ls["wb"], ls["Investor"]}})
	seq := Sequence{c1}
	q := []graph.Label{ls["pg"], ls["wb"]}
	if n := seq.DistinctAtLayer(q, 0); n != 2 {
		t.Fatalf("layer 0 distinct = %d", n)
	}
	// Both keywords merge into Investor at layer 1: Condition 1 of Def 4.1
	// rules this layer out.
	if n := seq.DistinctAtLayer(q, 1); n != 1 {
		t.Fatalf("layer 1 distinct = %d, want 1", n)
	}
}

func TestDistortion(t *testing.T) {
	g, _, ls := fixture(t)
	// Example 3.1: two labels to one supertype -> distort = 1/2 each.
	cfg := MustConfig([]Mapping{
		{ls["pg"], ls["Investor"]},
		{ls["wb"], ls["Investor"]},
	})
	if d := cfg.LabelDistortion(ls["pg"]); d != 0.5 {
		t.Fatalf("LabelDistortion = %v, want 0.5", d)
	}
	if d := cfg.LabelDistortion(ls["ca"]); d != 0 {
		t.Fatalf("outside domain distortion = %v, want 0", d)
	}
	if d := cfg.BasicDistortion(); d != 0.5 {
		t.Fatalf("BasicDistortion = %v, want 0.5", d)
	}
	// Weighted: both labels have equal support (1/5 each):
	// num = 0.5*(1/5)+0.5*(1/5) = 0.2; denom = 2 * 0.4 = 0.8 -> 0.25.
	if d := cfg.Distortion(g); math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("Distortion = %v, want 0.25", d)
	}
	if d := EmptyConfig().Distortion(g); d != 0 {
		t.Fatalf("empty distortion = %v", d)
	}
	// A single mapping always has zero distortion (|X_l| = 1).
	single := MustConfig([]Mapping{{ls["pg"], ls["Investor"]}})
	if d := single.Distortion(g); d != 0 {
		t.Fatalf("singleton distortion = %v", d)
	}
}

func TestDistortionAbsentLabels(t *testing.T) {
	g, _, ls := fixture(t)
	// Labels not occurring in g: support 0 -> distortion 0 by convention.
	cfg := MustConfig([]Mapping{
		{ls["Investor"], ls["Person"]},
		{ls["Western"], ls["State"]},
	})
	if d := cfg.Distortion(g); d != 0 {
		t.Fatalf("absent-label distortion = %v, want 0", d)
	}
}

func TestConfigBuilderMatchesConfig(t *testing.T) {
	g, _, ls := fixture(t)
	mappings := []Mapping{
		{ls["pg"], ls["Investor"]},
		{ls["wb"], ls["Investor"]},
		{ls["ucb"], ls["Univ"]},
		{ls["harvard"], ls["Univ"]},
		{ls["ca"], ls["Western"]},
	}
	b := NewConfigBuilder(g)
	for i, m := range mappings {
		// DistortionWith must predict the post-Add value.
		predicted := b.DistortionWith(m)
		if err := b.Add(m); err != nil {
			t.Fatal(err)
		}
		if got := b.Distortion(); math.Abs(got-predicted) > 1e-12 {
			t.Fatalf("step %d: DistortionWith=%v, after Add=%v", i, predicted, got)
		}
		// Builder distortion must equal immutable Config distortion.
		want := MustConfig(mappings[:i+1]).Distortion(g)
		if got := b.Distortion(); math.Abs(got-want) > 1e-12 {
			t.Fatalf("step %d: builder=%v config=%v", i, got, want)
		}
	}
	snap := b.Snapshot()
	if snap.Len() != len(mappings) {
		t.Fatalf("Snapshot Len = %d", snap.Len())
	}
	for _, m := range mappings {
		if snap.Map(m.From) != m.To {
			t.Fatalf("Snapshot lost mapping %v", m)
		}
	}
}

func TestConfigBuilderConflict(t *testing.T) {
	g, _, ls := fixture(t)
	b := NewConfigBuilder(g)
	if err := b.Add(Mapping{ls["pg"], ls["Investor"]}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(Mapping{ls["pg"], ls["Univ"]}); err == nil {
		t.Fatal("conflicting Add should fail")
	}
	if err := b.Add(Mapping{ls["pg"], ls["Investor"]}); err != nil {
		t.Fatalf("idempotent Add should succeed: %v", err)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d", b.Len())
	}
}

package graph

import (
	"fmt"
	"io"
)

// WriteBody serializes only the graph structure (labels + edges), without
// the dictionary. Used by multi-graph containers — a BiG-index stores many
// layers sharing one dictionary, which must be written exactly once or the
// shared Label values would diverge on load.
func (g *Graph) WriteBody(w io.Writer) error {
	if err := writeU32(w, uint32(g.NumVertices())); err != nil {
		return err
	}
	for _, l := range g.labels {
		if err := writeU32(w, uint32(l)); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(g.NumEdges())); err != nil {
		return err
	}
	for v := V(0); int(v) < g.NumVertices(); v++ {
		for _, to := range g.Out(v) {
			if err := writeU32(w, uint32(v)); err != nil {
				return err
			}
			if err := writeU32(w, uint32(to)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadBody deserializes a graph written by WriteBody against an existing
// dictionary (labels must be within the dictionary's range).
func ReadBody(r io.Reader, dict *Dict) (*Graph, error) {
	nV, err := readU32(r)
	if err != nil {
		return nil, err
	}
	b := NewBuilder(dict)
	for i := uint32(0); i < nV; i++ {
		l, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if l == 0 || int(l) > dict.Len() {
			return nil, fmt.Errorf("%w: vertex label %d outside dictionary", ErrBadFormat, l)
		}
		b.AddVertexLabel(Label(l))
	}
	nE, err := readU32(r)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nE; i++ {
		from, err := readU32(r)
		if err != nil {
			return nil, err
		}
		to, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if from >= nV || to >= nV {
			return nil, fmt.Errorf("%w: edge (%d,%d) out of range", ErrBadFormat, from, to)
		}
		b.AddEdge(V(from), V(to))
	}
	return b.Build(), nil
}

// WriteDict serializes the dictionary alone (for containers).
func WriteDict(w io.Writer, d *Dict) error {
	if err := writeU32(w, uint32(d.Len())); err != nil {
		return err
	}
	for i := 1; i <= d.Len(); i++ {
		name := d.Name(Label(i))
		if err := writeU32(w, uint32(len(name))); err != nil {
			return err
		}
		if _, err := w.Write([]byte(name)); err != nil {
			return err
		}
	}
	return nil
}

// ReadDict deserializes a dictionary written by WriteDict.
func ReadDict(r io.Reader) (*Dict, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	d := NewDict()
	for i := uint32(0); i < n; i++ {
		ln, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if ln > 1<<20 {
			return nil, fmt.Errorf("%w: label length %d", ErrBadFormat, ln)
		}
		buf := make([]byte, ln)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("graph: reading dict entry: %w", err)
		}
		d.Intern(string(buf))
	}
	return d, nil
}

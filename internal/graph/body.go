package graph

import (
	"encoding/binary"
	"fmt"
	"io"
)

// WriteBody serializes only the graph structure (labels + edges), without
// the dictionary. Used by multi-graph containers — a BiG-index stores many
// layers sharing one dictionary, which must be written exactly once or the
// shared Label values would diverge on load.
func (g *Graph) WriteBody(w io.Writer) error {
	if err := writeU32(w, uint32(g.NumVertices())); err != nil {
		return err
	}
	for _, l := range g.labels {
		if err := writeU32(w, uint32(l)); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(g.NumEdges())); err != nil {
		return err
	}
	for v := V(0); int(v) < g.NumVertices(); v++ {
		for _, to := range g.Out(v) {
			if err := writeU32(w, uint32(v)); err != nil {
				return err
			}
			if err := writeU32(w, uint32(to)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadBody deserializes a graph written by WriteBody against an existing
// dictionary (labels must be within the dictionary's range).
func ReadBody(r io.Reader, dict *Dict) (*Graph, error) {
	nV, err := readU32(r)
	if err != nil {
		return nil, err
	}
	b := NewBuilder(dict)
	for i := uint32(0); i < nV; i++ {
		l, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if l == 0 || int(l) > dict.Len() {
			return nil, fmt.Errorf("%w: vertex label %d outside dictionary", ErrBadFormat, l)
		}
		b.AddVertexLabel(Label(l))
	}
	nE, err := readU32(r)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nE; i++ {
		from, err := readU32(r)
		if err != nil {
			return nil, err
		}
		to, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if from >= nV || to >= nV {
			return nil, fmt.Errorf("%w: edge (%d,%d) out of range", ErrBadFormat, from, to)
		}
		b.AddEdge(V(from), V(to))
	}
	return b.Build(), nil
}

// ReadBodyBytes decodes a WriteBody payload held fully in memory — the
// fast path for snapshot loading, where the reader-stack call per u32 of
// ReadBody dominates restore time. Every bound is checked against the
// buffer length before the corresponding allocation, so a hostile count
// can never allocate beyond the bytes actually present, and the payload
// must be consumed exactly (a section carries one body, nothing else).
//
// WriteBody emits edges sorted by (From, To) with duplicates removed, so
// the CSR arrays are filled directly from the wire — no edge-list
// materialization, copy, or sort. Input violating that order (no writer
// in this repo produces it, but the format does not forbid it) falls back
// to the Builder, which sorts and deduplicates.
func ReadBodyBytes(data []byte, dict *Dict) (*Graph, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: truncated body", ErrBadFormat)
	}
	nV := binary.LittleEndian.Uint32(data)
	if uint64(len(data)) < 8+4*uint64(nV) {
		return nil, fmt.Errorf("%w: body shorter than %d vertex labels", ErrBadFormat, nV)
	}
	labels := make([]Label, nV)
	off := 4
	for i := range labels {
		l := binary.LittleEndian.Uint32(data[off:])
		off += 4
		if l == 0 || int(l) > dict.Len() {
			return nil, fmt.Errorf("%w: vertex label %d outside dictionary", ErrBadFormat, l)
		}
		labels[i] = Label(l)
	}
	nE := binary.LittleEndian.Uint32(data[off:])
	off += 4
	if uint64(len(data)-off) != 8*uint64(nE) {
		return nil, fmt.Errorf("%w: body length inconsistent with %d edges", ErrBadFormat, nE)
	}

	outOff := make([]uint32, nV+1)
	inOff := make([]uint32, nV+1)
	sorted := true
	var prevF, prevT uint32
	for i, p := uint32(0), off; i < nE; i, p = i+1, p+8 {
		f := binary.LittleEndian.Uint32(data[p:])
		t := binary.LittleEndian.Uint32(data[p+4:])
		if f >= nV || t >= nV {
			return nil, fmt.Errorf("%w: edge (%d,%d) out of range", ErrBadFormat, f, t)
		}
		if i > 0 && (f < prevF || (f == prevF && t <= prevT)) {
			sorted = false
		}
		prevF, prevT = f, t
		outOff[f+1]++
		inOff[t+1]++
	}
	if !sorted {
		b := NewBuilder(dict)
		for _, l := range labels {
			b.AddVertexLabel(l)
		}
		for i, p := uint32(0), off; i < nE; i, p = i+1, p+8 {
			b.AddEdge(V(binary.LittleEndian.Uint32(data[p:])),
				V(binary.LittleEndian.Uint32(data[p+4:])))
		}
		return b.Build(), nil
	}

	for i := uint32(0); i < nV; i++ {
		outOff[i+1] += outOff[i]
		inOff[i+1] += inOff[i]
	}
	outAdj := make([]V, nE)
	inAdj := make([]V, nE)
	next := make([]uint32, nV)
	copy(next, inOff[:nV])
	for i, p := uint32(0), off; i < nE; i, p = i+1, p+8 {
		f := binary.LittleEndian.Uint32(data[p:])
		t := binary.LittleEndian.Uint32(data[p+4:])
		outAdj[i] = V(t) // edges arrive in CSR order already
		inAdj[next[t]] = V(f)
		next[t]++
	}
	// Posting lists carved out of one flat allocation rather than grown
	// per label; rows stay ascending because the fill walks vertices in
	// order. Capped subslices keep the rows from aliasing on append.
	counts := make([]uint32, dict.Len()+1)
	for _, l := range labels {
		counts[l]++
	}
	flat := make([]V, nV)
	posting := make(map[Label][]V)
	var start uint32
	for l := 1; l <= dict.Len(); l++ {
		if counts[l] == 0 {
			continue
		}
		end := start + counts[l]
		posting[Label(l)] = flat[start:end:end]
		counts[l] = start // reuse as this label's write cursor
		start = end
	}
	for v, l := range labels {
		flat[counts[l]] = V(v)
		counts[l]++
	}
	return &Graph{
		dict:    dict,
		labels:  labels,
		outOff:  outOff,
		outAdj:  outAdj,
		inOff:   inOff,
		inAdj:   inAdj,
		posting: posting,
	}, nil
}

// WriteDict serializes the dictionary alone (for containers).
func WriteDict(w io.Writer, d *Dict) error {
	if err := writeU32(w, uint32(d.Len())); err != nil {
		return err
	}
	for i := 1; i <= d.Len(); i++ {
		name := d.Name(Label(i))
		if err := writeU32(w, uint32(len(name))); err != nil {
			return err
		}
		if _, err := w.Write([]byte(name)); err != nil {
			return err
		}
	}
	return nil
}

// ReadDict deserializes a dictionary written by WriteDict.
func ReadDict(r io.Reader) (*Dict, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	d := NewDict()
	for i := uint32(0); i < n; i++ {
		ln, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if ln > 1<<20 {
			return nil, fmt.Errorf("%w: label length %d", ErrBadFormat, ln)
		}
		buf := make([]byte, ln)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("graph: reading dict entry: %w", err)
		}
		d.Intern(string(buf))
	}
	return d, nil
}

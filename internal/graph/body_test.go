package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomGraphT(rng *rand.Rand, n, e int) *Graph {
	b := NewBuilder(nil)
	for i := 0; i < n; i++ {
		b.AddVertex("l" + string(rune('a'+rng.Intn(5))))
	}
	for i := 0; i < e; i++ {
		b.AddEdge(V(rng.Intn(n)), V(rng.Intn(n)))
	}
	return b.Build()
}

func TestBodyRoundTripSharedDict(t *testing.T) {
	// Two graphs over one dictionary written as bodies and read back
	// against a single dictionary keep identical labels.
	dict := NewDict()
	b1 := NewBuilder(dict)
	x := b1.AddVertex("x")
	y := b1.AddVertex("y")
	b1.AddEdge(x, y)
	g1 := b1.Build()

	b2 := NewBuilder(dict)
	b2.AddVertex("y")
	b2.AddVertex("z")
	g2 := b2.Build()

	var buf bytes.Buffer
	if err := WriteDict(&buf, dict); err != nil {
		t.Fatal(err)
	}
	if err := g1.WriteBody(&buf); err != nil {
		t.Fatal(err)
	}
	if err := g2.WriteBody(&buf); err != nil {
		t.Fatal(err)
	}

	rd, err := ReadDict(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ReadBody(&buf, rd)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ReadBody(&buf, rd)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Name(r1.Label(0)) != "x" || rd.Name(r2.Label(0)) != "y" {
		t.Fatal("labels scrambled")
	}
	if !r1.HasEdge(0, 1) {
		t.Fatal("edge lost")
	}
	if r2.NumEdges() != 0 {
		t.Fatal("phantom edges")
	}
}

func TestReadBodyRejectsBadLabels(t *testing.T) {
	dict := NewDict()
	dict.Intern("only")
	var buf bytes.Buffer
	// Vertex with label 9 (out of range for a 1-entry dict).
	writeU32(&buf, 1) // nV
	writeU32(&buf, 9) // label
	if _, err := ReadBody(&buf, dict); err == nil {
		t.Fatal("bad label accepted")
	}
	// Edge out of range.
	buf.Reset()
	writeU32(&buf, 1) // nV
	writeU32(&buf, 1) // label ok
	writeU32(&buf, 1) // nE
	writeU32(&buf, 0)
	writeU32(&buf, 7)
	if _, err := ReadBody(&buf, dict); err == nil {
		t.Fatal("bad edge accepted")
	}
	// Truncated input.
	buf.Reset()
	writeU32(&buf, 5)
	if _, err := ReadBody(strings.NewReader(buf.String()[:2]), dict); err == nil {
		t.Fatal("truncated input accepted")
	}
}

// TestCSRInvariants: adjacency built through the CSR matches a naive
// adjacency map for random graphs, in both directions.
func TestCSRInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := randomGraphT(rng, n, rng.Intn(4*n))

		out := make(map[V]map[V]bool)
		in := make(map[V]map[V]bool)
		for _, e := range g.Edges() {
			if out[e.From] == nil {
				out[e.From] = map[V]bool{}
			}
			if in[e.To] == nil {
				in[e.To] = map[V]bool{}
			}
			out[e.From][e.To] = true
			in[e.To][e.From] = true
		}
		totalOut, totalIn := 0, 0
		for v := V(0); int(v) < n; v++ {
			row := g.Out(v)
			totalOut += len(row)
			for i, w := range row {
				if !out[v][w] {
					return false
				}
				if i > 0 && row[i-1] >= w {
					return false // rows must be strictly ascending (dedup + sort)
				}
				if !g.HasEdge(v, w) {
					return false
				}
			}
			rin := g.In(v)
			totalIn += len(rin)
			for _, w := range rin {
				if !in[v][w] {
					return false
				}
			}
			if g.OutDegree(v) != len(row) || g.InDegree(v) != len(rin) {
				return false
			}
		}
		return totalOut == g.NumEdges() && totalIn == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPostingListsComplete: posting lists partition the vertex set.
func TestPostingListsComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		g := randomGraphT(rng, n, rng.Intn(2*n))
		count := 0
		for _, l := range g.DistinctLabels() {
			vs := g.VerticesWithLabel(l)
			count += len(vs)
			for _, v := range vs {
				if g.Label(v) != l {
					return false
				}
			}
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdges(t *testing.T) {
	dict := NewDict()
	a := dict.Intern("a")
	g := FromEdges(dict, []Label{a, a, a}, []Edge{{From: 0, To: 1}, {From: 1, To: 2}})
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("FromEdges: %v", g)
	}
	if g.String() == "" {
		t.Fatal("String empty")
	}
}

func TestDictNamesSortedAndLabels(t *testing.T) {
	d := NewDict()
	d.Intern("zeta")
	d.Intern("alpha")
	names := d.Names()
	if names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("Names = %v", names)
	}
	ls := d.Labels()
	if len(ls) != 2 || ls[0] != 1 || ls[1] != 2 {
		t.Fatalf("Labels = %v", ls)
	}
	if _, ok := d.NameOK(Label(5)); ok {
		t.Fatal("NameOK accepted bad label")
	}
	if s, ok := d.NameOK(ls[0]); !ok || s != "zeta" {
		t.Fatalf("NameOK = %q %v", s, ok)
	}
}

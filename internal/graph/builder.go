package graph

import (
	"fmt"
	"slices"
)

// Builder accumulates vertices and edges and produces an immutable Graph.
// Vertex IDs are assigned densely in insertion order. Duplicate edges are
// deduplicated at Build time (the paper's graphs are simple graphs).
type Builder struct {
	dict   *Dict
	labels []Label
	edges  []Edge
}

// NewBuilder returns a Builder using dict for label interning. Pass nil to
// create a fresh dictionary.
func NewBuilder(dict *Dict) *Builder {
	if dict == nil {
		dict = NewDict()
	}
	return &Builder{dict: dict}
}

// Dict returns the builder's label dictionary.
func (b *Builder) Dict() *Dict { return b.dict }

// AddVertex adds a vertex labeled name and returns its ID.
func (b *Builder) AddVertex(name string) V {
	return b.AddVertexLabel(b.dict.Intern(name))
}

// AddVertexLabel adds a vertex with an already-interned label.
func (b *Builder) AddVertexLabel(l Label) V {
	v := V(len(b.labels))
	b.labels = append(b.labels, l)
	return v
}

// NumVertices reports the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.labels) }

// AddEdge records the directed edge (from, to). Both endpoints must already
// exist; AddEdge panics otherwise since that is always a construction bug.
func (b *Builder) AddEdge(from, to V) {
	n := V(len(b.labels))
	if from >= n || to >= n {
		panic(fmt.Sprintf("graph: edge (%d,%d) references vertex >= %d", from, to, n))
	}
	b.edges = append(b.edges, Edge{from, to})
}

// Build freezes the builder into an immutable Graph. The builder may be
// reused afterwards, but further additions do not affect the built graph.
func (b *Builder) Build() *Graph {
	n := len(b.labels)
	labels := append([]Label(nil), b.labels...)

	edges := append([]Edge(nil), b.edges...)
	slices.SortFunc(edges, func(a, e Edge) int {
		if a.From != e.From {
			return int(a.From) - int(e.From)
		}
		return int(a.To) - int(e.To)
	})
	edges = slices.Compact(edges)

	g := &Graph{
		dict:    b.dict,
		labels:  labels,
		outOff:  make([]uint32, n+1),
		outAdj:  make([]V, len(edges)),
		inOff:   make([]uint32, n+1),
		inAdj:   make([]V, len(edges)),
		posting: make(map[Label][]V),
	}

	// Forward CSR (edges already sorted by From, then To).
	for _, e := range edges {
		g.outOff[e.From+1]++
	}
	for i := 0; i < n; i++ {
		g.outOff[i+1] += g.outOff[i]
	}
	for i, e := range edges {
		g.outAdj[i] = e.To
	}

	// Backward CSR via counting sort on To.
	for _, e := range edges {
		g.inOff[e.To+1]++
	}
	for i := 0; i < n; i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	next := make([]uint32, n)
	copy(next, g.inOff[:n])
	for _, e := range edges {
		g.inAdj[next[e.To]] = e.From
		next[e.To]++
	}
	// In-neighbor rows are sorted because edges are sorted by From and the
	// counting sort above is stable in From order.

	for v := 0; v < n; v++ {
		l := labels[v]
		g.posting[l] = append(g.posting[l], V(v))
	}
	return g
}

// FromEdges builds a graph directly from per-vertex labels and an edge list.
// It is a convenience for tests and generators.
func FromEdges(dict *Dict, labels []Label, edges []Edge) *Graph {
	b := NewBuilder(dict)
	for _, l := range labels {
		b.AddVertexLabel(l)
	}
	for _, e := range edges {
		b.AddEdge(e.From, e.To)
	}
	return b.Build()
}

// Relabel returns a copy of g whose vertex labels have been replaced by
// mapped[v] = f(g.Label(v)). The adjacency structure is shared-by-copy
// (CSR slices are duplicated); the dictionary is shared. Relabel is the
// structural core of the generalization operator Gen (Sec. 3.1): Gen only
// rewrites labels and leaves topology untouched.
func (g *Graph) Relabel(f func(Label) Label) *Graph {
	n := g.NumVertices()
	labels := make([]Label, n)
	posting := make(map[Label][]V)
	for v := 0; v < n; v++ {
		l := f(g.labels[v])
		labels[v] = l
		posting[l] = append(posting[l], V(v))
	}
	return &Graph{
		dict:    g.dict,
		labels:  labels,
		outOff:  g.outOff,
		outAdj:  g.outAdj,
		inOff:   g.inOff,
		inAdj:   g.inAdj,
		posting: posting,
	}
}

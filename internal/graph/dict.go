package graph

import (
	"fmt"
	"sort"
)

// Label is an interned label identifier. Labels model entity/attribute
// values, types and query keywords (Sec. 2 of the paper); interning keeps
// per-vertex storage at 4 bytes and makes label comparison O(1).
type Label uint32

// NoLabel is the zero Label; it is never returned by Dict.Intern and marks
// "no such label" in lookups.
const NoLabel Label = 0

// Dict is a bidirectional string<->Label dictionary. Label 0 is reserved so
// the zero value of Label is always invalid. A Dict is shared by a data
// graph, its ontology and every summary layer built from it, so a given
// string maps to the same Label everywhere.
//
// Dict is not safe for concurrent mutation; concurrent readers are fine once
// interning has finished.
type Dict struct {
	byName map[string]Label
	names  []string // names[i] is the string for Label(i); names[0] unused
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{
		byName: make(map[string]Label),
		names:  []string{""},
	}
}

// Intern returns the Label for name, assigning a fresh one on first use.
func (d *Dict) Intern(name string) Label {
	if l, ok := d.byName[name]; ok {
		return l
	}
	l := Label(len(d.names))
	d.names = append(d.names, name)
	d.byName[name] = l
	return l
}

// Lookup returns the Label for name, or NoLabel if name was never interned.
func (d *Dict) Lookup(name string) Label {
	return d.byName[name]
}

// Name returns the string for l. It panics if l was not produced by this
// dictionary, which always indicates a bug (mixing dictionaries).
func (d *Dict) Name(l Label) string {
	if int(l) <= 0 || int(l) >= len(d.names) {
		panic(fmt.Sprintf("graph: label %d not in dictionary (size %d)", l, len(d.names)-1))
	}
	return d.names[l]
}

// NameOK is Name without the panic: ok is false when l is not a label of
// this dictionary (e.g. validating artifacts against a foreign ontology).
func (d *Dict) NameOK(l Label) (string, bool) {
	if int(l) <= 0 || int(l) >= len(d.names) {
		return "", false
	}
	return d.names[l], true
}

// Len reports the number of interned labels.
func (d *Dict) Len() int { return len(d.names) - 1 }

// Labels returns all interned labels in ascending order.
func (d *Dict) Labels() []Label {
	ls := make([]Label, 0, d.Len())
	for i := 1; i < len(d.names); i++ {
		ls = append(ls, Label(i))
	}
	return ls
}

// Names returns all interned strings sorted lexicographically. Useful for
// deterministic iteration in tests and reports.
func (d *Dict) Names() []string {
	ns := make([]string, 0, d.Len())
	ns = append(ns, d.names[1:]...)
	sort.Strings(ns)
	return ns
}

// Clone returns an independent copy of the dictionary.
func (d *Dict) Clone() *Dict {
	c := &Dict{
		byName: make(map[string]Label, len(d.byName)),
		names:  append([]string(nil), d.names...),
	}
	for k, v := range d.byName {
		c.byName[k] = v
	}
	return c
}

package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
)

// digestTable is the CRC-64/ECMA table behind Digest. CRC-64 over FNV
// because the digest runs on every snapshot load and boot-time
// verification: table-driven CRC processes the byte stream several times
// faster than FNV's per-byte multiply, and the digest needs speed and
// stability, not avalanche quality.
var digestTable = crc64.MakeTable(crc64.ECMA)

// Digest returns a 64-bit content digest of the graph: every vertex's
// label *name* and every edge, hashed with CRC-64/ECMA. Hashing names
// rather than Label values (and ignoring the dictionary's unrelated
// entries) makes the digest purely content-defined: two graphs with
// identical vertices and edges produce the same digest even when built
// through different *Dict instances or dictionaries with different label
// numberings — which is what snapshot verification needs: a daemon that
// regenerates or re-reads its data graph can check that a persisted index
// was built from the same data before trusting it.
//
// The digest is defined over the logical content, not any serialization,
// so format version bumps in io.go never invalidate stored digests. It is
// an integrity identity, not a cryptographic commitment.
func (g *Graph) Digest() uint64 {
	// Writes are batched through a local buffer so the table-driven CRC
	// sees large chunks; chunking does not change the hash.
	h := crc64.New(digestTable)
	buf := make([]byte, 0, 32<<10)
	flush := func() {
		h.Write(buf)
		buf = buf[:0]
	}
	put := func(x uint32) {
		if len(buf) > cap(buf)-4 {
			flush()
		}
		buf = binary.LittleEndian.AppendUint32(buf, x)
	}
	put(uint32(g.NumVertices()))
	for _, l := range g.labels {
		name := g.dict.Name(l)
		put(uint32(len(name)))
		if len(buf)+len(name) > cap(buf) {
			flush()
		}
		if len(name) > cap(buf) {
			h.Write([]byte(name))
		} else {
			buf = append(buf, name...)
		}
	}
	put(uint32(g.NumEdges()))
	for v := V(0); int(v) < g.NumVertices(); v++ {
		for _, w := range g.Out(v) {
			put(uint32(v))
			put(uint32(w))
		}
	}
	flush()
	return h.Sum64()
}

// Rebase returns a copy of g whose labels are translated onto dict by
// name. It is how a hot reload brings a freshly read or regenerated data
// graph (which carries its own dictionary) into the dictionary of a live
// index: Index.Refresh requires the original dictionary, and that
// dictionary must never be mutated while queries read it concurrently, so
// Rebase only *looks up* names — a label of g whose name dict has never
// interned is an error, not an Intern (new vocabulary requires a rebuild).
//
// Rebasing onto the dictionary g already uses returns g unchanged.
func (g *Graph) Rebase(dict *Dict) (*Graph, error) {
	if g.dict == dict {
		return g, nil
	}
	labels := make([]Label, g.NumVertices())
	xlat := make(map[Label]Label, len(g.posting))
	for v, l := range g.labels {
		nl, ok := xlat[l]
		if !ok {
			nl = dict.Lookup(g.dict.Name(l))
			if nl == NoLabel {
				return nil, fmt.Errorf("graph: label %q not in target dictionary", g.dict.Name(l))
			}
			xlat[l] = nl
		}
		labels[v] = nl
	}
	return FromEdges(dict, labels, g.Edges()), nil
}

package graph

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the graph decoder against corrupted input: it must
// return an error or a structurally valid graph, never panic or hang.
func FuzzRead(f *testing.F) {
	// Seed with a valid serialization and a few mutations.
	b := NewBuilder(nil)
	x := b.AddVertex("x")
	y := b.AddVertex("y")
	b.AddEdge(x, y)
	var buf bytes.Buffer
	if _, err := b.Build().WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("BIGG"))
	if len(valid) > 8 {
		trunc := append([]byte(nil), valid[:len(valid)/2]...)
		f.Add(trunc)
		flip := append([]byte(nil), valid...)
		flip[9] ^= 0xff
		f.Add(flip)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded graph must be internally consistent.
		n := g.NumVertices()
		for v := V(0); int(v) < n; v++ {
			if _, ok := g.Dict().NameOK(g.Label(v)); !ok {
				t.Fatalf("vertex %d has dangling label", v)
			}
			for _, w := range g.Out(v) {
				if int(w) >= n {
					t.Fatalf("edge to out-of-range vertex %d", w)
				}
			}
		}
	})
}

// FuzzReadBody does the same for the dictionary-less body decoder.
func FuzzReadBody(f *testing.F) {
	dict := NewDict()
	dict.Intern("a")
	dict.Intern("b")

	b := NewBuilder(dict)
	v := b.AddVertex("a")
	w := b.AddVertex("b")
	b.AddEdge(v, w)
	var buf bytes.Buffer
	if err := b.Build().WriteBody(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBody(bytes.NewReader(data), dict)
		if err != nil {
			return
		}
		for vv := V(0); int(vv) < g.NumVertices(); vv++ {
			if int(g.Label(vv)) > dict.Len() || g.Label(vv) == NoLabel {
				t.Fatalf("vertex %d label out of dictionary", vv)
			}
		}
	})
}

// Package graph provides the labeled directed graph substrate used by every
// other package in this repository: the data graph G = (V, E, L, Σ) of the
// paper (Sec. 2), its summary layers, and the answer subgraphs.
//
// Graphs are built once through a Builder and are immutable afterwards;
// adjacency is stored in CSR (compressed sparse row) form in both directions
// so that the keyword search algorithms can traverse forward and backward
// without auxiliary allocation. Per-label posting lists support the
// "vertices containing keyword q" primitive that all three search semantics
// start from.
package graph

import (
	"fmt"
	"slices"
)

// V is a vertex identifier, dense in [0, NumVertices).
type V uint32

// Edge is a directed edge (From -> To).
type Edge struct {
	From, To V
}

// Graph is an immutable directed vertex-labeled graph.
type Graph struct {
	dict   *Dict
	labels []Label // labels[v] is L(v)

	// CSR adjacency, forward and backward.
	outOff []uint32
	outAdj []V
	inOff  []uint32
	inAdj  []V

	// posting[l] lists the vertices with label l, ascending.
	posting map[Label][]V
}

// NumVertices reports |V|.
func (g *Graph) NumVertices() int { return len(g.labels) }

// NumEdges reports |E|.
func (g *Graph) NumEdges() int { return len(g.outAdj) }

// Size reports |G| = |V| + |E|, the graph size measure used throughout the
// paper (e.g. in the compression ratio of Formula 3).
func (g *Graph) Size() int { return g.NumVertices() + g.NumEdges() }

// Dict returns the label dictionary shared by this graph.
func (g *Graph) Dict() *Dict { return g.dict }

// Label returns L(v).
func (g *Graph) Label(v V) Label { return g.labels[v] }

// Labels returns the label slice indexed by vertex. The caller must not
// modify it.
func (g *Graph) Labels() []Label { return g.labels }

// Out returns the out-neighbors of v as a shared slice; callers must not
// modify it.
func (g *Graph) Out(v V) []V { return g.outAdj[g.outOff[v]:g.outOff[v+1]] }

// In returns the in-neighbors of v as a shared slice; callers must not
// modify it.
func (g *Graph) In(v V) []V { return g.inAdj[g.inOff[v]:g.inOff[v+1]] }

// OutDegree reports the number of out-edges of v.
func (g *Graph) OutDegree(v V) int { return int(g.outOff[v+1] - g.outOff[v]) }

// InDegree reports the number of in-edges of v.
func (g *Graph) InDegree(v V) int { return int(g.inOff[v+1] - g.inOff[v]) }

// Degree reports the total degree of v. A vertex with Degree > 2 is a
// "joint vertex" in the path-based answer generation of Sec. 4.3.3.
func (g *Graph) Degree(v V) int { return g.OutDegree(v) + g.InDegree(v) }

// VerticesWithLabel returns the posting list for l: every vertex v with
// L(v) == l, in ascending order. The returned slice is shared; callers must
// not modify it. Returns nil when no vertex carries l.
func (g *Graph) VerticesWithLabel(l Label) []V { return g.posting[l] }

// LabelCount reports |V_l|, the number of vertices labeled l. Together with
// NumVertices it gives the label support sup(l) = |V_l|/|V| of Sec. 3.2.
func (g *Graph) LabelCount(l Label) int { return len(g.posting[l]) }

// Support returns sup(l) = |V_l| / |V| as defined in Sec. 3.2 (and reused by
// the query cost model, Formula 4).
func (g *Graph) Support(l Label) float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(len(g.posting[l])) / float64(g.NumVertices())
}

// DistinctLabels returns the labels that occur on at least one vertex,
// in ascending Label order.
func (g *Graph) DistinctLabels() []Label {
	ls := make([]Label, 0, len(g.posting))
	for l := range g.posting {
		ls = append(ls, l)
	}
	sortLabels(ls)
	return ls
}

// Edges returns all edges in (From, To) lexicographic order. It allocates;
// intended for tests and serialization, not inner loops.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.NumEdges())
	for v := V(0); int(v) < g.NumVertices(); v++ {
		for _, w := range g.Out(v) {
			es = append(es, Edge{v, w})
		}
	}
	return es
}

// HasEdge reports whether (u, v) ∈ E using binary search on the CSR row.
func (g *Graph) HasEdge(u, v V) bool {
	row := g.Out(u)
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == v
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{|V|=%d |E|=%d |Σ|=%d}", g.NumVertices(), g.NumEdges(), len(g.posting))
}

func sortLabels(ls []Label) { slices.Sort(ls) }

package graph

import (
	"bytes"
	"testing"
)

// buildDiamond returns a small labeled graph:
//
//	a(0) -> b(1), a -> c(2), b -> d(3), c -> d
func buildDiamond(t *testing.T) (*Graph, []V) {
	t.Helper()
	b := NewBuilder(nil)
	a := b.AddVertex("A")
	bb := b.AddVertex("B")
	c := b.AddVertex("C")
	d := b.AddVertex("D")
	b.AddEdge(a, bb)
	b.AddEdge(a, c)
	b.AddEdge(bb, d)
	b.AddEdge(c, d)
	return b.Build(), []V{a, bb, c, d}
}

func TestBuilderBasics(t *testing.T) {
	g, vs := buildDiamond(t)
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.Size() != 8 {
		t.Fatalf("Size = %d, want 8", g.Size())
	}
	if got := g.Dict().Name(g.Label(vs[0])); got != "A" {
		t.Fatalf("Label(a) = %q, want A", got)
	}
	if got := g.OutDegree(vs[0]); got != 2 {
		t.Fatalf("OutDegree(a) = %d, want 2", got)
	}
	if got := g.InDegree(vs[3]); got != 2 {
		t.Fatalf("InDegree(d) = %d, want 2", got)
	}
	if g.Degree(vs[1]) != 2 {
		t.Fatalf("Degree(b) = %d, want 2", g.Degree(vs[1]))
	}
}

func TestBuilderDeduplicatesEdges(t *testing.T) {
	b := NewBuilder(nil)
	a := b.AddVertex("A")
	c := b.AddVertex("B")
	b.AddEdge(a, c)
	b.AddEdge(a, c)
	b.AddEdge(a, c)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after dedup", g.NumEdges())
	}
}

func TestBuilderPanicsOnBadEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on edge to missing vertex")
		}
	}()
	b := NewBuilder(nil)
	v := b.AddVertex("A")
	b.AddEdge(v, v+10)
}

func TestHasEdge(t *testing.T) {
	g, vs := buildDiamond(t)
	if !g.HasEdge(vs[0], vs[1]) {
		t.Error("expected edge a->b")
	}
	if g.HasEdge(vs[1], vs[0]) {
		t.Error("unexpected edge b->a")
	}
	if g.HasEdge(vs[3], vs[3]) {
		t.Error("unexpected self loop d->d")
	}
}

func TestPostingLists(t *testing.T) {
	b := NewBuilder(nil)
	l := b.Dict().Intern("X")
	for i := 0; i < 5; i++ {
		b.AddVertexLabel(l)
	}
	b.AddVertex("Y")
	g := b.Build()
	if got := g.LabelCount(l); got != 5 {
		t.Fatalf("LabelCount(X) = %d, want 5", got)
	}
	if got := g.Support(l); got != 5.0/6.0 {
		t.Fatalf("Support(X) = %v, want 5/6", got)
	}
	if n := len(g.DistinctLabels()); n != 2 {
		t.Fatalf("DistinctLabels = %d, want 2", n)
	}
}

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	if a == b {
		t.Fatal("distinct strings interned to same label")
	}
	if d.Intern("alpha") != a {
		t.Fatal("re-interning changed the label")
	}
	if d.Name(a) != "alpha" || d.Name(b) != "beta" {
		t.Fatal("Name round-trip failed")
	}
	if d.Lookup("gamma") != NoLabel {
		t.Fatal("Lookup of unknown string should return NoLabel")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	c := d.Clone()
	c.Intern("gamma")
	if d.Len() != 2 || c.Len() != 3 {
		t.Fatal("Clone is not independent")
	}
}

func TestDictNamePanicsOnForeignLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range label")
		}
	}()
	NewDict().Name(Label(42))
}

func TestRelabelSharesTopology(t *testing.T) {
	g, vs := buildDiamond(t)
	x := g.Dict().Intern("X")
	rg := g.Relabel(func(Label) Label { return x })
	if rg.NumEdges() != g.NumEdges() || rg.NumVertices() != g.NumVertices() {
		t.Fatal("Relabel changed topology")
	}
	for _, v := range vs {
		if rg.Label(v) != x {
			t.Fatalf("vertex %d not relabeled", v)
		}
	}
	if rg.LabelCount(x) != 4 {
		t.Fatal("posting lists not rebuilt")
	}
	// Original untouched.
	if g.Label(vs[0]) == x {
		t.Fatal("Relabel mutated the original graph")
	}
}

func TestBFSAndDistances(t *testing.T) {
	g, vs := buildDiamond(t)
	if d := g.Dist(vs[0], vs[3], -1, Forward); d != 2 {
		t.Fatalf("dist(a,d) = %d, want 2", d)
	}
	if d := g.Dist(vs[3], vs[0], -1, Forward); d != -1 {
		t.Fatalf("dist(d,a) = %d, want -1 (unreachable)", d)
	}
	if d := g.Dist(vs[3], vs[0], -1, Backward); d != 2 {
		t.Fatalf("backward dist(d,a) = %d, want 2", d)
	}
	if d := g.Dist(vs[0], vs[3], 1, Forward); d != -1 {
		t.Fatalf("bounded dist(a,d,limit=1) = %d, want -1", d)
	}
	if !g.Reach(vs[0], vs[3], 2, Forward) {
		t.Fatal("a should reach d within 2")
	}
	got := g.ReachableWithin(vs[0], 1, Forward)
	if len(got) != 3 {
		t.Fatalf("ReachableWithin(a,1) = %v, want 3 vertices", got)
	}
	dm := g.DistancesFrom(vs[0], -1, Forward)
	if len(dm) != 4 || dm[vs[3]] != 2 {
		t.Fatalf("DistancesFrom = %v", dm)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, vs := buildDiamond(t)
	sub, remap := g.InducedSubgraph([]V{vs[0], vs[1], vs[3]})
	if sub.NumVertices() != 3 {
		t.Fatalf("|V| = %d, want 3", sub.NumVertices())
	}
	// Edges a->b and b->d survive; a->c, c->d do not.
	if sub.NumEdges() != 2 {
		t.Fatalf("|E| = %d, want 2", sub.NumEdges())
	}
	if !sub.HasEdge(remap[vs[0]], remap[vs[1]]) {
		t.Fatal("missing induced edge a->b")
	}
	// Duplicated input vertices must not duplicate output.
	sub2, _ := g.InducedSubgraph([]V{vs[0], vs[0], vs[0]})
	if sub2.NumVertices() != 1 {
		t.Fatalf("dedup failed: |V| = %d", sub2.NumVertices())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	g, _ := buildDiamond(t)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	rg, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if rg.NumVertices() != g.NumVertices() || rg.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed sizes")
	}
	for v := V(0); int(v) < g.NumVertices(); v++ {
		if g.Dict().Name(g.Label(v)) != rg.Dict().Name(rg.Label(v)) {
			t.Fatalf("label mismatch at %d", v)
		}
	}
	for _, e := range g.Edges() {
		if !rg.HasEdge(e.From, e.To) {
			t.Fatalf("missing edge %v", e)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a graph at all"))); err == nil {
		t.Fatal("expected error for garbage input")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestSubgraphNormalizeAndKey(t *testing.T) {
	s := &Subgraph{
		Root:     2,
		Vertices: []V{3, 1, 3, 2},
		Edges:    []Edge{{3, 1}, {1, 2}, {3, 1}},
	}
	s.Normalize()
	if len(s.Vertices) != 3 || len(s.Edges) != 2 {
		t.Fatalf("Normalize: %+v", s)
	}
	k1 := s.Key()
	s2 := &Subgraph{Root: 2, Vertices: []V{1, 2, 3}, Edges: []Edge{{1, 2}, {3, 1}}}
	s2.Normalize()
	if k1 != s2.Key() {
		t.Fatal("equal subgraphs should share a key")
	}
	if !s.HasVertex(1) || s.HasVertex(9) {
		t.Fatal("HasVertex wrong")
	}
	c := s.Clone()
	c.Vertices[0] = 99
	if s.Vertices[0] == 99 {
		t.Fatal("Clone not deep")
	}
}

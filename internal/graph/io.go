package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary on-disk format (little endian):
//
//	magic  "BIGG" | version u32
//	nLabels u32   | for each: len u32, bytes
//	nVertices u32 | for each: label u32
//	nEdges u32    | for each: from u32, to u32
//	crc u32       | CRC-32 (IEEE) of every preceding byte (version >= 2)
//
// The format stores the dictionary inline so a graph round-trips without an
// external dictionary; on load a fresh Dict is created.
//
// Version 2 appends the CRC trailer. Version 1 files (no trailer) are still
// read: they predate the trailer and their record counts bound the parse,
// but they cannot detect in-range bit flips (an edge endpoint silently
// rewritten to another valid vertex) or a file cut exactly after a
// complete prefix of the stream — the trailer closes both holes.

const (
	ioMagic   = "BIGG"
	ioVersion = 2
)

// ErrBadFormat is returned when decoding input that is not a serialized
// graph produced by WriteTo.
var ErrBadFormat = errors.New("graph: bad serialized format")

// WriteTo serializes g to w in the binary format above (version 2: body
// followed by a CRC-32 trailer over every preceding byte).
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	cw := &countWriter{w: io.MultiWriter(bw, crc)}

	if _, err := cw.Write([]byte(ioMagic)); err != nil {
		return cw.n, err
	}
	if err := writeU32(cw, ioVersion); err != nil {
		return cw.n, err
	}

	d := g.dict
	if err := writeU32(cw, uint32(d.Len())); err != nil {
		return cw.n, err
	}
	for i := 1; i <= d.Len(); i++ {
		name := d.Name(Label(i))
		if err := writeU32(cw, uint32(len(name))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write([]byte(name)); err != nil {
			return cw.n, err
		}
	}

	if err := writeU32(cw, uint32(g.NumVertices())); err != nil {
		return cw.n, err
	}
	for _, l := range g.labels {
		if err := writeU32(cw, uint32(l)); err != nil {
			return cw.n, err
		}
	}

	if err := writeU32(cw, uint32(g.NumEdges())); err != nil {
		return cw.n, err
	}
	for v := V(0); int(v) < g.NumVertices(); v++ {
		for _, wv := range g.Out(v) {
			if err := writeU32(cw, uint32(v)); err != nil {
				return cw.n, err
			}
			if err := writeU32(cw, uint32(wv)); err != nil {
				return cw.n, err
			}
		}
	}

	// Trailer: the checksum itself is not part of the checksummed stream.
	var tb [4]byte
	binary.LittleEndian.PutUint32(tb[:], crc.Sum32())
	if _, err := bw.Write(tb[:]); err != nil {
		return cw.n, err
	}
	cw.n += 4
	return cw.n, bw.Flush()
}

// Read deserializes a graph written by WriteTo. Version 2 input is
// verified against its CRC trailer; version 1 input is accepted as-is for
// compatibility with pre-trailer files.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	// Everything up to the trailer is hashed as it is parsed; the trailer
	// itself is read from br directly, past the tee.
	tr := io.TeeReader(br, crc)

	magic := make([]byte, 4)
	if _, err := io.ReadFull(tr, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != ioMagic {
		return nil, ErrBadFormat
	}
	ver, err := readU32(tr)
	if err != nil {
		return nil, err
	}
	if ver != 1 && ver != ioVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, ver)
	}

	nLabels, err := readU32(tr)
	if err != nil {
		return nil, err
	}
	dict := NewDict()
	for i := uint32(0); i < nLabels; i++ {
		n, err := readU32(tr)
		if err != nil {
			return nil, err
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("%w: label length %d too large", ErrBadFormat, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(tr, buf); err != nil {
			return nil, fmt.Errorf("graph: reading label: %w", err)
		}
		dict.Intern(string(buf))
	}

	nV, err := readU32(tr)
	if err != nil {
		return nil, err
	}
	b := NewBuilder(dict)
	for i := uint32(0); i < nV; i++ {
		l, err := readU32(tr)
		if err != nil {
			return nil, err
		}
		if l == 0 || l > nLabels {
			return nil, fmt.Errorf("%w: vertex label %d out of range", ErrBadFormat, l)
		}
		b.AddVertexLabel(Label(l))
	}

	nE, err := readU32(tr)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nE; i++ {
		from, err := readU32(tr)
		if err != nil {
			return nil, err
		}
		to, err := readU32(tr)
		if err != nil {
			return nil, err
		}
		if from >= nV || to >= nV {
			return nil, fmt.Errorf("%w: edge (%d,%d) out of range", ErrBadFormat, from, to)
		}
		b.AddEdge(V(from), V(to))
	}

	if ver >= 2 {
		want := crc.Sum32()
		var tb [4]byte
		if _, err := io.ReadFull(br, tb[:]); err != nil {
			return nil, fmt.Errorf("%w: missing checksum trailer: %v", ErrBadFormat, err)
		}
		if got := binary.LittleEndian.Uint32(tb[:]); got != want {
			return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrBadFormat, got, want)
		}
	}
	return b.Build(), nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeU32(w io.Writer, x uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], x)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("graph: reading u32: %w", err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

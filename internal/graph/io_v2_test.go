package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func testGraph(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(nil)
	x := b.AddVertex("x")
	y := b.AddVertex("y")
	z := b.AddVertex("x")
	b.AddEdge(x, y)
	b.AddEdge(y, z)
	b.AddEdge(z, x)
	return b.Build()
}

func serialize(t testing.TB, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The v2 trailer closes the v1 format's blind spots: any single corrupted
// byte anywhere in the stream — including in-range values the structural
// checks cannot question — fails the checksum.
func TestReadDetectsAnyByteFlip(t *testing.T) {
	data := serialize(t, testGraph(t))
	for off := 0; off < len(data); off++ {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0xff
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flip at offset %d/%d decoded successfully", off, len(data))
		}
	}
}

// A file cut after a structurally complete prefix (v1's other blind spot:
// record counts bound the parse, so a cut at a record boundary used to
// look like EOF-after-success) now fails on the missing trailer.
func TestReadDetectsTruncation(t *testing.T) {
	data := serialize(t, testGraph(t))
	for n := 0; n < len(data); n++ {
		if _, err := Read(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", n, len(data))
		}
	}
}

// Version 1 files — the v2 body minus the trailer, with the version field
// patched — still decode, so pre-trailer files keep loading.
func TestReadAcceptsVersion1(t *testing.T) {
	g := testGraph(t)
	data := serialize(t, g)
	v1 := append([]byte(nil), data[:len(data)-4]...) // drop trailer
	binary.LittleEndian.PutUint32(v1[4:8], 1)        // patch version
	got, err := Read(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 input rejected: %v", err)
	}
	if got.Digest() != g.Digest() {
		t.Fatal("v1 decode differs from original graph")
	}
}

func TestReadRejectsUnknownVersion(t *testing.T) {
	data := serialize(t, testGraph(t))
	bad := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(bad[4:8], 3)
	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("version 3: got %v, want ErrBadFormat", err)
	}
}

func TestDigestContentDefined(t *testing.T) {
	g1 := testGraph(t)
	g2 := testGraph(t) // identical content, fresh dictionary
	if g1.Dict() == g2.Dict() {
		t.Fatal("fixtures share a dict; test is vacuous")
	}
	if g1.Digest() != g2.Digest() {
		t.Fatal("identical content must digest equally across dictionaries")
	}

	// Any content change moves the digest.
	b := NewBuilder(nil)
	x := b.AddVertex("x")
	y := b.AddVertex("y")
	z := b.AddVertex("x")
	b.AddEdge(x, y)
	b.AddEdge(y, z)
	// (missing the z->x edge)
	if b.Build().Digest() == g1.Digest() {
		t.Fatal("edge removal did not change the digest")
	}

	b2 := NewBuilder(nil)
	x = b2.AddVertex("x")
	y = b2.AddVertex("y")
	z = b2.AddVertex("w") // different label name
	b2.AddEdge(x, y)
	b2.AddEdge(y, z)
	b2.AddEdge(z, x)
	if b2.Build().Digest() == g1.Digest() {
		t.Fatal("label rename did not change the digest")
	}
}

func TestRebase(t *testing.T) {
	g := testGraph(t)
	// Same dict: identity, no copy.
	if got, err := g.Rebase(g.Dict()); err != nil || got != g {
		t.Fatalf("same-dict rebase: %v %v", got, err)
	}

	// A target dict with the same names under different Label values.
	target := NewDict()
	target.Intern("padding") // shift label numbering
	target.Intern("y")
	target.Intern("x")
	got, err := g.Rebase(target)
	if err != nil {
		t.Fatalf("rebase: %v", err)
	}
	if got.Dict() != target {
		t.Fatal("rebased graph not on target dict")
	}
	if got.Digest() != g.Digest() {
		t.Fatal("rebase changed graph content")
	}
	for v := V(0); int(v) < g.NumVertices(); v++ {
		if g.Dict().Name(g.Label(v)) != target.Name(got.Label(v)) {
			t.Fatalf("vertex %d label name changed", v)
		}
	}

	// A label missing from the target dict is a typed failure, not an
	// Intern (reload must never mutate the live dictionary).
	sparse := NewDict()
	sparse.Intern("x")
	if _, err := g.Rebase(sparse); err == nil {
		t.Fatal("rebase onto incomplete dict must fail")
	}
	if sparse.Len() != 1 {
		t.Fatal("failed rebase mutated the target dictionary")
	}
}

package graph

import "fmt"

// Patch returns a new graph equal to g with addVerts appended (in order,
// receiving IDs NumVertices()..NumVertices()+len(addVerts)-1), addEdges
// inserted, and removeEdges deleted. The dictionary is shared with g.
//
// Patch is the pure structural mutation used by both the live mutation
// service and WAL boot replay, so its semantics are deliberately lenient —
// the same rules bisim.Maintainer's patchedGraph applies:
//
//   - duplicate added edges, and edges already present, collapse (simple
//     graph — Builder dedupes);
//   - removing an absent edge is a no-op;
//   - an edge both added and removed in the same patch ends up removed.
//
// Replaying a WAL record through Patch therefore cannot fail for benign
// reasons; strict request validation (dup detection, remove-must-exist)
// is the admission layer's job. Patch only rejects what it cannot
// represent: labels outside g's dictionary and edge endpoints outside the
// patched vertex range.
func Patch(g *Graph, addVerts []Label, addEdges, removeEdges []Edge) (*Graph, error) {
	dict := g.Dict()
	for i, l := range addVerts {
		if int(l) <= 0 || int(l) > dict.Len() {
			return nil, fmt.Errorf("graph: patch vertex %d: label %d not in dictionary (size %d)", i, l, dict.Len())
		}
	}
	n := V(g.NumVertices() + len(addVerts))
	for _, e := range addEdges {
		if e.From >= n || e.To >= n {
			return nil, fmt.Errorf("graph: patch edge (%d,%d) references vertex >= %d", e.From, e.To, n)
		}
	}

	b := NewBuilder(dict)
	for v := 0; v < g.NumVertices(); v++ {
		b.AddVertexLabel(g.Label(V(v)))
	}
	for _, l := range addVerts {
		b.AddVertexLabel(l)
	}
	rm := make(map[Edge]bool, len(removeEdges))
	for _, e := range removeEdges {
		rm[e] = true
	}
	for _, e := range g.Edges() {
		if !rm[e] {
			b.AddEdge(e.From, e.To)
		}
	}
	for _, e := range addEdges {
		if !rm[e] {
			b.AddEdge(e.From, e.To)
		}
	}
	return b.Build(), nil
}

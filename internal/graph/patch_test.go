package graph

import "testing"

func patchBase(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(nil)
	a := b.Dict().Intern("A")
	c := b.Dict().Intern("C")
	v0 := b.AddVertexLabel(a)
	v1 := b.AddVertexLabel(a)
	v2 := b.AddVertexLabel(c)
	b.AddEdge(v0, v1)
	b.AddEdge(v1, v2)
	return b.Build()
}

func TestPatchAddRemove(t *testing.T) {
	g := patchBase(t)
	a := g.Dict().Lookup("A")

	got, err := Patch(g,
		[]Label{a}, // v3
		[]Edge{{From: 3, To: 0}, {From: 2, To: 2}}, // new vertex wired in + self loop
		[]Edge{{From: 0, To: 1}},
	)
	if err != nil {
		t.Fatalf("Patch: %v", err)
	}
	if got.NumVertices() != 4 {
		t.Fatalf("|V| = %d, want 4", got.NumVertices())
	}
	if got.HasEdge(0, 1) {
		t.Fatal("removed edge survived")
	}
	if !got.HasEdge(3, 0) || !got.HasEdge(2, 2) || !got.HasEdge(1, 2) {
		t.Fatal("expected edges missing")
	}
	if got.Label(3) != a {
		t.Fatalf("new vertex label = %d, want %d", got.Label(3), a)
	}
	if got.Dict() != g.Dict() {
		t.Fatal("patched graph must share the dictionary")
	}
	// Original untouched (immutability).
	if g.NumVertices() != 3 || !g.HasEdge(0, 1) {
		t.Fatal("Patch mutated its input")
	}
}

func TestPatchLenientSemantics(t *testing.T) {
	g := patchBase(t)

	// Duplicate adds, adding an existing edge, removing an absent edge, and
	// add∩remove all collapse without error — WAL replay must never fail on
	// a record that was valid when appended.
	got, err := Patch(g, nil,
		[]Edge{{From: 0, To: 1}, {From: 2, To: 0}, {From: 2, To: 0}, {From: 0, To: 2}},
		[]Edge{{From: 2, To: 1}, {From: 0, To: 2}},
	)
	if err != nil {
		t.Fatalf("Patch: %v", err)
	}
	if !got.HasEdge(2, 0) || got.HasEdge(0, 2) {
		t.Fatal("lenient semantics broken")
	}
	if got.NumEdges() != 3 { // (0,1), (1,2), (2,0)
		t.Fatalf("|E| = %d, want 3", got.NumEdges())
	}
}

func TestPatchRejectsOutOfRange(t *testing.T) {
	g := patchBase(t)
	if _, err := Patch(g, nil, []Edge{{From: 0, To: 9}}, nil); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if _, err := Patch(g, []Label{Label(uint32(g.Dict().Len()) + 1)}, nil, nil); err == nil {
		t.Fatal("unknown label accepted")
	}
	if _, err := Patch(g, []Label{NoLabel}, nil, nil); err == nil {
		t.Fatal("NoLabel accepted")
	}
	// One new vertex makes ID 3 valid.
	if _, err := Patch(g, []Label{g.Dict().Lookup("A")}, []Edge{{From: 3, To: 3}}, nil); err != nil {
		t.Fatalf("edge to freshly added vertex rejected: %v", err)
	}
}

func TestPatchMatchesRebuild(t *testing.T) {
	g := patchBase(t)
	a := g.Dict().Lookup("A")
	got, err := Patch(g, []Label{a}, []Edge{{From: 3, To: 2}}, []Edge{{From: 1, To: 2}})
	if err != nil {
		t.Fatalf("Patch: %v", err)
	}
	want := FromEdges(g.Dict(),
		[]Label{g.Label(0), g.Label(1), g.Label(2), a},
		[]Edge{{From: 0, To: 1}, {From: 3, To: 2}})
	if got.Digest() != want.Digest() {
		t.Fatalf("Patch digest %016x != rebuilt digest %016x", got.Digest(), want.Digest())
	}
}

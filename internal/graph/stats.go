package graph

import "sort"

// Stats summarizes a graph's structure; used by the CLI, the dataset
// generator's validation, and experiment reports.
type Stats struct {
	Vertices, Edges int
	// AvgDegree is |E|/|V| (out-degree average).
	AvgDegree float64
	// MaxOutDegree / MaxInDegree are the largest fan-outs (hub detection).
	MaxOutDegree, MaxInDegree int
	// Sinks counts vertices with no out-edges; Sources with no in-edges.
	Sinks, Sources int
	// DistinctLabels is |Σ| restricted to occurring labels.
	DistinctLabels int
	// TopLabelCount is the population of the most frequent label (Zipf
	// head).
	TopLabelCount int
	// DegreeP50/P90/P99 are percentiles of the total degree distribution.
	DegreeP50, DegreeP90, DegreeP99 int
	// WeaklyConnected is the number of weakly connected components.
	WeaklyConnected int
}

// ComputeStats scans the graph once (plus a union-find pass for
// components).
func ComputeStats(g *Graph) Stats {
	n := g.NumVertices()
	st := Stats{
		Vertices:       n,
		Edges:          g.NumEdges(),
		DistinctLabels: len(g.DistinctLabels()),
	}
	if n == 0 {
		st.AvgDegree = 0
		return st
	}
	st.AvgDegree = float64(g.NumEdges()) / float64(n)

	degrees := make([]int, n)
	for v := V(0); int(v) < n; v++ {
		od, id := g.OutDegree(v), g.InDegree(v)
		degrees[v] = od + id
		if od > st.MaxOutDegree {
			st.MaxOutDegree = od
		}
		if id > st.MaxInDegree {
			st.MaxInDegree = id
		}
		if od == 0 {
			st.Sinks++
		}
		if id == 0 {
			st.Sources++
		}
	}
	sort.Ints(degrees)
	st.DegreeP50 = degrees[n/2]
	st.DegreeP90 = degrees[n*9/10]
	st.DegreeP99 = degrees[min(n-1, n*99/100)]

	for _, l := range g.DistinctLabels() {
		if c := g.LabelCount(l); c > st.TopLabelCount {
			st.TopLabelCount = c
		}
	}

	// Weakly connected components by union-find over undirected edges.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := V(0); int(v) < n; v++ {
		for _, w := range g.Out(v) {
			a, b := find(int(v)), find(int(w))
			if a != b {
				parent[a] = b
			}
		}
	}
	roots := map[int]bool{}
	for i := 0; i < n; i++ {
		roots[find(i)] = true
	}
	st.WeaklyConnected = len(roots)
	return st
}

package graph

import "testing"

func TestComputeStats(t *testing.T) {
	b := NewBuilder(nil)
	// Component 1: hub h -> {a, b, c}; component 2: isolated pair x -> y.
	h := b.AddVertex("hub")
	a := b.AddVertex("leaf")
	bb := b.AddVertexLabel(b.Dict().Lookup("leaf"))
	c := b.AddVertexLabel(b.Dict().Lookup("leaf"))
	x := b.AddVertex("x")
	y := b.AddVertex("y")
	b.AddEdge(h, a)
	b.AddEdge(h, bb)
	b.AddEdge(h, c)
	b.AddEdge(x, y)
	g := b.Build()

	st := ComputeStats(g)
	if st.Vertices != 6 || st.Edges != 4 {
		t.Fatalf("sizes: %+v", st)
	}
	if st.MaxOutDegree != 3 {
		t.Fatalf("MaxOutDegree = %d", st.MaxOutDegree)
	}
	if st.MaxInDegree != 1 {
		t.Fatalf("MaxInDegree = %d", st.MaxInDegree)
	}
	if st.Sinks != 4 { // a, b, c, y
		t.Fatalf("Sinks = %d", st.Sinks)
	}
	if st.Sources != 2 { // h, x
		t.Fatalf("Sources = %d", st.Sources)
	}
	if st.WeaklyConnected != 2 {
		t.Fatalf("components = %d", st.WeaklyConnected)
	}
	if st.TopLabelCount != 3 {
		t.Fatalf("TopLabelCount = %d", st.TopLabelCount)
	}
	if st.DistinctLabels != 4 {
		t.Fatalf("DistinctLabels = %d", st.DistinctLabels)
	}
	if st.DegreeP50 < 1 || st.DegreeP99 < st.DegreeP50 {
		t.Fatalf("percentiles: %+v", st)
	}

	empty := ComputeStats(NewBuilder(nil).Build())
	if empty.Vertices != 0 || empty.WeaklyConnected != 0 {
		t.Fatalf("empty stats: %+v", empty)
	}
}

package graph

import "slices"

// InducedSubgraph returns the node-induced subgraph of vs: its vertices are
// vs (deduplicated) and its edges are exactly the edges of g between them.
// The second return value maps original vertex IDs to subgraph IDs.
//
// This is the sampling unit of the compression estimator (Sec. 3.2): sample
// graphs are node-induced subgraphs of the radius-r reachable set of a
// random vertex.
func (g *Graph) InducedSubgraph(vs []V) (*Graph, map[V]V) {
	vs = append([]V(nil), vs...)
	slices.Sort(vs)
	vs = slices.Compact(vs)

	remap := make(map[V]V, len(vs))
	b := NewBuilder(g.dict)
	for i, v := range vs {
		remap[v] = V(i)
		b.AddVertexLabel(g.Label(v))
	}
	for _, v := range vs {
		for _, w := range g.Out(v) {
			if nw, ok := remap[w]; ok {
				b.AddEdge(remap[v], nw)
			}
		}
	}
	return b.Build(), remap
}

// Subgraph is a lightweight view of an answer subgraph of a host graph:
// vertex IDs refer to the host. Answers a = (V_a, E_a) of the paper are
// Subgraphs of G^0 (or of a summary layer, for generalized answers).
type Subgraph struct {
	Root     V // answer root (meaningful for tree-shaped semantics)
	Vertices []V
	Edges    []Edge
	Score    float64 // ranking score, lower is better (e.g. Σ dist(r, p_i))
}

// Clone returns a deep copy of s.
func (s *Subgraph) Clone() *Subgraph {
	return &Subgraph{
		Root:     s.Root,
		Vertices: append([]V(nil), s.Vertices...),
		Edges:    append([]Edge(nil), s.Edges...),
		Score:    s.Score,
	}
}

// HasVertex reports whether v is in the subgraph.
func (s *Subgraph) HasVertex(v V) bool {
	return slices.Contains(s.Vertices, v)
}

// Normalize sorts and deduplicates the vertex and edge lists, giving answers
// a canonical form so they can be compared across evaluation strategies
// (the equivalence theorem eval_Ont = eval is tested on normalized answers).
func (s *Subgraph) Normalize() {
	slices.Sort(s.Vertices)
	s.Vertices = slices.Compact(s.Vertices)
	slices.SortFunc(s.Edges, func(a, b Edge) int {
		if a.From != b.From {
			return int(a.From) - int(b.From)
		}
		return int(a.To) - int(b.To)
	})
	s.Edges = slices.Compact(s.Edges)
}

// Key returns a canonical string key for a normalized subgraph; used to
// compare answer sets irrespective of discovery order.
func (s *Subgraph) Key() string {
	buf := make([]byte, 0, 8+8*len(s.Vertices)+16*len(s.Edges))
	buf = appendUvarint(buf, uint64(s.Root))
	buf = append(buf, '|')
	for _, v := range s.Vertices {
		buf = appendUvarint(buf, uint64(v))
		buf = append(buf, ',')
	}
	buf = append(buf, '|')
	for _, e := range s.Edges {
		buf = appendUvarint(buf, uint64(e.From))
		buf = append(buf, '>')
		buf = appendUvarint(buf, uint64(e.To))
		buf = append(buf, ',')
	}
	return string(buf)
}

func appendUvarint(buf []byte, x uint64) []byte {
	if x == 0 {
		return append(buf, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for x > 0 {
		i--
		tmp[i] = byte('0' + x%10)
		x /= 10
	}
	return append(buf, tmp[i:]...)
}

package graph

// Dir selects a traversal direction. Backward keyword search (Sec. 5.1)
// walks in-edges; answer verification and the neighbor index of r-clique
// walk out-edges or both.
type Dir int

const (
	// Forward follows out-edges.
	Forward Dir = iota
	// Backward follows in-edges.
	Backward
)

func (g *Graph) neighbors(v V, d Dir) []V {
	if d == Forward {
		return g.Out(v)
	}
	return g.In(v)
}

// BFSWithin performs a breadth-first traversal from src following direction
// d, visiting every vertex at distance <= radius. visit is called once per
// vertex (including src at distance 0); returning false stops the whole
// traversal early.
//
// radius < 0 means unbounded.
func (g *Graph) BFSWithin(src V, radius int, d Dir, visit func(v V, dist int) bool) {
	type item struct {
		v    V
		dist int
	}
	seen := map[V]bool{src: true}
	queue := []item{{src, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !visit(cur.v, cur.dist) {
			return
		}
		if radius >= 0 && cur.dist == radius {
			continue
		}
		for _, w := range g.neighbors(cur.v, d) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, item{w, cur.dist + 1})
			}
		}
	}
}

// ReachableWithin returns the set of vertices reachable from src within
// radius hops in direction d, including src itself. The node-induced
// subgraph of this set is the sampling unit of the cost model (Sec. 3.2).
func (g *Graph) ReachableWithin(src V, radius int, d Dir) []V {
	var vs []V
	g.BFSWithin(src, radius, d, func(v V, _ int) bool {
		vs = append(vs, v)
		return true
	})
	return vs
}

// Dist returns the shortest-path distance from u to v following direction d,
// or -1 if v is unreachable within limit hops (limit < 0 means unbounded).
// Distances are hop counts; the paper's dist(u, v) (Secs. 2 and 5).
func (g *Graph) Dist(u, v V, limit int, d Dir) int {
	if u == v {
		return 0
	}
	found := -1
	g.BFSWithin(u, limit, d, func(w V, dist int) bool {
		if w == v {
			found = dist
			return false
		}
		return true
	})
	return found
}

// DistancesFrom computes hop distances from src to every vertex within limit
// hops in direction d. The result maps vertex -> distance; vertices outside
// the bound are absent. This is the bounded single-source BFS that the
// r-clique neighbor index and the Blinks keyword-node lists are built from.
func (g *Graph) DistancesFrom(src V, limit int, d Dir) map[V]int {
	dist := map[V]int{src: 0}
	queue := []V{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		if limit >= 0 && dv == limit {
			continue
		}
		for _, w := range g.neighbors(v, d) {
			if _, ok := dist[w]; !ok {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Reach reports whether v is reachable from u in direction d within limit
// hops (limit < 0 means unbounded). reach(u, v, G) of Prop 5.1.
func (g *Graph) Reach(u, v V, limit int, d Dir) bool {
	return g.Dist(u, v, limit, d) >= 0
}

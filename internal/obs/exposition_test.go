package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// Hostile label values must escape per the Prometheus text format —
// backslash, double-quote, and newline — and, crucially, two distinct
// label tuples must never collapse into (or be read back as) one series.
func TestHostileLabelValues(t *testing.T) {
	for _, tc := range []struct {
		name string
		val  string
		want string // the rendered sample line
	}{
		{"backslash", `a\b`, `c{q="a\\b"} 1`},
		{"quote", `a"b`, `c{q="a\"b"} 1`},
		{"newline", "a\nb", `c{q="a\nb"} 1`},
		{"all three", "\\\"\n", `c{q="\\\"\n"} 1`},
		{"nul byte", "a\x00b", "c{q=\"a\x00b\"} 1"},
		{"unicode", "héllo", `c{q="héllo"} 1`},
		{"comma equals", `a="x",b`, `c{q="a=\"x\",b"} 1`},
		{"empty", "", `c{q=""} 1`},
		{"trailing backslash", `a\`, `c{q="a\\"} 1`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			r.CounterVec("c", "", "q").With(tc.val).Inc()
			var buf strings.Builder
			r.WritePrometheus(&buf)
			if !strings.Contains(buf.String(), tc.want+"\n") {
				t.Fatalf("value %q: missing %q in\n%s", tc.val, tc.want, buf.String())
			}
		})
	}
}

// Label tuples that would collide under naive concatenation (the classic
// NUL-separator bug) must stay distinct series.
func TestLabelTupleNoCollision(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("c", "", "a", "b")
	vec.With("x\x00", "y").Add(1)
	vec.With("x", "\x00y").Add(2)
	if vec.With("x\x00", "y").Value() != 1 || vec.With("x", "\x00y").Value() != 2 {
		t.Fatal("label tuples collided")
	}
	var buf strings.Builder
	r.WritePrometheus(&buf)
	if strings.Count(buf.String(), "c{") != 2 {
		t.Fatalf("want 2 series:\n%s", buf.String())
	}
}

// HELP text with newlines and backslashes must be escaped, not corrupt the
// exposition framing.
func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "line one\nline two \\ done").Inc()
	var buf strings.Builder
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `# HELP c line one\nline two \\ done`) {
		t.Fatalf("HELP not escaped:\n%s", buf.String())
	}
}

// A bucket remembers the trace ID of its most recent observation and
// renders it OpenMetrics-style after the bucket sample.
func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "trace-a")
	h.ObserveExemplar(0.5, "trace-b")
	h.ObserveExemplar(50, "trace-inf") // lands in +Inf
	h.ObserveExemplar(0.06, "")        // no trace: plain observation
	var buf strings.Builder
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`lat_bucket{le="0.1"} 2 # {trace_id="trace-a"} 0.05`,
		`lat_bucket{le="1"} 3 # {trace_id="trace-b"} 0.5`,
		`lat_bucket{le="+Inf"} 4 # {trace_id="trace-inf"} 50`,
		"lat_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// ObserveExemplar with hostile trace IDs must not break the exposition.
func TestExemplarEscaping(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1})
	h.ObserveExemplar(0.5, "id\"with\\quotes\n")
	var buf strings.Builder
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `# {trace_id="id\"with\\quotes\n"} 0.5`) {
		t.Fatalf("exemplar not escaped:\n%s", buf.String())
	}
}

// /metrics is GET/HEAD only.
func TestMetricsHandlerMethodNotAllowed(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Inc()
	h := r.Handler()
	for _, method := range []string{"POST", "PUT", "DELETE"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, "/metrics", nil))
		if rec.Code != 405 {
			t.Fatalf("%s /metrics = %d, want 405", method, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "GET") {
			t.Fatalf("Allow = %q", allow)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "c 1") {
		t.Fatalf("GET /metrics = %d:\n%s", rec.Code, rec.Body.String())
	}
}

// A scrape racing concurrent observations must be safe (run under -race)
// and always see internally-consistent text.
func TestScrapeRacesObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{0.01, 0.1, 1})
	vec := r.CounterVec("reqs", "", "code")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				h.ObserveExemplar(float64(j%100)/50, "t")
				vec.With("200").Inc()
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("scrape %d = %d", i, rec.Code)
		}
	}
	close(stop)
	wg.Wait()
}

// The runtime gauges sample lazily at scrape time and expose sane values.
func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var buf strings.Builder
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, name := range []string{
		"bigindex_goroutines ",
		"bigindex_heap_alloc_bytes ",
		"bigindex_gc_pause_last_seconds ",
		"bigindex_uptime_seconds ",
	} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing %q in:\n%s", name, out)
		}
	}
	if strings.Contains(out, "bigindex_goroutines 0\n") {
		t.Fatalf("goroutine gauge is zero:\n%s", out)
	}
}

package obs

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// HTTPOptions configures Instrument.
type HTTPOptions struct {
	// Registry receives http_requests_total{path,code} and
	// http_request_seconds{path}. Nil records nothing.
	Registry *Registry
	// Logger emits one line per request with method, path, status,
	// duration, and whatever the handler deposited via AddLogAttrs.
	// Nil logs nothing.
	Logger *slog.Logger
	// SlowQuery is the latency threshold above which the request is also
	// logged at Warn with its full span-tree JSON (the slow-query log).
	// 0 disables.
	SlowQuery time.Duration
	// Normalize maps a request to its metric path label; return "" to use
	// r.URL.Path. Servers with a fixed endpoint set use it to keep label
	// cardinality bounded against scanner traffic.
	Normalize func(*http.Request) string
	// MetricPrefix prefixes the registered metric names ("bigindex" if
	// empty).
	MetricPrefix string
}

// Instrument wraps next with request metrics, a per-request trace rooted
// at the request path (available to handlers via SpanFromContext), a
// request-scoped log-attribute bag, structured request logging, and the
// slow-query log.
func Instrument(next http.Handler, opt HTTPOptions) http.Handler {
	prefix := opt.MetricPrefix
	if prefix == "" {
		prefix = "bigindex"
	}
	requests := opt.Registry.CounterVec(prefix+"_http_requests_total",
		"HTTP requests by path and status code.", "path", "code")
	latency := opt.Registry.HistogramVec(prefix+"_http_request_seconds",
		"HTTP request latency in seconds by path.", nil, "path")
	inflight := opt.Registry.Gauge(prefix+"_http_inflight_requests",
		"Requests currently being served.")
	slow := opt.Registry.Counter(prefix+"_http_slow_requests_total",
		"Requests slower than the slow-query threshold.")

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := r.URL.Path
		if opt.Normalize != nil {
			if p := opt.Normalize(r); p != "" {
				path = p
			}
		}
		tr := NewTrace(path)
		ctx := ContextWithSpan(r.Context(), tr.Root())
		ctx, bag := ContextWithLogBag(ctx)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}

		inflight.Add(1)
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		elapsed := time.Since(start)
		inflight.Add(-1)
		tr.Root().End()

		requests.With(path, strconv.Itoa(rec.code)).Inc()
		latency.With(path).Observe(elapsed.Seconds())
		isSlow := opt.SlowQuery > 0 && elapsed >= opt.SlowQuery
		if isSlow {
			slow.Inc()
		}

		if opt.Logger != nil {
			args := []any{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.code),
				slog.Duration("elapsed", elapsed),
			}
			args = append(args, bag.Attrs()...)
			opt.Logger.Info("request", args...)
			if isSlow {
				if js, err := json.Marshal(tr); err == nil {
					opt.Logger.Warn("slow request",
						slog.String("path", r.URL.Path),
						slog.Duration("elapsed", elapsed),
						slog.String("trace", string(js)))
				}
			}
		}
	})
}

// statusRecorder captures the response status for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (s *statusRecorder) WriteHeader(code int) {
	if !s.wrote {
		s.code = code
		s.wrote = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	s.wrote = true
	return s.ResponseWriter.Write(b)
}

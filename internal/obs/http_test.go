package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestInstrumentMetricsAndLog(t *testing.T) {
	reg := NewRegistry()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))

	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Handler-side instrumentation: nested span + request log attrs.
		sp := SpanFromContext(r.Context())
		if sp == nil {
			t.Error("no span in request context")
		}
		sp.StartChild("work").End()
		AddLogAttrs(r.Context(), slog.String("algo", "blinks"), slog.Int("count", 3))
		w.WriteHeader(http.StatusTeapot)
	})
	h := Instrument(inner, HTTPOptions{
		Registry: reg,
		Logger:   logger,
		Normalize: func(r *http.Request) string {
			return "/normalized"
		},
	})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query?q=x", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d", rec.Code)
	}

	var expo strings.Builder
	reg.WritePrometheus(&expo)
	for _, want := range []string{
		`bigindex_http_requests_total{path="/normalized",code="418"} 1`,
		`bigindex_http_request_seconds_count{path="/normalized"} 1`,
		"bigindex_http_inflight_requests 0",
	} {
		if !strings.Contains(expo.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, expo.String())
		}
	}

	var entry map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &entry); err != nil {
		t.Fatalf("request log is not one JSON line: %v\n%s", err, logBuf.String())
	}
	if entry["msg"] != "request" || entry["method"] != "GET" ||
		entry["path"] != "/query" || entry["status"] != float64(418) {
		t.Fatalf("bad request log: %v", entry)
	}
	if entry["algo"] != "blinks" || entry["count"] != float64(3) {
		t.Fatalf("handler attrs missing from request log: %v", entry)
	}
	if _, ok := entry["elapsed"]; !ok {
		t.Fatalf("elapsed missing: %v", entry)
	}
}

func TestInstrumentSlowQueryLog(t *testing.T) {
	reg := NewRegistry()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		SpanFromContext(r.Context()).StartChild("Search").End()
		time.Sleep(2 * time.Millisecond)
	})
	h := Instrument(inner, HTTPOptions{Registry: reg, Logger: logger, SlowQuery: time.Millisecond})
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/q", nil))

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want request + slow lines, got %d:\n%s", len(lines), logBuf.String())
	}
	var slow map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &slow); err != nil {
		t.Fatal(err)
	}
	if slow["msg"] != "slow request" {
		t.Fatalf("second line is %v", slow["msg"])
	}
	traceStr, _ := slow["trace"].(string)
	var tree SpanJSON
	if err := json.Unmarshal([]byte(traceStr), &tree); err != nil {
		t.Fatalf("slow log trace is not span JSON: %v\n%s", err, traceStr)
	}
	if len(tree.Children) != 1 || tree.Children[0].Name != "Search" {
		t.Fatalf("slow trace tree: %+v", tree)
	}
	var expo strings.Builder
	reg.WritePrometheus(&expo)
	if !strings.Contains(expo.String(), "bigindex_http_slow_requests_total 1") {
		t.Fatalf("slow counter not recorded:\n%s", expo.String())
	}
}

func TestInstrumentWithoutRegistryOrLogger(t *testing.T) {
	called := false
	h := Instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		called = true
	}), HTTPOptions{})
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	if !called {
		t.Fatal("handler not reached")
	}
}

package obs

import (
	"context"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// MaxLedgerLayers bounds the per-layer work-unit array. BiG-index
// hierarchies top out at h ≈ 7 layers (the paper's ontologies); work on a
// deeper layer is clamped into the last slot rather than dropped.
const MaxLedgerLayers = 16

// MaxLedgerShards bounds the per-shard-worker work array. Shard worker
// pools are sized by GOMAXPROCS; work from a worker id beyond the bound
// is clamped into the last slot rather than dropped.
const MaxLedgerShards = 32

// Ledger is the per-query resource ledger: deterministic work counters
// (vertices expanded, frontier peak, per-layer work units) plus
// process-level CPU-time and heap-allocation deltas sampled at creation
// and snapshot. It is carried through evaluation in the context
// (ContextWithLedger), next to the trace span, and every method is
// nil-safe so instrumented code records unconditionally — without a
// ledger in the context the whole feature costs one nil check.
//
// The deterministic counters are exact and per-query: the evaluator and
// the search algorithms accumulate locally and flush once, so concurrent
// queries never share a counter. The CPU and allocation deltas read
// process-wide totals (runtime/metrics and getrusage) and are therefore
// approximate under concurrent load; they are cheap (no stop-the-world)
// and calibrate well against the work units on a lightly loaded process.
type Ledger struct {
	start      time.Time
	startCPU   time.Duration
	startAlloc uint64

	expanded     atomic.Int64
	frontierPeak atomic.Int64
	layerWork    [MaxLedgerLayers]atomic.Int64
	shardWork    [MaxLedgerShards]atomic.Int64

	// Remote accounting: work measured *on shard peers* and merged back
	// via MergeRemote. Kept separate from the local counters because the
	// coordinator already counts remote expansions in its own ledger (it
	// sees every ExpandResponse.Expanded); merging peer ledgers into the
	// local counters would double-count. These fields answer the
	// complementary question: what did the fleet itself spend.
	remoteCalls atomic.Int64
	remoteUnits atomic.Int64
	remoteCPUUS atomic.Int64
	remoteAlloc atomic.Int64

	mu   sync.Mutex
	snap *LedgerSnapshot // set once by Snapshot; later calls reuse it
}

// LedgerSnapshot is the finalized ledger, attached to trace records and
// query-log entries. LayerWork is indexed by layer (0 = data graph) and
// trimmed to the highest layer that saw work.
type LedgerSnapshot struct {
	CPUUS        int64   `json:"cpu_us,omitempty"`
	AllocBytes   int64   `json:"alloc_bytes,omitempty"`
	Expanded     int64   `json:"vertices_expanded"`
	FrontierPeak int64   `json:"frontier_peak"`
	LayerWork    []int64 `json:"layer_work,omitempty"`
	// ShardWork is indexed by shard worker id and trimmed to the highest
	// worker that saw work; present only for sharded executions. The
	// spread across slots is the query's load balance.
	ShardWork []int64 `json:"shard_work,omitempty"`
	WorkUnits int64   `json:"work_units"`
	// Remote* are sums over the per-call ledgers shard peers shipped back
	// for this query (telemetry-negotiated fleets only). WorkUnits above
	// already includes remote expansion work — the coordinator counts
	// every ExpandResponse it absorbs — so RemoteWorkUnits is the
	// peer-measured cross-check of that same work, and RemoteCPUUS /
	// RemoteAllocBytes are cost the coordinator could not see at all.
	RemoteCalls      int64 `json:"remote_calls,omitempty"`
	RemoteWorkUnits  int64 `json:"remote_work_units,omitempty"`
	RemoteCPUUS      int64 `json:"remote_cpu_us,omitempty"`
	RemoteAllocBytes int64 `json:"remote_alloc_bytes,omitempty"`
}

// NewLedger starts a ledger, sampling the process CPU and allocation
// baselines the deltas are taken against.
func NewLedger() *Ledger {
	return &Ledger{
		start:      time.Now(),
		startCPU:   processCPUTime(),
		startAlloc: heapAllocBytes(),
	}
}

// AddExpanded adds n to the vertices-expanded counter. Algorithms
// accumulate locally during a search and flush the total here once.
func (l *Ledger) AddExpanded(n int64) {
	if l == nil || n == 0 {
		return
	}
	l.expanded.Add(n)
}

// Expanded returns the vertices expanded so far. The evaluator brackets a
// search call with this to attribute the delta to the searched layer.
func (l *Ledger) Expanded() int64 {
	if l == nil {
		return 0
	}
	return l.expanded.Load()
}

// NoteFrontier records a frontier/queue size observation; the ledger
// keeps the peak.
func (l *Ledger) NoteFrontier(size int64) {
	if l == nil {
		return
	}
	for {
		cur := l.frontierPeak.Load()
		if size <= cur || l.frontierPeak.CompareAndSwap(cur, size) {
			return
		}
	}
}

// AddLayerWork attributes n work units (frontier expansions, Down-map
// member examinations, qualification checks) to a layer.
func (l *Ledger) AddLayerWork(layer int, n int64) {
	if l == nil || n == 0 || layer < 0 {
		return
	}
	if layer >= MaxLedgerLayers {
		layer = MaxLedgerLayers - 1
	}
	l.layerWork[layer].Add(n)
}

// AddShardWork attributes n expansion work units to a shard worker. The
// per-worker totals answer "did the partition keep the workers busy
// evenly?" for one query, the shard-level complement of AddLayerWork.
func (l *Ledger) AddShardWork(shard int, n int64) {
	if l == nil || n == 0 || shard < 0 {
		return
	}
	if shard >= MaxLedgerShards {
		shard = MaxLedgerShards - 1
	}
	l.shardWork[shard].Add(n)
}

// MergeRemote folds one shard peer's per-call ledger into the remote
// accounting. Safe during the query (the local Snapshot freeze happens
// after evaluation returns). Nil-safe on both sides.
func (l *Ledger) MergeRemote(s *LedgerSnapshot) {
	if l == nil || s == nil {
		return
	}
	l.remoteCalls.Add(1)
	l.remoteUnits.Add(s.WorkUnits)
	l.remoteCPUUS.Add(s.CPUUS)
	l.remoteAlloc.Add(s.AllocBytes)
}

// WorkUnits returns the total work units attributed so far: the sum of
// the per-layer counters, falling back to the raw expansion count when
// nothing was layer-attributed (direct evaluation paths).
func (l *Ledger) WorkUnits() int64 {
	if l == nil {
		return 0
	}
	var sum int64
	for i := range l.layerWork {
		sum += l.layerWork[i].Load()
	}
	if sum == 0 {
		return l.expanded.Load()
	}
	return sum
}

// Snapshot finalizes the ledger: the first call computes the CPU and
// allocation deltas and freezes the counters; subsequent calls return the
// same snapshot. Nil-safe (returns nil).
func (l *Ledger) Snapshot() *LedgerSnapshot {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snap != nil {
		return l.snap
	}
	s := &LedgerSnapshot{
		Expanded:     l.expanded.Load(),
		FrontierPeak: l.frontierPeak.Load(),
		WorkUnits:    l.WorkUnits(),
	}
	if cpu := processCPUTime() - l.startCPU; cpu > 0 {
		s.CPUUS = cpu.Microseconds()
	}
	if alloc := heapAllocBytes(); alloc > l.startAlloc {
		s.AllocBytes = int64(alloc - l.startAlloc)
	}
	top := -1
	for i := range l.layerWork {
		if l.layerWork[i].Load() > 0 {
			top = i
		}
	}
	if top >= 0 {
		s.LayerWork = make([]int64, top+1)
		for i := 0; i <= top; i++ {
			s.LayerWork[i] = l.layerWork[i].Load()
		}
	}
	topShard := -1
	for i := range l.shardWork {
		if l.shardWork[i].Load() > 0 {
			topShard = i
		}
	}
	if topShard >= 0 {
		s.ShardWork = make([]int64, topShard+1)
		for i := 0; i <= topShard; i++ {
			s.ShardWork[i] = l.shardWork[i].Load()
		}
	}
	s.RemoteCalls = l.remoteCalls.Load()
	s.RemoteWorkUnits = l.remoteUnits.Load()
	s.RemoteCPUUS = l.remoteCPUUS.Load()
	s.RemoteAllocBytes = l.remoteAlloc.Load()
	l.snap = s
	return s
}

// heapAllocBytes reads the cumulative heap allocation counter via
// runtime/metrics — unlike runtime.ReadMemStats this does not
// stop the world, so it is cheap enough to sample per query.
func heapAllocBytes() uint64 {
	sample := [1]metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(sample[:])
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}

type ledgerCtxKey struct{}

// ContextWithLedger installs a ledger into the context, alongside
// whatever span is already there.
func ContextWithLedger(ctx context.Context, l *Ledger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, ledgerCtxKey{}, l)
}

// LedgerFromContext returns the context's ledger, or nil. All Ledger
// methods are nil-safe, so callers use the result unconditionally.
func LedgerFromContext(ctx context.Context) *Ledger {
	if ctx == nil {
		return nil
	}
	l, _ := ctx.Value(ledgerCtxKey{}).(*Ledger)
	return l
}

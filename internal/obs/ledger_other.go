//go:build !unix

package obs

import "time"

// processCPUTime is unavailable off unix; the ledger's CPU delta reads 0
// and the deterministic work counters carry the calibration.
func processCPUTime() time.Duration { return 0 }

package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.AddExpanded(5)
	l.NoteFrontier(10)
	l.AddLayerWork(2, 7)
	if l.Expanded() != 0 || l.WorkUnits() != 0 {
		t.Fatal("nil ledger must read as zero")
	}
	if l.Snapshot() != nil {
		t.Fatal("nil ledger snapshot must be nil")
	}
}

func TestLedgerCounters(t *testing.T) {
	l := NewLedger()
	l.AddExpanded(10)
	l.AddExpanded(5)
	if got := l.Expanded(); got != 15 {
		t.Fatalf("expanded = %d, want 15", got)
	}
	l.NoteFrontier(3)
	l.NoteFrontier(9)
	l.NoteFrontier(4) // below the peak; must not lower it
	l.AddLayerWork(0, 100)
	l.AddLayerWork(2, 50)
	l.AddLayerWork(-1, 7) // out of range: ignored
	l.AddLayerWork(MaxLedgerLayers+5, 3)

	if got := l.WorkUnits(); got != 153 {
		t.Fatalf("work units = %d, want 153 (100 + 50 + 3 clamped)", got)
	}
	s := l.Snapshot()
	if s.Expanded != 15 || s.FrontierPeak != 9 || s.WorkUnits != 153 {
		t.Fatalf("snapshot: %+v", s)
	}
	// LayerWork is trimmed to the highest nonzero layer — the clamped
	// out-of-range add lands in the last slot, so the full array survives.
	if len(s.LayerWork) != MaxLedgerLayers {
		t.Fatalf("layer work length = %d", len(s.LayerWork))
	}
	if s.LayerWork[0] != 100 || s.LayerWork[2] != 50 || s.LayerWork[MaxLedgerLayers-1] != 3 {
		t.Fatalf("layer work = %v", s.LayerWork)
	}
}

func TestLedgerWorkUnitsFallsBackToExpanded(t *testing.T) {
	l := NewLedger()
	l.AddExpanded(42)
	if got := l.WorkUnits(); got != 42 {
		t.Fatalf("work units without layer attribution = %d, want 42", got)
	}
}

func TestLedgerSnapshotIdempotent(t *testing.T) {
	l := NewLedger()
	l.AddExpanded(1)
	s1 := l.Snapshot()
	l.AddExpanded(99) // after the freeze; must not appear
	s2 := l.Snapshot()
	if s1 != s2 {
		t.Fatal("snapshot must be computed once and reused")
	}
	if s1.Expanded != 1 {
		t.Fatalf("frozen snapshot mutated: %+v", s1)
	}
}

func TestLedgerLayerTrim(t *testing.T) {
	l := NewLedger()
	l.AddLayerWork(1, 5)
	s := l.Snapshot()
	if len(s.LayerWork) != 2 || s.LayerWork[0] != 0 || s.LayerWork[1] != 5 {
		t.Fatalf("layer work = %v, want [0 5]", s.LayerWork)
	}
}

func TestLedgerContextRoundTrip(t *testing.T) {
	if LedgerFromContext(nil) != nil {
		t.Fatal("nil context must yield nil ledger")
	}
	if LedgerFromContext(context.Background()) != nil {
		t.Fatal("empty context must yield nil ledger")
	}
	l := NewLedger()
	ctx := ContextWithLedger(context.Background(), l)
	if LedgerFromContext(ctx) != l {
		t.Fatal("ledger lost in context round trip")
	}
	if got := ContextWithLedger(context.Background(), nil); LedgerFromContext(got) != nil {
		t.Fatal("installing a nil ledger must be a no-op")
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.AddExpanded(1)
				l.AddLayerWork(w%3, 1)
				l.NoteFrontier(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := l.Expanded(); got != 8000 {
		t.Fatalf("expanded = %d, want 8000", got)
	}
	s := l.Snapshot()
	if s.WorkUnits != 8000 || s.FrontierPeak != 999 {
		t.Fatalf("snapshot: %+v", s)
	}
}

func TestLedgerSnapshotJSON(t *testing.T) {
	l := NewLedger()
	l.AddExpanded(3)
	l.NoteFrontier(2)
	js, err := json.Marshal(l.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(js, &m); err != nil {
		t.Fatal(err)
	}
	if m["vertices_expanded"] != float64(3) || m["frontier_peak"] != float64(2) {
		t.Fatalf("snapshot JSON: %s", js)
	}
	if _, ok := m["layer_work"]; ok {
		t.Fatalf("empty layer work must be omitted: %s", js)
	}
}

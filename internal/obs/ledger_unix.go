//go:build unix

package obs

import (
	"syscall"
	"time"
)

// processCPUTime returns the process's cumulative user+system CPU time.
// One getrusage syscall (~1µs), cheap enough per query.
func processCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

package obs

import (
	"context"
	"io"
	"log/slog"
	"sync"
)

// NewLogger builds a slog.Logger writing to w at the given level, in
// logfmt-style text or JSON. This is the one place the binaries construct
// loggers so the output format stays uniform across bigindexd and the CLI.
func NewLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// DiscardLogger returns a logger that drops everything — the default for
// library components when the caller wires no logger.
func DiscardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

// LogBag collects request-scoped log attributes: HTTP handlers deposit
// facts (query, algo, layer, result count) as they learn them and the
// middleware emits them all on the single per-request log line.
type LogBag struct {
	mu    sync.Mutex
	attrs []slog.Attr
}

// Add appends attributes. Nil-safe.
func (b *LogBag) Add(attrs ...slog.Attr) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.attrs = append(b.attrs, attrs...)
	b.mu.Unlock()
}

// Attrs snapshots the collected attributes as []any for slog's variadic
// argument list.
func (b *LogBag) Attrs() []any {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]any, len(b.attrs))
	for i, a := range b.attrs {
		out[i] = a
	}
	return out
}

type logBagCtxKey struct{}

// ContextWithLogBag installs a fresh bag and returns it with the derived
// context.
func ContextWithLogBag(ctx context.Context) (context.Context, *LogBag) {
	b := &LogBag{}
	return context.WithValue(ctx, logBagCtxKey{}, b), b
}

// AddLogAttrs appends attributes to the context's bag; a context without a
// bag (e.g. a non-HTTP caller) makes this a no-op.
func AddLogAttrs(ctx context.Context, attrs ...slog.Attr) {
	if ctx == nil {
		return
	}
	b, _ := ctx.Value(logBagCtxKey{}).(*LogBag)
	b.Add(attrs...)
}

// Package obs is the stdlib-only observability substrate of the system:
// a metrics registry with Prometheus text exposition, span-based query
// tracing carried through context.Context, and log/slog helpers with
// request-scoped attributes. Everything is safe for concurrent use and
// every metric/span method tolerates a nil receiver, so instrumented code
// needs no "is observability enabled?" branches.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram bounds in seconds, spanning
// sub-millisecond index hits to multi-second direct evaluations.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Families expose in registration order; children of a
// family expose sorted by label values, so output is deterministic.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]*labelled
	order    []string // insertion keys, sorted at exposition time
}

// labelled pairs a child metric with its label values. The values are kept
// as a slice (not re-split from the map key) so a label value containing
// the key separator byte can never shift values onto the wrong label
// names at exposition time.
type labelled struct {
	vals []string
	m    metric
}

type metric interface {
	// expose writes the sample lines for one child with the given
	// rendered label pairs (no braces).
	expose(w io.Writer, name, labels string)
}

// family lookup/registration. Re-registering the same name with the same
// type and labels returns the existing family (so independent components
// can share a metric); a conflicting re-registration panics, which is a
// programmer error on par with a duplicate flag name.
func (r *Registry) familyFor(name, help, typ string, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v (was %s%v)",
				name, typ, labels, f.typ, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with labels %v (was %v)",
					name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...), buckets: buckets,
		children: make(map[string]*labelled),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

func (f *family) child(values []string, mk func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	// Quote each value into the key: a plain separator join would let
	// values containing the separator collide into one child.
	var kb []byte
	for _, v := range values {
		kb = strconv.AppendQuote(kb, v)
	}
	key := string(kb)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c.m
	}
	c := &labelled{vals: append([]string(nil), values...), m: mk()}
	f.children[key] = c
	f.order = append(f.order, key)
	return c.m
}

// renderLabels renders `k1="v1",k2="v2"` for one child's label values,
// escaping each value per the text exposition format.
func (f *family) renderLabels(vals []string) string {
	if len(f.labels) == 0 {
		return ""
	}
	parts := make([]string, len(f.labels))
	for i, l := range f.labels {
		parts[i] = l + `="` + escapeLabel(vals[i]) + `"`
	}
	return strings.Join(parts, ",")
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, newline, and double quote become \\, \n, and \". Backslash
// must be escaped first or the later replacements would double-escape
// their own output.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\n\"") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string per the text format (backslash and
// newline only; quotes are legal in help text).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0). Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) expose(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, braced(labels), c.Value())
}

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta with a CAS loop. Nil-safe.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) expose(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, braced(labels), formatFloat(g.Value()))
}

// funcGauge is a gauge whose value is computed at exposition time. It
// backs Registry.GaugeFunc for values that are derived rather than stored
// (e.g. seconds since the served index was last refreshed).
type funcGauge func() float64

func (g funcGauge) expose(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, braced(labels), formatFloat(g()))
}

// Histogram is a fixed-bucket latency/size histogram. Buckets are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
// Each bucket can carry an exemplar — the trace ID of its most recent
// observation — rendered in OpenMetrics style so a latency spike in a
// bucket points straight at a stored flight-recorder trace.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Int64 // len(bounds)+1, last is +Inf
	exemplars []atomic.Pointer[Exemplar]
	sumBits   atomic.Uint64
	n         atomic.Int64
}

// Exemplar is one bucket's trace cross-link: the observed value, the trace
// that produced it, and when.
type Exemplar struct {
	TraceID string
	Value   float64
	Time    time.Time
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observe(v)
}

// observe records v and returns the bucket index it landed in.
func (h *Histogram) observe(v float64) int {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return i
		}
	}
}

// ObserveExemplar records v and remembers traceID as the exemplar of the
// bucket v lands in (the bucket's most recent observation). An empty
// traceID degrades to a plain Observe. Nil-safe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := h.observe(v)
	if traceID == "" {
		return
	}
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v, Time: time.Now()})
}

// BucketExemplar returns the exemplar currently held by bucket i (the
// +Inf bucket is index len(bounds)); nil when the bucket has none.
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if h == nil || i < 0 || i >= len(h.exemplars) {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCounts returns the cumulative per-bucket counts, ending with the
// +Inf bucket (== Count()).
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

func (h *Histogram) expose(w io.Writer, name, labels string) {
	cum := h.BucketCounts()
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket%s %d%s\n", name,
			braced(joinLabels(labels, `le="`+formatFloat(b)+`"`)), cum[i], h.exemplarSuffix(i))
	}
	fmt.Fprintf(w, "%s_bucket%s %d%s\n", name,
		braced(joinLabels(labels, `le="+Inf"`)), cum[len(cum)-1], h.exemplarSuffix(len(cum)-1))
	fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(labels), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), h.Count())
}

// exemplarSuffix renders the OpenMetrics exemplar annotation for bucket i
// (` # {trace_id="…"} value timestamp`), or "" when the bucket has none.
func (h *Histogram) exemplarSuffix(i int) string {
	ex := h.exemplars[i].Load()
	if ex == nil {
		return ""
	}
	return ` # {trace_id="` + escapeLabel(ex.TraceID) + `"} ` +
		formatFloat(ex.Value) + " " +
		strconv.FormatFloat(float64(ex.Time.UnixMilli())/1000, 'f', 3, 64)
}

// Counter returns the unlabeled counter `name`, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, "counter", nil, nil)
	return f.child(nil, func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns the unlabeled gauge `name`, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, "gauge", nil, nil)
	return f.child(nil, func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers the unlabeled gauge `name` whose value is fn(),
// evaluated at every exposition. fn must be safe for concurrent calls.
// Registering the same name again keeps the first function. Nil-safe.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	f := r.familyFor(name, help, "gauge", nil, nil)
	f.child(nil, func() metric { return funcGauge(fn) })
}

// Histogram returns the unlabeled histogram `name` (nil buckets =
// DefBuckets), registering it on first use.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.familyFor(name, help, "histogram", buckets, nil)
	return f.child(nil, func() metric { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r.familyFor(name, help, "counter", nil, labels)}
}

// With returns the child counter for the given label values. Nil-safe.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() metric { return &Counter{} }).(*Counter)
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{r.familyFor(name, help, "gauge", nil, labels)}
}

// With returns the child gauge for the given label values. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() metric { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family (nil
// buckets = DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.familyFor(name, help, "histogram", buckets, labels)}
}

// With returns the child histogram for the given label values. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() metric { return newHistogram(v.f.buckets) }).(*Histogram)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make(map[string]*labelled, len(keys))
		for _, k := range keys {
			children[k] = f.children[k]
		}
		f.mu.Unlock()
		sort.Strings(keys)
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, k := range keys {
			c := children[k]
			c.m.expose(w, f.name, f.renderLabels(c.vals))
		}
	}
}

// Handler serves the registry at an endpoint (GET /metrics). Non-read
// methods get 405 with an Allow header.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatal("re-registering a counter must return the same instance")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// None of these may panic; all return nil receivers whose methods are
	// no-ops (the "observability disabled" path in core.Build).
	r.Counter("x", "").Inc()
	r.Gauge("x", "").Set(1)
	r.Histogram("x", "", nil).Observe(1)
	r.CounterVec("x", "", "l").With("v").Add(2)
	r.GaugeVec("x", "", "l").With("v").Add(1)
	r.HistogramVec("x", "", nil, "l").With("v").Observe(1)
	var buf strings.Builder
	r.WritePrometheus(&buf)
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

func TestHistogramBucketMath(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.1, 0.3, 0.7, 2, 5} {
		h.Observe(v)
	}
	// le=0.1 is inclusive: 0.05 and 0.1 land there.
	want := []int64{2, 3, 4, 6} // cumulative: <=0.1, <=0.5, <=1, +Inf
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if s := h.Sum(); s < 8.149 || s > 8.151 {
		t.Fatalf("sum = %v, want 8.15", s)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("http_requests_total", "Requests.", "path", "code").With("/query", "200").Add(3)
	r.Gauge("layers", "Index layers.").Set(7)
	r.Histogram("q_seconds", "Query latency.", []float64{0.5}).Observe(0.25)

	var buf strings.Builder
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP http_requests_total Requests.",
		"# TYPE http_requests_total counter",
		`http_requests_total{path="/query",code="200"} 3`,
		"# TYPE layers gauge",
		"layers 7",
		"# TYPE q_seconds histogram",
		`q_seconds_bucket{le="0.5"} 1`,
		`q_seconds_bucket{le="+Inf"} 1`,
		"q_seconds_sum 0.25",
		"q_seconds_count 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("c", "", "q").With(`a"b\c` + "\nd").Inc()
	var buf strings.Builder
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `c{q="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", buf.String())
	}
}

func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("c_total", "", "worker")
	h := r.Histogram("h", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				vec.With("w").Inc()
				h.Observe(float64(j) / 1000)
			}
		}(i)
	}
	wg.Wait()
	if vec.With("w").Value() != 8000 {
		t.Fatalf("counter = %d", vec.With("w").Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d", h.Count())
	}
}

// GaugeFunc computes its value at exposition time — the staleness-seconds
// pattern, where the value is a function of the clock rather than a
// stored sample.
func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.GaugeFunc("staleness_seconds", "Seconds since last reload.", func() float64 { return v })

	var buf strings.Builder
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "staleness_seconds 1.5\n") ||
		!strings.Contains(buf.String(), "# TYPE staleness_seconds gauge") {
		t.Fatalf("exposition:\n%s", buf.String())
	}

	v = 2.5 // re-expose: the function is consulted each time
	buf.Reset()
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "staleness_seconds 2.5\n") {
		t.Fatalf("re-exposition:\n%s", buf.String())
	}

	// Nil receiver and nil fn are safe no-ops (matching Gauge semantics).
	var nilReg *Registry
	nilReg.GaugeFunc("x", "", func() float64 { return 0 })
	r.GaugeFunc("y", "", nil)
}

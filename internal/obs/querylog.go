package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// QueryLogEntry is one captured query: enough to replay it against an
// index (keywords by name, algorithm, k) plus what it cost (outcome,
// latency, ledger). Keywords are stored by *name*, not interned label, so
// a captured log survives dataset regeneration, like datagen workloads.
type QueryLogEntry struct {
	TS       time.Time       `json:"ts"`
	Keywords []string        `json:"q"`
	Algo     string          `json:"algo"`
	K        int             `json:"k"`
	Layer    int             `json:"layer"`
	Direct   bool            `json:"direct,omitempty"`
	Cached   bool            `json:"cached,omitempty"`
	Outcome  string          `json:"outcome"`
	DurUS    int64           `json:"dur_us"`
	Cost     *LedgerSnapshot `json:"cost,omitempty"`
	// PeerAttempts counts shard RPC attempts by peer address for queries
	// routed over a fleet — the per-query complement of the client's
	// per-peer metrics (a degraded entry shows which peer burned the
	// retries).
	PeerAttempts map[string]int64 `json:"peer_attempts,omitempty"`
}

// QueryLogOptions configures a QueryLog.
type QueryLogOptions struct {
	// Path is the JSONL file appended to. Required.
	Path string
	// MaxBytes rotates the log when the current file would exceed it:
	// Path is renamed to Path+".1" (replacing any previous rotation) and
	// a fresh file is started, so disk usage stays under ~2×MaxBytes.
	// 0 = 64 MiB.
	MaxBytes int64
	// FlushEvery bounds how long an entry sits in the write buffer
	// (0 = 1s). Writes are buffered and never fsynced — the log is an
	// operational capture, not a durability journal; a crash loses at
	// most one flush interval.
	FlushEvery time.Duration
}

// QueryLog is an opt-in rotating JSONL query log with a buffered,
// fsync-free writer. Append is safe for concurrent use and nil-safe, so
// the server logs unconditionally and a disabled log costs one nil check.
type QueryLog struct {
	path     string
	maxBytes int64

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	size    int64
	dropped int64
	closed  bool

	stop chan struct{}
	done chan struct{}
}

// OpenQueryLog opens (appending) or creates the log file and starts the
// background flusher.
func OpenQueryLog(opt QueryLogOptions) (*QueryLog, error) {
	if opt.Path == "" {
		return nil, fmt.Errorf("obs: query log path is empty")
	}
	if opt.MaxBytes <= 0 {
		opt.MaxBytes = 64 << 20
	}
	if opt.FlushEvery <= 0 {
		opt.FlushEvery = time.Second
	}
	f, err := os.OpenFile(opt.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: opening query log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: query log stat: %w", err)
	}
	ql := &QueryLog{
		path:     opt.Path,
		maxBytes: opt.MaxBytes,
		f:        f,
		w:        bufio.NewWriterSize(f, 64<<10),
		size:     st.Size(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go ql.flushLoop(opt.FlushEvery)
	return ql, nil
}

// Append writes one entry. Marshal or write failures drop the entry
// (counted, never propagated): capture must not fail queries.
func (ql *QueryLog) Append(e QueryLogEntry) {
	if ql == nil {
		return
	}
	line, err := json.Marshal(e)
	if err != nil {
		ql.mu.Lock()
		ql.dropped++
		ql.mu.Unlock()
		return
	}
	line = append(line, '\n')
	ql.mu.Lock()
	defer ql.mu.Unlock()
	if ql.closed {
		ql.dropped++
		return
	}
	if ql.size+int64(len(line)) > ql.maxBytes {
		ql.rotateLocked()
	}
	if _, err := ql.w.Write(line); err != nil {
		ql.dropped++
		return
	}
	ql.size += int64(len(line))
}

// rotateLocked swaps in a fresh file, keeping one previous generation.
// On any failure the current file keeps growing past the cap — losing
// the size bound beats losing the capture.
func (ql *QueryLog) rotateLocked() {
	if err := ql.w.Flush(); err != nil {
		return
	}
	if err := ql.f.Close(); err != nil {
		// The stream is unusable; reopen below either way.
		_ = err
	}
	_ = os.Rename(ql.path, ql.path+".1")
	f, err := os.OpenFile(ql.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		// Reopen the (renamed or original) path append-only as a fallback.
		f, err = os.OpenFile(ql.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			ql.closed = true
			return
		}
	}
	ql.f = f
	ql.w = bufio.NewWriterSize(f, 64<<10)
	ql.size = 0
}

// Dropped reports entries lost to marshal/write failures or appends
// after Close.
func (ql *QueryLog) Dropped() int64 {
	if ql == nil {
		return 0
	}
	ql.mu.Lock()
	defer ql.mu.Unlock()
	return ql.dropped
}

func (ql *QueryLog) flushLoop(every time.Duration) {
	defer close(ql.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			ql.mu.Lock()
			if !ql.closed {
				_ = ql.w.Flush()
			}
			ql.mu.Unlock()
		case <-ql.stop:
			return
		}
	}
}

// Close flushes and closes the log. Nil-safe; later Appends are dropped.
func (ql *QueryLog) Close() error {
	if ql == nil {
		return nil
	}
	ql.mu.Lock()
	if ql.closed {
		ql.mu.Unlock()
		return nil
	}
	ql.closed = true
	err := ql.w.Flush()
	if cerr := ql.f.Close(); err == nil {
		err = cerr
	}
	ql.mu.Unlock()
	close(ql.stop)
	<-ql.done
	return err
}

// ReadQueryLog parses a JSONL capture, skipping malformed lines (a
// rotation or crash can truncate the last line mid-write). Returns the
// entries and how many lines were skipped.
func ReadQueryLog(r io.Reader) (entries []QueryLogEntry, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e QueryLogEntry
		if err := json.Unmarshal(line, &e); err != nil || len(e.Keywords) == 0 {
			skipped++
			continue
		}
		entries = append(entries, e)
	}
	return entries, skipped, sc.Err()
}

// ReadQueryLogFile is ReadQueryLog over a file.
func ReadQueryLogFile(path string) ([]QueryLogEntry, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadQueryLog(f)
}

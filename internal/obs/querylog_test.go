package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func logEntry(kw string, work int64) QueryLogEntry {
	return QueryLogEntry{
		TS:       time.Unix(1700000000, 0).UTC(),
		Keywords: []string{kw, "other"},
		Algo:     "blinks",
		K:        10,
		Layer:    1,
		Outcome:  "ok",
		DurUS:    1234,
		Cost:     &LedgerSnapshot{Expanded: work, WorkUnits: work},
	}
}

func TestQueryLogAppendAndReadBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qlog.jsonl")
	ql, err := OpenQueryLog(QueryLogOptions{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ql.Append(logEntry("kw", int64(i+1)))
	}
	if err := ql.Close(); err != nil {
		t.Fatal(err)
	}
	entries, skipped, err := ReadQueryLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(entries) != 20 {
		t.Fatalf("read back %d entries (%d skipped)", len(entries), skipped)
	}
	e := entries[7]
	if e.Algo != "blinks" || e.K != 10 || e.Layer != 1 || e.Outcome != "ok" {
		t.Fatalf("entry: %+v", e)
	}
	if e.Cost == nil || e.Cost.WorkUnits != 8 {
		t.Fatalf("cost round trip: %+v", e.Cost)
	}
	if len(e.Keywords) != 2 || e.Keywords[0] != "kw" {
		t.Fatalf("keywords: %v", e.Keywords)
	}
	if ql.Dropped() != 0 {
		t.Fatalf("dropped = %d", ql.Dropped())
	}
}

func TestQueryLogNilSafe(t *testing.T) {
	var ql *QueryLog
	ql.Append(logEntry("kw", 1))
	if ql.Dropped() != 0 {
		t.Fatal("nil log must read zero drops")
	}
	if err := ql.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryLogAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qlog.jsonl")
	ql, err := OpenQueryLog(QueryLogOptions{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := ql.Close(); err != nil {
		t.Fatal(err)
	}
	ql.Append(logEntry("kw", 1))
	if ql.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", ql.Dropped())
	}
}

func TestQueryLogRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qlog.jsonl")
	// Tiny cap: a couple of entries force a rotation.
	ql, err := OpenQueryLog(QueryLogOptions{Path: path, MaxBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ql.Append(logEntry("rotate-me", int64(i)))
	}
	if err := ql.Close(); err != nil {
		t.Fatal(err)
	}
	cur, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := os.Stat(path + ".1")
	if err != nil {
		t.Fatalf("expected a rotated generation: %v", err)
	}
	if cur.Size() > 300+300 || prev.Size() > 300+300 {
		t.Fatalf("rotation did not bound sizes: cur=%d prev=%d", cur.Size(), prev.Size())
	}
	// Entries survive across the generations.
	e1, _, err := ReadQueryLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	e2, _, err := ReadQueryLogFile(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	if len(e1)+len(e2) == 0 {
		t.Fatal("no entries survived rotation")
	}
}

func TestReadQueryLogSkipsMalformed(t *testing.T) {
	in := strings.NewReader(`{"q":["a"],"algo":"bkws","outcome":"ok"}
not json at all
{"q":[],"algo":"empty keywords"}

{"q":["b","c"],"algo":"blinks","outcome":"ok"}`)
	entries, skipped, err := ReadQueryLog(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || skipped != 2 {
		t.Fatalf("entries=%d skipped=%d", len(entries), skipped)
	}
	if entries[1].Keywords[1] != "c" {
		t.Fatalf("entries: %+v", entries)
	}
}

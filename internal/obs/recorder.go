package obs

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Recorder is the in-process flight recorder: every query carries a
// lightweight trace, and at query end the recorder decides keep-or-drop
// (tail sampling). It retains, per time window, the K slowest queries,
// every query with a non-ok outcome (error/degraded/shed/cancelled), and
// a small uniform sample. Kept traces land in a bounded ring buffer
// served by the /debug/traces endpoints; the recorder also hosts the
// live-query registry behind /debug/active.
//
// All methods are nil-safe, so instrumented code calls unconditionally
// and a disabled recorder costs one nil check.
type Recorder struct {
	sample      float64
	storeSize   int
	keepSlowest int
	window      time.Duration

	kept    *CounterVec
	dropped *Counter

	mu          sync.Mutex
	ring        []*TraceRecord // capacity storeSize, oldest overwritten first
	next        int            // ring write cursor
	seq         uint64         // total kept, for most-recent-first ordering
	byID        map[string]*TraceRecord
	slowTop     []time.Duration // ascending; at most keepSlowest entries
	windowStart time.Time

	activeMu  sync.Mutex
	active    map[uint64]*activeEntry
	activeSeq uint64
}

// RecorderOptions configures a Recorder. Zero values pick defaults noted
// on each field.
type RecorderOptions struct {
	// Sample is the uniform keep probability for unremarkable queries.
	// 0 means the 0.01 default; negative disables uniform sampling
	// (outcome- and slowness-based retention still apply).
	Sample float64
	// StoreSize is the trace ring capacity (default 512).
	StoreSize int
	// KeepSlowest is K, the number of slowest queries retained per
	// window (default 8).
	KeepSlowest int
	// Window is the slow-query accounting window (default 1m). The
	// slowness threshold resets each window so a one-off spike does not
	// permanently raise the bar.
	Window time.Duration
	// Metrics, when set, registers bigindex_trace_kept_total{reason}
	// and bigindex_trace_dropped_total on the registry.
	Metrics *Registry
}

// NewRecorder creates a flight recorder.
func NewRecorder(opts RecorderOptions) *Recorder {
	if opts.Sample == 0 {
		opts.Sample = 0.01
	} else if opts.Sample < 0 {
		opts.Sample = 0
	}
	if opts.Sample > 1 {
		opts.Sample = 1
	}
	if opts.StoreSize <= 0 {
		opts.StoreSize = 512
	}
	if opts.KeepSlowest <= 0 {
		opts.KeepSlowest = 8
	}
	if opts.Window <= 0 {
		opts.Window = time.Minute
	}
	r := &Recorder{
		sample:      opts.Sample,
		storeSize:   opts.StoreSize,
		keepSlowest: opts.KeepSlowest,
		window:      opts.Window,
		ring:        make([]*TraceRecord, opts.StoreSize),
		byID:        make(map[string]*TraceRecord),
		active:      make(map[uint64]*activeEntry),
	}
	if opts.Metrics != nil {
		r.kept = opts.Metrics.CounterVec("bigindex_trace_kept_total",
			"Traces retained by the flight recorder, by tail-sampling reason.", "reason")
		r.dropped = opts.Metrics.Counter("bigindex_trace_dropped_total",
			"Traces discarded by the flight recorder at query end.")
	}
	return r
}

// TraceRecord is one retained trace: identity, outcome, why it was kept,
// and the full rendered span tree.
type TraceRecord struct {
	ID      string    `json:"id"`
	Query   string    `json:"query,omitempty"`
	Algo    string    `json:"algo,omitempty"`
	Outcome string    `json:"outcome"`
	Keep    string    `json:"keep"` // "outcome" | "slow" | "sample"
	Start   time.Time `json:"start"`
	DurUS   int64     `json:"dur_us"`
	// Cost is the query's resource ledger (per-layer work units, CPU and
	// allocation deltas) when the caller threaded one; /debug/traces/{id}
	// serves it as the trace's cost breakdown.
	Cost  *LedgerSnapshot `json:"cost,omitempty"`
	Spans SpanJSON        `json:"spans"`

	seq uint64
}

// Finish hands a completed query's trace to the recorder, which decides
// keep-or-drop. outcome "ok" is unremarkable; anything else ("error",
// "degraded", "shed", "cancelled", …) is always kept. Returns whether the
// trace was retained. Nil-safe; a nil trace is counted but never kept.
func (r *Recorder) Finish(t *Trace, algo, query, outcome string, dur time.Duration) bool {
	return r.FinishCost(t, algo, query, outcome, dur, nil)
}

// FinishCost is Finish with the query's finalized resource ledger
// attached to the retained trace.
func (r *Recorder) FinishCost(t *Trace, algo, query, outcome string, dur time.Duration, cost *LedgerSnapshot) bool {
	if r == nil {
		return false
	}
	reason := ""
	switch {
	case outcome != "" && outcome != "ok":
		reason = "outcome"
	case r.isSlow(dur):
		reason = "slow"
	case r.sample > 0 && rand.Float64() < r.sample:
		reason = "sample"
	}
	if reason == "" || t == nil {
		r.dropped.Inc()
		return false
	}
	rec := &TraceRecord{
		ID:      t.ID(),
		Query:   query,
		Algo:    algo,
		Outcome: outcome,
		Keep:    reason,
		Start:   t.Root().start,
		DurUS:   dur.Microseconds(),
		Cost:    cost,
		Spans:   t.Snapshot(),
	}
	r.mu.Lock()
	if old := r.ring[r.next]; old != nil {
		delete(r.byID, old.ID)
	}
	r.seq++
	rec.seq = r.seq
	r.ring[r.next] = rec
	r.next = (r.next + 1) % len(r.ring)
	r.byID[rec.ID] = rec
	r.mu.Unlock()
	r.kept.With(reason).Inc()
	return true
}

// isSlow reports whether dur ranks among the K slowest of the current
// window, and records it in the window's top-K either way it can.
func (r *Recorder) isSlow(dur time.Duration) bool {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if now.Sub(r.windowStart) > r.window {
		r.windowStart = now
		r.slowTop = r.slowTop[:0]
	}
	if len(r.slowTop) < r.keepSlowest {
		r.slowTop = insertDur(r.slowTop, dur)
		return true
	}
	if dur <= r.slowTop[0] {
		return false
	}
	r.slowTop = insertDur(r.slowTop[1:], dur)
	return true
}

func insertDur(s []time.Duration, d time.Duration) []time.Duration {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= d })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = d
	return s
}

// TraceFilter selects traces for Traces. Zero fields match everything.
type TraceFilter struct {
	Algo    string        // exact algo match
	Outcome string        // exact outcome match
	MinDur  time.Duration // minimum duration
	Since   time.Time     // only traces started at or after this instant
	Limit   int           // max results (0 = 50)
}

// Traces returns kept traces matching the filter, most recent first.
func (r *Recorder) Traces(f TraceFilter) []*TraceRecord {
	if r == nil {
		return nil
	}
	if f.Limit <= 0 {
		f.Limit = 50
	}
	r.mu.Lock()
	all := make([]*TraceRecord, 0, len(r.byID))
	for _, rec := range r.ring {
		if rec != nil {
			all = append(all, rec)
		}
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].seq > all[j].seq })
	out := make([]*TraceRecord, 0, min(f.Limit, len(all)))
	for _, rec := range all {
		if f.Algo != "" && rec.Algo != f.Algo {
			continue
		}
		if f.Outcome != "" && rec.Outcome != f.Outcome {
			continue
		}
		if rec.DurUS < f.MinDur.Microseconds() {
			continue
		}
		if !f.Since.IsZero() && rec.Start.Before(f.Since) {
			continue
		}
		out = append(out, rec)
		if len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Get returns the kept trace with the given ID, if still in the ring.
func (r *Recorder) Get(id string) (*TraceRecord, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.byID[id]
	return rec, ok
}

// Len returns the number of traces currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// RecorderStats is the flight recorder's occupancy as reported on
// /stats: ring capacity, retained traces broken down by keep reason, and
// the live-query count.
type RecorderStats struct {
	Capacity int            `json:"capacity"`
	Retained int            `json:"retained"`
	ByReason map[string]int `json:"by_reason,omitempty"`
	Active   int            `json:"active"`
}

// Occupancy snapshots the recorder's ring: how full it is and why each
// retained trace was kept. Nil-safe (zero stats).
func (r *Recorder) Occupancy() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	st := RecorderStats{ByReason: map[string]int{}}
	r.mu.Lock()
	st.Capacity = len(r.ring)
	for _, rec := range r.ring {
		if rec == nil {
			continue
		}
		st.Retained++
		st.ByReason[rec.Keep]++
	}
	r.mu.Unlock()
	r.activeMu.Lock()
	st.Active = len(r.active)
	r.activeMu.Unlock()
	return st
}

type activeEntry struct {
	trace *Trace
	algo  string
	query string
	start time.Time
}

// Begin registers an in-flight query with the live registry and returns a
// token for End. The trace may be nil (e.g. a query waiting in the shed
// gate before any trace exists); the entry still shows up in Active.
func (r *Recorder) Begin(t *Trace, algo, query string) uint64 {
	if r == nil {
		return 0
	}
	e := &activeEntry{trace: t, algo: algo, query: query, start: time.Now()}
	r.activeMu.Lock()
	r.activeSeq++
	tok := r.activeSeq
	r.active[tok] = e
	r.activeMu.Unlock()
	return tok
}

// End removes an in-flight query registered by Begin. Token 0 is a no-op.
func (r *Recorder) End(token uint64) {
	if r == nil || token == 0 {
		return
	}
	r.activeMu.Lock()
	delete(r.active, token)
	r.activeMu.Unlock()
}

// ActiveQuery is one in-flight query as reported by /debug/active.
type ActiveQuery struct {
	TraceID   string `json:"trace_id,omitempty"`
	Algo      string `json:"algo,omitempty"`
	Query     string `json:"query"`
	ElapsedUS int64  `json:"elapsed_us"`
	Current   string `json:"current,omitempty"` // span path, e.g. "query>Eval>Search"
}

// Active snapshots the live-query registry, longest-running first.
func (r *Recorder) Active() []ActiveQuery {
	if r == nil {
		return nil
	}
	r.activeMu.Lock()
	entries := make([]*activeEntry, 0, len(r.active))
	for _, e := range r.active {
		entries = append(entries, e)
	}
	r.activeMu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].start.Before(entries[j].start) })
	now := time.Now()
	out := make([]ActiveQuery, len(entries))
	for i, e := range entries {
		out[i] = ActiveQuery{
			TraceID:   e.trace.ID(),
			Algo:      e.algo,
			Query:     e.query,
			ElapsedUS: now.Sub(e.start).Microseconds(),
			Current:   e.trace.Root().CurrentPath(),
		}
	}
	return out
}

// Outcome normalizes a query's terminal state for tail sampling: "" and
// "ok" mean unremarkable; everything else forces retention. Helper for
// call sites assembling the outcome from separate error/degraded flags.
func Outcome(err error, degraded bool) string {
	switch {
	case err != nil:
		msg := err.Error()
		if strings.Contains(msg, "context canceled") {
			return "cancelled"
		}
		return "error"
	case degraded:
		return "degraded"
	default:
		return "ok"
	}
}

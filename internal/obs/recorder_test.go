package obs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func finishOne(r *Recorder, algo, outcome string, dur time.Duration) *Trace {
	t := NewTrace("query")
	t.Root().End()
	r.Finish(t, algo, "kw1,kw2", outcome, dur)
	return t
}

// Non-ok outcomes are always retained, regardless of sampling or speed.
func TestRecorderKeepsBadOutcomes(t *testing.T) {
	r := NewRecorder(RecorderOptions{Sample: -1}) // uniform sampling off
	for _, outcome := range []string{"error", "degraded", "shed", "cancelled"} {
		tr := finishOne(r, "blinks", outcome, 0)
		rec, ok := r.Get(tr.ID())
		if !ok {
			t.Fatalf("outcome %q not retained", outcome)
		}
		if rec.Outcome != outcome || rec.Keep != "outcome" {
			t.Fatalf("outcome %q: got %+v", outcome, rec)
		}
	}
}

// With uniform sampling off, an ok query is kept only while it ranks among
// the window's K slowest.
func TestRecorderKeepSlowest(t *testing.T) {
	r := NewRecorder(RecorderOptions{Sample: -1, KeepSlowest: 2, Window: time.Hour})
	a := finishOne(r, "blinks", "ok", 10*time.Millisecond) // fills top-K
	b := finishOne(r, "blinks", "ok", 20*time.Millisecond) // fills top-K
	c := finishOne(r, "blinks", "ok", 5*time.Millisecond)  // below the bar
	d := finishOne(r, "blinks", "ok", 30*time.Millisecond) // displaces 10ms
	e := finishOne(r, "blinks", "ok", 15*time.Millisecond) // bar is now 20ms
	for id, want := range map[string]bool{
		a.ID(): true, b.ID(): true, c.ID(): false, d.ID(): true, e.ID(): false,
	} {
		if _, ok := r.Get(id); ok != want {
			t.Fatalf("trace %s retained=%v, want %v", id, ok, want)
		}
	}
	if rec, _ := r.Get(d.ID()); rec.Keep != "slow" {
		t.Fatalf("keep reason = %q, want slow", rec.Keep)
	}
}

// Sample=1 keeps everything; a query that is neither remarkable in outcome
// nor speed records the "sample" reason.
func TestRecorderUniformSample(t *testing.T) {
	r := NewRecorder(RecorderOptions{Sample: 1, KeepSlowest: 1, Window: time.Hour})
	finishOne(r, "blinks", "ok", time.Second) // occupies the K=1 slow slot
	tr := finishOne(r, "blinks", "ok", time.Millisecond)
	rec, ok := r.Get(tr.ID())
	if !ok || rec.Keep != "sample" {
		t.Fatalf("retained=%v rec=%+v, want keep=sample", ok, rec)
	}
}

// The ring is bounded: the oldest record is evicted (and un-indexed) once
// capacity is exceeded.
func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(RecorderOptions{Sample: -1, StoreSize: 2})
	a := finishOne(r, "blinks", "error", 0)
	b := finishOne(r, "blinks", "error", 0)
	c := finishOne(r, "blinks", "error", 0)
	if _, ok := r.Get(a.ID()); ok {
		t.Fatal("oldest record not evicted")
	}
	for _, id := range []string{b.ID(), c.ID()} {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("recent record %s evicted", id)
		}
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestRecorderTracesFilter(t *testing.T) {
	r := NewRecorder(RecorderOptions{Sample: -1})
	finishOne(r, "blinks", "error", 5*time.Millisecond)
	finishOne(r, "bkws", "degraded", 50*time.Millisecond)
	last := finishOne(r, "blinks", "shed", 500*time.Millisecond)

	if got := r.Traces(TraceFilter{}); len(got) != 3 || got[0].ID != last.ID() {
		t.Fatalf("unfiltered: %d records, first %+v (want most recent first)", len(got), got[0])
	}
	if got := r.Traces(TraceFilter{Algo: "bkws"}); len(got) != 1 || got[0].Outcome != "degraded" {
		t.Fatalf("algo filter: %+v", got)
	}
	if got := r.Traces(TraceFilter{Outcome: "shed"}); len(got) != 1 {
		t.Fatalf("outcome filter: %+v", got)
	}
	if got := r.Traces(TraceFilter{MinDur: 40 * time.Millisecond}); len(got) != 2 {
		t.Fatalf("min-dur filter: %d records", len(got))
	}
	if got := r.Traces(TraceFilter{Limit: 1}); len(got) != 1 {
		t.Fatalf("limit: %d records", len(got))
	}
}

// The live registry surfaces in-flight queries with their current span
// path, and Begin works before any trace exists (the shed-gate case).
func TestRecorderActive(t *testing.T) {
	r := NewRecorder(RecorderOptions{})
	tr := NewTrace("query")
	sp := tr.Root().StartChild("Eval").StartChild("Search")
	tok := r.Begin(tr, "blinks", "kw1,kw2")
	tok2 := r.Begin(nil, "", "waiting")

	act := r.Active()
	if len(act) != 2 {
		t.Fatalf("Active = %d entries, want 2", len(act))
	}
	var traced *ActiveQuery
	for i := range act {
		if act[i].TraceID == tr.ID() {
			traced = &act[i]
		}
	}
	if traced == nil {
		t.Fatalf("traced query missing from %+v", act)
	}
	if !strings.Contains(traced.Current, "Search") {
		t.Fatalf("Current = %q, want span path through Search", traced.Current)
	}
	sp.End()

	r.End(tok)
	r.End(tok2)
	if got := r.Active(); len(got) != 0 {
		t.Fatalf("Active after End = %+v", got)
	}
}

// A disabled recorder (nil) is safe to call everywhere the server does.
func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	tr := NewTrace("query")
	if r.Finish(tr, "a", "q", "error", time.Second) {
		t.Fatal("nil recorder claimed to retain a trace")
	}
	tok := r.Begin(tr, "a", "q")
	r.End(tok)
	if r.Active() != nil || r.Traces(TraceFilter{}) != nil || r.Len() != 0 {
		t.Fatal("nil recorder returned data")
	}
	if _, ok := r.Get("x"); ok {
		t.Fatal("nil recorder Get ok")
	}
}

// A nil trace with a remarkable outcome still must not be stored (there is
// nothing to show), only counted.
func TestRecorderNilTrace(t *testing.T) {
	r := NewRecorder(RecorderOptions{Sample: 1})
	if r.Finish(nil, "a", "q", "error", time.Second) {
		t.Fatal("nil trace retained")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRecorderKeptMetrics(t *testing.T) {
	reg := NewRegistry()
	r := NewRecorder(RecorderOptions{Sample: -1, Metrics: reg})
	finishOne(r, "blinks", "error", 0)
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `bigindex_trace_kept_total{reason="outcome"} 1`) {
		t.Fatalf("kept counter missing:\n%s", buf.String())
	}
}

func TestOutcomeHelper(t *testing.T) {
	for _, tc := range []struct {
		err      error
		degraded bool
		want     string
	}{
		{nil, false, "ok"},
		{nil, true, "degraded"},
		{context.Canceled, false, "cancelled"},
		{errors.New("boom"), false, "error"},
	} {
		if got := Outcome(tc.err, tc.degraded); got != tc.want {
			t.Fatalf("Outcome(%v, %v) = %q, want %q", tc.err, tc.degraded, got, tc.want)
		}
	}
}

package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntimeMetrics registers process-level gauges on the registry,
// sampled lazily at scrape time via GaugeFunc:
//
//	bigindex_goroutines            runtime.NumGoroutine
//	bigindex_heap_alloc_bytes      MemStats.HeapAlloc
//	bigindex_gc_pause_last_seconds most recent GC stop-the-world pause
//	bigindex_uptime_seconds        seconds since this call
//
// ReadMemStats is not free, so one snapshot per scrape is shared by the
// mem-derived gauges and refreshed at most once per second (a registry is
// typically scraped every 10–60s; sub-second re-scrapes reuse the cache).
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	start := time.Now()
	var (
		mu     sync.Mutex
		ms     runtime.MemStats
		msTime time.Time
	)
	memStats := func() runtime.MemStats {
		mu.Lock()
		defer mu.Unlock()
		if time.Since(msTime) > time.Second {
			runtime.ReadMemStats(&ms)
			msTime = time.Now()
		}
		return ms
	}
	r.GaugeFunc("bigindex_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("bigindex_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 { return float64(memStats().HeapAlloc) })
	r.GaugeFunc("bigindex_gc_pause_last_seconds",
		"Duration of the most recent GC stop-the-world pause.",
		func() float64 {
			s := memStats()
			if s.NumGC == 0 {
				return 0
			}
			return float64(s.PauseNs[(s.NumGC+255)%256]) / 1e9
		})
	r.GaugeFunc("bigindex_uptime_seconds",
		"Seconds since process metrics were registered.",
		func() float64 { return time.Since(start).Seconds() })
}

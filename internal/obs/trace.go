package obs

import (
	"context"
	"encoding/json"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// maxChildren bounds the rendered span tree: children beyond the cap are
// still timed (StartChild always returns a live span, so aggregates like
// core.Breakdown stay exact) but are not attached, only counted in
// dropped_children. Keeps per-answer spans from exploding trace JSON on
// queries with thousands of generalized answers.
const maxChildren = 128

// Trace is one tree of timed spans, usually one per query. The zero value
// is not useful; use NewTrace. All methods are nil-safe so code can trace
// unconditionally and pay nothing when no trace is installed.
type Trace struct {
	id   string
	root *Span
}

// traceIDBase randomizes trace IDs across process restarts so an exemplar
// trace ID scraped before a restart cannot collide with a fresh trace's.
// Within a process the atomic counter makes IDs unique; the golden-ratio
// multiply spreads consecutive counters across the hex space so IDs don't
// look sequential in dashboards.
var (
	traceIDBase = rand.Uint64()
	traceIDSeq  atomic.Uint64
)

func newTraceID() string {
	n := traceIDSeq.Add(1)
	return strconv.FormatUint(traceIDBase^(n*0x9E3779B97F4A7C15), 16)
}

// NewTrace starts a trace whose root span has the given name. Every trace
// gets a process-unique hex ID, the cross-link between stored traces
// (/debug/traces/{id}) and histogram exemplars.
func NewTrace(name string) *Trace {
	t := &Trace{id: newTraceID()}
	t.root = &Span{trace: t, name: name, start: time.Now()}
	return t
}

// ID returns the trace's identifier ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// MarshalJSON renders the span tree. Spans still running render with their
// duration so far.
func (t *Trace) MarshalJSON() ([]byte, error) {
	if t == nil || t.root == nil {
		return []byte("null"), nil
	}
	return json.Marshal(t.root.snapshot(t.root.start))
}

// Span is one timed phase. Spans nest via StartChild and carry arbitrary
// attributes. A span is owned by the goroutine that started it; StartChild
// and attribute updates on the *same* span from multiple goroutines are
// nevertheless safe (mutex-guarded), matching the evaluator's concurrency
// contract.
type Span struct {
	trace *Trace
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    map[string]any
	children []*Span
	// remote holds pre-rendered span trees grafted from other processes
	// (a shard peer's per-call span, shipped back in the RPC response).
	// They render as ordinary children, so /debug/traces/{id} shows one
	// stitched cross-process tree.
	remote  []SpanJSON
	dropped int
}

// StartChild starts a nested span. On a nil receiver it returns nil, and
// every Span method on nil is a no-op, so call sites need no checks.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{trace: s.trace, name: name, start: time.Now()}
	s.mu.Lock()
	if len(s.children) < maxChildren {
		s.children = append(s.children, c)
	} else {
		s.dropped++
	}
	s.mu.Unlock()
	return c
}

// End marks the span finished (idempotent) and returns it for chaining.
func (s *Span) End() *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
	return s
}

// Duration is end−start, or time-so-far when the span is still running
// (0 on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr attaches a key/value attribute, returning the span for chaining.
func (s *Span) SetAttr(key string, v any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = v
	s.mu.Unlock()
	return s
}

// AttachRemote grafts a pre-rendered span tree (one produced by another
// process and shipped over the wire) under this span. Remote trees render
// as ordinary children in snapshots; their start_us/dur_us are the remote
// process's own measurements, offset from the remote span's start rather
// than this trace's origin (clock domains differ across processes — the
// enclosing local span carries the wall-clock envelope). Subject to the
// same child cap as StartChild. Nil-safe.
func (s *Span) AttachRemote(sj SpanJSON) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if len(s.children)+len(s.remote) < maxChildren {
		s.remote = append(s.remote, sj)
	} else {
		s.dropped++
	}
	s.mu.Unlock()
	return s
}

// Ended reports whether End has been called. A nil span reports true —
// it never runs.
func (s *Span) Ended() bool {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.end.IsZero()
}

// Trace returns the trace this span belongs to (nil on nil).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.trace
}

// Children returns a snapshot of the attached child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// SpanJSON is the rendered form of one span. Times are microseconds:
// start_us is the offset from the trace root's start.
type SpanJSON struct {
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Dropped  int            `json:"dropped_children,omitempty"`
	Children []SpanJSON     `json:"children,omitempty"`
}

func (s *Span) snapshot(origin time.Time) SpanJSON {
	s.mu.Lock()
	attrs := make(map[string]any, len(s.attrs))
	for k, v := range s.attrs {
		attrs[k] = v
	}
	children := append([]*Span(nil), s.children...)
	remote := append([]SpanJSON(nil), s.remote...)
	dropped := s.dropped
	s.mu.Unlock()
	if len(attrs) == 0 {
		attrs = nil
	}
	out := SpanJSON{
		Name:    s.name,
		StartUS: s.start.Sub(origin).Microseconds(),
		DurUS:   s.Duration().Microseconds(),
		Attrs:   attrs,
		Dropped: dropped,
	}
	for _, c := range children {
		out.Children = append(out.Children, c.snapshot(origin))
	}
	out.Children = append(out.Children, remote...)
	return out
}

// Snapshot renders the whole span tree (nil-safe; zero SpanJSON when the
// trace is empty). It is the same rendering MarshalJSON produces, exposed
// as a value so the flight recorder can retain span trees without an
// encode/decode round trip.
func (t *Trace) Snapshot() SpanJSON {
	if t == nil || t.root == nil {
		return SpanJSON{}
	}
	return t.root.snapshot(t.root.start)
}

// CurrentPath walks the span tree from this span along the most recently
// started still-running child at each level and returns the names joined
// with ">" — "the phase a live query is in right now". "" on nil.
func (s *Span) CurrentPath() string {
	if s == nil {
		return ""
	}
	path := s.Name()
	cur := s
	for {
		children := cur.Children()
		var next *Span
		for i := len(children) - 1; i >= 0; i-- {
			if !children[i].Ended() {
				next = children[i]
				break
			}
		}
		if next == nil {
			return path
		}
		path += ">" + next.Name()
		cur = next
	}
}

type spanCtxKey struct{}

// ContextWithSpan installs sp as the current span; instrumented code down
// the call chain attaches children to it.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the current span, or nil when the context
// carries none — the nil span is a valid no-op receiver.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTrace("query")
	root := tr.Root()
	sel := root.StartChild("Select").SetAttr("layer", 3).End()
	search := root.StartChild("Search")
	spec := search.StartChild("Spec/L3").End()
	search.End()
	root.End()

	if sel.Duration() < 0 || spec.Duration() < 0 {
		t.Fatal("negative durations")
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "Select" || kids[1].Name() != "Search" {
		t.Fatalf("children = %v", kids)
	}
	if len(search.Children()) != 1 {
		t.Fatalf("nested children = %d", len(search.Children()))
	}
}

func TestSpanJSON(t *testing.T) {
	tr := NewTrace("/query")
	root := tr.Root()
	root.StartChild("Select").SetAttr("layer", 2).End()
	g := root.StartChild("Generate")
	g.StartChild("verify").End()
	g.End()
	root.End()

	js, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var got SpanJSON
	if err := json.Unmarshal(js, &got); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v\n%s", err, js)
	}
	if got.Name != "/query" || len(got.Children) != 2 {
		t.Fatalf("bad tree: %+v", got)
	}
	if got.Children[0].Name != "Select" || got.Children[0].Attrs["layer"] != float64(2) {
		t.Fatalf("bad Select span: %+v", got.Children[0])
	}
	if len(got.Children[1].Children) != 1 || got.Children[1].Children[0].Name != "verify" {
		t.Fatalf("bad Generate span: %+v", got.Children[1])
	}
	if got.DurUS < 0 || got.Children[1].StartUS < got.Children[0].StartUS {
		t.Fatalf("bad timing: %+v", got)
	}
}

func TestSpanChildCap(t *testing.T) {
	tr := NewTrace("t")
	root := tr.Root()
	var total time.Duration
	for i := 0; i < maxChildren+50; i++ {
		sp := root.StartChild(fmt.Sprintf("c%d", i))
		total += sp.End().Duration() // dropped children must still time
	}
	if n := len(root.Children()); n != maxChildren {
		t.Fatalf("attached children = %d, want %d", n, maxChildren)
	}
	js, _ := json.Marshal(tr)
	var got SpanJSON
	_ = json.Unmarshal(js, &got)
	if got.Dropped != 50 {
		t.Fatalf("dropped = %d, want 50", got.Dropped)
	}
	if total < 0 {
		t.Fatal("dropped spans did not accumulate duration")
	}
}

func TestNilSpanSafety(t *testing.T) {
	var sp *Span
	// The nil span is the "tracing disabled" path: all of this must no-op.
	c := sp.StartChild("x")
	if c != nil {
		t.Fatal("nil StartChild must return nil")
	}
	sp.SetAttr("k", 1).End()
	if sp.Duration() != 0 || sp.Name() != "" || sp.Trace() != nil {
		t.Fatal("nil span leaked state")
	}
	var tr *Trace
	if tr.Root() != nil {
		t.Fatal("nil trace root")
	}
	if js, err := json.Marshal(tr); err != nil || string(js) != "null" {
		t.Fatalf("nil trace JSON = %s, %v", js, err)
	}
}

func TestSpanContext(t *testing.T) {
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context must yield nil span")
	}
	tr := NewTrace("t")
	ctx := ContextWithSpan(context.Background(), tr.Root())
	if SpanFromContext(ctx) != tr.Root() {
		t.Fatal("span did not round-trip through context")
	}
}

// Package ontology models the ontology graph G_Ont = (V_Ont, E_Ont) of the
// paper (Sec. 2): a directed acyclic graph whose vertices are labels (types)
// and whose edges (ℓ', ℓ) state that ℓ' is a direct supertype of ℓ
// (SubClassOf / SubTypeOf).
//
// The ontology drives label generalization: a configuration maps each label
// to one of its direct supertypes, and stacking configurations layer by
// layer climbs the taxonomy.
package ontology

import (
	"errors"
	"fmt"
	"slices"

	"bigindex/internal/graph"
)

// ErrCycle is returned when adding a supertype edge would create a cycle;
// ontology graphs are DAGs by definition.
var ErrCycle = errors.New("ontology: supertype edge would create a cycle")

// Ontology is a DAG over labels. Labels are interned in the same dictionary
// as the data graph so data labels and ontology types are directly
// comparable.
type Ontology struct {
	dict *graph.Dict
	// supers[l] lists the direct supertypes of l, ascending.
	supers map[graph.Label][]graph.Label
	// subs[l] lists the direct subtypes of l, ascending.
	subs map[graph.Label][]graph.Label
	// depth memoizes Depth (distance to the deepest root above a label).
	depth map[graph.Label]int
}

// New returns an empty ontology over dict. Pass nil to create a fresh
// dictionary (useful in tests).
func New(dict *graph.Dict) *Ontology {
	if dict == nil {
		dict = graph.NewDict()
	}
	return &Ontology{
		dict:   dict,
		supers: make(map[graph.Label][]graph.Label),
		subs:   make(map[graph.Label][]graph.Label),
	}
}

// Dict returns the shared label dictionary.
func (o *Ontology) Dict() *graph.Dict { return o.dict }

// AddType interns name as a type and returns its label. Adding a type that
// already exists is a no-op.
func (o *Ontology) AddType(name string) graph.Label {
	l := o.dict.Intern(name)
	if _, ok := o.supers[l]; !ok {
		o.supers[l] = nil
	}
	if _, ok := o.subs[l]; !ok {
		o.subs[l] = nil
	}
	return l
}

// AddSupertype records that super is a direct supertype of sub
// ((super, sub) ∈ E_Ont). It rejects self-loops and edges that would close
// a cycle; both violate the DAG requirement of Sec. 2.
func (o *Ontology) AddSupertype(sub, super graph.Label) error {
	if sub == super {
		return fmt.Errorf("%w: self-loop on %q", ErrCycle, o.dict.Name(sub))
	}
	// A cycle appears iff sub is already a (transitive) supertype of super.
	if o.IsSupertype(sub, super) {
		return fmt.Errorf("%w: %q is already above %q", ErrCycle,
			o.dict.Name(sub), o.dict.Name(super))
	}
	o.ensure(sub)
	o.ensure(super)
	if !slices.Contains(o.supers[sub], super) {
		o.supers[sub] = insertSorted(o.supers[sub], super)
		o.subs[super] = insertSorted(o.subs[super], sub)
		o.depth = nil // invalidate memo
	}
	return nil
}

// AddSupertypeNames is AddSupertype with string arguments, interning both.
func (o *Ontology) AddSupertypeNames(sub, super string) error {
	return o.AddSupertype(o.AddType(sub), o.AddType(super))
}

func (o *Ontology) ensure(l graph.Label) {
	if _, ok := o.supers[l]; !ok {
		o.supers[l] = nil
	}
	if _, ok := o.subs[l]; !ok {
		o.subs[l] = nil
	}
}

func insertSorted(s []graph.Label, l graph.Label) []graph.Label {
	i, _ := slices.BinarySearch(s, l)
	return slices.Insert(s, i, l)
}

// Has reports whether l is a type known to the ontology.
func (o *Ontology) Has(l graph.Label) bool {
	_, ok := o.supers[l]
	return ok
}

// DirectSupertypes returns the direct supertypes of l (shared slice).
func (o *Ontology) DirectSupertypes(l graph.Label) []graph.Label {
	return o.supers[l]
}

// DirectSubtypes returns the direct subtypes of l (shared slice).
func (o *Ontology) DirectSubtypes(l graph.Label) []graph.Label {
	return o.subs[l]
}

// IsDirectSupertype reports whether (super, sub) ∈ E_Ont.
func (o *Ontology) IsDirectSupertype(super, sub graph.Label) bool {
	_, ok := slices.BinarySearch(o.supers[sub], super)
	return ok
}

// IsSupertype reports whether super is a (transitive, reflexive) supertype
// of sub: every label is a supertype of itself, matching the paper's
// candidate-filtering test "L(v) is a supertype of q" which must accept the
// keyword's own label at layer 0.
func (o *Ontology) IsSupertype(super, sub graph.Label) bool {
	if super == sub {
		return true
	}
	seen := map[graph.Label]bool{sub: true}
	stack := []graph.Label{sub}
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range o.supers[l] {
			if s == super {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Supertypes returns all transitive supertypes of l, excluding l itself,
// in ascending label order.
func (o *Ontology) Supertypes(l graph.Label) []graph.Label {
	seen := map[graph.Label]bool{}
	stack := []graph.Label{l}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range o.supers[cur] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	out := make([]graph.Label, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	slices.Sort(out)
	return out
}

// Roots returns the types with no supertype, ascending.
func (o *Ontology) Roots() []graph.Label {
	var rs []graph.Label
	for l, sup := range o.supers {
		if len(sup) == 0 {
			rs = append(rs, l)
		}
	}
	slices.Sort(rs)
	return rs
}

// Types returns every type known to the ontology, ascending.
func (o *Ontology) Types() []graph.Label {
	ts := make([]graph.Label, 0, len(o.supers))
	for l := range o.supers {
		ts = append(ts, l)
	}
	slices.Sort(ts)
	return ts
}

// NumTypes reports |V_Ont|.
func (o *Ontology) NumTypes() int { return len(o.supers) }

// NumEdges reports |E_Ont|.
func (o *Ontology) NumEdges() int {
	n := 0
	for _, s := range o.supers {
		n += len(s)
	}
	return n
}

// Depth returns the length of the longest supertype chain above l (0 for a
// root). The index hierarchy can be at most as deep as the ontology
// (Sec. 1's naive-method discussion), so Depth bounds layer counts.
func (o *Ontology) Depth(l graph.Label) int {
	if o.depth == nil {
		o.depth = make(map[graph.Label]int)
	}
	if d, ok := o.depth[l]; ok {
		return d
	}
	o.depth[l] = 0 // break accidental cycles defensively
	d := 0
	for _, s := range o.supers[l] {
		if sd := o.Depth(s) + 1; sd > d {
			d = sd
		}
	}
	o.depth[l] = d
	return d
}

// Height returns the height of the ontology DAG: the longest chain from any
// type to a root.
func (o *Ontology) Height() int {
	h := 0
	for l := range o.supers {
		if d := o.Depth(l); d > h {
			h = d
		}
	}
	return h
}

// Validate checks the DAG invariant by topological sorting and returns
// ErrCycle if a cycle exists. AddSupertype already prevents cycles; Validate
// guards ontologies assembled by deserialization or generators.
func (o *Ontology) Validate() error {
	indeg := make(map[graph.Label]int, len(o.supers))
	for l := range o.supers {
		indeg[l] = 0
	}
	for _, sups := range o.supers {
		for _, s := range sups {
			indeg[s]++
		}
	}
	var queue []graph.Label
	for l, d := range indeg {
		if d == 0 {
			queue = append(queue, l)
		}
	}
	visited := 0
	for len(queue) > 0 {
		l := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		visited++
		for _, s := range o.supers[l] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if visited != len(o.supers) {
		return ErrCycle
	}
	return nil
}

// RemoveSupertype deletes a direct supertype edge. It is the ontology-update
// case of Sec. 3.2's maintenance discussion: configurations that used the
// removed relationship must be retired by the index (see core.Index
// maintenance).
func (o *Ontology) RemoveSupertype(sub, super graph.Label) {
	o.supers[sub] = removeSorted(o.supers[sub], super)
	o.subs[super] = removeSorted(o.subs[super], sub)
	o.depth = nil
}

func removeSorted(s []graph.Label, l graph.Label) []graph.Label {
	if i, ok := slices.BinarySearch(s, l); ok {
		return slices.Delete(s, i, i+1)
	}
	return s
}

package ontology

import (
	"errors"
	"testing"

	"bigindex/internal/graph"
)

// paperOntology builds the Fig. 2 fragment: instance labels under types,
// types under broader types.
func paperOntology(t *testing.T) (*Ontology, map[string]graph.Label) {
	t.Helper()
	o := New(nil)
	rels := [][2]string{
		{"P. Graham", "Investor"},
		{"W. Buffett", "Investor"},
		{"Investor", "Person"},
		{"S. Russell", "Academics"},
		{"Academics", "Person"},
		{"UC Berkeley", "Univ."},
		{"Harvard Univ.", "Univ."},
		{"Univ.", "Organization"},
		{"California", "Western"},
		{"Massachusetts", "Eastern"},
		{"Western", "State"},
		{"Eastern", "State"},
	}
	for _, r := range rels {
		if err := o.AddSupertypeNames(r[0], r[1]); err != nil {
			t.Fatalf("AddSupertypeNames(%v): %v", r, err)
		}
	}
	ls := map[string]graph.Label{}
	for _, r := range rels {
		ls[r[0]] = o.Dict().Lookup(r[0])
		ls[r[1]] = o.Dict().Lookup(r[1])
	}
	return o, ls
}

func TestDirectSupertypes(t *testing.T) {
	o, ls := paperOntology(t)
	if !o.IsDirectSupertype(ls["Investor"], ls["P. Graham"]) {
		t.Error("Investor should be direct supertype of P. Graham")
	}
	if o.IsDirectSupertype(ls["Person"], ls["P. Graham"]) {
		t.Error("Person is not a *direct* supertype of P. Graham")
	}
	got := o.DirectSupertypes(ls["P. Graham"])
	if len(got) != 1 || got[0] != ls["Investor"] {
		t.Errorf("DirectSupertypes = %v", got)
	}
	subs := o.DirectSubtypes(ls["Investor"])
	if len(subs) != 2 {
		t.Errorf("DirectSubtypes(Investor) = %v, want 2", subs)
	}
}

func TestTransitiveSupertype(t *testing.T) {
	o, ls := paperOntology(t)
	if !o.IsSupertype(ls["Person"], ls["P. Graham"]) {
		t.Error("Person should be transitive supertype of P. Graham")
	}
	if !o.IsSupertype(ls["P. Graham"], ls["P. Graham"]) {
		t.Error("IsSupertype must be reflexive (keyword filtering at layer 0)")
	}
	if o.IsSupertype(ls["Univ."], ls["P. Graham"]) {
		t.Error("Univ. is unrelated to P. Graham")
	}
	sup := o.Supertypes(ls["P. Graham"])
	if len(sup) != 2 { // Investor, Person
		t.Errorf("Supertypes = %v, want 2", sup)
	}
}

func TestCycleRejection(t *testing.T) {
	o := New(nil)
	a := o.AddType("a")
	b := o.AddType("b")
	c := o.AddType("c")
	if err := o.AddSupertype(a, b); err != nil {
		t.Fatal(err)
	}
	if err := o.AddSupertype(b, c); err != nil {
		t.Fatal(err)
	}
	if err := o.AddSupertype(c, a); !errors.Is(err, ErrCycle) {
		t.Fatalf("closing a cycle should fail, got %v", err)
	}
	if err := o.AddSupertype(a, a); !errors.Is(err, ErrCycle) {
		t.Fatalf("self loop should fail, got %v", err)
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("valid DAG rejected: %v", err)
	}
}

func TestDepthAndHeight(t *testing.T) {
	o, ls := paperOntology(t)
	if d := o.Depth(ls["Person"]); d != 0 {
		t.Errorf("Depth(Person) = %d, want 0 (root)", d)
	}
	if d := o.Depth(ls["P. Graham"]); d != 2 {
		t.Errorf("Depth(P. Graham) = %d, want 2", d)
	}
	if h := o.Height(); h != 2 {
		t.Errorf("Height = %d, want 2", h)
	}
}

func TestRootsAndTypes(t *testing.T) {
	o, ls := paperOntology(t)
	roots := o.Roots()
	want := map[graph.Label]bool{ls["Person"]: true, ls["Organization"]: true, ls["State"]: true}
	if len(roots) != len(want) {
		t.Fatalf("Roots = %v, want %d roots", roots, len(want))
	}
	for _, r := range roots {
		if !want[r] {
			t.Errorf("unexpected root %v", r)
		}
	}
	if o.NumTypes() != 15 {
		t.Errorf("NumTypes = %d, want 15", o.NumTypes())
	}
	if o.NumEdges() != 12 {
		t.Errorf("NumEdges = %d, want 12", o.NumEdges())
	}
}

func TestRemoveSupertype(t *testing.T) {
	o, ls := paperOntology(t)
	o.RemoveSupertype(ls["P. Graham"], ls["Investor"])
	if o.IsDirectSupertype(ls["Investor"], ls["P. Graham"]) {
		t.Error("edge still present after removal")
	}
	if o.IsSupertype(ls["Person"], ls["P. Graham"]) {
		t.Error("transitive chain should be broken")
	}
	// Removal is idempotent.
	o.RemoveSupertype(ls["P. Graham"], ls["Investor"])
}

func TestAddTypeIdempotent(t *testing.T) {
	o := New(nil)
	a1 := o.AddType("x")
	a2 := o.AddType("x")
	if a1 != a2 {
		t.Fatal("AddType not idempotent")
	}
	if o.NumTypes() != 1 {
		t.Fatalf("NumTypes = %d", o.NumTypes())
	}
}

func TestDepthInvalidatedByNewEdges(t *testing.T) {
	o := New(nil)
	a := o.AddType("a")
	b := o.AddType("b")
	c := o.AddType("c")
	if o.Depth(a) != 0 {
		t.Fatal("fresh type should have depth 0")
	}
	if err := o.AddSupertype(a, b); err != nil {
		t.Fatal(err)
	}
	if o.Depth(a) != 1 {
		t.Fatal("depth memo not invalidated after AddSupertype")
	}
	if err := o.AddSupertype(b, c); err != nil {
		t.Fatal(err)
	}
	if o.Depth(a) != 2 {
		t.Fatal("depth memo stale after second edge")
	}
}

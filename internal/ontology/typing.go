package ontology

import (
	"slices"

	"bigindex/internal/graph"
)

// Coverage reports how well an ontology covers a data graph's labels: the
// fraction of vertices whose label is a type known to the ontology. The
// paper measures this for DBpedia against YAGO3's ontology (73.2% of
// entities matched; the rest are "simply matched to the topmost type").
type Coverage struct {
	// MatchedLabels / TotalLabels count distinct labels.
	MatchedLabels, TotalLabels int
	// MatchedVertices / TotalVertices count vertices.
	MatchedVertices, TotalVertices int
	// Untyped lists the labels absent from the ontology, ascending.
	Untyped []graph.Label
}

// VertexFraction is the matched-vertex ratio (the paper's 73.2% figure).
func (c Coverage) VertexFraction() float64 {
	if c.TotalVertices == 0 {
		return 0
	}
	return float64(c.MatchedVertices) / float64(c.TotalVertices)
}

// CoverageOf measures how much of g's label set the ontology covers.
func (o *Ontology) CoverageOf(g *graph.Graph) Coverage {
	c := Coverage{TotalVertices: g.NumVertices()}
	for _, l := range g.DistinctLabels() {
		c.TotalLabels++
		if o.Has(l) && len(o.DirectSupertypes(l)) > 0 {
			c.MatchedLabels++
			c.MatchedVertices += g.LabelCount(l)
		} else {
			c.Untyped = append(c.Untyped, l)
		}
	}
	slices.Sort(c.Untyped)
	return c
}

// AdoptUntyped attaches every label of g that the ontology does not cover
// directly under fallback (typically the topmost type), mirroring the
// paper's treatment of unmatched DBpedia/IMDB entities. It returns the
// number of labels adopted. Existing structure is never modified.
func (o *Ontology) AdoptUntyped(g *graph.Graph, fallback graph.Label) (int, error) {
	o.AddType(o.dict.Name(fallback)) // ensure the fallback exists
	n := 0
	for _, l := range o.CoverageOf(g).Untyped {
		if l == fallback {
			continue
		}
		if err := o.AddSupertype(l, fallback); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// SubtreeTerms returns every label at or below root in the taxonomy that
// actually occurs in g, ascending. This powers concept-level ("similarity")
// keyword search — the paper's future-work direction — without touching the
// framework: a caller expands a concept keyword like Univ. into its
// occurring subterms and evaluates each combination (see the quickstart
// example and `bigindex query -expand`).
func (o *Ontology) SubtreeTerms(root graph.Label, g *graph.Graph) []graph.Label {
	var out []graph.Label
	seen := map[graph.Label]bool{root: true}
	stack := []graph.Label{root}
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if g.LabelCount(l) > 0 {
			out = append(out, l)
		}
		for _, sub := range o.DirectSubtypes(l) {
			if !seen[sub] {
				seen[sub] = true
				stack = append(stack, sub)
			}
		}
	}
	slices.Sort(out)
	return out
}

package ontology

import (
	"math"
	"testing"

	"bigindex/internal/graph"
)

func TestCoverageAndAdoptUntyped(t *testing.T) {
	dict := graph.NewDict()
	o := New(dict)
	if err := o.AddSupertypeNames("player", "Person"); err != nil {
		t.Fatal(err)
	}
	if err := o.AddSupertypeNames("club", "Org"); err != nil {
		t.Fatal(err)
	}
	thing := o.AddType("Thing")

	b := graph.NewBuilder(dict)
	// 3 typed vertices, 2 untyped ones.
	b.AddVertex("player")
	b.AddVertex("player")
	b.AddVertex("club")
	b.AddVertex("mystery1")
	b.AddVertex("mystery2")
	g := b.Build()

	cov := o.CoverageOf(g)
	if cov.MatchedLabels != 2 || cov.TotalLabels != 4 {
		t.Fatalf("labels: %+v", cov)
	}
	if cov.MatchedVertices != 3 || cov.TotalVertices != 5 {
		t.Fatalf("vertices: %+v", cov)
	}
	if math.Abs(cov.VertexFraction()-0.6) > 1e-12 {
		t.Fatalf("fraction = %v", cov.VertexFraction())
	}
	if len(cov.Untyped) != 2 {
		t.Fatalf("untyped = %v", cov.Untyped)
	}

	// Adopt the rest under Thing — the paper's treatment of unmatched
	// DBpedia entities ("matched to the topmost type").
	n, err := o.AdoptUntyped(g, thing)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("adopted %d, want 2", n)
	}
	cov2 := o.CoverageOf(g)
	if cov2.VertexFraction() != 1 {
		t.Fatalf("full coverage expected, got %v", cov2.VertexFraction())
	}
	// Idempotent.
	n, err = o.AdoptUntyped(g, thing)
	if err != nil || n != 0 {
		t.Fatalf("second adopt: %d %v", n, err)
	}
}

func TestSubtreeTerms(t *testing.T) {
	dict := graph.NewDict()
	o := New(dict)
	for _, r := range [][2]string{
		{"harvard", "Univ"}, {"cornell", "Univ"},
		{"Univ", "Org"}, {"acme", "Company"}, {"Company", "Org"},
	} {
		if err := o.AddSupertypeNames(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	b := graph.NewBuilder(dict)
	b.AddVertex("harvard")
	b.AddVertex("acme")
	b.AddVertex("acme")
	g := b.Build()

	// Under Org: harvard and acme occur; cornell, Univ, Company, Org do not.
	got := o.SubtreeTerms(dict.Lookup("Org"), g)
	if len(got) != 2 {
		t.Fatalf("SubtreeTerms(Org) = %v", got)
	}
	// Under Univ: only harvard.
	got = o.SubtreeTerms(dict.Lookup("Univ"), g)
	if len(got) != 1 || got[0] != dict.Lookup("harvard") {
		t.Fatalf("SubtreeTerms(Univ) = %v", got)
	}
	// A term itself (occurring) returns itself.
	got = o.SubtreeTerms(dict.Lookup("acme"), g)
	if len(got) != 1 {
		t.Fatalf("SubtreeTerms(acme) = %v", got)
	}
}

// Package partition divides a graph into connected blocks of bounded size.
// Blinks' bi-level index (Sec. 5.3 of the paper; He et al., SIGMOD'07)
// partitions the data graph into blocks, keeps intra-block distance
// information, and stitches blocks together through *portal* vertices. The
// paper used METIS; this package is the from-scratch substitute: a
// BFS-grown partitioner that produces balanced blocks with a modest edge
// cut, which is all the bi-level index needs.
package partition

import (
	"math/rand"
	"sort"

	"bigindex/internal/graph"
)

// Partitioning assigns every vertex to exactly one block.
type Partitioning struct {
	g *graph.Graph
	// BlockOf[v] is the block id of v.
	BlockOf []int
	// Blocks[b] lists the member vertices of block b, ascending.
	Blocks [][]graph.V
	// InPortals[b] lists vertices of block b with an in-edge from outside
	// the block: the entry points of backward expansion into b.
	InPortals [][]graph.V
	// OutPortals[b] lists vertices of block b with an out-edge leaving the
	// block.
	OutPortals [][]graph.V
}

// NumBlocks reports the number of blocks.
func (p *Partitioning) NumBlocks() int { return len(p.Blocks) }

// Graph returns the partitioned graph.
func (p *Partitioning) Graph() *graph.Graph { return p.g }

// BlockSizes reports the smallest and largest block cardinality — the
// skew a shard scheduler has to live with. (0, 0) for an empty graph.
func (p *Partitioning) BlockSizes() (minSize, maxSize int) {
	for i, b := range p.Blocks {
		if i == 0 || len(b) < minSize {
			minSize = len(b)
		}
		if len(b) > maxSize {
			maxSize = len(b)
		}
	}
	return minSize, maxSize
}

// EdgeCut reports the number of edges crossing block boundaries.
func (p *Partitioning) EdgeCut() int {
	cut := 0
	for _, e := range p.g.Edges() {
		if p.BlockOf[e.From] != p.BlockOf[e.To] {
			cut++
		}
	}
	return cut
}

// BFSGrow partitions g into connected blocks of at most targetSize vertices
// by repeatedly seeding an unassigned vertex and growing a breadth-first
// region over the undirected skeleton until the block is full. Seeds are
// chosen in ascending vertex order, so the result is deterministic.
func BFSGrow(g *graph.Graph, targetSize int) *Partitioning {
	return BFSGrowSeed(g, targetSize, 0)
}

// BFSGrowSeed is BFSGrow with a controlled seed order: seed 0 keeps the
// ascending-vertex order, any other value visits seed candidates in a
// pseudo-random permutation derived from it. Either way the result is a
// pure function of (g, targetSize, seed) — block IDs are stable across
// runs and processes, which shard planning relies on (a coordinator and
// its shard servers must agree on vertex→block ownership by exchanging
// only the seed, never the partition itself).
func BFSGrowSeed(g *graph.Graph, targetSize int, seed int64) *Partitioning {
	if targetSize < 1 {
		targetSize = 1
	}
	n := g.NumVertices()
	order := make([]int, n)
	if seed == 0 {
		for i := range order {
			order[i] = i
		}
	} else {
		order = rand.New(rand.NewSource(seed)).Perm(n)
	}
	blockOf := make([]int, n)
	for i := range blockOf {
		blockOf[i] = -1
	}

	var blocks [][]graph.V
	for _, seed := range order {
		if blockOf[seed] != -1 {
			continue
		}
		b := len(blocks)
		var members []graph.V
		queue := []graph.V{graph.V(seed)}
		blockOf[seed] = b
		for len(queue) > 0 && len(members) < targetSize {
			v := queue[0]
			queue = queue[1:]
			members = append(members, v)
			for _, w := range neighborsBoth(g, v) {
				if blockOf[w] == -1 && len(members)+len(queue) < targetSize {
					blockOf[w] = b
					queue = append(queue, w)
				}
			}
		}
		// Vertices still queued were claimed but not emitted; keep them in
		// the block (the claim already bounded the size).
		members = append(members, queue...)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		blocks = append(blocks, members)
	}

	p := &Partitioning{
		g:          g,
		BlockOf:    blockOf,
		Blocks:     blocks,
		InPortals:  make([][]graph.V, len(blocks)),
		OutPortals: make([][]graph.V, len(blocks)),
	}
	for v := graph.V(0); int(v) < n; v++ {
		b := blockOf[v]
		for _, w := range g.In(v) {
			if blockOf[w] != b {
				p.InPortals[b] = append(p.InPortals[b], v)
				break
			}
		}
		for _, w := range g.Out(v) {
			if blockOf[w] != b {
				p.OutPortals[b] = append(p.OutPortals[b], v)
				break
			}
		}
	}
	return p
}

func neighborsBoth(g *graph.Graph, v graph.V) []graph.V {
	out := g.Out(v)
	in := g.In(v)
	both := make([]graph.V, 0, len(out)+len(in))
	both = append(both, out...)
	both = append(both, in...)
	return both
}

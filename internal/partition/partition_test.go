package partition

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"bigindex/internal/graph"
)

func randomGraph(rng *rand.Rand, n, e int) *graph.Graph {
	b := graph.NewBuilder(nil)
	l := b.Dict().Intern("x")
	for i := 0; i < n; i++ {
		b.AddVertexLabel(l)
	}
	for i := 0; i < e; i++ {
		b.AddEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	return b.Build()
}

func TestBFSGrowCoversAllVertices(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		g := randomGraph(rng, n, rng.Intn(3*n))
		target := 1 + rng.Intn(40)
		p := BFSGrow(g, target)

		seen := make(map[graph.V]bool)
		for b, members := range p.Blocks {
			if len(members) == 0 {
				return false // empty block
			}
			if len(members) > target {
				return false // oversized block
			}
			for _, v := range members {
				if seen[v] {
					return false // vertex in two blocks
				}
				seen[v] = true
				if p.BlockOf[v] != b {
					return false // BlockOf inconsistent
				}
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPortals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 100, 250)
	p := BFSGrow(g, 10)

	// Every cross-block edge's head must be an in-portal of its block and
	// its tail an out-portal of its block.
	inP := make([]map[graph.V]bool, p.NumBlocks())
	outP := make([]map[graph.V]bool, p.NumBlocks())
	for b := range inP {
		inP[b] = map[graph.V]bool{}
		outP[b] = map[graph.V]bool{}
		for _, v := range p.InPortals[b] {
			inP[b][v] = true
		}
		for _, v := range p.OutPortals[b] {
			outP[b][v] = true
		}
	}
	cut := 0
	for _, e := range g.Edges() {
		bf, bt := p.BlockOf[e.From], p.BlockOf[e.To]
		if bf == bt {
			continue
		}
		cut++
		if !inP[bt][e.To] {
			t.Fatalf("edge %v: head not an in-portal", e)
		}
		if !outP[bf][e.From] {
			t.Fatalf("edge %v: tail not an out-portal", e)
		}
	}
	if cut != p.EdgeCut() {
		t.Fatalf("EdgeCut = %d, counted %d", p.EdgeCut(), cut)
	}
}

// checkPortalInvariants asserts the full portal contract on p: every
// cross-block edge's head is an in-portal of its block and its tail an
// out-portal, portal lists only contain genuine portals, every vertex is
// in exactly one block, and EdgeCut agrees with a direct count.
func checkPortalInvariants(t *testing.T, g *graph.Graph, p *Partitioning) {
	t.Helper()
	seen := make(map[graph.V]bool)
	for b, members := range p.Blocks {
		for _, v := range members {
			if seen[v] {
				t.Fatalf("vertex %d assigned to two blocks", v)
			}
			seen[v] = true
			if p.BlockOf[v] != b {
				t.Fatalf("BlockOf[%d] = %d, member of block %d", v, p.BlockOf[v], b)
			}
		}
	}
	if len(seen) != g.NumVertices() {
		t.Fatalf("partitioning covers %d of %d vertices", len(seen), g.NumVertices())
	}
	inP := make([]map[graph.V]bool, p.NumBlocks())
	outP := make([]map[graph.V]bool, p.NumBlocks())
	for b := range inP {
		inP[b] = map[graph.V]bool{}
		outP[b] = map[graph.V]bool{}
		for _, v := range p.InPortals[b] {
			inP[b][v] = true
		}
		for _, v := range p.OutPortals[b] {
			outP[b][v] = true
		}
	}
	cut := 0
	for _, e := range g.Edges() {
		bf, bt := p.BlockOf[e.From], p.BlockOf[e.To]
		if bf == bt {
			continue
		}
		cut++
		if !inP[bt][e.To] {
			t.Fatalf("edge %v: head not an in-portal of block %d", e, bt)
		}
		if !outP[bf][e.From] {
			t.Fatalf("edge %v: tail not an out-portal of block %d", e, bf)
		}
	}
	if cut != p.EdgeCut() {
		t.Fatalf("EdgeCut = %d, counted %d", p.EdgeCut(), cut)
	}
	// No false portals: a listed portal must actually have a crossing edge.
	for b := range p.Blocks {
		for _, v := range p.InPortals[b] {
			crossing := false
			for _, w := range g.In(v) {
				if p.BlockOf[w] != b {
					crossing = true
					break
				}
			}
			if !crossing {
				t.Fatalf("in-portal %d of block %d has no cross-block in-edge", v, b)
			}
		}
		for _, v := range p.OutPortals[b] {
			crossing := false
			for _, w := range g.Out(v) {
				if p.BlockOf[w] != b {
					crossing = true
					break
				}
			}
			if !crossing {
				t.Fatalf("out-portal %d of block %d has no cross-block out-edge", v, b)
			}
		}
	}
}

// TestBFSGrowSeedDeterministic: the partitioning is a pure function of
// (g, targetSize, seed) — a coordinator and its shard servers can agree
// on vertex→block ownership by exchanging only the seed.
func TestBFSGrowSeedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(300)
		g := randomGraph(rng, n, rng.Intn(3*n))
		target := 1 + rng.Intn(40)
		for _, seed := range []int64{0, 1, 42, -9} {
			a := BFSGrowSeed(g, target, seed)
			b := BFSGrowSeed(g, target, seed)
			if !reflect.DeepEqual(a.BlockOf, b.BlockOf) ||
				!reflect.DeepEqual(a.Blocks, b.Blocks) ||
				!reflect.DeepEqual(a.InPortals, b.InPortals) ||
				!reflect.DeepEqual(a.OutPortals, b.OutPortals) {
				t.Fatalf("seed %d: two runs disagree on n=%d target=%d", seed, n, target)
			}
			checkPortalInvariants(t, g, a)
		}
	}
	// BFSGrow is the seed-0 case by definition.
	g := randomGraph(rng, 120, 300)
	if !reflect.DeepEqual(BFSGrow(g, 16).Blocks, BFSGrowSeed(g, 16, 0).Blocks) {
		t.Fatal("BFSGrow diverged from BFSGrowSeed(·, ·, 0)")
	}
}

// TestPortalInvariantsUnderPatch: re-partitioning after arbitrary
// graph.Patch mutations (new vertices, added and removed edges) keeps
// every portal invariant — the property the shard planner relies on when
// a mutation swaps a patched graph under the plan cache.
func TestPortalInvariantsUnderPatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 80, 200)
	label := g.Dict().Intern("x")
	for step := 0; step < 15; step++ {
		var addVerts []graph.Label
		for i := rng.Intn(5); i > 0; i-- {
			addVerts = append(addVerts, label)
		}
		n := g.NumVertices() + len(addVerts)
		var addEdges, removeEdges []graph.Edge
		for i := rng.Intn(12); i > 0; i-- {
			addEdges = append(addEdges, graph.Edge{From: graph.V(rng.Intn(n)), To: graph.V(rng.Intn(n))})
		}
		if es := g.Edges(); len(es) > 0 {
			for i := rng.Intn(8); i > 0; i-- {
				removeEdges = append(removeEdges, es[rng.Intn(len(es))])
			}
		}
		patched, err := graph.Patch(g, addVerts, addEdges, removeEdges)
		if err != nil {
			t.Fatalf("step %d: patch: %v", step, err)
		}
		g = patched
		for _, seed := range []int64{0, int64(step + 1)} {
			checkPortalInvariants(t, g, BFSGrowSeed(g, 1+rng.Intn(25), seed))
		}
	}
}

func TestSingletonBlocks(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(6)), 20, 40)
	p := BFSGrow(g, 1)
	if p.NumBlocks() != 20 {
		t.Fatalf("target 1 should give 20 blocks, got %d", p.NumBlocks())
	}
	// Degenerate target is clamped.
	p2 := BFSGrow(g, 0)
	if p2.NumBlocks() != 20 {
		t.Fatalf("target 0 should clamp to 1, got %d blocks", p2.NumBlocks())
	}
}

func TestWholeGraphBlock(t *testing.T) {
	// A connected graph with a huge target collapses to one block.
	b := graph.NewBuilder(nil)
	l := b.Dict().Intern("x")
	for i := 0; i < 10; i++ {
		b.AddVertexLabel(l)
	}
	for i := 0; i < 9; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1))
	}
	g := b.Build()
	p := BFSGrow(g, 1000)
	if p.NumBlocks() != 1 {
		t.Fatalf("connected graph should be 1 block, got %d", p.NumBlocks())
	}
	if p.EdgeCut() != 0 {
		t.Fatalf("no cut expected, got %d", p.EdgeCut())
	}
}

package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bigindex/internal/graph"
)

func randomGraph(rng *rand.Rand, n, e int) *graph.Graph {
	b := graph.NewBuilder(nil)
	l := b.Dict().Intern("x")
	for i := 0; i < n; i++ {
		b.AddVertexLabel(l)
	}
	for i := 0; i < e; i++ {
		b.AddEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	return b.Build()
}

func TestBFSGrowCoversAllVertices(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		g := randomGraph(rng, n, rng.Intn(3*n))
		target := 1 + rng.Intn(40)
		p := BFSGrow(g, target)

		seen := make(map[graph.V]bool)
		for b, members := range p.Blocks {
			if len(members) == 0 {
				return false // empty block
			}
			if len(members) > target {
				return false // oversized block
			}
			for _, v := range members {
				if seen[v] {
					return false // vertex in two blocks
				}
				seen[v] = true
				if p.BlockOf[v] != b {
					return false // BlockOf inconsistent
				}
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPortals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 100, 250)
	p := BFSGrow(g, 10)

	// Every cross-block edge's head must be an in-portal of its block and
	// its tail an out-portal of its block.
	inP := make([]map[graph.V]bool, p.NumBlocks())
	outP := make([]map[graph.V]bool, p.NumBlocks())
	for b := range inP {
		inP[b] = map[graph.V]bool{}
		outP[b] = map[graph.V]bool{}
		for _, v := range p.InPortals[b] {
			inP[b][v] = true
		}
		for _, v := range p.OutPortals[b] {
			outP[b][v] = true
		}
	}
	cut := 0
	for _, e := range g.Edges() {
		bf, bt := p.BlockOf[e.From], p.BlockOf[e.To]
		if bf == bt {
			continue
		}
		cut++
		if !inP[bt][e.To] {
			t.Fatalf("edge %v: head not an in-portal", e)
		}
		if !outP[bf][e.From] {
			t.Fatalf("edge %v: tail not an out-portal", e)
		}
	}
	if cut != p.EdgeCut() {
		t.Fatalf("EdgeCut = %d, counted %d", p.EdgeCut(), cut)
	}
}

func TestSingletonBlocks(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(6)), 20, 40)
	p := BFSGrow(g, 1)
	if p.NumBlocks() != 20 {
		t.Fatalf("target 1 should give 20 blocks, got %d", p.NumBlocks())
	}
	// Degenerate target is clamped.
	p2 := BFSGrow(g, 0)
	if p2.NumBlocks() != 20 {
		t.Fatalf("target 0 should clamp to 1, got %d blocks", p2.NumBlocks())
	}
}

func TestWholeGraphBlock(t *testing.T) {
	// A connected graph with a huge target collapses to one block.
	b := graph.NewBuilder(nil)
	l := b.Dict().Intern("x")
	for i := 0; i < 10; i++ {
		b.AddVertexLabel(l)
	}
	for i := 0; i < 9; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1))
	}
	g := b.Build()
	p := BFSGrow(g, 1000)
	if p.NumBlocks() != 1 {
		t.Fatalf("connected graph should be 1 block, got %d", p.NumBlocks())
	}
	if p.EdgeCut() != 0 {
		t.Fatalf("no cut expected, got %d", p.EdgeCut())
	}
}

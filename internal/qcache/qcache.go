// Package qcache is the query result cache of the serving path: a
// sharded LRU with TTL and byte-budget eviction, keyed on a canonical
// digest of the full query identity — algorithm, canonicalized keyword
// labels, k, forced layer, and the index *epoch* — with singleflight
// in-flight deduplication so N concurrent identical queries run exactly
// one evaluation and share the result.
//
// Keyword-search workloads are highly skewed (the motivation behind
// BLINKS' bi-level index materialization and EMBANKS' disk caching):
// a small set of popular queries dominates traffic, so a result cache
// converts the common case from a multi-phase hierarchical evaluation
// into a map lookup.
//
// Invalidation is implicit and sound: the cache key embeds the index
// epoch (core.Index.Epoch, bumped by every Refresh), so an entry
// computed against a previous version of the data graph can never be
// returned for a post-update query — its key no longer matches anything
// a new request can ask for. Stale-epoch entries are additionally
// pruned eagerly the first time the cache observes a new epoch, so dead
// entries do not sit on the byte budget until LRU pressure finds them.
//
// Empty answer sets ("negative" entries) are cached like any other
// result — a query with no matches costs a full evaluation to discover,
// and skewed workloads repeat misses just like hits.
package qcache

import (
	"container/list"
	"context"
	"errors"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bigindex/internal/graph"
	"bigindex/internal/obs"
)

// Options configures a Cache.
type Options struct {
	// Shards is the number of independent lock domains, rounded up to a
	// power of two (0 = 16). More shards reduce mutex contention under
	// concurrent traffic; the key's hash picks the shard.
	Shards int
	// MaxEntries caps the number of cached results across all shards
	// (0 = 4096). Per shard, the least recently used entry is evicted
	// when the shard's share of the cap is exceeded.
	MaxEntries int
	// TTL expires entries by age (0 = no TTL). Expired entries are
	// dropped lazily on lookup and count as evictions, not hits.
	TTL time.Duration
	// MaxBytes bounds the cache's estimated memory footprint across all
	// shards (0 = unbounded). Entries carry caller-estimated sizes; a
	// shard evicts from its LRU tail until its share of the budget fits.
	MaxBytes int64
	// Obs, when set, registers the cache's counters and gauges
	// (bigindex_qcache_*). Nil records nothing.
	Obs *obs.Registry
	// Clock overrides time.Now for TTL tests.
	Clock func() time.Time
}

// Outcome classifies how Do obtained a query's result.
type Outcome string

const (
	// Hit: the result came from the cache; no evaluation ran.
	Hit Outcome = "hit"
	// Miss: this caller ran the evaluation (singleflight leader).
	Miss Outcome = "miss"
	// Shared: another in-flight identical query ran the evaluation and
	// this caller received its result (singleflight follower).
	Shared Outcome = "shared"
	// Bypass: the cache was skipped entirely (&nocache=1 or disabled).
	Bypass Outcome = "bypass"
)

// Result is what a compute function hands back to Do: the value, its
// estimated footprint for the byte budget, and whether it may be stored.
// Degraded (partial) results set Store=false — they are shared with
// concurrent identical queries but never cached, because a later query
// with a healthy deadline must recompute the full answer.
type Result struct {
	V        any
	Bytes    int64
	Store    bool
	Negative bool // empty answer set; counted separately on hits
}

type entry struct {
	key      string
	val      any
	bytes    int64
	epoch    uint64
	negative bool
	expires  time.Time // zero = no TTL
}

type shard struct {
	mu    sync.Mutex
	byKey map[string]*list.Element // values are *entry elements
	lru   *list.List               // front = most recently used
	bytes int64
	maxN  int
	maxB  int64
}

// Cache is a sharded, epoch-aware query result cache. All methods are
// safe for concurrent use; a nil *Cache is inert (Get always misses,
// Do always computes with Outcome Bypass).
type Cache struct {
	shards    []*shard
	mask      uint64
	ttl       time.Duration
	now       func() time.Time
	flight    group
	lastEpoch atomic.Uint64

	entries atomic.Int64
	bytes   atomic.Int64

	hits      *obs.Counter
	misses    *obs.Counter
	shared    *obs.Counter
	negHits   *obs.Counter
	evictions *obs.CounterVec // reason: lru | ttl | bytes | epoch
	entriesG  *obs.Gauge
	bytesG    *obs.Gauge
	ratioG    *obs.Gauge
}

// New creates a cache. The zero Options value yields 16 shards, 4096
// entries, no TTL, and no byte budget.
func New(opt Options) *Cache {
	nShards := 1
	want := opt.Shards
	if want <= 0 {
		want = 16
	}
	for nShards < want {
		nShards <<= 1
	}
	maxN := opt.MaxEntries
	if maxN <= 0 {
		maxN = 4096
	}
	perN := (maxN + nShards - 1) / nShards
	var perB int64
	if opt.MaxBytes > 0 {
		perB = (opt.MaxBytes + int64(nShards) - 1) / int64(nShards)
	}
	now := opt.Clock
	if now == nil {
		now = time.Now
	}
	c := &Cache{
		shards: make([]*shard, nShards),
		mask:   uint64(nShards - 1),
		ttl:    opt.TTL,
		now:    now,
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			byKey: make(map[string]*list.Element),
			lru:   list.New(),
			maxN:  perN,
			maxB:  perB,
		}
	}
	if r := opt.Obs; r != nil {
		c.hits = r.Counter("bigindex_qcache_hits_total",
			"Query cache hits (evaluation skipped).")
		c.misses = r.Counter("bigindex_qcache_misses_total",
			"Query cache misses (the request ran the evaluation).")
		c.shared = r.Counter("bigindex_qcache_shared_total",
			"Requests that shared a concurrent identical query's evaluation (singleflight).")
		c.negHits = r.Counter("bigindex_qcache_negative_hits_total",
			"Cache hits on cached empty answer sets.")
		c.evictions = r.CounterVec("bigindex_qcache_evictions_total",
			"Entries evicted from the query cache, by reason.", "reason")
		c.entriesG = r.Gauge("bigindex_qcache_entries", "Entries in the query cache.")
		c.bytesG = r.Gauge("bigindex_qcache_bytes", "Estimated query cache footprint in bytes.")
		c.ratioG = r.Gauge("bigindex_qcache_hit_ratio",
			"Fraction of cache lookups answered from the cache (hits / lookups).")
	}
	return c
}

// CanonicalLabels sorts and deduplicates a resolved keyword set in
// place, returning the canonical slice. Semantically identical queries
// ("b a a" and "a b") then share one cache key, one singleflight slot,
// and one evaluation — keyword search is set semantics (Def. 2.3), so
// order and multiplicity never change the answer.
func CanonicalLabels(q []graph.Label) []graph.Label {
	if len(q) < 2 {
		return q
	}
	// Insertion sort: query keyword sets are tiny (the paper's Q1-Q8 use
	// 2-6 keywords).
	for i := 1; i < len(q); i++ {
		for j := i; j > 0 && q[j] < q[j-1]; j-- {
			q[j], q[j-1] = q[j-1], q[j]
		}
	}
	out := q[:1]
	for _, l := range q[1:] {
		if l != out[len(out)-1] {
			out = append(out, l)
		}
	}
	return out
}

// Key builds the canonical cache digest for a query. q must already be
// canonical (CanonicalLabels); the epoch binds the entry to one version
// of the data graph, making post-Refresh invalidation implicit.
func Key(algo string, direct bool, q []graph.Label, k, layer int, epoch uint64) string {
	b := make([]byte, 0, len(algo)+24+12*len(q))
	b = strconv.AppendUint(b, epoch, 10)
	b = append(b, '|')
	b = append(b, algo...)
	if direct {
		b = append(b, "|d"...)
	}
	b = append(b, '|')
	for i, l := range q {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(l), 10)
	}
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(k), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(layer), 10)
	return string(b)
}

func (c *Cache) shardFor(key string) *shard {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return c.shards[h.Sum64()&c.mask]
}

// lookup finds an unexpired entry and bumps its recency. It records the
// TTL eviction counter but no hit/miss counters — callers attribute the
// lookup to an Outcome themselves.
func (c *Cache) lookup(key string) (any, bool, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.byKey[key]
	if !ok {
		s.mu.Unlock()
		return nil, false, false
	}
	e := el.Value.(*entry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		s.removeLocked(el, &c.entries, &c.bytes)
		s.mu.Unlock()
		c.evictions.With("ttl").Inc()
		c.syncGauges()
		return nil, false, false
	}
	s.lru.MoveToFront(el)
	val, neg := e.val, e.negative
	s.mu.Unlock()
	return val, neg, true
}

// Get returns the cached value for key, if present and unexpired.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	v, neg, ok := c.lookup(key)
	if !ok {
		c.misses.Inc()
		c.updateRatio()
		return nil, false
	}
	c.hits.Inc()
	if neg {
		c.negHits.Inc()
	}
	c.updateRatio()
	return v, true
}

// Put stores a storable result under key for the given epoch. An entry
// larger than a whole shard's byte budget is not stored.
func (c *Cache) Put(key string, epoch uint64, res Result) {
	if c == nil || !res.Store {
		return
	}
	s := c.shardFor(key)
	if s.maxB > 0 && res.Bytes > s.maxB {
		return
	}
	var exp time.Time
	if c.ttl > 0 {
		exp = c.now().Add(c.ttl)
	}
	e := &entry{key: key, val: res.V, bytes: res.Bytes, epoch: epoch,
		negative: res.Negative, expires: exp}
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		// Replace in place (e.g. a nocache refresh racing a miss fill).
		old := el.Value.(*entry)
		s.bytes += res.Bytes - old.bytes
		c.bytes.Add(res.Bytes - old.bytes)
		el.Value = e
		s.lru.MoveToFront(el)
	} else {
		s.byKey[key] = s.lru.PushFront(e)
		s.bytes += res.Bytes
		c.entries.Add(1)
		c.bytes.Add(res.Bytes)
	}
	var lruEv, bytesEv int64
	for s.lru.Len() > s.maxN {
		s.removeLocked(s.lru.Back(), &c.entries, &c.bytes)
		lruEv++
	}
	for s.maxB > 0 && s.bytes > s.maxB && s.lru.Len() > 0 {
		s.removeLocked(s.lru.Back(), &c.entries, &c.bytes)
		bytesEv++
	}
	s.mu.Unlock()
	if lruEv > 0 {
		c.evictions.With("lru").Add(lruEv)
	}
	if bytesEv > 0 {
		c.evictions.With("bytes").Add(bytesEv)
	}
	c.syncGauges()
}

// removeLocked unlinks el from the shard. Caller holds s.mu.
func (s *shard) removeLocked(el *list.Element, entries, bytes *atomic.Int64) {
	e := el.Value.(*entry)
	delete(s.byKey, e.key)
	s.lru.Remove(el)
	s.bytes -= e.bytes
	entries.Add(-1)
	bytes.Add(-e.bytes)
}

// pruneEpoch drops every entry not computed at the given epoch the
// first time the cache observes it. Key-embedded epochs already make
// stale entries unreachable; pruning just stops them from occupying the
// entry and byte budgets until LRU pressure would find them.
func (c *Cache) pruneEpoch(epoch uint64) {
	last := c.lastEpoch.Load()
	if last == epoch || !c.lastEpoch.CompareAndSwap(last, epoch) {
		return
	}
	var pruned int64
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; {
			next := el.Next()
			if el.Value.(*entry).epoch != epoch {
				s.removeLocked(el, &c.entries, &c.bytes)
				pruned++
			}
			el = next
		}
		s.mu.Unlock()
	}
	if pruned > 0 {
		c.evictions.With("epoch").Add(pruned)
		c.syncGauges()
	}
}

// errFilled signals that the singleflight leader found the entry
// already cached (a previous leader filled it between this caller's
// miss and its registration); the carried value is a hit.
var errFilled = errors.New("qcache: filled while registering")

// Do answers one query through the cache: a hit returns immediately; on
// a miss, concurrent callers with the same key collapse onto one
// compute invocation (the singleflight leader) and share its outcome.
// The leader's Result is stored only when Store is set and compute
// returned no error. ctx bounds only a follower's wait — the leader's
// compute runs under whatever context the caller closed over.
//
// The returned Outcome says how the value was obtained. On error the
// value is nil: followers receive the leader's error verbatim, and a
// follower whose own ctx expires first gets that ctx's error.
func (c *Cache) Do(ctx context.Context, epoch uint64, key string, compute func() (Result, error)) (any, Outcome, error) {
	if c == nil {
		res, err := compute()
		return res.V, Bypass, err
	}
	c.pruneEpoch(epoch)
	if v, neg, ok := c.lookup(key); ok {
		c.hits.Inc()
		if neg {
			c.negHits.Inc()
		}
		c.updateRatio()
		return v, Hit, nil
	}
	v, leader, err := c.flight.do(ctx, key, func() (Result, error) {
		// Double-check under the flight slot: a previous leader may have
		// filled the entry between our miss and our registration.
		if v, _, ok := c.lookup(key); ok {
			return Result{V: v}, errFilled
		}
		res, err := compute()
		if err == nil {
			c.Put(key, epoch, res)
		}
		return res, err
	})
	out := Shared
	if leader {
		out = Miss
	}
	if errors.Is(err, errFilled) {
		err = nil
		out = Hit
	}
	switch out {
	case Hit:
		c.hits.Inc()
	case Miss:
		c.misses.Inc()
	case Shared:
		if err == nil {
			c.shared.Inc()
		} else {
			// A follower that came away without a result (its own ctx
			// expired, or the leader failed) did not share an evaluation.
			c.misses.Inc()
		}
	}
	c.updateRatio()
	return v, out, err
}

// Stats is a point-in-time cache summary (tests and introspection).
type Stats struct {
	Entries int64
	Bytes   int64
	Hits    int64
	Misses  int64
	Shared  int64
}

// Stats reports current occupancy and lifetime counters. Counter fields
// stay zero when the cache was built without a registry.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Entries: c.entries.Load(),
		Bytes:   c.bytes.Load(),
		Hits:    c.hits.Value(),
		Misses:  c.misses.Value(),
		Shared:  c.shared.Value(),
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return int(c.entries.Load())
}

// Waiters reports how many followers are parked on key's in-flight
// evaluation (tests synchronize singleflight scenarios on it).
func (c *Cache) Waiters(key string) int {
	if c == nil {
		return 0
	}
	return c.flight.waiters(key)
}

func (c *Cache) syncGauges() {
	c.entriesG.Set(float64(c.entries.Load()))
	c.bytesG.Set(float64(c.bytes.Load()))
}

func (c *Cache) updateRatio() {
	if c.ratioG == nil {
		return
	}
	h := float64(c.hits.Value())
	lookups := h + float64(c.misses.Value()) + float64(c.shared.Value())
	if lookups > 0 {
		c.ratioG.Set(h / lookups)
	}
}

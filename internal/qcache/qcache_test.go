package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bigindex/internal/graph"
	"bigindex/internal/obs"
)

func stored(v any) func() (Result, error) {
	return func() (Result, error) {
		return Result{V: v, Bytes: 16, Store: true}, nil
	}
}

func TestCanonicalLabels(t *testing.T) {
	cases := []struct{ in, want []graph.Label }{
		{nil, nil},
		{[]graph.Label{5}, []graph.Label{5}},
		{[]graph.Label{2, 1, 1}, []graph.Label{1, 2}},
		{[]graph.Label{3, 3, 3}, []graph.Label{3}},
		{[]graph.Label{4, 1, 3, 1, 4}, []graph.Label{1, 3, 4}},
	}
	for _, c := range cases {
		got := CanonicalLabels(append([]graph.Label(nil), c.in...))
		if len(got) != len(c.want) {
			t.Fatalf("CanonicalLabels(%v) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("CanonicalLabels(%v) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestKeyDiscriminates(t *testing.T) {
	base := Key("blinks", false, []graph.Label{1, 2}, 10, -1, 0)
	same := Key("blinks", false, []graph.Label{1, 2}, 10, -1, 0)
	if base != same {
		t.Fatalf("identical queries produced different keys: %q vs %q", base, same)
	}
	variants := []string{
		Key("bkws", false, []graph.Label{1, 2}, 10, -1, 0),   // algorithm
		Key("blinks", true, []graph.Label{1, 2}, 10, -1, 0),  // direct mode
		Key("blinks", false, []graph.Label{1, 3}, 10, -1, 0), // labels
		Key("blinks", false, []graph.Label{1, 2}, 5, -1, 0),  // k
		Key("blinks", false, []graph.Label{1, 2}, 10, 2, 0),  // layer
		Key("blinks", false, []graph.Label{1, 2}, 10, -1, 1), // epoch
	}
	seen := map[string]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Fatalf("variant %d collides: %q", i, v)
		}
		seen[v] = true
	}
}

func TestGetPutLRU(t *testing.T) {
	c := New(Options{Shards: 1, MaxEntries: 3})
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), 0, Result{V: i, Bytes: 8, Store: true})
	}
	// Touch k0 so k1 is the LRU victim when k3 arrives.
	if v, ok := c.Get("k0"); !ok || v.(int) != 0 {
		t.Fatalf("k0: %v %v", v, ok)
	}
	c.Put("k3", 0, Result{V: 3, Bytes: 8, Store: true})
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 survived past the entry cap")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestByteBudgetEviction(t *testing.T) {
	c := New(Options{Shards: 1, MaxEntries: 100, MaxBytes: 100})
	c.Put("a", 0, Result{V: "a", Bytes: 60, Store: true})
	c.Put("b", 0, Result{V: "b", Bytes: 60, Store: true}) // over budget: a evicted
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived past the byte budget")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b missing")
	}
	if got := c.Stats().Bytes; got != 60 {
		t.Fatalf("bytes = %d, want 60", got)
	}
	// An entry bigger than the whole budget is refused outright.
	c.Put("huge", 0, Result{V: "x", Bytes: 1000, Store: true})
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized entry stored")
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	c := New(Options{Shards: 1, TTL: time.Minute, Clock: clock})
	c.Put("k", 0, Result{V: 42, Bytes: 8, Store: true})
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if _, ok := c.Get("k"); ok {
		t.Fatal("expired entry served")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry retained: Len = %d", c.Len())
	}
}

func TestStoreFlagAndNegative(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{Obs: reg})
	c.Put("degraded", 0, Result{V: "partial", Bytes: 8, Store: false})
	if _, ok := c.Get("degraded"); ok {
		t.Fatal("Store=false entry cached")
	}
	c.Put("empty", 0, Result{V: []int{}, Bytes: 8, Store: true, Negative: true})
	if _, ok := c.Get("empty"); !ok {
		t.Fatal("negative entry not cached")
	}
	if got := c.negHits.Value(); got != 1 {
		t.Fatalf("negative hits = %d, want 1", got)
	}
}

func TestEpochPrune(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{Shards: 1, Obs: reg})
	ctx := context.Background()
	k0 := Key("blinks", false, []graph.Label{1}, 10, -1, 0)
	if _, out, err := c.Do(ctx, 0, k0, stored("old")); err != nil || out != Miss {
		t.Fatalf("first Do: %v %v", out, err)
	}
	if _, out, _ := c.Do(ctx, 0, k0, stored("old")); out != Hit {
		t.Fatalf("second Do: %v, want hit", out)
	}
	// The graph refreshed: epoch 1. The old entry must neither hit (its
	// key embeds epoch 0) nor survive the prune.
	k1 := Key("blinks", false, []graph.Label{1}, 10, -1, 1)
	v, out, err := c.Do(ctx, 1, k1, stored("new"))
	if err != nil || out != Miss || v.(string) != "new" {
		t.Fatalf("post-refresh Do: %v %v %v", v, out, err)
	}
	if c.Len() != 1 {
		t.Fatalf("stale entry survived the epoch prune: Len = %d", c.Len())
	}
	if got := c.evictions.With("epoch").Value(); got != 1 {
		t.Fatalf("epoch evictions = %d, want 1", got)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(Options{})
	boom := errors.New("boom")
	calls := 0
	fail := func() (Result, error) { calls++; return Result{}, boom }
	if _, _, err := c.Do(context.Background(), 0, "k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := c.Do(context.Background(), 0, "k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Fatalf("failed computes cached: calls = %d, want 2", calls)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	c.Put("k", 0, Result{V: 1, Store: true})
	v, out, err := c.Do(context.Background(), 0, "k", stored(7))
	if err != nil || out != Bypass || v.(int) != 7 {
		t.Fatalf("nil Do: %v %v %v", v, out, err)
	}
	if c.Len() != 0 || c.Waiters("k") != 0 {
		t.Fatal("nil cache reported occupancy")
	}
}

// TestSingleflight: 50 concurrent identical queries run exactly one
// compute; 49 share the leader's result. The leader holds the compute
// open until every follower is parked, so the counts are deterministic.
func TestSingleflight(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{Obs: reg})
	const n = 50
	var computes atomic.Int64
	release := make(chan struct{})
	compute := func() (Result, error) {
		computes.Add(1)
		<-release
		return Result{V: "answer", Bytes: 16, Store: true}, nil
	}

	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := c.Do(context.Background(), 0, "q", compute)
			if err != nil {
				t.Errorf("Do %d: %v", i, err)
			}
			vals[i], outcomes[i] = v, out
		}(i)
	}
	// Wait until all followers are parked on the in-flight call, then
	// let the leader finish.
	deadline := time.Now().Add(10 * time.Second)
	for c.Waiters("q") != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers parked: %d, want %d", c.Waiters("q"), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computes = %d, want 1", got)
	}
	var leaders, followers int
	for i := 0; i < n; i++ {
		if vals[i].(string) != "answer" {
			t.Fatalf("caller %d got %v", i, vals[i])
		}
		switch outcomes[i] {
		case Miss:
			leaders++
		case Shared:
			followers++
		default:
			t.Fatalf("caller %d outcome %v", i, outcomes[i])
		}
	}
	if leaders != 1 || followers != n-1 {
		t.Fatalf("leaders = %d followers = %d, want 1/%d", leaders, followers, n-1)
	}
	if got := c.shared.Value(); got != n-1 {
		t.Fatalf("shared counter = %d, want %d", got, n-1)
	}
	// And the stored entry now hits.
	if _, out, _ := c.Do(context.Background(), 0, "q", compute); out != Hit {
		t.Fatalf("follow-up outcome %v, want hit", out)
	}
}

// A follower whose context expires while waiting gets its own context
// error promptly; the leader is unaffected.
func TestSingleflightFollowerCancel(t *testing.T) {
	c := New(Options{})
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), 0, "q", func() (Result, error) {
			close(leaderIn)
			<-release
			return Result{V: 1, Bytes: 8, Store: true}, nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for c.Waiters("q") == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, _, err := c.Do(ctx, 0, "q", func() (Result, error) {
		t.Error("follower computed")
		return Result{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
	close(release)
}

// Hammer the cache from many goroutines with overlapping keys, puts,
// epoch bumps, and singleflight computes; run under -race in CI.
func TestConcurrentMixedOps(t *testing.T) {
	c := New(Options{Shards: 4, MaxEntries: 64, MaxBytes: 4096, TTL: time.Minute})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 200; i++ {
				epoch := uint64(i / 100) // one epoch bump mid-run
				key := Key("blinks", false, []graph.Label{graph.Label(i % 7)}, 10, -1, epoch)
				_, _, _ = c.Do(ctx, epoch, key, func() (Result, error) {
					return Result{V: i, Bytes: int64(8 + i%32), Store: i%5 != 0}, nil
				})
				if i%3 == 0 {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("entry cap exceeded: %d", c.Len())
	}
	if c.Stats().Bytes > 4096 {
		t.Fatalf("byte budget exceeded: %d", c.Stats().Bytes)
	}
}

package qcache

import (
	"context"
	"sync"
)

// group collapses concurrent calls with the same key onto one function
// invocation (the "leader"); the rest ("followers") park until the
// leader finishes and share its result. Unlike a bare mutex around the
// computation, a follower stops waiting as soon as its own context
// expires — a slow leader cannot pin followers past their deadlines.
type call struct {
	done chan struct{} // closed when the leader finishes
	val  Result
	err  error
	n    int // followers currently waiting (under group.mu)
}

type group struct {
	mu    sync.Mutex
	calls map[string]*call
}

// do runs fn once per key across concurrent callers and reports whether
// this caller was the leader. Followers return fn's value and error
// verbatim, or their own ctx error if it expires while waiting.
func (g *group) do(ctx context.Context, key string, fn func() (Result, error)) (any, bool, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	if c, ok := g.calls[key]; ok {
		c.n++
		g.mu.Unlock()
		select {
		case <-c.done:
			g.mu.Lock()
			c.n--
			g.mu.Unlock()
			return c.val.V, false, c.err
		case <-ctx.Done():
			g.mu.Lock()
			c.n--
			g.mu.Unlock()
			return nil, false, context.Cause(ctx)
		}
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val.V, true, c.err
}

// waiters reports the followers currently parked on key (0 when no
// evaluation is in flight).
func (g *group) waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.calls[key]
	if !ok {
		return 0
	}
	return c.n
}

// Package retry holds the retry primitives shared by everything in
// bigindex that talks to something unreliable: exponential backoff with
// jitter (the Reloader's schedule, the shardrpc client's between-attempt
// waits) and a consecutive-failure circuit breaker with a half-open probe
// state (the Reloader's reload circuit, the shardrpc client's per-peer
// breakers). Both are small, deterministic under a seed, and safe for
// concurrent use.
package retry

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes the delay before retry attempt n. The base delay grows
// exponentially — Min × Factor^n, capped at Max — and jitter is layered on
// top in one of two shapes:
//
//   - additive (Full == false): delay = base + base×Jitter×U(0,1), the
//     Reloader's historical schedule — the base is a floor, jitter spreads
//     a fleet that would otherwise retry in lockstep;
//   - full (Full == true): delay = U(0, base), the classic "full jitter"
//     of the AWS architecture blog — the right shape for RPC retries,
//     where the goal is decorrelation and an immediate retry is fine.
//
// The zero value is not usable; call New.
type Backoff struct {
	min    time.Duration
	max    time.Duration
	factor float64
	jitter float64
	full   bool

	mu  sync.Mutex
	rng *rand.Rand
}

// BackoffOptions configures New. Zero values take the defaults noted.
type BackoffOptions struct {
	Min    time.Duration // first-attempt base delay (default 1s)
	Max    time.Duration // base-delay cap (default 5m)
	Factor float64       // base growth per attempt (default 2; values <= 1 mean 2)
	Jitter float64       // additive-jitter fraction of the base (default 0.2; ignored when Full)
	Full   bool          // full jitter: delay drawn uniformly from [0, base]
	Seed   int64         // jitter stream seed (0 derives from the clock)
}

// New returns a Backoff with opts applied over the defaults.
func New(opts BackoffOptions) *Backoff {
	if opts.Min <= 0 {
		opts.Min = time.Second
	}
	if opts.Max <= 0 {
		opts.Max = 5 * time.Minute
	}
	if opts.Max < opts.Min {
		opts.Max = opts.Min
	}
	if opts.Factor <= 1 {
		opts.Factor = 2
	}
	if opts.Jitter < 0 {
		opts.Jitter = 0
	} else if opts.Jitter == 0 {
		opts.Jitter = 0.2
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Backoff{
		min:    opts.Min,
		max:    opts.Max,
		factor: opts.Factor,
		jitter: opts.Jitter,
		full:   opts.Full,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Base returns the unjittered delay for attempt n (n counts completed
// failures: the wait before the first retry is Base(0) = Min).
func (b *Backoff) Base(attempt int) time.Duration {
	d := float64(b.min)
	for i := 0; i < attempt; i++ {
		d *= b.factor
		if d >= float64(b.max) {
			return b.max
		}
	}
	if d > float64(b.max) {
		return b.max
	}
	return time.Duration(d)
}

// Delay returns the jittered delay for attempt n. Additive jitter keeps
// the base as a floor; full jitter draws uniformly from [0, base].
func (b *Backoff) Delay(attempt int) time.Duration {
	base := b.Base(attempt)
	b.mu.Lock()
	u := b.rng.Float64()
	b.mu.Unlock()
	if b.full {
		return time.Duration(u * float64(base))
	}
	return base + time.Duration(float64(base)*b.jitter*u)
}

// State is a Breaker's position.
type State int

const (
	// Closed: requests flow; failures count toward the threshold.
	Closed State = iota
	// Open: requests are refused until the cooldown elapses.
	Open
	// HalfOpen: the cooldown elapsed and one probe is in flight; its
	// outcome closes or re-opens the breaker.
	HalfOpen
)

// String implements fmt.Stringer (the /stats shards block renders it).
func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a consecutive-failure circuit breaker. Threshold consecutive
// failures open it; after Cooldown, Allow admits exactly one probe
// (half-open); the probe's Success closes the breaker, its Failure
// re-opens it for another cooldown. Success in any state resets the
// failure count.
//
// Callers that only want the counting-and-state shape (the Reloader,
// which retries on its own schedule regardless) can skip Allow and just
// report Success/Failure, reading State for health.
type Breaker struct {
	threshold int64
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	fails    int64
	state    State
	openedAt time.Time
}

// BreakerOptions configures NewBreaker.
type BreakerOptions struct {
	// Threshold is the consecutive-failure count that opens the breaker
	// (default 5).
	Threshold int64
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
}

// NewBreaker returns a closed breaker.
func NewBreaker(opts BreakerOptions) *Breaker {
	if opts.Threshold <= 0 {
		opts.Threshold = 5
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 5 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Breaker{threshold: opts.Threshold, cooldown: opts.Cooldown, now: opts.Now}
}

// Allow reports whether a request may proceed. In the open state it
// returns false until the cooldown elapses, then true exactly once (the
// half-open probe); further calls return false until the probe resolves.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		return false // a probe is already in flight
	default:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = HalfOpen
		return true
	}
}

// Success records a successful request, closing the breaker and resetting
// the failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.fails = 0
	b.state = Closed
	b.mu.Unlock()
}

// Failure records a failed request. It returns true exactly when this
// failure opened the breaker (for logging/metrics on the transition). A
// failed half-open probe re-opens immediately regardless of the count.
func (b *Breaker) Failure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == Open {
		return false
	}
	if b.state == HalfOpen || b.fails >= b.threshold {
		b.state = Open
		b.openedAt = b.now()
		return true
	}
	return false
}

// State reports the breaker's position, resolving an elapsed cooldown as
// Open still (the transition to HalfOpen happens in Allow, not here, so
// observers never consume the probe slot).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Probeable reports whether a request could proceed right now — closed,
// half-open, or open with the cooldown elapsed. Unlike Allow it never
// consumes the half-open probe slot, so health observers can poll it:
// State() alone reports Open until real traffic arrives to probe, which
// would hold a recovered-but-idle dependency "down" indefinitely.
func (b *Breaker) Probeable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open {
		return b.now().Sub(b.openedAt) >= b.cooldown
	}
	return true
}

// Fails reports the consecutive-failure count.
func (b *Breaker) Fails() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}

// Reset force-closes the breaker and zeroes the count (the Reloader's
// MarkFresh path: an external signal proved the dependency healthy).
func (b *Breaker) Reset() {
	b.Success()
}

package retry

import (
	"testing"
	"time"
)

func TestBackoffBaseGrowthAndCap(t *testing.T) {
	b := New(BackoffOptions{Min: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Seed: 1})
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Base(i); got != w {
			t.Fatalf("Base(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestAdditiveJitterBounds(t *testing.T) {
	b := New(BackoffOptions{Min: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.25, Seed: 42})
	for attempt := 0; attempt < 5; attempt++ {
		base := b.Base(attempt)
		lo, hi := base, base+time.Duration(float64(base)*0.25)
		for i := 0; i < 200; i++ {
			d := b.Delay(attempt)
			if d < lo || d > hi {
				t.Fatalf("attempt %d: delay %v outside additive-jitter bounds [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
}

func TestFullJitterBounds(t *testing.T) {
	b := New(BackoffOptions{Min: 100 * time.Millisecond, Max: time.Second, Factor: 2, Full: true, Seed: 7})
	for attempt := 0; attempt < 5; attempt++ {
		base := b.Base(attempt)
		var minSeen, maxSeen time.Duration = base, 0
		for i := 0; i < 500; i++ {
			d := b.Delay(attempt)
			if d < 0 || d > base {
				t.Fatalf("attempt %d: delay %v outside full-jitter bounds [0, %v]", attempt, d, base)
			}
			if d < minSeen {
				minSeen = d
			}
			if d > maxSeen {
				maxSeen = d
			}
		}
		// Full jitter must actually spread across the range, not hug the base.
		if minSeen > base/4 || maxSeen < base/2 {
			t.Fatalf("attempt %d: full jitter not spread: saw [%v, %v] over base %v", attempt, minSeen, maxSeen, base)
		}
	}
}

func TestBackoffDeterministicUnderSeed(t *testing.T) {
	a := New(BackoffOptions{Min: 50 * time.Millisecond, Full: true, Seed: 99})
	b := New(BackoffOptions{Min: 50 * time.Millisecond, Full: true, Seed: 99})
	for i := 0; i < 20; i++ {
		if da, db := a.Delay(i%4), b.Delay(i%4); da != db {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, da, db)
		}
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerOptions{Threshold: 3, Cooldown: time.Second, Now: func() time.Time { return now }})
	if b.State() != Closed || !b.Allow() {
		t.Fatal("new breaker should be closed and allowing")
	}
	if b.Failure() {
		t.Fatal("failure 1 should not open")
	}
	if b.Failure() {
		t.Fatal("failure 2 should not open")
	}
	if !b.Failure() {
		t.Fatal("failure 3 should report the open transition")
	}
	if b.State() != Open || b.Allow() {
		t.Fatal("breaker should be open and refusing")
	}
	if b.Failure() {
		t.Fatal("failure while open must not re-report the transition")
	}
	if got := b.Fails(); got != 4 {
		t.Fatalf("Fails = %d, want 4", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerOptions{Threshold: 1, Cooldown: time.Second, Now: func() time.Time { return now }})
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker must refuse before cooldown")
	}
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: first Allow must admit the half-open probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", b.State())
	}
	if b.Allow() {
		t.Fatal("second Allow during the probe must refuse (exactly one probe)")
	}

	// Probe failure re-opens for a fresh cooldown.
	if !b.Failure() {
		t.Fatal("failed probe must report re-opening")
	}
	if b.Allow() {
		t.Fatal("re-opened breaker must refuse")
	}
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("second cooldown elapsed: probe should be admitted again")
	}

	// Probe success closes and resets.
	b.Success()
	if b.State() != Closed || b.Fails() != 0 {
		t.Fatalf("after probe success: state=%v fails=%d, want Closed/0", b.State(), b.Fails())
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
}

func TestBreakerStateStringAndReset(t *testing.T) {
	if Closed.String() != "closed" || Open.String() != "open" || HalfOpen.String() != "half-open" {
		t.Fatal("State.String mismatch")
	}
	b := NewBreaker(BreakerOptions{Threshold: 1})
	b.Failure()
	b.Reset()
	if b.State() != Closed || b.Fails() != 0 {
		t.Fatal("Reset should close and zero the breaker")
	}
}

// TestBreakerProbeable: the non-consuming health view — false only while
// open with an unelapsed cooldown, true again once a probe could run, and
// polling it never consumes the half-open probe slot.
func TestBreakerProbeable(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerOptions{Threshold: 1, Cooldown: time.Second, Now: func() time.Time { return now }})
	if !b.Probeable() {
		t.Fatal("closed breaker not probeable")
	}
	b.Failure()
	if b.Probeable() {
		t.Fatal("freshly opened breaker probeable")
	}
	now = now.Add(time.Second)
	for i := 0; i < 3; i++ {
		if !b.Probeable() {
			t.Fatal("cooldown elapsed but not probeable")
		}
	}
	if st := b.State(); st != Open {
		t.Fatalf("Probeable consumed a transition: state %v", st)
	}
	if !b.Allow() {
		t.Fatal("probe slot gone after Probeable polls")
	}
	if b.Probeable() {
		// Half-open with the probe in flight: Allow refuses a second
		// request, but for health purposes the dependency is being tested
		// right now — still probeable.
		t.Log("half-open reported probeable")
	}
	b.Failure() // failed probe re-opens and restarts the cooldown
	if b.Probeable() {
		t.Fatal("re-opened breaker probeable before second cooldown")
	}
}

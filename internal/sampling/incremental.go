package sampling

import (
	"bigindex/internal/bisim"
	"bigindex/internal/generalize"
	"bigindex/internal/graph"
)

// Incremental maintains the per-sample compression ratios of a growing
// configuration so that Algorithm 1 can score cost(G, C ∪ {c_i}) by
// re-summarizing only the samples that contain c_i's source label — adding
// a mapping cannot change the summary of a sample whose label set misses
// the mapped label. This turns the greedy search from O(candidates ×
// samples) summarizations into O(Σ_label |samples containing label|).
//
// The caller owns the growing configuration (a generalize.ConfigBuilder);
// the session reads it through the Mapper view and must be told about every
// accepted mapping via Accept.
type Incremental struct {
	est    *Estimator
	mapper generalize.Mapper
	ratios []float64
	// byLabel[l] lists the sample indices whose label set contains l.
	byLabel map[graph.Label][]int
}

// StartIncremental begins an incremental scoring session over mapper
// (typically a ConfigBuilder that starts empty).
func (e *Estimator) StartIncremental(mapper generalize.Mapper) *Incremental {
	inc := &Incremental{
		est:     e,
		mapper:  mapper,
		ratios:  append([]float64(nil), e.baseline...),
		byLabel: make(map[graph.Label][]int),
	}
	for i, ls := range e.labels {
		for l := range ls {
			inc.byLabel[l] = append(inc.byLabel[l], i)
		}
	}
	return inc
}

// extMapper views mapper ∪ {m} without mutating mapper.
type extMapper struct {
	base generalize.Mapper
	m    generalize.Mapping
}

func (e extMapper) Map(l graph.Label) graph.Label {
	if l == e.m.From {
		return e.m.To
	}
	return e.base.Map(l)
}

func (e extMapper) InDomain(l graph.Label) bool {
	return l == e.m.From || e.base.InDomain(l)
}

// Compress returns the estimated compress of the current configuration.
func (inc *Incremental) Compress() float64 {
	if len(inc.ratios) == 0 {
		return 1
	}
	s := 0.0
	for _, r := range inc.ratios {
		s += r
	}
	return s / float64(len(inc.ratios))
}

// CompressWith returns the estimated compress of C ∪ {m} without accepting
// it, re-summarizing only the touched samples. The returned map carries the
// recomputed per-sample ratios for Accept to apply.
func (inc *Incremental) CompressWith(m generalize.Mapping) (float64, map[int]float64) {
	if len(inc.ratios) == 0 {
		return 1, nil
	}
	ext := extMapper{base: inc.mapper, m: m}
	touched := make(map[int]float64)
	sum := 0.0
	for _, r := range inc.ratios {
		sum += r
	}
	for _, i := range inc.byLabel[m.From] {
		nr := compressMapped(inc.est.samples[i], ext)
		touched[i] = nr
		sum += nr - inc.ratios[i]
	}
	return sum / float64(len(inc.ratios)), touched
}

// Accept records that m was added to the underlying configuration, applying
// the per-sample ratios computed by CompressWith (recomputed if nil; the
// caller must have already added m to the builder in that case).
func (inc *Incremental) Accept(m generalize.Mapping, touched map[int]float64) {
	if touched == nil {
		for _, i := range inc.byLabel[m.From] {
			inc.ratios[i] = compressMapped(inc.est.samples[i], inc.mapper)
		}
		return
	}
	for i, r := range touched {
		inc.ratios[i] = r
	}
}

func compressMapped(s *graph.Graph, m generalize.Mapper) float64 {
	if s.Size() == 0 {
		return 1
	}
	return bisim.Compute(s.Relabel(m.Map)).CompressionRatio(s)
}

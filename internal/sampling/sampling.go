// Package sampling implements the graph-sampling machinery of the index
// cost model (Sec. 3.2): computing the exact compression ratio of a
// configuration requires generalizing and summarizing the whole data graph,
// which is too expensive inside the configuration search, so the ratio is
// estimated on n node-induced subgraphs of radius r around random vertices.
// The package also provides the proportion-estimation sample-size formula
// and the Spearman rank correlation used by Exp-4 to validate the estimate.
package sampling

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"bigindex/internal/bisim"
	"bigindex/internal/generalize"
	"bigindex/internal/graph"
)

// SampleSize returns n = 0.5·0.5·(z/E)², the estimation-of-proportion sample
// size for confidence value z and maximum allowable error e (Sec. 3.2's
// example: z = 1.96, E = 0.05 gives n ≈ 385, which the paper rounds to 400).
func SampleSize(z, e float64) int {
	return int(math.Ceil(0.25 * (z / e) * (z / e)))
}

// Estimator estimates compression ratios of configurations by sampling.
// Samples are drawn once and reused across configurations so that the
// greedy search (Algo 1) ranks candidates on a consistent basis.
//
// Two caches make scoring thousands of candidate configurations practical:
// the baseline ratio |Bisim(S)|/|S| of every sample (a configuration whose
// domain does not intersect a sample's labels cannot change that sample's
// summary), and each sample's label set to detect exactly that case.
type Estimator struct {
	samples  []*graph.Graph
	baseline []float64              // |Bisim(S)|/|S| with the identity config
	labels   []map[graph.Label]bool // label set of each sample
	radius   int
}

// NewEstimator draws n node-induced subgraphs from g: each sample is the
// subgraph induced by the vertices reachable within radius hops of a
// uniformly random vertex (forward direction, matching the bounded
// traversals of keyword search semantics). A deterministic rng seed makes
// experiments reproducible.
func NewEstimator(g *graph.Graph, radius, n int, seed int64) *Estimator {
	rng := rand.New(rand.NewSource(seed))
	e := &Estimator{radius: radius}
	if g.NumVertices() == 0 {
		return e
	}
	// Sources are drawn serially (deterministic rng stream); sample
	// extraction and baseline summarization are independent per sample and
	// run across CPUs.
	sources := make([]graph.V, n)
	for i := range sources {
		sources[i] = graph.V(rng.Intn(g.NumVertices()))
	}
	e.samples = make([]*graph.Graph, n)
	e.baseline = make([]float64, n)
	e.labels = make([]map[graph.Label]bool, n)

	workers := min(runtime.GOMAXPROCS(0), n)
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				vs := g.ReachableWithin(sources[i], radius, graph.Forward)
				sub, _ := g.InducedSubgraph(vs)
				e.samples[i] = sub
				e.baseline[i] = compressOf(sub, generalize.EmptyConfig())
				ls := make(map[graph.Label]bool)
				for _, l := range sub.DistinctLabels() {
					ls[l] = true
				}
				e.labels[i] = ls
			}
		}()
	}
	wg.Wait()
	return e
}

// touches reports whether cfg can change sample i's summary: true iff the
// configuration's domain intersects the sample's label set.
func (e *Estimator) touches(i int, cfg *generalize.Config) bool {
	for _, l := range cfg.Domain() {
		if e.labels[i][l] {
			return true
		}
	}
	return false
}

// NumSamples reports how many sample subgraphs were drawn.
func (e *Estimator) NumSamples() int { return len(e.samples) }

// Radius reports the sampling radius r.
func (e *Estimator) Radius() int { return e.radius }

// EstimateCompress estimates compress(G, C): the mean, over the samples, of
// |Bisim(Gen(S, C))| / |S|. Values are in (0, 1]; smaller is better.
// Samples untouched by C reuse their cached baseline ratio.
func (e *Estimator) EstimateCompress(cfg *generalize.Config) float64 {
	return e.EstimateCompressPrefix(cfg, len(e.samples))
}

// EstimateCompressPrefix estimates compress using only the first n samples;
// Fig. 16 sweeps n to show where the estimate stabilizes.
func (e *Estimator) EstimateCompressPrefix(cfg *generalize.Config, n int) float64 {
	if n > len(e.samples) {
		n = len(e.samples)
	}
	if n == 0 {
		return 1
	}
	sum := 0.0
	for i, s := range e.samples[:n] {
		if e.touches(i, cfg) {
			sum += compressOf(s, cfg)
		} else {
			sum += e.baseline[i]
		}
	}
	return sum / float64(n)
}

func compressOf(s *graph.Graph, cfg *generalize.Config) float64 {
	if s.Size() == 0 {
		return 1
	}
	gen := cfg.Apply(s)
	return bisim.Compute(gen).CompressionRatio(s)
}

// ExactCompress computes the true compression ratio |χ(G,C)| / |G| on the
// full graph; the ground truth that Exp-4 correlates estimates against.
func ExactCompress(g *graph.Graph, cfg *generalize.Config) float64 {
	if g.Size() == 0 {
		return 1
	}
	return bisim.Compute(cfg.Apply(g)).CompressionRatio(g)
}

// Spearman returns the Spearman rank correlation coefficient r_s between two
// equal-length samples (average ranks for ties). Exp-4 reports r_s between
// the estimated and exact compression of 100 configurations; the paper
// obtains r_s = 0.541 against a critical value of 0.326 at α = 0.001.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra, rb := ranks(a), ranks(b)
	return pearson(ra, rb)
}

func ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return x[idx[i]] < x[idx[j]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1 // 1-based average rank across the tie run
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

package sampling

import (
	"math"
	"math/rand"
	"testing"

	"bigindex/internal/generalize"
	"bigindex/internal/graph"
)

func TestSampleSize(t *testing.T) {
	// The paper's example: z = 1.96, E = 5% -> n ≈ 400 (0.25·(39.2)² = 384.16).
	n := SampleSize(1.96, 0.05)
	if n < 380 || n > 400 {
		t.Fatalf("SampleSize(1.96, 0.05) = %d, want ≈ 385", n)
	}
	if SampleSize(1.96, 0.1) >= n {
		t.Fatal("looser error bound should need fewer samples")
	}
}

// starGraph: one hub of label Hub with nLeaves leaves of distinct labels
// leaf_i; a config mapping all leaves to one type makes them bisimilar.
func starGraph(nLeaves int) (*graph.Graph, *generalize.Config) {
	b := graph.NewBuilder(nil)
	hub := b.AddVertex("Hub")
	leafType := b.Dict().Intern("Leaf")
	for i := 0; i < nLeaves; i++ {
		l := b.AddVertex("leaf_" + string(rune('A'+i%26)) + string(rune('0'+i/26)))
		b.AddEdge(hub, l)
	}
	g := b.Build()
	var ms []generalize.Mapping
	for _, l := range g.DistinctLabels() {
		name := g.Dict().Name(l)
		if name != "Hub" && name != "Leaf" {
			ms = append(ms, generalize.Mapping{From: l, To: leafType})
		}
	}
	return g, generalize.MustConfig(ms)
}

func TestExactCompress(t *testing.T) {
	g, cfg := starGraph(20)
	// Without generalization every label is unique: no compression.
	if r := ExactCompress(g, generalize.EmptyConfig()); r != 1 {
		t.Fatalf("identity compress = %v, want 1", r)
	}
	// With generalization the 20 leaves collapse to 1 supernode:
	// summary = 2 vertices + 1 edge = 3; original = 21 + 20 = 41.
	r := ExactCompress(g, cfg)
	want := 3.0 / 41.0
	if math.Abs(r-want) > 1e-12 {
		t.Fatalf("compress = %v, want %v", r, want)
	}
}

func TestEstimatorTracksExact(t *testing.T) {
	g, cfg := starGraph(30)
	est := NewEstimator(g, 2, 200, 1)
	if est.NumSamples() != 200 || est.Radius() != 2 {
		t.Fatalf("estimator shape: %d samples radius %d", est.NumSamples(), est.Radius())
	}
	got := est.EstimateCompress(cfg)
	exact := ExactCompress(g, cfg)
	// Star samples rooted at leaves are single vertices (ratio 1); rooted
	// at the hub they compress hard. The estimate must at least strictly
	// separate the generalizing config from the identity.
	ident := est.EstimateCompress(generalize.EmptyConfig())
	if got >= ident {
		t.Fatalf("estimate %v should beat identity %v (exact %v)", got, ident, exact)
	}
}

func TestEstimatePrefixStabilizes(t *testing.T) {
	g, cfg := starGraph(25)
	est := NewEstimator(g, 2, 400, 2)
	full := est.EstimateCompress(cfg)
	if p := est.EstimateCompressPrefix(cfg, 400); p != full {
		t.Fatal("full prefix must equal EstimateCompress")
	}
	p100 := est.EstimateCompressPrefix(cfg, 100)
	if math.Abs(p100-full) > 0.25 {
		t.Fatalf("prefix estimate too unstable: %v vs %v", p100, full)
	}
	if est.EstimateCompressPrefix(cfg, 0) != 1 {
		t.Fatal("zero samples should estimate 1")
	}
	if est.EstimateCompressPrefix(cfg, 9999) != full {
		t.Fatal("overlong prefix should clamp")
	}
}

func TestEmptyGraphEstimator(t *testing.T) {
	g := graph.NewBuilder(nil).Build()
	est := NewEstimator(g, 2, 10, 3)
	if est.NumSamples() != 0 {
		t.Fatal("no samples from empty graph")
	}
	if est.EstimateCompress(generalize.EmptyConfig()) != 1 {
		t.Fatal("empty estimate should be 1")
	}
}

func TestSpearman(t *testing.T) {
	// Perfect monotone agreement.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	if r := Spearman(a, b); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", r)
	}
	// Perfect inversion.
	c := []float64{50, 40, 30, 20, 10}
	if r := Spearman(a, c); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", r)
	}
	// Ties: average ranks keep the coefficient in [-1, 1].
	d := []float64{1, 1, 2, 2, 3}
	if r := Spearman(a, d); r < 0.8 || r > 1 {
		t.Fatalf("tied monotone correlation = %v", r)
	}
	// Degenerate inputs.
	if r := Spearman([]float64{1}, []float64{2}); r != 0 {
		t.Fatalf("short input = %v", r)
	}
	if r := Spearman([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("constant input = %v", r)
	}
	// Random noise correlates weakly.
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 500)
	y := make([]float64, 500)
	for i := range x {
		x[i], y[i] = rng.Float64(), rng.Float64()
	}
	if r := Spearman(x, y); math.Abs(r) > 0.15 {
		t.Fatalf("random correlation = %v", r)
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty stats should be 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("std = %v", s)
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	g, cfg := starGraph(15)
	est := NewEstimator(g, 2, 100, 5)

	builder := generalize.NewConfigBuilder(g)
	inc := est.StartIncremental(builder)
	if math.Abs(inc.Compress()-est.EstimateCompress(generalize.EmptyConfig())) > 1e-12 {
		t.Fatal("initial incremental compress must equal identity estimate")
	}
	for _, m := range cfg.Mappings() {
		c, touched := inc.CompressWith(m)
		// Build the equivalent immutable config to cross-check.
		snap := builder.Snapshot()
		ext, err := snap.Extend(m)
		if err != nil {
			t.Fatal(err)
		}
		want := est.EstimateCompress(ext)
		if math.Abs(c-want) > 1e-9 {
			t.Fatalf("CompressWith(%v) = %v, batch = %v", m, c, want)
		}
		if err := builder.Add(m); err != nil {
			t.Fatal(err)
		}
		inc.Accept(m, touched)
		if math.Abs(inc.Compress()-want) > 1e-9 {
			t.Fatalf("after Accept: %v, want %v", inc.Compress(), want)
		}
	}
}

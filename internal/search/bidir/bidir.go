// Package bidir implements bidirectional expansion keyword search in the
// style of Kacholia et al. (VLDB'05), the fourth semantics plugged into
// BiG-index (Sec. 5 lists it among the algorithms the framework optimizes
// "with minor modifications").
//
// BANKS-style purely backward search wastes effort expanding from frequent
// keywords: their huge posting lists flood the graph. Bidirectional
// expansion instead grows *backward* only from the most selective keyword —
// an activation source — and verifies each candidate root it reaches by
// expanding *forward* toward the remaining keywords. Since every answer
// root must reach the selective keyword within d_max, restricting the
// backward phase to it loses nothing; the forward phase recomputes exact
// distances, so the answers (distinct-root, Σ-distance scored) are
// identical to bkws/Blinks — only the exploration strategy differs.
//
// Candidates are verified in increasing backward distance (the activation
// order), which yields a sound top-k stop: a future root's score is at
// least its backward distance to the selective keyword.
package bidir

import (
	"context"
	"fmt"

	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/search"
	"bigindex/internal/shard"
)

// Algorithm is the bidirectional-expansion plug-in.
type Algorithm struct {
	dmax int
}

// New returns a bidir instance with distance bound dmax.
func New(dmax int) *Algorithm {
	if dmax < 1 {
		dmax = 1
	}
	return &Algorithm{dmax: dmax}
}

// NewSharded returns a bidir variant that executes each search across the
// internal/shard worker pool: the backward activation from the selective
// keyword runs block-sharded, and forward verifications — bidir's
// dominant cost, independent per candidate — run in parallel chunks.
// Answers are byte-identical to New's at every worker count.
func NewSharded(dmax int, opt shard.Options) search.Algorithm {
	if dmax < 1 {
		dmax = 1
	}
	return shard.New(shard.ModeBidir, dmax, opt)
}

// Name implements search.Algorithm.
func (a *Algorithm) Name() string { return "bidir" }

// DMax returns the configured distance bound.
func (a *Algorithm) DMax() int { return a.dmax }

// Prepare implements search.Algorithm; bidirectional expansion is
// index-free like bkws.
func (a *Algorithm) Prepare(g *graph.Graph) (search.Prepared, error) {
	return &prepared{g: g, dmax: a.dmax}, nil
}

type prepared struct {
	g    *graph.Graph
	dmax int
}

// Search implements search.Prepared.
func (p *prepared) Search(q []graph.Label, k int) ([]search.Match, error) {
	return p.SearchCtx(context.Background(), q, k)
}

// SearchCtx implements search.Prepared with cooperative cancellation:
// candidate verifications and backward expansions are (throttled)
// checkpoints, and on cancellation the verified roots found so far are
// returned with the context's error.
func (p *prepared) SearchCtx(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("bidir: empty query")
	}
	cancel := search.NewCanceller(ctx)
	sp := obs.SpanFromContext(ctx)
	led := obs.LedgerFromContext(ctx)
	verifiedN := 0
	frontierPeak := 0
	earlyStop := false
	sel := 0
	for i, l := range q {
		if p.g.LabelCount(l) == 0 {
			return nil, nil
		}
		if p.g.LabelCount(l) < p.g.LabelCount(q[sel]) {
			sel = i
		}
	}

	// Backward activation phase: level-order BFS from the selective
	// keyword's posting list; candidates surface in increasing distance.
	seeds := p.g.VerticesWithLabel(q[sel])
	dist := make(map[graph.V]int, len(seeds)*2)
	level := make([]graph.V, 0, len(seeds))
	for _, s := range seeds {
		dist[s] = 0
		level = append(level, s)
	}

	var matches []search.Match
	verify := func(r graph.V, dSel int) {
		verifiedN++
		// Forward phase: exact minimum distances to every keyword. The
		// selective keyword's distance is recomputed too — the forward
		// minimum can only match dSel (backward BFS already gave the min).
		dists, nodes, ok := search.MinDistToLabels(p.g, r, q, p.dmax)
		if !ok {
			return
		}
		sum := 0
		for _, d := range dists {
			sum += d
		}
		matches = append(matches, search.Match{
			Root:  r,
			Nodes: nodes,
			Dists: dists,
			Score: float64(sum),
		})
		_ = dSel
	}

activation:
	for d := 0; len(level) > 0; d++ {
		if len(level) > frontierPeak {
			frontierPeak = len(level)
		}
		for _, v := range level {
			if cancel.Cancelled() {
				break activation
			}
			verify(v, d)
		}
		if k > 0 && len(matches) >= k {
			// Any future candidate has backward distance >= d+1 to the
			// selective keyword, hence score >= d+1. Strictly better, not
			// equal: a future root scoring exactly d+1 could displace the
			// k-th answer in the (score, Key) tie-break order, so only a
			// strictly better k-th closes the search — making the top-k
			// exactly the exhaustive prefix, which the sharded path
			// (internal/shard) relies on for byte-identical answers.
			search.SortMatches(matches)
			if matches[k-1].Score < float64(d+1) {
				earlyStop = true
				break
			}
		}
		if d == p.dmax {
			break
		}
		var next []graph.V
		for _, v := range level {
			if cancel.Cancelled() {
				break activation
			}
			for _, u := range p.g.In(v) {
				if _, ok := dist[u]; !ok {
					dist[u] = d + 1
					next = append(next, u)
				}
			}
		}
		level = next
	}

	if sp != nil {
		sp.SetAttr("verified", verifiedN).
			SetAttr("roots", len(matches)).
			SetAttr("early_topk", earlyStop)
	}
	led.AddExpanded(int64(verifiedN))
	led.NoteFrontier(int64(frontierPeak))
	search.SortMatches(matches)
	return search.Truncate(matches, k), cancel.Err()
}

// NewGeneration implements search.Algorithm; bidir shares the rooted
// generation step with bkws and Blinks.
func (a *Algorithm) NewGeneration(data *graph.Graph, q []graph.Label, opt search.GenOptions) search.Generation {
	return search.NewRootedGeneration(data, q, a.dmax, nil, opt)
}

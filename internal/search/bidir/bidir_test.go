package bidir

import (
	"math/rand"
	"testing"

	"bigindex/internal/graph"
	"bigindex/internal/search"
	"bigindex/internal/search/bkws"
)

func randomGraph(rng *rand.Rand, n, e, labels int) *graph.Graph {
	b := graph.NewBuilder(nil)
	ls := make([]graph.Label, labels)
	for i := range ls {
		ls[i] = b.Dict().Intern(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		b.AddVertexLabel(ls[rng.Intn(labels)])
	}
	for i := 0; i < e; i++ {
		b.AddEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	return b.Build()
}

func matchKeys(ms []search.Match) map[string]float64 {
	out := map[string]float64{}
	for _, m := range ms {
		out[m.Key()] = m.Score
	}
	return out
}

// TestAgreesWithBkws: bidirectional expansion implements the same semantics
// as backward search, so exhaustive answer sets must be identical.
func TestAgreesWithBkws(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	base := bkws.New(3)
	algo := New(3)
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(35)
		g := randomGraph(rng, n, rng.Intn(4*n), 2+rng.Intn(3))
		nq := 1 + rng.Intn(3)
		q := make([]graph.Label, nq)
		for i := range q {
			q[i] = graph.Label(1 + rng.Intn(g.Dict().Len()))
		}
		bp, _ := base.Prepare(g)
		want, _ := bp.Search(q, 0)
		p, _ := algo.Prepare(g)
		got, err := p.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		gm, wm := matchKeys(got), matchKeys(want)
		if len(gm) != len(wm) {
			t.Fatalf("trial %d: %d matches, bkws %d (q=%v)", trial, len(gm), len(wm), q)
		}
		for k, s := range wm {
			if gs, ok := gm[k]; !ok || gs != s {
				t.Fatalf("trial %d: key %s got %v want %v", trial, k, gs, s)
			}
		}
	}
}

func TestTopKScores(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	algo := New(4)
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(5*n), 3)
		q := []graph.Label{1, 2}
		p, _ := algo.Prepare(g)
		all, _ := p.Search(q, 0)
		for _, k := range []int{1, 4} {
			topk, _ := p.Search(q, k)
			if len(topk) != min(k, len(all)) {
				t.Fatalf("top-%d returned %d of %d", k, len(topk), len(all))
			}
			for i := range topk {
				if topk[i].Score != all[i].Score {
					t.Fatalf("top-%d score[%d] = %v, want %v", k, i, topk[i].Score, all[i].Score)
				}
			}
		}
	}
}

func TestEmptyAndMissing(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(63)), 10, 20, 2)
	p, _ := New(3).Prepare(g)
	if _, err := p.Search(nil, 0); err == nil {
		t.Fatal("empty query should error")
	}
	missing := g.Dict().Intern("never")
	if ms, err := p.Search([]graph.Label{missing}, 0); err != nil || ms != nil {
		t.Fatalf("missing keyword: %v %v", ms, err)
	}
}

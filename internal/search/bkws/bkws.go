// Package bkws implements backward keyword search (Sec. 5.1 of the paper;
// the BANKS lineage of Bhalotia et al., ICDE'02, with the distinct-root
// refinement of He et al.): an answer is a root vertex r that reaches, along
// out-edges, at least one vertex labeled q_i within d_max hops for every
// query keyword, scored by Σ_i dist(r, p_i) with p_i the nearest q_i vertex.
//
// The search runs backward: every keyword seeds a multi-source traversal
// along in-edges from the vertices carrying that keyword; a vertex reached
// by all traversals is an answer root. Frontiers are expanded smallest
// first, the paper's "the vertex set V_i with the minimal size is
// processed" rule, and top-k search stops once no undiscovered root can
// beat the current k-th score.
package bkws

import (
	"context"
	"fmt"
	"slices"

	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/search"
	"bigindex/internal/shard"
)

// Algorithm is the bkws plug-in. The zero value is not usable; construct
// with New.
type Algorithm struct {
	dmax int
}

// New returns a bkws instance with distance bound dmax (the d_max of the
// keyword query tuple (Q, d_max)).
func New(dmax int) *Algorithm {
	if dmax < 1 {
		dmax = 1
	}
	return &Algorithm{dmax: dmax}
}

// NewSharded returns a bkws variant that executes each search across the
// internal/shard worker pool: per-(keyword × block) backward expansions
// in parallel, stitched at portal vertices by a scatter-gather
// coordinator. Answers are byte-identical to New's at every worker count
// (both equal the exhaustive top-k prefix; see the strict early-stop
// bound below).
func NewSharded(dmax int, opt shard.Options) search.Algorithm {
	if dmax < 1 {
		dmax = 1
	}
	return shard.New(shard.ModeBKWS, dmax, opt)
}

// Name implements search.Algorithm.
func (a *Algorithm) Name() string { return "bkws" }

// DMax returns the configured distance bound.
func (a *Algorithm) DMax() int { return a.dmax }

// Prepare implements search.Algorithm. bkws needs no per-graph index — that
// is its point of comparison with Blinks.
func (a *Algorithm) Prepare(g *graph.Graph) (search.Prepared, error) {
	return &prepared{g: g, dmax: a.dmax}, nil
}

type prepared struct {
	g    *graph.Graph
	dmax int
}

// frontier is one keyword's backward expansion state.
type frontier struct {
	kw    int
	level int
	cur   []graph.V       // vertices at distance `level`
	dist  map[graph.V]int // v -> dist(v ->* keyword vertex)
}

// Search implements search.Prepared.
func (p *prepared) Search(q []graph.Label, k int) ([]search.Match, error) {
	return p.SearchCtx(context.Background(), q, k)
}

// SearchCtx implements search.Prepared with cooperative cancellation: every
// frontier expansion is a (throttled) checkpoint, and on cancellation the
// roots discovered so far are returned with the context's error.
func (p *prepared) SearchCtx(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("bkws: empty query")
	}
	cancel := search.NewCanceller(ctx)
	sp := obs.SpanFromContext(ctx)
	led := obs.LedgerFromContext(ctx)
	expansions := 0
	frontierPeak := 0
	earlyStop := false
	fronts := make([]*frontier, len(q))
	for i, l := range q {
		seeds := p.g.VerticesWithLabel(l)
		if len(seeds) == 0 {
			return nil, nil // a keyword with no occurrences has no answers
		}
		f := &frontier{kw: i, dist: make(map[graph.V]int, len(seeds)*2)}
		for _, s := range seeds {
			f.dist[s] = 0
			f.cur = append(f.cur, s)
		}
		fronts[i] = f
	}

	found := make(map[graph.V]bool)
	var matches []search.Match

	tryRoot := func(v graph.V) {
		if found[v] {
			return
		}
		dists := make([]int, len(q))
		sum := 0
		for _, f := range fronts {
			d, ok := f.dist[v]
			if !ok {
				return
			}
			dists[f.kw] = d
			sum += d
		}
		found[v] = true
		matches = append(matches, search.Match{
			Root:  v,
			Nodes: search.WitnessNodes(p.g, v, q, dists),
			Dists: dists,
			Score: float64(sum),
		})
	}

	// Seed roots: keyword vertices themselves may already be roots.
	for _, f := range fronts {
		for _, v := range f.cur {
			tryRoot(v)
		}
	}

expand:
	for {
		if cancel.Cancelled() {
			break
		}
		// Pick the live frontier with the fewest vertices (paper's rule).
		var best *frontier
		live := 0
		for _, f := range fronts {
			live += len(f.cur)
			if f.level >= p.dmax || len(f.cur) == 0 {
				continue
			}
			if best == nil || len(f.cur) < len(best.cur) {
				best = f
			}
		}
		if live > frontierPeak {
			frontierPeak = live
		}
		if best == nil {
			break
		}
		if k > 0 && len(matches) >= k {
			// Lower bound on any future root's score: it is completed by a
			// frontier expansion, so its distance for that keyword is at
			// least the smallest live frontier level + 1.
			lb := -1
			for _, f := range fronts {
				if f.level < p.dmax && len(f.cur) > 0 && (lb == -1 || f.level+1 < lb) {
					lb = f.level + 1
				}
			}
			search.SortMatches(matches)
			// Strictly better, not equal: an undiscovered root scoring
			// exactly lb could still displace the current k-th answer in
			// the (score, Key) tie-break order. With the strict bound the
			// returned top-k is exactly the exhaustive answer's prefix —
			// the invariant the sharded path (internal/shard) relies on to
			// stay byte-identical at every worker count.
			if lb >= 0 && matches[min(k, len(matches))-1].Score < float64(lb) {
				earlyStop = true
				break
			}
		}

		var next []graph.V
		for _, v := range best.cur {
			if cancel.Cancelled() {
				break expand
			}
			expansions++
			for _, u := range p.g.In(v) {
				if _, ok := best.dist[u]; !ok {
					best.dist[u] = best.level + 1
					next = append(next, u)
				}
			}
		}
		best.level++
		best.cur = next
		for _, u := range next {
			tryRoot(u)
		}
	}

	if sp != nil {
		sp.SetAttr("expansions", expansions).
			SetAttr("roots", len(matches)).
			SetAttr("early_topk", earlyStop)
	}
	led.AddExpanded(int64(expansions))
	led.NoteFrontier(int64(frontierPeak))
	search.SortMatches(matches)
	return search.Truncate(matches, k), cancel.Err()
}

// NewGeneration implements search.Algorithm; see generation.go (shared
// root-based generation).
func (a *Algorithm) NewGeneration(data *graph.Graph, q []graph.Label, opt search.GenOptions) search.Generation {
	return search.NewRootedGeneration(data, q, a.dmax, nil, opt)
}

// Roots is a debugging helper: all answer roots of q, ascending.
func Roots(ms []search.Match) []graph.V {
	rs := make([]graph.V, 0, len(ms))
	for _, m := range ms {
		rs = append(rs, m.Root)
	}
	slices.Sort(rs)
	return rs
}

package bkws

import (
	"math/rand"
	"testing"

	"bigindex/internal/graph"
	"bigindex/internal/search"
)

func randomGraph(rng *rand.Rand, n, e, labels int) *graph.Graph {
	b := graph.NewBuilder(nil)
	ls := make([]graph.Label, labels)
	for i := range ls {
		ls[i] = b.Dict().Intern(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		b.AddVertexLabel(ls[rng.Intn(labels)])
	}
	for i := 0; i < e; i++ {
		b.AddEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	return b.Build()
}

// bruteForce checks every vertex as a root with a bounded forward BFS.
func bruteForce(g *graph.Graph, q []graph.Label, dmax int) map[string]float64 {
	out := map[string]float64{}
	for v := 0; v < g.NumVertices(); v++ {
		dists, _, ok := search.MinDistToLabels(g, graph.V(v), q, dmax)
		if !ok {
			continue
		}
		sum := 0
		for _, d := range dists {
			sum += d
		}
		m := search.Match{Root: graph.V(v), Dists: dists, Score: float64(sum)}
		out[m.Key()] = m.Score
	}
	return out
}

func matchKeys(ms []search.Match) map[string]float64 {
	out := map[string]float64{}
	for _, m := range ms {
		out[m.Key()] = m.Score
	}
	return out
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	algo := New(3)
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(4*n), 2+rng.Intn(3))
		nq := 1 + rng.Intn(3)
		q := make([]graph.Label, nq)
		for i := range q {
			q[i] = graph.Label(1 + rng.Intn(g.Dict().Len()))
		}
		prep, err := algo.Prepare(g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := prep.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(g, q, 3)
		gm := matchKeys(got)
		if len(gm) != len(want) {
			t.Fatalf("trial %d: %d matches, brute force %d\nq=%v\nedges=%v", trial, len(gm), len(want), q, g.Edges())
		}
		for k, s := range want {
			if gs, ok := gm[k]; !ok || gs != s {
				t.Fatalf("trial %d: key %s got %v want %v", trial, k, gs, s)
			}
		}
	}
}

func TestTopKIsPrefixOfFullRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	algo := New(4)
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(5*n), 3)
		q := []graph.Label{1, 2}
		prep, _ := algo.Prepare(g)
		all, _ := prep.Search(q, 0)
		for _, k := range []int{1, 2, 5} {
			topk, _ := prep.Search(q, k)
			if len(topk) > k {
				t.Fatalf("top-%d returned %d answers", k, len(topk))
			}
			if len(all) >= k && len(topk) != min(k, len(all)) {
				t.Fatalf("top-%d returned %d of %d", k, len(topk), len(all))
			}
			// Scores must agree with the full ranking prefix (roots can
			// differ under ties; scores cannot).
			for i := range topk {
				if topk[i].Score != all[i].Score {
					t.Fatalf("top-%d score[%d] = %v, full ranking has %v", k, i, topk[i].Score, all[i].Score)
				}
			}
		}
	}
}

func TestNoOccurrenceMeansNoAnswers(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 10, 20, 2)
	missing := g.Dict().Intern("never-used")
	prep, _ := New(3).Prepare(g)
	ms, err := prep.Search([]graph.Label{1, missing}, 0)
	if err != nil || ms != nil {
		t.Fatalf("want nil matches, got %v err %v", ms, err)
	}
}

func TestEmptyQueryErrors(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 5, 5, 2)
	prep, _ := New(3).Prepare(g)
	if _, err := prep.Search(nil, 0); err == nil {
		t.Fatal("empty query should error")
	}
}

func TestDuplicateKeywords(t *testing.T) {
	// A query repeating a keyword must still work: both positions match the
	// same posting list.
	b := graph.NewBuilder(nil)
	x := b.AddVertex("x")
	y := b.AddVertex("y")
	b.AddEdge(y, x)
	g := b.Build()
	prep, _ := New(2).Prepare(g)
	ms, err := prep.Search([]graph.Label{g.Label(x), g.Label(x)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 { // roots x (0+0) and y (1+1)
		t.Fatalf("matches = %v", ms)
	}
}

func TestGenerationAgreesWithSearch(t *testing.T) {
	// RootedGeneration fed every vertex as a root candidate must reproduce
	// the direct search exactly, in all four optimization modes.
	rng := rand.New(rand.NewSource(13))
	algo := New(3)
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(4*n), 3)
		q := []graph.Label{1, 2}
		prep, _ := algo.Prepare(g)
		direct, _ := prep.Search(q, 0)
		want := matchKeys(direct)

		allRoots := make([]graph.V, n)
		for i := range allRoots {
			allRoots[i] = graph.V(i)
		}
		for _, opt := range []search.GenOptions{
			{},
			{SpecOrder: true},
			{PathBased: true},
			{SpecOrder: true, PathBased: true},
		} {
			gen := algo.NewGeneration(g, q, opt)
			got := matchKeys(gen.Generate(allRoots, nil))
			if len(got) != len(want) {
				t.Fatalf("trial %d opt %+v: %d generated, want %d", trial, opt, len(got), len(want))
			}
			for k, s := range want {
				if gs, ok := got[k]; !ok || gs != s {
					t.Fatalf("trial %d opt %+v: key %s got %v want %v", trial, opt, k, gs, s)
				}
			}
		}
	}
}

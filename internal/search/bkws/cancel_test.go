package bkws

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"bigindex/internal/graph"
)

// A pre-cancelled context must stop SearchCtx at its first checkpoint, and
// whatever partial matches come back must be a subset of the exhaustive
// answer set (sound but possibly incomplete).
func TestSearchCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := randomGraph(rng, 40, 120, 3)
	p, err := New(3).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	q := []graph.Label{1, 2}
	full, err := p.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ms, err := p.SearchCtx(ctx, q, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	fullKeys := matchKeys(full)
	for _, m := range ms {
		if _, ok := fullKeys[m.Key()]; !ok {
			t.Fatalf("partial result %s not in the exhaustive answer set", m.Key())
		}
	}
}

// SearchCtx under a background context is exactly Search.
func TestSearchCtxBackgroundMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	g := randomGraph(rng, 30, 90, 3)
	p, err := New(3).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	q := []graph.Label{1, 2}
	want, err := p.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.SearchCtx(context.Background(), q, 0)
	if err != nil {
		t.Fatalf("background SearchCtx errored: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("SearchCtx found %d matches, Search found %d", len(got), len(want))
	}
}

// Package blinks implements the ranked keyword search of He et al.
// (SIGMOD'07), the rkws semantics of Sec. 5.3: distinct-root answers ranked
// by Σ_i dist(r, p_i), found by backward expansion accelerated with a
// bi-level index over a graph partition.
//
// The single-level BLINKS index needs O(|V|²) space and is infeasible for
// large graphs (as the paper notes), so — like the paper — we build the
// bi-level variant: the graph is partitioned into blocks (the paper used
// METIS; we use the BFS-grown partitioner in internal/partition), and each
// block precomputes its intra-block backward distance table (the
// keyword-node list / node-keyword map information of BLINKS, folded into
// one table bounded by d_max). Backward expansion then proceeds block-wise:
// finalizing a vertex bulk-relaxes its whole block through the table and
// crosses block boundaries through explicit in-edges, so the searched
// frontier touches far fewer adjacency lists than plain BFS.
package blinks

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/partition"
	"bigindex/internal/search"
)

// Options configures the Blinks instance.
type Options struct {
	// DMax is the pruning threshold τ_prune: answer roots must reach every
	// keyword within DMax hops (the paper's experiments use 5).
	DMax int
	// BlockSize is the partition target block size (the paper's METIS
	// average block size was 1000 on million-vertex graphs; scale with the
	// dataset).
	BlockSize int
	// Score is the ranking function of Sec. 5.3's API (rank by scr over the
	// per-keyword distance vector); nil uses the distance sum of He et al.
	// Top-k early termination assumes the distance-based score; with a
	// custom Score the search exhausts the d_max horizon before truncating,
	// and rank preservation across index layers (Prop 5.3) is the caller's
	// responsibility.
	Score search.ScoreFunc
}

// Algorithm is the Blinks plug-in.
type Algorithm struct {
	opt Options
}

// New returns a Blinks instance.
func New(opt Options) *Algorithm {
	if opt.DMax < 1 {
		opt.DMax = 1
	}
	if opt.BlockSize < 1 {
		opt.BlockSize = 128
	}
	return &Algorithm{opt: opt}
}

// Name implements search.Algorithm.
func (a *Algorithm) Name() string { return "blinks" }

// DMax returns the configured distance bound.
func (a *Algorithm) DMax() int { return a.opt.DMax }

// Prepare implements search.Algorithm: it partitions the graph and builds
// the bi-level index. This is index construction time, not query time.
func (a *Algorithm) Prepare(g *graph.Graph) (search.Prepared, error) {
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("blinks: empty graph")
	}
	part := partition.BFSGrow(g, a.opt.BlockSize)

	// local[v] holds the intra-block backward distance rows: for target v,
	// every x in v's block with an intra-block path x ->* v of length <= DMax
	// (excluding x == v). Blocks are independent, so table construction is
	// sharded across CPUs deterministically.
	local := make([][]entry, g.NumVertices())
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	var next atomic.Int64
	nBlocks := part.NumBlocks()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				buildBlockTables(g, part, b, a.opt.DMax, local)
			}
		}()
	}
	wg.Wait()

	// hasKeyword[b] is the block-keyword index: the labels present in block
	// b, used to seed expansion only in relevant blocks.
	hasKeyword := make([]map[graph.Label]bool, part.NumBlocks())
	for b, members := range part.Blocks {
		m := make(map[graph.Label]bool)
		for _, v := range members {
			m[g.Label(v)] = true
		}
		hasKeyword[b] = m
	}

	return &prepared{g: g, part: part, local: local, hasKw: hasKeyword, opt: a.opt}, nil
}

type entry struct {
	v graph.V
	d int
}

// buildBlockTables runs, for every vertex t of block b, a backward BFS
// restricted to intra-block edges, bounded by dmax, and records the rows in
// local[t].
func buildBlockTables(g *graph.Graph, part *partition.Partitioning, b, dmax int, local [][]entry) {
	for _, t := range part.Blocks[b] {
		dist := map[graph.V]int{t: 0}
		queue := []graph.V{t}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			dv := dist[v]
			if dv == dmax {
				continue
			}
			for _, u := range g.In(v) {
				if part.BlockOf[u] != b {
					continue
				}
				if _, ok := dist[u]; !ok {
					dist[u] = dv + 1
					queue = append(queue, u)
					local[t] = append(local[t], entry{u, dv + 1})
				}
			}
		}
	}
}

type prepared struct {
	g     *graph.Graph
	part  *partition.Partitioning
	local [][]entry
	hasKw []map[graph.Label]bool
	opt   Options
}

// pqItem is a tentative backward distance for one keyword's expansion.
type pqItem struct {
	v graph.V
	d int
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].d < p[j].d || (p[i].d == p[j].d && p[i].v < p[j].v) }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// Search implements search.Prepared: round-robin backward expansion of the
// keywords' priority queues ("expanding backward and forward", Sec. 5.3),
// with the BLINKS top-k stopping rule.
func (p *prepared) Search(q []graph.Label, k int) ([]search.Match, error) {
	return p.SearchCtx(context.Background(), q, k)
}

// SearchCtx implements search.Prepared with cooperative cancellation: every
// finalize event (queue pop) is a (throttled) checkpoint, and on
// cancellation the answers emitted so far are returned with the context's
// error.
func (p *prepared) SearchCtx(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("blinks: empty query")
	}
	cancel := search.NewCanceller(ctx)
	sp := obs.SpanFromContext(ctx)
	led := obs.LedgerFromContext(ctx)
	finalized := 0
	frontierPeak := 0
	earlyStop := false
	n := len(q)
	queues := make([]*pq, n)
	final := make([]map[graph.V]int, n)
	for i, l := range q {
		// Block-keyword index: if no block contains the keyword, the query
		// has no answers — checked before touching posting lists, as in
		// BLINKS' block pruning.
		present := false
		for _, m := range p.hasKw {
			if m[l] {
				present = true
				break
			}
		}
		if !present {
			return nil, nil
		}
		h := &pq{}
		for _, s := range p.g.VerticesWithLabel(l) {
			heap.Push(h, pqItem{s, 0})
		}
		queues[i] = h
		final[i] = make(map[graph.V]int)
	}

	haveAll := make(map[graph.V]int) // vertex -> number of finalized keywords
	var matches []search.Match
	score := p.opt.Score
	if score == nil {
		score = search.SumDistances
	}
	emit := func(v graph.V) {
		dists := make([]int, n)
		for i := range q {
			dists[i] = final[i][v]
		}
		matches = append(matches, search.Match{
			Root:  v,
			Nodes: search.WitnessNodes(p.g, v, q, dists),
			Dists: dists,
			Score: score(dists),
		})
	}

	for {
		if cancel.Cancelled() {
			break
		}
		// Stopping rule: every queue empty, or top-k bound reached. Any
		// future root is emitted at a finalize event popped from some live
		// queue, so its score is at least the smallest live queue top.
		live := -1
		smallest := -1
		minTop := -1
		queued := 0
		for i, h := range queues {
			queued += h.Len()
			if h.Len() == 0 {
				continue
			}
			top := (*h)[0].d
			if minTop == -1 || top < minTop {
				minTop = top
			}
			if live == -1 || h.Len() < smallest {
				live, smallest = i, h.Len()
			}
		}
		if queued > frontierPeak {
			frontierPeak = queued
		}
		if live == -1 {
			break
		}
		if k > 0 && len(matches) >= k && p.opt.Score == nil {
			search.SortMatches(matches)
			if matches[k-1].Score <= float64(minTop) {
				earlyStop = true
				break
			}
		}

		h := queues[live]
		it := heap.Pop(h).(pqItem)
		if _, ok := final[live][it.v]; ok {
			continue
		}
		finalized++
		final[live][it.v] = it.d
		if haveAll[it.v]++; haveAll[it.v] == n {
			emit(it.v)
		}

		// Bi-level relaxation: bulk in-block rows, then cross-block edges.
		for _, e := range p.local[it.v] {
			if it.d+e.d <= p.opt.DMax {
				if _, ok := final[live][e.v]; !ok {
					heap.Push(h, pqItem{e.v, it.d + e.d})
				}
			}
		}
		if it.d+1 <= p.opt.DMax {
			vb := p.part.BlockOf[it.v]
			for _, u := range p.g.In(it.v) {
				if p.part.BlockOf[u] == vb {
					continue // intra-block handled by the table
				}
				if _, ok := final[live][u]; !ok {
					heap.Push(h, pqItem{u, it.d + 1})
				}
			}
		}
	}

	if sp != nil {
		sp.SetAttr("finalized", finalized).
			SetAttr("roots", len(matches)).
			SetAttr("early_topk", earlyStop)
	}
	led.AddExpanded(int64(finalized))
	led.NoteFrontier(int64(frontierPeak))
	search.SortMatches(matches)
	return search.Truncate(matches, k), cancel.Err()
}

// NewGeneration implements search.Algorithm; Blinks shares the rooted
// generation/verification step with bkws (Sec. 5.3 step (3) says it is the
// same as boost-bkws).
func (a *Algorithm) NewGeneration(data *graph.Graph, q []graph.Label, opt search.GenOptions) search.Generation {
	return search.NewRootedGeneration(data, q, a.opt.DMax, a.opt.Score, opt)
}

// IndexStats reports the size of a prepared bi-level index; used by
// experiment reports.
type IndexStats struct {
	Blocks     int
	EdgeCut    int
	TableRows  int
	AvgRowsPer float64
	// KeywordBlocks is the total size of the block-keyword index (number
	// of (block, label) pairs) — the bitmap BLINKS consults to skip blocks
	// during expansion.
	KeywordBlocks int
}

// Stats returns index statistics for a Prepared produced by this package.
func Stats(p search.Prepared) (IndexStats, bool) {
	bp, ok := p.(*prepared)
	if !ok {
		return IndexStats{}, false
	}
	rows := 0
	for _, l := range bp.local {
		rows += len(l)
	}
	kb := 0
	for _, m := range bp.hasKw {
		kb += len(m)
	}
	return IndexStats{
		Blocks:        bp.part.NumBlocks(),
		EdgeCut:       bp.part.EdgeCut(),
		TableRows:     rows,
		AvgRowsPer:    float64(rows) / float64(max(1, bp.g.NumVertices())),
		KeywordBlocks: kb,
	}, true
}

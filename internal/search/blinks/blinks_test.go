package blinks

import (
	"math/rand"
	"testing"

	"bigindex/internal/graph"
	"bigindex/internal/search"
	"bigindex/internal/search/bkws"
)

func randomGraph(rng *rand.Rand, n, e, labels int) *graph.Graph {
	b := graph.NewBuilder(nil)
	ls := make([]graph.Label, labels)
	for i := range ls {
		ls[i] = b.Dict().Intern(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		b.AddVertexLabel(ls[rng.Intn(labels)])
	}
	for i := 0; i < e; i++ {
		b.AddEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	return b.Build()
}

func matchKeys(ms []search.Match) map[string]float64 {
	out := map[string]float64{}
	for _, m := range ms {
		out[m.Key()] = m.Score
	}
	return out
}

// TestAgreesWithBkws: Blinks implements the same distinct-root semantics as
// bkws, so exhaustive answer sets must be identical regardless of how the
// graph is partitioned.
func TestAgreesWithBkws(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := bkws.New(3)
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(4*n), 2+rng.Intn(3))
		nq := 1 + rng.Intn(3)
		q := make([]graph.Label, nq)
		for i := range q {
			q[i] = graph.Label(1 + rng.Intn(g.Dict().Len()))
		}
		bp, err := base.Prepare(g)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := bp.Search(q, 0)

		for _, blockSize := range []int{1, 3, 8, 1000} {
			algo := New(Options{DMax: 3, BlockSize: blockSize})
			p, err := algo.Prepare(g)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Search(q, 0)
			if err != nil {
				t.Fatal(err)
			}
			gm, wm := matchKeys(got), matchKeys(want)
			if len(gm) != len(wm) {
				t.Fatalf("trial %d block %d: %d matches, bkws %d\nq=%v edges=%v",
					trial, blockSize, len(gm), len(wm), q, g.Edges())
			}
			for k, s := range wm {
				if gs, ok := gm[k]; !ok || gs != s {
					t.Fatalf("trial %d block %d: key %s got %v want %v", trial, blockSize, k, gs, s)
				}
			}
		}
	}
}

func TestTopKScoresMatchFullRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	algo := New(Options{DMax: 4, BlockSize: 5})
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(5*n), 3)
		q := []graph.Label{1, 2}
		p, _ := algo.Prepare(g)
		all, _ := p.Search(q, 0)
		for _, k := range []int{1, 3, 7} {
			topk, _ := p.Search(q, k)
			if len(topk) != min(k, len(all)) {
				t.Fatalf("trial %d top-%d returned %d of %d", trial, k, len(topk), len(all))
			}
			for i := range topk {
				if topk[i].Score != all[i].Score {
					t.Fatalf("trial %d top-%d score[%d] = %v, want %v", trial, k, i, topk[i].Score, all[i].Score)
				}
			}
		}
	}
}

func TestStatsAndEmptyGraph(t *testing.T) {
	if _, err := New(Options{DMax: 3}).Prepare(graph.NewBuilder(nil).Build()); err == nil {
		t.Fatal("empty graph should be rejected")
	}
	g := randomGraph(rand.New(rand.NewSource(2)), 30, 60, 3)
	algo := New(Options{DMax: 3, BlockSize: 8})
	p, err := algo.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := Stats(p)
	if !ok {
		t.Fatal("Stats should recognize its own Prepared")
	}
	if st.Blocks < 30/8 {
		t.Fatalf("too few blocks: %+v", st)
	}
	if st.TableRows == 0 {
		t.Fatal("intra-block tables empty")
	}
}

func TestMissingKeywordAndEmptyQuery(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(3)), 10, 20, 2)
	algo := New(Options{DMax: 3, BlockSize: 4})
	p, _ := algo.Prepare(g)
	if _, err := p.Search(nil, 0); err == nil {
		t.Fatal("empty query should error")
	}
	missing := g.Dict().Intern("nope")
	ms, err := p.Search([]graph.Label{missing}, 0)
	if err != nil || ms != nil {
		t.Fatalf("missing keyword: %v %v", ms, err)
	}
}

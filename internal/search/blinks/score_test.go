package blinks

import (
	"math/rand"
	"testing"

	"bigindex/internal/graph"
	"bigindex/internal/search"
)

// TestCustomScore: the Sec. 5.3 ranking API — a caller-supplied score
// function reorders results, and generation recomputes the same scores so
// boosted answers stay consistent.
func TestCustomScore(t *testing.T) {
	maxDist := func(dists []int) float64 {
		m := 0
		for _, d := range dists {
			if d > m {
				m = d
			}
		}
		return float64(m)
	}
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(4*n), 3)
		q := []graph.Label{1, 2}

		def := New(Options{DMax: 3, BlockSize: 8})
		custom := New(Options{DMax: 3, BlockSize: 8, Score: maxDist})
		pd, _ := def.Prepare(g)
		pc, _ := custom.Prepare(g)
		dms, _ := pd.Search(q, 0)
		cms, _ := pc.Search(q, 0)
		if len(dms) != len(cms) {
			t.Fatalf("trial %d: answer sets differ in size", trial)
		}
		// Same roots and distance vectors; scores per the custom function.
		dk, ck := map[string][]int{}, map[string][]int{}
		for _, m := range dms {
			dk[m.Key()] = m.Dists
		}
		for _, m := range cms {
			ck[m.Key()] = m.Dists
			if m.Score != maxDist(m.Dists) {
				t.Fatalf("trial %d: custom score not applied", trial)
			}
		}
		for k := range dk {
			if _, ok := ck[k]; !ok {
				t.Fatalf("trial %d: custom scoring changed the answer set", trial)
			}
		}
		// Generation recomputes the custom score identically.
		gen := custom.NewGeneration(g, q, search.GenOptions{PathBased: true})
		all := make([]graph.V, n)
		for i := range all {
			all[i] = graph.V(i)
		}
		for _, m := range gen.Generate(all, nil) {
			if m.Score != maxDist(m.Dists) {
				t.Fatalf("trial %d: generation ignored the custom score", trial)
			}
		}
		// Top-k with a custom score still truncates correctly (no early
		// stop, exhaust-then-truncate).
		top, _ := pc.Search(q, 2)
		if len(cms) >= 2 && len(top) != 2 {
			t.Fatalf("trial %d: top-2 returned %d", trial, len(top))
		}
		for i := 1; i < len(top); i++ {
			if top[i].Score < top[i-1].Score {
				t.Fatalf("trial %d: custom-score results unsorted", trial)
			}
		}
	}
}

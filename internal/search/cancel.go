package search

import "context"

// cancelCheckInterval is how many Cancelled calls pass between real context
// polls. A power of two keeps the hot-path check one increment, one mask,
// and one predictable branch; 256 expansions is far below the latency any
// caller can observe, so cancellation still lands "promptly" from the
// client's point of view.
const cancelCheckInterval = 256

// Canceller is a branch-cheap cooperative cancellation checkpoint for
// search inner loops. Frontier expansions and candidate scans call
// Cancelled once per unit of work; the context itself is only polled every
// cancelCheckInterval calls (and on the very first call, so an
// already-expired deadline is noticed before any real work happens).
//
// Once cancelled, Cancelled keeps returning true and Err reports the
// cancellation cause, letting loops drain out and return the sound partial
// results accumulated so far.
type Canceller struct {
	ctx   context.Context
	done  <-chan struct{}
	calls int
	err   error
}

// NewCanceller returns a checkpoint for ctx. A nil or Background context
// yields a canceller that never fires, so unconditional instrumentation of
// the hot loops costs only the counter increment.
func NewCanceller(ctx context.Context) *Canceller {
	if ctx == nil {
		return &Canceller{}
	}
	return &Canceller{ctx: ctx, done: ctx.Done()}
}

// Cancelled reports whether the context has been cancelled, polling it on
// the first call and then every cancelCheckInterval-th call.
func (c *Canceller) Cancelled() bool {
	if c.err != nil {
		return true
	}
	if c.done == nil {
		return false
	}
	c.calls++
	if c.calls&(cancelCheckInterval-1) != 1 {
		return false
	}
	select {
	case <-c.done:
		c.err = context.Cause(c.ctx)
		return true
	default:
		return false
	}
}

// Err returns the cancellation cause once Cancelled has returned true, nil
// before that.
func (c *Canceller) Err() error { return c.err }

package search

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestCancellerNilNeverFires(t *testing.T) {
	for _, c := range []*Canceller{NewCanceller(nil), NewCanceller(context.Background())} {
		for i := 0; i < 4*cancelCheckInterval; i++ {
			if c.Cancelled() {
				t.Fatal("canceller without a cancellable context fired")
			}
		}
		if c.Err() != nil {
			t.Fatalf("Err = %v, want nil", c.Err())
		}
	}
}

// An already-cancelled context must be noticed on the very first checkpoint,
// before any real work happens — the deterministic-test contract.
func TestCancellerFirstCallDetects(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewCanceller(ctx)
	if !c.Cancelled() {
		t.Fatal("first Cancelled() call missed an already-cancelled context")
	}
	if !errors.Is(c.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", c.Err())
	}
	// Sticky: keeps reporting cancelled without re-polling.
	if !c.Cancelled() {
		t.Fatal("Cancelled() not sticky")
	}
}

// Cancellation arriving mid-stream is observed within one poll interval.
func TestCancellerThrottledDetection(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewCanceller(ctx)
	for i := 0; i < 10; i++ {
		if c.Cancelled() {
			t.Fatal("fired before cancellation")
		}
	}
	cancel()
	fired := false
	for i := 0; i < cancelCheckInterval+1; i++ {
		if c.Cancelled() {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatalf("cancellation not observed within %d checkpoints", cancelCheckInterval+1)
	}
}

func TestCancellerReportsDeadlineCause(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	c := NewCanceller(ctx)
	if !c.Cancelled() {
		t.Fatal("expired deadline not detected")
	}
	if !errors.Is(c.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want context.DeadlineExceeded", c.Err())
	}
}

package rclique

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"bigindex/internal/graph"
)

// A pre-cancelled context must stop SearchCtx at its first checkpoint, and
// whatever partial matches come back must be a subset of the exhaustive
// answer set (sound but possibly incomplete). Both the exhaustive (k <= 0)
// and the center-based top-k paths carry checkpoints.
func TestSearchCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomGraph(rng, 20, 60, 2)
	p, err := New(2).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	q := []graph.Label{1, 2}
	full, err := p.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	fullKeys := matchKeys(full)

	for _, k := range []int{0, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ms, err := p.SearchCtx(ctx, q, k)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("k=%d: err = %v, want context.Canceled", k, err)
		}
		for _, m := range ms {
			if _, ok := fullKeys[m.Key()]; !ok {
				t.Fatalf("k=%d: partial result %s not in the exhaustive answer set", k, m.Key())
			}
		}
	}
}

// SearchCtx under a background context is exactly Search.
func TestSearchCtxBackgroundMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	g := randomGraph(rng, 16, 48, 2)
	p, err := New(2).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	q := []graph.Label{1, 2}
	want, err := p.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.SearchCtx(context.Background(), q, 0)
	if err != nil {
		t.Fatalf("background SearchCtx errored: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("SearchCtx found %d matches, Search found %d", len(got), len(want))
	}
}

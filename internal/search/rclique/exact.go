package rclique

import (
	"fmt"

	"bigindex/internal/graph"
	"bigindex/internal/search"
)

// Exact top-k by branch and bound — Kargar & An's exact counterpart to the
// center-based approximation. Tuples are grown in specialization order
// (smallest candidate set first); a partial tuple is pruned when a lower
// bound on its completed weight already exceeds the current k-th best:
//
//	lb(partial) = Σ_{placed pairs} dist
//	            + Σ_{remaining keyword j} Σ_{placed p} minDist(p, V_qj)
//
// where minDist(p, V_qj) is read off p's neighbor-index row in one scan.
// The bound is admissible (every completion must pay at least the minimum
// distance from each placed node to some node of each remaining keyword),
// so the result is the exact top-k.

// SearchExact returns the exact top-k answers (k <= 0 behaves like the
// exhaustive Search). The receiver algorithm's Prepare must have been used
// to obtain p; this is exposed through ExactTopK below.
func (p *prepared) SearchExact(q []graph.Label, k int) ([]search.Match, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("rclique: empty query")
	}
	sets := make([][]graph.V, len(q))
	for i, l := range q {
		sets[i] = p.g.VerticesWithLabel(l)
		if len(sets[i]) == 0 {
			return nil, nil
		}
	}
	if k <= 0 {
		var work int64
		return p.exhaustive(search.NewCanceller(nil), q, sets, &work), nil
	}

	order := bySizeOrder(sets)

	// minD[v][j]: min distance from v to any vertex of keyword j (within
	// R), or -1. Computed lazily per vertex by one neighbor-row scan.
	minD := make(map[graph.V][]int)
	slot := make([]int32, p.g.Dict().Len()+1)
	var extra map[graph.Label][]int
	for j, l := range q {
		if slot[l] == 0 {
			slot[l] = int32(j) + 1
		} else {
			if extra == nil {
				extra = make(map[graph.Label][]int)
			}
			extra[l] = append(extra[l], j)
		}
	}
	minOf := func(v graph.V) []int {
		if m, ok := minD[v]; ok {
			return m
		}
		m := make([]int, len(q))
		for j := range m {
			m[j] = -1
		}
		fold := func(w graph.V, d int) {
			l := p.g.Label(w)
			if ji := slot[l]; ji != 0 {
				j := int(ji - 1)
				if m[j] < 0 || d < m[j] {
					m[j] = d
				}
			}
			if extra != nil {
				for _, j := range extra[l] {
					if m[j] < 0 || d < m[j] {
						m[j] = d
					}
				}
			}
		}
		fold(v, 0)
		for _, e := range p.nbr[v] {
			fold(e.w, e.d)
		}
		minD[v] = m
		return m
	}

	// Top-k state: worst kept weight (∞ until k found).
	var best []search.Match
	worst := -1.0
	consider := func(tuple []graph.V, weight float64) {
		m := search.Match{Root: tuple[0], Nodes: append([]graph.V(nil), tuple...), Score: weight}
		best = append(best, m)
		search.SortMatches(best)
		if len(best) > k {
			best = best[:k]
		}
		if len(best) == k {
			worst = best[k-1].Score
		}
	}

	tuple := make([]graph.V, len(q))
	var rec func(step int, pairSum int)
	rec = func(step int, pairSum int) {
		if step == len(order) {
			consider(tuple, float64(pairSum))
			return
		}
		ki := order[step]
		for _, v := range sets[ki] {
			// Feasibility + incremental pair sum.
			ok := true
			add := 0
			for _, j := range order[:step] {
				d, within := p.dist(tuple[j], v)
				if !within {
					ok = false
					break
				}
				add += d
			}
			if !ok {
				continue
			}
			newSum := pairSum + add

			// Admissible bound over remaining keywords.
			if worst >= 0 {
				lb := newSum
				for _, jr := range order[step+1:] {
					for si := 0; si <= step; si++ {
						pj := order[si]
						var pv graph.V
						if pj == ki {
							pv = v
						} else {
							pv = tuple[pj]
						}
						md := minOf(pv)[jr]
						if md < 0 {
							ok = false
							break
						}
						lb += md
					}
					if !ok {
						break
					}
				}
				if !ok || float64(lb) > worst {
					continue
				}
			}

			tuple[ki] = v
			rec(step+1, newSum)
		}
	}
	rec(0, 0)
	search.SortMatches(best)
	return best, nil
}

// ExactTopK runs the exact branch-and-bound top-k against a Prepared
// produced by this package's Algorithm. It returns false when p is not an
// r-clique index.
func ExactTopK(prep search.Prepared, q []graph.Label, k int) ([]search.Match, bool, error) {
	rp, ok := prep.(*prepared)
	if !ok {
		return nil, false, nil
	}
	ms, err := rp.SearchExact(q, k)
	return ms, true, err
}

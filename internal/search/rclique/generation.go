package rclique

import (
	"context"

	"bigindex/internal/graph"
	"bigindex/internal/search"
)

// generation is r-clique's Step-5 answer generation: enumerate concrete
// tuples from the specialized per-keyword candidate sets of a generalized
// answer and verify every pairwise distance on the data graph. Vertex
// qualification (Def. 4.2 instantiated for this semantics) is "the new node
// is within R of every node already in the partial answer".
//
// Vertex-at-a-time mode recomputes a bounded traversal per qualification
// check; path-based mode memoizes one traversal per candidate vertex in a
// session-wide cache shared across partial answers and generalized answers
// (Sec. 4.3.3's duplicated-computation elimination).
type generation struct {
	g      *graph.Graph
	q      []graph.Label
	r      int
	opt    search.GenOptions
	cache  map[graph.V]map[graph.V]int
	seen   map[string]bool
	count  int
	checks int
	stats  search.GenStats
}

// Stats implements search.StatsReporter. Path-based mode answers
// qualification from the shared memoized traversals (Def. 4.3 style);
// vertex-at-a-time mode re-traverses per check (Def. 4.2 style).
func (gen *generation) Stats() search.GenStats { return gen.stats }

func (gen *generation) exhausted() bool {
	return gen.opt.MaxChecks > 0 && gen.checks > gen.opt.MaxChecks
}

// Generate implements search.Generation.
func (gen *generation) Generate(rootCands []graph.V, cands [][]graph.V) []search.Match {
	return gen.GenerateCtx(context.Background(), rootCands, cands)
}

// GenerateCtx implements search.Generation with cooperative cancellation:
// the combinatorial tuple recursion checks the context at every step, so a
// cancelled session stops generating and returns the verified tuples built
// so far.
func (gen *generation) GenerateCtx(ctx context.Context, rootCands []graph.V, cands [][]graph.V) []search.Match {
	cancel := search.NewCanceller(ctx)
	if len(cands) != len(gen.q) {
		return nil
	}
	for _, c := range cands {
		if len(c) == 0 {
			return nil
		}
	}

	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	if gen.opt.SpecOrder {
		order = bySizeOrder(cands)
	}

	var out []search.Match
	tuple := make([]graph.V, len(gen.q))
	earlyK := false
	var rec func(step int)
	rec = func(step int) {
		if gen.opt.K > 0 && gen.count >= gen.opt.K {
			earlyK = true
			return
		}
		if gen.exhausted() || cancel.Cancelled() {
			return
		}
		if step == len(order) {
			m := gen.makeMatch(tuple)
			if !gen.seen[m.Key()] {
				gen.seen[m.Key()] = true
				out = append(out, m)
				gen.count++
			}
			return
		}
		i := order[step]
		for _, v := range cands[i] {
			if cancel.Cancelled() {
				return
			}
			if gen.g.Label(v) != gen.q[i] {
				continue // Prop 4.1 filtering; defensive, normally pre-filtered
			}
			ok := true
			for _, j := range order[:step] {
				if !gen.within(tuple[j], v) {
					ok = false
					break
				}
			}
			if ok {
				tuple[i] = v
				rec(step + 1)
			}
		}
	}
	rec(0)
	if earlyK {
		gen.stats.EarlyKStops++
	}
	return out
}

func (gen *generation) within(u, v graph.V) bool {
	gen.checks++
	_, ok := gen.distOf(u, v)
	if gen.opt.PathBased {
		gen.stats.PathChecks++
		if ok {
			gen.stats.PathQualified++
		}
	} else {
		gen.stats.VertexChecks++
		if ok {
			gen.stats.VertexQualified++
		}
	}
	return ok
}

// distOf returns the undirected distance between u and v when it is <= R.
func (gen *generation) distOf(u, v graph.V) (int, bool) {
	if u == v {
		return 0, true
	}
	if gen.opt.PathBased {
		dm, ok := gen.cache[u]
		if !ok {
			dm = search.UndirectedDists(gen.g, u, gen.r)
			gen.cache[u] = dm
		}
		d, ok := dm[v]
		return d, ok
	}
	// Vertex-at-a-time: fresh bounded traversal per check.
	dm := search.UndirectedDists(gen.g, u, gen.r)
	d, ok := dm[v]
	return d, ok
}

func (gen *generation) makeMatch(tuple []graph.V) search.Match {
	nodes := append([]graph.V(nil), tuple...)
	score := 0
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if d, ok := gen.distOf(nodes[i], nodes[j]); ok {
				score += d
			} else {
				score += 2 * gen.r
			}
		}
	}
	return search.Match{Root: nodes[0], Nodes: nodes, Score: float64(score)}
}

// Package rclique implements the distance-based keyword search of Kargar &
// An (PVLDB'11), the dkws semantics of Sec. 5.2: an answer is one node per
// query keyword such that every pair of chosen nodes is within r hops
// (undirected), scored by the total pairwise distance.
//
// Like the original, the package builds a neighbor index — for every vertex,
// the vertices within R hops with their distances — whose O(n·m) footprint
// is the scalability weakness the paper demonstrates on IMDB (a 16 TB
// estimate); MaxEntries reproduces that failure mode by refusing to build
// oversized indexes. Top-k search uses the center-based 2-approximation plus
// Lawler-style search-space decomposition; exhaustive search (k <= 0)
// enumerates every feasible tuple and is exact (used by the framework's
// correctness guarantees and tests).
package rclique

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/search"
)

// Options configures the r-clique instance.
type Options struct {
	// R is the pairwise distance bound (the paper's experiments use R = 4).
	R int
	// MaxEntries caps the neighbor index size (total (vertex, neighbor)
	// pairs); 0 means unlimited. Prepare returns ErrIndexTooLarge beyond it.
	MaxEntries int
}

// ErrIndexTooLarge is returned by Prepare when the neighbor index would
// exceed Options.MaxEntries — the IMDB failure mode of Exp-1.
var ErrIndexTooLarge = fmt.Errorf("rclique: neighbor index exceeds the configured size cap")

// Algorithm is the r-clique plug-in.
type Algorithm struct {
	opt Options
}

// New returns an r-clique instance with pairwise bound r.
func New(r int) *Algorithm { return NewWithOptions(Options{R: r}) }

// NewWithOptions returns an r-clique instance with full options.
func NewWithOptions(opt Options) *Algorithm {
	if opt.R < 1 {
		opt.R = 1
	}
	return &Algorithm{opt: opt}
}

// Name implements search.Algorithm.
func (a *Algorithm) Name() string { return "rclique" }

// R returns the configured distance bound.
func (a *Algorithm) R() int { return a.opt.R }

// Rootless implements search.Rootless: r-clique answers are node sets with
// no distinguished root.
func (a *Algorithm) Rootless() bool { return true }

// nbrEntry is one neighbor-index row: w is within d undirected hops.
type nbrEntry struct {
	w graph.V
	d int
}

type prepared struct {
	g   *graph.Graph
	opt Options
	nbr [][]nbrEntry // nbr[v] sorted by w; excludes v itself
}

// Prepare implements search.Algorithm: it builds the neighbor index (one
// bounded undirected BFS per vertex, sharded across CPUs — rows are
// independent, so parallel construction is deterministic).
func (a *Algorithm) Prepare(g *graph.Graph) (search.Prepared, error) {
	n := g.NumVertices()
	p := &prepared{g: g, opt: a.opt, nbr: make([][]nbrEntry, n)}

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = max(1, n)
	}
	var wg sync.WaitGroup
	var total atomic.Int64
	var next atomic.Int64
	const chunk = 256
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= n {
					return
				}
				hi := min(lo+chunk, n)
				for v := lo; v < hi; v++ {
					if a.opt.MaxEntries > 0 && total.Load() > int64(a.opt.MaxEntries) {
						return // budget blown; stop early
					}
					dm := search.UndirectedDists(g, graph.V(v), a.opt.R)
					row := make([]nbrEntry, 0, len(dm)-1)
					for w, d := range dm {
						if w != graph.V(v) {
							row = append(row, nbrEntry{w, d})
						}
					}
					sort.Slice(row, func(i, j int) bool { return row[i].w < row[j].w })
					p.nbr[v] = row
					total.Add(int64(len(row)))
				}
			}
		}()
	}
	wg.Wait()
	if a.opt.MaxEntries > 0 && int(total.Load()) > a.opt.MaxEntries {
		return nil, fmt.Errorf("%w: > %d entries", ErrIndexTooLarge, a.opt.MaxEntries)
	}
	return p, nil
}

// EstimateEntries estimates the neighbor index size without materializing it
// by sampling nSample vertices; reported by the experiment that reproduces
// the paper's IMDB infeasibility claim.
func (a *Algorithm) EstimateEntries(g *graph.Graph, nSample int) int {
	if g.NumVertices() == 0 {
		return 0
	}
	if nSample <= 0 || nSample > g.NumVertices() {
		nSample = g.NumVertices()
	}
	step := g.NumVertices() / nSample
	if step == 0 {
		step = 1
	}
	sum, cnt := 0, 0
	for v := 0; v < g.NumVertices(); v += step {
		sum += len(search.UndirectedDists(g, graph.V(v), a.opt.R)) - 1
		cnt++
	}
	return sum / cnt * g.NumVertices()
}

// dist looks up the indexed distance between u and w; ok is false when the
// pair is farther than R apart.
func (p *prepared) dist(u, w graph.V) (int, bool) {
	if u == w {
		return 0, true
	}
	row := p.nbr[u]
	i := sort.Search(len(row), func(i int) bool { return row[i].w >= w })
	if i < len(row) && row[i].w == w {
		return row[i].d, true
	}
	return 0, false
}

// Search implements search.Prepared.
func (p *prepared) Search(q []graph.Label, k int) ([]search.Match, error) {
	return p.SearchCtx(context.Background(), q, k)
}

// SearchCtx implements search.Prepared with cooperative cancellation:
// tuple enumeration (exhaustive mode) and center scans (top-k mode) are
// (throttled) checkpoints — the combinatorial candidate products are
// exactly where this semantics blows up — and on cancellation the feasible
// tuples found so far are returned with the context's error.
func (p *prepared) SearchCtx(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("rclique: empty query")
	}
	cancel := search.NewCanceller(ctx)
	sets := make([][]graph.V, len(q))
	for i, l := range q {
		sets[i] = p.g.VerticesWithLabel(l)
		if len(sets[i]) == 0 {
			return nil, nil
		}
	}
	sp := obs.SpanFromContext(ctx)
	led := obs.LedgerFromContext(ctx)
	// work counts candidate considerations (tuple extensions in exhaustive
	// mode, center scans in top-k mode). It lives on the stack, not in
	// prepared, because a prepared index serves concurrent queries.
	var work int64
	if k <= 0 {
		out := p.exhaustive(cancel, q, sets, &work)
		if sp != nil {
			sp.SetAttr("mode", "exhaustive").SetAttr("matches", len(out)).SetAttr("work", work)
		}
		led.AddExpanded(work)
		return out, cancel.Err()
	}
	out := p.topK(cancel, q, sets, k, &work, led)
	if sp != nil {
		sp.SetAttr("mode", "topk").SetAttr("matches", len(out)).SetAttr("work", work)
	}
	led.AddExpanded(work)
	return out, cancel.Err()
}

// exhaustive enumerates every feasible tuple: exact semantics, used for
// correctness testing and as the completeness source when r-clique runs on
// summary layers under BiG-index.
func (p *prepared) exhaustive(cancel *search.Canceller, q []graph.Label, sets [][]graph.V, work *int64) []search.Match {
	order := bySizeOrder(sets)
	var out []search.Match
	tuple := make([]graph.V, len(q))
	var rec func(step int)
	rec = func(step int) {
		if cancel.Cancelled() {
			return
		}
		if step == len(order) {
			out = append(out, p.makeMatch(tuple))
			return
		}
		i := order[step]
		for _, v := range sets[i] {
			if cancel.Cancelled() {
				return
			}
			*work++
			ok := true
			for _, j := range order[:step] {
				if _, within := p.dist(tuple[j], v); !within {
					ok = false
					break
				}
			}
			if ok {
				tuple[i] = v
				rec(step + 1)
			}
		}
	}
	rec(0)
	search.SortMatches(out)
	return out
}

func bySizeOrder(sets [][]graph.V) []int {
	order := make([]int, len(sets))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int { return len(sets[a]) - len(sets[b]) })
	return order
}

func (p *prepared) makeMatch(tuple []graph.V) search.Match {
	nodes := append([]graph.V(nil), tuple...)
	score := 0
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			d, ok := p.dist(nodes[i], nodes[j])
			if !ok {
				// Pairwise distance beyond R (possible for approximate
				// answers, bounded by 2R through the center); recompute.
				d = undirDist(p.g, nodes[i], nodes[j], 2*p.opt.R)
			}
			score += d
		}
	}
	return search.Match{Root: nodes[0], Nodes: nodes, Score: float64(score)}
}

func undirDist(g *graph.Graph, u, w graph.V, limit int) int {
	dm := search.UndirectedDists(g, u, limit)
	if d, ok := dm[w]; ok {
		return d
	}
	return limit + 1
}

// spState is a Lawler search-space: the full per-keyword candidate sets
// with per-keyword exclusion sets, plus its best approximate answer.
// Exclusion sets (instead of copied candidate lists) keep decomposition
// cheap and let bestOf test membership in O(1).
type spState struct {
	sets   [][]graph.V
	excl   []map[graph.V]bool
	best   []graph.V
	weight float64
}

type spHeap []*spState

func (h spHeap) Len() int            { return len(h) }
func (h spHeap) Less(i, j int) bool  { return h[i].weight < h[j].weight }
func (h spHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *spHeap) Push(x interface{}) { *h = append(*h, x.(*spState)) }
func (h *spHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// topK is the Kargar-An procedure: compute the approximate best answer of
// the full search space, then repeatedly emit the best space and decompose
// it into n subspaces, each excluding one chosen node.
func (p *prepared) topK(cancel *search.Canceller, q []graph.Label, sets [][]graph.V, k int, work *int64, led *obs.Ledger) []search.Match {
	h := &spHeap{}
	excl := make([]map[graph.V]bool, len(sets))
	if st := p.bestOf(cancel, q, sets, excl, work); st != nil {
		heap.Push(h, st)
	}
	seen := make(map[string]bool)
	var out []search.Match
	for h.Len() > 0 && len(out) < k {
		led.NoteFrontier(int64(h.Len()))
		if cancel.Cancelled() {
			break
		}
		st := heap.Pop(h).(*spState)
		m := p.makeMatch(st.best)
		if !seen[m.Key()] {
			seen[m.Key()] = true
			out = append(out, m)
		}
		for i := range st.sets {
			sub := make([]map[graph.V]bool, len(st.excl))
			for j, e := range st.excl {
				sub[j] = e // shared: only index i gets a fresh copy
			}
			ei := make(map[graph.V]bool, len(st.excl[i])+1)
			for v := range st.excl[i] {
				ei[v] = true
			}
			ei[st.best[i]] = true
			sub[i] = ei
			if len(ei) >= len(st.sets[i]) {
				continue // keyword i exhausted
			}
			if next := p.bestOf(cancel, q, st.sets, sub, work); next != nil {
				heap.Push(h, next)
			}
		}
	}
	search.SortMatches(out)
	return out
}

// bestOf computes the approximate best answer of a search space. Following
// Kargar & An, candidate centers are drawn from a single keyword's node set
// (we pick the smallest, deterministically); the optimal answer contains a
// node of that set, and centering on it bounds the returned weight within
// twice the optimum (their Theorem 2). One scan over the center's neighbor
// row finds, for every other keyword, the nearest non-excluded candidate
// (within R). Deterministic tie-breaks (ascending IDs) keep runs
// reproducible. Returns nil when the space has no feasible centered answer.
func (p *prepared) bestOf(cancel *search.Canceller, q []graph.Label, sets [][]graph.V, excl []map[graph.V]bool, work *int64) *spState {
	var best []graph.V
	bestW := -1.0
	// Dense label -> query-index table: bestOf scans millions of neighbor
	// rows, and a map lookup per entry dominates; a slot array is one
	// bounds-checked load. slot[l] = i+1 for the first query index with
	// label l; extra[l] holds the (rare) additional indices of duplicated
	// query keywords.
	slot := make([]int32, p.g.Dict().Len()+1)
	var extra map[graph.Label][]int
	for j, l := range q {
		if slot[l] == 0 {
			slot[l] = int32(j) + 1
		} else {
			if extra == nil {
				extra = make(map[graph.Label][]int)
			}
			extra[l] = append(extra[l], j)
		}
	}
	nearD := make([]int, len(q))
	nearV := make([]graph.V, len(q))
	center := 0
	for i := 1; i < len(sets); i++ {
		if len(sets[i]) < len(sets[center]) {
			center = i
		}
	}
	{
		i := center
		for _, u := range sets[i] {
			if cancel.Cancelled() {
				break
			}
			if excl[i] != nil && excl[i][u] {
				continue
			}
			*work++
			for j := range nearD {
				nearD[j] = -1
			}
			// u itself satisfies keywords sharing its label at distance 0.
			p.scanCandidate(u, 0, slot, extra, excl, nearD, nearV)
			for _, e := range p.nbr[u] {
				p.scanCandidate(e.w, e.d, slot, extra, excl, nearD, nearV)
			}
			tuple := make([]graph.V, len(sets))
			tuple[i] = u
			ok := true
			for j := range sets {
				if j == i {
					continue
				}
				if nearD[j] < 0 {
					ok = false
					break
				}
				tuple[j] = nearV[j]
			}
			if !ok {
				continue
			}
			w := p.weightOf(tuple)
			if bestW < 0 || w < bestW || (w == bestW && lessTuple(tuple, best)) {
				best, bestW = tuple, w
			}
		}
	}
	if best == nil {
		return nil
	}
	return &spState{sets: sets, excl: excl, best: best, weight: bestW}
}

// scanCandidate folds one neighbor (w at distance d) into the per-keyword
// nearest tables.
func (p *prepared) scanCandidate(w graph.V, d int, slot []int32, extra map[graph.Label][]int, excl []map[graph.V]bool, nearD []int, nearV []graph.V) {
	l := p.g.Label(w)
	ji := slot[l]
	if ji == 0 {
		return
	}
	p.fold(int(ji-1), w, d, excl, nearD, nearV)
	if extra != nil {
		for _, j := range extra[l] {
			p.fold(j, w, d, excl, nearD, nearV)
		}
	}
}

func (p *prepared) fold(j int, w graph.V, d int, excl []map[graph.V]bool, nearD []int, nearV []graph.V) {
	if excl[j] != nil && excl[j][w] {
		return
	}
	if nearD[j] < 0 || d < nearD[j] || (d == nearD[j] && w < nearV[j]) {
		nearD[j], nearV[j] = d, w
	}
}

func (p *prepared) weightOf(tuple []graph.V) float64 {
	w := 0
	for i := 0; i < len(tuple); i++ {
		for j := i + 1; j < len(tuple); j++ {
			d, ok := p.dist(tuple[i], tuple[j])
			if !ok {
				d = 2 * p.opt.R
			}
			w += d
		}
	}
	return float64(w)
}

func lessTuple(a, b []graph.V) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// NewGeneration implements search.Algorithm; see generation in this package.
func (a *Algorithm) NewGeneration(data *graph.Graph, q []graph.Label, opt search.GenOptions) search.Generation {
	return &generation{
		g:     data,
		q:     q,
		r:     a.opt.R,
		opt:   opt,
		cache: make(map[graph.V]map[graph.V]int),
		seen:  make(map[string]bool),
	}
}

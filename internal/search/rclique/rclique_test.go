package rclique

import (
	"errors"
	"math/rand"
	"testing"

	"bigindex/internal/graph"
	"bigindex/internal/search"
)

func randomGraph(rng *rand.Rand, n, e, labels int) *graph.Graph {
	b := graph.NewBuilder(nil)
	ls := make([]graph.Label, labels)
	for i := range ls {
		ls[i] = b.Dict().Intern(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		b.AddVertexLabel(ls[rng.Intn(labels)])
	}
	for i := 0; i < e; i++ {
		b.AddEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	return b.Build()
}

func matchKeys(ms []search.Match) map[string]float64 {
	out := map[string]float64{}
	for _, m := range ms {
		out[m.Key()] = m.Score
	}
	return out
}

// bruteForce enumerates tuples directly with on-the-fly BFS distances.
func bruteForce(g *graph.Graph, q []graph.Label, r int) map[string]float64 {
	sets := make([][]graph.V, len(q))
	for i, l := range q {
		sets[i] = g.VerticesWithLabel(l)
		if len(sets[i]) == 0 {
			return map[string]float64{}
		}
	}
	out := map[string]float64{}
	tuple := make([]graph.V, len(q))
	var rec func(i int)
	rec = func(i int) {
		if i == len(q) {
			score := 0
			for a := 0; a < len(tuple); a++ {
				dm := search.UndirectedDists(g, tuple[a], r)
				for b := a + 1; b < len(tuple); b++ {
					d, ok := dm[tuple[b]]
					if !ok {
						return
					}
					score += d
				}
			}
			m := search.Match{Root: tuple[0], Nodes: append([]graph.V(nil), tuple...), Score: float64(score)}
			out[m.Key()] = m.Score
			return
		}
		for _, v := range sets[i] {
			tuple[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

func TestExhaustiveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	algo := New(2)
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(14)
		g := randomGraph(rng, n, rng.Intn(3*n), 2+rng.Intn(2))
		q := []graph.Label{1, 2}
		p, err := algo.Prepare(g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Search(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(g, q, 2)
		gm := matchKeys(got)
		if len(gm) != len(want) {
			t.Fatalf("trial %d: %d tuples, brute force %d", trial, len(gm), len(want))
		}
		for k, s := range want {
			if gs, ok := gm[k]; !ok || gs != s {
				t.Fatalf("trial %d: key %s got %v want %v", trial, k, gs, s)
			}
		}
	}
}

// TestTopKFirstAnswerQuality: the center-based procedure is a
// 2-approximation of the best answer weight.
func TestTopKFirstAnswerQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	algo := New(3)
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(14)
		g := randomGraph(rng, n, 2*n, 2)
		q := []graph.Label{1, 2}
		p, _ := algo.Prepare(g)
		exact, _ := p.Search(q, 0)
		approx, _ := p.Search(q, 1)
		if len(exact) == 0 {
			if len(approx) != 0 {
				t.Fatalf("trial %d: approx found %v, exact none", trial, approx)
			}
			continue
		}
		if len(approx) == 0 {
			t.Fatalf("trial %d: exact has %d answers but approx none", trial, len(exact))
		}
		best := exact[0].Score
		if approx[0].Score > 2*best+1e-9 {
			t.Fatalf("trial %d: approx %v > 2×best %v", trial, approx[0].Score, best)
		}
	}
}

func TestTopKCountAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	algo := New(2)
	g := randomGraph(rng, 30, 80, 3)
	p, _ := algo.Prepare(g)
	ms, _ := p.Search([]graph.Label{1, 2}, 5)
	if len(ms) > 5 {
		t.Fatalf("top-5 returned %d", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Score < ms[i-1].Score {
			t.Fatal("results not sorted by score")
		}
	}
	// All returned tuples are distinct.
	seen := map[string]bool{}
	for _, m := range ms {
		if seen[m.Key()] {
			t.Fatal("duplicate tuple in top-k")
		}
		seen[m.Key()] = true
	}
}

func TestIndexTooLarge(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(34)), 40, 160, 2)
	algo := NewWithOptions(Options{R: 4, MaxEntries: 10})
	if _, err := algo.Prepare(g); !errors.Is(err, ErrIndexTooLarge) {
		t.Fatalf("want ErrIndexTooLarge, got %v", err)
	}
	if est := algo.EstimateEntries(g, 10); est <= 10 {
		t.Fatalf("estimate %d should exceed the cap", est)
	}
}

func TestGenerationAgreesWithExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	algo := New(2)
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(12)
		g := randomGraph(rng, n, rng.Intn(3*n), 2)
		q := []graph.Label{1, 2}
		p, _ := algo.Prepare(g)
		direct, _ := p.Search(q, 0)
		want := matchKeys(direct)

		cands := make([][]graph.V, len(q))
		for i, l := range q {
			cands[i] = g.VerticesWithLabel(l)
		}
		for _, opt := range []search.GenOptions{
			{},
			{SpecOrder: true},
			{PathBased: true},
			{SpecOrder: true, PathBased: true},
		} {
			gen := algo.NewGeneration(g, q, opt)
			got := matchKeys(gen.Generate(nil, cands))
			if len(got) != len(want) {
				t.Fatalf("trial %d opt %+v: %d generated, want %d", trial, opt, len(got), len(want))
			}
			for k, s := range want {
				if gs, ok := got[k]; !ok || gs != s {
					t.Fatalf("trial %d opt %+v: key %s got %v want %v", trial, opt, k, gs, s)
				}
			}
		}
	}
}

func TestMissingKeyword(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(36)), 10, 20, 2)
	p, _ := New(2).Prepare(g)
	missing := g.Dict().Intern("nothing")
	ms, err := p.Search([]graph.Label{1, missing}, 0)
	if err != nil || len(ms) != 0 {
		t.Fatalf("missing keyword: %v %v", ms, err)
	}
	if _, err := p.Search(nil, 0); err == nil {
		t.Fatal("empty query should error")
	}
}

// TestExactTopKMatchesExhaustive: branch-and-bound must return exactly the
// k best tuples (by score) that exhaustive enumeration finds.
func TestExactTopKMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	algo := New(2)
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(16)
		g := randomGraph(rng, n, rng.Intn(3*n), 2+rng.Intn(2))
		q := []graph.Label{1, 2}
		if rng.Intn(2) == 0 {
			q = append(q, graph.Label(1+rng.Intn(2)))
		}
		p, err := algo.Prepare(g)
		if err != nil {
			t.Fatal(err)
		}
		all, _ := p.Search(q, 0) // exhaustive, sorted
		for _, k := range []int{1, 3, 7} {
			got, ok, err := ExactTopK(p, q, k)
			if err != nil || !ok {
				t.Fatalf("ExactTopK: %v %v", ok, err)
			}
			want := all
			if len(want) > k {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: %d results, want %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i].Score != want[i].Score {
					t.Fatalf("trial %d k=%d rank %d: score %v, want %v", trial, k, i, got[i].Score, want[i].Score)
				}
			}
		}
	}
	// Exact beats (or matches) the approximation by construction.
	g := randomGraph(rand.New(rand.NewSource(72)), 20, 50, 2)
	p, _ := algo.Prepare(g)
	approx, _ := p.Search([]graph.Label{1, 2}, 1)
	exact, ok, _ := ExactTopK(p, []graph.Label{1, 2}, 1)
	if ok && len(approx) > 0 && len(exact) > 0 && exact[0].Score > approx[0].Score {
		t.Fatalf("exact %v worse than approximate %v", exact[0].Score, approx[0].Score)
	}
}

package search

import (
	"context"
	"slices"

	"bigindex/internal/graph"
)

// RootedGeneration is the answer generation + verification step (Sec. 5.1
// step (3), shared by boost-bkws and boost-rkws): candidate roots obtained
// by specializing generalized answer roots are verified against the data
// graph, and per-keyword minimum distances are recomputed there, so every
// emitted match is a true answer (soundness half of Thm 4.2).
//
// Two strategies mirror the paper's ablation:
//
//   - vertex-at-a-time (Algo 3): each (root, keyword) check runs its own
//     bounded forward traversal, re-walking shared neighborhoods — the
//     duplicated computation Sec. 4.3.3 calls out. The specialization-order
//     optimization (Sec. 4.3.2) orders keywords most-selective-first so
//     failing roots are abandoned after the cheapest possible work.
//
//   - path-at-a-time (Algo 4): one multi-source backward traversal per
//     keyword, shared across every candidate root and every generalized
//     answer; verifying a root is then n map lookups.
type RootedGeneration struct {
	g       *graph.Graph
	q       []graph.Label
	dmax    int
	opt     GenOptions
	score   ScoreFunc
	order   []int // keyword check order
	kwDist  []map[graph.V]int
	emitted map[graph.V]bool
	count   int
	// Adaptive switch for path-based mode: building the per-keyword
	// distance maps costs roughly the size of the postings' d_max
	// neighborhoods, which only amortizes over enough candidate roots.
	// Until `verified` exceeds `pathThreshold` the session verifies
	// vertex-at-a-time even in path-based mode, then builds the maps once
	// and answers the rest by lookup.
	verified      int
	pathThreshold int
	stats         GenStats
}

// ScoreFunc maps a per-keyword distance vector to a ranking score (lower is
// better). The default, SumDistances, is the Σ_i dist(r, p_i) of He et al.;
// Sec. 5.3's ranking API lets callers supply their own. Rank preservation
// across layers (Prop 5.3) is guaranteed only for distance-based scores.
type ScoreFunc func(dists []int) float64

// SumDistances is the default distance-based score.
func SumDistances(dists []int) float64 {
	s := 0
	for _, d := range dists {
		s += d
	}
	return float64(s)
}

// NewRootedGeneration opens a rooted generation session. A nil score uses
// SumDistances.
func NewRootedGeneration(g *graph.Graph, q []graph.Label, dmax int, score ScoreFunc, opt GenOptions) *RootedGeneration {
	if score == nil {
		score = SumDistances
	}
	rg := &RootedGeneration{
		g:       g,
		q:       q,
		dmax:    dmax,
		opt:     opt,
		score:   score,
		emitted: make(map[graph.V]bool),
	}
	total := 0
	for _, l := range q {
		total += g.LabelCount(l)
	}
	rg.pathThreshold = max(4, total/16)
	rg.order = make([]int, len(q))
	for i := range q {
		rg.order[i] = i
	}
	if opt.SpecOrder {
		// Fewest specializations first: the label with the smallest posting
		// list is the most selective check.
		slices.SortStableFunc(rg.order, func(a, b int) int {
			return g.LabelCount(q[a]) - g.LabelCount(q[b])
		})
	}
	return rg
}

// Generate implements Generation. Only rootCands matter for rooted
// semantics: per-keyword minimum distances must range over every q_i-labeled
// vertex of the data graph (not only the specialization of the one matched
// supernode), so keyword candidates serve specialization-order statistics
// but not filtering.
func (rg *RootedGeneration) Generate(rootCands []graph.V, cands [][]graph.V) []Match {
	return rg.GenerateCtx(context.Background(), rootCands, cands)
}

// GenerateCtx implements Generation: each candidate-root verification is a
// cancellation checkpoint, so a cancelled context stops the session after
// the current root and returns the verified (sound) matches so far.
func (rg *RootedGeneration) GenerateCtx(ctx context.Context, rootCands []graph.V, cands [][]graph.V) []Match {
	cancel := NewCanceller(ctx)
	var out []Match
	for _, r := range rootCands {
		if rg.opt.K > 0 && rg.count >= rg.opt.K {
			rg.stats.EarlyKStops++
			break
		}
		if cancel.Cancelled() {
			break
		}
		if rg.emitted[r] {
			continue
		}
		rg.emitted[r] = true
		m, ok := rg.verify(r)
		if ok {
			out = append(out, m)
			rg.count++
		}
	}
	return out
}

func (rg *RootedGeneration) verify(r graph.V) (Match, bool) {
	rg.verified++
	useMaps := rg.opt.PathBased && (rg.kwDist != nil || rg.verified > rg.pathThreshold)
	if useMaps && rg.kwDist == nil {
		rg.kwDist = make([]map[graph.V]int, len(rg.q))
	}
	dists := make([]int, len(rg.q))
	for _, i := range rg.order {
		d := -1
		if useMaps && rg.mapWorthwhile(i) {
			// Rare keyword: one shared backward traversal from its small
			// posting list answers every root by lookup.
			if rg.kwDist[i] == nil {
				rg.kwDist[i] = MultiSourceDists(rg.g, rg.g.VerticesWithLabel(rg.q[i]), rg.dmax, graph.Backward)
			}
			rg.stats.PathChecks++
			if dd, ok := rg.kwDist[i][r]; ok {
				d = dd
				rg.stats.PathQualified++
			}
		} else {
			// Popular keyword: a forward probe exits at the first
			// occurrence, usually within a hop or two — cheaper than
			// materializing its near-global distance map.
			rg.stats.VertexChecks++
			d = rg.minDistToLabel(r, rg.q[i])
			if d >= 0 {
				rg.stats.VertexQualified++
			}
		}
		if d < 0 {
			return Match{}, false
		}
		dists[i] = d
	}
	return Match{
		Root:  r,
		Nodes: WitnessNodes(rg.g, r, rg.q, dists),
		Dists: dists,
		Score: rg.score(dists),
	}, true
}

// Stats implements StatsReporter.
func (rg *RootedGeneration) Stats() GenStats { return rg.stats }

// mapWorthwhile decides per keyword whether the shared distance map pays:
// a map's cost grows with the posting's d_max neighborhood, while a
// per-root probe's cost shrinks as the label gets more frequent (it exits
// at the first occurrence). Rare keywords therefore want the map.
func (rg *RootedGeneration) mapWorthwhile(i int) bool {
	n := rg.g.NumVertices()
	return rg.g.LabelCount(rg.q[i])*24 <= n
}

// minDistToLabel is the vertex-at-a-time check: a bounded level-order BFS
// from r that stops at the first level containing label l. Returns -1 if l
// is not reachable within d_max.
func (rg *RootedGeneration) minDistToLabel(r graph.V, l graph.Label) int {
	if rg.g.Label(r) == l {
		return 0
	}
	seen := map[graph.V]bool{r: true}
	level := []graph.V{r}
	for d := 0; d < rg.dmax; d++ {
		var next []graph.V
		for _, v := range level {
			for _, w := range rg.g.Out(v) {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
		}
		for _, w := range next {
			if rg.g.Label(w) == l {
				return d + 1
			}
		}
		level = next
	}
	return -1
}

// WitnessNodes picks, for each keyword, the smallest-ID vertex of that
// label at the given minimum distance from root, via one level-order BFS.
// The deterministic tie-break keeps matches comparable across evaluation
// strategies.
func WitnessNodes(g *graph.Graph, root graph.V, q []graph.Label, dists []int) []graph.V {
	maxD := 0
	for _, d := range dists {
		if d > maxD {
			maxD = d
		}
	}
	nodes := make([]graph.V, len(q))
	have := make([]bool, len(q))
	seen := map[graph.V]bool{root: true}
	level := []graph.V{root}
	for d := 0; d <= maxD; d++ {
		for _, v := range level {
			for i, l := range q {
				if dists[i] == d && g.Label(v) == l {
					if !have[i] || v < nodes[i] {
						nodes[i] = v
						have[i] = true
					}
				}
			}
		}
		if d == maxD {
			break
		}
		var next []graph.V
		for _, v := range level {
			for _, w := range g.Out(v) {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
		}
		level = next
	}
	return nodes
}

package search

import (
	"testing"

	"bigindex/internal/graph"
)

// The rooted generation engine is exercised heavily through the bkws,
// blinks, and core packages; this test pins its contract directly: exact
// distances, deterministic witnesses, dedup, top-k capping, and the
// per-keyword adaptive map switch.
func TestRootedGenerationDirect(t *testing.T) {
	// r1 -> a -> b ; r2 -> b ; c isolated with label A.
	bld := graph.NewBuilder(nil)
	r1 := bld.AddVertex("root")
	r2 := bld.AddVertexLabel(bld.Dict().Lookup("root"))
	a := bld.AddVertex("A")
	bb := bld.AddVertex("B")
	c := bld.AddVertexLabel(bld.Dict().Lookup("A"))
	bld.AddEdge(r1, a)
	bld.AddEdge(a, bb)
	bld.AddEdge(r2, bb)
	g := bld.Build()
	q := []graph.Label{g.Label(a), g.Label(bb)}

	for _, opt := range []GenOptions{
		{},
		{SpecOrder: true},
		{PathBased: true},
		{SpecOrder: true, PathBased: true},
	} {
		rg := NewRootedGeneration(g, q, 3, nil, opt)
		ms := rg.Generate([]graph.V{r1, r2, r1 /* dup */, c}, nil)
		// r1 reaches A(1) and B(2); r2 reaches B(1) but not A; a reaches
		// itself? a is not in rootCands. c reaches nothing but itself (A at 0)
		// and not B.
		if len(ms) != 1 {
			t.Fatalf("opt %+v: matches = %+v", opt, ms)
		}
		m := ms[0]
		if m.Root != r1 || m.Dists[0] != 1 || m.Dists[1] != 2 || m.Score != 3 {
			t.Fatalf("opt %+v: match = %+v", opt, m)
		}
		if m.Nodes[0] != a || m.Nodes[1] != bb {
			t.Fatalf("opt %+v: witnesses = %v", opt, m.Nodes)
		}
		// Duplicate root already emitted: generating again yields nothing.
		if again := rg.Generate([]graph.V{r1}, nil); len(again) != 0 {
			t.Fatalf("opt %+v: dedup failed", opt)
		}
	}

	// K caps emissions.
	rg := NewRootedGeneration(g, []graph.Label{g.Label(bb)}, 3, nil, GenOptions{K: 1})
	ms := rg.Generate([]graph.V{r1, r2, a, bb}, nil)
	if len(ms) != 1 {
		t.Fatalf("K=1 emitted %d", len(ms))
	}

	// Custom score function flows through.
	double := func(d []int) float64 { return 2 * SumDistances(d) }
	rg2 := NewRootedGeneration(g, q, 3, double, GenOptions{PathBased: true})
	ms2 := rg2.Generate([]graph.V{r1}, nil)
	if len(ms2) != 1 || ms2[0].Score != 6 {
		t.Fatalf("custom score: %+v", ms2)
	}
}

func TestSumDistances(t *testing.T) {
	if SumDistances(nil) != 0 || SumDistances([]int{1, 2, 3}) != 6 {
		t.Fatal("SumDistances wrong")
	}
}

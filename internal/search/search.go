// Package search defines the plug-in contract between the BiG-index
// framework and keyword search algorithms (the f of the problem statement,
// Def. 2.3), plus traversal helpers shared by the three implemented
// semantics (bkws, Blinks, r-clique; Sec. 5).
//
// The framework only assumes the index is label- and path-preserving; an
// algorithm therefore sees a plain graph — sometimes the data graph
// (baseline eval), sometimes a summary layer (eval_Ont) — and never needs to
// know which. Search produces Matches; when running under the index, the
// framework specializes a match's vertices back to the data graph and asks
// the algorithm to regenerate and verify concrete answers there
// (the "(3) answer generation and verification" step of Secs. 5.1–5.3).
package search

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"bigindex/internal/graph"
)

// Match is one query answer: a root (for rooted semantics), one matched
// vertex per query keyword, the per-keyword distances that define the score,
// and the score itself (lower is better).
//
// All vertex IDs are relative to the graph that produced the match: summary
// supernodes for matches found on an index layer, data vertices for final
// answers.
type Match struct {
	Root  graph.V
	Nodes []graph.V // Nodes[i] matches q[i]
	Dists []int     // Dists[i] is the distance contributing q[i]'s score; nil for semantics without per-keyword distances
	Score float64
}

// Key returns a canonical identity for the match, used to compare answer
// sets across evaluation strategies and to deduplicate during hierarchical
// answer generation.
//
// Rooted distance semantics (Dists != nil) identify an answer by its root
// and per-keyword distance profile — the distinct-root convention of Blinks;
// which concrete nearest node witnesses a distance is presentational.
// Node-set semantics (Dists == nil, e.g. r-clique) identify an answer by its
// matched nodes.
func (m Match) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "r%d|", m.Root)
	if m.Dists != nil {
		for _, d := range m.Dists {
			fmt.Fprintf(&b, "%d,", d)
		}
		return b.String()
	}
	for _, n := range m.Nodes {
		fmt.Fprintf(&b, "%d,", n)
	}
	return b.String()
}

// Subgraph materializes the match as an answer subgraph of g by connecting
// the root to each matched node with a shortest path (rooted semantics) or
// the nodes pairwise (when Root equals Nodes[0] and Dists is nil). Used for
// presenting answers; equality testing uses Key.
func (m Match) Subgraph(g *graph.Graph) *graph.Subgraph {
	sub := &graph.Subgraph{Root: m.Root, Score: m.Score}
	sub.Vertices = append(sub.Vertices, m.Root)
	for _, n := range m.Nodes {
		path := ShortestPath(g, m.Root, n, -1, graph.Forward)
		if path == nil {
			path = ShortestPathUndirected(g, m.Root, n, -1)
		}
		for i := 0; i+1 < len(path); i++ {
			sub.Vertices = append(sub.Vertices, path[i+1])
			if g.HasEdge(path[i], path[i+1]) {
				sub.Edges = append(sub.Edges, graph.Edge{From: path[i], To: path[i+1]})
			} else {
				sub.Edges = append(sub.Edges, graph.Edge{From: path[i+1], To: path[i]})
			}
		}
		if len(path) == 0 {
			sub.Vertices = append(sub.Vertices, n)
		}
	}
	sub.Normalize()
	return sub
}

// GenOptions toggles the answer-generation optimizations of Sec. 4.3; the
// ablation experiments (Figs. 17 and 18) flip them individually.
type GenOptions struct {
	// SpecOrder enables the specialization-order optimization (Sec. 4.3.2):
	// instantiate the candidate set with the fewest specializations first so
	// partial answers stay small and failures are detected early.
	SpecOrder bool
	// PathBased enables path-based answer generation (Sec. 4.3.3 / Algo 4):
	// specialize one path at a time, sharing traversals across partial
	// answers, instead of re-traversing per vertex (Algo 3).
	PathBased bool
	// K stops generation after K distinct final answers (Sec. 4.3.4);
	// 0 generates all.
	K int
	// MaxChecks caps the total qualification checks a generation session
	// may spend (0 = unlimited). Combinatorial semantics can face enormous
	// candidate products when answers are absent; the budget bounds the
	// tail at the cost of completeness, which top-k early-termination mode
	// already trades away.
	MaxChecks int
}

// Algorithm is a keyword search semantics pluggable into BiG-index.
type Algorithm interface {
	// Name identifies the algorithm in reports ("bkws", "blinks", "rclique").
	Name() string

	// Prepare builds whatever per-graph index the algorithm needs (Blinks'
	// bi-level index, r-clique's neighbor index, nothing for bkws) and
	// returns a handle for querying. Prepare time is index-construction
	// time, not query time.
	Prepare(g *graph.Graph) (Prepared, error)

	// NewGeneration opens an answer-generation session for Step 5 of Algo 2
	// on the data graph. A session persists across the generalized answers
	// of one query so path-based generation can share traversals (Sec.
	// 4.3.3's point: avoid duplicated computation across partial answers).
	NewGeneration(data *graph.Graph, q []graph.Label, opt GenOptions) Generation
}

// Generation generates and verifies concrete data-graph matches from the
// specialized candidates of generalized answers. Implementations must verify
// every emitted match against the data graph so that
// eval_Ont(G,Q,f) = eval(G,Q,f) (Thm 4.2).
type Generation interface {
	// Generate handles one generalized answer: rootCands are the layer-0
	// specializations of its root supernode (nil for rootless semantics);
	// cands[i] are the layer-0 specializations of the supernodes matched to
	// keyword q[i], already label-filtered per Prop 4.1.
	Generate(rootCands []graph.V, cands [][]graph.V) []Match

	// GenerateCtx is Generate with cooperative cancellation: the session
	// checks ctx at its qualification/verification checkpoints and, once
	// cancelled, stops generating and returns the (fully verified, hence
	// sound) matches produced so far. Callers detect the interruption
	// through ctx.Err(); the return value itself carries no error because
	// every returned match is a true answer regardless.
	GenerateCtx(ctx context.Context, rootCands []graph.V, cands [][]graph.V) []Match
}

// GenStats counts the paper-phase work of one generation session, in the
// vocabulary of Sec. 4.3: vertex-at-a-time qualification checks (Def. 4.2,
// Algo 3), path-based qualification checks answered from shared traversal
// maps (Def. 4.3, Algo 4), how many of each qualified, and early top-k
// terminations (Sec. 4.3.4). The framework aggregates these per query into
// core.Breakdown and the server exports them as counters, so bench numbers
// can be read against the paper's ablation figures.
type GenStats struct {
	VertexChecks    int64 // Def 4.2 qualification checks attempted
	VertexQualified int64 // … that qualified
	PathChecks      int64 // Def 4.3 shared-traversal lookups attempted
	PathQualified   int64 // … that qualified
	EarlyKStops     int64 // Sec 4.3.4 top-k early terminations
}

// Merge adds o into s.
func (s *GenStats) Merge(o GenStats) {
	s.VertexChecks += o.VertexChecks
	s.VertexQualified += o.VertexQualified
	s.PathChecks += o.PathChecks
	s.PathQualified += o.PathQualified
	s.EarlyKStops += o.EarlyKStops
}

// StatsReporter is optionally implemented by Generation sessions that
// count their qualification work. Stats reports session totals so far (a
// session persists across the generalized answers of one query).
type StatsReporter interface {
	Stats() GenStats
}

// Prepared is a queryable per-graph instance of an Algorithm.
type Prepared interface {
	// Search returns matches of q ranked by ascending score. k <= 0 returns
	// every match (the exhaustive mode used by correctness tests and by
	// hierarchical evaluation when completeness is required); k > 0 returns
	// the top-k.
	Search(q []graph.Label, k int) ([]Match, error)

	// SearchCtx is Search with cooperative cancellation: the frontier /
	// iterator loops check ctx every few hundred expansions (via Canceller)
	// and, once cancelled, stop expanding and return the matches found so
	// far — still sorted and truncated — together with the context's error.
	// A non-nil error with a non-empty match slice therefore means "sound
	// but possibly incomplete", which the framework surfaces as a degraded
	// (partial) result rather than a failure.
	SearchCtx(ctx context.Context, q []graph.Label, k int) ([]Match, error)
}

// Rootless is optionally implemented by algorithms whose matches carry no
// meaningful root (node-set semantics such as r-clique); the framework then
// skips root-candidate specialization.
type Rootless interface {
	Rootless() bool
}

// SortMatches orders matches by ascending score, breaking ties by Key so
// results are deterministic.
func SortMatches(ms []Match) {
	slices.SortFunc(ms, func(a, b Match) int {
		switch {
		case a.Score < b.Score:
			return -1
		case a.Score > b.Score:
			return 1
		default:
			return strings.Compare(a.Key(), b.Key())
		}
	})
}

// Truncate returns the first k matches (k <= 0 returns ms unchanged).
func Truncate(ms []Match, k int) []Match {
	if k > 0 && len(ms) > k {
		return ms[:k]
	}
	return ms
}

package search

import "bigindex/internal/graph"

// MultiSourceDists runs one breadth-first traversal from all sources at once
// and returns vertex -> hop distance to the nearest source, bounded by limit
// (limit < 0 means unbounded). Direction Backward answers "how far is v from
// reaching a source" — the primitive behind backward keyword expansion and
// the path-based answer generation (one traversal per keyword instead of one
// per candidate root).
func MultiSourceDists(g *graph.Graph, sources []graph.V, limit int, d graph.Dir) map[graph.V]int {
	dist := make(map[graph.V]int, len(sources)*4)
	queue := make([]graph.V, 0, len(sources))
	for _, s := range sources {
		if _, ok := dist[s]; !ok {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		if limit >= 0 && dv == limit {
			continue
		}
		var next []graph.V
		if d == graph.Forward {
			next = g.Out(v)
		} else {
			next = g.In(v)
		}
		for _, w := range next {
			if _, ok := dist[w]; !ok {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// UndirectedDists returns hop distances from src treating every edge as
// bidirectional, bounded by limit. r-clique's distance constraint uses
// undirected connectivity (Kargar & An treat the proximity of keyword nodes
// symmetrically).
func UndirectedDists(g *graph.Graph, src graph.V, limit int) map[graph.V]int {
	dist := map[graph.V]int{src: 0}
	queue := []graph.V{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		if limit >= 0 && dv == limit {
			continue
		}
		relax := func(w graph.V) {
			if _, ok := dist[w]; !ok {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
		for _, w := range g.Out(v) {
			relax(w)
		}
		for _, w := range g.In(v) {
			relax(w)
		}
	}
	return dist
}

// MultiSourceUndirectedDists is UndirectedDists from a source set.
func MultiSourceUndirectedDists(g *graph.Graph, sources []graph.V, limit int) map[graph.V]int {
	dist := make(map[graph.V]int, len(sources)*4)
	queue := make([]graph.V, 0, len(sources))
	for _, s := range sources {
		if _, ok := dist[s]; !ok {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		if limit >= 0 && dv == limit {
			continue
		}
		relax := func(w graph.V) {
			if _, ok := dist[w]; !ok {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
		for _, w := range g.Out(v) {
			relax(w)
		}
		for _, w := range g.In(v) {
			relax(w)
		}
	}
	return dist
}

// MinDistToLabels performs one bounded forward BFS from root and returns,
// for each of the requested labels, the minimum hop distance and the
// smallest-ID vertex realizing it. ok is false if some label is unreachable
// within limit. The traversal stops early once every label has been seen at
// its minimum distance (all vertices at the current level processed).
//
// The deterministic smallest-ID tie-break is what makes direct evaluation
// and index-backed regeneration produce byte-identical matches.
func MinDistToLabels(g *graph.Graph, root graph.V, labels []graph.Label, limit int) (dists []int, nodes []graph.V, ok bool) {
	want := make(map[graph.Label][]int) // label -> indices in labels
	for i, l := range labels {
		want[l] = append(want[l], i)
	}
	dists = make([]int, len(labels))
	nodes = make([]graph.V, len(labels))
	for i := range dists {
		dists[i] = -1
	}
	remaining := 0
	for range want {
		remaining++
	}

	record := func(v graph.V, d int) {
		idxs, isWanted := want[g.Label(v)]
		if !isWanted {
			return
		}
		first := dists[idxs[0]] == -1
		for _, i := range idxs {
			if dists[i] == -1 {
				dists[i] = d
				nodes[i] = v
			} else if dists[i] == d && v < nodes[i] {
				nodes[i] = v
			}
		}
		if first {
			remaining--
		}
	}

	// Level-order BFS so all vertices at the minimal distance are examined
	// before stopping (needed for the smallest-ID tie-break).
	seen := map[graph.V]bool{root: true}
	level := []graph.V{root}
	d := 0
	record(root, 0)
	for len(level) > 0 {
		if remaining == 0 {
			// Finish only after fully processing the level where the last
			// label appeared; the loop structure already guarantees that.
			break
		}
		if limit >= 0 && d == limit {
			break
		}
		var next []graph.V
		for _, v := range level {
			for _, w := range g.Out(v) {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
		}
		d++
		for _, w := range next {
			record(w, d)
		}
		level = next
	}
	for _, dd := range dists {
		if dd == -1 {
			return dists, nodes, false
		}
	}
	return dists, nodes, true
}

// ShortestPath returns one shortest path from u to v (inclusive) in
// direction dir, or nil if unreachable within limit. Predecessors are chosen
// by smallest vertex ID for determinism.
func ShortestPath(g *graph.Graph, u, v graph.V, limit int, dir graph.Dir) []graph.V {
	if u == v {
		return []graph.V{u}
	}
	prev := map[graph.V]graph.V{u: u}
	queue := []graph.V{u}
	depth := map[graph.V]int{u: 0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if limit >= 0 && depth[cur] == limit {
			continue
		}
		var next []graph.V
		if dir == graph.Forward {
			next = g.Out(cur)
		} else {
			next = g.In(cur)
		}
		for _, w := range next {
			if _, ok := prev[w]; !ok {
				prev[w] = cur
				depth[w] = depth[cur] + 1
				if w == v {
					return assemblePath(prev, u, v)
				}
				queue = append(queue, w)
			}
		}
	}
	return nil
}

// ShortestPathUndirected is ShortestPath over the undirected skeleton.
func ShortestPathUndirected(g *graph.Graph, u, v graph.V, limit int) []graph.V {
	if u == v {
		return []graph.V{u}
	}
	prev := map[graph.V]graph.V{u: u}
	depth := map[graph.V]int{u: 0}
	queue := []graph.V{u}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if limit >= 0 && depth[cur] == limit {
			continue
		}
		expand := func(w graph.V) bool {
			if _, ok := prev[w]; !ok {
				prev[w] = cur
				depth[w] = depth[cur] + 1
				if w == v {
					return true
				}
				queue = append(queue, w)
			}
			return false
		}
		for _, w := range g.Out(cur) {
			if expand(w) {
				return assemblePath(prev, u, v)
			}
		}
		for _, w := range g.In(cur) {
			if expand(w) {
				return assemblePath(prev, u, v)
			}
		}
	}
	return nil
}

func assemblePath(prev map[graph.V]graph.V, u, v graph.V) []graph.V {
	var rev []graph.V
	for cur := v; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == u {
			break
		}
	}
	path := make([]graph.V, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path
}

package search

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bigindex/internal/graph"
)

func chainGraph(n int) *graph.Graph {
	b := graph.NewBuilder(nil)
	l := b.Dict().Intern("x")
	for i := 0; i < n; i++ {
		b.AddVertexLabel(l)
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1))
	}
	return b.Build()
}

func randomGraph(rng *rand.Rand, n, e, labels int) *graph.Graph {
	b := graph.NewBuilder(nil)
	ls := make([]graph.Label, labels)
	for i := range ls {
		ls[i] = b.Dict().Intern(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		b.AddVertexLabel(ls[rng.Intn(labels)])
	}
	for i := 0; i < e; i++ {
		b.AddEdge(graph.V(rng.Intn(n)), graph.V(rng.Intn(n)))
	}
	return b.Build()
}

func TestMultiSourceDistsChain(t *testing.T) {
	g := chainGraph(10)
	// Backward from vertex 9: dist[v] = 9 - v.
	dm := MultiSourceDists(g, []graph.V{9}, -1, graph.Backward)
	for v := 0; v < 10; v++ {
		if dm[graph.V(v)] != 9-v {
			t.Fatalf("dist[%d] = %d", v, dm[graph.V(v)])
		}
	}
	// Bounded.
	dm = MultiSourceDists(g, []graph.V{9}, 3, graph.Backward)
	if len(dm) != 4 {
		t.Fatalf("bounded map size %d, want 4", len(dm))
	}
	// Multi-source takes the minimum.
	dm = MultiSourceDists(g, []graph.V{3, 7}, -1, graph.Backward)
	if dm[2] != 1 || dm[5] != 2 || dm[0] != 3 {
		t.Fatalf("multi-source dists wrong: %v", dm)
	}
	// Duplicate sources are harmless.
	dm2 := MultiSourceDists(g, []graph.V{3, 3, 7}, -1, graph.Backward)
	if len(dm2) != len(dm) {
		t.Fatal("duplicate sources changed the result")
	}
}

// TestMultiSourceDistsMatchesPerSourceMin is the defining property: the
// multi-source map equals the pointwise min of per-source maps.
func TestMultiSourceDistsMatchesPerSourceMin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(3*n), 2)
		k := 1 + rng.Intn(3)
		srcs := make([]graph.V, k)
		for i := range srcs {
			srcs[i] = graph.V(rng.Intn(n))
		}
		limit := rng.Intn(5)
		got := MultiSourceDists(g, srcs, limit, graph.Backward)
		want := map[graph.V]int{}
		for _, s := range srcs {
			for v, d := range g.DistancesFrom(s, limit, graph.Backward) {
				if old, ok := want[v]; !ok || d < old {
					want[v] = d
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for v, d := range want {
			if got[v] != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUndirectedDists(t *testing.T) {
	g := chainGraph(6)
	dm := UndirectedDists(g, 3, -1)
	// Undirected chain: symmetric distances.
	for v := 0; v < 6; v++ {
		want := v - 3
		if want < 0 {
			want = -want
		}
		if dm[graph.V(v)] != want {
			t.Fatalf("undirected dist[%d] = %d, want %d", v, dm[graph.V(v)], want)
		}
	}
	multi := MultiSourceUndirectedDists(g, []graph.V{0, 5}, -1)
	if multi[2] != 2 || multi[3] != 2 {
		t.Fatalf("multi undirected: %v", multi)
	}
}

func TestMinDistToLabels(t *testing.T) {
	// root -> a(1) -> b(2); also root -> b2(1) with same label as b.
	b := graph.NewBuilder(nil)
	root := b.AddVertex("root")
	a := b.AddVertex("A")
	bb := b.AddVertex("B")
	b2 := b.AddVertexLabel(b.Dict().Lookup("B"))
	b.AddEdge(root, a)
	b.AddEdge(a, bb)
	b.AddEdge(root, b2)
	g := b.Build()

	dists, nodes, ok := MinDistToLabels(g, root, []graph.Label{g.Label(a), g.Label(bb)}, 3)
	if !ok {
		t.Fatal("labels should be reachable")
	}
	if dists[0] != 1 || dists[1] != 1 {
		t.Fatalf("dists = %v", dists)
	}
	if nodes[1] != b2 {
		t.Fatalf("nearest B should be b2 (dist 1), got %d", nodes[1])
	}
	// Unreachable label within bound.
	_, _, ok = MinDistToLabels(g, b2, []graph.Label{g.Label(a)}, 3)
	if ok {
		t.Fatal("A is not reachable from b2")
	}
	// Duplicate labels in the query.
	dists, _, ok = MinDistToLabels(g, root, []graph.Label{g.Label(bb), g.Label(bb)}, 3)
	if !ok || dists[0] != 1 || dists[1] != 1 {
		t.Fatalf("duplicate labels: %v %v", dists, ok)
	}
}

func TestMinDistSmallestIDTieBreak(t *testing.T) {
	// Two same-label vertices at equal distance; the smaller ID must win.
	b := graph.NewBuilder(nil)
	root := b.AddVertex("r")
	x1 := b.AddVertex("X")
	x2 := b.AddVertexLabel(b.Dict().Lookup("X"))
	b.AddEdge(root, x2) // add edges in an order that tempts the wrong pick
	b.AddEdge(root, x1)
	g := b.Build()
	_, nodes, ok := MinDistToLabels(g, root, []graph.Label{g.Label(x1)}, 2)
	if !ok || nodes[0] != min(x1, x2) {
		t.Fatalf("tie-break: got %d want %d", nodes[0], min(x1, x2))
	}
}

func TestShortestPath(t *testing.T) {
	g := chainGraph(5)
	p := ShortestPath(g, 0, 4, -1, graph.Forward)
	if len(p) != 5 || p[0] != 0 || p[4] != 4 {
		t.Fatalf("path = %v", p)
	}
	if ShortestPath(g, 4, 0, -1, graph.Forward) != nil {
		t.Fatal("no forward path 4->0 in a chain")
	}
	if p := ShortestPathUndirected(g, 4, 0, -1); len(p) != 5 {
		t.Fatalf("undirected path = %v", p)
	}
	if p := ShortestPath(g, 2, 2, -1, graph.Forward); len(p) != 1 {
		t.Fatalf("self path = %v", p)
	}
	if ShortestPath(g, 0, 4, 2, graph.Forward) != nil {
		t.Fatal("bounded path should fail")
	}
}

func TestMatchKeyAndSort(t *testing.T) {
	a := Match{Root: 1, Dists: []int{1, 2}, Score: 3}
	b := Match{Root: 1, Dists: []int{2, 1}, Score: 3}
	if a.Key() == b.Key() {
		t.Fatal("different distance profiles must differ")
	}
	c := Match{Root: 2, Nodes: []graph.V{5, 6}, Score: 1}
	d := Match{Root: 2, Nodes: []graph.V{5, 7}, Score: 1}
	if c.Key() == d.Key() {
		t.Fatal("different node sets must differ")
	}
	ms := []Match{a, c, d}
	SortMatches(ms)
	if ms[0].Score != 1 || ms[2].Score != 3 {
		t.Fatal("sort by score failed")
	}
	if len(Truncate(ms, 2)) != 2 || len(Truncate(ms, 0)) != 3 {
		t.Fatal("truncate wrong")
	}
}

func TestMatchSubgraph(t *testing.T) {
	g := chainGraph(4)
	m := Match{Root: 0, Nodes: []graph.V{3}, Dists: []int{3}, Score: 3}
	sub := m.Subgraph(g)
	if len(sub.Vertices) != 4 || len(sub.Edges) != 3 {
		t.Fatalf("subgraph = %+v", sub)
	}
	if sub.Root != 0 {
		t.Fatal("root lost")
	}
}

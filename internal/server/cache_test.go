package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bigindex/internal/datagen"
	"bigindex/internal/graph"
	"bigindex/internal/qcache"
	"bigindex/internal/search"
)

// twoTerms returns the two most frequent label names (both resolve
// exactly through the text index).
func twoTerms(t *testing.T, ds *datagen.Dataset) (string, string) {
	t.Helper()
	a, b := "", ""
	ac, bc := 0, 0
	for _, l := range ds.Graph.DistinctLabels() {
		c := ds.Graph.LabelCount(l)
		name := ds.Graph.Dict().Name(l)
		switch {
		case c > ac:
			b, bc = a, ac
			a, ac = name, c
		case c > bc:
			b, bc = name, c
		}
	}
	if a == "" || b == "" {
		t.Fatal("dataset has fewer than two labels")
	}
	return a, b
}

// A repeated query must be served from the cache: same answers, one
// entry, "cached": true on the second response, and the qcache metric
// families visible on /metrics.
func TestQueryCachedOnRepeat(t *testing.T) {
	s, ds := testServer(t)
	path := "/query?q=" + url.QueryEscape(popularTerm(ds)) + "&k=5"

	rec, first := get(t, s, path)
	if rec.Code != http.StatusOK {
		t.Fatalf("first query: %d %s", rec.Code, rec.Body.String())
	}
	if first["cached"] != nil {
		t.Fatalf("first query claims cached: %v", first["cached"])
	}
	rec, second := get(t, s, path)
	if rec.Code != http.StatusOK {
		t.Fatalf("second query: %d %s", rec.Code, rec.Body.String())
	}
	if second["cached"] != true {
		t.Fatalf("second query not cached: %v", second)
	}
	if !reflect.DeepEqual(first["matches"], second["matches"]) {
		t.Fatal("cached matches differ from computed matches")
	}
	if first["layer"] != second["layer"] {
		t.Fatalf("cached layer %v != computed layer %v", second["layer"], first["layer"])
	}
	if st := s.Cache().Stats(); st.Entries != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats after one repeat: %+v", st)
	}

	rec, _ = get(t, s, "/metrics")
	for _, name := range []string{
		"bigindex_qcache_hits_total", "bigindex_qcache_misses_total",
		"bigindex_qcache_hit_ratio", "bigindex_query_cache_seconds",
	} {
		if !strings.Contains(rec.Body.String(), name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
}

// &nocache=1 bypasses the cache: nothing is stored and nothing is
// served from it.
func TestNocacheBypasses(t *testing.T) {
	s, ds := testServer(t)
	path := "/query?q=" + url.QueryEscape(popularTerm(ds)) + "&nocache=1"
	for i := 0; i < 2; i++ {
		rec, body := get(t, s, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, rec.Code, rec.Body.String())
		}
		if body["cached"] != nil {
			t.Fatalf("nocache query %d served from cache: %v", i, body)
		}
	}
	if n := s.Cache().Len(); n != 0 {
		t.Fatalf("nocache stored %d entries", n)
	}
}

// Options.Cache.Size < 0 disables caching entirely; queries still work.
func TestCacheDisabled(t *testing.T) {
	s, ds := robustServer(t, Options{Cache: CacheOptions{Size: -1}})
	if s.Cache() != nil {
		t.Fatal("cache built despite Size < 0")
	}
	path := "/query?q=" + url.QueryEscape(popularTerm(ds))
	for i := 0; i < 2; i++ {
		rec, body := get(t, s, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, rec.Code, rec.Body.String())
		}
		if body["cached"] != nil {
			t.Fatalf("disabled cache served a hit: %v", body)
		}
	}
}

// Semantically identical queries — "b,a,a" vs "a,b" — are one query:
// identical answers and a single cache entry (the second request hits).
func TestCanonicalKeywordsShareEntry(t *testing.T) {
	s, ds := testServer(t)
	a, b := twoTerms(t, ds)

	rec, first := get(t, s, "/query?q="+url.QueryEscape(b+","+a+","+a))
	if rec.Code != http.StatusOK {
		t.Fatalf("b,a,a: %d %s", rec.Code, rec.Body.String())
	}
	rec, second := get(t, s, "/query?q="+url.QueryEscape(a+","+b))
	if rec.Code != http.StatusOK {
		t.Fatalf("a,b: %d %s", rec.Code, rec.Body.String())
	}
	if !reflect.DeepEqual(first["matches"], second["matches"]) {
		t.Fatal("b,a,a and a,b returned different results")
	}
	if second["cached"] != true {
		t.Fatal("a,b did not hit the entry stored by b,a,a")
	}
	if n := s.Cache().Len(); n != 1 {
		t.Fatalf("canonicalized permutations created %d entries, want 1", n)
	}
}

// A degraded (deadline-partial) result must never be cached: a later
// identical query with a healthy deadline reruns the evaluation and the
// full answer is what gets stored.
func TestDegradedResultNotCached(t *testing.T) {
	var calls atomic.Int64
	flaky := &stubAlgo{name: "flaky", fn: func(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
		if calls.Add(1) == 1 {
			ms := []search.Match{{Root: 0, Score: 1}}
			<-ctx.Done() // first call: hold a partial until the deadline fires
			return ms, context.Cause(ctx)
		}
		return []search.Match{{Root: 0, Score: 1}, {Root: 1, Score: 2}}, nil
	}}
	s, ds := robustServer(t, Options{
		ExtraAlgorithms: map[string]search.Algorithm{"flaky": flaky},
	})
	base := "/query?q=" + url.QueryEscape(popularTerm(ds)) + "&algo=flaky&direct=1"

	rec, body := get(t, s, base+"&timeout=50ms")
	if rec.Code != http.StatusOK || body["degraded"] != true {
		t.Fatalf("degraded query: %d %v", rec.Code, body)
	}
	if body["cached"] != nil {
		t.Fatalf("degraded response claims cached: %v", body)
	}
	if n := s.Cache().Len(); n != 0 {
		t.Fatalf("degraded result was stored (%d entries)", n)
	}

	rec, body = get(t, s, base)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy query: %d %s", rec.Code, rec.Body.String())
	}
	if body["degraded"] == true || body["cached"] == true {
		t.Fatalf("healthy query served the degraded partial: %v", body)
	}
	if cnt, _ := body["count"].(float64); cnt != 2 {
		t.Fatalf("healthy query count = %v, want 2 (full recompute)", body["count"])
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("evaluations = %d, want 2 (degraded then healthy)", got)
	}

	rec, body = get(t, s, base)
	if rec.Code != http.StatusOK || body["cached"] != true {
		t.Fatalf("healthy result not cached: %d %v", rec.Code, body)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("cached follow-up re-evaluated: calls = %d", got)
	}
}

// Fifty concurrent identical queries run exactly one evaluation: one
// singleflight leader computes, the other forty-nine share its result.
func TestConcurrentIdenticalQueriesEvalOnce(t *testing.T) {
	const n = 50
	var calls atomic.Int64
	release := make(chan struct{})
	slow := &stubAlgo{name: "sf", fn: func(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
		calls.Add(1)
		<-release
		return []search.Match{{Root: 0, Score: 1}}, nil
	}}
	s, ds := robustServer(t, Options{
		ExtraAlgorithms: map[string]search.Algorithm{"sf": slow},
	})
	kw := popularTerm(ds)
	q, _, err := s.resolveKeywords(s.st(), []string{kw})
	if err != nil {
		t.Fatal(err)
	}
	key := qcache.Key("sf", true, q, 10, -1, s.Index().Epoch())
	path := "/query?q=" + url.QueryEscape(kw) + "&algo=sf&direct=1"

	var wg sync.WaitGroup
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet, path, nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			codes <- rec.Code
		}()
	}
	// Wait until the leader is inside the evaluation and every other
	// request is parked on its singleflight call, then let it finish.
	deadline := time.Now().Add(10 * time.Second)
	for s.Cache().Waiters(key) != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers never parked: %d/%d", s.Cache().Waiters(key), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(codes)
	for c := range codes {
		if c != http.StatusOK {
			t.Fatalf("concurrent query status %d", c)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("evaluations = %d, want 1", got)
	}
	if st := s.Cache().Stats(); st.Misses != 1 || st.Shared != n-1 {
		t.Fatalf("outcomes: %+v, want 1 miss and %d shared", st, n-1)
	}
	rec, body := get(t, s, path)
	if rec.Code != http.StatusOK || body["cached"] != true {
		t.Fatalf("follow-up not a hit: %d %v", rec.Code, body)
	}
}

// Refresh mid-flight: a result computed before a Refresh lands is
// stored under the old epoch and can never answer post-refresh
// traffic, even when the evaluation finishes after the swap.
func TestRefreshMidFlightNeverServesStale(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	gen := &stubAlgo{name: "gen", fn: func(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
		c := calls.Add(1)
		if c == 1 {
			<-release // finish only after the Refresh below has landed
		}
		return []search.Match{{Root: 0, Score: float64(c)}}, nil
	}}
	s, ds := robustServer(t, Options{
		ExtraAlgorithms: map[string]search.Algorithm{"gen": gen},
	})
	path := "/query?q=" + url.QueryEscape(popularTerm(ds)) + "&algo=gen&direct=1"

	done := make(chan map[string]interface{}, 1)
	go func() {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		var body map[string]interface{}
		_ = json.Unmarshal(rec.Body.Bytes(), &body)
		done <- body
	}()
	deadline := time.Now().Add(10 * time.Second)
	for calls.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("pre-refresh evaluation never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Index().Refresh(ds.Graph); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if got := s.Index().Epoch(); got != 1 {
		t.Fatalf("epoch after Refresh = %d, want 1", got)
	}
	close(release)
	<-done // pre-refresh result is now stored, under epoch 0

	rec, body := get(t, s, path)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-refresh query: %d %s", rec.Code, rec.Body.String())
	}
	if body["cached"] == true {
		t.Fatal("post-refresh query served the pre-refresh entry")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("post-refresh query did not re-evaluate: calls = %d", got)
	}
	ms, _ := body["matches"].([]interface{})
	if len(ms) != 1 {
		t.Fatalf("matches: %v", body["matches"])
	}
	if score := ms[0].(map[string]interface{})["score"]; score != 2.0 {
		t.Fatalf("post-refresh score = %v, want 2 (fresh evaluation)", score)
	}
	// The epoch sweep dropped the stale entry; only the fresh one remains.
	if n := s.Cache().Len(); n != 1 {
		t.Fatalf("cache holds %d entries after refresh, want 1", n)
	}
	rec, body = get(t, s, path)
	if rec.Code != http.StatusOK || body["cached"] != true {
		t.Fatalf("post-refresh repeat not a hit: %d %v", rec.Code, body)
	}
}

// Warm evaluates a workload file through the cached path: comments and
// blanks are skipped, bad lines are reported without aborting the
// sweep, and warmed queries hit on their first live request.
func TestWarm(t *testing.T) {
	s, ds := testServer(t)
	kw := popularTerm(ds)
	n, err := s.Warm(context.Background(), []string{
		"# workload",
		"",
		kw,
		kw + " | bkws | 5",
		"zzzznotaterm",
	})
	if n != 2 {
		t.Fatalf("warmed %d queries, want 2 (err %v)", n, err)
	}
	if err == nil || !strings.Contains(err.Error(), "zzzznotaterm") {
		t.Fatalf("bad line not reported: %v", err)
	}
	if got := s.Cache().Len(); got != 2 {
		t.Fatalf("cache entries after warm = %d, want 2", got)
	}
	rec, body := get(t, s, "/query?q="+url.QueryEscape(kw))
	if rec.Code != http.StatusOK || body["cached"] != true {
		t.Fatalf("warmed query not a hit: %d %v", rec.Code, body)
	}

	off, _ := robustServer(t, Options{Cache: CacheOptions{Size: -1}})
	if _, err := off.Warm(context.Background(), []string{kw}); err == nil {
		t.Fatal("Warm on a disabled cache did not error")
	}
}

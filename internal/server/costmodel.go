package server

// Formula 4 calibration audit: every routed /query evaluation contributes
// its ledger-measured work to a calibration window (internal/cost), the
// predicted/observed ratio is exported as a histogram, and GET
// /debug/costmodel reports per-(algo, layer) calibration plus the
// least-squares β̂ the window suggests. Optionally (Options.ShadowSample)
// a sampled fraction of routed queries is re-evaluated in the background
// at the runner-up layer, turning the misroute counter from a model-side
// inference into a measurement.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/cost"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
)

// costAudit holds the calibration window and its exported metrics.
type costAudit struct {
	cal       *cost.Calibration
	errRatio  *obs.HistogramVec
	misroute  *obs.CounterVec
	misroutes atomic.Int64 // sum across algos, for /debug/costmodel
	shadows   atomic.Int64 // shadow evaluations completed
	shadowSem chan struct{}
}

func newCostAudit(reg *obs.Registry) *costAudit {
	return &costAudit{
		cal: cost.NewCalibration(0),
		errRatio: reg.HistogramVec("bigindex_costmodel_error",
			"Formula 4 calibration: predicted layer cost divided by observed size-normalized work, by algorithm and chosen layer.",
			[]float64{0.0625, 0.125, 0.25, 0.5, 0.75, 1, 1.5, 2, 4, 8, 16},
			"algo", "layer"),
		misroute: reg.CounterVec("bigindex_costmodel_misroute_total",
			"Queries where the calibrated cost model or a shadow evaluation shows a different layer would have been cheaper.",
			"algo"),
		shadowSem: make(chan struct{}, 1),
	}
}

// auditCost feeds one routed evaluation into the calibration audit. Called
// from evalQuery after a successful hierarchical evaluation; direct
// (baseline) evaluations and cache hits never reach it, so the window holds
// only queries the cost model actually routed.
func (s *Server) auditCost(ev *core.Evaluator, algo string, q []graph.Label, bd *core.Breakdown, led *obs.Ledger, forcedLayer int) {
	a := s.audit
	if a == nil || led == nil || bd == nil {
		return
	}
	work := led.WorkUnits()
	size := ev.Index().Data().Size()
	if work <= 0 || size <= 0 {
		return
	}
	observed := float64(work) / float64(size)
	opt := ev.Options()
	compress, sup, legal := cost.LayerTerms(ev.Index(), q, opt.DegreeExponent)
	if bd.Layer < 0 || bd.Layer >= len(compress) {
		return
	}
	predicted := opt.Beta*compress[bd.Layer] + (1-opt.Beta)*sup[bd.Layer]
	a.errRatio.With(algo, strconv.Itoa(bd.Layer)).Observe(predicted / observed)
	sample := cost.Sample{
		Algo: algo, Layer: bd.Layer,
		Compress: compress, Sup: sup, Legal: legal,
		Observed: observed,
	}
	a.cal.Add(sample)
	if forcedLayer >= 0 {
		return // pinned by the client; the router made no choice to audit
	}
	if _, fa, fb, ok := a.cal.Fit(); ok {
		if cost.CheaperLayer(sample, fa, fb) != bd.Layer {
			a.misroute.With(algo).Inc()
			a.misroutes.Add(1)
			return
		}
	}
	s.maybeShadowEval(ev, algo, q, sample, work)
}

// maybeShadowEval re-evaluates a sampled query at the runner-up layer (the
// second-cheapest legal layer under the configured β) with its own ledger
// and counts a misroute when the road not taken measures cheaper. At most
// one shadow runs at a time; excess samples are dropped, not queued — the
// audit must never add load proportional to traffic.
func (s *Server) maybeShadowEval(ev *core.Evaluator, algo string, q []graph.Label, sample cost.Sample, observedWork int64) {
	p := s.opt.ShadowSample
	if p <= 0 || rand.Float64() >= p {
		return
	}
	beta := ev.Options().Beta
	runner := -1
	runnerCost := 0.0
	for m := range sample.Compress {
		if m == sample.Layer || (m < len(sample.Legal) && !sample.Legal[m]) {
			continue
		}
		c := beta*sample.Compress[m] + (1-beta)*sample.Sup[m]
		if runner == -1 || c < runnerCost {
			runner, runnerCost = m, c
		}
	}
	if runner < 0 {
		return // single legal layer; no alternative to measure
	}
	select {
	case s.audit.shadowSem <- struct{}{}:
	default:
		return
	}
	go func() {
		defer func() { <-s.audit.shadowSem }()
		led := obs.NewLedger()
		ctx, cancel := context.WithTimeout(obs.ContextWithLedger(context.Background(), led), 5*time.Second)
		defer cancel()
		if _, _, err := ev.EvalLayerCtx(ctx, q, runner); err != nil {
			return
		}
		s.audit.shadows.Add(1)
		if w := led.WorkUnits(); w > 0 && w < observedWork {
			s.audit.misroute.With(algo).Inc()
			s.audit.misroutes.Add(1)
		}
	}()
}

// handleDebugCostmodel reports the calibration window: per-(algo, layer)
// predicted-vs-observed means under the configured β, the least-squares
// fit over the window, and the β̂ correction it suggests. Gated behind
// Options.Debug.Endpoints like the other /debug surfaces.
func (s *Server) handleDebugCostmodel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	a := s.audit
	beta := core.DefaultEvalOptions().Beta
	out := struct {
		ConfiguredBeta float64                 `json:"configured_beta"`
		Window         int                     `json:"window"`
		TotalSamples   int64                   `json:"total_samples"`
		SuggestedBeta  *float64                `json:"suggested_beta,omitempty"`
		FitA           *float64                `json:"fit_compress_coeff,omitempty"`
		FitB           *float64                `json:"fit_support_coeff,omitempty"`
		Misroutes      int64                   `json:"misroutes"`
		ShadowEvals    int64                   `json:"shadow_evals"`
		Layers         []cost.LayerCalibration `json:"layers"`
	}{
		ConfiguredBeta: beta,
		Window:         a.cal.Len(),
		TotalSamples:   a.cal.Total(),
		Misroutes:      a.misroutes.Load(),
		ShadowEvals:    a.shadows.Load(),
		Layers:         a.cal.Summary(beta),
	}
	if betaHat, fa, fb, ok := a.cal.Fit(); ok {
		out.SuggestedBeta, out.FitA, out.FitB = &betaHat, &fa, &fb
	}
	writeJSON(w, out)
}

package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bigindex/internal/obs"
)

// The calibration endpoint is gated like every other /debug surface and
// rejects non-GET methods.
func TestCostmodelGating(t *testing.T) {
	s, _ := robustServer(t, Options{})
	rec, _ := get(t, s, "/debug/costmodel")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("costmodel with endpoints off = %d, want 404", rec.Code)
	}

	s2, _ := robustServer(t, Options{Debug: DebugOptions{Endpoints: true}})
	req := httptest.NewRequest(http.MethodPost, "/debug/costmodel", nil)
	rr := httptest.NewRecorder()
	s2.ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST costmodel = %d, want 405", rr.Code)
	}
}

// Routed queries must populate the calibration window; the report carries
// the configured β and one row per (algo, layer) observed.
func TestCostmodelCalibration(t *testing.T) {
	s, ds := robustServer(t, Options{Debug: DebugOptions{Endpoints: true, Sample: 1}})
	kw := popularTerm(ds)

	rec, body := get(t, s, "/debug/costmodel")
	if rec.Code != http.StatusOK {
		t.Fatalf("empty costmodel = %d: %s", rec.Code, rec.Body.String())
	}
	if body["window"] != float64(0) || body["configured_beta"] != 0.5 {
		t.Fatalf("empty report: %v", body)
	}
	if _, ok := body["suggested_beta"]; ok {
		t.Fatalf("β̂ must not be suggested from an empty window: %v", body)
	}

	// Routed (non-direct) evaluations feed the window; the cache is
	// bypassed so every request is a fresh sample.
	for i := 0; i < 4; i++ {
		rec, _ := get(t, s, "/query?q="+kw+"&algo=blinks&k=5&nocache=1")
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: %d", i, rec.Code)
		}
	}
	// Direct evaluations must NOT feed it — the router made no choice.
	if rec, _ := get(t, s, "/query?q="+kw+"&algo=blinks&k=5&direct=1&nocache=1"); rec.Code != http.StatusOK {
		t.Fatalf("direct query: %d", rec.Code)
	}

	rec, body = get(t, s, "/debug/costmodel")
	if rec.Code != http.StatusOK {
		t.Fatalf("costmodel = %d", rec.Code)
	}
	if body["window"] != float64(4) || body["total_samples"] != float64(4) {
		t.Fatalf("window after 4 routed + 1 direct queries: %v", body)
	}
	layers, _ := body["layers"].([]interface{})
	if len(layers) == 0 {
		t.Fatalf("no calibration rows: %v", body)
	}
	row := layers[0].(map[string]interface{})
	if row["algo"] != "blinks" {
		t.Fatalf("row: %v", row)
	}
	if n, _ := row["count"].(float64); n != 4 {
		t.Fatalf("row count: %v", row)
	}
	if r, _ := row["mean_ratio"].(float64); r <= 0 {
		t.Fatalf("mean predicted/observed ratio must be positive: %v", row)
	}

	// The exported histogram observed the same four ratios.
	mrec, _ := get(t, s, "/metrics")
	if mrec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", mrec.Code)
	}
	if !strings.Contains(mrec.Body.String(), `bigindex_costmodel_error_count{algo="blinks"`) {
		t.Fatalf("calibration histogram missing from /metrics:\n%s", mrec.Body.String())
	}
}

// A cache hit re-serves the leader's result without evaluating, so it must
// not add a calibration sample.
func TestCostmodelSkipsCacheHits(t *testing.T) {
	s, ds := robustServer(t, Options{Debug: DebugOptions{Endpoints: true}})
	kw := popularTerm(ds)
	for i := 0; i < 3; i++ {
		if rec, _ := get(t, s, "/query?q="+kw+"&algo=blinks&k=5"); rec.Code != http.StatusOK {
			t.Fatalf("query %d: %d", i, rec.Code)
		}
	}
	_, body := get(t, s, "/debug/costmodel")
	if body["window"] != float64(1) {
		t.Fatalf("cache hits leaked into the window: %v", body)
	}
}

// /stats must report the flight recorder's ring occupancy.
func TestStatsRecorderOccupancy(t *testing.T) {
	s, ds := robustServer(t, Options{Debug: DebugOptions{Sample: 1}})
	if rec, _ := get(t, s, "/query?q="+popularTerm(ds)+"&algo=blinks&k=5"); rec.Code != http.StatusOK {
		t.Fatalf("query: %d", rec.Code)
	}
	_, body := get(t, s, "/stats")
	r, _ := body["recorder"].(map[string]interface{})
	if r == nil {
		t.Fatalf("stats carries no recorder block: %v", body)
	}
	if cap, _ := r["capacity"].(float64); cap <= 0 {
		t.Fatalf("recorder capacity: %v", r)
	}
	if kept, _ := r["retained"].(float64); kept != 1 {
		t.Fatalf("retained = %v, want 1", r["retained"])
	}
	if _, ok := r["by_reason"].(map[string]interface{}); !ok {
		t.Fatalf("recorder by_reason: %v", r)
	}
}

// /debug/traces?since=<duration> restricts the listing to recent traces and
// rejects malformed durations.
func TestDebugTracesSince(t *testing.T) {
	s, ds := robustServer(t, Options{Debug: DebugOptions{Endpoints: true, Sample: 1}})
	if rec, _ := get(t, s, "/query?q="+popularTerm(ds)+"&algo=blinks&k=5"); rec.Code != http.StatusOK {
		t.Fatalf("query: %d", rec.Code)
	}

	for _, bad := range []string{"bogus", "-5s", "0s"} {
		rec, _ := get(t, s, "/debug/traces?since="+bad)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("since=%s = %d, want 400", bad, rec.Code)
		}
	}

	rec, body := get(t, s, "/debug/traces?since=1h")
	if rec.Code != http.StatusOK {
		t.Fatalf("since=1h: %d", rec.Code)
	}
	if traces, _ := body["traces"].([]interface{}); len(traces) != 1 {
		t.Fatalf("since=1h traces: %v", body)
	}

	// After the trace has aged past a tiny window it must be filtered out.
	time.Sleep(30 * time.Millisecond)
	_, body = get(t, s, "/debug/traces?since=1ms")
	if traces, _ := body["traces"].([]interface{}); len(traces) != 0 {
		t.Fatalf("since=1ms should filter the old trace: %v", body)
	}
}

// Retained traces carry the query's cost ledger snapshot.
func TestDebugTraceCarriesCost(t *testing.T) {
	s, ds := robustServer(t, Options{Debug: DebugOptions{Endpoints: true, Sample: 1}})
	if rec, _ := get(t, s, "/query?q="+popularTerm(ds)+"&algo=blinks&k=5"); rec.Code != http.StatusOK {
		t.Fatalf("query: %d", rec.Code)
	}
	_, body := get(t, s, "/debug/traces")
	traces, _ := body["traces"].([]interface{})
	if len(traces) != 1 {
		t.Fatalf("traces: %v", body)
	}
	entry := traces[0].(map[string]interface{})
	cost, _ := entry["cost"].(map[string]interface{})
	if cost == nil {
		t.Fatalf("trace has no cost ledger: %v", entry)
	}
	if wu, _ := cost["work_units"].(float64); wu <= 0 {
		t.Fatalf("trace cost work_units: %v", cost)
	}
	if fp, _ := cost["frontier_peak"].(float64); fp <= 0 {
		t.Fatalf("trace cost frontier_peak: %v", cost)
	}

	// The by-ID view carries the same ledger next to the span tree.
	id, _ := entry["id"].(string)
	_, byID := get(t, s, "/debug/traces/"+id)
	if c, _ := byID["cost"].(map[string]interface{}); c == nil || c["work_units"] != cost["work_units"] {
		t.Fatalf("by-ID cost mismatch: %v vs %v", byID["cost"], cost)
	}
}

// The opt-in query log captures one entry per /query with the resolved
// keyword names and the cost snapshot — the input the replay harness needs.
func TestQueryLogCapture(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qlog.jsonl")
	ql, err := obs.OpenQueryLog(obs.QueryLogOptions{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	s, ds := robustServer(t, Options{QueryLog: ql})
	kw := popularTerm(ds)

	if rec, _ := get(t, s, "/query?q="+kw+"&algo=blinks&k=5"); rec.Code != http.StatusOK {
		t.Fatal("routed query failed")
	}
	if rec, _ := get(t, s, "/query?q="+kw+"&algo=blinks&k=5"); rec.Code != http.StatusOK {
		t.Fatal("repeat query failed")
	}
	if rec, _ := get(t, s, "/query?q="+kw+"&algo=bkws&k=3&direct=1"); rec.Code != http.StatusOK {
		t.Fatal("direct query failed")
	}
	if err := ql.Close(); err != nil {
		t.Fatal(err)
	}

	entries, skipped, err := obs.ReadQueryLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(entries) != 3 {
		t.Fatalf("captured %d entries (%d skipped)", len(entries), skipped)
	}
	e := entries[0]
	if e.Algo != "blinks" || e.K != 5 || e.Outcome != "ok" || e.Direct || e.Cached {
		t.Fatalf("first entry: %+v", e)
	}
	if len(e.Keywords) == 0 || e.Keywords[0] != kw {
		t.Fatalf("keywords not captured by name: %+v", e.Keywords)
	}
	if e.Cost == nil || e.Cost.WorkUnits <= 0 {
		t.Fatalf("first entry cost: %+v", e.Cost)
	}
	if e.DurUS < 0 {
		t.Fatalf("duration: %+v", e)
	}
	if !entries[1].Cached {
		t.Fatalf("repeat entry not marked cached: %+v", entries[1])
	}
	if !entries[2].Direct || entries[2].Algo != "bkws" {
		t.Fatalf("direct entry: %+v", entries[2])
	}
}

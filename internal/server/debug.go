package server

// Debug endpoints for the in-process flight recorder. They are off by
// default (Options.Debug.Endpoints) because they expose query text and
// internal structure; enable them on trusted/loopback listeners only.

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"bigindex/internal/obs"
	"bigindex/internal/shardrpc"
)

// traceSummary is the list-view rendering of a retained trace: everything
// in TraceRecord except the span tree, which only /debug/traces/{id}
// returns (a full ring can hold hundreds of deep trees).
type traceSummary struct {
	ID      string    `json:"id"`
	Query   string    `json:"query,omitempty"`
	Algo    string    `json:"algo,omitempty"`
	Outcome string    `json:"outcome"`
	Keep    string    `json:"keep"`
	Start   time.Time `json:"start"`
	DurUS   int64     `json:"dur_us"`
	// Cost is the query's resource ledger — small enough (a few counters)
	// to carry in the list view, unlike the span tree.
	Cost *obs.LedgerSnapshot `json:"cost,omitempty"`
}

// handleDebugTraces lists retained traces, most recent first.
// Query params: algo (exact), outcome (exact: ok|degraded|error|cancelled|
// shed), min (Go duration, e.g. 50ms), since (Go duration: only traces
// started within the last so-much), limit (default 50).
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	f := obs.TraceFilter{
		Algo:    r.URL.Query().Get("algo"),
		Outcome: r.URL.Query().Get("outcome"),
	}
	if m := r.URL.Query().Get("min"); m != "" {
		d, err := time.ParseDuration(m)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad min duration %q: %w", m, err))
			return
		}
		f.MinDur = d
	}
	if sv := r.URL.Query().Get("since"); sv != "" {
		d, err := time.ParseDuration(sv)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad since duration %q (try 5m, 1h)", sv))
			return
		}
		f.Since = time.Now().Add(-d)
	}
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", l))
			return
		}
		f.Limit = n
	}
	recs := s.recorder.Traces(f)
	out := struct {
		Retained int            `json:"retained"`
		Traces   []traceSummary `json:"traces"`
	}{Retained: s.recorder.Len(), Traces: make([]traceSummary, 0, len(recs))}
	for _, rec := range recs {
		out.Traces = append(out.Traces, traceSummary{
			ID: rec.ID, Query: rec.Query, Algo: rec.Algo, Outcome: rec.Outcome,
			Keep: rec.Keep, Start: rec.Start, DurUS: rec.DurUS, Cost: rec.Cost,
		})
	}
	writeJSON(w, out)
}

// handleDebugTraceByID returns one retained trace with its full span tree,
// per-phase timings, and the paper-phase attrs (layer selection, Prop 4.1
// filtering, Defs 4.2/4.3 check counts) set by eval and the algorithms.
func (s *Server) handleDebugTraceByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	if id == "" || strings.Contains(id, "/") {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad trace id %q", id))
		return
	}
	rec, ok := s.recorder.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("trace %q not retained (evicted or never kept)", id))
		return
	}
	writeJSON(w, rec)
}

// handleDebugActive lists in-flight queries: elapsed time and the current
// span path (e.g. "query>Eval>Specialize"), longest-running first. Queries
// parked in the shed gate appear here too — the gate registers with the
// live registry before acquiring a slot.
func (s *Server) handleDebugActive(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	act := s.recorder.Active()
	writeJSON(w, struct {
		Count  int               `json:"count"`
		Active []obs.ActiveQuery `json:"active"`
	}{len(act), act})
}

// handleDebugFleet reports the shard fleet as the coordinator sees it:
// one row per configured peer with its breaker health, advertised
// identity (digest / blocks / block size), negotiated capabilities, and
// — for peers speaking the Stats RPC — a live resource and counter
// snapshot from inside the peer process. 404 when the server has no
// shard client (single-process deployments have no fleet to report).
func (s *Server) handleDebugFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	c := s.opt.ShardClient
	if c == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no shard fleet configured (-shard-peers)"))
		return
	}
	peers := c.FleetSnapshot(r.Context())
	floor := c.CoverageFloor()
	writeJSON(w, struct {
		Peers         []shardrpc.PeerFleetInfo `json:"peers"`
		CoverageFloor float64                  `json:"coverage_floor"`
	}{peers, floor})
}

// debugLayer is one row of /debug/index: the per-layer shape of the
// BiG-index plus the generalization quality measures of Sec. 3 — the
// compression ratio |Gⁱ|/|G⁰| and the label distortion of Cⁱ against the
// layer it generalizes.
type debugLayer struct {
	Layer    int     `json:"layer"`
	Vertices int     `json:"vertices"`
	Edges    int     `json:"edges"`
	Size     int     `json:"size"`
	Ratio    float64 `json:"compression_ratio"`
	// ConfigRules is |Cⁱ|, the number of label generalization rules
	// (0 at layer 0, which has no config).
	ConfigRules int `json:"config_rules,omitempty"`
	// BasicDistortion averages per-label distortion uniformly (Eq. of
	// Sec. 3); Distortion weights it by label support in Gⁱ⁻¹.
	BasicDistortion float64 `json:"basic_distortion,omitempty"`
	Distortion      float64 `json:"distortion,omitempty"`
}

// handleDebugIndex reports the served index's per-layer statistics,
// epoch, and data-graph digest — enough to correlate a trace's chosen
// layer with the index it ran against.
func (s *Server) handleDebugIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	st := s.st()
	idx := st.idx
	stats := idx.Stats()
	layers := make([]debugLayer, 0, len(stats.Layers))
	for _, ls := range stats.Layers {
		dl := debugLayer{
			Layer: ls.Layer, Vertices: ls.Vertices, Edges: ls.Edges,
			Size: ls.Size, Ratio: ls.Ratio, ConfigRules: ls.ConfigSize,
		}
		if c := idx.Layer(ls.Layer).Config; c != nil {
			dl.BasicDistortion = c.BasicDistortion()
			dl.Distortion = c.Distortion(idx.Layer(ls.Layer - 1).Graph)
		}
		layers = append(layers, dl)
	}
	// The partition block reports the sharding layout of the data graph:
	// block count, edge cut, and the min/max block sizes whose spread is
	// the skew a scatter-gather round is exposed to (the slowest block
	// bounds the round). Unlike /stats, this endpoint builds the plan on
	// demand — /debug is opt-in and the numbers should always be there.
	plan := st.plans.For(idx.Data())
	minB, maxB := plan.Partitioning().BlockSizes()
	type partitionJSON struct {
		Blocks     int `json:"blocks"`
		EdgeCut    int `json:"edge_cut"`
		TargetSize int `json:"target_block_size"`
		MinBlock   int `json:"min_block"`
		MaxBlock   int `json:"max_block"`
	}
	writeJSON(w, struct {
		Layers    []debugLayer  `json:"layers"`
		TotalSize int           `json:"total_size"`
		Epoch     uint64        `json:"epoch"`
		Digest    string        `json:"digest"`
		Partition partitionJSON `json:"partition"`
	}{
		Layers:    layers,
		TotalSize: idx.TotalSize(),
		Epoch:     idx.Epoch(),
		Digest:    strconv.FormatUint(idx.Data().Digest(), 16),
		Partition: partitionJSON{
			Blocks:     plan.NumBlocks(),
			EdgeCut:    plan.EdgeCut(),
			TargetSize: s.opt.BlockSize,
			MinBlock:   minB,
			MaxBlock:   maxB,
		},
	})
}

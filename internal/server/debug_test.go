package server

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"

	"bigindex/internal/graph"
	"bigindex/internal/search"
)

// The debug endpoints are off unless explicitly enabled: they must 404 on
// a default server even though the recorder itself is running.
func TestDebugEndpointsOffByDefault(t *testing.T) {
	s, _ := robustServer(t, Options{})
	for _, path := range []string{"/debug/traces", "/debug/traces/x", "/debug/active", "/debug/index", "/debug/costmodel"} {
		rec, _ := get(t, s, path)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("%s = %d, want 404 with endpoints off", path, rec.Code)
		}
	}
}

// The acceptance path: a deadline-degraded query is always retained by
// tail sampling (outcome != ok) and retrievable by ID with its span tree.
func TestDebugTraceDegradedRetained(t *testing.T) {
	slow := &stubAlgo{name: "slow", fn: func(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
		ms := []search.Match{{Root: 0, Score: 1}}
		<-ctx.Done()
		return ms, context.Cause(ctx)
	}}
	s, ds := robustServer(t, Options{
		ExtraAlgorithms: map[string]search.Algorithm{"slow": slow},
		Debug:           DebugOptions{Endpoints: true},
	})
	kw := popularTerm(ds)

	rec, body := get(t, s, "/query?q="+kw+"&algo=slow&direct=1&timeout=50ms")
	if rec.Code != http.StatusOK || body["degraded"] != true {
		t.Fatalf("setup query: %d %v", rec.Code, body)
	}

	rec, body = get(t, s, "/debug/traces?outcome=degraded")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces = %d: %s", rec.Code, rec.Body.String())
	}
	traces, _ := body["traces"].([]interface{})
	if len(traces) != 1 {
		t.Fatalf("want 1 degraded trace, got %v", body)
	}
	entry := traces[0].(map[string]interface{})
	id, _ := entry["id"].(string)
	if id == "" || entry["outcome"] != "degraded" || entry["keep"] != "outcome" {
		t.Fatalf("trace summary: %v", entry)
	}
	if _, hasSpans := entry["spans"]; hasSpans {
		t.Fatalf("list view must not carry span trees: %v", entry)
	}

	rec, body = get(t, s, "/debug/traces/"+id)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces/%s = %d: %s", id, rec.Code, rec.Body.String())
	}
	if body["id"] != id {
		t.Fatalf("trace body id = %v", body["id"])
	}
	raw := rec.Body.String()
	// The full record carries the span tree: the query root span and the
	// Direct child the evaluator opened for this request.
	for _, want := range []string{`"spans"`, `"Direct"`, `"dur_us"`} {
		if !strings.Contains(raw, want) {
			t.Fatalf("trace body missing %s:\n%s", want, raw)
		}
	}

	rec, _ = get(t, s, "/debug/traces/does-not-exist")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("missing id = %d, want 404", rec.Code)
	}
	rec, _ = get(t, s, "/debug/traces?min=banana")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad min = %d, want 400", rec.Code)
	}
}

// A full (non-direct) evaluation retained at sample=1 carries the
// paper-phase spans and counters: the Specialize span tree with the
// Prop 4.1 in→out attrs, and the phase counters surface on /metrics with
// an exemplar trace ID on the latency histogram.
func TestDebugTracePaperPhaseCounters(t *testing.T) {
	s, ds := robustServer(t, Options{
		Debug: DebugOptions{Endpoints: true, Sample: 1},
	})
	if s.Index().NumLayers() < 2 {
		t.Skip("dataset built a single layer; no specialization to observe")
	}
	kw := popularTerm(ds)

	// Pin layer 1 so the query must specialize back to G⁰ (the cost model
	// may legitimately pick layer 0 on a small index, which has no
	// Specialize phase to observe).
	rec, _ := get(t, s, "/query?q="+kw+"&algo=blinks&layer=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d: %s", rec.Code, rec.Body.String())
	}

	rec, body := get(t, s, "/debug/traces?limit=1")
	traces, _ := body["traces"].([]interface{})
	if rec.Code != http.StatusOK || len(traces) != 1 {
		t.Fatalf("/debug/traces = %d %v", rec.Code, body)
	}
	id := traces[0].(map[string]interface{})["id"].(string)

	rec, _ = get(t, s, "/debug/traces/"+id)
	raw := rec.Body.String()
	for _, want := range []string{`"Select"`, `"Search"`, `"Specialize"`, `"layer"`} {
		if !strings.Contains(raw, want) {
			t.Fatalf("trace missing %s:\n%s", want, raw)
		}
	}

	rec, _ = get(t, s, "/metrics")
	metrics := rec.Body.String()
	for _, name := range []string{
		"bigindex_query_layer_total{algo=\"blinks\"",
		"bigindex_prop41_candidates_total",
		"bigindex_topk_stops_total",
		"bigindex_gen_checks_total",
		"bigindex_spec_fanout_bucket",
		"bigindex_trace_kept_total",
	} {
		if !strings.Contains(metrics, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
	// Exemplar: the query latency bucket cross-links to the trace we just
	// fetched (the only query so far, so its ID is the one remembered).
	if !strings.Contains(metrics, `# {trace_id="`+id+`"}`) {
		t.Fatalf("/metrics missing exemplar for trace %s", id)
	}
}

// /debug/active surfaces in-flight queries with their current span path;
// the entry disappears once the query completes.
func TestDebugActive(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	block := &stubAlgo{name: "block", fn: func(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}}
	s, ds := robustServer(t, Options{
		ExtraAlgorithms: map[string]search.Algorithm{"block": block},
		Debug:           DebugOptions{Endpoints: true},
	})
	kw := popularTerm(ds)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, s, "/query?q="+kw+"&algo=block&direct=1")
	}()
	<-started

	rec, body := get(t, s, "/debug/active")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/active = %d", rec.Code)
	}
	active, _ := body["active"].([]interface{})
	if len(active) != 1 {
		t.Fatalf("want 1 active query, got %v", body)
	}
	entry := active[0].(map[string]interface{})
	if entry["algo"] != "block" || entry["trace_id"] == "" {
		t.Fatalf("active entry: %v", entry)
	}
	if cur, _ := entry["current"].(string); !strings.Contains(cur, "Direct") {
		t.Fatalf("current span path = %q, want through Direct", cur)
	}
	if el, _ := entry["elapsed_us"].(float64); el <= 0 {
		t.Fatalf("elapsed_us = %v", entry["elapsed_us"])
	}

	close(release)
	wg.Wait()
	_, body = get(t, s, "/debug/active")
	if n, _ := body["count"].(float64); n != 0 {
		t.Fatalf("active after completion: %v", body)
	}
}

// A shed query reaches the recorder with outcome=shed even though it never
// entered evaluation.
func TestDebugTraceShedRetained(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	block := &stubAlgo{name: "block", fn: func(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return nil, nil
	}}
	s, ds := robustServer(t, Options{
		MaxInFlight:     1,
		ShedWait:        -1,
		ExtraAlgorithms: map[string]search.Algorithm{"block": block},
		Debug:           DebugOptions{Endpoints: true},
	})
	kw := popularTerm(ds)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, s, "/query?q="+kw+"&algo=block&direct=1")
	}()
	<-started

	rec, _ := get(t, s, "/query?q="+kw+"&algo=block&direct=1")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second query = %d, want 429", rec.Code)
	}
	close(release)
	wg.Wait()

	_, body := get(t, s, "/debug/traces?outcome=shed")
	traces, _ := body["traces"].([]interface{})
	if len(traces) != 1 {
		t.Fatalf("want 1 shed trace, got %v", body)
	}
}

// /debug/index reports the hierarchy's per-layer shape, the generalization
// quality measures, the epoch, and the data-graph digest.
func TestDebugIndex(t *testing.T) {
	s, _ := robustServer(t, Options{Debug: DebugOptions{Endpoints: true}})
	rec, body := get(t, s, "/debug/index")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/index = %d: %s", rec.Code, rec.Body.String())
	}
	layers, _ := body["layers"].([]interface{})
	if len(layers) != s.Index().NumLayers() {
		t.Fatalf("layers = %d, want %d", len(layers), s.Index().NumLayers())
	}
	l0 := layers[0].(map[string]interface{})
	if l0["compression_ratio"] != 1.0 {
		t.Fatalf("layer 0 ratio = %v, want 1", l0["compression_ratio"])
	}
	if len(layers) > 1 {
		l1 := layers[1].(map[string]interface{})
		if r, _ := l1["compression_ratio"].(float64); r <= 0 || r > 1 {
			t.Fatalf("layer 1 ratio = %v", l1["compression_ratio"])
		}
		if d, _ := l1["distortion"].(float64); d < 0 || d >= 1 {
			t.Fatalf("layer 1 distortion = %v", l1["distortion"])
		}
		if cr, _ := l1["config_rules"].(float64); cr <= 0 {
			t.Fatalf("layer 1 config_rules = %v", l1["config_rules"])
		}
	}
	if dg, _ := body["digest"].(string); dg == "" {
		t.Fatal("digest missing")
	}
	if ts, _ := body["total_size"].(float64); ts <= 0 {
		t.Fatalf("total_size = %v", body["total_size"])
	}
	if _, ok := body["epoch"].(float64); !ok {
		t.Fatalf("epoch missing: %v", body)
	}
}

// Sample < 0 disables the recorder entirely; queries still work and the
// debug endpoints answer with empty data rather than failing.
func TestDebugRecorderDisabled(t *testing.T) {
	s, ds := robustServer(t, Options{
		Debug: DebugOptions{Endpoints: true, Sample: -1},
	})
	kw := popularTerm(ds)
	rec, _ := get(t, s, "/query?q="+kw)
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d", rec.Code)
	}
	rec, body := get(t, s, "/debug/traces")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces = %d", rec.Code)
	}
	if n, _ := body["retained"].(float64); n != 0 {
		t.Fatalf("disabled recorder retained %v traces", n)
	}
}

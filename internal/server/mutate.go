package server

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/wal"
)

// MutatorOptions configures the live mutation service.
type MutatorOptions struct {
	// WAL, when non-nil, receives every accepted batch *before* it is
	// applied: an acknowledged mutation survives kill -9 by construction.
	// Nil runs the service without durability (tests, ephemeral demos).
	WAL *wal.Log
	// Persist writes a durable snapshot of idx whose metadata records seq
	// as the last WAL batch it covers — the compaction step. Nil disables
	// compaction (Compact returns an error, auto-compaction is off).
	Persist func(ctx context.Context, idx *core.Index, seq uint64) error
	// DamageBudget caps the fraction of data-graph vertices a delta may
	// plausibly disturb before maintenance gives up and the batch goes
	// through the full-rebuild fallback instead. 0 picks the default
	// (0.25); negative disables the budget entirely.
	DamageBudget float64
	// MaxWALBytes triggers automatic compaction after any apply that
	// leaves the log larger than this. 0 disables the size trigger.
	MaxWALBytes int64
	// MaxBatch caps the mutations (vertices + adds + removes) accepted in
	// one batch (0 = 10000). A cap keeps one request from holding the
	// write lock for minutes.
	MaxBatch int
	// Logger receives apply/compact outcomes. Nil discards.
	Logger *slog.Logger
}

// MutationRequest is the POST /admin/edges body. Vertices are added by
// label *name* and must already exist in the dictionary — new vocabulary
// changes the label universe and requires a rebuild, exactly like the
// reloader's Rebase policy.
type MutationRequest struct {
	AddVertices []string       `json:"add_vertices,omitempty"`
	AddEdges    []mutationEdge `json:"add_edges,omitempty"`
	RemoveEdges []mutationEdge `json:"remove_edges,omitempty"`
}

type mutationEdge struct {
	From uint32 `json:"from"`
	To   uint32 `json:"to"`
}

// MutationResult describes one applied batch.
type MutationResult struct {
	Seq          uint64
	Epoch        uint64
	Path         string // "absorbed", "delta", or "rebuild"
	AffectedFrac float64
	Layers       int
	Elapsed      time.Duration
	Compacted    bool // an auto-compaction ran after the apply
}

// MutationHealth is the mutation service's /stats block.
type MutationHealth struct {
	Seq       uint64
	WALBytes  int64
	LastApply time.Time // zero when no batch has been applied this run
}

// ErrBadMutation marks request-validation failures (HTTP 400).
var ErrBadMutation = errors.New("server: invalid mutation batch")

// ErrWALAppend marks durability failures: the batch was NOT accepted and
// must be retried (HTTP 503).
var ErrWALAppend = errors.New("server: mutation could not be made durable")

// Mutator is the write path: it validates mutation batches against the
// served index, makes them durable in the WAL, applies them through
// core.Applied (bisim.Maintainer + per-layer reuse) with an atomic index
// swap and epoch bump per batch, and falls back to the reloader's
// full-rebuild path when delta maintenance refuses. One batch applies at
// a time; queries never block (they read the atomic index pointer).
type Mutator struct {
	s   *Server
	opt MutatorOptions

	mu        sync.Mutex    // serializes Apply and Compact
	seq       atomic.Uint64 // last applied batch sequence (atomic: read by stats/AfterSwap without mu)
	lastApply atomic.Int64  // unix nanos of the last successful apply

	applyTotal  *obs.CounterVec
	applySec    *obs.Histogram
	walAppends  *obs.Counter
	compactions *obs.CounterVec
}

// NewMutator wires a mutation service into s: /admin/edges and
// /admin/compact begin delegating to it, /stats gains a mutation block,
// and the mutation metrics register on the server's registry. startSeq is
// the sequence number of the last batch already folded into the served
// index (snapshot WALSeq + replayed tail); new batches continue from it.
func NewMutator(s *Server, startSeq uint64, opt MutatorOptions) *Mutator {
	if opt.DamageBudget == 0 {
		opt.DamageBudget = 0.25
	}
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = 10000
	}
	if opt.Logger == nil {
		opt.Logger = obs.DiscardLogger()
	}
	m := &Mutator{s: s, opt: opt}
	m.seq.Store(startSeq)
	m.applyTotal = s.reg.CounterVec("bigindex_mutation_total",
		"Mutation batches by outcome (absorbed, delta, rebuild, invalid, wal_error, error).",
		"outcome")
	m.applySec = s.reg.Histogram("bigindex_mutation_seconds",
		"End-to-end mutation batch apply latency in seconds (WAL append + maintenance + swap).",
		nil)
	m.walAppends = s.reg.Counter("bigindex_wal_appends_total",
		"Mutation batches made durable in the write-ahead log.")
	m.compactions = s.reg.CounterVec("bigindex_compaction_total",
		"WAL compactions by outcome (success, persist_error, reset_error).", "outcome")
	if opt.WAL != nil {
		s.reg.GaugeFunc("bigindex_wal_bytes",
			"Current write-ahead log size in bytes (header included).",
			func() float64 { return float64(opt.WAL.Size()) })
	}
	s.SetMutator(m)
	return m
}

// Seq reports the sequence number of the last applied batch. Lock-free on
// purpose: the daemon's AfterSwap hook reads it while the reloader holds
// its own lock, and a mutex here would couple the two lock orders.
func (m *Mutator) Seq() uint64 { return m.seq.Load() }

// Health reports the mutation service's current state.
func (m *Mutator) Health() MutationHealth {
	h := MutationHealth{Seq: m.seq.Load()}
	if m.opt.WAL != nil {
		h.WALBytes = m.opt.WAL.Size()
	}
	if ns := m.lastApply.Load(); ns != 0 {
		h.LastApply = time.Unix(0, ns)
	}
	return h
}

// Apply runs one mutation batch end to end: validate against the served
// index, append to the WAL (durability point — only after the fsync
// returns is the batch acknowledged), apply via delta maintenance or the
// rebuild fallback, swap atomically, bump the epoch, refresh staleness.
func (m *Mutator) Apply(ctx context.Context, req MutationRequest) (MutationResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Also serialize against reloads: a reload snapshots the live graph,
	// rebuilds, and swaps — a mutation landing in between would be
	// overwritten by the swap while the WAL claims it applied. Lock order
	// is m.mu then rl.mu everywhere (the rebuild fallback follows it too),
	// and Reload's AfterSwap reads the sequence through the atomic, so the
	// orders never cross.
	rl := m.s.reloader.Load()
	if rl != nil {
		rl.mu.Lock()
		defer rl.mu.Unlock()
	}
	start := time.Now()

	cur := m.s.Index()
	d, err := validateMutation(cur.Data(), req, m.opt.MaxBatch)
	if err != nil {
		m.applyTotal.With("invalid").Inc()
		return MutationResult{}, err
	}

	seq := m.seq.Load() + 1
	var mark wal.Mark
	if m.opt.WAL != nil {
		mark = m.opt.WAL.Mark()
		if err := m.opt.WAL.Append(wal.Batch{
			Seq:         seq,
			AddVertices: d.AddVertices,
			AddEdges:    d.AddEdges,
			RemoveEdges: d.RemoveEdges,
		}); err != nil {
			m.applyTotal.With("wal_error").Inc()
			m.opt.Logger.Error("mutation WAL append failed; batch rejected", "seq", seq, "err", err)
			return MutationResult{}, fmt.Errorf("%w: %v", ErrWALAppend, err)
		}
		m.walAppends.Inc()
	}

	res, err := m.applyBatch(ctx, rl, cur, d)
	if err != nil {
		// The record is durable but the batch is NOT acknowledged: roll the
		// WAL back so boot replay cannot resurrect a batch the client was
		// told failed. If even the rollback fails the log wedges itself and
		// further mutations get 503s — divergence is never silent.
		if m.opt.WAL != nil {
			if rbErr := m.opt.WAL.Rollback(mark); rbErr != nil {
				m.opt.Logger.Error("WAL rollback after failed apply ALSO failed; mutation log wedged",
					"seq", seq, "apply_err", err, "rollback_err", rbErr)
			}
		}
		m.applyTotal.With("error").Inc()
		return MutationResult{}, err
	}

	m.seq.Store(seq)
	m.lastApply.Store(time.Now().UnixNano())
	if rl != nil {
		rl.MarkFresh() // a mutated index is a fresh index, not a stale one
	}
	res.Seq = seq
	res.Elapsed = time.Since(start)
	m.applyTotal.With(res.Path).Inc()
	m.applySec.Observe(res.Elapsed.Seconds())
	m.opt.Logger.Info("mutation applied",
		"seq", seq, "path", res.Path, "epoch", res.Epoch,
		"add_vertices", len(d.AddVertices), "add_edges", len(d.AddEdges), "remove_edges", len(d.RemoveEdges),
		"affected_frac", res.AffectedFrac, "elapsed_ms", res.Elapsed.Milliseconds())

	if m.opt.WAL != nil && m.opt.MaxWALBytes > 0 && m.opt.WAL.Size() > m.opt.MaxWALBytes {
		if _, err := m.compactLocked(ctx); err != nil {
			// Auto-compaction failure is not an apply failure: the batch is
			// durable and serving; the log just stays long until the next
			// trigger or a manual /admin/compact succeeds.
			m.opt.Logger.Warn("auto-compaction failed; WAL keeps growing", "err", err)
		} else {
			res.Compacted = true
		}
	}
	return res, nil
}

// applyBatch tries delta maintenance first and falls back to a full
// rebuild through the reloader's circuit-accounted path (or a plain
// Refreshed when no reloader is wired).
func (m *Mutator) applyBatch(ctx context.Context, rl *Reloader, cur *core.Index, d core.Delta) (MutationResult, error) {
	next, rep, err := cur.Applied(d, core.DeltaOptions{MaxAffectedFrac: m.opt.DamageBudget})
	if err == nil {
		m.s.SwapIndex(next)
		path := "delta"
		if rep.Absorbed {
			path = "absorbed"
		}
		return MutationResult{
			Epoch:        next.Epoch(),
			Path:         path,
			AffectedFrac: rep.AffectedFrac,
			Layers:       next.NumLayers(),
		}, nil
	}

	reason := "budget"
	if !errors.Is(err, core.ErrDeltaTooLarge) {
		reason = "maintenance"
	}
	m.opt.Logger.Warn("delta maintenance refused batch; falling back to full rebuild",
		"reason", reason, "err", err)

	patched, perr := graph.Patch(cur.Data(), d.AddVertices, d.AddEdges, d.RemoveEdges)
	if perr != nil {
		return MutationResult{}, fmt.Errorf("server: mutation fallback patch: %w", perr)
	}
	var frac float64
	if rep != nil {
		frac = rep.AffectedFrac
	}
	if rl != nil {
		next, rerr := rl.swapGraphLocked(ctx, patched)
		if rerr != nil {
			return MutationResult{}, fmt.Errorf("server: mutation fallback rebuild: %w", rerr)
		}
		return MutationResult{Epoch: next.Epoch(), Path: "rebuild", AffectedFrac: frac, Layers: next.NumLayers()}, nil
	}
	next, rerr := cur.Refreshed(patched)
	if rerr != nil {
		return MutationResult{}, fmt.Errorf("server: mutation fallback rebuild: %w", rerr)
	}
	m.s.SwapIndex(next)
	return MutationResult{Epoch: next.Epoch(), Path: "rebuild", AffectedFrac: frac, Layers: next.NumLayers()}, nil
}

// CompactResult describes one compaction.
type CompactResult struct {
	Seq      uint64 // last batch covered by the persisted snapshot
	WALBytes int64  // log size after truncation
	Elapsed  time.Duration
}

// Compact persists a snapshot covering every applied batch, then
// truncates the WAL. The order is the crash-safety argument: a crash
// after the snapshot but before the truncate leaves records whose seq the
// snapshot already covers — boot replay skips them — and a crash before
// the snapshot leaves everything as it was.
func (m *Mutator) Compact(ctx context.Context) (CompactResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.compactLocked(ctx)
}

func (m *Mutator) compactLocked(ctx context.Context) (CompactResult, error) {
	if m.opt.WAL == nil || m.opt.Persist == nil {
		return CompactResult{}, fmt.Errorf("server: compaction is not configured (need a WAL and a snapshot path)")
	}
	start := time.Now()
	seq := m.seq.Load()
	if err := m.opt.Persist(ctx, m.s.Index(), seq); err != nil {
		m.compactions.With("persist_error").Inc()
		return CompactResult{}, fmt.Errorf("server: compaction snapshot: %w", err)
	}
	if err := m.opt.WAL.Reset(); err != nil {
		m.compactions.With("reset_error").Inc()
		return CompactResult{}, fmt.Errorf("server: compaction truncate: %w", err)
	}
	m.compactions.With("success").Inc()
	res := CompactResult{Seq: seq, WALBytes: m.opt.WAL.Size(), Elapsed: time.Since(start)}
	m.opt.Logger.Info("WAL compacted", "covered_seq", seq, "elapsed_ms", res.Elapsed.Milliseconds())
	return res, nil
}

// validateMutation is the strict admission check, run against the exact
// index version the batch will apply to. Strictness here is what licenses
// the lenient replay semantics everywhere else: a record only enters the
// WAL after passing, so replaying it through graph.Patch cannot fail.
func validateMutation(g *graph.Graph, req MutationRequest, maxBatch int) (core.Delta, error) {
	var d core.Delta
	total := len(req.AddVertices) + len(req.AddEdges) + len(req.RemoveEdges)
	if total == 0 {
		return d, fmt.Errorf("%w: empty batch", ErrBadMutation)
	}
	if total > maxBatch {
		return d, fmt.Errorf("%w: %d mutations exceed the per-batch cap %d", ErrBadMutation, total, maxBatch)
	}
	dict := g.Dict()
	for i, name := range req.AddVertices {
		l := dict.Lookup(name)
		if l == graph.NoLabel {
			return d, fmt.Errorf("%w: add_vertices[%d]: label %q is not in the dictionary (new vocabulary requires a rebuild)",
				ErrBadMutation, i, name)
		}
		d.AddVertices = append(d.AddVertices, l)
	}
	n := graph.V(g.NumVertices())
	limit := n + graph.V(len(req.AddVertices))
	seenAdd := make(map[graph.Edge]bool, len(req.AddEdges))
	for i, e := range req.AddEdges {
		ge := graph.Edge{From: graph.V(e.From), To: graph.V(e.To)}
		if ge.From >= limit || ge.To >= limit {
			return d, fmt.Errorf("%w: add_edges[%d]: endpoint out of range (graph has %d vertices, batch adds %d)",
				ErrBadMutation, i, n, len(req.AddVertices))
		}
		if ge.From < n && ge.To < n && g.HasEdge(ge.From, ge.To) {
			return d, fmt.Errorf("%w: add_edges[%d]: edge (%d,%d) already exists", ErrBadMutation, i, ge.From, ge.To)
		}
		if seenAdd[ge] {
			return d, fmt.Errorf("%w: add_edges[%d]: duplicate edge (%d,%d) in batch", ErrBadMutation, i, ge.From, ge.To)
		}
		seenAdd[ge] = true
		d.AddEdges = append(d.AddEdges, ge)
	}
	seenRm := make(map[graph.Edge]bool, len(req.RemoveEdges))
	for i, e := range req.RemoveEdges {
		ge := graph.Edge{From: graph.V(e.From), To: graph.V(e.To)}
		if ge.From >= n || ge.To >= n {
			return d, fmt.Errorf("%w: remove_edges[%d]: endpoint out of range (graph has %d vertices)", ErrBadMutation, i, n)
		}
		if !g.HasEdge(ge.From, ge.To) {
			return d, fmt.Errorf("%w: remove_edges[%d]: edge (%d,%d) does not exist", ErrBadMutation, i, ge.From, ge.To)
		}
		if seenRm[ge] {
			return d, fmt.Errorf("%w: remove_edges[%d]: duplicate edge (%d,%d) in batch", ErrBadMutation, i, ge.From, ge.To)
		}
		if seenAdd[ge] {
			return d, fmt.Errorf("%w: remove_edges[%d]: edge (%d,%d) both added and removed in one batch", ErrBadMutation, i, ge.From, ge.To)
		}
		seenRm[ge] = true
		d.RemoveEdges = append(d.RemoveEdges, ge)
	}
	return d, nil
}

// adminOnly gates an admin handler: POST-only (405 + Allow otherwise) and,
// when -admin-token is set, a constant-time shared-secret check via
// "Authorization: Bearer <token>" or "X-Admin-Token: <token>". The hashes
// are compared (not the strings) so the comparison is constant-time even
// across length mismatches.
func (s *Server) adminOnly(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("admin endpoints require POST"))
			return
		}
		if tok := s.opt.AdminToken; tok != "" {
			got := r.Header.Get("X-Admin-Token")
			if got == "" {
				if ah := r.Header.Get("Authorization"); strings.HasPrefix(ah, "Bearer ") {
					got = strings.TrimPrefix(ah, "Bearer ")
				}
			}
			want := sha256.Sum256([]byte(tok))
			have := sha256.Sum256([]byte(got))
			if subtle.ConstantTimeCompare(want[:], have[:]) != 1 {
				httpError(w, http.StatusUnauthorized, fmt.Errorf("missing or invalid admin token"))
				return
			}
		}
		next(w, r)
	}
}

// handleAdminEdges serves POST /admin/edges — the batch mutation API.
func (s *Server) handleAdminEdges(w http.ResponseWriter, r *http.Request) {
	mut := s.mutator.Load()
	if mut == nil {
		httpError(w, http.StatusNotImplemented, fmt.Errorf("mutation is not configured"))
		return
	}
	var req MutationRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding mutation batch: %w", err))
		return
	}
	res, err := mut.Apply(r.Context(), req)
	if err != nil {
		switch {
		case errors.Is(err, ErrBadMutation):
			httpError(w, http.StatusBadRequest, err)
		case errors.Is(err, ErrWALAppend):
			httpError(w, http.StatusServiceUnavailable, err)
		default:
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, struct {
		Status       string  `json:"status"`
		Seq          uint64  `json:"seq"`
		Epoch        uint64  `json:"epoch"`
		Path         string  `json:"path"`
		AffectedFrac float64 `json:"affected_frac"`
		Layers       int     `json:"layers"`
		Elapsed      string  `json:"elapsed"`
		Compacted    bool    `json:"compacted,omitempty"`
	}{"applied", res.Seq, res.Epoch, res.Path, res.AffectedFrac, res.Layers,
		res.Elapsed.Round(time.Microsecond).String(), res.Compacted})
}

// handleAdminCompact serves POST /admin/compact — snapshot + WAL truncate.
func (s *Server) handleAdminCompact(w http.ResponseWriter, r *http.Request) {
	mut := s.mutator.Load()
	if mut == nil {
		httpError(w, http.StatusNotImplemented, fmt.Errorf("mutation is not configured"))
		return
	}
	res, err := mut.Compact(r.Context())
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, struct {
		Status   string `json:"status"`
		Seq      uint64 `json:"covered_seq"`
		WALBytes int64  `json:"wal_bytes"`
		Elapsed  string `json:"elapsed"`
	}{"compacted", res.Seq, res.WALBytes, res.Elapsed.Round(time.Microsecond).String()})
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/datagen"
	"bigindex/internal/faultio"
	"bigindex/internal/graph"
	"bigindex/internal/wal"
)

func postJSON(t *testing.T, s *Server, path string, body interface{}, hdr map[string]string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		js, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(js)
	}
	req := httptest.NewRequest(http.MethodPost, path, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	out := map[string]interface{}{}
	_ = json.Unmarshal(rec.Body.Bytes(), &out)
	return rec, out
}

// pickMutation returns an addable edge (absent from g) and a removable
// edge (present), both over existing vertices.
func pickMutation(t *testing.T, g *graph.Graph) (add, remove graph.Edge) {
	t.Helper()
	es := g.Edges()
	if len(es) == 0 {
		t.Skip("no edges")
	}
	remove = es[len(es)/2]
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for v := n - 1; v >= 0; v-- {
			if u != v && !g.HasEdge(graph.V(u), graph.V(v)) {
				return graph.Edge{From: graph.V(u), To: graph.V(v)}, remove
			}
		}
	}
	t.Skip("graph is complete")
	return
}

func mutationBody(add, remove *graph.Edge, addVerts ...string) map[string]interface{} {
	body := map[string]interface{}{}
	if add != nil {
		body["add_edges"] = []map[string]uint32{{"from": uint32(add.From), "to": uint32(add.To)}}
	}
	if remove != nil {
		body["remove_edges"] = []map[string]uint32{{"from": uint32(remove.From), "to": uint32(remove.To)}}
	}
	if len(addVerts) > 0 {
		body["add_vertices"] = addVerts
	}
	return body
}

func TestAdminEdgesAppliesBatch(t *testing.T) {
	s, ds := testServer(t)
	walPath := filepath.Join(t.TempDir(), "wal")
	l, _, err := wal.Open(walPath, wal.Options{BaseDigest: ds.Graph.Digest()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	NewMutator(s, 0, MutatorOptions{WAL: l})

	g0 := s.Index().Data()
	add, remove := pickMutation(t, g0)
	label := popularTerm(ds)

	rec, body := postJSON(t, s, "/admin/edges", mutationBody(&add, &remove, label), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("mutation: %d: %s", rec.Code, rec.Body.String())
	}
	if body["status"] != "applied" || body["seq"] != float64(1) || body["epoch"] != float64(1) {
		t.Fatalf("mutation body: %v", body)
	}

	// The served graph reflects the batch.
	g1 := s.Index().Data()
	if !g1.HasEdge(add.From, add.To) || g1.HasEdge(remove.From, remove.To) {
		t.Fatal("served graph does not reflect the mutation")
	}
	if g1.NumVertices() != g0.NumVertices()+1 {
		t.Fatalf("|V| = %d, want %d", g1.NumVertices(), g0.NumVertices()+1)
	}
	// Equivalence with the full-refresh path over the same patch.
	patched, err := graph.Patch(g0, []graph.Label{g0.Dict().Lookup(label)},
		[]graph.Edge{add}, []graph.Edge{remove})
	if err != nil {
		t.Fatal(err)
	}
	if g1.Digest() != patched.Digest() {
		t.Fatal("mutated data graph != graph.Patch result")
	}

	// The batch is durable: a fresh WAL open replays exactly it.
	l2, info, err := wal.Open(walPath, wal.Options{BaseDigest: ds.Graph.Digest()})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(info.Batches) != 1 || info.Batches[0].Seq != 1 ||
		len(info.Batches[0].AddEdges) != 1 || info.Batches[0].AddEdges[0] != add {
		t.Fatalf("WAL replay: %+v", info)
	}

	// /stats shows the mutation block and the bumped epoch.
	_, stats := get(t, s, "/stats")
	if stats["epoch"] != float64(1) {
		t.Fatalf("stats epoch: %v", stats["epoch"])
	}
	mb, _ := stats["mutation"].(map[string]interface{})
	if mb == nil || mb["seq"] != float64(1) {
		t.Fatalf("stats mutation block: %v", stats["mutation"])
	}
}

func TestAdminEdgesMatchesRefreshedAnswers(t *testing.T) {
	s, ds := testServer(t)
	NewMutator(s, 0, MutatorOptions{}) // no WAL: equivalence only
	g0 := s.Index().Data()
	add, remove := pickMutation(t, g0)

	rec, _ := postJSON(t, s, "/admin/edges", mutationBody(&add, &remove), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("mutation: %d: %s", rec.Code, rec.Body.String())
	}

	// Build a second server over the Refreshed(Patch(...)) index — the
	// ground-truth full-rebuild path — and compare query answers.
	patched, err := graph.Patch(g0, nil, []graph.Edge{add}, []graph.Edge{remove})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultBuildOptions()
	opt.Search.SampleCount = 30
	base, err := core.Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Refreshed(patched)
	if err != nil {
		t.Fatal(err)
	}
	ref := New(want, ds.Ont, Options{DMax: 3, BlockSize: 64})

	kw := popularTerm(ds)
	for _, algo := range []string{"bkws", "bidir", "blinks", "rclique"} {
		path := "/query?q=" + kw + "&algo=" + algo + "&k=5&nocache=1"
		_, got := get(t, s, path)
		_, exp := get(t, ref, path)
		if fmt.Sprint(got["matches"]) != fmt.Sprint(exp["matches"]) {
			t.Fatalf("%s: mutated-server answers != refreshed-server answers\ngot:  %v\nwant: %v",
				algo, got["matches"], exp["matches"])
		}
	}
}

func TestAdminEdgesValidation(t *testing.T) {
	s, _ := testServer(t)
	NewMutator(s, 0, MutatorOptions{})
	g := s.Index().Data()
	add, remove := pickMutation(t, g)
	n := uint32(g.NumVertices())

	cases := []struct {
		name string
		body map[string]interface{}
	}{
		{"empty batch", map[string]interface{}{}},
		{"unknown label", mutationBody(nil, nil, "no-such-label-xyz")},
		{"existing edge add", mutationBody(&remove, nil)},
		{"absent edge remove", mutationBody(nil, &add)},
		{"out of range add", map[string]interface{}{
			"add_edges": []map[string]uint32{{"from": n + 5, "to": 0}}}},
		{"out of range remove", map[string]interface{}{
			"remove_edges": []map[string]uint32{{"from": n + 5, "to": 0}}}},
		{"duplicate add", map[string]interface{}{
			"add_edges": []map[string]uint32{
				{"from": uint32(add.From), "to": uint32(add.To)},
				{"from": uint32(add.From), "to": uint32(add.To)}}}},
		{"add and remove overlap", map[string]interface{}{
			"add_edges":    []map[string]uint32{{"from": uint32(add.From), "to": uint32(add.To)}},
			"remove_edges": []map[string]uint32{{"from": uint32(add.From), "to": uint32(add.To)}}}},
		{"unknown field", map[string]interface{}{"nonsense": 1}},
	}
	for _, tc := range cases {
		rec, _ := postJSON(t, s, "/admin/edges", tc.body, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400: %s", tc.name, rec.Code, rec.Body.String())
		}
	}
	// Nothing was applied.
	if got := s.Index().Epoch(); got != 0 {
		t.Fatalf("rejected batches advanced epoch to %d", got)
	}
	if mut := s.mutator.Load(); mut.Seq() != 0 {
		t.Fatalf("rejected batches advanced seq to %d", mut.Seq())
	}
}

func TestAdminEdgesWALFailureRejectsBatch(t *testing.T) {
	s, ds := testServer(t)
	l, _, err := wal.Open(filepath.Join(t.TempDir(), "wal"), wal.Options{
		BaseDigest: ds.Graph.Digest(),
		Hooks:      wal.Hooks{WrapWriter: func(w io.Writer) io.Writer { return faultio.FailWriter(w, 3) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	NewMutator(s, 0, MutatorOptions{WAL: l})

	add, _ := pickMutation(t, s.Index().Data())
	rec, _ := postJSON(t, s, "/admin/edges", mutationBody(&add, nil), nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("mutation with failing WAL: %d, want 503: %s", rec.Code, rec.Body.String())
	}
	// Not acknowledged → not applied: epoch and graph unchanged.
	if got := s.Index().Epoch(); got != 0 {
		t.Fatalf("failed batch advanced epoch to %d", got)
	}
	if s.Index().Data().HasEdge(add.From, add.To) {
		t.Fatal("failed batch mutated the served graph")
	}
}

func TestAdminTokenGate(t *testing.T) {
	ds := datagen.Generate(datagen.Options{
		Name: "srv", Entities: 1200, Terms: 100, LeafTypes: 8, Seed: 99,
	})
	opt := core.DefaultBuildOptions()
	opt.Search.SampleCount = 30
	idx, err := core.Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := New(idx, ds.Ont, Options{DMax: 3, BlockSize: 64, AdminToken: "sesame"})
	NewMutator(s, 0, MutatorOptions{})
	add, _ := pickMutation(t, s.Index().Data())

	for _, path := range []string{"/admin/reload", "/admin/edges", "/admin/compact"} {
		// GET is rejected with 405 + Allow before anything else.
		rec, _ := get(t, s, path)
		if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != http.MethodPost {
			t.Fatalf("GET %s: %d Allow=%q", path, rec.Code, rec.Header().Get("Allow"))
		}
		// POST without or with a wrong token: 401.
		if rec, _ := postJSON(t, s, path, nil, nil); rec.Code != http.StatusUnauthorized {
			t.Fatalf("POST %s without token: %d, want 401", path, rec.Code)
		}
		if rec, _ := postJSON(t, s, path, nil, map[string]string{"X-Admin-Token": "wrong"}); rec.Code != http.StatusUnauthorized {
			t.Fatalf("POST %s wrong token: %d, want 401", path, rec.Code)
		}
	}

	// A correct token passes the gate (both header forms) and reaches the
	// handler: /admin/edges applies, the others report their wiring state.
	rec, _ := postJSON(t, s, "/admin/edges", mutationBody(&add, nil),
		map[string]string{"X-Admin-Token": "sesame"})
	if rec.Code != http.StatusOK {
		t.Fatalf("authorized mutation: %d: %s", rec.Code, rec.Body.String())
	}
	rec, _ = postJSON(t, s, "/admin/reload", nil,
		map[string]string{"Authorization": "Bearer sesame"})
	if rec.Code != http.StatusNotImplemented { // no reloader wired; gate passed
		t.Fatalf("authorized reload: %d, want 501", rec.Code)
	}
}

// Satellite check: a delta apply must reset staleness and close the
// reload circuit — dashboards must not show a freshly mutated index as
// stale just because no full reload ran.
func TestMutationResetsStaleness(t *testing.T) {
	s, _ := testServer(t)
	rl := NewReloader(s, ReloaderOptions{Source: regenSource(nil)})
	NewMutator(s, 0, MutatorOptions{})

	// Pretend the index went stale an hour ago with a tripped circuit.
	rl.lastOK.Store(time.Now().Add(-time.Hour).UnixNano())
	for i := 0; i < 7; i++ {
		rl.breaker.Failure()
	}

	add, _ := pickMutation(t, s.Index().Data())
	rec, _ := postJSON(t, s, "/admin/edges", mutationBody(&add, nil), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("mutation: %d: %s", rec.Code, rec.Body.String())
	}
	h := rl.Health()
	if h.Staleness > time.Minute {
		t.Fatalf("staleness after mutation: %v, want ~0", h.Staleness)
	}
	if h.ConsecutiveFailures != 0 || h.CircuitOpen {
		t.Fatalf("mutation did not close the circuit: %+v", h)
	}
}

func TestDamageBudgetFallsBackToRebuild(t *testing.T) {
	s, _ := testServer(t)
	NewReloader(s, ReloaderOptions{Source: regenSource(nil)})
	NewMutator(s, 0, MutatorOptions{DamageBudget: 1e-12})

	g0 := s.Index().Data()
	add, remove := pickMutation(t, g0)
	rec, body := postJSON(t, s, "/admin/edges", mutationBody(&add, &remove), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("mutation: %d: %s", rec.Code, rec.Body.String())
	}
	if body["path"] != "rebuild" {
		t.Fatalf("path = %v, want rebuild", body["path"])
	}
	g1 := s.Index().Data()
	if !g1.HasEdge(add.From, add.To) || g1.HasEdge(remove.From, remove.To) {
		t.Fatal("rebuild fallback did not apply the batch")
	}
	if got := s.Index().Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
}

func TestAdminCompact(t *testing.T) {
	s, ds := testServer(t)
	walPath := filepath.Join(t.TempDir(), "wal")
	l, _, err := wal.Open(walPath, wal.Options{BaseDigest: ds.Graph.Digest()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	persisted := 0
	var persistedSeq uint64
	failPersist := false
	NewMutator(s, 0, MutatorOptions{
		WAL: l,
		Persist: func(_ context.Context, idx *core.Index, seq uint64) error {
			if failPersist {
				return fmt.Errorf("injected persist failure")
			}
			persisted++
			persistedSeq = seq
			return nil
		},
	})

	add, remove := pickMutation(t, s.Index().Data())
	if rec, _ := postJSON(t, s, "/admin/edges", mutationBody(&add, &remove), nil); rec.Code != http.StatusOK {
		t.Fatalf("mutation: %d", rec.Code)
	}
	preSize := l.Size()

	// Persist failure leaves the WAL untouched (records still replayable).
	failPersist = true
	if rec, _ := postJSON(t, s, "/admin/compact", nil, nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("compact with failing persist: %d, want 503", rec.Code)
	}
	if l.Size() != preSize {
		t.Fatal("failed compaction truncated the WAL")
	}

	failPersist = false
	rec, body := postJSON(t, s, "/admin/compact", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("compact: %d: %s", rec.Code, rec.Body.String())
	}
	if persisted != 1 || persistedSeq != 1 {
		t.Fatalf("persist called %d times, seq %d", persisted, persistedSeq)
	}
	if body["covered_seq"] != float64(1) {
		t.Fatalf("compact body: %v", body)
	}
	if l.Size() >= preSize {
		t.Fatalf("compaction did not truncate (size %d >= %d)", l.Size(), preSize)
	}

	// Sequence numbering continues after compaction.
	add2, _ := pickMutation(t, s.Index().Data())
	rec, body = postJSON(t, s, "/admin/edges", mutationBody(&add2, nil), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-compact mutation: %d: %s", rec.Code, rec.Body.String())
	}
	if body["seq"] != float64(2) {
		t.Fatalf("post-compact seq: %v, want 2", body["seq"])
	}
}

func TestAutoCompaction(t *testing.T) {
	s, ds := testServer(t)
	l, _, err := wal.Open(filepath.Join(t.TempDir(), "wal"), wal.Options{BaseDigest: ds.Graph.Digest()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	NewMutator(s, 0, MutatorOptions{
		WAL:         l,
		MaxWALBytes: 1, // every apply exceeds this → compact immediately
		Persist:     func(context.Context, *core.Index, uint64) error { return nil },
	})
	add, _ := pickMutation(t, s.Index().Data())
	rec, body := postJSON(t, s, "/admin/edges", mutationBody(&add, nil), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("mutation: %d", rec.Code)
	}
	if body["compacted"] != true {
		t.Fatalf("auto-compaction did not run: %v", body)
	}
	if l.Size() != 16 { // bare header
		t.Fatalf("WAL size after auto-compaction: %d", l.Size())
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"bigindex/internal/core"
	"bigindex/internal/datagen"
	"bigindex/internal/obs"
)

// popularTerms returns label names by descending occurrence count.
func popularTerms(ds *datagen.Dataset, n int) []string {
	type lc struct {
		name  string
		count int
	}
	var all []lc
	for _, l := range ds.Graph.DistinctLabels() {
		all = append(all, lc{ds.Graph.Dict().Name(l), ds.Graph.LabelCount(l)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].count > all[j].count })
	var out []string
	for i := 0; i < n && i < len(all); i++ {
		out = append(out, all[i].name)
	}
	return out
}

func TestMetricsEndpoint(t *testing.T) {
	s, ds := testServer(t)
	kw := popularTerm(ds)

	// Drive one query (eval + direct) so serving metrics have samples.
	if rec, _ := get(t, s, "/query?q="+kw+"&k=5"); rec.Code != http.StatusOK {
		t.Fatalf("query: %d", rec.Code)
	}
	if rec, _ := get(t, s, "/query?q="+kw+"&direct=1"); rec.Code != http.StatusOK {
		t.Fatalf("direct query: %d", rec.Code)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE bigindex_http_requests_total counter",
		`bigindex_http_requests_total{path="/query",code="200"} 2`,
		"# TYPE bigindex_http_request_seconds histogram",
		`bigindex_http_request_seconds_bucket{path="/query",le="+Inf"} 2`,
		`bigindex_http_request_seconds_count{path="/query"} 2`,
		"# TYPE bigindex_query_phase_seconds histogram",
		`bigindex_query_phase_seconds_count{phase="select"} 1`,
		`bigindex_query_phase_seconds_count{phase="search"} 1`,
		`bigindex_query_seconds_count{algo="blinks",mode="eval"} 1`,
		`bigindex_query_seconds_count{algo="blinks",mode="direct"} 1`,
		"bigindex_index_layers",
		"bigindex_graph_vertices",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestQueryTraceParam checks the acceptance criterion: &trace=1 returns a
// nested span tree whose phase names match core.Breakdown
// (Select/Search/Specialize/Generate).
func TestQueryTraceParam(t *testing.T) {
	s, ds := testServer(t)

	var tree obs.SpanJSON
	var layer float64
	found := false
	// Scan popular terms for a query that evaluates above the data layer so
	// the full four-phase tree appears.
	for _, kw := range popularTerms(ds, 12) {
		rec, body := get(t, s, "/query?q="+kw+"&trace=1")
		if rec.Code != http.StatusOK {
			continue
		}
		raw, err := json.Marshal(body["trace"])
		if err != nil || string(raw) == "null" {
			t.Fatalf("trace missing from response: %v", body)
		}
		if err := json.Unmarshal(raw, &tree); err != nil {
			t.Fatalf("trace is not a span tree: %v", err)
		}
		layer, _ = body["layer"].(float64)
		found = true
		if layer > 0 {
			break
		}
	}
	if !found {
		t.Fatal("no query succeeded")
	}

	got := map[string]bool{}
	for _, c := range tree.Children {
		got[c.Name] = true
	}
	want := []string{"Select", "Search"}
	if layer > 0 {
		want = append(want, "Specialize", "Generate")
	} else {
		t.Log("all probe queries evaluated at layer 0; Specialize/Generate spans not exercised")
	}
	for _, name := range want {
		if !got[name] {
			t.Fatalf("span %q missing from trace (children %v, layer %v)", name, got, layer)
		}
	}
	if tree.Name != "/query" {
		t.Fatalf("trace root = %q, want /query", tree.Name)
	}
	// Untraced responses must not carry a trace.
	_, body := get(t, s, "/query?q="+popularTerm(ds))
	if _, ok := body["trace"]; ok {
		t.Fatal("trace present without trace=1")
	}
}

// TestRequestLogFields checks the structured request log on /query.
func TestRequestLogFields(t *testing.T) {
	ds := datagen.Generate(datagen.Options{
		Name: "srv-log", Entities: 1200, Terms: 100, LeafTypes: 8, Seed: 99,
	})
	opt := core.DefaultBuildOptions()
	opt.Search.SampleCount = 30
	idx, err := core.Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	s := New(idx, ds.Ont, Options{
		DMax: 3, BlockSize: 64,
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})

	kw := popularTerm(ds)
	if rec, _ := get(t, s, "/query?q="+kw+"&algo=bkws&k=4"); rec.Code != http.StatusOK {
		t.Fatalf("query: %d", rec.Code)
	}
	var entry map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &entry); err != nil {
		t.Fatalf("request log not one JSON line: %v\n%s", err, logBuf.String())
	}
	checks := map[string]any{
		"msg":    "request",
		"method": "GET",
		"path":   "/query",
		"status": float64(200),
		"query":  kw,
		"algo":   "bkws",
		"k":      float64(4),
		"mode":   "eval",
	}
	for key, want := range checks {
		if entry[key] != want {
			t.Fatalf("log[%q] = %v, want %v (%v)", key, entry[key], want, entry)
		}
	}
	for _, key := range []string{"elapsed", "layer", "count"} {
		if _, ok := entry[key]; !ok {
			t.Fatalf("log missing %q: %v", key, entry)
		}
	}
}

// TestQueryHonorsKAtResultTime is the regression test for the evaluator's
// previously ignored per-request k: the shared (exhaustive) evaluator must
// be clamped to the request's k when results are assembled, for every
// algorithm and without one request's k leaking into another's.
func TestQueryHonorsKAtResultTime(t *testing.T) {
	s, ds := testServer(t)
	kw := popularTerm(ds)

	for _, algo := range []string{"blinks", "bkws", "bidir", "rclique"} {
		small := queryCount(t, s, fmt.Sprintf("/query?q=%s&algo=%s&k=2", kw, algo))
		if small > 2 {
			t.Fatalf("%s: k=2 returned %d matches", algo, small)
		}
		big := queryCount(t, s, fmt.Sprintf("/query?q=%s&algo=%s&k=50", kw, algo))
		if big > 50 {
			t.Fatalf("%s: k=50 returned %d matches", algo, big)
		}
		if big < small {
			t.Fatalf("%s: k=50 returned fewer matches (%d) than k=2 (%d)", algo, big, small)
		}
		// A later small-k request must not be inflated by the earlier big-k
		// one (the old bug: per-request k silently ignored on the shared
		// evaluator).
		again := queryCount(t, s, fmt.Sprintf("/query?q=%s&algo=%s&k=1", kw, algo))
		if again > 1 {
			t.Fatalf("%s: k=1 after k=50 returned %d matches", algo, again)
		}
	}
}

func queryCount(t *testing.T, s *Server, path string) int {
	t.Helper()
	rec, body := get(t, s, path)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s: status %d: %s", path, rec.Code, rec.Body.String())
	}
	cnt, _ := body["count"].(float64)
	ms, _ := body["matches"].([]any)
	if int(cnt) != len(ms) {
		t.Fatalf("%s: count %v != len(matches) %d", path, cnt, len(ms))
	}
	return int(cnt)
}

package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/retry"
)

// ReloaderOptions configures hot reloading of the served index.
type ReloaderOptions struct {
	// Source produces the current version of the data graph (re-read from
	// wherever the deployment gets it). It may return a graph on any
	// dictionary; the reloader rebases it onto the live index's dictionary
	// by label name, so the swap never mutates the dictionary concurrent
	// requests are reading. A label unknown to the live dictionary is a
	// reload failure — new vocabulary requires a rebuild.
	Source func(context.Context) (*graph.Graph, error)
	// AfterSwap runs once the new index is serving (persist a snapshot,
	// re-warm the query cache). Its failure is reported and counted but is
	// not a reload failure: the process is already serving fresh data, so
	// retrying the whole reload would churn for nothing.
	AfterSwap func(context.Context, *core.Index) error
	// MinBackoff/MaxBackoff/Factor shape the retry schedule after a failed
	// reload: MinBackoff, then ×Factor per consecutive failure, capped at
	// MaxBackoff (defaults 1s, 5m, ×2).
	MinBackoff time.Duration
	MaxBackoff time.Duration
	Factor     float64
	// Jitter spreads retries by up to this fraction of the backoff
	// (default 0.2), so a fleet reloading from one failed source does not
	// retry in lockstep.
	Jitter float64
	// FailThreshold opens the circuit after this many consecutive
	// failures (default 5): the server keeps serving the last good index,
	// /readyz stays 200, /stats and bigindex_index_staleness_seconds
	// report the staleness, and retries continue at MaxBackoff.
	FailThreshold int64
	// Seed fixes the jitter stream (tests); 0 derives from the clock.
	Seed int64
	// Logger receives reload outcomes. Nil discards.
	Logger *slog.Logger
}

// ReloadHealth is the reloader's externally visible state (/stats).
type ReloadHealth struct {
	LastSuccess         time.Time
	Staleness           time.Duration
	ConsecutiveFailures int64
	CircuitOpen         bool
}

// ReloadResult describes one successful reload.
type ReloadResult struct {
	Epoch   uint64
	Layers  int
	Elapsed time.Duration
	// PersistErr is a non-fatal AfterSwap failure (see ReloaderOptions).
	PersistErr error
}

// Reloader hot-reloads a Server's index from a data source: on demand
// (/admin/reload, SIGHUP via Trigger) it re-reads the graph, rebuilds the
// hierarchy with the stored configurations (core.Refreshed — Sec. 3.2's
// data-update maintenance), and swaps the result in atomically. Failures
// never disturb the serving path: the last good index keeps answering
// while Run retries with exponential backoff and jitter, and a run of
// failures opens a circuit that is visible in /stats and metrics but
// keeps readiness green — stale answers beat no answers.
type Reloader struct {
	s   *Server
	opt ReloaderOptions

	mu      sync.Mutex // serializes reload attempts (manual vs background)
	trigger chan struct{}

	lastOK  atomic.Int64   // unix nanos of the last success (boot counts)
	breaker *retry.Breaker // consecutive-failure circuit (shared retry shape)

	total *obs.CounterVec
}

// NewReloader wires a reloader into s: /admin/reload and /stats begin
// reporting through it, bigindex_reload_total and
// bigindex_index_staleness_seconds register on the server's metrics
// registry, and the boot instant counts as the first "reload" so
// staleness is measured from the index the process started with.
func NewReloader(s *Server, opt ReloaderOptions) *Reloader {
	if opt.MinBackoff <= 0 {
		opt.MinBackoff = time.Second
	}
	if opt.MaxBackoff <= 0 {
		opt.MaxBackoff = 5 * time.Minute
	}
	if opt.Factor <= 1 {
		opt.Factor = 2
	}
	if opt.Jitter < 0 {
		opt.Jitter = 0
	} else if opt.Jitter == 0 {
		opt.Jitter = 0.2
	}
	if opt.FailThreshold <= 0 {
		opt.FailThreshold = 5
	}
	if opt.Logger == nil {
		opt.Logger = obs.DiscardLogger()
	}
	r := &Reloader{
		s:       s,
		opt:     opt,
		trigger: make(chan struct{}, 1),
		breaker: retry.NewBreaker(retry.BreakerOptions{Threshold: opt.FailThreshold}),
	}
	r.lastOK.Store(time.Now().UnixNano())
	r.total = s.reg.CounterVec("bigindex_reload_total",
		"Index reload attempts by outcome (success, source, rebase, refresh, persist).",
		"outcome")
	s.reg.GaugeFunc("bigindex_index_staleness_seconds",
		"Seconds since the served index was last successfully built or reloaded.",
		func() float64 { return time.Since(time.Unix(0, r.lastOK.Load())).Seconds() })
	s.SetReloader(r)
	return r
}

// Health reports the reloader's current state.
func (r *Reloader) Health() ReloadHealth {
	last := time.Unix(0, r.lastOK.Load())
	return ReloadHealth{
		LastSuccess:         last,
		Staleness:           time.Since(last),
		ConsecutiveFailures: r.breaker.Fails(),
		CircuitOpen:         r.breaker.State() != retry.Closed,
	}
}

// MarkFresh records "the served index was just rebuilt/updated now" —
// the mutation service calls it after a successful delta apply so
// bigindex_index_staleness_seconds and /stats report a mutated index as
// fresh, not as "not reloaded since boot". It also closes the circuit:
// a successful write proves the maintenance pipeline is healthy.
func (r *Reloader) MarkFresh() {
	r.lastOK.Store(time.Now().UnixNano())
	r.breaker.Reset()
}

// SwapGraph rebuilds the hierarchy over g — which must already live on
// the served index's dictionary — and swaps the result in. It is the
// mutation service's fallback when delta maintenance refuses a batch
// (damage budget, validation failure): the same serialized, circuit-
// accounted path as a reload, minus the Source re-read, so a run of
// failing rebuilds opens the same breaker an operator already watches.
func (r *Reloader) SwapGraph(ctx context.Context, g *graph.Graph) (*core.Index, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.swapGraphLocked(ctx, g)
}

// swapGraphLocked is SwapGraph for callers already holding r.mu — the
// mutator's apply path, which takes the reload lock up front (see
// Mutator.Apply) so a reload cannot interleave with a mutation and swap
// in a hierarchy built from a pre-mutation graph, silently dropping a
// batch the WAL says is applied.
func (r *Reloader) swapGraphLocked(ctx context.Context, g *graph.Graph) (*core.Index, error) {
	cur := r.s.Index()
	next, err := cur.Refreshed(g)
	if err != nil {
		return nil, r.fail("refresh", err)
	}
	r.s.SwapIndex(next)
	r.lastOK.Store(time.Now().UnixNano())
	r.breaker.Reset()
	r.total.With("success").Inc()
	if r.opt.AfterSwap != nil {
		if err := r.opt.AfterSwap(ctx, next); err != nil {
			r.total.With("persist").Inc()
			r.opt.Logger.Warn("post-rebuild persist/warm failed; serving fresh index anyway", "err", err)
		}
	}
	return next, nil
}

// Trigger requests an asynchronous reload from the Run loop (the SIGHUP
// path). It never blocks; a trigger while one is already pending is
// coalesced with it.
func (r *Reloader) Trigger() {
	select {
	case r.trigger <- struct{}{}:
	default:
	}
}

// Reload performs one synchronous reload attempt: Source → rebase onto
// the live dictionary → Refreshed → atomic swap → AfterSwap. Attempts are
// serialized; a failure leaves the serving index untouched and counts
// toward the circuit threshold.
func (r *Reloader) Reload(ctx context.Context) (ReloadResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	start := time.Now()
	cur := r.s.Index()
	g, err := r.opt.Source(ctx)
	if err != nil {
		return ReloadResult{}, r.fail("source", err)
	}
	g, err = g.Rebase(cur.Data().Dict())
	if err != nil {
		return ReloadResult{}, r.fail("rebase", err)
	}
	next, err := cur.Refreshed(g)
	if err != nil {
		return ReloadResult{}, r.fail("refresh", err)
	}
	r.s.SwapIndex(next)
	r.lastOK.Store(time.Now().UnixNano())
	r.breaker.Reset()
	r.total.With("success").Inc()

	res := ReloadResult{Epoch: next.Epoch(), Layers: next.NumLayers(), Elapsed: time.Since(start)}
	if r.opt.AfterSwap != nil {
		if err := r.opt.AfterSwap(ctx, next); err != nil {
			r.total.With("persist").Inc()
			r.opt.Logger.Warn("post-reload persist/warm failed; serving fresh index anyway", "err", err)
			res.PersistErr = err
		}
	}
	r.opt.Logger.Info("index reloaded",
		"epoch", res.Epoch,
		"layers", res.Layers,
		"vertices", next.Data().NumVertices(),
		"edges", next.Data().NumEdges(),
		"elapsed_ms", res.Elapsed.Milliseconds())
	return res, nil
}

func (r *Reloader) fail(outcome string, err error) error {
	opened := r.breaker.Failure()
	n := r.breaker.Fails()
	r.total.With(outcome).Inc()
	if opened {
		r.opt.Logger.Error("reload circuit opened; serving last good index",
			"consecutive_failures", n, "err", err)
	}
	r.opt.Logger.Warn("reload failed; last good index keeps serving",
		"stage", outcome, "consecutive_failures", n, "err", err)
	return fmt.Errorf("reload %s: %w", outcome, err)
}

// Run is the background reload loop: it sleeps until triggered, attempts
// a reload, and on failure retries on an exponential backoff with jitter
// (resetting on success or on a fresh trigger's success). It returns when
// ctx is cancelled. Run never touches the serving path directly — all it
// does between attempts is wait.
func (r *Reloader) Run(ctx context.Context) {
	bo := retry.New(retry.BackoffOptions{
		Min:    r.opt.MinBackoff,
		Max:    r.opt.MaxBackoff,
		Factor: r.opt.Factor,
		Jitter: r.opt.Jitter,
		Seed:   r.opt.Seed,
	})
	attempt := 0
	var wait <-chan time.Time
	for {
		select {
		case <-ctx.Done():
			return
		case <-r.trigger:
			attempt = 0 // a fresh request restarts the schedule
		case <-wait:
		}
		wait = nil
		if _, err := r.Reload(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			wait = time.After(bo.Delay(attempt))
			attempt++
		} else {
			attempt = 0
		}
	}
}

// handleAdminReload serves POST /admin/reload: a synchronous reload whose
// response reports the new epoch (or the failure). Not wired = 501, so
// read-only deployments keep a closed admin surface. Method enforcement
// and the shared-secret gate live in the adminOnly wrapper (server.go).
func (s *Server) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	rl := s.reloader.Load()
	if rl == nil {
		httpError(w, http.StatusNotImplemented, fmt.Errorf("reload is not configured"))
		return
	}
	res, err := rl.Reload(r.Context())
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	out := struct {
		Status     string `json:"status"`
		Epoch      uint64 `json:"epoch"`
		Layers     int    `json:"layers"`
		Elapsed    string `json:"elapsed"`
		PersistErr string `json:"persist_error,omitempty"`
	}{"reloaded", res.Epoch, res.Layers, res.Elapsed.Round(time.Microsecond).String(), ""}
	if res.PersistErr != nil {
		out.PersistErr = res.PersistErr.Error()
	}
	writeJSON(w, out)
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/datagen"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
)

func post(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body := map[string]interface{}{}
	_ = json.Unmarshal(rec.Body.Bytes(), &body)
	return rec, body
}

// regenSource re-generates the same dataset on every call, each time with
// a fresh dictionary — exercising the rebase path exactly like a daemon
// that re-reads its data file from disk.
func regenSource(fail *atomic.Bool) func(context.Context) (*graph.Graph, error) {
	return func(context.Context) (*graph.Graph, error) {
		if fail != nil && fail.Load() {
			return nil, errors.New("injected source outage")
		}
		ds := datagen.Generate(datagen.Options{
			Name: "srv", Entities: 1200, Terms: 100, LeafTypes: 8, Seed: 99,
		})
		return ds.Graph, nil
	}
}

func TestAdminReloadSwapsIndex(t *testing.T) {
	s, ds := testServer(t)
	NewReloader(s, ReloaderOptions{Source: regenSource(nil)})
	kw := popularTerm(ds)

	rec, before := get(t, s, "/query?q="+kw+"&algo=bkws&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("pre-reload query: %d", rec.Code)
	}

	rec, body := post(t, s, "/admin/reload")
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: %d: %s", rec.Code, rec.Body.String())
	}
	if body["status"] != "reloaded" || body["epoch"] != float64(1) {
		t.Fatalf("reload body: %v", body)
	}
	if got := s.Index().Epoch(); got != 1 {
		t.Fatalf("served epoch = %d, want 1", got)
	}

	// Same data regenerated → same answers, from the new index.
	rec, after := get(t, s, "/query?q="+kw+"&algo=bkws&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-reload query: %d", rec.Code)
	}
	if fmt.Sprint(before["answers"]) != fmt.Sprint(after["answers"]) {
		t.Fatal("identical data reloaded but answers changed")
	}

	// /stats reports the reload state.
	_, stats := get(t, s, "/stats")
	rl, _ := stats["reload"].(map[string]interface{})
	if rl == nil {
		t.Fatalf("no reload block in /stats: %v", stats)
	}
	if rl["circuit_open"] != false || rl["consecutive_failures"] != float64(0) {
		t.Fatalf("reload stats: %v", rl)
	}
	if stats["epoch"] != float64(1) {
		t.Fatalf("stats epoch: %v", stats["epoch"])
	}
}

func TestAdminReloadMethodAndUnconfigured(t *testing.T) {
	s, _ := testServer(t)

	// No reloader wired: the admin surface stays closed.
	rec, _ := post(t, s, "/admin/reload")
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("unconfigured reload: %d", rec.Code)
	}

	NewReloader(s, ReloaderOptions{Source: regenSource(nil)})
	rec, _ = get(t, s, "/admin/reload")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload: %d", rec.Code)
	}
	if rec.Header().Get("Allow") != http.MethodPost {
		t.Fatalf("Allow header: %q", rec.Header().Get("Allow"))
	}
}

func TestReloadFailureKeepsServing(t *testing.T) {
	s, ds := testServer(t)
	var down atomic.Bool
	down.Store(true)
	NewReloader(s, ReloaderOptions{Source: regenSource(&down)})

	rec, _ := post(t, s, "/admin/reload")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("failed reload: %d", rec.Code)
	}
	if got := s.Index().Epoch(); got != 0 {
		t.Fatalf("failed reload advanced epoch to %d", got)
	}

	// The last good index keeps answering and readiness stays green.
	rec, _ = get(t, s, "/query?q="+popularTerm(ds)+"&algo=bidir&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("query after failed reload: %d", rec.Code)
	}
	rec, _ = get(t, s, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz after failed reload: %d", rec.Code)
	}
	_, stats := get(t, s, "/stats")
	rl, _ := stats["reload"].(map[string]interface{})
	if rl == nil || rl["consecutive_failures"] != float64(1) {
		t.Fatalf("reload stats after failure: %v", rl)
	}

	// Recovery resets the failure count.
	down.Store(false)
	if rec, _ := post(t, s, "/admin/reload"); rec.Code != http.StatusOK {
		t.Fatalf("recovery reload: %d", rec.Code)
	}
	_, stats = get(t, s, "/stats")
	rl, _ = stats["reload"].(map[string]interface{})
	if rl["consecutive_failures"] != float64(0) || rl["circuit_open"] != false {
		t.Fatalf("reload stats after recovery: %v", rl)
	}
}

// The background loop retries failed reloads with backoff until the
// circuit opens, and a healed source closes it again — all without the
// serving index ever regressing.
func TestRunBackoffOpensAndClosesCircuit(t *testing.T) {
	s, _ := testServer(t)
	var down atomic.Bool
	down.Store(true)
	rl := NewReloader(s, ReloaderOptions{
		Source:        regenSource(&down),
		MinBackoff:    time.Millisecond,
		MaxBackoff:    5 * time.Millisecond,
		FailThreshold: 3,
		Seed:          1,
		Logger:        obs.DiscardLogger(),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); rl.Run(ctx) }()

	rl.Trigger()
	waitFor(t, "circuit open", func() bool { return rl.Health().CircuitOpen })
	if got := s.Index().Epoch(); got != 0 {
		t.Fatalf("failing loop advanced epoch to %d", got)
	}

	down.Store(false)
	waitFor(t, "circuit closed after recovery", func() bool {
		h := rl.Health()
		return !h.CircuitOpen && h.ConsecutiveFailures == 0
	})
	if got := s.Index().Epoch(); got == 0 {
		t.Fatal("recovered loop never swapped a fresh index in")
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// AfterSwap failing must not fail the reload: the fresh index is already
// serving, so the response is a success carrying the persist error.
func TestAfterSwapFailureIsNonFatal(t *testing.T) {
	s, _ := testServer(t)
	NewReloader(s, ReloaderOptions{
		Source:    regenSource(nil),
		AfterSwap: func(context.Context, *core.Index) error { return errors.New("disk full") },
	})
	rec, body := post(t, s, "/admin/reload")
	if rec.Code != http.StatusOK {
		t.Fatalf("reload with failing AfterSwap: %d", rec.Code)
	}
	if body["persist_error"] != "disk full" {
		t.Fatalf("persist_error: %v", body["persist_error"])
	}
	if got := s.Index().Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
}

// In-flight queries run against a consistent index bundle while reloads
// swap underneath them; run with -race this is the hot-swap safety proof.
func TestQueriesDuringReloads(t *testing.T) {
	s, ds := testServer(t)
	NewReloader(s, ReloaderOptions{Source: regenSource(nil)})
	kw := popularTerm(ds)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(algo string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest(http.MethodGet, "/query?q="+kw+"&algo="+algo+"&k=3", nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("%s during reload: %d: %s", algo, rec.Code, rec.Body.String())
					return
				}
			}
		}([]string{"bkws", "bidir", "blinks", "rclique"}[i])
	}
	for i := 0; i < 3; i++ {
		if rec, _ := post(t, s, "/admin/reload"); rec.Code != http.StatusOK {
			t.Errorf("reload %d: %d", i, rec.Code)
		}
	}
	close(stop)
	wg.Wait()
	if got := s.Index().Epoch(); got != 3 {
		t.Fatalf("epoch = %d, want 3", got)
	}
}

package server

import (
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/datagen"
	"bigindex/internal/shard"
	"bigindex/internal/shardrpc"
)

// remoteIndex builds a small dataset + index and the data-graph plan the
// shard peers will serve, with the same BlockSize the coordinator uses.
func remoteIndex(t *testing.T) (*datagen.Dataset, *core.Index, *shard.Plan) {
	t.Helper()
	ds := datagen.Generate(datagen.Options{
		Name: "rsrv", Entities: 900, Terms: 80, LeafTypes: 8, Seed: 7,
	})
	opt := core.DefaultBuildOptions()
	opt.Search.SampleCount = 30
	idx, err := core.Build(ds.Graph, ds.Ont, opt)
	if err != nil {
		t.Fatal(err)
	}
	plan := shard.NewPlanner(shard.Options{BlockSize: 64}).PlanGraph(idx.Data())
	return ds, idx, plan
}

func startPeer(t *testing.T, plan *shard.Plan) (*shardrpc.Server, string) {
	t.Helper()
	srv := shardrpc.NewServer(plan, shardrpc.ServerOptions{BlockSize: 64})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

// TestRemoteQueryMatchesInProcess: with a healthy two-replica fleet, the
// remote sharded path returns byte-identical JSON matches to in-process
// sharded execution, with no degradation and no coverage block, and
// /stats reports the fleet.
func TestRemoteQueryMatchesInProcess(t *testing.T) {
	ds, idx, plan := remoteIndex(t)
	_, a1 := startPeer(t, plan)
	_, a2 := startPeer(t, plan)
	peers, err := shardrpc.ParsePeers(a1 + ";" + a2)
	if err != nil {
		t.Fatal(err)
	}
	cl := shardrpc.NewClient(shardrpc.ClientOptions{Peers: peers, BlockSize: 64})
	t.Cleanup(cl.Close)

	remote := New(idx, ds.Ont, Options{DMax: 3, BlockSize: 64, ShardClient: cl})
	local := New(idx, ds.Ont, Options{DMax: 3, BlockSize: 64})
	kw := popularTerm(ds)

	for _, algo := range []string{"bkws", "bidir"} {
		path := "/query?q=" + kw + "&algo=" + algo + "&shards=2&k=5&layer=0&nocache=1"
		rrec, rbody := get(t, remote, path)
		lrec, lbody := get(t, local, path)
		if rrec.Code != http.StatusOK || lrec.Code != http.StatusOK {
			t.Fatalf("%s: remote %d local %d: %s", algo, rrec.Code, lrec.Code, rrec.Body.String())
		}
		if rbody["degraded"] != nil || rbody["coverage"] != nil {
			t.Fatalf("%s: healthy fleet reported degradation: %v", algo, rbody)
		}
		if !reflect.DeepEqual(rbody["matches"], lbody["matches"]) {
			t.Fatalf("%s: remote and in-process matches differ:\nremote: %v\nlocal:  %v",
				algo, rbody["matches"], lbody["matches"])
		}
	}

	_, stats := get(t, remote, "/stats")
	sh, _ := stats["shard"].(map[string]interface{})
	if sh == nil || sh["remote"] != true {
		t.Fatalf("stats shard block missing remote mode: %v", stats["shard"])
	}
	peersJSON, _ := sh["peers"].([]interface{})
	if len(peersJSON) != 2 {
		t.Fatalf("stats shard.peers: %v", sh["peers"])
	}
	if floor, _ := sh["coverage_floor"].(float64); floor != 1 {
		t.Fatalf("healthy fleet coverage_floor = %v, want 1", sh["coverage_floor"])
	}
}

// TestRemoteShardLossDegradesAndRecovers is the coordinator-side loss
// story end to end: killing the only peer turns queries into 200s with
// "degraded":true + an accurate coverage block, flips /readyz to 503,
// never poisons the result cache, and a restarted peer restores healthy
// answers and readiness.
func TestRemoteShardLossDegradesAndRecovers(t *testing.T) {
	ds, idx, plan := remoteIndex(t)
	srv, addr := startPeer(t, plan)
	peers, err := shardrpc.ParsePeers(addr)
	if err != nil {
		t.Fatal(err)
	}
	cl := shardrpc.NewClient(shardrpc.ClientOptions{
		Peers:            peers,
		BlockSize:        64,
		DialTimeout:      100 * time.Millisecond,
		CallTimeout:      150 * time.Millisecond,
		MaxAttempts:      2,
		BreakerThreshold: 1,
		BreakerCooldown:  300 * time.Millisecond,
	})
	t.Cleanup(cl.Close)
	s := New(idx, ds.Ont, Options{DMax: 3, BlockSize: 64, ShardClient: cl})
	kw := popularTerm(ds)
	path := "/query?q=" + kw + "&algo=bkws&shards=2&k=5&layer=0"

	// Healthy baseline (uncached), and the readiness gate is open.
	rec, healthy := get(t, s, path+"&nocache=1")
	if rec.Code != http.StatusOK || healthy["degraded"] != nil {
		t.Fatalf("healthy baseline: %d %v", rec.Code, healthy)
	}
	if rec, _ := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz with healthy peer: %d", rec.Code)
	}

	// Kill the only replica: queries must still complete in-deadline with
	// an honest coverage annotation, and must not be cached.
	srv.Kill()
	rec, body := get(t, s, path)
	if rec.Code != http.StatusOK {
		t.Fatalf("query after peer loss: %d: %s", rec.Code, rec.Body.String())
	}
	if body["degraded"] != true || body["degraded_reason"] != "shards" {
		t.Fatalf("expected shard degradation, got: degraded=%v reason=%v",
			body["degraded"], body["degraded_reason"])
	}
	cov, _ := body["coverage"].(map[string]interface{})
	if cov == nil {
		t.Fatalf("degraded response missing coverage block: %v", body)
	}
	frac, _ := cov["fraction"].(float64)
	unver, _ := cov["roots_unverified"].(float64)
	if !(frac < 1 || unver > 0) {
		t.Fatalf("coverage block claims nothing lost: %v", cov)
	}
	if frac < 1 {
		total, _ := cov["blocks_total"].(float64)
		lost, _ := cov["blocks_lost"].(float64)
		if total != float64(plan.NumBlocks()) || lost <= 0 {
			t.Fatalf("coverage counts wrong (plan has %d blocks): %v", plan.NumBlocks(), cov)
		}
	}

	// The open breaker (threshold 1) means a query started now reaches
	// zero blocks: not ready. /stats mirrors the same state per peer.
	if rec, _ := get(t, s, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with all peers down: %d, want 503", rec.Code)
	}
	_, stats := get(t, s, "/stats")
	sh, _ := stats["shard"].(map[string]interface{})
	if floor, ok := sh["coverage_floor"].(float64); !ok || floor != 0 {
		t.Fatalf("stats coverage_floor with dead fleet: %v", sh["coverage_floor"])
	}

	// Restart a peer on the same address, wait out the breaker cooldown:
	// readiness and full answers come back, and the degraded result was
	// never stored — the same cache key now computes the full answer.
	srv2 := shardrpc.NewServer(plan, shardrpc.ServerOptions{BlockSize: 64})
	var lerr error
	for i := 0; i < 40; i++ {
		if _, lerr = srv2.Listen(addr); lerr == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if lerr != nil {
		t.Fatalf("rebinding %s: %v", addr, lerr)
	}
	t.Cleanup(func() { srv2.Close() })
	time.Sleep(400 * time.Millisecond) // past BreakerCooldown: half-open probe allowed

	if rec, _ := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz after peer restart: %d", rec.Code)
	}
	rec, body = get(t, s, path)
	if rec.Code != http.StatusOK || body["degraded"] != nil {
		t.Fatalf("query after restart: %d %v %v", rec.Code, body["degraded"], body["degraded_reason"])
	}
	if body["cached"] == true {
		t.Fatal("degraded result leaked into the result cache")
	}
	if !reflect.DeepEqual(body["matches"], healthy["matches"]) {
		t.Fatalf("post-recovery matches differ from healthy baseline:\n%v\n%v",
			body["matches"], healthy["matches"])
	}
	// And the recomputed healthy result IS cached for the next identical query.
	_, again := get(t, s, path)
	if again["cached"] != true {
		t.Fatalf("healthy recomputation was not cached: %v", again["cached"])
	}
}

// TestRemoteFleetDebugAndPeerAttribution covers the fleet-facing
// observability surface at the HTTP layer: /debug/fleet reports the peer
// with negotiated telemetry and a live Stats snapshot, a traced query
// leaves a stitched multi-process trace in the flight recorder, and
// killing the peer yields a degraded response whose coverage block names
// the failing peer address.
func TestRemoteFleetDebugAndPeerAttribution(t *testing.T) {
	ds, idx, plan := remoteIndex(t)
	srv, addr := startPeer(t, plan)
	peers, err := shardrpc.ParsePeers(addr)
	if err != nil {
		t.Fatal(err)
	}
	cl := shardrpc.NewClient(shardrpc.ClientOptions{
		Peers:            peers,
		BlockSize:        64,
		TelemetrySample:  1,
		DialTimeout:      100 * time.Millisecond,
		CallTimeout:      150 * time.Millisecond,
		MaxAttempts:      2,
		BreakerThreshold: 1,
		BreakerCooldown:  300 * time.Millisecond,
	})
	t.Cleanup(cl.Close)
	s := New(idx, ds.Ont, Options{
		DMax: 3, BlockSize: 64, ShardClient: cl,
		Debug: DebugOptions{Endpoints: true, Sample: 1},
	})
	kw := popularTerm(ds)
	path := "/query?q=" + kw + "&algo=bkws&shards=2&k=5&layer=0&nocache=1"

	// Fleet view while healthy: the one peer row carries negotiated
	// telemetry and an in-process stats snapshot.
	rec, fleet := get(t, s, "/debug/fleet")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/fleet: %d: %s", rec.Code, rec.Body.String())
	}
	rows, _ := fleet["peers"].([]interface{})
	if len(rows) != 1 {
		t.Fatalf("fleet peers = %v", fleet["peers"])
	}
	row, _ := rows[0].(map[string]interface{})
	if row["addr"] != addr || row["telemetry"] != true {
		t.Fatalf("fleet row: %v", row)
	}
	if st, _ := row["stats"].(map[string]interface{}); st == nil || st["gomaxprocs"].(float64) < 1 {
		t.Fatalf("fleet row missing stats snapshot: %v", row)
	}

	// A traced query (recorder keeps everything at Sample 1) must retain a
	// stitched trace: client rpc span, grafted remote span, fleet-summed
	// remote cost in the ledger.
	if rec, _ := get(t, s, path); rec.Code != http.StatusOK {
		t.Fatalf("query: %d: %s", rec.Code, rec.Body.String())
	}
	_, list := get(t, s, "/debug/traces?limit=5")
	traces, _ := list["traces"].([]interface{})
	if len(traces) == 0 {
		t.Fatalf("no retained traces: %v", list)
	}
	id, _ := traces[0].(map[string]interface{})["id"].(string)
	trec, _ := get(t, s, "/debug/traces/"+id)
	tree := trec.Body.String()
	for _, wantSub := range []string{`"rpc:expand"`, `"remote:expand"`, `"peer": "` + addr + `"`, `"remote_calls"`} {
		if !strings.Contains(tree, wantSub) {
			t.Fatalf("stitched trace %s lacks %s:\n%s", id, wantSub, tree)
		}
	}

	// Kill the only peer: the degraded coverage block must name it.
	srv.Kill()
	rec, body := get(t, s, path)
	if rec.Code != http.StatusOK || body["degraded"] != true {
		t.Fatalf("query after peer loss: %d degraded=%v", rec.Code, body["degraded"])
	}
	cov, _ := body["coverage"].(map[string]interface{})
	failed, _ := cov["failed_peers"].([]interface{})
	if len(failed) != 1 || failed[0] != addr {
		t.Fatalf("coverage failed_peers = %v, want [%s]", cov["failed_peers"], addr)
	}
}

// TestRemoteStaleFleetFallsBackToLocal: peers serving a different graph
// (digest mismatch) are detected at plan-bind time and the coordinator
// runs in-process — reachable-but-wrong is a configuration problem, not
// an outage, so answers stay exact rather than degraded.
func TestRemoteStaleFleetFallsBackToLocal(t *testing.T) {
	ds, idx, _ := remoteIndex(t)
	other := datagen.Generate(datagen.Options{
		Name: "other", Entities: 300, Terms: 40, LeafTypes: 6, Seed: 8,
	})
	stalePlan := shard.NewPlanner(shard.Options{BlockSize: 64}).PlanGraph(other.Graph)
	_, addr := startPeer(t, stalePlan)
	peers, err := shardrpc.ParsePeers(addr)
	if err != nil {
		t.Fatal(err)
	}
	cl := shardrpc.NewClient(shardrpc.ClientOptions{Peers: peers, BlockSize: 64})
	t.Cleanup(cl.Close)

	s := New(idx, ds.Ont, Options{DMax: 3, BlockSize: 64, ShardClient: cl})
	local := New(idx, ds.Ont, Options{DMax: 3, BlockSize: 64})
	kw := popularTerm(ds)
	path := fmt.Sprintf("/query?q=%s&algo=bkws&shards=2&k=5&layer=0&nocache=1", kw)
	rec, body := get(t, s, path)
	lrec, lbody := get(t, local, path)
	if rec.Code != http.StatusOK || lrec.Code != http.StatusOK {
		t.Fatalf("status %d / %d", rec.Code, lrec.Code)
	}
	if body["degraded"] != nil {
		t.Fatalf("stale fleet should fall back in-process, not degrade: %v", body)
	}
	if !reflect.DeepEqual(body["matches"], lbody["matches"]) {
		t.Fatal("fallback answers differ from in-process execution")
	}
}

package server

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"log/slog"

	"bigindex/internal/obs"
)

// statusClientClosedRequest is the (nginx-convention) status recorded for
// requests whose client went away mid-evaluation. Nothing reads the
// response — it exists so metrics and logs distinguish "client hung up"
// from real 5xx failures.
const statusClientClosedRequest = 499

// shedded wraps a handler with the load-shedding gate: at most MaxInFlight
// queries evaluate concurrently, an excess request waits up to ShedWait
// for a slot, and past that it is shed with 429 + Retry-After so clients
// back off instead of piling goroutines onto an overloaded process. Only
// the expensive endpoints (/query) sit behind the gate — health, metrics,
// and stats must stay responsive exactly when the process is saturated.
func (s *Server) shedded(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Register the query with the flight recorder's live registry before
		// the gate: an in-flight query stuck waiting for a slot is exactly
		// the kind /debug/active must surface.
		tr := obs.SpanFromContext(r.Context()).Trace()
		start := time.Now()
		tok := s.recorder.Begin(tr, r.URL.Query().Get("algo"), r.URL.Query().Get("q"))
		defer s.recorder.End(tok)

		if s.sem == nil {
			next(w, r)
			return
		}
		acquired := false
		select {
		case s.sem <- struct{}{}:
			acquired = true
		default:
		}
		if !acquired && s.opt.ShedWait > 0 {
			t := time.NewTimer(s.opt.ShedWait)
			select {
			case s.sem <- struct{}{}:
				acquired = true
			case <-r.Context().Done():
			case <-t.C:
			}
			t.Stop()
		}
		if !acquired {
			if r.Context().Err() != nil {
				s.cancelled.With("client").Inc()
				s.recorder.Finish(tr, r.URL.Query().Get("algo"), r.URL.Query().Get("q"),
					"cancelled", time.Since(start))
				httpError(w, statusClientClosedRequest, fmt.Errorf("client closed request"))
				return
			}
			s.shed.Inc()
			s.recorder.Finish(tr, r.URL.Query().Get("algo"), r.URL.Query().Get("q"),
				"shed", time.Since(start))
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests,
				fmt.Errorf("query capacity exhausted (%d in flight); retry shortly", cap(s.sem)))
			return
		}
		s.inflightQ.Add(1)
		defer func() {
			s.inflightQ.Add(-1)
			<-s.sem
		}()
		next(w, r)
	}
}

// recoverPanics converts a handler panic into a 500 with a stack-tagged
// log line and a counter increment, keeping the serving goroutine pool
// intact: one poisoned query must not take the process down. The
// http.ErrAbortHandler sentinel is re-raised — that is net/http's own
// "abort this response" protocol, not a bug.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ww := &writeTracker{ResponseWriter: w}
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.panics.Inc()
			s.opt.Logger.Error("panic serving request",
				slog.String("path", r.URL.Path),
				slog.Any("panic", p),
				slog.String("stack", string(debug.Stack())))
			if !ww.wrote {
				httpError(ww, http.StatusInternalServerError, fmt.Errorf("internal server error"))
			}
		}()
		next.ServeHTTP(ww, r)
	})
}

// writeTracker remembers whether anything was written so the panic handler
// knows if a 500 status can still be sent.
type writeTracker struct {
	http.ResponseWriter
	wrote bool
}

func (t *writeTracker) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *writeTracker) Write(b []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(b)
}

// SetDraining flips the /readyz readiness signal. The daemon sets it at
// the start of graceful shutdown so load balancers stop routing new
// traffic while in-flight queries finish.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is in its shutdown drain.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	// Multi-process mode: not-ready only when coverage would be zero —
	// every peer unreachable or breaker-open, so a query started now could
	// not reach a single block. Partial peer loss keeps the server ready:
	// it still answers (degraded, coverage-annotated), and flapping
	// /readyz on one lost replica would amplify the outage by draining
	// coordinators that can still serve most of the graph.
	if c := s.opt.ShardClient; c != nil && c.CoverageFloor() == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no shard peers reachable (coverage 0)")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/datagen"
	"bigindex/internal/graph"
	"bigindex/internal/search"
)

// stubAlgo is a fault-injection search.Algorithm: SearchCtx delegates to a
// test-provided function, so tests can block, panic, or degrade on demand.
// Reached deterministically through &direct=1 (DirectCtx prepares layer 0
// and calls SearchCtx straight away, bypassing the cost model).
type stubAlgo struct {
	name string
	fn   func(ctx context.Context, q []graph.Label, k int) ([]search.Match, error)
}

func (a *stubAlgo) Name() string                                    { return a.name }
func (a *stubAlgo) Prepare(g *graph.Graph) (search.Prepared, error) { return &stubPrepared{a}, nil }
func (a *stubAlgo) NewGeneration(data *graph.Graph, q []graph.Label, opt search.GenOptions) search.Generation {
	return stubGen{}
}

type stubPrepared struct{ a *stubAlgo }

func (p *stubPrepared) Search(q []graph.Label, k int) ([]search.Match, error) {
	return p.SearchCtx(context.Background(), q, k)
}
func (p *stubPrepared) SearchCtx(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
	return p.a.fn(ctx, q, k)
}

type stubGen struct{}

func (stubGen) Generate(rootCands []graph.V, cands [][]graph.V) []search.Match { return nil }
func (stubGen) GenerateCtx(ctx context.Context, rootCands []graph.V, cands [][]graph.V) []search.Match {
	return nil
}

// robustServer is testServer with injectable Options and a smaller dataset
// (the robustness tests don't need answer volume, just a working index).
func robustServer(t *testing.T, opt Options) (*Server, *datagen.Dataset) {
	t.Helper()
	ds := datagen.Generate(datagen.Options{
		Name: "robust", Entities: 400, Terms: 60, LeafTypes: 6, Seed: 7,
	})
	bopt := core.DefaultBuildOptions()
	bopt.Search.SampleCount = 20
	idx, err := core.Build(ds.Graph, ds.Ont, bopt)
	if err != nil {
		t.Fatal(err)
	}
	if opt.DMax == 0 {
		opt.DMax = 3
	}
	if opt.BlockSize == 0 {
		opt.BlockSize = 64
	}
	return New(idx, ds.Ont, opt), ds
}

// A client that disconnects mid-query must abort the search promptly for
// every algorithm: the handler sees context.Canceled, answers 499, and the
// cancellation counter records the abort.
func TestClientDisconnectCancelsQuery(t *testing.T) {
	s, ds := robustServer(t, Options{})
	kw := popularTerm(ds)
	for i, algo := range []string{"blinks", "bkws", "bidir", "rclique"} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		req := httptest.NewRequest(http.MethodGet, "/query?q="+kw+"&algo="+algo, nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != statusClientClosedRequest {
			t.Fatalf("%s: status %d, want %d: %s", algo, rec.Code, statusClientClosedRequest, rec.Body.String())
		}
		if got := s.cancelled.With("client").Value(); got != int64(i+1) {
			t.Fatalf("%s: cancelled{client} = %d, want %d", algo, got, i+1)
		}
	}
}

// A deadline expiring mid-evaluation degrades to the partial answers found
// so far: HTTP 200, "degraded": true, and the matches that were already
// verified — not a 500 and not an empty error body.
func TestDeadlineReturnsDegradedPartial(t *testing.T) {
	slow := &stubAlgo{name: "slow", fn: func(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
		ms := []search.Match{{Root: 0, Score: 1}}
		<-ctx.Done() // hold the partial result until the deadline fires
		return ms, context.Cause(ctx)
	}}
	s, ds := robustServer(t, Options{
		ExtraAlgorithms: map[string]search.Algorithm{"slow": slow},
	})
	kw := popularTerm(ds)

	rec, body := get(t, s, "/query?q="+kw+"&algo=slow&direct=1&timeout=50ms")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", rec.Code, rec.Body.String())
	}
	if body["degraded"] != true || body["degraded_reason"] != "deadline" {
		t.Fatalf("degraded flags missing: %v", body)
	}
	if cnt, _ := body["count"].(float64); cnt != 1 {
		t.Fatalf("partial matches lost: count = %v", body["count"])
	}
	if got := s.cancelled.With("deadline").Value(); got != 1 {
		t.Fatalf("cancelled{deadline} = %d, want 1", got)
	}
	if got := s.degraded.Value(); got != 1 {
		t.Fatalf("degraded counter = %d, want 1", got)
	}
}

// &timeout= may shorten the server deadline but never extend it: a request
// asking for 10m against a 60ms QueryTimeout still degrades in ~60ms.
func TestTimeoutParamClampedUnderServerDeadline(t *testing.T) {
	slow := &stubAlgo{name: "slow", fn: func(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
		<-ctx.Done()
		return nil, context.Cause(ctx)
	}}
	s, ds := robustServer(t, Options{
		QueryTimeout:    60 * time.Millisecond,
		ExtraAlgorithms: map[string]search.Algorithm{"slow": slow},
	})
	kw := popularTerm(ds)
	start := time.Now()
	rec, body := get(t, s, "/query?q="+kw+"&algo=slow&direct=1&timeout=10m")
	if rec.Code != http.StatusOK || body["degraded"] != true {
		t.Fatalf("status %d body %v, want degraded 200", rec.Code, body)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("clamp failed: query ran %v", elapsed)
	}
}

// With MaxInFlight=1 and an immediate-shed wait, a second concurrent query
// is rejected with 429 + Retry-After while the first one is still running.
func TestLoadSheddingReturns429(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	block := &stubAlgo{name: "block", fn: func(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return []search.Match{{Root: 0, Score: 1}}, nil
	}}
	s, ds := robustServer(t, Options{
		MaxInFlight:     1,
		ShedWait:        -1, // shed immediately; no timer race in the test
		ExtraAlgorithms: map[string]search.Algorithm{"block": block},
	})
	kw := popularTerm(ds)

	var wg sync.WaitGroup
	wg.Add(1)
	var firstCode int
	go func() {
		defer wg.Done()
		rec, _ := get(t, s, "/query?q="+kw+"&algo=block&direct=1")
		firstCode = rec.Code
	}()
	<-started
	if got := s.inflightQ.Value(); got != 1 {
		t.Fatalf("inflight gauge = %v, want 1", got)
	}

	rec, body := get(t, s, "/query?q="+kw+"&algo=block&direct=1")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second query: status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if body["error"] == nil {
		t.Fatal("429 without an error payload")
	}
	if got := s.shed.Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	close(release)
	wg.Wait()
	if firstCode != http.StatusOK {
		t.Fatalf("admitted query: status %d, want 200", firstCode)
	}
	if got := s.inflightQ.Value(); got != 0 {
		t.Fatalf("inflight gauge = %v after drain, want 0", got)
	}

	// The new robustness metrics surface on /metrics.
	rec, _ = get(t, s, "/metrics")
	for _, name := range []string{
		"bigindex_query_shed_total", "bigindex_queries_inflight",
		"bigindex_query_cancelled_total", "bigindex_panic_recovered_total",
	} {
		if !strings.Contains(rec.Body.String(), name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
}

// A panicking algorithm yields one 500 and an otherwise intact server: the
// panic is contained, counted, and the next request works normally.
func TestPanicRecovery(t *testing.T) {
	bomb := &stubAlgo{name: "bomb", fn: func(ctx context.Context, q []graph.Label, k int) ([]search.Match, error) {
		panic("poisoned query")
	}}
	s, ds := robustServer(t, Options{
		ExtraAlgorithms: map[string]search.Algorithm{"bomb": bomb},
	})
	kw := popularTerm(ds)

	rec, body := get(t, s, "/query?q="+kw+"&algo=bomb&direct=1")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", rec.Code, rec.Body.String())
	}
	if body["error"] == nil {
		t.Fatal("500 without an error payload")
	}
	if got := s.panics.Value(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}

	rec, _ = get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", rec.Code)
	}
	rec, _ = get(t, s, "/query?q="+kw+"&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("query after panic: %d: %s", rec.Code, rec.Body.String())
	}
}

// Malformed numeric/duration parameters are client errors (400), not
// silently-applied defaults; absent parameters keep their defaults.
func TestMalformedParams(t *testing.T) {
	s, ds := robustServer(t, Options{})
	kw := popularTerm(ds)
	bad := []string{
		"/query?q=" + kw + "&k=abc",
		"/query?q=" + kw + "&k=2.5",
		"/query?q=" + kw + "&layer=abc",
		"/query?q=" + kw + "&layer=99",
		"/query?q=" + kw + "&timeout=abc",
		"/query?q=" + kw + "&timeout=-5s",
		"/query?q=" + kw + "&timeout=0s",
		"/complete?prefix=term&limit=abc",
	}
	for _, path := range bad {
		rec, body := get(t, s, path)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", path, rec.Code, rec.Body.String())
		}
		if body["error"] == nil {
			t.Fatalf("%s: 400 without an error payload", path)
		}
	}
	for _, path := range []string{
		"/query?q=" + kw,
		"/query?q=" + kw + "&timeout=5s",
		"/complete?prefix=term",
	} {
		rec, _ := get(t, s, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d, want 200: %s", path, rec.Code, rec.Body.String())
		}
	}
}

// /readyz tracks the drain flag: 503 while draining, 200 otherwise.
func TestReadyzDraining(t *testing.T) {
	s, _ := robustServer(t, Options{})
	rec, _ := get(t, s, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz: %d, want 200", rec.Code)
	}
	s.SetDraining(true)
	if !s.Draining() {
		t.Fatal("Draining() false after SetDraining(true)")
	}
	rec, _ = get(t, s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("readyz body: %q", rec.Body.String())
	}
	s.SetDraining(false)
	rec, _ = get(t, s, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz after drain cleared: %d, want 200", rec.Code)
	}
}

// writeJSON buffers the encode: a value that cannot marshal becomes a clean
// 500, never an implicit 200 with a truncated body.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, map[string]interface{}{"ch": make(chan int)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "error") {
		t.Fatalf("body %q carries no error", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	writeJSON(rec, map[string]string{"ok": "yes"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
}

// Package server exposes a BiG-index over HTTP with a JSON API — the
// deployment surface a system like this ships with (the paper's scenario
// is a knowledge-graph service answering user keyword queries).
//
// Endpoints:
//
//	GET /query?q=kw1,kw2&algo=blinks&k=10[&direct=1][&layer=m]
//	    evaluate a keyword query; free-text keywords are resolved through
//	    the text index. Returns matches with label names and the plan.
//	GET /explain?q=kw1,kw2&algo=blinks
//	    the evaluation plan only (cost model output, no search).
//	GET /complete?prefix=har&limit=10
//	    keyword autocompletion over the label vocabulary.
//	GET /stats
//	    graph + index statistics.
//	GET /metrics
//	    Prometheus text exposition (request counters, latency histograms,
//	    per-phase query timings, index/build gauges).
//	GET /healthz
//	    liveness.
//	GET /readyz
//	    readiness; 503 while the server is draining for shutdown.
//
// /query also accepts &trace=1, which embeds the query's span tree (layer
// selection → summary search → per-layer specialization → generation) in
// the response as "trace", and &timeout=, a per-request deadline clamped
// under Options.QueryTimeout. When the deadline expires mid-evaluation the
// response is still 200 with "degraded": true and the (sound but possibly
// incomplete) matches found so far — specialization only refines
// already-found generalized answers (Prop 5.2), so a prefix of the answer
// set is never wrong, just short.
//
// Query results are cached (internal/qcache): repeats of a query are
// answered without evaluating, concurrent identical queries share one
// evaluation (singleflight), and "cached": true marks a response served
// from the cache. Keywords are canonicalized (sorted, deduplicated)
// before the cache key is built, so "b,a,a" and "a,b" are one query.
// &nocache=1 bypasses the cache for a single request. Entries key on
// the index epoch, so a Refresh invalidates the whole cache implicitly;
// degraded (partial) results are never stored.
//
// The server is read-only and safe for concurrent requests: evaluators
// serialize index preparation internally and everything else is immutable.
// Requests are wrapped in a robustness layer (see robust.go): a
// load-shedding gate on /query, panic containment, and a drain-aware
// readiness endpoint.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/ontology"
	"bigindex/internal/qcache"
	"bigindex/internal/search"
	"bigindex/internal/search/bidir"
	"bigindex/internal/search/bkws"
	"bigindex/internal/search/blinks"
	"bigindex/internal/search/rclique"
	"bigindex/internal/shard"
	"bigindex/internal/shardrpc"
	"bigindex/internal/text"
)

// Options configures the server.
type Options struct {
	// DMax is the distance bound used by rooted algorithms (r-clique uses
	// DMax-1 as its pairwise bound).
	DMax int
	// BlockSize is Blinks' partition block size.
	BlockSize int
	// MaxK caps the top-k a client may request (0 = 100).
	MaxK int
	// Metrics is the registry served at /metrics. Nil creates a private
	// one; pass the registry used for core.Build to expose build gauges
	// alongside the serving metrics.
	Metrics *obs.Registry
	// Logger receives one structured line per request plus the slow-query
	// log. Nil discards.
	Logger *slog.Logger
	// SlowQuery is the latency threshold for the slow-query log
	// (0 = 500ms; negative disables).
	SlowQuery time.Duration
	// QueryTimeout is the per-request evaluation deadline. A &timeout=
	// parameter may shorten it but never exceed it. On expiry the query
	// degrades to the partial answers found so far instead of failing.
	// 0 disables the server-imposed deadline (client timeouts still apply).
	QueryTimeout time.Duration
	// MaxInFlight caps concurrently evaluating /query requests; excess
	// requests wait up to ShedWait for a slot and are then shed with
	// 429 + Retry-After. 0 disables load shedding.
	MaxInFlight int
	// ShedWait is the bounded wait for an evaluation slot when MaxInFlight
	// is hit (0 = 100ms; negative = shed immediately).
	ShedWait time.Duration
	// ExtraAlgorithms registers additional search semantics by name,
	// resolved before the built-in set. Entries sharing a built-in name
	// shadow it. Used for custom plug-ins and fault-injection tests.
	ExtraAlgorithms map[string]search.Algorithm
	// Cache sizes the /query result cache (internal/qcache): hits skip
	// evaluation entirely, and concurrent identical queries share one
	// evaluation. The zero value enables a default-sized cache; set
	// Cache.Size < 0 to disable caching.
	Cache CacheOptions
	// Debug configures the flight recorder and the /debug endpoints. The
	// recorder itself is always on (tail sampling is cheap: keep/drop is
	// decided per query at query end); the endpoints exposing it are
	// default-off.
	Debug DebugOptions
	// QueryLog, when non-nil, receives one JSONL entry per /query request
	// (workload capture; bigindexd's -query-log flag feeds benchrunner's
	// replay mode). The server appends but never closes it.
	QueryLog *obs.QueryLog
	// ShadowSample is the probability that a routed query is re-evaluated
	// in the background at the runner-up layer so the cost-model misroute
	// counter reflects measurement, not just the fitted model. At most one
	// shadow evaluation runs at a time. 0 disables shadowing.
	ShadowSample float64
	// AdminToken, when non-empty, gates every /admin/* endpoint behind a
	// shared secret ("Authorization: Bearer <token>" or "X-Admin-Token"),
	// compared in constant time. Empty leaves the admin surface open
	// (trusted-network deployments).
	AdminToken string
	// Shards is the default worker count for partition-sharded query
	// execution (internal/shard) of algo=bkws and algo=bidir; other
	// algorithms ignore it. 0 keeps the sequential path; >= 1 runs the
	// scatter-gather coordinator with that many workers (1 exercises the
	// full sharded machinery on one worker — the parity baseline). A
	// &shards= request parameter overrides it per query. Values above
	// GOMAXPROCS are clamped (extra workers on a saturated scheduler only
	// add coordination cost); answers are byte-identical either way.
	Shards int
	// ShardClient, when non-nil, serves sharded data-graph expansion
	// remotely through a fleet of shardrpc peers (bigindexd's
	// -shard-peers). Summary-layer expansion always stays in-process —
	// peers advertise the data graph's digest, and the per-request digest
	// check would (correctly) refuse anything else. When every replica of
	// a block is unreachable past budget the query completes over the
	// surviving blocks and returns degraded with a coverage annotation;
	// such results are never cached.
	ShardClient *shardrpc.Client
}

// DebugOptions configures the flight recorder (obs.Recorder) and its
// debug endpoints.
type DebugOptions struct {
	// Endpoints enables GET /debug/traces, /debug/traces/{id},
	// /debug/active, and /debug/index. Default off: stored traces carry
	// query contents, which an operator opts into exposing.
	Endpoints bool
	// Sample is the recorder's uniform keep probability for unremarkable
	// queries (0 = 0.01). Negative disables the recorder entirely —
	// the overhead-ablation baseline.
	Sample float64
	// StoreSize is the trace ring capacity (0 = 512).
	StoreSize int
	// KeepSlowest is K, the slowest-per-window retention (0 = 8).
	KeepSlowest int
}

// CacheOptions sizes the query result cache.
type CacheOptions struct {
	// Size caps cached results (0 = 4096; negative disables caching).
	Size int
	// TTL expires entries by age (0 = 60s; negative = no TTL). The TTL
	// bounds staleness only against out-of-band mutations; index
	// refreshes invalidate instantly via the epoch in the cache key.
	TTL time.Duration
	// Bytes bounds the cache's estimated memory footprint
	// (0 = 64 MiB; negative = unbounded).
	Bytes int64
}

// indexState bundles everything derived from one version of the index:
// the index itself, the text index over its data graph, and the shared
// evaluators (which cache per-layer prepared indexes). A hot reload swaps
// the whole bundle atomically, so a request that loaded the state at entry
// sees one consistent version end to end; the old bundle stays valid for
// requests still holding it and is garbage-collected when they finish.
type indexState struct {
	idx *core.Index
	tix *text.Index
	// plans caches the shard execution plan per layer graph of this index
	// version. Tying the cache to the bundle is what gives sharded
	// queries epoch consistency under hot swaps: a request resolves both
	// its graphs and its plans through the one bundle it loaded at entry,
	// so a concurrent SwapIndex can never mix a new graph with an old
	// partition (or vice versa) inside one query.
	plans *shard.PlanCache
	mu    sync.Mutex
	evs   map[string]*core.Evaluator
}

// Server handles HTTP requests against one index.
type Server struct {
	state    atomic.Pointer[indexState]
	ont      *ontology.Ontology
	opt      Options
	mux      *http.ServeMux
	handler  http.Handler
	boot     time.Time
	sem      chan struct{}            // load-shedding slots (nil = unbounded)
	draining atomic.Bool              // readiness flips to 503 during shutdown drain
	cache    *qcache.Cache            // query result cache (nil = disabled)
	reloader atomic.Pointer[Reloader] // set by SetReloader; nil = /admin/reload disabled
	mutator  atomic.Pointer[Mutator]  // set by SetMutator; nil = /admin/edges disabled
	recorder *obs.Recorder            // flight recorder (nil = disabled)
	audit    *costAudit               // Formula 4 calibration audit (costmodel.go)
	shardMet *shard.Metrics           // shard query/task/portal/round metrics

	reg       *obs.Registry
	cacheSec  *obs.HistogramVec // end-to-end /query latency by cache outcome
	phaseSec  *obs.HistogramVec // query phase latency, labeled by Breakdown phase
	querySec  *obs.HistogramVec // end-to-end evaluation latency by algorithm/mode
	matches   *obs.CounterVec   // matches returned by algorithm
	cancelled *obs.CounterVec   // interrupted queries, by reason (deadline/client)
	degraded  *obs.Counter      // 200s with partial results after a deadline
	shardLoss *obs.CounterVec   // 200s degraded by unreachable shard replicas, by failing peer
	coverage  *obs.Histogram    // block-coverage fraction of shard-degraded queries
	shed      *obs.Counter      // 429s from the load-shedding gate
	panics    *obs.Counter      // handler panics contained by recoverPanics
	inflightQ *obs.Gauge        // queries currently evaluating

	// Paper-phase counters fed from core.Breakdown after each evaluation.
	layerChosen *obs.CounterVec // queries by algo and evaluated layer (Formula 4 outcome)
	prop41      *obs.CounterVec // Prop 4.1 label-filter candidates, by result
	isKeySteps  *obs.Counter    // Sec. 4.3.1 early-filtered Spec steps
	topkStops   *obs.CounterVec // top-k early terminations, by kind
	genChecks   *obs.CounterVec // Def 4.2/4.3 qualification checks, by kind and result
	specFanout  *obs.Histogram  // candidates per layer-descent step

	// Index-shape gauges, re-set on every hot swap.
	idxLayers *obs.Gauge
	idxSize   *obs.Gauge
	gVerts    *obs.Gauge
	gEdges    *obs.Gauge

	shardWorkers *obs.Gauge // configured default shard worker count
}

// knownPaths bounds the path label cardinality of the HTTP metrics.
var knownPaths = map[string]bool{
	"/query": true, "/explain": true, "/complete": true,
	"/stats": true, "/metrics": true, "/healthz": true, "/readyz": true,
	"/admin/reload": true, "/admin/edges": true, "/admin/compact": true,
	"/debug/traces": true, "/debug/active": true, "/debug/index": true,
	"/debug/costmodel": true, "/debug/fleet": true,
}

// New creates a server over a built index.
func New(idx *core.Index, ont *ontology.Ontology, opt Options) *Server {
	if opt.DMax < 1 {
		opt.DMax = 4
	}
	if opt.BlockSize < 1 {
		opt.BlockSize = 200
	}
	if opt.MaxK <= 0 {
		opt.MaxK = 100
	}
	if opt.Metrics == nil {
		opt.Metrics = obs.NewRegistry()
	}
	if opt.Logger == nil {
		opt.Logger = obs.DiscardLogger()
	}
	switch {
	case opt.SlowQuery == 0:
		opt.SlowQuery = 500 * time.Millisecond
	case opt.SlowQuery < 0:
		opt.SlowQuery = 0
	}
	switch {
	case opt.ShedWait == 0:
		opt.ShedWait = 100 * time.Millisecond
	case opt.ShedWait < 0:
		opt.ShedWait = 0
	}
	if opt.Shards < 0 {
		opt.Shards = 0
	}
	if maxp := runtime.GOMAXPROCS(0); opt.Shards > maxp {
		opt.Logger.Warn("clamping shard workers to GOMAXPROCS",
			slog.Int("requested", opt.Shards), slog.Int("gomaxprocs", maxp))
		opt.Shards = maxp
	}
	s := &Server{
		ont:  ont,
		opt:  opt,
		mux:  http.NewServeMux(),
		boot: time.Now(),
		reg:  opt.Metrics,
	}
	s.shardMet = shard.NewMetrics(s.reg)
	s.state.Store(s.newIndexState(idx))
	if opt.MaxInFlight > 0 {
		s.sem = make(chan struct{}, opt.MaxInFlight)
	}
	if opt.Cache.Size >= 0 {
		co := qcache.Options{
			MaxEntries: opt.Cache.Size,
			TTL:        opt.Cache.TTL,
			MaxBytes:   opt.Cache.Bytes,
			Obs:        s.reg,
		}
		switch {
		case co.TTL == 0:
			co.TTL = time.Minute
		case co.TTL < 0:
			co.TTL = 0
		}
		switch {
		case co.MaxBytes == 0:
			co.MaxBytes = 64 << 20
		case co.MaxBytes < 0:
			co.MaxBytes = 0
		}
		s.cache = qcache.New(co)
	}
	s.cacheSec = s.reg.HistogramVec("bigindex_query_cache_seconds",
		"End-to-end /query latency in seconds by cache outcome (hit, miss, shared, bypass).",
		nil, "outcome")
	s.phaseSec = s.reg.HistogramVec("bigindex_query_phase_seconds",
		"Query evaluation phase latency in seconds (the paper's Figs. 10-14 axes).",
		nil, "phase")
	s.querySec = s.reg.HistogramVec("bigindex_query_seconds",
		"End-to-end query evaluation latency in seconds.", nil, "algo", "mode")
	s.matches = s.reg.CounterVec("bigindex_query_matches_total",
		"Final answers returned.", "algo")
	s.cancelled = s.reg.CounterVec("bigindex_query_cancelled_total",
		"Queries interrupted before completion, by reason (deadline, client).", "reason")
	s.degraded = s.reg.Counter("bigindex_query_degraded_total",
		"Queries that returned partial results after their deadline expired.")
	s.shardLoss = s.reg.CounterVec("bigindex_query_shard_degraded_total",
		"Queries that completed over surviving shard blocks after replica loss, by the peer blamed for the loss (\"unknown\" when the transport reported none).",
		"peer")
	s.coverage = s.reg.Histogram("bigindex_query_coverage_fraction",
		"Block-coverage fraction of shard-degraded queries (1.0 = all blocks reached).",
		[]float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1})
	s.shed = s.reg.Counter("bigindex_query_shed_total",
		"Queries rejected with 429 by the load-shedding gate.")
	s.panics = s.reg.Counter("bigindex_panic_recovered_total",
		"Handler panics contained by the recovery middleware.")
	s.inflightQ = s.reg.Gauge("bigindex_queries_inflight",
		"Queries currently being evaluated (admitted past the shedding gate).")
	if opt.Debug.Sample >= 0 {
		s.recorder = obs.NewRecorder(obs.RecorderOptions{
			Sample:      opt.Debug.Sample,
			StoreSize:   opt.Debug.StoreSize,
			KeepSlowest: opt.Debug.KeepSlowest,
			Metrics:     s.reg,
		})
	}
	s.layerChosen = s.reg.CounterVec("bigindex_query_layer_total",
		"Queries by algorithm and the layer the cost model evaluated them at (Formula 4).",
		"algo", "layer")
	s.prop41 = s.reg.CounterVec("bigindex_prop41_candidates_total",
		"Specialization candidates examined by the Prop 4.1 label filter, by result (kept, filtered).",
		"result")
	s.isKeySteps = s.reg.Counter("bigindex_iskey_steps_total",
		"Early-filtered specialization steps above layer 1 (the isKey optimization, Sec. 4.3.1).")
	s.topkStops = s.reg.CounterVec("bigindex_topk_stops_total",
		"Top-k early terminations by kind: earlyk (Sec. 4.3.4 first-k), bound (Prop 5.2 score bound), generate (inside a generation session).",
		"kind")
	s.genChecks = s.reg.CounterVec("bigindex_gen_checks_total",
		"Answer-generation qualification checks by kind (vertex = Def 4.2 / Algo 3, path = Def 4.3 / Algo 4) and result (qualified, rejected).",
		"kind", "result")
	s.specFanout = s.reg.Histogram("bigindex_spec_fanout",
		"Candidates emerging from each specialization layer-descent step.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384})
	s.audit = newCostAudit(s.reg)
	s.idxLayers = s.reg.Gauge("bigindex_index_layers", "Summary layers in the served index (h).")
	s.idxSize = s.reg.Gauge("bigindex_index_size", "BiG-index size (sum of summary graph sizes).")
	s.gVerts = s.reg.Gauge("bigindex_graph_vertices", "Data graph vertices.")
	s.gEdges = s.reg.Gauge("bigindex_graph_edges", "Data graph edges.")
	s.shardWorkers = s.reg.Gauge("bigindex_shard_workers",
		"Default worker count for partition-sharded query execution (0 = sequential).")
	s.shardWorkers.Set(float64(opt.Shards))
	s.setIndexGauges(idx)

	s.mux.HandleFunc("/query", s.shedded(s.handleQuery))
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/complete", s.handleComplete)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/admin/reload", s.adminOnly(s.handleAdminReload))
	s.mux.HandleFunc("/admin/edges", s.adminOnly(s.handleAdminEdges))
	s.mux.HandleFunc("/admin/compact", s.adminOnly(s.handleAdminCompact))
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.Handle("/metrics", s.reg.Handler())
	if opt.Debug.Endpoints {
		s.mux.HandleFunc("/debug/traces", s.handleDebugTraces)
		s.mux.HandleFunc("/debug/traces/", s.handleDebugTraceByID)
		s.mux.HandleFunc("/debug/active", s.handleDebugActive)
		s.mux.HandleFunc("/debug/index", s.handleDebugIndex)
		s.mux.HandleFunc("/debug/costmodel", s.handleDebugCostmodel)
		s.mux.HandleFunc("/debug/fleet", s.handleDebugFleet)
	}
	s.handler = obs.Instrument(s.recoverPanics(s.mux), obs.HTTPOptions{
		Registry:  s.reg,
		Logger:    opt.Logger,
		SlowQuery: opt.SlowQuery,
		Normalize: func(r *http.Request) string {
			if knownPaths[r.URL.Path] {
				return r.URL.Path
			}
			if strings.HasPrefix(r.URL.Path, "/debug/traces/") {
				return "/debug/traces/{id}"
			}
			return "other"
		},
	})
	return s
}

// Recorder returns the server's flight recorder (nil when disabled).
func (s *Server) Recorder() *obs.Recorder { return s.recorder }

// ServeHTTP implements http.Handler (through the obs middleware: request
// metrics, per-request trace, request log).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Metrics returns the server's registry (for tests and embedding).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// newIndexState derives a fresh bundle from an index version. It is a
// method because the bundle's shard plan cache inherits the server's
// partition options (one plan per graph, shared by every worker count).
func (s *Server) newIndexState(idx *core.Index) *indexState {
	return &indexState{
		idx:   idx,
		tix:   text.NewIndex(idx.Data().Dict(), idx.Data()),
		plans: shard.NewPlanCache(shard.Options{BlockSize: s.opt.BlockSize}),
		evs:   map[string]*core.Evaluator{},
	}
}

// st returns the current index state; handlers load it once at entry so a
// concurrent swap cannot mix two index versions within one request.
func (s *Server) st() *indexState { return s.state.Load() }

// Index returns the currently served index.
func (s *Server) Index() *core.Index { return s.st().idx }

// SwapIndex atomically replaces the served index with a new version: the
// text index and evaluator pool are rebuilt against it, the index-shape
// gauges are re-set, and subsequent requests see only the new bundle.
// In-flight requests finish against the version they started with — both
// are internally consistent, and the result cache cannot bleed between
// them because its keys embed the index epoch, which the new version has
// bumped. The server's own epoch-keyed caching makes an explicit cache
// flush unnecessary (and racy: a flush could evict entries a concurrent
// old-epoch request just stored, or keep ones it stores after).
func (s *Server) SwapIndex(idx *core.Index) {
	s.state.Store(s.newIndexState(idx))
	s.setIndexGauges(idx)
}

func (s *Server) setIndexGauges(idx *core.Index) {
	s.idxLayers.Set(float64(idx.NumLayers() - 1))
	s.idxSize.Set(float64(idx.TotalSize()))
	s.gVerts.Set(float64(idx.Data().NumVertices()))
	s.gEdges.Set(float64(idx.Data().NumEdges()))
}

// SetReloader wires a Reloader into the server: /admin/reload starts
// delegating to it and /stats reports its health. Called once at startup.
func (s *Server) SetReloader(r *Reloader) { s.reloader.Store(r) }

// SetMutator wires a Mutator into the server: /admin/edges and
// /admin/compact start delegating to it and /stats reports its state.
// Called once at startup (NewMutator does it for you).
func (s *Server) SetMutator(m *Mutator) { s.mutator.Store(m) }

func (s *Server) algorithm(name string) (search.Algorithm, error) {
	if a, ok := s.opt.ExtraAlgorithms[name]; ok {
		return a, nil
	}
	switch name {
	case "", "blinks":
		return blinks.New(blinks.Options{DMax: s.opt.DMax, BlockSize: s.opt.BlockSize}), nil
	case "bkws":
		return bkws.New(s.opt.DMax), nil
	case "bidir":
		return bidir.New(s.opt.DMax), nil
	case "rclique":
		return rclique.New(max(1, s.opt.DMax-1)), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

// shardable reports whether name resolves to an algorithm with a
// partition-sharded execution path. An ExtraAlgorithms entry shadowing a
// built-in name disables sharding for it — the plug-in's semantics are
// unknown, and silently swapping in the built-in sharded variant would
// answer with the wrong algorithm.
func (s *Server) shardable(name string) bool {
	if _, shadowed := s.opt.ExtraAlgorithms[name]; shadowed {
		return false
	}
	return name == "bkws" || name == "bidir"
}

// shardAlgorithm builds the sharded variant of a shardable algorithm,
// wired to the bundle's plan cache (epoch-consistent plans) and the
// server's shard metrics.
func (s *Server) shardAlgorithm(st *indexState, name string, workers int) search.Algorithm {
	opt := shard.Options{
		Workers:   workers,
		BlockSize: s.opt.BlockSize,
		Cache:     st.plans,
		Metrics:   s.shardMet,
	}
	if c := s.opt.ShardClient; c != nil {
		data := st.idx.Data()
		opt.Server = func(p *shard.Plan) shard.ShardServer {
			// Only the data graph goes remote: peers advertise the data
			// graph's digest, so routing a summary-layer plan at them
			// would just bounce off the per-request digest check. A nil
			// return falls back to in-process execution.
			if p.Graph() == data && c.ServesPlan(p) {
				return c.For(p)
			}
			return nil
		}
	}
	if name == "bidir" {
		return bidir.NewSharded(s.opt.DMax, opt)
	}
	return bkws.NewSharded(s.opt.DMax, opt)
}

// evaluator returns (creating on first use) the shared evaluator for an
// algorithm against one index version; evaluators cache per-layer prepared
// indexes across requests. Evaluators are shared across requests with
// different k values, so their options never encode a per-request k
// (mutating them would race with in-flight queries): non-rclique
// evaluators run exhaustively (K=0) and handleQuery clamps to the
// request's k at result time; rclique pins K to the server-wide MaxK cap,
// which every request k is clamped under.
//
// shards >= 1 on a shardable algorithm selects the partition-sharded
// execution path (1 = coordinator with a single worker); the evaluator is
// keyed "name@N" so each worker count keeps its own evaluator, while the
// algorithm's Name() stays the sequential name — answers are
// byte-identical, so result-cache entries and per-algo metrics are
// deliberately shared across worker counts.
func (s *Server) evaluator(st *indexState, name string, shards int) (*core.Evaluator, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	key := name
	if key == "" {
		key = "blinks"
	}
	sharded := shards >= 1 && s.shardable(name)
	if sharded {
		key = fmt.Sprintf("%s@%d", name, shards)
	}
	ev, ok := st.evs[key]
	if !ok {
		var algo search.Algorithm
		var err error
		if sharded {
			algo = s.shardAlgorithm(st, name, shards)
		} else {
			algo, err = s.algorithm(name)
		}
		if err != nil {
			return nil, err
		}
		opt := core.DefaultEvalOptions()
		if key == "rclique" {
			opt.K = s.opt.MaxK
			opt.EarlyK = true
			opt.GenLimit = 40
			opt.DegreeExponent = 3
			opt.GenBudget = 2_000_000
		} else {
			opt.DegreeExponent = 1
		}
		ev = core.NewEvaluator(st.idx, algo, opt)
		st.evs[key] = ev
	}
	return ev, nil
}

// coverageJSON is the response's view of a shard-degraded query: which
// plan blocks were reached, overall and per resolved keyword (the
// collector tracks keyword positions; the server maps them back to
// names). It appears only alongside "degraded":true, reason "shards".
type coverageJSON struct {
	BlocksTotal     int                `json:"blocks_total"`
	BlocksLost      int                `json:"blocks_lost"`
	LostBlocks      []int              `json:"lost_blocks,omitempty"`
	Fraction        float64            `json:"fraction"`
	PerKeyword      map[string]float64 `json:"per_keyword,omitempty"`
	RootsUnverified int                `json:"roots_unverified,omitempty"`
	// FailedPeers names the shard peer addresses every replica attempt
	// failed against — the operator's "which process do I go restart".
	FailedPeers []string `json:"failed_peers,omitempty"`
}

type matchJSON struct {
	Root  string   `json:"root"`
	Nodes []string `json:"nodes"`
	Dists []int    `json:"dists,omitempty"`
	Score float64  `json:"score"`
}

// cachedResult is one query's evaluation outcome as it flows through
// the result cache: the matches, the layer they were evaluated at, and
// whether the evaluation was cut short by its deadline. Degraded
// results are shared with concurrent identical queries (they were going
// to share the same interrupted evaluation anyway) but never stored —
// a later query with a healthy deadline must recompute the full answer.
type cachedResult struct {
	matches  []search.Match
	layer    int
	degraded string                // non-empty = degradation reason ("deadline", "shards")
	coverage *shard.CoverageReport // non-nil = shard replica loss; what was reached
}

// approxResultBytes estimates a result's heap footprint for the cache's
// byte budget: slice headers plus per-match vertex and distance
// payloads. An estimate is fine — the budget bounds order of magnitude,
// not accounting truth.
func approxResultBytes(ms []search.Match) int64 {
	n := int64(64) // entry + slice header overhead; floor for negative entries
	for i := range ms {
		n += 48 + 8*int64(len(ms[i].Nodes)) + 8*int64(len(ms[i].Dists))
	}
	return n
}

// evalQuery runs one uncached evaluation (the body the cache wraps):
// direct baseline eval or hierarchical eval at a pinned/auto layer,
// with per-phase latency metrics and the per-request k applied at
// result time (shared evaluators run exhaustively; see evaluator()).
func (s *Server) evalQuery(ctx context.Context, ev *core.Evaluator, algo string, q []graph.Label, k, forcedLayer int, direct bool) (cachedResult, error) {
	// A fresh coverage collector rides the context into the shard
	// coordinator (like obs.Ledger): a lossy sharded run records what it
	// abandoned, and the report marks the result degraded-by-shards.
	// Singleflight followers share the leader's context, so they see the
	// same report. Unsharded runs never touch it and the report stays nil.
	cov := shard.NewCoverage()
	ctx = shard.ContextWithCoverage(ctx, cov)
	if direct {
		ms, err := ev.DirectCtx(ctx, q, k)
		return withCoverage(cachedResult{matches: ms}, cov), err
	}
	ms, bd, err := ev.EvalLayerCtx(ctx, q, forcedLayer)
	layer := 0
	if bd != nil {
		layer = bd.Layer
		s.phaseSec.With("select").Observe(bd.Select.Seconds())
		s.phaseSec.With("search").Observe(bd.Search.Seconds())
		s.phaseSec.With("specialize").Observe(bd.Specialize.Seconds())
		s.phaseSec.With("generate").Observe(bd.Generate.Seconds())
		s.observeBreakdown(algo, bd)
		if err == nil {
			s.auditCost(ev, algo, q, bd, obs.LedgerFromContext(ctx), forcedLayer)
		}
	}
	return withCoverage(cachedResult{matches: search.Truncate(ms, k), layer: layer}, cov), err
}

// withCoverage folds a shard coverage collector into the result: any
// recorded loss marks the result degraded ("shards"), which keeps it out
// of the result cache — the answer is sound for the covered subgraph but
// incomplete, and a later query must see the full graph again.
func withCoverage(cr cachedResult, cov *shard.Coverage) cachedResult {
	if rep := cov.Report(); rep != nil {
		cr.coverage = rep
		if cr.degraded == "" {
			cr.degraded = "shards"
		}
	}
	return cr
}

// observeBreakdown exports the Breakdown's paper-phase counters so metrics
// speak the paper's vocabulary (Formula 4 / Prop 4.1 / Defs 4.2-4.3 /
// Secs. 4.3.1 and 4.3.4); see DESIGN.md for the mapping.
func (s *Server) observeBreakdown(algo string, bd *core.Breakdown) {
	s.layerChosen.With(algo, strconv.Itoa(bd.Layer)).Inc()
	s.prop41.With("kept").Add(int64(bd.Prop41Checked - bd.Prop41Filtered))
	s.prop41.With("filtered").Add(int64(bd.Prop41Filtered))
	s.isKeySteps.Add(int64(bd.IsKeySteps))
	s.topkStops.With("earlyk").Add(int64(bd.EarlyStops))
	s.topkStops.With("bound").Add(int64(bd.BoundStops))
	s.topkStops.With("generate").Add(bd.Gen.EarlyKStops)
	s.genChecks.With("vertex", "qualified").Add(bd.Gen.VertexQualified)
	s.genChecks.With("vertex", "rejected").Add(bd.Gen.VertexChecks - bd.Gen.VertexQualified)
	s.genChecks.With("path", "qualified").Add(bd.Gen.PathQualified)
	s.genChecks.With("path", "rejected").Add(bd.Gen.PathChecks - bd.Gen.PathQualified)
	for _, f := range bd.SpecFanout {
		s.specFanout.Observe(float64(f))
	}
}

// runQuery answers one query through the result cache: a cache hit
// skips evaluation, concurrent identical queries collapse onto one
// evaluation (singleflight), and &nocache=1 or a disabled cache bypass
// both. A deadline expiry inside the evaluation comes back as a
// degraded cachedResult with a nil error; other errors pass through.
func (s *Server) runQuery(ctx context.Context, st *indexState, ev *core.Evaluator, algo string, q []graph.Label,
	k, forcedLayer int, direct, nocache bool) (cachedResult, qcache.Outcome, error) {
	compute := func(cctx context.Context) (qcache.Result, error) {
		cr, err := s.evalQuery(cctx, ev, algo, q, k, forcedLayer, direct)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				cr.degraded = "deadline"
				return qcache.Result{V: cr, Store: false}, nil
			}
			return qcache.Result{}, err
		}
		return qcache.Result{
			V:        cr,
			Bytes:    approxResultBytes(cr.matches),
			Store:    cr.degraded == "", // shard-degraded results are shared, never stored
			Negative: len(cr.matches) == 0,
		}, nil
	}
	if nocache || s.cache == nil {
		res, err := compute(ctx)
		cr, _ := res.V.(cachedResult)
		return cr, qcache.Bypass, err
	}
	epoch := st.idx.Epoch()
	key := qcache.Key(algo, direct, q, k, forcedLayer, epoch)
	// The Cache span is a leaf beside the evaluation spans: it records the
	// lookup outcome while Select/Search/... stay children of the root.
	sp := obs.SpanFromContext(ctx).StartChild("Cache")
	v, outcome, err := s.cache.Do(ctx, epoch, key, func() (qcache.Result, error) {
		return compute(ctx)
	})
	sp.SetAttr("outcome", string(outcome)).End()
	if err != nil && outcome == qcache.Shared && errors.Is(err, context.Canceled) && ctx.Err() == nil {
		// The singleflight leader's client vanished and took the shared
		// evaluation down with it; this request's client is still
		// waiting, so evaluate independently instead of failing.
		res, err2 := compute(ctx)
		cr, _ := res.V.(cachedResult)
		return cr, qcache.Bypass, err2
	}
	cr, _ := v.(cachedResult)
	return cr, outcome, err
}

// Warm pre-populates the result cache by evaluating workload queries
// through the same cached path /query uses (bigindexd's -warm-file).
// Each entry is "kw1,kw2[ | algo[ | k]]" — fields are |-separated
// because keywords themselves may contain spaces; blank lines and
// #-comments are skipped. Returns how many queries were warmed;
// per-query failures are joined into the returned error without
// stopping the sweep.
func (s *Server) Warm(ctx context.Context, queries []string) (int, error) {
	if s.cache == nil {
		return 0, fmt.Errorf("query cache is disabled")
	}
	st := s.st()
	warmed := 0
	var errs []error
	for _, line := range queries {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := ctx.Err(); err != nil {
			errs = append(errs, err)
			break
		}
		fields := strings.Split(line, "|")
		for i := range fields {
			fields[i] = strings.TrimSpace(fields[i])
		}
		algoName := ""
		k := 10
		if len(fields) > 1 {
			algoName = fields[1]
		}
		if len(fields) > 2 && fields[2] != "" {
			v, err := strconv.Atoi(fields[2])
			if err != nil || v <= 0 || v > s.opt.MaxK {
				errs = append(errs, fmt.Errorf("warm %q: bad k %q", line, fields[2]))
				continue
			}
			k = v
		}
		q, _, err := s.resolveKeywords(st, strings.Split(fields[0], ","))
		if err != nil {
			errs = append(errs, fmt.Errorf("warm %q: %w", line, err))
			continue
		}
		ev, err := s.evaluator(st, algoName, s.opt.Shards)
		if err != nil {
			errs = append(errs, fmt.Errorf("warm %q: %w", line, err))
			continue
		}
		cr, _, err := s.runQuery(ctx, st, ev, orDefault(algoName, "blinks"), q, k, -1, false, false)
		if err != nil {
			errs = append(errs, fmt.Errorf("warm %q: %w", line, err))
			continue
		}
		if cr.degraded != "" {
			errs = append(errs, fmt.Errorf("warm %q: degraded (%s), not cached", line, cr.degraded))
			continue
		}
		warmed++
	}
	return warmed, errors.Join(errs...)
}

// Cache returns the server's result cache (nil when disabled); tests
// and embedding daemons use it for introspection.
func (s *Server) Cache() *qcache.Cache { return s.cache }

type queryResponse struct {
	Query     []string        `json:"query"`
	Algorithm string          `json:"algorithm"`
	Layer     int             `json:"layer"`
	Direct    bool            `json:"direct,omitempty"`
	Cached    bool            `json:"cached,omitempty"`
	Elapsed   string          `json:"elapsed"`
	Count     int             `json:"count"`
	Degraded  bool            `json:"degraded,omitempty"`
	Reason    string          `json:"degraded_reason,omitempty"`
	Coverage  *coverageJSON   `json:"coverage,omitempty"`
	Matches   []matchJSON     `json:"matches"`
	Notes     []string        `json:"notes,omitempty"`
	Trace     json.RawMessage `json:"trace,omitempty"`
}

// intParam parses an optional integer query parameter: absent keeps def,
// malformed is a client error (the old behaviour silently swallowed the
// strconv error and treated "abc" as the default, masking typos).
func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", name, raw)
	}
	return v, nil
}

// queryDeadline resolves the effective evaluation deadline: the server's
// QueryTimeout, optionally shortened (never extended) by a &timeout=
// duration parameter.
func (s *Server) queryDeadline(r *http.Request) (time.Duration, error) {
	timeout := s.opt.QueryTimeout
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return timeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter timeout=%q is not a duration (try 500ms, 2s)", raw)
	}
	if d <= 0 {
		return 0, fmt.Errorf("parameter timeout=%q must be positive", raw)
	}
	if timeout == 0 || d < timeout {
		timeout = d
	}
	return timeout, nil
}

// resolve maps the request's q parameter to a *canonical* label set:
// free-text keywords go through the text index, then the labels are
// sorted and deduplicated (keyword search is set semantics, Def. 2.3).
// Canonicalization means semantically identical queries — "b,a,a" and
// "a,b" — share one cache key, one singleflight slot, and one
// evaluation.
func (s *Server) resolve(st *indexState, r *http.Request) ([]graph.Label, []string, error) {
	qparam := r.URL.Query().Get("q")
	if qparam == "" {
		return nil, nil, fmt.Errorf("missing q parameter")
	}
	return s.resolveKeywords(st, strings.Split(qparam, ","))
}

func (s *Server) resolveKeywords(st *indexState, kws []string) ([]graph.Label, []string, error) {
	for i := range kws {
		kws[i] = strings.TrimSpace(kws[i])
	}
	q, notes, err := st.tix.Resolve(kws, st.idx.Data())
	if err != nil {
		return nil, notes, err
	}
	return qcache.CanonicalLabels(q), notes, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	st := s.st() // one consistent index version for the whole request
	q, notes, err := s.resolve(st, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	algoName := r.URL.Query().Get("algo")
	k, err := intParam(r, "k", 10)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if k <= 0 || k > s.opt.MaxK {
		k = 10
	}
	forcedLayer, err := intParam(r, "layer", -1)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if forcedLayer >= st.idx.NumLayers() {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("layer %d out of range (index has layers 0..%d)", forcedLayer, st.idx.NumLayers()-1))
		return
	}
	timeout, err := s.queryDeadline(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// &shards= overrides the server default per query. Explicit values are
	// validated strictly (PR 2 param conventions): malformed or negative is
	// a 400, as is asking a non-shardable algorithm to shard — silently
	// running it sequentially would misreport what executed. The inherited
	// server default, by contrast, applies opportunistically: algorithms
	// without a sharded path just stay sequential.
	shards, err := intParam(r, "shards", s.opt.Shards)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if explicit := r.URL.Query().Get("shards") != ""; explicit {
		if shards < 0 {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("parameter shards=%d must be >= 0", shards))
			return
		}
		if shards > 1 && !s.shardable(orDefault(algoName, "blinks")) {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("algorithm %q has no sharded execution path (use bkws or bidir)", orDefault(algoName, "blinks")))
			return
		}
	}
	if maxp := runtime.GOMAXPROCS(0); shards > maxp {
		shards = maxp
		notes = append(notes, fmt.Sprintf("shards clamped to GOMAXPROCS (%d)", maxp))
	}
	ev, err := s.evaluator(st, algoName, shards)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	// Per-query resource ledger: the search algorithms, specialization, and
	// generation all find it through the context and charge their work to
	// it; the snapshot rides on the retained trace and the query log, and
	// feeds the Formula 4 calibration audit.
	led := obs.NewLedger()
	ctx = obs.ContextWithLedger(ctx, led)
	// Per-query shard RPC attempt log: the client records every attempt by
	// peer address; the query-log entry persists the counts, so a degraded
	// capture shows which peer burned the retries.
	var callLog *shardrpc.CallLog
	if s.opt.ShardClient != nil {
		callLog = shardrpc.NewCallLog()
		ctx = shardrpc.ContextWithCallLog(ctx, callLog)
	}

	algo := orDefault(algoName, "blinks")
	direct := r.URL.Query().Get("direct") != ""
	nocache := r.URL.Query().Get("nocache") != ""
	mode := "eval"
	if direct {
		mode = "direct"
	}
	obs.AddLogAttrs(ctx,
		slog.String("query", r.URL.Query().Get("q")),
		slog.String("algo", algo),
		slog.Int("k", k),
		slog.String("mode", mode))

	start := time.Now()
	cr, outcome, err := s.runQuery(ctx, st, ev, algo, q, k, forcedLayer, direct, nocache)
	elapsed := time.Since(start)
	// The flight recorder's tail-sampling decision: the trace of every
	// query reaches Finish with its terminal outcome; errored / degraded /
	// cancelled queries are always retained, the rest compete as
	// slowest-of-window or uniform sample.
	tr := obs.SpanFromContext(ctx).Trace()
	qRaw := r.URL.Query().Get("q")
	cost := led.Snapshot()
	// logQuery appends one workload-capture line when the query log is on;
	// the captured keywords are the canonical resolved names, so replay
	// resolves them back to the same labels.
	logQuery := func(outcome string, layer int, cached bool) {
		if s.opt.QueryLog == nil {
			return
		}
		dict := st.idx.Data().Dict()
		kws := make([]string, 0, len(q))
		for _, l := range q {
			kws = append(kws, dict.Name(l))
		}
		s.opt.QueryLog.Append(obs.QueryLogEntry{
			TS:           time.Now().UTC(),
			Keywords:     kws,
			Algo:         algo,
			K:            k,
			Layer:        layer,
			Direct:       direct,
			Cached:       cached,
			Outcome:      outcome,
			DurUS:        elapsed.Microseconds(),
			Cost:         cost,
			PeerAttempts: callLog.Snapshot(),
		})
	}
	degradedReason := cr.degraded
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			// The deadline expired while waiting on another query's
			// in-flight evaluation: there are no partials of our own, so
			// degrade to an empty (sound, trivially incomplete) answer set.
			degradedReason = "deadline"
		case errors.Is(err, context.Canceled):
			// The client went away; nothing will read the response. Record
			// the abort for the cancellation counter and close out.
			s.cancelled.With("client").Inc()
			s.recorder.FinishCost(tr, algo, qRaw, "cancelled", elapsed, cost)
			logQuery("cancelled", cr.layer, false)
			httpError(w, statusClientClosedRequest, fmt.Errorf("client closed request"))
			return
		default:
			s.recorder.FinishCost(tr, algo, qRaw, "error", elapsed, cost)
			logQuery("error", cr.layer, false)
			httpError(w, http.StatusInternalServerError, err)
			return
		}
	}
	if degradedReason != "" {
		if degradedReason == "shards" {
			// Replica loss: the answer is sound for the covered subgraph
			// (the coordinator stops settling at the first lossy level) but
			// some blocks went unreached — the coverage block says which,
			// and the metric says which peer(s) to go look at.
			if cr.coverage != nil && len(cr.coverage.FailedPeers) > 0 {
				for _, peer := range cr.coverage.FailedPeers {
					s.shardLoss.With(peer).Inc()
				}
			} else {
				s.shardLoss.With("unknown").Inc()
			}
			if cr.coverage != nil {
				s.coverage.Observe(cr.coverage.Fraction)
			}
		} else {
			// Deadline expiry mid-evaluation degrades to the partial answers
			// rather than failing. Every returned match is verified (Prop 5.2
			// keeps the prefix sound); the set is just short.
			s.cancelled.With("deadline").Inc()
		}
		s.degraded.Inc()
		obs.AddLogAttrs(ctx, slog.Bool("degraded", true))
		s.recorder.FinishCost(tr, algo, qRaw, "degraded", elapsed, cost)
		logQuery("degraded", cr.layer, false)
	} else {
		s.recorder.FinishCost(tr, algo, qRaw, "ok", elapsed, cost)
		logQuery("ok", cr.layer, outcome == qcache.Hit)
	}
	ms := cr.matches
	// Exemplar: the latency bucket remembers this query's trace ID, so a
	// spike in the exposition cross-links to /debug/traces/{id}.
	s.querySec.With(algo, mode).ObserveExemplar(elapsed.Seconds(), tr.ID())
	s.cacheSec.With(string(outcome)).Observe(elapsed.Seconds())
	s.matches.With(algo).Add(int64(len(ms)))
	obs.AddLogAttrs(ctx, slog.Int("layer", cr.layer), slog.Int("count", len(ms)),
		slog.String("cache", string(outcome)))

	dict := st.idx.Data().Dict()
	g := st.idx.Data()
	resp := queryResponse{
		Algorithm: algo,
		Layer:     cr.layer,
		Direct:    direct,
		Cached:    outcome == qcache.Hit,
		Elapsed:   elapsed.Round(time.Microsecond).String(),
		Count:     len(ms),
		Degraded:  degradedReason != "",
		Reason:    degradedReason,
		Notes:     notes,
	}
	if cr.coverage != nil {
		cov := &coverageJSON{
			BlocksTotal:     cr.coverage.BlocksTotal,
			BlocksLost:      cr.coverage.BlocksLost,
			LostBlocks:      cr.coverage.LostBlocks,
			Fraction:        cr.coverage.Fraction,
			RootsUnverified: cr.coverage.RootsUnverified,
			FailedPeers:     cr.coverage.FailedPeers,
		}
		if len(cr.coverage.PerKeyword) > 0 {
			cov.PerKeyword = make(map[string]float64, len(cr.coverage.PerKeyword))
			for i, f := range cr.coverage.PerKeyword {
				if i < len(q) {
					cov.PerKeyword[dict.Name(q[i])] = f
				}
			}
		}
		resp.Coverage = cov
	}
	if want, _ := strconv.ParseBool(r.URL.Query().Get("trace")); want {
		if tr := obs.SpanFromContext(ctx).Trace(); tr != nil {
			if js, err := json.Marshal(tr); err == nil {
				resp.Trace = js
			}
		}
	}
	for _, l := range q {
		resp.Query = append(resp.Query, dict.Name(l))
	}
	for _, m := range ms {
		mj := matchJSON{Root: dict.Name(g.Label(m.Root)), Score: m.Score, Dists: m.Dists}
		for _, n := range m.Nodes {
			mj.Nodes = append(mj.Nodes, dict.Name(g.Label(n)))
		}
		resp.Matches = append(resp.Matches, mj)
	}
	writeJSON(w, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	st := s.st()
	q, notes, err := s.resolve(st, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ev, err := s.evaluator(st, r.URL.Query().Get("algo"), 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	plan := ev.ExplainCtx(r.Context(), q)
	dict := st.idx.Data().Dict()
	type layerJSON struct {
		Layer       int      `json:"layer"`
		Cost        *float64 `json:"cost,omitempty"`
		Legal       bool     `json:"legal"`
		Generalized []string `json:"generalized"`
	}
	out := struct {
		Chosen int         `json:"chosen_layer"`
		Layers []layerJSON `json:"layers"`
		Notes  []string    `json:"notes,omitempty"`
	}{Chosen: plan.Layer, Notes: notes}
	for m := range plan.Generalized {
		lj := layerJSON{Layer: m, Legal: plan.Legal[m]}
		if plan.LayerCosts != nil && m < len(plan.LayerCosts) {
			c := plan.LayerCosts[m]
			lj.Cost = &c
		}
		for _, l := range plan.Generalized[m] {
			name, _ := dict.NameOK(l)
			lj.Generalized = append(lj.Generalized, name)
		}
		out.Layers = append(out.Layers, lj)
	}
	writeJSON(w, out)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	prefix := r.URL.Query().Get("prefix")
	limit, err := intParam(r, "limit", 10)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if limit <= 0 || limit > 100 {
		limit = 10
	}
	st := s.st()
	dict := st.idx.Data().Dict()
	var names []string
	for _, l := range st.tix.Prefix(prefix, limit) {
		names = append(names, dict.Name(l))
	}
	writeJSON(w, struct {
		Prefix      string   `json:"prefix"`
		Completions []string `json:"completions"`
	}{prefix, names})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.st()
	g := st.idx.Data()
	gs := graph.ComputeStats(g)
	type cacheJSON struct {
		Entries int64 `json:"entries"`
		Bytes   int64 `json:"bytes"`
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Shared  int64 `json:"shared"`
	}
	type reloadJSON struct {
		LastSuccess      string `json:"last_success"`
		StalenessSeconds int64  `json:"staleness_seconds"`
		Failures         int64  `json:"consecutive_failures"`
		CircuitOpen      bool   `json:"circuit_open"`
	}
	type mutationJSON struct {
		Seq       uint64 `json:"seq"`
		WALBytes  int64  `json:"wal_bytes"`
		LastApply string `json:"last_apply,omitempty"`
	}
	// The shard block reads plans through Peek: a plan exists only after
	// the first sharded query against this index version, and /stats must
	// observe, not trigger, the (one-off) planning cost. Plans counts every
	// planned graph (hierarchical routing plans the summary layer it
	// evaluates at); Blocks/EdgeCut describe the data graph's plan, the one
	// direct evaluation and layer-0 routing use.
	type shardJSON struct {
		Workers    int  `json:"workers"`
		GOMAXPROCS int  `json:"gomaxprocs"`
		Plans      int  `json:"plans"`
		Planned    bool `json:"planned"`
		Blocks     int  `json:"blocks,omitempty"`
		EdgeCut    int  `json:"edge_cut,omitempty"`
		// Remote-serving state (-shard-peers): per-peer health and the
		// worst-case block coverage a query started now could see.
		// CoverageFloor is a pointer so 0.0 — total outage — still renders.
		Remote        bool                  `json:"remote,omitempty"`
		CoverageFloor *float64              `json:"coverage_floor,omitempty"`
		Peers         []shardrpc.PeerHealth `json:"peers,omitempty"`
	}
	out := struct {
		Graph    graph.Stats        `json:"graph"`
		Layers   []core.LayerStats  `json:"layers"`
		Epoch    uint64             `json:"epoch"`
		Cache    *cacheJSON         `json:"cache,omitempty"`
		Reload   *reloadJSON        `json:"reload,omitempty"`
		Mutation *mutationJSON      `json:"mutation,omitempty"`
		Recorder *obs.RecorderStats `json:"recorder,omitempty"`
		Shard    shardJSON          `json:"shard"`
		Uptime   string             `json:"uptime"`
	}{Graph: gs, Layers: st.idx.Stats().Layers, Epoch: st.idx.Epoch(),
		Shard: shardJSON{Workers: s.opt.Shards, GOMAXPROCS: runtime.GOMAXPROCS(0),
			Plans: st.plans.Len()},
		Uptime: time.Since(s.boot).Round(time.Second).String()}
	if p := st.plans.Peek(g); p != nil {
		out.Shard.Planned = true
		out.Shard.Blocks = p.NumBlocks()
		out.Shard.EdgeCut = p.EdgeCut()
	}
	if c := s.opt.ShardClient; c != nil {
		out.Shard.Remote = true
		floor := c.CoverageFloor()
		out.Shard.CoverageFloor = &floor
		out.Shard.Peers = c.Health()
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		out.Cache = &cacheJSON{cs.Entries, cs.Bytes, cs.Hits, cs.Misses, cs.Shared}
	}
	if s.recorder != nil {
		occ := s.recorder.Occupancy()
		out.Recorder = &occ
	}
	if rl := s.reloader.Load(); rl != nil {
		h := rl.Health()
		out.Reload = &reloadJSON{
			LastSuccess:      h.LastSuccess.UTC().Format(time.RFC3339),
			StalenessSeconds: int64(h.Staleness.Seconds()),
			Failures:         h.ConsecutiveFailures,
			CircuitOpen:      h.CircuitOpen,
		}
	}
	if mut := s.mutator.Load(); mut != nil {
		h := mut.Health()
		mj := &mutationJSON{Seq: h.Seq, WALBytes: h.WALBytes}
		if !h.LastApply.IsZero() {
			mj.LastApply = h.LastApply.UTC().Format(time.RFC3339)
		}
		out.Mutation = mj
	}
	writeJSON(w, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// writeJSON encodes to a buffer before touching the ResponseWriter: a
// mid-encode failure must not emit an implicit 200 followed by a
// half-written body and a second WriteHeader — it becomes a clean 500.
func writeJSON(w http.ResponseWriter, v interface{}) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

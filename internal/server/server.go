// Package server exposes a BiG-index over HTTP with a JSON API — the
// deployment surface a system like this ships with (the paper's scenario
// is a knowledge-graph service answering user keyword queries).
//
// Endpoints:
//
//	GET /query?q=kw1,kw2&algo=blinks&k=10[&direct=1][&layer=m]
//	    evaluate a keyword query; free-text keywords are resolved through
//	    the text index. Returns matches with label names and the plan.
//	GET /explain?q=kw1,kw2&algo=blinks
//	    the evaluation plan only (cost model output, no search).
//	GET /complete?prefix=har&limit=10
//	    keyword autocompletion over the label vocabulary.
//	GET /stats
//	    graph + index statistics.
//	GET /metrics
//	    Prometheus text exposition (request counters, latency histograms,
//	    per-phase query timings, index/build gauges).
//	GET /healthz
//	    liveness.
//	GET /readyz
//	    readiness; 503 while the server is draining for shutdown.
//
// /query also accepts &trace=1, which embeds the query's span tree (layer
// selection → summary search → per-layer specialization → generation) in
// the response as "trace", and &timeout=, a per-request deadline clamped
// under Options.QueryTimeout. When the deadline expires mid-evaluation the
// response is still 200 with "degraded": true and the (sound but possibly
// incomplete) matches found so far — specialization only refines
// already-found generalized answers (Prop 5.2), so a prefix of the answer
// set is never wrong, just short.
//
// The server is read-only and safe for concurrent requests: evaluators
// serialize index preparation internally and everything else is immutable.
// Requests are wrapped in a robustness layer (see robust.go): a
// load-shedding gate on /query, panic containment, and a drain-aware
// readiness endpoint.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bigindex/internal/core"
	"bigindex/internal/graph"
	"bigindex/internal/obs"
	"bigindex/internal/ontology"
	"bigindex/internal/search"
	"bigindex/internal/search/bidir"
	"bigindex/internal/search/bkws"
	"bigindex/internal/search/blinks"
	"bigindex/internal/search/rclique"
	"bigindex/internal/text"
)

// Options configures the server.
type Options struct {
	// DMax is the distance bound used by rooted algorithms (r-clique uses
	// DMax-1 as its pairwise bound).
	DMax int
	// BlockSize is Blinks' partition block size.
	BlockSize int
	// MaxK caps the top-k a client may request (0 = 100).
	MaxK int
	// Metrics is the registry served at /metrics. Nil creates a private
	// one; pass the registry used for core.Build to expose build gauges
	// alongside the serving metrics.
	Metrics *obs.Registry
	// Logger receives one structured line per request plus the slow-query
	// log. Nil discards.
	Logger *slog.Logger
	// SlowQuery is the latency threshold for the slow-query log
	// (0 = 500ms; negative disables).
	SlowQuery time.Duration
	// QueryTimeout is the per-request evaluation deadline. A &timeout=
	// parameter may shorten it but never exceed it. On expiry the query
	// degrades to the partial answers found so far instead of failing.
	// 0 disables the server-imposed deadline (client timeouts still apply).
	QueryTimeout time.Duration
	// MaxInFlight caps concurrently evaluating /query requests; excess
	// requests wait up to ShedWait for a slot and are then shed with
	// 429 + Retry-After. 0 disables load shedding.
	MaxInFlight int
	// ShedWait is the bounded wait for an evaluation slot when MaxInFlight
	// is hit (0 = 100ms; negative = shed immediately).
	ShedWait time.Duration
	// ExtraAlgorithms registers additional search semantics by name,
	// resolved before the built-in set. Entries sharing a built-in name
	// shadow it. Used for custom plug-ins and fault-injection tests.
	ExtraAlgorithms map[string]search.Algorithm
}

// Server handles HTTP requests against one index.
type Server struct {
	idx      *core.Index
	ont      *ontology.Ontology
	tix      *text.Index
	opt      Options
	mu       sync.Mutex
	evs      map[string]*core.Evaluator
	mux      *http.ServeMux
	handler  http.Handler
	boot     time.Time
	sem      chan struct{} // load-shedding slots (nil = unbounded)
	draining atomic.Bool   // readiness flips to 503 during shutdown drain

	reg       *obs.Registry
	phaseSec  *obs.HistogramVec // query phase latency, labeled by Breakdown phase
	querySec  *obs.HistogramVec // end-to-end evaluation latency by algorithm/mode
	matches   *obs.CounterVec   // matches returned by algorithm
	cancelled *obs.CounterVec   // interrupted queries, by reason (deadline/client)
	degraded  *obs.Counter      // 200s with partial results after a deadline
	shed      *obs.Counter      // 429s from the load-shedding gate
	panics    *obs.Counter      // handler panics contained by recoverPanics
	inflightQ *obs.Gauge        // queries currently evaluating
}

// knownPaths bounds the path label cardinality of the HTTP metrics.
var knownPaths = map[string]bool{
	"/query": true, "/explain": true, "/complete": true,
	"/stats": true, "/metrics": true, "/healthz": true, "/readyz": true,
}

// New creates a server over a built index.
func New(idx *core.Index, ont *ontology.Ontology, opt Options) *Server {
	if opt.DMax < 1 {
		opt.DMax = 4
	}
	if opt.BlockSize < 1 {
		opt.BlockSize = 200
	}
	if opt.MaxK <= 0 {
		opt.MaxK = 100
	}
	if opt.Metrics == nil {
		opt.Metrics = obs.NewRegistry()
	}
	if opt.Logger == nil {
		opt.Logger = obs.DiscardLogger()
	}
	switch {
	case opt.SlowQuery == 0:
		opt.SlowQuery = 500 * time.Millisecond
	case opt.SlowQuery < 0:
		opt.SlowQuery = 0
	}
	switch {
	case opt.ShedWait == 0:
		opt.ShedWait = 100 * time.Millisecond
	case opt.ShedWait < 0:
		opt.ShedWait = 0
	}
	s := &Server{
		idx:  idx,
		ont:  ont,
		tix:  text.NewIndex(idx.Data().Dict(), idx.Data()),
		opt:  opt,
		evs:  map[string]*core.Evaluator{},
		mux:  http.NewServeMux(),
		boot: time.Now(),
		reg:  opt.Metrics,
	}
	if opt.MaxInFlight > 0 {
		s.sem = make(chan struct{}, opt.MaxInFlight)
	}
	s.phaseSec = s.reg.HistogramVec("bigindex_query_phase_seconds",
		"Query evaluation phase latency in seconds (the paper's Figs. 10-14 axes).",
		nil, "phase")
	s.querySec = s.reg.HistogramVec("bigindex_query_seconds",
		"End-to-end query evaluation latency in seconds.", nil, "algo", "mode")
	s.matches = s.reg.CounterVec("bigindex_query_matches_total",
		"Final answers returned.", "algo")
	s.cancelled = s.reg.CounterVec("bigindex_query_cancelled_total",
		"Queries interrupted before completion, by reason (deadline, client).", "reason")
	s.degraded = s.reg.Counter("bigindex_query_degraded_total",
		"Queries that returned partial results after their deadline expired.")
	s.shed = s.reg.Counter("bigindex_query_shed_total",
		"Queries rejected with 429 by the load-shedding gate.")
	s.panics = s.reg.Counter("bigindex_panic_recovered_total",
		"Handler panics contained by the recovery middleware.")
	s.inflightQ = s.reg.Gauge("bigindex_queries_inflight",
		"Queries currently being evaluated (admitted past the shedding gate).")
	st := s.idx.Stats()
	s.reg.Gauge("bigindex_index_layers", "Summary layers in the served index (h).").
		Set(float64(idx.NumLayers() - 1))
	s.reg.Gauge("bigindex_index_size", "BiG-index size (sum of summary graph sizes).").
		Set(float64(idx.TotalSize()))
	s.reg.Gauge("bigindex_graph_vertices", "Data graph vertices.").
		Set(float64(st.Layers[0].Vertices))
	s.reg.Gauge("bigindex_graph_edges", "Data graph edges.").
		Set(float64(st.Layers[0].Edges))

	s.mux.HandleFunc("/query", s.shedded(s.handleQuery))
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/complete", s.handleComplete)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.Handle("/metrics", s.reg.Handler())
	s.handler = obs.Instrument(s.recoverPanics(s.mux), obs.HTTPOptions{
		Registry:  s.reg,
		Logger:    opt.Logger,
		SlowQuery: opt.SlowQuery,
		Normalize: func(r *http.Request) string {
			if knownPaths[r.URL.Path] {
				return r.URL.Path
			}
			return "other"
		},
	})
	return s
}

// ServeHTTP implements http.Handler (through the obs middleware: request
// metrics, per-request trace, request log).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Metrics returns the server's registry (for tests and embedding).
func (s *Server) Metrics() *obs.Registry { return s.reg }

func (s *Server) algorithm(name string) (search.Algorithm, error) {
	if a, ok := s.opt.ExtraAlgorithms[name]; ok {
		return a, nil
	}
	switch name {
	case "", "blinks":
		return blinks.New(blinks.Options{DMax: s.opt.DMax, BlockSize: s.opt.BlockSize}), nil
	case "bkws":
		return bkws.New(s.opt.DMax), nil
	case "bidir":
		return bidir.New(s.opt.DMax), nil
	case "rclique":
		return rclique.New(max(1, s.opt.DMax-1)), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

// evaluator returns (creating on first use) the shared evaluator for an
// algorithm; evaluators cache per-layer prepared indexes across requests.
// Evaluators are shared across requests with different k values, so their
// options never encode a per-request k (mutating them would race with
// in-flight queries): non-rclique evaluators run exhaustively (K=0) and
// handleQuery clamps to the request's k at result time; rclique pins K to
// the server-wide MaxK cap, which every request k is clamped under.
func (s *Server) evaluator(name string) (*core.Evaluator, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := name
	if key == "" {
		key = "blinks"
	}
	ev, ok := s.evs[key]
	if !ok {
		algo, err := s.algorithm(name)
		if err != nil {
			return nil, err
		}
		opt := core.DefaultEvalOptions()
		if key == "rclique" {
			opt.K = s.opt.MaxK
			opt.EarlyK = true
			opt.GenLimit = 40
			opt.DegreeExponent = 3
			opt.GenBudget = 2_000_000
		} else {
			opt.DegreeExponent = 1
		}
		ev = core.NewEvaluator(s.idx, algo, opt)
		s.evs[key] = ev
	}
	return ev, nil
}

type matchJSON struct {
	Root  string   `json:"root"`
	Nodes []string `json:"nodes"`
	Dists []int    `json:"dists,omitempty"`
	Score float64  `json:"score"`
}

type queryResponse struct {
	Query     []string        `json:"query"`
	Algorithm string          `json:"algorithm"`
	Layer     int             `json:"layer"`
	Direct    bool            `json:"direct,omitempty"`
	Elapsed   string          `json:"elapsed"`
	Count     int             `json:"count"`
	Degraded  bool            `json:"degraded,omitempty"`
	Reason    string          `json:"degraded_reason,omitempty"`
	Matches   []matchJSON     `json:"matches"`
	Notes     []string        `json:"notes,omitempty"`
	Trace     json.RawMessage `json:"trace,omitempty"`
}

// intParam parses an optional integer query parameter: absent keeps def,
// malformed is a client error (the old behaviour silently swallowed the
// strconv error and treated "abc" as the default, masking typos).
func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", name, raw)
	}
	return v, nil
}

// queryDeadline resolves the effective evaluation deadline: the server's
// QueryTimeout, optionally shortened (never extended) by a &timeout=
// duration parameter.
func (s *Server) queryDeadline(r *http.Request) (time.Duration, error) {
	timeout := s.opt.QueryTimeout
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return timeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter timeout=%q is not a duration (try 500ms, 2s)", raw)
	}
	if d <= 0 {
		return 0, fmt.Errorf("parameter timeout=%q must be positive", raw)
	}
	if timeout == 0 || d < timeout {
		timeout = d
	}
	return timeout, nil
}

func (s *Server) resolve(r *http.Request) ([]graph.Label, []string, error) {
	qparam := r.URL.Query().Get("q")
	if qparam == "" {
		return nil, nil, fmt.Errorf("missing q parameter")
	}
	kws := strings.Split(qparam, ",")
	for i := range kws {
		kws[i] = strings.TrimSpace(kws[i])
	}
	return s.tix.Resolve(kws, s.idx.Data())
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	q, notes, err := s.resolve(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	algoName := r.URL.Query().Get("algo")
	k, err := intParam(r, "k", 10)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if k <= 0 || k > s.opt.MaxK {
		k = 10
	}
	forcedLayer, err := intParam(r, "layer", -1)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if forcedLayer >= s.idx.NumLayers() {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("layer %d out of range (index has layers 0..%d)", forcedLayer, s.idx.NumLayers()-1))
		return
	}
	timeout, err := s.queryDeadline(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ev, err := s.evaluator(algoName)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	algo := orDefault(algoName, "blinks")
	direct := r.URL.Query().Get("direct") != ""
	mode := "eval"
	if direct {
		mode = "direct"
	}
	obs.AddLogAttrs(ctx,
		slog.String("query", r.URL.Query().Get("q")),
		slog.String("algo", algo),
		slog.Int("k", k),
		slog.String("mode", mode))

	start := time.Now()
	var ms []search.Match
	layer := 0
	if direct {
		ms, err = ev.DirectCtx(ctx, q, k)
	} else {
		var bd *core.Breakdown
		ms, bd, err = ev.EvalLayerCtx(ctx, q, forcedLayer)
		if bd != nil {
			layer = bd.Layer
			s.phaseSec.With("select").Observe(bd.Select.Seconds())
			s.phaseSec.With("search").Observe(bd.Search.Seconds())
			s.phaseSec.With("specialize").Observe(bd.Specialize.Seconds())
			s.phaseSec.With("generate").Observe(bd.Generate.Seconds())
		}
		// The shared evaluator runs exhaustively (or at the MaxK cap for
		// rclique); the per-request k applies here, at result time.
		ms = search.Truncate(ms, k)
	}
	elapsed := time.Since(start)
	degradedReason := ""
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			// The evaluation deadline expired: degrade to the partial
			// answers rather than failing. Every returned match is verified
			// (Prop 5.2 keeps the prefix sound); the set is just short.
			s.cancelled.With("deadline").Inc()
			s.degraded.Inc()
			degradedReason = "deadline"
			obs.AddLogAttrs(ctx, slog.Bool("degraded", true))
		case errors.Is(err, context.Canceled):
			// The client went away; nothing will read the response. Record
			// the abort for the cancellation counter and close out.
			s.cancelled.With("client").Inc()
			httpError(w, statusClientClosedRequest, fmt.Errorf("client closed request"))
			return
		default:
			httpError(w, http.StatusInternalServerError, err)
			return
		}
	}
	s.querySec.With(algo, mode).Observe(elapsed.Seconds())
	s.matches.With(algo).Add(int64(len(ms)))
	obs.AddLogAttrs(ctx, slog.Int("layer", layer), slog.Int("count", len(ms)))

	dict := s.idx.Data().Dict()
	g := s.idx.Data()
	resp := queryResponse{
		Algorithm: algo,
		Layer:     layer,
		Direct:    direct,
		Elapsed:   elapsed.Round(time.Microsecond).String(),
		Count:     len(ms),
		Degraded:  degradedReason != "",
		Reason:    degradedReason,
		Notes:     notes,
	}
	if want, _ := strconv.ParseBool(r.URL.Query().Get("trace")); want {
		if tr := obs.SpanFromContext(ctx).Trace(); tr != nil {
			if js, err := json.Marshal(tr); err == nil {
				resp.Trace = js
			}
		}
	}
	for _, l := range q {
		resp.Query = append(resp.Query, dict.Name(l))
	}
	for _, m := range ms {
		mj := matchJSON{Root: dict.Name(g.Label(m.Root)), Score: m.Score, Dists: m.Dists}
		for _, n := range m.Nodes {
			mj.Nodes = append(mj.Nodes, dict.Name(g.Label(n)))
		}
		resp.Matches = append(resp.Matches, mj)
	}
	writeJSON(w, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q, notes, err := s.resolve(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ev, err := s.evaluator(r.URL.Query().Get("algo"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	plan := ev.ExplainCtx(r.Context(), q)
	dict := s.idx.Data().Dict()
	type layerJSON struct {
		Layer       int      `json:"layer"`
		Cost        *float64 `json:"cost,omitempty"`
		Legal       bool     `json:"legal"`
		Generalized []string `json:"generalized"`
	}
	out := struct {
		Chosen int         `json:"chosen_layer"`
		Layers []layerJSON `json:"layers"`
		Notes  []string    `json:"notes,omitempty"`
	}{Chosen: plan.Layer, Notes: notes}
	for m := range plan.Generalized {
		lj := layerJSON{Layer: m, Legal: plan.Legal[m]}
		if plan.LayerCosts != nil && m < len(plan.LayerCosts) {
			c := plan.LayerCosts[m]
			lj.Cost = &c
		}
		for _, l := range plan.Generalized[m] {
			name, _ := dict.NameOK(l)
			lj.Generalized = append(lj.Generalized, name)
		}
		out.Layers = append(out.Layers, lj)
	}
	writeJSON(w, out)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	prefix := r.URL.Query().Get("prefix")
	limit, err := intParam(r, "limit", 10)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if limit <= 0 || limit > 100 {
		limit = 10
	}
	dict := s.idx.Data().Dict()
	var names []string
	for _, l := range s.tix.Prefix(prefix, limit) {
		names = append(names, dict.Name(l))
	}
	writeJSON(w, struct {
		Prefix      string   `json:"prefix"`
		Completions []string `json:"completions"`
	}{prefix, names})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	g := s.idx.Data()
	gs := graph.ComputeStats(g)
	writeJSON(w, struct {
		Graph  graph.Stats       `json:"graph"`
		Layers []core.LayerStats `json:"layers"`
		Uptime string            `json:"uptime"`
	}{gs, s.idx.Stats().Layers, time.Since(s.boot).Round(time.Second).String()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// writeJSON encodes to a buffer before touching the ResponseWriter: a
// mid-encode failure must not emit an implicit 200 followed by a
// half-written body and a second WriteHeader — it becomes a clean 500.
func writeJSON(w http.ResponseWriter, v interface{}) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}
